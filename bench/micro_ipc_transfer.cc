// Microbenchmark / ablation for the Section 3.2 IPC claims, in two layers:
//
//  * *Simulated* cost: a cold cross-domain transfer pays page remapping; a
//    warm transfer (recycled buffers, persistent mappings) approaches
//    shared-memory cost — two syscalls and the write-permission toggle.
//  * *Real transport* (src/ipc): the same warm transfer over an actual
//    shared-memory region and SPSC descriptor ring, where zero-copy is a
//    measured property (stats counters), not a charged assumption.
//
// Reported via google-benchmark for the host-side mechanics, with the
// simulated per-transfer costs and the real-transport copy accounting
// printed once at the end.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/iolite/pipe.h"
#include "src/iolite/runtime.h"
#include "src/ipc/ring_channel.h"
#include "src/ipc/shm_pool.h"
#include "src/ipc/shm_region.h"
#include "src/simos/sim_context.h"

namespace {

// Host-time of a warm by-reference pipe transfer (allocation + push + pop).
void BM_WarmPipeTransfer(benchmark::State& state) {
  iolsim::SimContext ctx;
  iolite::IoLiteRuntime runtime(&ctx);
  iolsim::DomainId producer = ctx.vm().CreateDomain("producer");
  iolsim::DomainId consumer = ctx.vm().CreateDomain("consumer");
  iolite::BufferPool* pool = runtime.CreatePool("bm", producer);
  iolite::PipeEnds pipe = iolite::MakePipe(&runtime, consumer, producer);
  size_t n = state.range(0);

  for (auto _ : state) {
    iolite::BufferRef b = pool->Allocate(n);
    b->Seal(n);
    runtime.IolWrite(pipe.write_fd, iolite::Aggregate::FromBuffer(std::move(b)));
    iolite::Aggregate got = runtime.IolRead(pipe.read_fd, n);
    benchmark::DoNotOptimize(got.size());
  }
  state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_WarmPipeTransfer)->Arg(4096)->Arg(65536);

// Host-time of a warm transfer over the *real* shared-memory transport:
// allocation from a region-backed pool, descriptor push through the SPSC
// ring, descriptor resolution on the read side. The payload is never
// touched; per-iteration work is independent of n.
void BM_WarmShmRingTransfer(benchmark::State& state) {
  iolsim::SimContext ctx;
  iolsim::DomainId producer = ctx.vm().CreateDomain("producer");
  iolsim::DomainId consumer = ctx.vm().CreateDomain("consumer");
  auto region = iolipc::ShmRegion::Create(32 << 20);
  if (region == nullptr) {
    state.SkipWithError("mmap failed; no shared memory available");
    return;
  }
  iolipc::ShmPool pool(&ctx, "bm-shm", producer, region.get());
  iolipc::ShmStream stream(&ctx, &pool, iolipc::RingChannel::Create(region.get(), 256));
  size_t n = state.range(0);

  for (auto _ : state) {
    iolite::BufferRef b = pool.Allocate(n);
    b->Seal(n);
    stream.Write(producer, iolite::Aggregate::FromBuffer(std::move(b)));
    iolite::Aggregate got = stream.Read(consumer, n);
    benchmark::DoNotOptimize(got.size());
  }
  state.SetBytesProcessed(state.iterations() * n);
  state.counters["payload_bytes_copied"] =
      static_cast<double>(ctx.stats().ipc_bytes_copied);
}
BENCHMARK(BM_WarmShmRingTransfer)->Arg(4096)->Arg(65536);

// Simulated-cost comparison printed as a one-shot report.
void ReportSimulatedTransferCosts() {
  iolsim::SimContext ctx;
  iolite::IoLiteRuntime runtime(&ctx);
  iolsim::DomainId producer = ctx.vm().CreateDomain("producer");
  iolsim::DomainId consumer = ctx.vm().CreateDomain("consumer");
  iolite::BufferPool* pool = runtime.CreatePool("bm", producer);
  iolite::PipeEnds pipe = iolite::MakePipe(&runtime, consumer, producer);

  auto transfer = [&]() {
    iolite::BufferRef b = pool->Allocate(60000);
    b->Seal(60000);
    runtime.IolWrite(pipe.write_fd, iolite::Aggregate::FromBuffer(std::move(b)));
    runtime.IolRead(pipe.read_fd, 60000);
  };

  iolsim::SimTime t0 = ctx.clock().now();
  transfer();  // Cold: chunk allocation + consumer-side remapping.
  iolsim::SimTime cold = ctx.clock().now() - t0;
  t0 = ctx.clock().now();
  transfer();  // Warm: recycled buffer, persistent mappings.
  iolsim::SimTime warm = ctx.clock().now() - t0;

  std::printf("# simulated 60KB cross-domain transfer: cold=%.1fus warm=%.1fus (%.1fx)\n",
              cold / 1000.0, warm / 1000.0, static_cast<double>(cold) / warm);
  std::printf("# paper (Section 3.2): worst case = page remapping; warm case approaches "
              "shared memory\n");
}

// Real-transport comparison: the same warm/cold 60KB transfer over the
// src/ipc shared-memory ring, with the zero-copy claim checked against the
// stats counters instead of assumed.
void ReportRealTransferCosts() {
  iolsim::SimContext ctx;
  iolsim::DomainId producer = ctx.vm().CreateDomain("producer");
  iolsim::DomainId consumer = ctx.vm().CreateDomain("consumer");
  auto region = iolipc::ShmRegion::Create(8 << 20);
  if (region == nullptr) {
    std::printf("# real transport unavailable (mmap failed); skipped\n");
    return;
  }
  iolipc::ShmPool pool(&ctx, "report-shm", producer, region.get());
  iolipc::ShmStream stream(&ctx, &pool, iolipc::RingChannel::Create(region.get(), 64));

  auto transfer = [&]() {
    iolite::BufferRef b = pool.Allocate(60000);
    b->Seal(60000);
    stream.Write(producer, iolite::Aggregate::FromBuffer(std::move(b)));
    stream.Read(consumer, 60000);
  };

  iolsim::SimTime t0 = ctx.clock().now();
  transfer();  // Cold: region extent carving + chunk allocation.
  iolsim::SimTime cold = ctx.clock().now() - t0;

  uint64_t copied_before = ctx.stats().ipc_bytes_copied;
  uint64_t generic_copied_before = ctx.stats().bytes_copied;
  constexpr int kWarm = 100;
  t0 = ctx.clock().now();
  for (int i = 0; i < kWarm; ++i) {
    transfer();  // Warm: recycled region buffer, descriptors only.
  }
  iolsim::SimTime warm = (ctx.clock().now() - t0) / kWarm;

  uint64_t copied = (ctx.stats().ipc_bytes_copied - copied_before) +
                    (ctx.stats().bytes_copied - generic_copied_before);
  std::printf("# real shm-ring 60KB transfer (%s): cold=%.1fus warm=%.1fus, "
              "%llu payload bytes copied per warm transfer (want 0), "
              "%llu bytes by reference\n",
              region->posix_shm_backed() ? "shm_open" : "anon-mmap fallback", cold / 1000.0,
              warm / 1000.0, static_cast<unsigned long long>(copied / kWarm),
              static_cast<unsigned long long>(ctx.stats().ipc_bytes_transferred));
  if (copied != 0) {
    std::printf("# WARNING: warm shm transfer touched payload bytes\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ReportSimulatedTransferCosts();
  ReportRealTransferCosts();
  return 0;
}
