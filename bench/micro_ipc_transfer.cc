// Microbenchmark / ablation for the Section 3.2 IPC claims, in *simulated*
// cost: a cold cross-domain transfer pays page remapping; a warm transfer
// (recycled buffers, persistent mappings) approaches shared-memory cost —
// two syscalls and the write-permission toggle.
//
// Reported via google-benchmark for the host-side mechanics, with the
// simulated per-transfer costs printed once at the end.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/iolite/pipe.h"
#include "src/iolite/runtime.h"
#include "src/simos/sim_context.h"

namespace {

// Host-time of a warm by-reference pipe transfer (allocation + push + pop).
void BM_WarmPipeTransfer(benchmark::State& state) {
  iolsim::SimContext ctx;
  iolite::IoLiteRuntime runtime(&ctx);
  iolsim::DomainId producer = ctx.vm().CreateDomain("producer");
  iolsim::DomainId consumer = ctx.vm().CreateDomain("consumer");
  iolite::BufferPool* pool = runtime.CreatePool("bm", producer);
  iolite::PipeEnds pipe = iolite::MakePipe(&runtime, consumer, producer);
  size_t n = state.range(0);

  for (auto _ : state) {
    iolite::BufferRef b = pool->Allocate(n);
    b->Seal(n);
    runtime.IolWrite(pipe.write_fd, iolite::Aggregate::FromBuffer(std::move(b)));
    iolite::Aggregate got = runtime.IolRead(pipe.read_fd, n);
    benchmark::DoNotOptimize(got.size());
  }
  state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_WarmPipeTransfer)->Arg(4096)->Arg(65536);

// Simulated-cost comparison printed as a one-shot report.
void ReportSimulatedTransferCosts() {
  iolsim::SimContext ctx;
  iolite::IoLiteRuntime runtime(&ctx);
  iolsim::DomainId producer = ctx.vm().CreateDomain("producer");
  iolsim::DomainId consumer = ctx.vm().CreateDomain("consumer");
  iolite::BufferPool* pool = runtime.CreatePool("bm", producer);
  iolite::PipeEnds pipe = iolite::MakePipe(&runtime, consumer, producer);

  auto transfer = [&]() {
    iolite::BufferRef b = pool->Allocate(60000);
    b->Seal(60000);
    runtime.IolWrite(pipe.write_fd, iolite::Aggregate::FromBuffer(std::move(b)));
    runtime.IolRead(pipe.read_fd, 60000);
  };

  iolsim::SimTime t0 = ctx.clock().now();
  transfer();  // Cold: chunk allocation + consumer-side remapping.
  iolsim::SimTime cold = ctx.clock().now() - t0;
  t0 = ctx.clock().now();
  transfer();  // Warm: recycled buffer, persistent mappings.
  iolsim::SimTime warm = ctx.clock().now() - t0;

  std::printf("# simulated 60KB cross-domain transfer: cold=%.1fus warm=%.1fus (%.1fx)\n",
              cold / 1000.0, warm / 1000.0, static_cast<double>(cold) / warm);
  std::printf("# paper (Section 3.2): worst case = page remapping; warm case approaches "
              "shared memory\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ReportSimulatedTransferCosts();
  return 0;
}
