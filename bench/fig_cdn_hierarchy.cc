// CDN hierarchy: per-level cache budgets and cache-consistency traffic over
// an N-level tree of IO-Lite proxies (src/cdn, composed by ioldrv::CdnTier).
//
// Four metros front one origin fleet: three request Zipf-like hot sets of
// their own, the fourth is a "flooder" — a high-client-count population
// drawing uniformly from a universe far bigger than any cache. The sweep
// crosses consistency protocol x origin write rate x per-level budget split
// over a 3-level tree (4 edges -> 2 regionals -> 1 origin-facing top) whose
// TOTAL cache budget always equals the flat single-proxy baseline's, so
// every comparison is budget-fair.
//
// Expected shape, and the full run's acceptance gates:
//   (a) at the edge-heavy split the tree beats the flat proxy on
//       origin-fleet load: the flooder thrashes only its own edge, while in
//       the flat cache it evicts every metro's hot set;
//   (b) consistency cost crosses over in write rate — measured as total
//       interior-link bytes (fetch payloads + control frames). Invalidation
//       starts cheap (a frame only per held copy per write) but each sweep
//       forces a full-body re-fetch on the next request; revalidation pays
//       a fixed conditional-check tax per TTL expiry but keeps serving the
//       cached body between expiries. The cheap protocol flips between the
//       low- and high-write ends of the sweep;
//   (c) a zero-write one-level tree is byte-identical to the PR 5
//       single-proxy tier (fold of the record stream + final clock) — the
//       hierarchy's "empty plan == no plan" determinism contract.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cdn/cdn_topology.h"
#include "src/cdn/write_plan.h"
#include "src/driver/cdn_tier.h"
#include "src/driver/edge_mix.h"
#include "src/driver/proxy_tier.h"
#include "src/driver/telemetry.h"

namespace {

constexpr int kOrigins = 2;
constexpr uint64_t kDocBytes = 16 * 1024;
constexpr int kMetros = 3;
constexpr int kMetroDocs = 16;       // Per-metro universe...
constexpr int kMetroHot = 12;        // ...of which this many are the hot set.
constexpr int kFlooderDocs = 512;    // Uniform flood universe (~8 MB).
constexpr uint64_t kTotalBudget = 3 * 512 * 1024;  // Flat == tree total.
// Revalidation traffic ~ (requests hitting expired entries) x 192 B, so the
// TTL sets its budget; 20 ms keeps conditional checks cheap enough that
// invalidation only overtakes it once writes dominate — the crossover the
// full run gates on.
constexpr iolsim::SimTime kTtl = 40 * iolsim::kMillisecond;

struct BudgetSplit {
  const char* name;
  // Fraction of kTotalBudget owned by each level (edge, regional, top).
  double share[3];
};

constexpr BudgetSplit kSplits[] = {
    {"edge-heavy", {0.6, 0.3, 0.1}},
    {"balanced", {0.34, 0.33, 0.33}},
    {"origin-heavy", {0.1, 0.3, 0.6}},
};

// The four populations: metro m draws hot-biased from its own window,
// the flooder uniformly from the big shared tail. Rng state lives in
// shared_ptrs so the specs stay copyable.
ioldrv::EdgeMix MakeMix(const std::vector<iolfs::FileId>& ids) {
  std::vector<ioldrv::EdgePopulationSpec> pops;
  for (int m = 0; m < kMetros; ++m) {
    auto rng = std::make_shared<iolsim::Rng>(1000 + m);
    size_t lo = static_cast<size_t>(m) * kMetroDocs;
    pops.push_back({std::string("metro-") + std::to_string(m), 2,
                    [rng, &ids, lo]() -> iolfs::FileId {
                      // Zipf-like: u^3 concentrates on the low ranks.
                      double u = rng->NextDouble();
                      size_t r = static_cast<size_t>(u * u * u * kMetroHot);
                      return ids[lo + (r >= kMetroHot ? kMetroHot - 1 : r)];
                    }});
  }
  auto rng = std::make_shared<iolsim::Rng>(777);
  size_t flood_lo = static_cast<size_t>(kMetros) * kMetroDocs;
  pops.push_back({"flooder", 6, [rng, &ids, flood_lo]() -> iolfs::FileId {
                    return ids[flood_lo + rng->NextBelow(kFlooderDocs)];
                  }});
  return ioldrv::EdgeMix(std::move(pops));
}

iolcdn::CdnTopology MakeTreeTopo(const BudgetSplit& split,
                                 iolproxy::ConsistencyMode mode) {
  iolcdn::CdnTopology topo;
  const int counts[3] = {4, 2, 1};
  for (int l = 0; l < 3; ++l) {
    iolcdn::CdnLevelSpec spec;
    spec.count = counts[l];
    spec.cache_bytes = static_cast<uint64_t>(
        kTotalBudget * split.share[l] / counts[l]);
    topo.levels.push_back(spec);
  }
  topo.protocol = mode;
  topo.ttl = kTtl;
  return topo;
}

iolcdn::CdnTopology MakeFlatTopo(iolproxy::ConsistencyMode mode) {
  iolcdn::CdnTopology topo;
  iolcdn::CdnLevelSpec spec;
  spec.count = 1;
  spec.cache_bytes = kTotalBudget;
  topo.levels.push_back(spec);
  topo.protocol = mode;
  topo.ttl = mode == iolproxy::ConsistencyMode::kRevalidate ? kTtl : 0;
  return topo;
}

struct CellOutcome {
  ioldrv::ExperimentResult result;
  uint64_t record_fold = 0;
  iolsim::SimTime final_clock = 0;
  uint64_t invalidation_bytes = 0;  // invalidations_sent * frame size.
  uint64_t revalidation_bytes = 0;
  // Everything the consistency protocol puts on interior links: fetch
  // payloads (re-fetches after sweeps included) plus control frames.
  uint64_t total_backhaul_bytes = 0;
};

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4);
  return h * 0xff51afd7ed558ccdull;
}

uint64_t FoldRecords(const ioldrv::Telemetry& t) {
  uint64_t h = 1469598103934665603ull;
  for (const ioldrv::RequestRecord& r : t.records()) {
    h = Mix(h, r.issue);
    h = Mix(h, r.admit);
    h = Mix(h, r.complete);
    h = Mix(h, r.bytes);
    h = Mix(h, r.server);
    h = Mix(h, static_cast<uint64_t>(r.outcome));
    h = Mix(h, r.cache_hit ? 1 : 0);
    h = Mix(h, r.counted ? 1 : 0);
  }
  return h;
}

// One data point: a fresh machine, the given topology, the standard
// four-population mix, and a seeded write stream against the metro docs.
CellOutcome RunCell(const iolcdn::CdnTopology& topo, double writes_per_sec,
                    const iolbench::BenchOptions& opts) {
  iolsys::SystemOptions options;
  options.cost.cpu_count = kOrigins;
  options.cost.disk_count = kOrigins;
  iolbench::ApplyKindOptions(iolbench::ServerKind::kFlashLite, &options);
  auto sys = std::make_unique<iolsys::System>(options);

  std::vector<iolfs::FileId> ids;
  for (int i = 0; i < kMetros * kMetroDocs + kFlooderDocs; ++i) {
    ids.push_back(sys->fs().CreateFile("doc" + std::to_string(i), kDocBytes));
  }
  std::vector<std::unique_ptr<iolhttp::HttpServer>> servers;
  std::vector<iolhttp::HttpServer*> members;
  for (int i = 0; i < kOrigins; ++i) {
    servers.push_back(
        iolbench::MakeServer(iolbench::ServerKind::kFlashLite, sys.get()));
    members.push_back(servers.back().get());
  }
  iolproxy::ProxyConfig pc;
  pc.data_path = iolproxy::ProxyDataPath::kIoLite;
  pc.backhaul = iolproxy::BackhaulMode::kRemote;
  ioldrv::ExperimentConfig config;
  config.persistent_connections = true;
  config.max_requests = opts.Requests(4000);
  config.warmup_requests = 0;  // Origin-load comparisons count everything.
  ioldrv::CdnTier tier(&sys->ctx(), &sys->net(), &sys->io(), &sys->runtime(),
                       ioldrv::Fleet(members), topo, pc, config);
  iolcdn::WritePlanSpec wspec;
  wspec.writes_per_sec = writes_per_sec;
  // Writes land uniformly on metro-0's hot set: docs every level of the
  // tree holds continuously, so each write actually invalidates copies
  // (spreading writes over never-cached tails just bumps versions nobody
  // holds, flattening the invalidation curve).
  wspec.num_files = kMetroHot;
  wspec.hot_bias = 0;
  wspec.seed = 31;
  iolcdn::WritePlan writes(&sys->ctx(), &tier.authority(), wspec);
  tier.set_write_plan(&writes);

  ioldrv::EdgeMix mix = MakeMix(ids);
  ioldrv::Telemetry telemetry;
  CellOutcome out;
  out.result = tier.Run(&mix, [&ids]() { return ids[0]; }, &telemetry);
  out.record_fold = FoldRecords(telemetry);
  out.final_clock = sys->ctx().clock().now();
  for (const ioldrv::ExperimentResult::CdnLevelResult& l : out.result.cdn_levels) {
    out.invalidation_bytes +=
        l.invalidations_sent * iolproxy::kInvalidationBytes;
    out.revalidation_bytes += l.revalidation_bytes;
    out.total_backhaul_bytes += l.backhaul_bytes + l.revalidation_bytes +
                                l.invalidations_sent * iolproxy::kInvalidationBytes;
  }
  return out;
}

// The PR 5 flat tier, same machine and mix: the byte-identity reference.
CellOutcome RunProxyTierReference(const iolbench::BenchOptions& opts) {
  iolsys::SystemOptions options;
  options.cost.cpu_count = kOrigins;
  options.cost.disk_count = kOrigins;
  iolbench::ApplyKindOptions(iolbench::ServerKind::kFlashLite, &options);
  auto sys = std::make_unique<iolsys::System>(options);
  std::vector<iolfs::FileId> ids;
  for (int i = 0; i < kMetros * kMetroDocs + kFlooderDocs; ++i) {
    ids.push_back(sys->fs().CreateFile("doc" + std::to_string(i), kDocBytes));
  }
  std::vector<std::unique_ptr<iolhttp::HttpServer>> servers;
  std::vector<iolhttp::HttpServer*> members;
  for (int i = 0; i < kOrigins; ++i) {
    servers.push_back(
        iolbench::MakeServer(iolbench::ServerKind::kFlashLite, sys.get()));
    members.push_back(servers.back().get());
  }
  iolproxy::ProxyConfig pc;
  pc.data_path = iolproxy::ProxyDataPath::kIoLite;
  pc.backhaul = iolproxy::BackhaulMode::kRemote;
  pc.cache_bytes = kTotalBudget;
  ioldrv::ExperimentConfig config;
  config.persistent_connections = true;
  config.max_requests = opts.Requests(4000);
  config.warmup_requests = 0;
  ioldrv::ProxyTier tier(&sys->ctx(), &sys->net(), &sys->io(), &sys->runtime(),
                         ioldrv::Fleet(members), pc, config);
  ioldrv::EdgeMix mix = MakeMix(ids);
  ioldrv::Telemetry telemetry;
  CellOutcome out;
  out.result = tier.Run(&mix, [&ids]() { return ids[0]; }, &telemetry);
  out.record_fold = FoldRecords(telemetry);
  out.final_clock = sys->ctx().clock().now();
  return out;
}

void PrintRow(const std::string& series, double x, const CellOutcome& out) {
  std::printf("%-28s\t%7.0f\t%8.4f\t%10llu\t%10llu\t%10llu\t%12llu\t%9.3f\n",
              series.c_str(), x, out.result.proxy_hit_rate,
              static_cast<unsigned long long>(out.result.origin_fleet_fetches),
              static_cast<unsigned long long>(out.invalidation_bytes),
              static_cast<unsigned long long>(out.revalidation_bytes),
              static_cast<unsigned long long>(out.total_backhaul_bytes),
              out.result.staleness.p99_ms);
}

}  // namespace

int main(int argc, char** argv) {
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("fig_cdn_hierarchy", opts);
  using iolproxy::ConsistencyMode;

  iolbench::PrintHeader(
      "CDN hierarchy: 3-level tree vs flat proxy, consistency protocol x "
      "write rate x budget split (total budget held equal)",
      "series                      \twrites/s\thit_rate\torigin_load\t"
      "inval_B\treval_B\tbackhaul_B\tstale_p99_ms");

  // --- Gate (c): zero-write one-level tree == PR 5 proxy tier ---------------
  CellOutcome reference = RunProxyTierReference(opts);
  CellOutcome degenerate =
      RunCell(MakeFlatTopo(ConsistencyMode::kInvalidate), 0, opts);
  bool identical = degenerate.record_fold == reference.record_fold &&
                   degenerate.final_clock == reference.final_clock &&
                   degenerate.result.requests == reference.result.requests;
  std::printf("# zero-write flat-tree == ProxyTier byte-identity: %s\n",
              identical ? "ok" : "FAIL");

  // --- Gate (a): flat baseline vs the tree at every split, zero writes ------
  CellOutcome flat = degenerate;  // Same cell: flat proxy, no writes.
  PrintRow("flat", 0, flat);
  json.AddExperiment("flat", 0, flat.result);
  uint64_t edge_heavy_origin_load = 0;
  for (const BudgetSplit& split : kSplits) {
    CellOutcome tree =
        RunCell(MakeTreeTopo(split, ConsistencyMode::kInvalidate), 0, opts);
    PrintRow(std::string("tree-") + split.name, 0, tree);
    json.AddExperiment(std::string("tree-") + split.name, 0, tree.result);
    if (std::string(split.name) == "edge-heavy") {
      edge_heavy_origin_load = tree.result.origin_fleet_fetches;
    }
  }
  bool tree_beats_flat =
      edge_heavy_origin_load < flat.result.origin_fleet_fetches;
  std::printf(
      "# edge-heavy tree origin load %llu vs flat %llu (need tree < flat): "
      "%s\n",
      static_cast<unsigned long long>(edge_heavy_origin_load),
      static_cast<unsigned long long>(flat.result.origin_fleet_fetches),
      tree_beats_flat ? "ok" : "FAIL");

  // --- Gate (b): protocol x write-rate sweep at the edge-heavy split --------
  const double kFullRates[] = {50, 200, 800, 3200};
  const double kSmokeRates[] = {200, 3200};
  const double* rates = opts.smoke ? kSmokeRates : kFullRates;
  size_t num_rates = opts.smoke ? 2 : 4;
  const ConsistencyMode kModes[] = {ConsistencyMode::kInvalidate,
                                    ConsistencyMode::kRevalidate,
                                    ConsistencyMode::kStale};
  const BudgetSplit& edge_heavy = kSplits[0];
  // Consistency bytes per (rate) for the two freshness protocols.
  std::vector<uint64_t> inval_bytes(num_rates, 0);
  std::vector<uint64_t> reval_bytes(num_rates, 0);
  for (ConsistencyMode mode : kModes) {
    for (size_t i = 0; i < num_rates; ++i) {
      CellOutcome cell =
          RunCell(MakeTreeTopo(edge_heavy, mode), rates[i], opts);
      std::string series = std::string(iolproxy::Name(mode)) + "/edge-heavy";
      PrintRow(series, rates[i], cell);
      json.AddExperiment(series, rates[i], cell.result);
      if (mode == ConsistencyMode::kInvalidate) {
        inval_bytes[i] = cell.total_backhaul_bytes;
      } else if (mode == ConsistencyMode::kRevalidate) {
        reval_bytes[i] = cell.total_backhaul_bytes;
      }
    }
  }
  // The crossover, on total interior-link bytes (fetch payloads + control
  // frames): at low write rates invalidation is nearly free — a frame only
  // when a copy is actually held — while revalidation pays a conditional
  // check per TTL expiry no matter what. At high write rates invalidation
  // sweeps the tree and every next request re-fetches a full body, while
  // revalidation keeps serving the cached copy until its TTL and re-fetches
  // at most once per expiry. Find the sign flip.
  double crossover_low = -1, crossover_high = -1;
  bool low_inval_cheaper = inval_bytes[0] < reval_bytes[0];
  bool high_reval_cheaper = reval_bytes[num_rates - 1] < inval_bytes[num_rates - 1];
  for (size_t i = 0; i + 1 < num_rates; ++i) {
    if (inval_bytes[i] < reval_bytes[i] &&
        inval_bytes[i + 1] >= reval_bytes[i + 1]) {
      crossover_low = rates[i];
      crossover_high = rates[i + 1];
    }
  }
  bool crossover = low_inval_cheaper && high_reval_cheaper;
  if (crossover) {
    std::printf(
        "# invalidate/revalidate backhaul-bytes crossover between %.0f and "
        "%.0f writes/s: ok\n",
        crossover_low, crossover_high);
  } else {
    std::printf(
        "# no invalidate/revalidate crossover found (low: inval %llu vs "
        "reval %llu; high: inval %llu vs reval %llu): FAIL\n",
        static_cast<unsigned long long>(inval_bytes[0]),
        static_cast<unsigned long long>(reval_bytes[0]),
        static_cast<unsigned long long>(inval_bytes[num_rates - 1]),
        static_cast<unsigned long long>(reval_bytes[num_rates - 1]));
  }

  std::printf(
      "# expectation: per-edge budgets quarantine the flooder; invalidation "
      "is cheap until write sweeps force re-fetches that dwarf the "
      "revalidation check tax\n");

  bool ok = true;
  if (!opts.smoke) {
    // The acceptance gates the ISSUE pins; smoke runs are too short for the
    // cache dynamics to settle, so only full runs enforce them.
    ok = identical && tree_beats_flat && crossover;
  }
  return json.Flush() && ok ? 0 : 1;
}
