// Microbenchmarks for the core IO-Lite mechanisms (host-time measurements
// of the library itself, via google-benchmark): aggregate algebra, buffer
// pool allocation/recycling, checksum computation and cache hits.

#include <benchmark/benchmark.h>

#include <string>

#include "src/iolite/aggregate.h"
#include "src/iolite/buffer_pool.h"
#include "src/net/checksum.h"
#include "src/simos/sim_context.h"

namespace {

void BM_AggregateAppend(benchmark::State& state) {
  iolsim::SimContext ctx;
  iolite::BufferPool pool(&ctx, "bm", iolsim::kKernelDomain);
  iolite::BufferRef buffer = pool.AllocateDma(1, 4096);
  for (auto _ : state) {
    iolite::Aggregate agg;
    for (int i = 0; i < state.range(0); ++i) {
      agg.Append(iolite::Slice(buffer, 0, 4096));
    }
    benchmark::DoNotOptimize(agg.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AggregateAppend)->Arg(4)->Arg(64)->Arg(1024);

void BM_AggregateSplitJoin(benchmark::State& state) {
  iolsim::SimContext ctx;
  iolite::BufferPool pool(&ctx, "bm", iolsim::kKernelDomain);
  iolite::BufferRef buffer = pool.AllocateDma(1, 65536);
  iolite::Aggregate base = iolite::Aggregate::FromBuffer(buffer);
  for (auto _ : state) {
    iolite::Aggregate agg = base;
    iolite::Aggregate tail = agg.SplitOff(32768);
    agg.Append(tail);
    benchmark::DoNotOptimize(agg.slice_count());
  }
}
BENCHMARK(BM_AggregateSplitJoin);

void BM_AggregateReaderScan(benchmark::State& state) {
  iolsim::SimContext ctx;
  iolite::BufferPool pool(&ctx, "bm", iolsim::kKernelDomain);
  iolite::Aggregate agg;
  for (int i = 0; i < 16; ++i) {
    agg.Append(iolite::Aggregate::FromBuffer(pool.AllocateDma(i, 4096)));
  }
  for (auto _ : state) {
    uint64_t sum = 0;
    for (iolite::Aggregate::Reader r = agg.NewReader(); !r.AtEnd();) {
      const char* p = r.data();
      size_t n = r.run_length();
      for (size_t i = 0; i < n; ++i) {
        sum += static_cast<uint8_t>(p[i]);
      }
      r.Skip(n);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() * 16 * 4096);
}
BENCHMARK(BM_AggregateReaderScan);

void BM_PoolAllocateRecycle(benchmark::State& state) {
  iolsim::SimContext ctx;
  iolite::BufferPool pool(&ctx, "bm", iolsim::kKernelDomain);
  size_t n = state.range(0);
  for (auto _ : state) {
    iolite::BufferRef b = pool.Allocate(n);
    b->Seal(n);
    benchmark::DoNotOptimize(b.get());
    // Ref dropped: buffer recycles, next Allocate reuses it.
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolAllocateRecycle)->Arg(256)->Arg(4096)->Arg(65536);

void BM_ChecksumCold(benchmark::State& state) {
  iolsim::SimContext ctx;
  iolite::BufferPool pool(&ctx, "bm", iolsim::kKernelDomain);
  iolnet::ChecksumModule module(&ctx, /*cache_enabled=*/false);
  iolite::Aggregate agg = iolite::Aggregate::FromBuffer(pool.AllocateDma(3, state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(module.Checksum(agg));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChecksumCold)->Arg(1460)->Arg(16384)->Arg(262144);

void BM_ChecksumCached(benchmark::State& state) {
  iolsim::SimContext ctx;
  iolite::BufferPool pool(&ctx, "bm", iolsim::kKernelDomain);
  iolnet::ChecksumModule module(&ctx, /*cache_enabled=*/true);
  iolite::Aggregate agg = iolite::Aggregate::FromBuffer(pool.AllocateDma(3, state.range(0)));
  module.Checksum(agg);  // Warm the cache.
  for (auto _ : state) {
    benchmark::DoNotOptimize(module.Checksum(agg));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChecksumCached)->Arg(1460)->Arg(16384)->Arg(262144);

}  // namespace

BENCHMARK_MAIN();
