// Figure 7: characteristics of the ECE, CS and MERGED traces.
//
// The paper plots cumulative request and data-size distributions by file
// popularity rank. We print the same CDFs for our calibrated synthetic
// traces, with the published aggregates for comparison.
//
// Paper anchors: ECE = 783529 requests / 10195 files / 523 MB, with the
// 5000 most-requested files covering 39% of the data and 95% of requests.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/workload/trace.h"

namespace {

void Report(const iolwl::TraceSpec& spec, iolbench::JsonReporter* json) {
  iolwl::Trace trace = iolwl::Trace::Generate(spec);
  std::printf("## %s: %zu files, %llu requests, %.0f MB total, mean request %.1f KB\n",
              spec.name.c_str(), trace.file_sizes().size(),
              static_cast<unsigned long long>(trace.requests().size()),
              trace.total_bytes() / 1048576.0, trace.MeanRequestBytes() / 1024.0);
  std::printf("top_files\treq_frac\tdata_frac\n");
  std::vector<size_t> ks;
  for (size_t k : {100ul, 500ul, 1000ul, 2000ul, 5000ul, 10000ul, 20000ul, 37703ul}) {
    if (k <= spec.num_files) {
      ks.push_back(k);
    }
  }
  ks.push_back(spec.num_files);
  for (const auto& point : trace.Cdf(ks)) {
    std::printf("%zu\t%.3f\t%.3f\n", point.top_files, point.request_fraction,
                point.data_fraction);
    json->Add(spec.name + ":req_frac", static_cast<double>(point.top_files),
              point.request_fraction);
    json->Add(spec.name + ":data_frac", static_cast<double>(point.top_files),
              point.data_fraction);
  }
}

}  // namespace

int main(int argc, char** argv) {
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("fig07", opts);
  std::printf("# Figure 7: trace characteristics (synthetic, calibrated)\n");
  Report(iolwl::EceSpec(), &json);
  Report(iolwl::CsSpec(), &json);
  Report(iolwl::MergedSpec(), &json);
  std::printf(
      "# paper: ECE 783529 req / 10195 files / 523 MB (top-5000: 95%% req, 39%% data); "
      "CS 3746842 / 26948 / 933 MB; MERGED 2290909 / 37703 / 1418 MB\n");
  return json.Flush() ? 0 : 1;
}
