// Latency versus offered load — the curve the old throughput-only driver
// could not draw (ROADMAP: open-loop trace replay + latency percentiles).
//
// A timestamped log is synthesized over the MERGED subtrace at a swept
// arrival rate (Poisson instants, deterministic per seed) and replayed
// open-loop through ioldrv::TraceReplay: arrivals fire at the log's
// instants whether or not earlier requests have completed, so queueing
// delay — invisible to a closed loop, which slows its own arrivals — shows
// up as tail latency. Expected shape: p50 flat and p99 modest while the
// offered load sits below a server's capacity, then the knee, then runaway
// queueing past saturation. Flash-Lite's knee sits at a higher rate than
// Flash's (same machine, fewer cycles per byte).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace {

ioldrv::ExperimentResult RunReplay(iolbench::ServerKind kind, const iolwl::Trace& trace,
                                   const iolwl::TimestampedLog& log, uint64_t warmup) {
  iolbench::Bench b = iolbench::MakeBench(kind);
  std::vector<iolfs::FileId> ids = trace.Materialize(&b.sys->fs());

  ioldrv::ExperimentConfig config;
  // The log ends the run: every entry arrives exactly once, then the
  // in-flight tail drains.
  config.max_requests = log.entries.size();
  config.warmup_requests = warmup;
  config.enforce_cache_budget = true;
  ioldrv::TraceReplay workload(&log, ids, /*initial_pool=*/16);
  ioldrv::Experiment experiment(&b.sys->ctx(), &b.sys->net(), &b.sys->cache(),
                                b.server.get(), config);
  // Every arrival is pinned by the log; the fallback source is never asked.
  return experiment.Run(&workload, [&ids] { return ids[0]; });
}

}  // namespace

int main(int argc, char** argv) {
  using iolbench::ServerKind;
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("fig_latency_load", opts);

  iolwl::TraceSpec spec = iolwl::SubtraceSpec();
  spec.num_requests = opts.smoke ? 2000 : 25000;
  iolwl::Trace trace = iolwl::Trace::Generate(spec);
  const uint64_t warmup = opts.Warmup(1000);  // 20 in smoke mode.

  const std::vector<double> rates =
      opts.smoke ? std::vector<double>{150, 600}
                 : std::vector<double>{100, 200, 300, 450, 600, 750};

  iolbench::PrintHeader(
      "Latency vs offered load: timestamped MERGED-subtrace replay",
      "rate_per_sec\tserver\tmbps\tp50_ms\tp99_ms\tmax_ms");
  for (double rate : rates) {
    iolwl::TimestampedLog log = iolwl::SynthesizeArrivals(trace, rate, /*seed=*/4242);
    for (ServerKind kind : {ServerKind::kFlashLite, ServerKind::kFlash}) {
      ioldrv::ExperimentResult r = RunReplay(kind, trace, log, warmup);
      std::printf("%.0f\t%s\t%.1f\t%.2f\t%.2f\t%.2f\n", rate, iolbench::Name(kind),
                  r.megabits_per_sec, r.latency.p50_ms, r.latency.p99_ms,
                  r.latency.max_ms);
      json.AddExperiment(iolbench::Name(kind), rate, r);
    }
  }
  std::printf("# expectation: p99 flat below each server's capacity, then a knee; "
              "Flash-Lite's knee at a higher rate than Flash's\n");
  return json.Flush() ? 0 : 1;
}
