// Shared harness for the figure-reproduction benchmarks.
//
// Each bench binary reproduces one table/figure from the paper's Section 5:
// it builds a fresh simulated machine per data point, runs the closed-loop
// client population, and prints the same series the paper plots, plus the
// paper's qualitative anchors for comparison.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/driver/experiment.h"
#include "src/driver/fleet.h"
#include "src/driver/workload.h"
#include "src/httpd/cgi.h"
#include "src/httpd/http_server.h"
#include "src/system/system.h"
#include "src/workload/trace.h"

namespace iolbench {

// Command-line options shared by every figure benchmark:
//   --json <path>  write the plotted series as machine-readable JSON
//   --smoke        tiny request counts (CI rot check, not a measurement)
struct BenchOptions {
  std::string json_path;
  bool smoke = false;

  // Scale a full-run request/warmup/client count down in smoke mode.
  uint64_t Requests(uint64_t full) const { return smoke && full > 120 ? 120 : full; }
  uint64_t Warmup(uint64_t full) const { return smoke && full > 20 ? 20 : full; }
  int Clients(int full) const { return smoke && full > 8 ? 8 : full; }
};

inline BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opts.smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opts.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json <path>]\n", argv[0]);
      std::exit(2);
    }
  }
  return opts;
}

// Accumulates (series, x, value) rows and writes them as one JSON document:
//   {"figure": "...", "smoke": false, "rows": [{"series": ..., "x": ...,
//    "value": ...}, ...]}
// Rows added via AddExperiment carry the full structured result — latency
// percentiles alongside the throughput value, plus the host-side wall clock
// of the run:
//   {"series": ..., "x": ..., "value": <Mb/s>, "requests": ...,
//    "cache_hit_rate": ..., "p50_ms": ..., "p90_ms": ..., "p99_ms": ...,
//    "max_ms": ..., "wall_ms": ..., "events_per_sec": ...}
// wall_ms / events_per_sec describe the simulator, not the simulated
// machine: they are the wall-clock trajectory CI records per commit, and
// vary run to run — everything else in the document is deterministic.
// A reporter with an empty path is a no-op, so benchmarks can call Add
// unconditionally.
class JsonReporter {
 public:
  JsonReporter(std::string figure, const BenchOptions& opts)
      : figure_(std::move(figure)), path_(opts.json_path), smoke_(opts.smoke) {}

  ~JsonReporter() { Flush(); }

  void Add(const std::string& series, double x, double value) {
    if (!path_.empty()) {
      Row row;
      row.series = series;
      row.x = x;
      row.value = value;
      rows_.push_back(std::move(row));
    }
  }

  // A host-performance row without experiment telemetry (micro benches).
  void AddPerf(const std::string& series, double x, double value, double wall_ms,
               double events_per_sec) {
    if (!path_.empty()) {
      Row row;
      row.series = series;
      row.x = x;
      row.value = value;
      row.has_perf = true;
      row.wall_ms = wall_ms;
      row.events_per_sec = events_per_sec;
      rows_.push_back(std::move(row));
    }
  }

  // Serializes the structured result: `value` is throughput (Mb/s), the
  // latency summary, per-tier proxy fields and wall-clock performance ride
  // along as explicit fields.
  void AddExperiment(const std::string& series, double x,
                     const ioldrv::ExperimentResult& result) {
    if (!path_.empty()) {
      Row row;
      row.series = series;
      row.x = x;
      row.value = result.megabits_per_sec;
      row.has_latency = true;
      row.has_perf = true;
      row.latency = result.latency;
      row.requests = result.requests;
      row.cache_hit_rate = result.cache_hit_rate;
      row.proxy_hit_rate = result.proxy_hit_rate;
      row.origin_hit_rate = result.origin_hit_rate;
      row.bytes_copied_backhaul = result.bytes_copied_backhaul;
      row.origin_p99_ms = result.origin_latency.p99_ms;
      row.wall_ms = result.wall_ms;
      row.events_per_sec =
          result.wall_ms > 0 ? result.events_dispatched / (result.wall_ms / 1000.0) : 0;
      row.availability = result.availability;
      row.error_rate = result.error_rate;
      row.retries = result.retries;
      row.goodput_mbps = result.goodput_mbps;
      row.tenants = result.tenants;
      row.staleness_p99_ms = result.staleness.p99_ms;
      row.stale_serves = result.stale_serves;
      row.cdn_writes = result.cdn_writes;
      row.origin_fleet_fetches = result.origin_fleet_fetches;
      row.cdn_levels = result.cdn_levels;
      rows_.push_back(std::move(row));
    }
  }

  bool Flush() {
    if (path_.empty()) {
      return true;
    }
    if (attempted_) {
      return ok_;  // One write, one diagnostic — the destructor re-calls us.
    }
    attempted_ = true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReporter: cannot open %s\n", path_.c_str());
      return ok_ = false;
    }
    std::fprintf(f, "{\"figure\": \"%s\", \"smoke\": %s, \"rows\": [", figure_.c_str(),
                 smoke_ ? "true" : "false");
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      // The per-tier proxy fields and the fault-plane fields appear on
      // every row (zeros / 1.0 outside their experiments) so one schema
      // covers every BENCH_*.json.
      std::fprintf(f,
                   "%s\n  {\"series\": \"%s\", \"x\": %.6g, \"value\": %.6g, "
                   "\"proxy_hit_rate\": %.6g, \"origin_hit_rate\": %.6g, "
                   "\"bytes_copied_backhaul\": %llu, "
                   "\"availability\": %.8g, \"error_rate\": %.8g, "
                   "\"retries\": %llu, \"goodput_mbps\": %.6g, "
                   "\"staleness_p99_ms\": %.6g, \"stale_serves\": %llu, "
                   "\"cdn_writes\": %llu, \"origin_fleet_fetches\": %llu",
                   i == 0 ? "" : ",", r.series.c_str(), r.x, r.value, r.proxy_hit_rate,
                   r.origin_hit_rate,
                   static_cast<unsigned long long>(r.bytes_copied_backhaul),
                   r.availability, r.error_rate,
                   static_cast<unsigned long long>(r.retries), r.goodput_mbps,
                   r.staleness_p99_ms, static_cast<unsigned long long>(r.stale_serves),
                   static_cast<unsigned long long>(r.cdn_writes),
                   static_cast<unsigned long long>(r.origin_fleet_fetches));
      if (r.has_latency) {
        std::fprintf(f,
                     ", \"requests\": %llu, \"cache_hit_rate\": %.6g, \"p50_ms\": %.6g, "
                     "\"p90_ms\": %.6g, \"p99_ms\": %.6g, \"max_ms\": %.6g, "
                     "\"origin_p99_ms\": %.6g",
                     static_cast<unsigned long long>(r.requests), r.cache_hit_rate,
                     r.latency.p50_ms, r.latency.p90_ms, r.latency.p99_ms,
                     r.latency.max_ms, r.origin_p99_ms);
      }
      if (r.has_perf) {
        std::fprintf(f, ", \"wall_ms\": %.6g, \"events_per_sec\": %.6g", r.wall_ms,
                     r.events_per_sec);
      }
      // Multi-tenant rows carry a per-tenant breakdown; single-tenant rows
      // omit the key entirely, so every pre-QoS BENCH_*.json is unchanged.
      if (!r.tenants.empty()) {
        std::fprintf(f, ", \"tenants\": [");
        for (size_t t = 0; t < r.tenants.size(); ++t) {
          const ioldrv::TenantBreakdown& b = r.tenants[t];
          std::fprintf(f,
                       "%s{\"tenant_id\": %u, \"name\": \"%s\", \"requests\": %llu, "
                       "\"p50_ms\": %.6g, \"p99_ms\": %.6g, \"cache_hit_rate\": %.6g, "
                       "\"cache_hit_fraction\": %.6g}",
                       t == 0 ? "" : ", ", static_cast<unsigned>(b.tenant),
                       b.name.c_str(), static_cast<unsigned long long>(b.requests),
                       b.latency.p50_ms, b.latency.p99_ms, b.cache_hit_rate,
                       b.cache_hit_fraction);
        }
        std::fprintf(f, "]");
      }
      // CDN hierarchy rows carry a per-level breakdown (level 0 = edges);
      // non-CDN rows omit the key, like the tenants array above.
      if (!r.cdn_levels.empty()) {
        std::fprintf(f, ", \"levels\": [");
        for (size_t l = 0; l < r.cdn_levels.size(); ++l) {
          const ioldrv::ExperimentResult::CdnLevelResult& c = r.cdn_levels[l];
          std::fprintf(
              f,
              "%s{\"level\": %zu, \"proxies\": %d, \"hit_rate\": %.6g, "
              "\"backhaul_bytes\": %llu, \"stale_serves\": %llu, "
              "\"invalidations_sent\": %llu, \"invalidations_applied\": %llu, "
              "\"revalidations\": %llu, \"revalidation_bytes\": %llu, "
              "\"fetch_races\": %llu, \"shaper_holds\": %llu}",
              l == 0 ? "" : ", ", l, c.proxies, c.hit_rate,
              static_cast<unsigned long long>(c.backhaul_bytes),
              static_cast<unsigned long long>(c.stale_serves),
              static_cast<unsigned long long>(c.invalidations_sent),
              static_cast<unsigned long long>(c.invalidations_applied),
              static_cast<unsigned long long>(c.revalidations),
              static_cast<unsigned long long>(c.revalidation_bytes),
              static_cast<unsigned long long>(c.fetch_races),
              static_cast<unsigned long long>(c.shaper_holds));
        }
        std::fprintf(f, "]");
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    return ok_ = true;
  }

 private:
  struct Row {
    std::string series;
    double x = 0;
    double value = 0;
    bool has_latency = false;
    bool has_perf = false;
    ioldrv::LatencySummary latency;
    uint64_t requests = 0;
    double cache_hit_rate = 0;
    double proxy_hit_rate = 0;
    double origin_hit_rate = 0;
    uint64_t bytes_copied_backhaul = 0;
    double origin_p99_ms = 0;
    double wall_ms = 0;
    double events_per_sec = 0;
    double availability = 1.0;
    double error_rate = 0;
    uint64_t retries = 0;
    double goodput_mbps = 0;
    std::vector<ioldrv::TenantBreakdown> tenants;
    double staleness_p99_ms = 0;
    uint64_t stale_serves = 0;
    uint64_t cdn_writes = 0;
    uint64_t origin_fleet_fetches = 0;
    std::vector<ioldrv::ExperimentResult::CdnLevelResult> cdn_levels;
  };
  std::string figure_;
  std::string path_;
  bool smoke_;
  bool attempted_ = false;
  bool ok_ = false;
  std::vector<Row> rows_;
};

// The server configurations of Figures 3-12.
enum class ServerKind {
  kFlash,
  kApache,
  kFlashLite,             // GDS policy + checksum cache.
  kFlashLiteLru,          // Figure 11 ablation: LRU instead of GDS.
  kFlashLiteNoCksum,      // Figure 11 ablation: checksum cache off.
  kFlashLiteLruNoCksum,   // Figure 11 ablation: both off.
};

inline const char* Name(ServerKind kind) {
  switch (kind) {
    case ServerKind::kFlash:
      return "Flash";
    case ServerKind::kApache:
      return "Apache";
    case ServerKind::kFlashLite:
      return "Flash-Lite";
    case ServerKind::kFlashLiteLru:
      return "Flash-Lite-LRU";
    case ServerKind::kFlashLiteNoCksum:
      return "Flash-Lite-nocksum";
    case ServerKind::kFlashLiteLruNoCksum:
      return "Flash-Lite-LRU-nocksum";
  }
  return "?";
}

inline bool IsLite(ServerKind kind) {
  return kind != ServerKind::kFlash && kind != ServerKind::kApache;
}

// A fully assembled machine + server pair for one run.
struct Bench {
  std::unique_ptr<iolsys::System> sys;
  std::unique_ptr<iolhttp::HttpServer> server;
};

// Overwrites the cache-policy and checksum-cache fields `kind` determines;
// everything else (cpu_count, disk_count, RAM) stays as the caller set it.
inline void ApplyKindOptions(ServerKind kind, iolsys::SystemOptions* options) {
  switch (kind) {
    case ServerKind::kFlashLite:
      options->policy = iolsys::SystemOptions::Policy::kGds;
      options->checksum_cache = true;
      break;
    case ServerKind::kFlashLiteLru:
      options->policy = iolsys::SystemOptions::Policy::kPlainLru;
      options->checksum_cache = true;
      break;
    case ServerKind::kFlashLiteNoCksum:
      options->policy = iolsys::SystemOptions::Policy::kGds;
      options->checksum_cache = false;
      break;
    case ServerKind::kFlashLiteLruNoCksum:
      options->policy = iolsys::SystemOptions::Policy::kPlainLru;
      options->checksum_cache = false;
      break;
    default:
      // The copy-based servers use the kernel's default cache policy.
      options->policy = iolsys::SystemOptions::Policy::kPaperLru;
      options->checksum_cache = false;  // No identity to key a cache on.
      break;
  }
}

// One server instance of `kind` on an existing machine. Fleets call this N
// times over one System.
inline std::unique_ptr<iolhttp::HttpServer> MakeServer(ServerKind kind,
                                                       iolsys::System* sys) {
  switch (kind) {
    case ServerKind::kFlash:
      return std::make_unique<iolhttp::FlashServer>(&sys->ctx(), &sys->net(), &sys->io());
    case ServerKind::kApache:
      return std::make_unique<iolhttp::ApacheServer>(&sys->ctx(), &sys->net(), &sys->io());
    default:
      return std::make_unique<iolhttp::FlashLiteServer>(&sys->ctx(), &sys->net(),
                                                        &sys->io(), &sys->runtime());
  }
}

// Builds the machine + server for `kind`. `options` seeds everything the
// kind does not determine (e.g. cost.cpu_count for SMP sweeps); the cache
// policy and checksum-cache fields are derived from the kind and overwrite
// whatever the caller set.
inline Bench MakeBench(ServerKind kind, iolsys::SystemOptions options = {}) {
  ApplyKindOptions(kind, &options);
  Bench b;
  b.sys = std::make_unique<iolsys::System>(options);
  b.server = MakeServer(kind, b.sys.get());
  return b;
}

// Single-file experiment (Figures 3 and 4): all clients request one file.
inline ioldrv::ExperimentResult RunSingleFile(ServerKind kind, size_t file_bytes,
                                              bool persistent, int clients = 40,
                                              uint64_t requests = 4000,
                                              uint64_t warmup = 200) {
  Bench b = MakeBench(kind);
  iolfs::FileId f = b.sys->fs().CreateFile("doc", file_bytes);
  ioldrv::ExperimentConfig config;
  config.persistent_connections = persistent;
  config.max_requests = requests;
  config.warmup_requests = warmup;
  ioldrv::ClosedLoop workload(clients);
  ioldrv::Experiment experiment(&b.sys->ctx(), &b.sys->net(), &b.sys->cache(),
                                b.server.get(), config);
  return experiment.Run(&workload, [f] { return f; });
}

// CGI experiment (Figures 5 and 6).
inline ioldrv::ExperimentResult RunCgi(
    ServerKind kind, size_t doc_bytes, bool persistent, int clients = 40,
    uint64_t requests = 4000,
    iolhttp::CgiTransport transport = iolhttp::CgiTransport::kSimulatedPipe,
    uint64_t warmup = 200) {
  iolsys::SystemOptions options;
  options.checksum_cache = IsLite(kind);
  auto sys = std::make_unique<iolsys::System>(options);
  sys->fs().CreateFile("unused", 16);
  std::unique_ptr<iolhttp::HttpServer> server;
  if (IsLite(kind)) {
    server = std::make_unique<iolhttp::LiteCgiServer>(&sys->ctx(), &sys->net(), &sys->io(),
                                                      &sys->runtime(), doc_bytes, transport);
  } else {
    server = std::make_unique<iolhttp::CopyCgiServer>(&sys->ctx(), &sys->net(), &sys->io(),
                                                      doc_bytes, kind == ServerKind::kApache);
  }
  ioldrv::ExperimentConfig config;
  config.persistent_connections = persistent;
  config.max_requests = requests;
  config.warmup_requests = warmup;
  ioldrv::ClosedLoop workload(clients);
  ioldrv::Experiment experiment(&sys->ctx(), &sys->net(), &sys->cache(), server.get(),
                                config);
  return experiment.Run(&workload, [] { return iolfs::FileId{1}; });
}

// Trace replay (Figures 8, 10, 11, 12). `sequential` replays the log in
// order with a shared cursor (Figure 8); otherwise clients pick random
// entries, SpecWeb96-style (Figures 10-12).
inline ioldrv::ExperimentResult RunTrace(ServerKind kind, const iolwl::Trace& trace,
                                         int clients, uint64_t requests, bool sequential,
                                         iolsim::SimTime round_trip_delay = 0,
                                         uint64_t warmup = 2000) {
  Bench b = MakeBench(kind);
  std::vector<iolfs::FileId> ids = trace.Materialize(&b.sys->fs());

  ioldrv::ExperimentConfig config;
  config.persistent_connections = false;
  config.max_requests = requests;
  config.warmup_requests = warmup;
  config.enforce_cache_budget = true;
  config.delay.one_way_delay = round_trip_delay / 2;
  if (kind == ServerKind::kApache) {
    config.max_concurrent = 150;  // Apache 1.3's default MaxClients.
  }
  ioldrv::ClosedLoop workload(clients);
  ioldrv::Experiment experiment(&b.sys->ctx(), &b.sys->net(), &b.sys->cache(),
                                b.server.get(), config);

  size_t cursor = 0;
  iolsim::Rng rng(7777);
  const std::vector<uint32_t>& reqs = trace.requests();
  return experiment.Run(&workload, [&]() -> iolfs::FileId {
    uint32_t rank;
    if (sequential) {
      rank = reqs[cursor++ % reqs.size()];
    } else {
      rank = reqs[rng.NextBelow(reqs.size())];
    }
    return ids[rank];
  });
}

// Formatting helpers.
inline void PrintHeader(const std::string& title, const std::string& columns) {
  std::printf("# %s\n", title.c_str());
  std::printf("%s\n", columns.c_str());
}

}  // namespace iolbench

#endif  // BENCH_BENCH_UTIL_H_
