// Wall-clock benchmark of the discrete-event engine itself.
//
// Unlike the figure benchmarks (which report *simulated* bandwidth), every
// number here is host-side: how fast the simulator executes. Three rows:
//
//  * engine_ring       — raw EventQueue + Resource dispatch: one
//                        self-rescheduling event per step, no request logic.
//  * macro_flash_tiny  — 1M requests through the full staged pipeline
//                        (Flash, 64 B document, persistent): engine-bound
//                        request turnover.
//  * macro_flash /     — the same pipeline with 1 KB documents on the copy
//    macro_flash_lite    and IO-Lite paths: real per-byte work mixed in,
//                        what fig-scale sweeps actually pay.
//  * macro_lite_50k    — the headline macro run: 1M fig03-shaped requests
//                        (Flash-Lite, 50 KB, nonpersistent, 40 clients).
//                        ~36 link-segment events per response and no
//                        payload touching — exactly the per-MSS-segment
//                        path whose per-event allocations motivated the
//                        engine rebuild.
//
// JSON rows use x = simulated requests (0 for the raw ring), value =
// events_per_sec, plus wall_ms/events_per_sec like every experiment row.
// Run with --smoke in CI (tiny counts: path rot check, not a measurement).

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"

namespace {

using Clock = std::chrono::steady_clock;
using iolbench::ServerKind;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct PerfRow {
  uint64_t requests = 0;  // Simulated requests (0 for the raw ring).
  uint64_t events = 0;
  double wall_ms = 0;
  double events_per_sec = 0;
};

void Report(iolbench::JsonReporter* json, const char* series, const PerfRow& row) {
  std::printf("%-18s requests=%-9llu events=%-9llu wall_ms=%9.2f events_per_sec=%.0f\n",
              series, static_cast<unsigned long long>(row.requests),
              static_cast<unsigned long long>(row.events), row.wall_ms,
              row.events_per_sec);
  json->AddPerf(series, static_cast<double>(row.requests), row.events_per_sec,
                row.wall_ms, row.events_per_sec);
}

// Raw engine throughput: one event per step, each step re-arming itself
// through a Resource acquisition — the skeleton of a pipeline stage with
// zero request logic attached.
PerfRow RunRing(uint64_t steps) {
  iolsim::SimContext ctx;
  struct RingState {
    iolsim::SimContext* ctx;
    uint64_t remaining;
    void Step() {
      if (--remaining == 0) {
        return;
      }
      ctx->cpu().AcquireAsync(&ctx->events(), 10, [this] { Step(); });
    }
  } ring{&ctx, steps};
  Clock::time_point t0 = Clock::now();
  ctx.cpu().AcquireAsync(&ctx.events(), 10, [&ring] { ring.Step(); });
  ctx.events().RunAll();
  PerfRow row;
  row.wall_ms = MsSince(t0);
  row.events = ctx.stats().events_dispatched;
  row.events_per_sec = row.wall_ms > 0 ? row.events / (row.wall_ms / 1000.0) : 0;
  return row;
}

// The macro run: a closed-loop population hammering one cached document
// through the full staged pipeline (parse, cache lookup, header build,
// send, per-segment transmit) on persistent connections — steady-state
// request turnover, which is exactly the path the engine pools keep
// allocation-free.
PerfRow RunMacro(ServerKind kind, size_t doc_bytes, uint64_t requests,
                 bool persistent = true, int clients = 60) {
  iolbench::Bench b = iolbench::MakeBench(kind);
  iolfs::FileId f = b.sys->fs().CreateFile("doc", doc_bytes);
  ioldrv::ExperimentConfig config;
  config.persistent_connections = persistent;
  config.max_requests = requests;
  config.warmup_requests = 1000;
  ioldrv::ClosedLoop workload(clients);
  ioldrv::Experiment experiment(&b.sys->ctx(), &b.sys->net(), &b.sys->cache(),
                                b.server.get(), config);
  ioldrv::ExperimentResult r = experiment.Run(&workload, [f] { return f; });
  PerfRow row;
  row.requests = r.requests;
  row.events = r.events_dispatched;
  row.wall_ms = r.wall_ms;
  row.events_per_sec = row.wall_ms > 0 ? row.events / (row.wall_ms / 1000.0) : 0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("micro_engine", opts);

  const uint64_t ring_steps = opts.smoke ? 20'000 : 5'000'000;
  const uint64_t macro_requests = opts.smoke ? 2'000 : 1'000'000;
  const uint64_t lite_requests = opts.smoke ? 2'000 : 500'000;
  const uint64_t seg_requests = opts.smoke ? 1'000 : 1'000'000;

  iolbench::PrintHeader("Engine wall-clock microbenchmark (host time, not simulated)",
                        "series\trequests\tevents\twall_ms\tevents_per_sec");
#ifndef NDEBUG
  std::printf("# NOTE: assert-enabled (Debug) build — compare like with like\n");
#endif
  // Pin the scheduler explicitly so the row labels are truthful regardless
  // of build/env defaults: unsuffixed rows = calendar queue, *_heap rows =
  // the reference 4-ary heap.
  iolsim::EventQueue::Impl saved_impl = iolsim::EventQueue::default_impl();
  iolsim::EventQueue::set_default_impl(iolsim::EventQueue::Impl::kCalendar);
  Report(&json, "engine_ring", RunRing(ring_steps));
  Report(&json, "macro_flash_tiny", RunMacro(ServerKind::kFlash, 64, macro_requests));
  Report(&json, "macro_flash", RunMacro(ServerKind::kFlash, 1024, macro_requests));
  Report(&json, "macro_flash_lite",
         RunMacro(ServerKind::kFlashLite, 1024, lite_requests));
  Report(&json, "macro_lite_50k",
         RunMacro(ServerKind::kFlashLite, 50 * 1024, seg_requests,
                  /*persistent=*/false, /*clients=*/40));

  // Scheduler contrast: the same rows on the reference 4-ary heap. The
  // unsuffixed rows above run the default calendar queue, so the *_heap
  // deltas are the O(1)-vs-O(log n) scheduler cost in isolation —
  // everything else about the engine is identical.
  iolsim::EventQueue::set_default_impl(iolsim::EventQueue::Impl::kHeap);
  Report(&json, "engine_ring_heap", RunRing(ring_steps));
  Report(&json, "macro_flash_heap", RunMacro(ServerKind::kFlash, 1024, macro_requests));
  Report(&json, "macro_lite_50k_heap",
         RunMacro(ServerKind::kFlashLite, 50 * 1024, seg_requests,
                  /*persistent=*/false, /*clients=*/40));
  iolsim::EventQueue::set_default_impl(saved_impl);
  return json.Flush() ? 0 : 1;
}
