// Figure 5: HTTP/FastCGI test, nonpersistent connections.
//
// Each request is served by a persistent (FastCGI) process that sends a
// memory-resident "dynamic" document to the server over a UNIX pipe.
//
// Paper anchors: Flash and Apache reach roughly HALF their static-content
// bandwidth (pipe copies dominate); Flash-Lite approaches 87% of its static
// speed; Flash-Lite CGI even beats Flash static.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using iolbench::ServerKind;
  const std::vector<size_t> sizes = {500,       2 * 1024,  5 * 1024,   10 * 1024,
                                     20 * 1024, 50 * 1024, 100 * 1024, 200 * 1024};

  iolbench::PrintHeader(
      "Figure 5: HTTP/FastCGI bandwidth (Mb/s), nonpersistent",
      "size_kb\tFlash-Lite\tFL-shm\tFlash\tApache\tlite_cgi/static\tflash_cgi/static");
  for (size_t size : sizes) {
    double lite_cgi = iolbench::RunCgi(ServerKind::kFlashLite, size, false);
    // Same server over the real shared-memory ring transport (src/ipc):
    // identical responses, payload crossing as descriptors.
    double lite_cgi_shm = iolbench::RunCgi(ServerKind::kFlashLite, size, false, 40, 4000,
                                           iolhttp::CgiTransport::kShmRing);
    double flash_cgi = iolbench::RunCgi(ServerKind::kFlash, size, false);
    double apache_cgi = iolbench::RunCgi(ServerKind::kApache, size, false);
    double lite_static = iolbench::RunSingleFile(ServerKind::kFlashLite, size, false);
    double flash_static = iolbench::RunSingleFile(ServerKind::kFlash, size, false);
    std::printf("%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\t%.2f\n", size / 1024.0, lite_cgi,
                lite_cgi_shm, flash_cgi, apache_cgi, lite_cgi / lite_static,
                flash_cgi / flash_static);
  }
  std::printf(
      "# paper: copy-based servers at ~half their static bandwidth; Flash-Lite CGI ~87%% of "
      "static and above Flash static\n");
  return 0;
}
