// Figure 5: HTTP/FastCGI test, nonpersistent connections.
//
// Each request is served by a persistent (FastCGI) process that sends a
// memory-resident "dynamic" document to the server over a UNIX pipe.
//
// Paper anchors: Flash and Apache reach roughly HALF their static-content
// bandwidth (pipe copies dominate); Flash-Lite approaches 87% of its static
// speed; Flash-Lite CGI even beats Flash static.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using iolbench::ServerKind;
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("fig05", opts);
  const int clients = opts.Clients(40);
  const uint64_t requests = opts.Requests(4000);
  const uint64_t warmup = opts.Warmup(200);
  const std::vector<size_t> sizes = {500,       2 * 1024,  5 * 1024,   10 * 1024,
                                     20 * 1024, 50 * 1024, 100 * 1024, 200 * 1024};

  iolbench::PrintHeader(
      "Figure 5: HTTP/FastCGI bandwidth (Mb/s), nonpersistent",
      "size_kb\tFlash-Lite\tFL-shm\tFlash\tApache\tlite_cgi/static\tflash_cgi/static");
  for (size_t size : sizes) {
    ioldrv::ExperimentResult lite_cgi =
        iolbench::RunCgi(ServerKind::kFlashLite, size, false, clients, requests,
                         iolhttp::CgiTransport::kSimulatedPipe, warmup);
    // Same server over the real shared-memory ring transport (src/ipc):
    // identical responses, payload crossing as descriptors.
    ioldrv::ExperimentResult lite_cgi_shm =
        iolbench::RunCgi(ServerKind::kFlashLite, size, false, clients, requests,
                         iolhttp::CgiTransport::kShmRing, warmup);
    ioldrv::ExperimentResult flash_cgi =
        iolbench::RunCgi(ServerKind::kFlash, size, false, clients, requests,
                         iolhttp::CgiTransport::kSimulatedPipe, warmup);
    ioldrv::ExperimentResult apache_cgi =
        iolbench::RunCgi(ServerKind::kApache, size, false, clients, requests,
                         iolhttp::CgiTransport::kSimulatedPipe, warmup);
    double lite_static =
        iolbench::RunSingleFile(ServerKind::kFlashLite, size, false, clients, requests, warmup)
            .megabits_per_sec;
    double flash_static =
        iolbench::RunSingleFile(ServerKind::kFlash, size, false, clients, requests, warmup)
            .megabits_per_sec;
    std::printf("%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\t%.2f\n", size / 1024.0,
                lite_cgi.megabits_per_sec, lite_cgi_shm.megabits_per_sec,
                flash_cgi.megabits_per_sec, apache_cgi.megabits_per_sec,
                lite_cgi.megabits_per_sec / lite_static,
                flash_cgi.megabits_per_sec / flash_static);
    json.AddExperiment("Flash-Lite-CGI", size / 1024.0, lite_cgi);
    json.AddExperiment("Flash-Lite-CGI-shm", size / 1024.0, lite_cgi_shm);
    json.AddExperiment("Flash-CGI", size / 1024.0, flash_cgi);
    json.AddExperiment("Apache-CGI", size / 1024.0, apache_cgi);
  }
  std::printf(
      "# paper: copy-based servers at ~half their static bandwidth; Flash-Lite CGI ~87%% of "
      "static and above Flash static\n");
  return json.Flush() ? 0 : 1;
}
