// Figure 10: MERGED subtrace performance as a function of data set size.
//
// Prefixes of the 150 MB subtrace yield smaller data sets; 64 clients pick
// entries at random (SpecWeb96 methodology) with nonpersistent connections.
//
// Paper anchors: Flash +65-88% over Apache in memory, +71-110% disk-bound;
// Flash-Lite +34-50% over Flash on in-memory data sets (copy avoidance),
// +44-67% on disk-bound sets (GDS cache replacement).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using iolbench::ServerKind;
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("fig10", opts);
  const uint64_t kRequests = opts.Requests(80000);
  const uint64_t kWarmup = opts.Warmup(30000);
  const int kClients = opts.Clients(64);
  // A longer request log than Figure 9's 28403 so the prefix construction
  // can actually cover the full 150 MB of distinct data (the real log's
  // every file appears at least once by construction; a Zipf sample needs
  // more draws to touch the tail).
  iolwl::TraceSpec spec = iolwl::SubtraceSpec();
  spec.num_requests = opts.smoke ? 20000 : 400000;
  iolwl::Trace full = iolwl::Trace::Generate(spec);

  iolbench::PrintHeader("Figure 10: MERGED subtrace bandwidth vs data set size, 64 clients",
                        "dataset_mb\tFlash-Lite\tFlash\tApache\tlite/flash\tflash/apache");
  for (uint64_t mb : {10, 25, 50, 75, 90, 105, 120, 135, 150}) {
    iolwl::Trace prefix = full.Prefix(mb << 20);
    auto lite = iolbench::RunTrace(ServerKind::kFlashLite, prefix, kClients, kRequests, false,
                                   0, kWarmup);
    auto flash =
        iolbench::RunTrace(ServerKind::kFlash, prefix, kClients, kRequests, false, 0, kWarmup);
    auto apache =
        iolbench::RunTrace(ServerKind::kApache, prefix, kClients, kRequests, false, 0, kWarmup);
    std::printf("%.0f\t%.1f\t%.1f\t%.1f\t%.2f\t%.2f\n", prefix.total_bytes() / 1048576.0,
                lite.megabits_per_sec, flash.megabits_per_sec, apache.megabits_per_sec,
                lite.megabits_per_sec / flash.megabits_per_sec,
                flash.megabits_per_sec / apache.megabits_per_sec);
    double x = prefix.total_bytes() / 1048576.0;
    json.AddExperiment("Flash-Lite", x, lite);
    json.AddExperiment("Flash", x, flash);
    json.AddExperiment("Apache", x, apache);
  }
  std::printf(
      "# paper: Flash-Lite +34-50%% (in-memory) and +44-67%% (disk-bound) over Flash; "
      "Flash +65-110%% over Apache\n");
  return json.Flush() ? 0 : 1;
}
