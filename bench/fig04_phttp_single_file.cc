// Figure 4: persistent-connection (HTTP/1.1 keep-alive) single-file test.
//
// Paper anchors: small-file rates rise sharply for Flash and Flash-Lite
// (TCP setup/teardown eliminated); Apache's process-per-connection model
// prevents it from benefiting; Flash-Lite outperforms Flash by up to 43%
// at >= 20 KB, is within 10% of network saturation at 17 KB, and saturates
// the network at >= 30 KB.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using iolbench::ServerKind;
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("fig04", opts);
  const int clients = opts.Clients(40);
  const uint64_t requests = opts.Requests(4000);
  const uint64_t warmup = opts.Warmup(200);
  const std::vector<size_t> sizes = {500,        1 * 1024,   2 * 1024,   3 * 1024,
                                     5 * 1024,   7 * 1024,   10 * 1024,  15 * 1024,
                                     17 * 1024,  20 * 1024,  30 * 1024,  50 * 1024,
                                     100 * 1024, 150 * 1024, 200 * 1024};

  iolbench::PrintHeader("Figure 4: persistent-HTTP single-file bandwidth (Mb/s)",
                        "size_kb\tFlash-Lite\tFlash\tApache\tlite/flash");
  for (size_t size : sizes) {
    ioldrv::ExperimentResult lite =
        iolbench::RunSingleFile(ServerKind::kFlashLite, size, true, clients, requests, warmup);
    ioldrv::ExperimentResult flash =
        iolbench::RunSingleFile(ServerKind::kFlash, size, true, clients, requests, warmup);
    ioldrv::ExperimentResult apache =
        iolbench::RunSingleFile(ServerKind::kApache, size, true, clients, requests, warmup);
    std::printf("%.1f\t%.1f\t%.1f\t%.1f\t%.2f\n", size / 1024.0, lite.megabits_per_sec,
                flash.megabits_per_sec, apache.megabits_per_sec,
                lite.megabits_per_sec / flash.megabits_per_sec);
    json.AddExperiment("Flash-Lite", size / 1024.0, lite);
    json.AddExperiment("Flash", size / 1024.0, flash);
    json.AddExperiment("Apache", size / 1024.0, apache);
  }
  std::printf(
      "# paper: Flash-Lite within 10%% of saturation at 17KB, saturates >=30KB; up to +43%% "
      "over Flash at >=20KB; Apache gains little from persistence\n");
  return json.Flush() ? 0 : 1;
}
