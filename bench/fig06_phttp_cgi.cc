// Figure 6: persistent-HTTP/FastCGI test.
//
// Paper anchors: Flash and Apache gain little from persistent connections
// (the pipe IPC is their bottleneck); Flash-Lite's advantage widens
// further.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using iolbench::ServerKind;
  const std::vector<size_t> sizes = {500,       2 * 1024,  5 * 1024,   10 * 1024,
                                     20 * 1024, 50 * 1024, 100 * 1024, 200 * 1024};

  iolbench::PrintHeader("Figure 6: persistent-HTTP/FastCGI bandwidth (Mb/s)",
                        "size_kb\tFlash-Lite\tFlash\tApache\tflash_gain_vs_http10");
  for (size_t size : sizes) {
    double lite = iolbench::RunCgi(ServerKind::kFlashLite, size, true);
    double flash = iolbench::RunCgi(ServerKind::kFlash, size, true);
    double apache = iolbench::RunCgi(ServerKind::kApache, size, true);
    double flash_http10 = iolbench::RunCgi(ServerKind::kFlash, size, false);
    std::printf("%.1f\t%.1f\t%.1f\t%.1f\t%.2f\n", size / 1024.0, lite, flash, apache,
                flash / flash_http10);
  }
  std::printf(
      "# paper: Flash/Apache cannot exploit persistence (pipe-IPC-bound); Flash-Lite can\n");
  return 0;
}
