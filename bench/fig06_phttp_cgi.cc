// Figure 6: persistent-HTTP/FastCGI test.
//
// Paper anchors: Flash and Apache gain little from persistent connections
// (the pipe IPC is their bottleneck); Flash-Lite's advantage widens
// further.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using iolbench::ServerKind;
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("fig06", opts);
  const int clients = opts.Clients(40);
  const uint64_t requests = opts.Requests(4000);
  const uint64_t warmup = opts.Warmup(200);
  const auto pipe = iolhttp::CgiTransport::kSimulatedPipe;
  const std::vector<size_t> sizes = {500,       2 * 1024,  5 * 1024,   10 * 1024,
                                     20 * 1024, 50 * 1024, 100 * 1024, 200 * 1024};

  iolbench::PrintHeader("Figure 6: persistent-HTTP/FastCGI bandwidth (Mb/s)",
                        "size_kb\tFlash-Lite\tFlash\tApache\tflash_gain_vs_http10");
  for (size_t size : sizes) {
    ioldrv::ExperimentResult lite =
        iolbench::RunCgi(ServerKind::kFlashLite, size, true, clients, requests, pipe, warmup);
    ioldrv::ExperimentResult flash =
        iolbench::RunCgi(ServerKind::kFlash, size, true, clients, requests, pipe, warmup);
    ioldrv::ExperimentResult apache =
        iolbench::RunCgi(ServerKind::kApache, size, true, clients, requests, pipe, warmup);
    double flash_http10 =
        iolbench::RunCgi(ServerKind::kFlash, size, false, clients, requests, pipe, warmup)
            .megabits_per_sec;
    std::printf("%.1f\t%.1f\t%.1f\t%.1f\t%.2f\n", size / 1024.0, lite.megabits_per_sec,
                flash.megabits_per_sec, apache.megabits_per_sec,
                flash.megabits_per_sec / flash_http10);
    json.AddExperiment("Flash-Lite-CGI", size / 1024.0, lite);
    json.AddExperiment("Flash-CGI", size / 1024.0, flash);
    json.AddExperiment("Apache-CGI", size / 1024.0, apache);
  }
  std::printf(
      "# paper: Flash/Apache cannot exploit persistence (pipe-IPC-bound); Flash-Lite can\n");
  return json.Flush() ? 0 : 1;
}
