// Figure 9: characteristics of the 150 MB MERGED subtrace.
//
// Paper anchors: 28403 requests, 5459 files, 150 MB; the 1000 most
// frequently requested files account for 20% of the data and 74% of all
// requests.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/trace.h"

int main(int argc, char** argv) {
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("fig09", opts);
  std::printf("# Figure 9: 150MB subtrace characteristics (synthetic, calibrated)\n");
  iolwl::Trace trace = iolwl::Trace::Generate(iolwl::SubtraceSpec());
  std::printf("files=%zu requests=%zu total=%.0f MB mean_request=%.1f KB\n",
              trace.file_sizes().size(), trace.requests().size(),
              trace.total_bytes() / 1048576.0, trace.MeanRequestBytes() / 1024.0);
  std::printf("top_files\treq_frac\tdata_frac\n");
  for (const auto& point : trace.Cdf({100, 250, 500, 1000, 2000, 3500, 5459})) {
    std::printf("%zu\t%.3f\t%.3f\n", point.top_files, point.request_fraction,
                point.data_fraction);
    json.Add("req_frac", static_cast<double>(point.top_files), point.request_fraction);
    json.Add("data_frac", static_cast<double>(point.top_files), point.data_fraction);
  }
  std::printf("# paper: 28403 requests / 5459 files / 150 MB; top-1000: 74%% req, 20%% data\n");
  return json.Flush() ? 0 : 1;
}
