// CPU-count sweep — a scenario the staged request pipeline unlocks (not in
// the paper, whose testbed is a uniprocessor).
//
// With the request path decomposed into resource-acquiring stages, an N-way
// CPU is just N service units: CPU-bound servers (Apache's
// process-per-connection work, Flash's per-byte copies) should scale with
// CPU count until the link saturates, while Flash-Lite — already near the
// wire at one CPU for large files — gains little. The interesting output is
// where each server's bottleneck moves from CPU to wire.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace {

double RunWithCpus(iolbench::ServerKind kind, int cpus, size_t file_bytes, int clients,
                   uint64_t requests, uint64_t warmup) {
  iolsys::SystemOptions options;
  options.cost.cpu_count = cpus;
  iolbench::Bench b = iolbench::MakeBench(kind, options);
  iolfs::FileId f = b.sys->fs().CreateFile("doc", file_bytes);
  ioldrv::ExperimentConfig config;
  config.persistent_connections = true;
  config.max_requests = requests;
  config.warmup_requests = warmup;
  ioldrv::ClosedLoop workload(clients);
  ioldrv::Experiment experiment(&b.sys->ctx(), &b.sys->net(), &b.sys->cache(),
                                b.server.get(), config);
  return experiment.Run(&workload, [f] { return f; }).megabits_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  using iolbench::ServerKind;
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("cpu_sweep", opts);
  const int clients = opts.Clients(64);
  const uint64_t requests = opts.Requests(4000);
  const uint64_t warmup = opts.Warmup(200);
  const size_t kFileBytes = 20 * 1024;  // CPU-sensitive region of Figure 4.

  iolbench::PrintHeader("CPU-count sweep: 20KB persistent-HTTP bandwidth (Mb/s)",
                        "cpus\tFlash-Lite\tFlash\tApache\tapache_speedup_vs_1cpu");
  double apache_base = 0;
  for (int cpus : {1, 2, 4, 8}) {
    double lite =
        RunWithCpus(ServerKind::kFlashLite, cpus, kFileBytes, clients, requests, warmup);
    double flash = RunWithCpus(ServerKind::kFlash, cpus, kFileBytes, clients, requests, warmup);
    double apache =
        RunWithCpus(ServerKind::kApache, cpus, kFileBytes, clients, requests, warmup);
    if (cpus == 1) {
      apache_base = apache;
    }
    std::printf("%d\t%.1f\t%.1f\t%.1f\t%.2f\n", cpus, lite, flash, apache,
                apache_base > 0 ? apache / apache_base : 0.0);
    json.Add("Flash-Lite", cpus, lite);
    json.Add("Flash", cpus, flash);
    json.Add("Apache", cpus, apache);
  }
  std::printf("# expectation: Apache scales near-linearly until the wire; Flash-Lite is "
              "wire-bound from 1 CPU\n");
  return json.Flush() ? 0 : 1;
}
