// Fleet scaling — N server instances behind a load balancer, one client
// population (ROADMAP: multi-server fleets).
//
// Each fleet member models one machine's CPU and disk (cpu_count and
// disk_count scale with N) while all members share the front link, the
// fabric every scale-out deployment funnels through. Copy-based servers
// are CPU-bound per member on 10 KB documents, so their fleets scale near
// linearly until the shared link saturates; Flash-Lite sits near the link
// from one member, so its curve flattens almost immediately — the paper's
// copy-avoidance argument restated as a provisioning statement: one
// IO-Lite server replaces most of a copy-based fleet.
//
// The balancer axis rides along: round-robin vs least-connections for the
// copy-based fleet, identical mean throughput on this homogeneous workload
// but tighter tails under least-connections.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace {

ioldrv::ExperimentResult RunFleet(iolbench::ServerKind kind, int fleet_size,
                                  bool least_connections, int clients,
                                  uint64_t requests, uint64_t warmup) {
  iolsys::SystemOptions options;
  options.cost.cpu_count = fleet_size;   // One CPU per member...
  options.cost.disk_count = fleet_size;  // ...one disk arm per member...
  iolbench::ApplyKindOptions(kind, &options);
  auto sys = std::make_unique<iolsys::System>(options);  // ...one shared link.
  iolfs::FileId f = sys->fs().CreateFile("doc", 10 * 1024);

  std::vector<std::unique_ptr<iolhttp::HttpServer>> servers;
  std::vector<iolhttp::HttpServer*> members;
  for (int i = 0; i < fleet_size; ++i) {
    servers.push_back(iolbench::MakeServer(kind, sys.get()));
    members.push_back(servers.back().get());
  }
  std::unique_ptr<ioldrv::LoadBalancer> balancer;
  if (least_connections) {
    balancer = std::make_unique<ioldrv::LeastConnectionsBalancer>();
  }
  ioldrv::Fleet fleet(members, std::move(balancer));

  ioldrv::ExperimentConfig config;
  config.persistent_connections = true;
  config.max_requests = requests;
  config.warmup_requests = warmup;
  ioldrv::ClosedLoop workload(clients);
  ioldrv::Experiment experiment(&sys->ctx(), &sys->net(), &sys->cache(),
                                std::move(fleet), config);
  return experiment.Run(&workload, [f] { return f; });
}

}  // namespace

int main(int argc, char** argv) {
  using iolbench::ServerKind;
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("sweep_fleet", opts);
  const int clients = opts.Clients(96);
  const uint64_t requests = opts.Requests(4000);
  const uint64_t warmup = opts.Warmup(200);

  iolbench::PrintHeader(
      "Fleet sweep: N members (1 CPU + 1 disk each), shared front link, "
      "10KB persistent HTTP (Mb/s)",
      "fleet\tFlash-Lite\tFlash\tApache\tApache-lc\tapache_p99_rr/lc");
  for (int n : {1, 2, 4, 8}) {
    ioldrv::ExperimentResult lite =
        RunFleet(ServerKind::kFlashLite, n, false, clients, requests, warmup);
    ioldrv::ExperimentResult flash =
        RunFleet(ServerKind::kFlash, n, false, clients, requests, warmup);
    ioldrv::ExperimentResult apache =
        RunFleet(ServerKind::kApache, n, false, clients, requests, warmup);
    ioldrv::ExperimentResult apache_lc =
        RunFleet(ServerKind::kApache, n, true, clients, requests, warmup);
    std::printf("%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\n", n, lite.megabits_per_sec,
                flash.megabits_per_sec, apache.megabits_per_sec,
                apache_lc.megabits_per_sec,
                apache_lc.latency.p99_ms > 0
                    ? apache.latency.p99_ms / apache_lc.latency.p99_ms
                    : 0.0);
    json.AddExperiment("Flash-Lite", n, lite);
    json.AddExperiment("Flash", n, flash);
    json.AddExperiment("Apache", n, apache);
    json.AddExperiment("Apache/least-conn", n, apache_lc);
    if (n == 4) {
      std::printf("# 4-member Apache fleet share (round-robin): ");
      for (const ioldrv::ServerShare& s : apache.per_server) {
        std::printf("%llu ", static_cast<unsigned long long>(s.requests));
      }
      std::printf("requests/member\n");
    }
  }
  std::printf("# expectation: copy-based fleets scale until the shared link; "
              "Flash-Lite near the link from one member\n");
  return json.Flush() ? 0 : 1;
}
