// Fleet scaling — N server instances behind a load balancer, one client
// population (ROADMAP: multi-server fleets).
//
// Each fleet member models one machine's CPU and disk (cpu_count and
// disk_count scale with N) while all members share the front link, the
// fabric every scale-out deployment funnels through. Copy-based servers
// are CPU-bound per member on 10 KB documents, so their fleets scale near
// linearly until the shared link saturates; Flash-Lite sits near the link
// from one member, so its curve flattens almost immediately — the paper's
// copy-avoidance argument restated as a provisioning statement: one
// IO-Lite server replaces most of a copy-based fleet.
//
// The balancer axis rides along: round-robin vs least-connections for the
// copy-based fleet, identical mean throughput on this homogeneous workload
// but tighter tails under least-connections.
//
// The skewed section replaces the single 10 KB document with a Zipf-
// popularity, heavy-tailed-size trace (iolwl::TraceSpec::zipf_alpha +
// size_sigma), so per-request cost varies by orders of magnitude: a member
// stuck behind one giant response backs up under round-robin, while
// least-connections steers arrivals away from it — the p99 gap the uniform
// workload structurally cannot show (ROADMAP "least-loaded balancing under
// skew").

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace {

ioldrv::ExperimentResult RunFleet(iolbench::ServerKind kind, int fleet_size,
                                  bool least_connections, int clients,
                                  uint64_t requests, uint64_t warmup) {
  iolsys::SystemOptions options;
  options.cost.cpu_count = fleet_size;   // One CPU per member...
  options.cost.disk_count = fleet_size;  // ...one disk arm per member...
  iolbench::ApplyKindOptions(kind, &options);
  auto sys = std::make_unique<iolsys::System>(options);  // ...one shared link.
  iolfs::FileId f = sys->fs().CreateFile("doc", 10 * 1024);

  std::vector<std::unique_ptr<iolhttp::HttpServer>> servers;
  std::vector<iolhttp::HttpServer*> members;
  for (int i = 0; i < fleet_size; ++i) {
    servers.push_back(iolbench::MakeServer(kind, sys.get()));
    members.push_back(servers.back().get());
  }
  std::unique_ptr<ioldrv::LoadBalancer> balancer;
  if (least_connections) {
    balancer = std::make_unique<ioldrv::LeastConnectionsBalancer>();
  }
  ioldrv::Fleet fleet(members, std::move(balancer));

  ioldrv::ExperimentConfig config;
  config.persistent_connections = true;
  config.max_requests = requests;
  config.warmup_requests = warmup;
  ioldrv::ClosedLoop workload(clients);
  ioldrv::Experiment experiment(&sys->ctx(), &sys->net(), &sys->cache(),
                                std::move(fleet), config);
  return experiment.Run(&workload, [f] { return f; });
}

// Heavy-tailed per-request cost: requests draw files from a Zipf trace with
// a fat lognormal size tail, so service demands are wildly unequal across
// arrivals and the balancing policy finally matters. Arrivals are open-loop
// (fixed offered load): a closed loop would slow its arrival rate to
// whatever the unluckier balancer sustains, hiding the queueing difference
// the policy exists to fix.
ioldrv::ExperimentResult RunFleetSkewed(iolbench::ServerKind kind, int fleet_size,
                                        bool least_connections,
                                        double arrivals_per_sec, uint64_t requests,
                                        uint64_t warmup) {
  iolsys::SystemOptions options;
  options.cost.cpu_count = fleet_size;
  options.cost.disk_count = fleet_size;
  iolbench::ApplyKindOptions(kind, &options);
  auto sys = std::make_unique<iolsys::System>(options);

  iolwl::TraceSpec spec;
  spec.name = "fleet-skew";
  spec.num_files = 200;
  spec.total_bytes = 40ull * 1024 * 1024;
  spec.num_requests = 20000;
  spec.mean_request_bytes = 12 * 1024;
  spec.zipf_alpha = 1.0;   // The existing popularity-skew knob of trace.cc.
  spec.size_sigma = 2.0;   // Fat size tail: p99 cost >> median cost.
  spec.seed = 99;
  iolwl::Trace trace = iolwl::Trace::Generate(spec);
  std::vector<iolfs::FileId> ids = trace.Materialize(&sys->fs());

  std::vector<std::unique_ptr<iolhttp::HttpServer>> servers;
  std::vector<iolhttp::HttpServer*> members;
  for (int i = 0; i < fleet_size; ++i) {
    servers.push_back(iolbench::MakeServer(kind, sys.get()));
    members.push_back(servers.back().get());
  }
  std::unique_ptr<ioldrv::LoadBalancer> balancer;
  if (least_connections) {
    balancer = std::make_unique<ioldrv::LeastConnectionsBalancer>();
  }
  ioldrv::Fleet fleet(members, std::move(balancer));

  ioldrv::ExperimentConfig config;
  config.persistent_connections = true;
  config.max_requests = requests;
  config.warmup_requests = warmup;
  // Tight per-member concurrency cap: one giant response occupies a quarter
  // of a member's slots, so arrivals back up in *that member's* accept
  // queue — the per-member queueing that lets the balancing policy matter
  // (the members' CPUs are one pooled resource, so without admission queues
  // every policy looks identical). Round-robin keeps queueing behind the
  // stuck member even while siblings have free slots; least-connections
  // steers around it.
  config.max_concurrent = 4;
  ioldrv::OpenLoopPoisson workload(arrivals_per_sec, 0x5eed);
  ioldrv::Experiment experiment(&sys->ctx(), &sys->net(), &sys->cache(),
                                std::move(fleet), config);
  iolsim::Rng rng(4242);
  const std::vector<uint32_t>& reqs = trace.requests();
  return experiment.Run(&workload, [&]() -> iolfs::FileId {
    return ids[reqs[rng.NextBelow(reqs.size())]];
  });
}

}  // namespace

int main(int argc, char** argv) {
  using iolbench::ServerKind;
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("sweep_fleet", opts);
  const int clients = opts.Clients(96);
  const uint64_t requests = opts.Requests(4000);
  const uint64_t warmup = opts.Warmup(200);

  iolbench::PrintHeader(
      "Fleet sweep: N members (1 CPU + 1 disk each), shared front link, "
      "10KB persistent HTTP (Mb/s)",
      "fleet\tFlash-Lite\tFlash\tApache\tApache-lc\tapache_p99_rr/lc");
  for (int n : {1, 2, 4, 8}) {
    ioldrv::ExperimentResult lite =
        RunFleet(ServerKind::kFlashLite, n, false, clients, requests, warmup);
    ioldrv::ExperimentResult flash =
        RunFleet(ServerKind::kFlash, n, false, clients, requests, warmup);
    ioldrv::ExperimentResult apache =
        RunFleet(ServerKind::kApache, n, false, clients, requests, warmup);
    ioldrv::ExperimentResult apache_lc =
        RunFleet(ServerKind::kApache, n, true, clients, requests, warmup);
    std::printf("%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\n", n, lite.megabits_per_sec,
                flash.megabits_per_sec, apache.megabits_per_sec,
                apache_lc.megabits_per_sec,
                apache_lc.latency.p99_ms > 0
                    ? apache.latency.p99_ms / apache_lc.latency.p99_ms
                    : 0.0);
    json.AddExperiment("Flash-Lite", n, lite);
    json.AddExperiment("Flash", n, flash);
    json.AddExperiment("Apache", n, apache);
    json.AddExperiment("Apache/least-conn", n, apache_lc);
    if (n == 4) {
      std::printf("# 4-member Apache fleet share (round-robin): ");
      for (const ioldrv::ServerShare& s : apache.per_server) {
        std::printf("%llu ", static_cast<unsigned long long>(s.requests));
      }
      std::printf("requests/member\n");
    }
  }
  std::printf("# expectation: copy-based fleets scale until the shared link; "
              "Flash-Lite near the link from one member\n");

  iolbench::PrintHeader(
      "Fleet sweep, heavy-tailed request costs (Zipf trace, fat size tail): "
      "round-robin vs least-connections",
      "fleet\trr_p99_ms\tlc_p99_ms\tp99 rr/lc\trr Mb/s\tlc Mb/s");
  for (int n : {4, 8}) {
    // Loaded enough that members intermittently hit their admission cap
    // (where steering matters), below saturation so the open loop stays
    // stable — tuned against the measured capacity on this trace.
    double rate = 320.0 * n;
    ioldrv::ExperimentResult rr = RunFleetSkewed(ServerKind::kApache, n, false,
                                                 rate, requests, warmup);
    ioldrv::ExperimentResult lc = RunFleetSkewed(ServerKind::kApache, n, true,
                                                 rate, requests, warmup);
    std::printf("%d\t%.2f\t%.2f\t%.2f\t%.1f\t%.1f\n", n, rr.latency.p99_ms,
                lc.latency.p99_ms,
                lc.latency.p99_ms > 0 ? rr.latency.p99_ms / lc.latency.p99_ms : 0.0,
                rr.megabits_per_sec, lc.megabits_per_sec);
    json.AddExperiment("Apache-skew", n, rr);
    json.AddExperiment("Apache-skew/least-conn", n, lc);
  }
  std::printf("# expectation: least-connections tightens the p99 tail once "
              "per-request costs are heavy-tailed\n");
  return json.Flush() ? 0 : 1;
}
