// Proxy-cache tier sweep: copy-based vs IO-Lite proxies, remote vs
// co-located backhaul (src/proxy, composed by ioldrv::ProxyTier).
//
// A two-member origin fleet sits behind a proxy; a Zipf-popularity,
// lognormal-size trace drives a closed client population through the
// proxy's front link. Swept: the proxy-tier cache budget (hit rate rises
// with it) and the trace's Zipf alpha (hit rate rises with skew).
//
// Cache RAM is assigned the way the architectures actually use it: the
// co-located copy-based pair splits the budget between the proxy's private
// cache and the origin's kernel cache (the same object ends up in both —
// double caching), while the co-located IO-Lite pair pools the whole budget
// in the machine's unified cache and forwards misses over the IOL-IPC
// descriptor path. Expected shape: the IO-Lite co-located proxy leads the
// copy-based proxy at every cache size, and the gap widens as the hit rate
// drops — every miss costs the copy pair two socket crossings, a private
// memcpy and a duplicate cache entry, while the IO-Lite pair pays 32-byte
// descriptors. Remote proxies converge toward the backhaul wire as misses
// climb; the co-located IO-Lite curve is the one with no backhaul to hit.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/driver/proxy_tier.h"

namespace {

struct ProxyPoint {
  ioldrv::ExperimentResult result;
  const char* series;
};

iolwl::TraceSpec ProxySpec(double alpha) {
  iolwl::TraceSpec spec;
  spec.name = "proxy-zipf";
  spec.num_files = 300;
  spec.total_bytes = 30ull * 1024 * 1024;
  spec.num_requests = 20000;
  spec.mean_request_bytes = 10 * 1024;
  spec.zipf_alpha = alpha;
  spec.size_sigma = 1.2;
  spec.seed = 42;
  return spec;
}

ioldrv::ExperimentResult RunProxy(iolproxy::ProxyDataPath path,
                                  iolproxy::BackhaulMode mode, double alpha,
                                  uint64_t cache_bytes, int clients,
                                  uint64_t requests, uint64_t warmup) {
  bool lite = path == iolproxy::ProxyDataPath::kIoLite;
  iolsys::SystemOptions options;
  options.cost.cpu_count = 2;   // Two origin members, one CPU + disk arm each
  options.cost.disk_count = 2;  // (shared with the proxy when co-located).
  iolbench::ApplyKindOptions(
      lite ? iolbench::ServerKind::kFlashLite : iolbench::ServerKind::kFlash, &options);
  auto sys = std::make_unique<iolsys::System>(options);

  iolwl::Trace trace = iolwl::Trace::Generate(ProxySpec(alpha));
  std::vector<iolfs::FileId> ids = trace.Materialize(&sys->fs());

  std::vector<std::unique_ptr<iolhttp::HttpServer>> origin_servers;
  std::vector<iolhttp::HttpServer*> members;
  for (int i = 0; i < 2; ++i) {
    origin_servers.push_back(iolbench::MakeServer(
        lite ? iolbench::ServerKind::kFlashLite : iolbench::ServerKind::kFlash,
        sys.get()));
    members.push_back(origin_servers.back().get());
  }

  iolproxy::ProxyConfig pconfig;
  pconfig.data_path = path;
  pconfig.backhaul = mode;
  pconfig.policy = lite ? iolproxy::ProxyCachePolicy::kGds
                        : iolproxy::ProxyCachePolicy::kLru;
  if (mode == iolproxy::BackhaulMode::kColocated && !lite) {
    // Two private caches on one machine split the budget.
    pconfig.cache_bytes = cache_bytes / 2;
    pconfig.origin_cache_bytes = cache_bytes / 2;
  } else {
    // Remote proxies spend the budget on their own machine; the co-located
    // IO-Lite pair pools all of it in the unified cache.
    pconfig.cache_bytes = cache_bytes;
  }

  ioldrv::ExperimentConfig config;
  config.persistent_connections = true;
  config.max_requests = requests;
  config.warmup_requests = warmup;
  ioldrv::ProxyTier tier(&sys->ctx(), &sys->net(), &sys->io(), &sys->runtime(),
                         ioldrv::Fleet(members), pconfig, config);

  ioldrv::ClosedLoop workload(clients);
  iolsim::Rng rng(7777);
  const std::vector<uint32_t>& reqs = trace.requests();
  return tier.Run(&workload, [&]() -> iolfs::FileId {
    return ids[reqs[rng.NextBelow(reqs.size())]];
  });
}

const char* kSeries[4] = {"copy-remote", "IOL-remote", "copy-colocated",
                          "IOL-colocated"};

std::vector<ProxyPoint> RunMatrix(double alpha, uint64_t cache_bytes, int clients,
                                  uint64_t requests, uint64_t warmup) {
  using iolproxy::BackhaulMode;
  using iolproxy::ProxyDataPath;
  std::vector<ProxyPoint> points;
  points.push_back({RunProxy(ProxyDataPath::kCopy, BackhaulMode::kRemote, alpha,
                             cache_bytes, clients, requests, warmup),
                    kSeries[0]});
  points.push_back({RunProxy(ProxyDataPath::kIoLite, BackhaulMode::kRemote, alpha,
                             cache_bytes, clients, requests, warmup),
                    kSeries[1]});
  points.push_back({RunProxy(ProxyDataPath::kCopy, BackhaulMode::kColocated, alpha,
                             cache_bytes, clients, requests, warmup),
                    kSeries[2]});
  points.push_back({RunProxy(ProxyDataPath::kIoLite, BackhaulMode::kColocated, alpha,
                             cache_bytes, clients, requests, warmup),
                    kSeries[3]});
  return points;
}

void PrintRow(double x, const std::vector<ProxyPoint>& points) {
  std::printf("%.2g", x);
  for (const ProxyPoint& p : points) {
    std::printf("\t%.1f/%.0f%%", p.result.megabits_per_sec,
                p.result.proxy_hit_rate * 100.0);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("fig_proxy_tier", opts);
  const int clients = opts.Clients(48);
  const uint64_t requests = opts.Requests(4000);
  const uint64_t warmup = opts.Warmup(400);

  iolbench::PrintHeader(
      "Proxy tier: Mb/s + proxy hit rate by proxy cache budget (MB), Zipf "
      "alpha 1.0",
      "cacheMB\tcopy-remote\tIOL-remote\tcopy-coloc\tIOL-coloc");
  for (uint64_t mb : {2, 8, 32}) {
    std::vector<ProxyPoint> points =
        RunMatrix(1.0, mb * 1024 * 1024, clients, requests, warmup);
    PrintRow(static_cast<double>(mb), points);
    for (const ProxyPoint& p : points) {
      json.AddExperiment(p.series, static_cast<double>(mb), p.result);
    }
  }

  iolbench::PrintHeader(
      "Proxy tier: Mb/s + proxy hit rate by Zipf alpha, 8 MB proxy cache",
      "alpha\tcopy-remote\tIOL-remote\tcopy-coloc\tIOL-coloc");
  for (double alpha : {0.6, 1.0, 1.3}) {
    std::vector<ProxyPoint> points =
        RunMatrix(alpha, 8 * 1024 * 1024, clients, requests, warmup);
    PrintRow(alpha, points);
    for (const ProxyPoint& p : points) {
      json.AddExperiment(std::string(p.series) + "-alpha", alpha, p.result);
    }
  }

  std::printf(
      "# expectation: IOL-colocated >= copy-based at every cache size, gap "
      "widening as hit rate drops; warm co-located IO-Lite runs report 0 "
      "backhaul bytes copied\n");
  return json.Flush() ? 0 : 1;
}
