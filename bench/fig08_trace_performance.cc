// Figure 8: overall trace performance — 64 clients replaying the ECE, CS
// and MERGED logs in order, shared cursor, nonpersistent connections.
//
// Paper anchors: Flash-Lite significantly outperforms Flash and Apache on
// ECE and CS; on MERGED (large working set, poor locality) all servers are
// disk-bound and converge. Absolute bands in the paper: roughly 35-65 Mb/s
// for ECE/CS leaders, ~20 Mb/s when disk-bound.
//
// Replay length is capped (see EXPERIMENTS.md): the popularity mix of the
// full log is preserved; the cap only bounds host run time.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using iolbench::ServerKind;
  const uint64_t kRequests = 30000;
  std::vector<iolwl::TraceSpec> specs = {iolwl::EceSpec(), iolwl::CsSpec(),
                                         iolwl::MergedSpec()};
  // Cap request-sequence length (distribution intact; see header comment).
  for (iolwl::TraceSpec& spec : specs) {
    spec.num_requests = 120000;
  }

  iolbench::PrintHeader("Figure 8: overall trace performance (Mb/s), 64 clients",
                        "trace\tFlash-Lite\tFlash\tApache\tlite_hit\tflash_hit");
  for (const iolwl::TraceSpec& spec : specs) {
    iolwl::Trace trace = iolwl::Trace::Generate(spec);
    auto lite = iolbench::RunTrace(ServerKind::kFlashLite, trace, 64, kRequests, true);
    auto flash = iolbench::RunTrace(ServerKind::kFlash, trace, 64, kRequests, true);
    auto apache = iolbench::RunTrace(ServerKind::kApache, trace, 64, kRequests, true);
    std::printf("%s\t%.1f\t%.1f\t%.1f\t%.2f\t%.2f\n", spec.name.c_str(), lite.mbps,
                flash.mbps, apache.mbps, lite.hit_rate, flash.hit_rate);
  }
  std::printf(
      "# paper: Flash-Lite >> Flash > Apache on ECE and CS; MERGED disk-bound, all "
      "servers converge\n");
  return 0;
}
