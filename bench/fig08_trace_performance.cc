// Figure 8: overall trace performance — 64 clients replaying the ECE, CS
// and MERGED logs in order, shared cursor, nonpersistent connections.
//
// Paper anchors: Flash-Lite significantly outperforms Flash and Apache on
// ECE and CS; on MERGED (large working set, poor locality) all servers are
// disk-bound and converge. Absolute bands in the paper: roughly 35-65 Mb/s
// for ECE/CS leaders, ~20 Mb/s when disk-bound.
//
// Replay length is capped (see EXPERIMENTS.md): the popularity mix of the
// full log is preserved; the cap only bounds host run time.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using iolbench::ServerKind;
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("fig08", opts);
  const uint64_t kRequests = opts.Requests(30000);
  const uint64_t warmup = opts.Warmup(2000);
  const int clients = opts.Clients(64);
  std::vector<iolwl::TraceSpec> specs = {iolwl::EceSpec(), iolwl::CsSpec(),
                                         iolwl::MergedSpec()};
  // Cap request-sequence length (distribution intact; see header comment).
  for (iolwl::TraceSpec& spec : specs) {
    spec.num_requests = opts.smoke ? 20000 : 120000;
  }

  iolbench::PrintHeader("Figure 8: overall trace performance (Mb/s), 64 clients",
                        "trace\tFlash-Lite\tFlash\tApache\tlite_hit\tflash_hit");
  int trace_index = 0;
  for (const iolwl::TraceSpec& spec : specs) {
    iolwl::Trace trace = iolwl::Trace::Generate(spec);
    auto lite =
        iolbench::RunTrace(ServerKind::kFlashLite, trace, clients, kRequests, true, 0, warmup);
    auto flash =
        iolbench::RunTrace(ServerKind::kFlash, trace, clients, kRequests, true, 0, warmup);
    auto apache =
        iolbench::RunTrace(ServerKind::kApache, trace, clients, kRequests, true, 0, warmup);
    std::printf("%s\t%.1f\t%.1f\t%.1f\t%.2f\t%.2f\n", spec.name.c_str(),
                lite.megabits_per_sec, flash.megabits_per_sec, apache.megabits_per_sec,
                lite.cache_hit_rate, flash.cache_hit_rate);
    json.AddExperiment("Flash-Lite:" + spec.name, trace_index, lite);
    json.AddExperiment("Flash:" + spec.name, trace_index, flash);
    json.AddExperiment("Apache:" + spec.name, trace_index, apache);
    ++trace_index;
  }
  std::printf(
      "# paper: Flash-Lite >> Flash > Apache on ECE and CS; MERGED disk-bound, all "
      "servers converge\n");
  return json.Flush() ? 0 : 1;
}
