// Tenant isolation under an adversarial mix (src/qos, composed by
// ioldrv::TenantMix).
//
// Two tenants share one two-member fleet: a latency-sensitive tenant whose
// Zipf working set fits comfortably in the unified cache, and an
// adversarial tenant sequentially scanning a file set several times the
// cache budget — the classic cache-busting neighbor. Swept: the QoS policy
// plane's two isolation mechanisms, WFQ on CPU/disk/link and per-tenant
// cache partitioning, each on/off (four cells), against the hot tenant's
// solo run as the no-interference baseline.
//
// Expected shape: with the plane off, the scan evicts the hot set (every
// hot request rides the disk queue behind scan reads) and the hot tenant's
// p99 degrades well past 2x its solo run. Cache partitioning alone restores
// the hits but still queues hot CPU/link work FIFO behind the scan; WFQ
// alone bounds the queueing but cannot stop the evictions. Both together
// hold the hot tenant within a small factor of solo — the isolation
// invariant the full run enforces (hot p99 <= 1.25x solo; degradation
// >= 2x with the plane off; fleet throughput no more than 15% below the
// QoS-off run, i.e. fair sharing is work-conserving, not throughput-traded).

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/driver/tenant_mix.h"
#include "src/qos/policy.h"

namespace {

constexpr uint64_t kCacheBudget = 2ull * 1024 * 1024;  // Unified cache bytes.
constexpr uint64_t kHotReserved = 1536ull * 1024;      // Hot tenant's carve.
constexpr int kScanFiles = 256;                        // x 64 KB = 8x budget.
constexpr uint64_t kScanFileBytes = 64 * 1024;

struct MixOutcome {
  ioldrv::ExperimentResult result;
  iolsim::TenantId hot_tenant = 1;
  double cpu_utilization = 0;
  double disk_utilization = 0;
};

const ioldrv::TenantBreakdown* Breakdown(const ioldrv::ExperimentResult& result,
                                         iolsim::TenantId t) {
  for (const ioldrv::TenantBreakdown& b : result.tenants) {
    if (b.tenant == t) {
      return &b;
    }
  }
  return nullptr;
}

double HotP99(const MixOutcome& out) {
  const ioldrv::TenantBreakdown* b = Breakdown(out.result, out.hot_tenant);
  return b != nullptr ? b->latency.p99_ms : 0;
}

MixOutcome RunMix(bool with_scan, bool wfq, bool partition,
                  const iolbench::BenchOptions& opts) {
  iolsys::SystemOptions options;
  options.cost.cpu_count = 2;   // Two fleet members, one CPU + disk arm each.
  options.cost.disk_count = 2;
  iolbench::ApplyKindOptions(iolbench::ServerKind::kFlashLiteLru, &options);
  auto sys = std::make_unique<iolsys::System>(options);

  // The hot tenant's working set: 160 Zipf-popular files, ~1.25 MB total —
  // fits the reserved carve, but its tail's reuse interval is longer than
  // an entry's lifetime under the scan's global-LRU churn, so without
  // partitioning the scan steadily evicts it.
  iolwl::TraceSpec hot_spec;
  hot_spec.name = "hot-zipf";
  hot_spec.num_files = 160;
  hot_spec.total_bytes = 1280 * 1024;
  hot_spec.num_requests = 20000;
  hot_spec.mean_request_bytes = 8 * 1024;
  hot_spec.zipf_alpha = 1.1;
  hot_spec.size_sigma = 0.5;
  hot_spec.seed = 11;
  iolwl::Trace hot_trace = iolwl::Trace::Generate(hot_spec);
  std::vector<iolfs::FileId> hot_ids = hot_trace.Materialize(&sys->fs());

  // The scan tenant cycles a set 4x the cache budget: every request is a
  // compulsory miss once the cycle exceeds the cache, and each insert
  // evicts someone.
  std::vector<iolfs::FileId> scan_ids;
  scan_ids.reserve(kScanFiles);
  for (int i = 0; i < kScanFiles; ++i) {
    scan_ids.push_back(sys->fs().CreateFile("scan" + std::to_string(i), kScanFileBytes));
  }

  iolsim::Rng hot_rng(4242);
  const std::vector<uint32_t>& hot_reqs = hot_trace.requests();
  size_t scan_cursor = 0;

  std::vector<ioldrv::TenantWorkloadSpec> specs;
  ioldrv::TenantWorkloadSpec hot;
  hot.name = "hot-zipf";
  hot.weight = 8;
  hot.clients = opts.Clients(12);
  hot.cache_reserved_bytes = kHotReserved;
  hot.next_file = [&hot_rng, &hot_reqs, &hot_ids] {
    return hot_ids[hot_reqs[hot_rng.NextBelow(hot_reqs.size())]];
  };
  specs.push_back(hot);
  if (with_scan) {
    ioldrv::TenantWorkloadSpec scan;
    scan.name = "scan";
    scan.weight = 1;
    scan.clients = opts.Clients(24);
    scan.next_file = [&scan_ids, &scan_cursor] {
      iolfs::FileId f = scan_ids[scan_cursor];
      scan_cursor = (scan_cursor + 1) % scan_ids.size();
      return f;
    };
    specs.push_back(scan);
  }
  ioldrv::TenantMix mix(std::move(specs));

  std::vector<std::unique_ptr<iolhttp::HttpServer>> servers;
  std::vector<iolhttp::HttpServer*> members;
  for (int i = 0; i < 2; ++i) {
    servers.push_back(iolbench::MakeServer(iolbench::ServerKind::kFlashLiteLru, sys.get()));
    members.push_back(servers.back().get());
  }

  ioldrv::ExperimentConfig config;
  config.persistent_connections = true;
  config.max_requests = opts.Requests(6000);
  config.warmup_requests = opts.Warmup(1000);
  config.cache_budget_bytes = kCacheBudget;

  iolqos::QosPolicy policy;
  iolqos::CachePlan plan;
  if (wfq || partition) {
    mix.Configure(&policy, partition ? &plan : nullptr);
    config.qos = &policy;
    sys->cache().AttachQos(&policy);
    if (wfq) {
      policy.AttachWfq(&sys->ctx());
      policy.SetStarvationBound(500 * iolsim::kMillisecond);
    }
    if (partition) {
      plan.total_bytes = kCacheBudget;
      sys->cache().SetPartitions(&plan);
    }
  }

  // Deterministic prewarm: the hot working set starts resident (owned by
  // the hot tenant under partitioning), so counted hot misses measure the
  // scan's eviction pressure, not first touch.
  sys->ctx().set_active_tenant(mix.tenant_id(0));
  for (iolfs::FileId f : hot_ids) {
    uint64_t size = sys->fs().SizeOf(f);
    sys->cache().Insert(
        f, 0, iolite::Aggregate::FromBuffer(sys->fs().ReadFromDisk(f, 0, size)));
  }
  sys->ctx().set_active_tenant(iolsim::kDefaultTenant);

  ioldrv::Experiment experiment(&sys->ctx(), &sys->net(), &sys->cache(),
                                ioldrv::Fleet(members), config);
  MixOutcome out;
  out.result = experiment.Run(&mix, [&hot_ids] { return hot_ids[0]; });
  out.hot_tenant = mix.tenant_id(0);

  iolsim::SimTime elapsed = sys->ctx().clock().now();
  if (elapsed > 0) {
    out.cpu_utilization = static_cast<double>(sys->ctx().cpu().busy_time()) /
                          (static_cast<double>(elapsed) * sys->ctx().cpu().units());
    out.disk_utilization = static_cast<double>(sys->ctx().disk().busy_time()) /
                           (static_cast<double>(elapsed) * sys->ctx().disk().units());
  }
  return out;
}

void PrintRow(const char* series, const MixOutcome& out, double solo_p99) {
  const ioldrv::TenantBreakdown* hot = Breakdown(out.result, out.hot_tenant);
  const ioldrv::TenantBreakdown* scan = Breakdown(out.result, 2);
  std::printf("%-14s\t%8.2f\t%5.2fx\t%7.2f\t%6.1f\t%5.0f%%\t%4.0f%%\n", series,
              hot != nullptr ? hot->latency.p99_ms : 0,
              solo_p99 > 0 && hot != nullptr ? hot->latency.p99_ms / solo_p99 : 0,
              scan != nullptr ? scan->latency.p99_ms : 0,
              out.result.megabits_per_sec,
              (hot != nullptr ? hot->cache_hit_fraction : 0) * 100.0,
              out.cpu_utilization * 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("fig_tenant_isolation", opts);

  iolbench::PrintHeader(
      "Tenant isolation: hot-Zipf tenant p99 vs cache-busting scan, QoS "
      "plane swept",
      "cell          \t hot p99\tvs solo\tscan p99\t  Mb/s\t hot hit\tcpu");

  MixOutcome solo = RunMix(false, false, false, opts);
  double solo_p99 = HotP99(solo);
  PrintRow("solo-hot", solo, solo_p99);
  json.AddExperiment("solo-hot", 0, solo.result);

  struct Cell {
    const char* series;
    bool wfq;
    bool partition;
  };
  const Cell kCells[4] = {{"no-qos", false, false},
                          {"wfq-only", true, false},
                          {"partition-only", false, true},
                          {"wfq+partition", true, true}};
  MixOutcome cells[4];
  for (int i = 0; i < 4; ++i) {
    cells[i] = RunMix(true, kCells[i].wfq, kCells[i].partition, opts);
    PrintRow(kCells[i].series, cells[i], solo_p99);
    json.AddExperiment(kCells[i].series, i + 1, cells[i].result);
  }

  std::printf(
      "# expectation: no-qos >= 2x solo p99; wfq+partition <= 1.25x solo "
      "p99 at comparable CPU utilization (work-conserving)\n");

  bool ok = true;
  if (!opts.smoke) {
    // The isolation invariants the ISSUE pins; smoke runs are too short to
    // reach the adversarial steady state, so only full runs enforce them.
    double degraded = HotP99(cells[0]) / solo_p99;
    double isolated = HotP99(cells[3]) / solo_p99;
    // One-sided: fairness must not be bought with throughput. (QoS on
    // typically serves MORE — restoring the hot tenant's hits takes load
    // off the disk — and that direction is a win, not a violation.)
    double util_gap =
        cells[0].result.megabits_per_sec > 0
            ? (cells[0].result.megabits_per_sec - cells[3].result.megabits_per_sec) /
                  cells[0].result.megabits_per_sec
            : 0;
    std::printf("# no-qos degradation %.2fx (need >= 2): %s\n", degraded,
                degraded >= 2.0 ? "ok" : "FAIL");
    std::printf("# wfq+partition ratio %.2fx (need <= 1.25): %s\n", isolated,
                isolated <= 1.25 ? "ok" : "FAIL");
    std::printf("# fleet throughput loss vs no-qos %.1f%% (need <= 15%%): %s\n",
                util_gap * 100.0, util_gap <= 0.15 ? "ok" : "FAIL");
    ok = degraded >= 2.0 && isolated <= 1.25 && util_gap <= 0.15;
  }
  return json.Flush() && ok ? 0 : 1;
}
