// Shared-memory data plane A/B: the same proxy + origin + CGI worker roles
// run as the deterministic in-process simulator, as threads, and as real
// fork()ed processes sharing one region (src/ipc + src/proxy/plane_proxy,
// composed by ioldrv::RunProcessTier).
//
// Every row reports host wall-clock throughput, the cross-process payload
// bytes actually copied (read back through the region's ShmTable the way an
// unrelated process would), and whether the response stream was
// byte-identical to the independent reference. The copy-mode row is the
// contrast path: the identical plane with a memcpy per response body.
//
// Expected shape: identical checksums down the whole column, zero copied
// bytes everywhere except the copy row, and the process rows paying only
// scheduling overhead — the payload path is the same mapped bytes in every
// mode.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/driver/process_tier.h"

namespace {

struct PlaneRow {
  std::string series;
  double x = 0;  // Document size in KB.
  ioldrv::ProcessTierResult r;
};

ioldrv::ProcessTierResult RunMode(iolipc::PlaneMode mode, bool copy_path,
                                  uint64_t doc_bytes, int requests, bool verify) {
  ioldrv::ProcessTierConfig cfg;
  cfg.mode = mode;
  cfg.region_name = "iolite-bench-plane";
  cfg.requests = requests;
  cfg.inflight = 8;
  cfg.docs.doc_count = 24;
  cfg.docs.doc_bytes = doc_bytes;
  cfg.cgi_every = 8;
  cfg.cgi_body_bytes = 2048;
  cfg.proxy_workers = 2;
  cfg.origin_workers = 1;
  cfg.cgi_workers = 1;
  cfg.copy_data_path = copy_path;
  cfg.verify = verify;
  return ioldrv::RunProcessTier(cfg);
}

void PrintRow(const PlaneRow& row) {
  std::printf("%-22s %6.0f KB  %9.1f Mb/s  %6llu req  %4llu err  copied=%8llu B  "
              "identical=%d  cksum=%016llx  %7.1f ms\n",
              row.series.c_str(), row.x, row.r.mbits_per_sec,
              (unsigned long long)row.r.requests, (unsigned long long)row.r.errors,
              (unsigned long long)row.r.bytes_copied_cross_process,
              row.r.byte_identical ? 1 : 0,
              (unsigned long long)row.r.response_checksum, row.r.wall_ms);
}

// The ProcessTier result does not fit JsonReporter's experiment schema
// (simulated-time latency vs host wall clock), so this figure writes its
// rows directly: same envelope, plane-specific fields.
bool WriteJson(const std::string& path, bool smoke, const std::vector<PlaneRow>& rows) {
  if (path.empty()) {
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fig_ipc_plane: cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\"figure\": \"ipc_plane\", \"smoke\": %s, \"rows\": [",
               smoke ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const PlaneRow& row = rows[i];
    std::fprintf(
        f,
        "%s\n  {\"series\": \"%s\", \"x\": %.6g, \"value\": %.6g, "
        "\"requests\": %llu, \"errors\": %llu, \"wall_ms\": %.6g, "
        "\"events_per_sec\": %.6g, "
        "\"bytes_copied_cross_process\": %llu, \"byte_identical\": %s, "
        "\"checksum\": \"%016llx\", \"counters_out_of_process\": %s}",
        i == 0 ? "" : ",", row.series.c_str(), row.x, row.r.mbits_per_sec,
        (unsigned long long)row.r.requests, (unsigned long long)row.r.errors,
        row.r.wall_ms, row.r.requests_per_sec,
        (unsigned long long)row.r.bytes_copied_cross_process,
        row.r.byte_identical ? "true" : "false",
        (unsigned long long)row.r.response_checksum,
        row.r.counters_out_of_process ? "true" : "false");
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  const int requests = static_cast<int>(opts.Requests(2500));
  // Smoke mode verifies every response byte; full runs trust the checksum
  // column (still computed and compared) and spend the time on throughput.
  const bool verify = opts.smoke;

  std::vector<uint64_t> doc_sizes = {4096, 16384, 65536};
  if (opts.smoke) {
    doc_sizes = {8192};
  }

  iolbench::PrintHeader(
      "Shared-memory plane: one worker implementation, in-process sim vs "
      "threads vs forked processes (host wall clock)",
      "series                 docKB      throughput     reqs   errs   "
      "copied-x-process   identical  checksum          wall");

  std::vector<PlaneRow> rows;
  bool ok = true;
  for (uint64_t doc_bytes : doc_sizes) {
    double kb = static_cast<double>(doc_bytes) / 1024.0;
    PlaneRow sim{"plane-in-process", kb,
                 RunMode(iolipc::PlaneMode::kInProcess, false, doc_bytes, requests, verify)};
    PlaneRow thr{"plane-threads", kb,
                 RunMode(iolipc::PlaneMode::kThreads, false, doc_bytes, requests, verify)};
    PlaneRow proc{"plane-processes", kb,
                  RunMode(iolipc::PlaneMode::kProcesses, false, doc_bytes, requests, verify)};
    PlaneRow copy{"plane-processes-copy", kb,
                  RunMode(iolipc::PlaneMode::kProcesses, true, doc_bytes, requests, verify)};
    for (const PlaneRow* row : {&sim, &thr, &proc, &copy}) {
      PrintRow(*row);
      rows.push_back(*row);
      ok = ok && row->r.ok && row->r.errors == 0 && row->r.byte_identical;
    }
    // The cross-mode contract, checked per size: one byte stream, and zero
    // cross-process copies everywhere but the contrast row.
    ok = ok && sim.r.response_checksum == thr.r.response_checksum &&
         sim.r.response_checksum == proc.r.response_checksum &&
         sim.r.response_checksum == copy.r.response_checksum &&
         proc.r.bytes_copied_cross_process == 0 &&
         copy.r.bytes_copied_cross_process > 0;
  }

  std::printf(
      "# expectation: identical checksums down each column; zero copied "
      "bytes except the copy row; process rows within scheduling noise of "
      "threads\n");
  bool json_ok = WriteJson(opts.json_path, opts.smoke, rows);
  if (!ok) {
    std::fprintf(stderr, "fig_ipc_plane: cross-mode contract violated\n");
  }
  return ok && json_ok ? 0 : 1;
}
