#!/usr/bin/env sh
# Runs the built figure benchmarks and writes BENCH_figNN.json trajectory
# files (one JSON document per figure, see JsonReporter in bench_util.h).
#
# Usage: bench/run_figs.sh [build-dir] [out-dir] [--smoke]
#   build-dir  where the bench_* binaries live (default: build)
#   out-dir    where the BENCH_*.json files go   (default: .)
#   --smoke    forward smoke mode (tiny request counts) to every benchmark
set -eu

build_dir=""
out_dir=""
smoke=""
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke="--smoke" ;;
    -*) echo "unknown flag: $arg" >&2; exit 2 ;;
    *) if [ -z "$build_dir" ]; then build_dir="$arg"
       elif [ -z "$out_dir" ]; then out_dir="$arg"
       else echo "too many arguments" >&2; exit 2
       fi ;;
  esac
done
build_dir=${build_dir:-build}
out_dir=${out_dir:-.}

mkdir -p "$out_dir"
found=0
for bin in "$build_dir"/bench_fig* "$build_dir"/bench_sweep_* "$build_dir"/bench_ablation_*; do
  [ -x "$bin" ] || continue
  found=1
  name=$(basename "$bin")
  # bench_fig03_http_single_file -> BENCH_fig03.json; unnumbered figures
  # (bench_fig_latency_load) and sweeps keep their full stem.
  case "$name" in
    bench_fig[0-9]*)
      short=$(echo "$name" | sed 's/^bench_\(fig[0-9][0-9]*\).*/\1/') ;;
    bench_fig_ipc_plane)
      short="ipc_plane" ;;
    bench_fig_shard_scaling)
      short="shard_scaling" ;;
    bench_fig_tenant_isolation)
      short="tenant_isolation" ;;
    bench_fig_fault_tolerance)
      short="fault_tolerance" ;;
    bench_fig_cdn_hierarchy)
      short="cdn_hierarchy" ;;
    *)
      short=${name#bench_} ;;
  esac
  out="$out_dir/BENCH_${short}.json"
  echo "== $name -> $out"
  "$bin" $smoke --json "$out"
done

if [ "$found" = 0 ]; then
  echo "no bench binaries found under $build_dir (configure + build first)" >&2
  exit 1
fi

# Engine wall-clock trajectory (host-time, not simulated; see
# bench/micro_engine.cc). Recorded alongside the figures so every run of
# this script leaves a BENCH_engine.json to compare across commits.
if [ -x "$build_dir/bench_micro_engine" ]; then
  echo "== bench_micro_engine -> $out_dir/BENCH_engine.json"
  "$build_dir/bench_micro_engine" $smoke --json "$out_dir/BENCH_engine.json"
fi

# Schema smoke check: the latency-aware benches must emit non-zero p99
# fields (a zeroed histogram means telemetry silently broke).
for f in "$out_dir/BENCH_fig_latency_load.json" "$out_dir/BENCH_sweep_fleet.json"; do
  [ -f "$f" ] || continue
  if ! grep -q '"p99_ms": ' "$f"; then
    echo "schema check failed: no p99_ms fields in $f" >&2
    exit 1
  fi
  if ! grep '"p99_ms": ' "$f" | grep -qv '"p99_ms": 0[,}]'; then
    echo "schema check failed: every p99_ms is zero in $f" >&2
    exit 1
  fi
  echo "== schema check ok: $f has non-zero p99_ms"
done

# Proxy-tier schema check: every row carries the per-tier fields, and the
# proxy fig must report real (non-zero) proxy hit rates plus zero backhaul
# copies on its IO-Lite series.
f="$out_dir/BENCH_fig_proxy_tier.json"
if [ -f "$f" ]; then
  for field in proxy_hit_rate origin_hit_rate bytes_copied_backhaul; do
    if ! grep -q "\"$field\": " "$f"; then
      echo "schema check failed: no $field fields in $f" >&2
      exit 1
    fi
  done
  if ! grep '"proxy_hit_rate": ' "$f" | grep -qv '"proxy_hit_rate": 0[,}]'; then
    echo "schema check failed: every proxy_hit_rate is zero in $f" >&2
    exit 1
  fi
  if grep '"series": "IOL-' "$f" | grep -qv '"bytes_copied_backhaul": 0[,}]'; then
    echo "schema check failed: an IO-Lite series row copied backhaul bytes in $f" >&2
    exit 1
  fi
  echo "== schema check ok: $f per-tier fields present, IO-Lite rows copy-free"
fi

# Shard-scaling schema check: every cell must carry the host-side engine
# throughput (events_per_sec — the quantity the scaling figure plots) and a
# real latency distribution, and all three shard series must be present.
# (The bench itself already exits non-zero if shard counts diverge.)
f="$out_dir/BENCH_shard_scaling.json"
if [ -f "$f" ]; then
  for field in events_per_sec p99_ms wall_ms; do
    if ! grep -q "\"$field\": " "$f"; then
      echo "schema check failed: no $field fields in $f" >&2
      exit 1
    fi
  done
  for series in shards-1 shards-2 shards-4; do
    if ! grep -q "\"series\": \"$series\"" "$f"; then
      echo "schema check failed: missing series $series in $f" >&2
      exit 1
    fi
  done
  if ! grep '"events_per_sec": ' "$f" | grep -qv '"events_per_sec": 0[,}]'; then
    echo "schema check failed: every events_per_sec is zero in $f" >&2
    exit 1
  fi
  echo "== schema check ok: $f has all shard series with live events_per_sec"
fi

# Data-plane schema check: every row must carry the cross-process copy
# counter and byte-identity verdict; the zero-copy process rows must report
# 0 copied bytes and the copy-mode contrast rows must not.
f="$out_dir/BENCH_ipc_plane.json"
if [ -f "$f" ]; then
  for field in bytes_copied_cross_process byte_identical checksum wall_ms; do
    if ! grep -q "\"$field\": " "$f"; then
      echo "schema check failed: no $field fields in $f" >&2
      exit 1
    fi
  done
  if grep -q '"byte_identical": false' "$f"; then
    echo "schema check failed: a plane row was not byte-identical in $f" >&2
    exit 1
  fi
  if grep '"series": "plane-processes"' "$f" | grep -qv '"bytes_copied_cross_process": 0[,}]'; then
    echo "schema check failed: the zero-copy plane copied payload bytes in $f" >&2
    exit 1
  fi
  if grep '"series": "plane-processes-copy"' "$f" | grep -q '"bytes_copied_cross_process": 0[,}]'; then
    echo "schema check failed: the copy-mode contrast row copied nothing in $f" >&2
    exit 1
  fi
  echo "== schema check ok: $f plane rows identical, zero-copy rows copy-free"
fi

# Tenant-isolation schema check: multi-tenant rows must carry the per-tenant
# breakdown (tenant_id + per-tenant percentiles), both tenants of the
# adversarial mix must appear, and the hot tenant must report a live p99.
# (The bench itself exits non-zero if the isolation invariant fails on a
# full run.)
f="$out_dir/BENCH_tenant_isolation.json"
if [ -f "$f" ]; then
  for field in tenants tenant_id cache_hit_rate; do
    if ! grep -q "\"$field\": " "$f"; then
      echo "schema check failed: no $field fields in $f" >&2
      exit 1
    fi
  done
  for tenant in hot-zipf scan; do
    if ! grep -q "\"name\": \"$tenant\"" "$f"; then
      echo "schema check failed: missing tenant $tenant in $f" >&2
      exit 1
    fi
  done
  if ! grep -q '"series": "wfq+partition"' "$f"; then
    echo "schema check failed: missing wfq+partition cell in $f" >&2
    exit 1
  fi
  echo "== schema check ok: $f rows carry per-tenant breakdowns"
fi

# Fault-tolerance schema check: every row must carry the recovery accounting
# (availability / error_rate / retries / goodput), the policy lattice must be
# complete, and the fault-free baseline must report 100% availability. (The
# bench itself exits non-zero if an acceptance gate fails on a full run.)
f="$out_dir/BENCH_fault_tolerance.json"
if [ -f "$f" ]; then
  for field in availability error_rate retries goodput_mbps; do
    if ! grep -q "\"$field\": " "$f"; then
      echo "schema check failed: no $field fields in $f" >&2
      exit 1
    fi
  done
  for series in fault-free unprotected retry retry+hedge retry+hedge+health; do
    if ! grep -q "\"series\": \"$series\"" "$f"; then
      echo "schema check failed: missing series $series in $f" >&2
      exit 1
    fi
  done
  if grep '"series": "fault-free"' "$f" | grep -qv '"availability": 1[,}]'; then
    echo "schema check failed: the fault-free baseline lost requests in $f" >&2
    exit 1
  fi
  echo "== schema check ok: $f rows carry recovery accounting"
fi

# CDN-hierarchy schema check: every row must carry the staleness accounting,
# the tree rows must carry the per-level breakdown, all three consistency
# protocols must appear, and the flat baseline must be present. (The bench
# itself exits non-zero if an acceptance gate fails on a full run.)
f="$out_dir/BENCH_cdn_hierarchy.json"
if [ -f "$f" ]; then
  for field in staleness_p99_ms stale_serves cdn_writes origin_fleet_fetches; do
    if ! grep -q "\"$field\": " "$f"; then
      echo "schema check failed: no $field fields in $f" >&2
      exit 1
    fi
  done
  for field in levels hit_rate backhaul_bytes invalidations_sent revalidation_bytes; do
    if ! grep -q "\"$field\": " "$f"; then
      echo "schema check failed: no per-level $field fields in $f" >&2
      exit 1
    fi
  done
  for series in flat tree-edge-heavy invalidate/edge-heavy revalidate/edge-heavy stale/edge-heavy; do
    if ! grep -q "\"series\": \"$series\"" "$f"; then
      echo "schema check failed: missing series $series in $f" >&2
      exit 1
    fi
  done
  echo "== schema check ok: $f rows carry per-level consistency accounting"
fi
