// Shard-scaling sweep: the parallel engine's wall-clock throughput as the
// simulated user population grows.
//
// A 4-member Flash-Lite fleet (each member its own machine: 8-way CPU,
// own cache and link) serves an open-loop Poisson population: N simulated
// users, each thinking kThinkSeconds between requests, so the offered rate
// is N / kThinkSeconds. The sweep crosses users × shard_count (OS threads
// executing the 5 lanes: frontend + 4 members). Each (users, shards) cell
// reports the *host-side* events/s alongside the simulated row; the
// shard-count invariance contract (telemetry byte-identical across shard
// counts) is asserted inline for every users point — a scaling number from
// a run that diverged would be meaningless.
//
// Wall-clock speedup is bounded by min(shards, hardware cores); the row
// prints std::thread::hardware_concurrency() so a 1-core container's flat
// curve reads as what it is. Simulated quantities are identical either way.
//
// JSON: series "shards-N", x = simulated users, one AddExperiment row per
// cell (events_per_sec rides on every row), written as
// BENCH_shard_scaling.json by bench/run_figs.sh.

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/driver/sharded_experiment.h"

namespace {

using iolbench::ServerKind;

constexpr size_t kMembers = 4;
constexpr double kThinkSeconds = 100.0;  // Per-user think time.
constexpr iolsim::SimTime kOneWayDelay = 1'000'000;  // 1 ms lookahead.
constexpr size_t kDocBytes = 1024;

ioldrv::ShardMember MakeMember(size_t) {
  iolsys::SystemOptions options;
  options.cost.cpu_count = 8;  // One SMP machine per member.
  iolbench::ApplyKindOptions(ServerKind::kFlashLite, &options);
  ioldrv::ShardMember m;
  m.sys = std::make_unique<iolsys::System>(options);
  m.server = iolbench::MakeServer(ServerKind::kFlashLite, m.sys.get());
  m.sys->fs().CreateFile("doc", kDocBytes);
  return m;
}

struct Cell {
  ioldrv::ShardedResult sharded;
  double events_per_sec = 0;
};

Cell RunCell(double users, int shards, uint64_t requests, uint64_t warmup) {
  ioldrv::ExperimentConfig config;
  config.max_requests = requests;
  config.warmup_requests = warmup;
  config.persistent_connections = true;
  config.delay.one_way_delay = kOneWayDelay;
  config.shard_count = shards;
  ioldrv::ShardedExperiment exp(kMembers, MakeMember, config);
  iolfs::FileId doc = exp.member_system(0)->fs().Lookup("doc");
  ioldrv::OpenLoopPoisson workload(users / kThinkSeconds, 0x10a111CE, 64);
  Cell cell;
  cell.sharded = exp.Run(&workload, [doc] { return doc; });
  const ioldrv::ExperimentResult& r = cell.sharded.result;
  cell.events_per_sec =
      r.wall_ms > 0 ? r.events_dispatched / (r.wall_ms / 1000.0) : 0;
  return cell;
}

// The invariance contract, enforced where the scaling numbers are made.
void CheckInvariant(const ioldrv::ExperimentResult& base,
                    const ioldrv::ExperimentResult& other, double users, int shards) {
  if (base.requests != other.requests || base.bytes != other.bytes ||
      base.seconds != other.seconds || base.latency.p99_ms != other.latency.p99_ms ||
      base.events_dispatched != other.events_dispatched) {
    std::fprintf(stderr,
                 "shard-count invariance violated at users=%.0f shards=%d "
                 "(requests %llu vs %llu, events %llu vs %llu)\n",
                 users, shards, static_cast<unsigned long long>(base.requests),
                 static_cast<unsigned long long>(other.requests),
                 static_cast<unsigned long long>(base.events_dispatched),
                 static_cast<unsigned long long>(other.events_dispatched));
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("fig_shard_scaling", opts);

  const std::vector<double> user_points =
      opts.smoke ? std::vector<double>{100'000, 1'000'000}
                 : std::vector<double>{100'000, 1'000'000, 10'000'000};
  const std::vector<int> shard_points{1, 2, 4};
  const uint64_t requests = opts.smoke ? 400 : 60'000;
  const uint64_t warmup = opts.smoke ? 40 : 2'000;
  const unsigned cores = std::thread::hardware_concurrency();

  iolbench::PrintHeader(
      "Shard scaling: 4-member Flash-Lite fleet, open-loop population "
      "(rate = users / 100 s think time)",
      "users\tshards\trequests\tMb/s\tp99_ms\tevents\tevents_per_sec\tspeedup");
  std::printf("# host cores: %u (wall-clock speedup is bounded by min(shards, cores))\n",
              cores);
#ifndef NDEBUG
  std::printf("# NOTE: assert-enabled (Debug) build — compare like with like\n");
#endif

  for (double users : user_points) {
    double base_eps = 0;
    ioldrv::ExperimentResult base;
    for (int shards : shard_points) {
      Cell cell = RunCell(users, shards, requests, warmup);
      const ioldrv::ExperimentResult& r = cell.sharded.result;
      if (shards == shard_points.front()) {
        base = r;
        base_eps = cell.events_per_sec;
      } else {
        CheckInvariant(base, r, users, shards);
      }
      double speedup = base_eps > 0 ? cell.events_per_sec / base_eps : 0;
      std::printf("%8.0f\t%d\t%llu\t%8.2f\t%7.3f\t%llu\t%.0f\t%.2fx\n", users, shards,
                  static_cast<unsigned long long>(r.requests), r.megabits_per_sec,
                  r.latency.p99_ms, static_cast<unsigned long long>(r.events_dispatched),
                  cell.events_per_sec, speedup);
      char series[32];
      std::snprintf(series, sizeof(series), "shards-%d", shards);
      json.AddExperiment(series, users, r);
    }
  }
  return json.Flush() ? 0 : 1;
}
