// Figure 3: HTTP single-file test, nonpersistent (HTTP/1.0) connections.
//
// 40 clients repeatedly request the same document; file sizes sweep 500 B to
// 200 KB; everything is served from the cache after the first request.
//
// Paper anchors: Flash > Apache throughout (up to +71% at 20 KB);
// Flash-Lite ~= Flash below ~5 KB (control overheads dominate);
// Flash-Lite +38-43% over Flash for >= 50 KB; +73-94% over Apache.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using iolbench::ServerKind;
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("fig03", opts);
  const int clients = opts.Clients(40);
  const uint64_t requests = opts.Requests(4000);
  const uint64_t warmup = opts.Warmup(200);
  const std::vector<size_t> sizes = {500,           1 * 1024,   2 * 1024,  3 * 1024,
                                     5 * 1024,      7 * 1024,   10 * 1024, 15 * 1024,
                                     20 * 1024,     30 * 1024,  50 * 1024, 75 * 1024,
                                     100 * 1024,    150 * 1024, 200 * 1024};

  iolbench::PrintHeader("Figure 3: HTTP single-file bandwidth (Mb/s), nonpersistent",
                        "size_kb\tFlash-Lite\tFlash\tApache\tlite/flash");
  for (size_t size : sizes) {
    ioldrv::ExperimentResult lite =
        iolbench::RunSingleFile(ServerKind::kFlashLite, size, false, clients, requests, warmup);
    ioldrv::ExperimentResult flash =
        iolbench::RunSingleFile(ServerKind::kFlash, size, false, clients, requests, warmup);
    ioldrv::ExperimentResult apache =
        iolbench::RunSingleFile(ServerKind::kApache, size, false, clients, requests, warmup);
    std::printf("%.1f\t%.1f\t%.1f\t%.1f\t%.2f\n", size / 1024.0, lite.megabits_per_sec,
                flash.megabits_per_sec, apache.megabits_per_sec,
                lite.megabits_per_sec / flash.megabits_per_sec);
    json.AddExperiment("Flash-Lite", size / 1024.0, lite);
    json.AddExperiment("Flash", size / 1024.0, flash);
    json.AddExperiment("Apache", size / 1024.0, apache);
  }
  std::printf(
      "# paper: Flash-Lite ~= Flash at <=5KB; +38-43%% at >=50KB; Flash up to +71%% over "
      "Apache\n");
  return json.Flush() ? 0 : 1;
}
