// Figure 11: contributions of the individual optimizations.
//
// Flash-Lite is run with {GDS, LRU} cache replacement crossed with
// {checksum cache on, off}, against Flash, on the MERGED subtrace sweep.
//
// Paper anchors: copy elimination alone (Flash vs Flash-Lite-LRU-nocksum,
// in-memory) is worth 21-33%; checksum caching adds 10-15% in-memory; GDS
// over LRU is worth 17-28% on disk-heavy data sets.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using iolbench::ServerKind;
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("fig11", opts);
  const uint64_t kRequests = opts.Requests(80000);
  const uint64_t kWarmup = opts.Warmup(30000);
  const int kClients = opts.Clients(64);
  iolwl::TraceSpec spec = iolwl::SubtraceSpec();
  spec.num_requests = opts.smoke ? 20000 : 400000;  // Full 150 MB coverage (see fig10).
  iolwl::Trace full = iolwl::Trace::Generate(spec);

  iolbench::PrintHeader(
      "Figure 11: optimization contributions on the MERGED subtrace (Mb/s)",
      "dataset_mb\tFL(gds+ck)\tFL(lru+ck)\tFL(gds)\tFL(lru)\tFlash");
  for (uint64_t mb : {10, 25, 50, 75, 90, 105, 120, 135, 150}) {
    iolwl::Trace prefix = full.Prefix(mb << 20);
    auto run = [&](ServerKind kind) {
      return iolbench::RunTrace(kind, prefix, kClients, kRequests, false, 0, kWarmup);
    };
    auto gds_ck = run(ServerKind::kFlashLite);
    auto lru_ck = run(ServerKind::kFlashLiteLru);
    auto gds = run(ServerKind::kFlashLiteNoCksum);
    auto lru = run(ServerKind::kFlashLiteLruNoCksum);
    auto flash = run(ServerKind::kFlash);
    std::printf("%.0f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n", prefix.total_bytes() / 1048576.0,
                gds_ck.megabits_per_sec, lru_ck.megabits_per_sec, gds.megabits_per_sec,
                lru.megabits_per_sec, flash.megabits_per_sec);
    double x = prefix.total_bytes() / 1048576.0;
    json.AddExperiment("FL-gds-ck", x, gds_ck);
    json.AddExperiment("FL-lru-ck", x, lru_ck);
    json.AddExperiment("FL-gds", x, gds);
    json.AddExperiment("FL-lru", x, lru);
    json.AddExperiment("Flash", x, flash);
  }
  std::printf(
      "# paper: copy elimination 21-33%% (Flash vs FL-LRU-nocksum, in-memory); checksum "
      "cache +10-15%%; GDS vs LRU +17-28%% disk-heavy\n");
  return json.Flush() ? 0 : 1;
}
