// Figure 11: contributions of the individual optimizations.
//
// Flash-Lite is run with {GDS, LRU} cache replacement crossed with
// {checksum cache on, off}, against Flash, on the MERGED subtrace sweep.
//
// Paper anchors: copy elimination alone (Flash vs Flash-Lite-LRU-nocksum,
// in-memory) is worth 21-33%; checksum caching adds 10-15% in-memory; GDS
// over LRU is worth 17-28% on disk-heavy data sets.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using iolbench::ServerKind;
  const uint64_t kRequests = 80000;
  iolwl::TraceSpec spec = iolwl::SubtraceSpec();
  spec.num_requests = 400000;  // Full 150 MB coverage (see fig10).
  iolwl::Trace full = iolwl::Trace::Generate(spec);

  iolbench::PrintHeader(
      "Figure 11: optimization contributions on the MERGED subtrace (Mb/s)",
      "dataset_mb\tFL(gds+ck)\tFL(lru+ck)\tFL(gds)\tFL(lru)\tFlash");
  for (uint64_t mb : {10, 25, 50, 75, 90, 105, 120, 135, 150}) {
    iolwl::Trace prefix = full.Prefix(mb << 20);
    auto gds_ck = iolbench::RunTrace(ServerKind::kFlashLite, prefix, 64, kRequests, false, 0, 30000);
    auto lru_ck = iolbench::RunTrace(ServerKind::kFlashLiteLru, prefix, 64, kRequests, false, 0, 30000);
    auto gds = iolbench::RunTrace(ServerKind::kFlashLiteNoCksum, prefix, 64, kRequests, false, 0, 30000);
    auto lru = iolbench::RunTrace(ServerKind::kFlashLiteLruNoCksum, prefix, 64, kRequests,
                                  false, 0, 30000);
    auto flash = iolbench::RunTrace(ServerKind::kFlash, prefix, 64, kRequests, false, 0, 30000);
    std::printf("%.0f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n", prefix.total_bytes() / 1048576.0,
                gds_ck.mbps, lru_ck.mbps, gds.mbps, lru.mbps, flash.mbps);
  }
  std::printf(
      "# paper: copy elimination 21-33%% (Flash vs FL-LRU-nocksum, in-memory); checksum "
      "cache +10-15%%; GDS vs LRU +17-28%% disk-heavy\n");
  return 0;
}
