// Ablation (Section 6.7): sendfile(2)-style monolithic syscall vs IO-Lite
// vs the mmap+writev baseline on the static single-file workload.
//
// Expected shape: sendfile eliminates the socket-buffer copy like IO-Lite,
// so it beats Flash everywhere; but without content identity (generation
// numbers) it recomputes the TCP checksum on every transmission, so IO-Lite
// keeps a margin that grows with file size. (And sendfile offers nothing
// for the CGI experiments at all.)

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace {

ioldrv::ExperimentResult RunSendfile(size_t file_bytes, bool persistent, int clients,
                                     uint64_t requests, uint64_t warmup) {
  iolsys::SystemOptions options;
  options.checksum_cache = true;  // Present but unusable by sendfile's path.
  auto sys = std::make_unique<iolsys::System>(options);
  iolfs::FileId f = sys->fs().CreateFile("doc", file_bytes);
  iolhttp::SendfileServer server(&sys->ctx(), &sys->net(), &sys->io());
  ioldrv::ExperimentConfig config;
  config.persistent_connections = persistent;
  config.max_requests = requests;
  config.warmup_requests = warmup;
  ioldrv::ClosedLoop workload(clients);
  ioldrv::Experiment experiment(&sys->ctx(), &sys->net(), &sys->cache(), &server, config);
  return experiment.Run(&workload, [f] { return f; });
}

}  // namespace

int main(int argc, char** argv) {
  using iolbench::ServerKind;
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("ablation_sendfile", opts);
  const int clients = opts.Clients(40);
  const uint64_t requests = opts.Requests(4000);
  const uint64_t warmup = opts.Warmup(200);
  iolbench::PrintHeader(
      "Ablation: sendfile vs IO-Lite vs mmap+writev (Mb/s, nonpersistent)",
      "size_kb\tFlash-Lite\tsendfile\tFlash\tlite/sendfile");
  for (size_t size : {2 * 1024, 10 * 1024, 50 * 1024, 200 * 1024}) {
    ioldrv::ExperimentResult lite =
        iolbench::RunSingleFile(ServerKind::kFlashLite, size, false, clients, requests, warmup);
    ioldrv::ExperimentResult sendfile = RunSendfile(size, false, clients, requests, warmup);
    ioldrv::ExperimentResult flash =
        iolbench::RunSingleFile(ServerKind::kFlash, size, false, clients, requests, warmup);
    std::printf("%.1f\t%.1f\t%.1f\t%.1f\t%.2f\n", size / 1024.0, lite.megabits_per_sec,
                sendfile.megabits_per_sec, flash.megabits_per_sec,
                lite.megabits_per_sec / sendfile.megabits_per_sec);
    json.AddExperiment("Flash-Lite", size / 1024.0, lite);
    json.AddExperiment("sendfile", size / 1024.0, sendfile);
    json.AddExperiment("Flash", size / 1024.0, flash);
  }
  std::printf("# expectation: Flash < sendfile < Flash-Lite; the IO-Lite margin is the "
              "cached checksum\n");
  return json.Flush() ? 0 : 1;
}
