// Fault tolerance: availability and tail latency under deterministic chaos
// (src/fault, composed by ioldrv::Experiment's recovery plane).
//
// A four-member Flash-Lite fleet behind a least-connections balancer is
// subjected to a seeded FaultPlan — member crash/restart cycles plus disk
// fail-slow windows — at three intensities (x = mean member uptime, ms).
// Swept: the recovery lattice, cumulative along the series axis:
//
//   unprotected    request timeout only (failures surface, nothing recovers)
//   retry          + capped exponential backoff retries
//   retry+hedge    + a hedged duplicate to a different member at ~p99
//   full           + health-check ejection / re-admission
//
// Expected shape: least-connections is actively dangerous under crashes —
// a black-holed member stops accumulating in-service load, so the balancer
// *attracts* traffic to it and unprotected availability collapses well
// below 99%. Retries convert most timeouts into late successes, hedging
// pulls the blind-window requests off the dead member at ~p99 instead of
// the full timeout, and health ejection stops the bleeding at its source.
// The full lattice holds availability >= 99.9% with p99 within 3x the
// fault-free baseline — the acceptance gates of the full run, plus the
// determinism gate: an EMPTY FaultPlan must reproduce the fault-free run
// byte for byte (same record stream, same final clock).

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/driver/telemetry.h"
#include "src/fault/fault_plan.h"
#include "src/fault/recovery.h"

namespace {

constexpr int kMembers = 4;
constexpr int kDocs = 96;
constexpr uint64_t kDocBytes = 24 * 1024;
constexpr iolsim::SimTime kRestartDelay = 20 * iolsim::kMillisecond;
constexpr iolsim::SimTime kHorizon = 4 * iolsim::kSecond;

enum class Policy { kUnprotected, kRetry, kRetryHedge, kFull };

const char* Name(Policy p) {
  switch (p) {
    case Policy::kUnprotected:
      return "unprotected";
    case Policy::kRetry:
      return "retry";
    case Policy::kRetryHedge:
      return "retry+hedge";
    case Policy::kFull:
      return "retry+hedge+health";
  }
  return "?";
}

struct CellOutcome {
  ioldrv::ExperimentResult result;
  uint64_t record_fold = 0;        // Fold of the full record stream.
  iolsim::SimTime final_clock = 0; // Sim clock after the run drained.
};

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4);
  return h * 0xff51afd7ed558ccdull;
}

// Folds every field of every record: two runs with equal folds (and equal
// final clocks) took byte-identical trajectories through the engine.
uint64_t FoldRecords(const ioldrv::Telemetry& t) {
  uint64_t h = 1469598103934665603ull;
  for (const ioldrv::RequestRecord& r : t.records()) {
    h = Mix(h, r.issue);
    h = Mix(h, r.admit);
    h = Mix(h, r.complete);
    h = Mix(h, r.bytes);
    h = Mix(h, r.server);
    h = Mix(h, r.tenant);
    h = Mix(h, static_cast<uint64_t>(r.outcome));
    h = Mix(h, r.attempts);
    h = Mix(h, r.cache_hit ? 1 : 0);
    h = Mix(h, r.counted ? 1 : 0);
  }
  return h;
}

// One data point: a fresh four-member machine, the given plan (may be null)
// and recovery config, a deterministic uniform file stream.
CellOutcome RunCell(const iolfault::FaultPlan* plan,
                    const iolfault::RecoveryConfig& recovery,
                    const iolbench::BenchOptions& opts) {
  iolsys::SystemOptions options;
  options.cost.cpu_count = kMembers;
  options.cost.disk_count = kMembers;
  iolbench::ApplyKindOptions(iolbench::ServerKind::kFlashLite, &options);
  auto sys = std::make_unique<iolsys::System>(options);

  std::vector<iolfs::FileId> ids;
  ids.reserve(kDocs);
  for (int i = 0; i < kDocs; ++i) {
    ids.push_back(sys->fs().CreateFile("doc" + std::to_string(i), kDocBytes));
  }

  std::vector<std::unique_ptr<iolhttp::HttpServer>> servers;
  std::vector<iolhttp::HttpServer*> members;
  for (int i = 0; i < kMembers; ++i) {
    servers.push_back(iolbench::MakeServer(iolbench::ServerKind::kFlashLite, sys.get()));
    members.push_back(servers.back().get());
  }

  // Deterministic prewarm: the doc set starts resident, so the measured
  // window exercises crash recovery rather than cold-start fill (a cold
  // start under a tight timeout is its own failure mode: every first touch
  // rides the contended disk past the timeout and the retries cascade).
  // The discarded tally keeps the fill from advancing the clock: the plan's
  // fault times are absolute and must stay ahead of t=0.
  {
    iolsim::Tally prewarm;
    iolsim::TallyScope scope(&sys->ctx(), &prewarm);
    for (iolfs::FileId f : ids) {
      uint64_t size = sys->fs().SizeOf(f);
      sys->cache().Insert(
          f, 0, iolite::Aggregate::FromBuffer(sys->fs().ReadFromDisk(f, 0, size)));
    }
  }

  ioldrv::ExperimentConfig config;
  config.persistent_connections = true;
  config.max_requests = opts.Requests(4000);
  config.warmup_requests = opts.Warmup(400);
  config.faults = plan;
  config.recovery = recovery;

  // 2 clients per member: enough headroom that hedges stay a rescue
  // mechanism instead of a load spiral (a saturated fleet turns hedging
  // into a storm: latency > hedge_delay for everyone => double the load).
  ioldrv::ClosedLoop workload(opts.Clients(8));
  ioldrv::Experiment experiment(
      &sys->ctx(), &sys->net(), &sys->cache(),
      ioldrv::Fleet(members, std::make_unique<ioldrv::LeastConnectionsBalancer>()),
      config);

  iolsim::Rng rng(9090);
  CellOutcome out;
  out.result = experiment.Run(&workload, [&rng, &ids]() -> iolfs::FileId {
    return ids[rng.NextBelow(ids.size())];
  });
  out.record_fold = FoldRecords(experiment.telemetry());
  out.final_clock = sys->ctx().clock().now();
  return out;
}

// The chaos mix for one intensity: independent per-member crash/restart
// cycles around `mean_uptime` plus periodic 4x disk fail-slow windows.
// Restarts are warm (the machine's unified cache survives a process crash):
// at sweep-scale crash rates a cold restart re-chills a quarter of the
// *shared* cache each cycle, and a cold read costs more than the entire
// protected-tail budget — the sweep would measure disk refill, not
// recovery. examples/fault_drill.cpp exercises the cold-restart path.
iolfault::FaultPlan MakePlan(iolsim::SimTime mean_uptime) {
  iolfault::FaultPlan plan;
  plan.AddRandomCrashes(/*seed=*/101, kMembers, mean_uptime, kRestartDelay,
                        kHorizon, /*cold_cache=*/false);
  plan.AddRandomDiskFailSlow(/*seed=*/202, /*mean_gap=*/150 * iolsim::kMillisecond,
                             /*window=*/10 * iolsim::kMillisecond, /*num=*/4,
                             /*den=*/1, kHorizon);
  return plan;
}

iolfault::RecoveryConfig MakeRecovery(Policy p, double baseline_p99_ms) {
  // The timeout budget scales off the measured fault-free tail so the sweep
  // stays meaningful if the machine model's costs move.
  iolsim::SimTime p99 = static_cast<iolsim::SimTime>(
      baseline_p99_ms * static_cast<double>(iolsim::kMillisecond));
  if (p99 < iolsim::kMillisecond) {
    p99 = iolsim::kMillisecond;
  }
  iolfault::RecoveryConfig rec;
  rec.request_timeout = 6 * p99;
  rec.retry_backoff = iolsim::kMillisecond;
  rec.retry_backoff_cap = 8 * iolsim::kMillisecond;
  if (p != Policy::kUnprotected) {
    rec.max_retries = 3;
  }
  if (p == Policy::kRetryHedge || p == Policy::kFull) {
    // 1.75x p99: rare enough fault-free (<1% of requests) to avoid hedge
    // storms, early enough that a rescue (hedge_delay + one warm serve,
    // so ~2.75x p99) lands inside the 3x protected-tail gate.
    rec.hedge_delay = 7 * p99 / 4;
  }
  if (p == Policy::kFull) {
    rec.health_checks = true;
    rec.health_check_interval = 2 * iolsim::kMillisecond;
    rec.unhealthy_after = 1;
    rec.healthy_after = 3;
  }
  return rec;
}

void PrintRow(const char* series, double x, const CellOutcome& out) {
  std::printf("%-20s\t%6.0f\t%9.4f%%\t%8llu\t%6llu\t%6llu\t%8.2f\t%8.1f\n", series, x,
              out.result.availability * 100.0,
              static_cast<unsigned long long>(out.result.failed_requests),
              static_cast<unsigned long long>(out.result.retries),
              static_cast<unsigned long long>(out.result.hedges),
              out.result.latency.p99_ms, out.result.goodput_mbps);
}

}  // namespace

int main(int argc, char** argv) {
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("fig_fault_tolerance", opts);

  iolbench::PrintHeader(
      "Fault tolerance: availability under crash + fail-slow chaos, "
      "recovery lattice swept",
      "policy              \tuptime\tavailability\t  failed\tretry\t hedge\t  p99_ms\tgoodput");

  // Fault-free baseline: no plan, no recovery — the exact pre-fault-plane
  // engine configuration. Its p99 anchors the timeout budget and the
  // protected-tail gate.
  iolfault::RecoveryConfig off;
  CellOutcome baseline = RunCell(nullptr, off, opts);
  double base_p99 = baseline.result.latency.p99_ms;
  PrintRow("fault-free", 0, baseline);
  json.AddExperiment("fault-free", 0, baseline.result);

  // Determinism gate: an EMPTY plan must take the identical trajectory.
  iolfault::FaultPlan empty_plan;
  CellOutcome echo = RunCell(&empty_plan, off, opts);
  bool identical = echo.record_fold == baseline.record_fold &&
                   echo.final_clock == baseline.final_clock &&
                   echo.result.requests == baseline.result.requests;
  std::printf("# empty-plan byte-identity: %s\n", identical ? "ok" : "FAIL");

  // mean member uptime (ms): lower = harsher. With kRestartDelay = 20 ms
  // the harshest cell has each member dark ~1/6 of the time.
  const iolsim::SimTime kUptimes[] = {400 * iolsim::kMillisecond,
                                      200 * iolsim::kMillisecond,
                                      100 * iolsim::kMillisecond};
  const Policy kPolicies[] = {Policy::kUnprotected, Policy::kRetry,
                              Policy::kRetryHedge, Policy::kFull};

  bool ok = identical;
  double worst_unprotected = 1.0;
  double worst_full = 1.0;
  double worst_full_p99 = 0.0;
  for (Policy p : kPolicies) {
    iolfault::RecoveryConfig rec = MakeRecovery(p, base_p99);
    for (iolsim::SimTime uptime : kUptimes) {
      iolfault::FaultPlan plan = MakePlan(uptime);
      CellOutcome cell = RunCell(&plan, rec, opts);
      double x = static_cast<double>(uptime) / iolsim::kMillisecond;
      PrintRow(Name(p), x, cell);
      json.AddExperiment(Name(p), x, cell.result);
      if (p == Policy::kUnprotected && cell.result.availability < worst_unprotected) {
        worst_unprotected = cell.result.availability;
      }
      if (p == Policy::kFull) {
        if (cell.result.availability < worst_full) {
          worst_full = cell.result.availability;
        }
        if (cell.result.latency.p99_ms > worst_full_p99) {
          worst_full_p99 = cell.result.latency.p99_ms;
        }
      }
    }
  }

  std::printf(
      "# expectation: unprotected collapses (LC attracts traffic to "
      "black holes); the full lattice holds >= 99.9%% with a bounded tail\n");

  if (!opts.smoke) {
    // The availability invariants the ISSUE pins; smoke runs are too short
    // for the chaos schedule to bite, so only full runs enforce them.
    double tail_ratio = base_p99 > 0 ? worst_full_p99 / base_p99 : 0;
    std::printf("# unprotected worst availability %.4f%% (need < 99%%): %s\n",
                worst_unprotected * 100.0, worst_unprotected < 0.99 ? "ok" : "FAIL");
    std::printf("# full-lattice worst availability %.4f%% (need >= 99.9%%): %s\n",
                worst_full * 100.0, worst_full >= 0.999 ? "ok" : "FAIL");
    std::printf("# full-lattice worst p99 %.2f ms = %.2fx fault-free (need <= 3x): %s\n",
                worst_full_p99, tail_ratio, tail_ratio <= 3.0 ? "ok" : "FAIL");
    ok = ok && worst_unprotected < 0.99 && worst_full >= 0.999 && tail_ratio <= 3.0;
  }
  return json.Flush() && ok ? 0 : 1;
}
