// Figure 13: runtimes of the converted UNIX applications.
//
// wc over a cached 1.75 MB file; permute|wc over 10!*40 = 145,152,000 pipe
// bytes; cat|grep over the wc file; the gcc-chain stand-in over 27 files /
// 167 KB of source.
//
// Paper anchors (reduction in runtime from IO-Lite): wc 37%, permute 33%,
// grep 48%, gcc ~1%.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/apps/filters.h"
#include "src/apps/gcc_chain.h"
#include "src/system/system.h"

namespace {

double Seconds(iolsys::System* sys, iolsim::SimTime since) {
  return iolsim::ToSeconds(sys->ctx().clock().now() - since);
}

void Row(iolbench::JsonReporter* json, int index, const char* name, double posix_s,
         double iolite_s) {
  std::printf("%s\t%.4f\t%.4f\t%.1f%%\n", name, posix_s, iolite_s,
              100.0 * (1.0 - iolite_s / posix_s));
  json->Add(std::string(name) + ":posix", index, posix_s);
  json->Add(std::string(name) + ":iolite", index, iolite_s);
}

}  // namespace

int main(int argc, char** argv) {
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("fig13", opts);

  std::printf("# Figure 13: application runtimes (simulated seconds)\n");
  std::printf("app\tunmodified_s\tiolite_s\treduction\n");

  // wc on a cached 1.75 MB file.
  {
    iolsys::System sys;
    iolfs::FileId f = sys.fs().CreateFile("big", 1750 * 1024);
    sys.io().ReadExtent(f, 0, 1750 * 1024);  // File cache warm, no disk I/O.
    iolsim::SimTime t0 = sys.ctx().clock().now();
    iolapp::WcPosix(&sys, f);
    double posix_s = Seconds(&sys, t0);
    t0 = sys.ctx().clock().now();
    iolapp::WcIolite(&sys, f);
    Row(&json, 0, "wc", posix_s, Seconds(&sys, t0));
  }

  // permute | wc: ten 4-char words -> 10! * 40 bytes through the pipe.
  {
    std::string sentence = "abcdefghijklmnopqrstuvwxyz0123456789ABCD";  // 40 chars.
    iolsys::System sys_a;
    iolsim::SimTime t0 = sys_a.ctx().clock().now();
    iolapp::PermuteWcPosix(&sys_a, sentence, 4);
    double posix_s = Seconds(&sys_a, t0);
    iolsys::System sys_b;
    t0 = sys_b.ctx().clock().now();
    iolapp::PermuteWcIolite(&sys_b, sentence, 4);
    Row(&json, 1, "permute", posix_s, Seconds(&sys_b, t0));
  }

  // cat file | grep, same file as wc.
  {
    iolsys::System sys;
    iolfs::FileId f = sys.fs().CreateFile("big", 1750 * 1024);
    sys.io().ReadExtent(f, 0, 1750 * 1024);
    iolsim::SimTime t0 = sys.ctx().clock().now();
    iolapp::GrepCatPosix(&sys, f, "xyz");
    double posix_s = Seconds(&sys, t0);
    t0 = sys.ctx().clock().now();
    iolapp::GrepCatIolite(&sys, f, "xyz");
    Row(&json, 2, "grep", posix_s, Seconds(&sys, t0));
  }

  // gcc chain: 27 files, 167 KB total source.
  {
    iolapp::GccChainConfig config;
    iolsys::System sys_a;
    iolsim::SimTime t0 = sys_a.ctx().clock().now();
    iolapp::GccChainPosix(&sys_a, config);
    double posix_s = Seconds(&sys_a, t0);
    iolsys::System sys_b;
    t0 = sys_b.ctx().clock().now();
    iolapp::GccChainIolite(&sys_b, config);
    Row(&json, 3, "gcc", posix_s, Seconds(&sys_b, t0));
  }

  std::printf("# paper: wc -37%%, permute -33%%, grep -48%%, gcc ~-1%%\n");
  return json.Flush() ? 0 : 1;
}
