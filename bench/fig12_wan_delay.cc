// Figure 12: throughput versus WAN round-trip delay.
//
// Delay routers add RTT between clients and server; the client population
// scales linearly with delay (64 in the LAN case up to 900 at 150 ms) to
// keep the server saturated. Data set: a 120 MB prefix of the MERGED
// subtrace (neither fully disk-bound nor CPU-limited).
//
// Paper anchors: Flash drops ~33% and Apache ~50% as delay grows (TCP send
// buffers and server processes consume file-cache memory); Flash-Lite is
// unaffected and even gains slightly.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using iolbench::ServerKind;
  const uint64_t kRequests = 80000;
  iolwl::TraceSpec spec = iolwl::SubtraceSpec();
  spec.num_requests = 400000;  // Full coverage (see fig10).
  iolwl::Trace prefix = iolwl::Trace::Generate(spec).Prefix(120ull << 20);

  struct Point {
    const char* label;
    iolsim::SimTime rtt;
    int clients;
  };
  const std::vector<Point> points = {
      {"LAN", 0, 64},
      {"5ms", 5 * iolsim::kMillisecond, 92},
      {"50ms", 50 * iolsim::kMillisecond, 343},
      {"100ms", 100 * iolsim::kMillisecond, 621},
      {"150ms", 150 * iolsim::kMillisecond, 900},
  };

  iolbench::PrintHeader("Figure 12: throughput vs WAN round-trip delay (Mb/s), 120MB dataset",
                        "delay\tclients\tFlash-Lite\tFlash\tApache");
  std::vector<double> first;
  for (const Point& point : points) {
    auto lite = iolbench::RunTrace(ServerKind::kFlashLite, prefix, point.clients, kRequests,
                                   false, point.rtt, 30000);
    auto flash = iolbench::RunTrace(ServerKind::kFlash, prefix, point.clients, kRequests,
                                    false, point.rtt, 30000);
    auto apache = iolbench::RunTrace(ServerKind::kApache, prefix, point.clients, kRequests,
                                     false, point.rtt, 30000);
    std::printf("%s\t%d\t%.1f\t%.1f\t%.1f\n", point.label, point.clients, lite.mbps,
                flash.mbps, apache.mbps);
    if (first.empty()) {
      first = {lite.mbps, flash.mbps, apache.mbps};
    } else if (&point == &points.back()) {
      std::printf("# drop vs LAN: Flash-Lite %.0f%%, Flash %.0f%%, Apache %.0f%%\n",
                  100.0 * (1 - lite.mbps / first[0]), 100.0 * (1 - flash.mbps / first[1]),
                  100.0 * (1 - apache.mbps / first[2]));
    }
  }
  std::printf("# paper: Flash -33%%, Apache -50%%, Flash-Lite flat or slightly up\n");
  return 0;
}
