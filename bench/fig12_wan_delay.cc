// Figure 12: throughput versus WAN round-trip delay.
//
// Delay routers add RTT between clients and server; the client population
// scales linearly with delay (64 in the LAN case up to 900 at 150 ms) to
// keep the server saturated. Data set: a 120 MB prefix of the MERGED
// subtrace (neither fully disk-bound nor CPU-limited).
//
// Paper anchors: Flash drops ~33% and Apache ~50% as delay grows (TCP send
// buffers and server processes consume file-cache memory); Flash-Lite is
// unaffected and even gains slightly.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using iolbench::ServerKind;
  iolbench::BenchOptions opts = iolbench::ParseBenchOptions(argc, argv);
  iolbench::JsonReporter json("fig12", opts);
  const uint64_t kRequests = opts.Requests(80000);
  const uint64_t kWarmup = opts.Warmup(30000);
  iolwl::TraceSpec spec = iolwl::SubtraceSpec();
  spec.num_requests = opts.smoke ? 20000 : 400000;  // Full coverage (see fig10).
  iolwl::Trace prefix = iolwl::Trace::Generate(spec).Prefix(120ull << 20);

  struct Point {
    const char* label;
    iolsim::SimTime rtt;
    int clients;
  };
  const std::vector<Point> points = {
      {"LAN", 0, 64},
      {"5ms", 5 * iolsim::kMillisecond, 92},
      {"50ms", 50 * iolsim::kMillisecond, 343},
      {"100ms", 100 * iolsim::kMillisecond, 621},
      {"150ms", 150 * iolsim::kMillisecond, 900},
  };

  iolbench::PrintHeader("Figure 12: throughput vs WAN round-trip delay (Mb/s), 120MB dataset",
                        "delay\tclients\tFlash-Lite\tFlash\tApache");
  std::vector<double> first;
  for (const Point& point : points) {
    int clients = opts.Clients(point.clients);
    auto lite = iolbench::RunTrace(ServerKind::kFlashLite, prefix, clients, kRequests,
                                   false, point.rtt, kWarmup);
    auto flash = iolbench::RunTrace(ServerKind::kFlash, prefix, clients, kRequests,
                                    false, point.rtt, kWarmup);
    auto apache = iolbench::RunTrace(ServerKind::kApache, prefix, clients, kRequests,
                                     false, point.rtt, kWarmup);
    std::printf("%s\t%d\t%.1f\t%.1f\t%.1f\n", point.label, clients, lite.megabits_per_sec,
                flash.megabits_per_sec, apache.megabits_per_sec);
    double x = iolsim::ToSeconds(point.rtt) * 1e3;
    json.AddExperiment("Flash-Lite", x, lite);
    json.AddExperiment("Flash", x, flash);
    json.AddExperiment("Apache", x, apache);
    if (first.empty()) {
      first = {lite.megabits_per_sec, flash.megabits_per_sec, apache.megabits_per_sec};
    } else if (&point == &points.back()) {
      std::printf("# drop vs LAN: Flash-Lite %.0f%%, Flash %.0f%%, Apache %.0f%%\n",
                  100.0 * (1 - lite.megabits_per_sec / first[0]),
                  100.0 * (1 - flash.megabits_per_sec / first[1]),
                  100.0 * (1 - apache.megabits_per_sec / first[2]));
    }
  }
  std::printf("# paper: Flash -33%%, Apache -50%%, Flash-Lite flat or slightly up\n");
  return json.Flush() ? 0 : 1;
}
