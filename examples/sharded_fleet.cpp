// The sharded parallel engine, end to end on one experiment.
//
// A 4-member Flash-Lite fleet — each member its own simulated machine
// (8-way CPU, cache, link) with its own event lane — serves a 32-client
// closed-loop population that lives on a frontend lane. The ShardRunner
// executes the 5 lanes under conservative-lookahead rounds (lookahead =
// the 1 ms client↔fleet one-way delay), with requests and responses
// crossing lanes through SPSC mailboxes.
//
// The demo runs the same experiment twice — shard_count=1 (every lane on
// the calling thread) and shard_count=4 — and prints per-lane event
// counts, the engine round/message counters, and the merged telemetry.
// The two runs must agree on every simulated quantity: shard_count only
// picks how many OS threads execute the lanes, never what they compute.
//
// Run:  ./build/example_sharded_fleet

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench/bench_util.h"
#include "src/driver/sharded_experiment.h"

namespace {

constexpr size_t kMembers = 4;
constexpr int kClients = 32;
constexpr uint64_t kRequests = 4000;
constexpr uint64_t kWarmup = 200;
constexpr size_t kDocBytes = 8 * 1024;
constexpr iolsim::SimTime kOneWayDelay = 1'000'000;  // 1 ms = the lookahead.

ioldrv::ShardMember MakeMember(size_t) {
  iolsys::SystemOptions options;
  options.cost.cpu_count = 8;
  iolbench::ApplyKindOptions(iolbench::ServerKind::kFlashLite, &options);
  ioldrv::ShardMember m;
  m.sys = std::make_unique<iolsys::System>(options);
  m.server = iolbench::MakeServer(iolbench::ServerKind::kFlashLite, m.sys.get());
  m.sys->fs().CreateFile("doc", kDocBytes);
  return m;
}

ioldrv::ShardedResult RunOnce(int shard_count) {
  ioldrv::ExperimentConfig config;
  config.max_requests = kRequests;
  config.warmup_requests = kWarmup;
  config.persistent_connections = true;
  config.delay.one_way_delay = kOneWayDelay;
  config.shard_count = shard_count;
  ioldrv::ShardedExperiment exp(kMembers, MakeMember, config);
  iolfs::FileId doc = exp.member_system(0)->fs().Lookup("doc");
  ioldrv::ClosedLoop workload(kClients);
  return exp.Run(&workload, [doc] { return doc; });
}

void PrintRun(const char* label, const ioldrv::ShardedResult& r) {
  std::printf("%s (threads=%d)\n", label, r.shard.threads);
  std::printf("  lane events:  frontend=%" PRIu64, r.lane_events[0]);
  for (size_t m = 1; m < r.lane_events.size(); ++m) {
    std::printf("  member%zu=%" PRIu64, m - 1, r.lane_events[m]);
  }
  std::printf("\n  engine:       rounds=%" PRIu64 " messages=%" PRIu64
              " spilled=%" PRIu64 "\n",
              r.shard.rounds, r.shard.messages, r.shard.spilled);
  std::printf("  merged:       requests=%" PRIu64 " p50=%.3f ms p99=%.3f ms "
              "%.1f Mb/s events=%" PRIu64 "\n\n",
              r.result.requests, r.result.latency.p50_ms,
              r.result.latency.p99_ms, r.result.megabits_per_sec,
              r.result.events_dispatched);
}

}  // namespace

int main() {
  std::printf("Sharded fleet demo: %zu Flash-Lite members + 1 frontend lane, "
              "%d closed-loop clients\n",
              kMembers, kClients);
  std::printf("host cores: %u\n\n", std::thread::hardware_concurrency());

  ioldrv::ShardedResult serial = RunOnce(1);
  PrintRun("shard_count=1", serial);
  ioldrv::ShardedResult parallel = RunOnce(4);
  PrintRun("shard_count=4", parallel);

  // The determinism contract, demonstrated rather than asserted in a test:
  // every simulated quantity is identical across shard counts.
  bool same = serial.result.requests == parallel.result.requests &&
              serial.result.bytes == parallel.result.bytes &&
              serial.result.latency.p99_ms == parallel.result.latency.p99_ms &&
              serial.result.events_dispatched == parallel.result.events_dispatched &&
              serial.lane_events == parallel.lane_events;
  std::printf("shard-count invariance: %s\n", same ? "OK (byte-identical)" : "VIOLATED");
  return same ? 0 : 1;
}
