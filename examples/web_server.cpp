// Example: a static-content Web server on IO-Lite (Section 3.10).
//
// Builds a small site, serves it with the Flash-Lite data path (IOL_read
// from the unified cache, header from an IO-Lite pool, IOL_write by
// reference) next to the conventional Flash data path (mmap + writev), and
// prints the per-request mechanics: copies, checksums, checksum-cache hits,
// chunk mappings.
//
// Run:  ./build/examples/web_server

#include <cstdio>
#include <vector>

#include "src/httpd/driver.h"
#include "src/httpd/http_server.h"
#include "src/system/system.h"
#include "src/workload/trace.h"

namespace {

void ServeAndReport(const char* label, iolsys::System* sys, iolhttp::HttpServer* server,
                    const std::vector<iolfs::FileId>& site) {
  iolnet::TcpConnection conn(&sys->net(), server->uses_iolite_sockets());
  conn.Connect();
  uint64_t bytes = 0;
  // Three rounds over the whole site: round one is cold, the rest warm.
  for (int round = 0; round < 3; ++round) {
    for (iolfs::FileId f : site) {
      bytes += server->HandleRequest(&conn, f);
    }
  }
  conn.Close();
  const iolsim::SimStats& s = sys->ctx().stats();
  std::printf("%-12s served %7llu bytes | copied %7llu | checksummed %7llu | "
              "cksum-cache hits %3llu | chunk maps %3llu | sim time %.2f ms\n",
              label, static_cast<unsigned long long>(bytes),
              static_cast<unsigned long long>(s.bytes_copied),
              static_cast<unsigned long long>(s.bytes_checksummed),
              static_cast<unsigned long long>(s.checksum_cache_hits),
              static_cast<unsigned long long>(s.chunk_map_ops),
              iolsim::ToSeconds(sys->ctx().clock().now()) * 1e3);
}

}  // namespace

int main() {
  std::printf("# Serving a 6-document site three times over one persistent connection\n");
  const std::vector<std::pair<const char*, size_t>> documents = {
      {"index.html", 8 * 1024},   {"logo.png", 24 * 1024}, {"styles.css", 4 * 1024},
      {"paper.pdf", 180 * 1024},  {"news.html", 12 * 1024}, {"tiny.txt", 500},
  };

  {
    iolsys::SystemOptions options;
    options.policy = iolsys::SystemOptions::Policy::kGds;
    iolsys::System sys(options);
    std::vector<iolfs::FileId> site;
    for (const auto& [name, size] : documents) {
      site.push_back(sys.fs().CreateFile(name, size));
    }
    iolhttp::FlashLiteServer lite(&sys.ctx(), &sys.net(), &sys.io(), &sys.runtime());
    ServeAndReport("Flash-Lite", &sys, &lite, site);
  }
  {
    iolsys::System sys;
    std::vector<iolfs::FileId> site;
    for (const auto& [name, size] : documents) {
      site.push_back(sys.fs().CreateFile(name, size));
    }
    iolhttp::FlashServer flash(&sys.ctx(), &sys.net(), &sys.io());
    ServeAndReport("Flash", &sys, &flash, site);
  }

  std::printf(
      "\nFlash-Lite copies only response headers; document bytes are checksummed once\n"
      "and then served from the checksum cache. Flash copies and checksums every byte\n"
      "of every response.\n");
  return 0;
}
