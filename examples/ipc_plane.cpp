// The multi-process data plane, end to end.
//
// Runs the same proxy + origin + CGI worker roles three ways — as a
// deterministic in-process pump, as threads, and as real fork()ed processes
// sharing the unified cache through one shm region — and shows that the
// response byte stream is identical in all three (one checksum), that the
// warm path copies zero payload bytes across process boundaries, and what
// the copy-per-response contrast path pays instead.
//
// The counters printed for the process mode are read through a *fresh*
// attach of the region by name when POSIX shm is available — the same
// out-of-process view scripts/shm_inspect.py gives you while (or after) the
// plane runs.
//
// Run:  ./build/example_ipc_plane

#include <cstdio>

#include "src/driver/process_tier.h"

namespace {

ioldrv::ProcessTierConfig BaseConfig() {
  ioldrv::ProcessTierConfig cfg;
  cfg.requests = 400;
  cfg.inflight = 8;
  cfg.docs.doc_count = 24;
  cfg.docs.doc_bytes = 16 * 1024;
  cfg.cgi_every = 8;
  cfg.cgi_body_bytes = 2048;
  cfg.proxy_workers = 2;
  cfg.origin_workers = 1;
  cfg.cgi_workers = 1;
  return cfg;
}

void Show(const char* label, const ioldrv::ProcessTierResult& r) {
  std::printf(
      "%-22s ok=%d responses=%llu errors=%llu hits=%llu misses=%llu "
      "fills=%llu cgi=%llu copied_x_process=%llu B identical=%d "
      "checksum=%016llx oop_counters=%d wall=%.1f ms\n",
      label, r.ok ? 1 : 0, (unsigned long long)r.requests,
      (unsigned long long)r.errors, (unsigned long long)r.cache_hits,
      (unsigned long long)r.cache_misses, (unsigned long long)r.origin_fills,
      (unsigned long long)r.cgi_requests,
      (unsigned long long)r.bytes_copied_cross_process,
      r.byte_identical ? 1 : 0, (unsigned long long)r.response_checksum,
      r.counters_out_of_process ? 1 : 0, r.wall_ms);
}

}  // namespace

int main() {
  std::printf("== shared-memory data plane: one worker implementation, three modes ==\n");

  ioldrv::ProcessTierConfig cfg = BaseConfig();

  cfg.mode = iolipc::PlaneMode::kInProcess;
  ioldrv::ProcessTierResult sim = ioldrv::RunProcessTier(cfg);
  Show("in-process pump", sim);

  cfg.mode = iolipc::PlaneMode::kThreads;
  ioldrv::ProcessTierResult thr = ioldrv::RunProcessTier(cfg);
  Show("threads", thr);

  cfg.mode = iolipc::PlaneMode::kProcesses;
  ioldrv::ProcessTierResult proc = ioldrv::RunProcessTier(cfg);
  Show("forked processes", proc);

  std::printf("\nbyte-identity across modes: %s\n",
              (sim.response_checksum == thr.response_checksum &&
               sim.response_checksum == proc.response_checksum)
                  ? "IDENTICAL"
                  : "MISMATCH");

  std::printf("\n== the same plane with the descriptor discipline turned off ==\n");
  cfg.copy_data_path = true;
  ioldrv::ProcessTierResult copy = ioldrv::RunProcessTier(cfg);
  Show("processes + memcpy", copy);
  std::printf(
      "\nzero-copy plane moved %llu payload bytes across processes; the\n"
      "copy path moved %llu — identical responses either way (checksums\n"
      "%016llx vs %016llx).\n",
      (unsigned long long)proc.bytes_copied_cross_process,
      (unsigned long long)copy.bytes_copied_cross_process,
      (unsigned long long)proc.response_checksum,
      (unsigned long long)copy.response_checksum);

  bool ok = sim.ok && thr.ok && proc.ok && copy.ok && sim.errors == 0 &&
            thr.errors == 0 && proc.errors == 0 && copy.errors == 0 &&
            sim.byte_identical && thr.byte_identical && proc.byte_identical &&
            copy.byte_identical &&
            sim.response_checksum == proc.response_checksum &&
            sim.response_checksum == copy.response_checksum &&
            proc.bytes_copied_cross_process == 0 &&
            copy.bytes_copied_cross_process > 0;
  std::printf("\n%s\n", ok ? "PLANE OK" : "PLANE BROKEN");
  return ok ? 0 : 1;
}
