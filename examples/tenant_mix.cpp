// Multi-tenant QoS, end to end.
//
// Two tenants share one two-member fleet: a latency-sensitive tenant
// serving a hot Zipf working set out of the unified cache, and an
// adversarial neighbor sequentially scanning a file set several times the
// cache budget. Three runs show the policy plane doing its job:
//
//   solo       the hot tenant alone — the no-interference baseline
//   no-qos     both tenants, policy plane detached: the scan evicts the
//              hot set and hot p99 collapses
//   qos        WFQ on CPU/disk/link + per-tenant cache partitioning +
//              a front-door token bucket on the scan: hot p99 returns to
//              within a small factor of solo
//
// Exits non-zero if the isolation invariant fails (hot p99 must stay
// within 1.25x solo with the plane on, and the unprotected run must show
// at least 2x degradation — otherwise the demo is not demonstrating).
//
// Run:  ./build/example_tenant_mix

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/driver/experiment.h"
#include "src/driver/fleet.h"
#include "src/driver/tenant_mix.h"
#include "src/httpd/http_server.h"
#include "src/qos/policy.h"
#include "src/simos/rng.h"
#include "src/system/system.h"
#include "src/workload/trace.h"

namespace {

constexpr uint64_t kCacheBudget = 2ull * 1024 * 1024;
constexpr uint64_t kHotReserved = 1536ull * 1024;
constexpr int kScanFiles = 256;  // x 64 KB = 8x the cache budget.
constexpr uint64_t kScanFileBytes = 64 * 1024;

struct RunOutcome {
  ioldrv::ExperimentResult result;
  iolsim::TenantId hot_tenant = 1;
};

const ioldrv::TenantBreakdown* Breakdown(const ioldrv::ExperimentResult& result,
                                         iolsim::TenantId t) {
  for (const ioldrv::TenantBreakdown& b : result.tenants) {
    if (b.tenant == t) {
      return &b;
    }
  }
  return nullptr;
}

double HotP99(const RunOutcome& out) {
  const ioldrv::TenantBreakdown* b = Breakdown(out.result, out.hot_tenant);
  return b != nullptr ? b->latency.p99_ms : 0;
}

RunOutcome RunMix(bool with_scan, bool with_qos) {
  iolsys::SystemOptions options;
  options.cost.cpu_count = 2;
  options.cost.disk_count = 2;
  // Plain LRU on purpose: the Flash-Lite default (Greedy-Dual-Size) is
  // scan-resistant on its own, which would mute the contrast.
  options.policy = iolsys::SystemOptions::Policy::kPlainLru;
  auto sys = std::make_unique<iolsys::System>(options);

  iolwl::TraceSpec hot_spec;
  hot_spec.name = "hot-zipf";
  hot_spec.num_files = 160;
  hot_spec.total_bytes = 1280 * 1024;
  hot_spec.num_requests = 20000;
  hot_spec.mean_request_bytes = 8 * 1024;
  hot_spec.zipf_alpha = 1.1;
  hot_spec.size_sigma = 0.5;
  hot_spec.seed = 11;
  iolwl::Trace hot_trace = iolwl::Trace::Generate(hot_spec);
  std::vector<iolfs::FileId> hot_ids = hot_trace.Materialize(&sys->fs());

  std::vector<iolfs::FileId> scan_ids;
  scan_ids.reserve(kScanFiles);
  for (int i = 0; i < kScanFiles; ++i) {
    scan_ids.push_back(sys->fs().CreateFile("scan" + std::to_string(i), kScanFileBytes));
  }

  iolsim::Rng hot_rng(4242);
  const std::vector<uint32_t>& hot_reqs = hot_trace.requests();
  size_t scan_cursor = 0;

  std::vector<ioldrv::TenantWorkloadSpec> specs;
  ioldrv::TenantWorkloadSpec hot;
  hot.name = "hot-zipf";
  hot.weight = 8;
  hot.clients = 12;
  hot.cache_reserved_bytes = kHotReserved;
  hot.next_file = [&hot_rng, &hot_reqs, &hot_ids] {
    return hot_ids[hot_reqs[hot_rng.NextBelow(hot_reqs.size())]];
  };
  specs.push_back(hot);
  if (with_scan) {
    ioldrv::TenantWorkloadSpec scan;
    scan.name = "scan";
    scan.weight = 1;
    scan.clients = 24;
    scan.next_file = [&scan_ids, &scan_cursor] {
      iolfs::FileId f = scan_ids[scan_cursor];
      scan_cursor = (scan_cursor + 1) % scan_ids.size();
      return f;
    };
    specs.push_back(scan);
  }
  ioldrv::TenantMix mix(std::move(specs));

  std::vector<std::unique_ptr<iolhttp::HttpServer>> servers;
  std::vector<iolhttp::HttpServer*> members;
  for (int i = 0; i < 2; ++i) {
    servers.push_back(std::make_unique<iolhttp::FlashLiteServer>(
        &sys->ctx(), &sys->net(), &sys->io(), &sys->runtime()));
    members.push_back(servers.back().get());
  }

  ioldrv::ExperimentConfig config;
  config.persistent_connections = true;
  config.max_requests = 6000;
  config.warmup_requests = 1000;
  config.cache_budget_bytes = kCacheBudget;

  iolqos::QosPolicy policy;
  iolqos::CachePlan plan;
  if (with_qos) {
    mix.Configure(&policy, &plan);
    config.qos = &policy;
    sys->cache().AttachQos(&policy);
    policy.AttachWfq(&sys->ctx());
    policy.SetStarvationBound(500 * iolsim::kMillisecond);
    plan.total_bytes = kCacheBudget;
    sys->cache().SetPartitions(&plan);
  }

  // Deterministic prewarm: the hot set starts resident, so the contrast
  // below measures the scan's eviction pressure, not first touch.
  sys->ctx().set_active_tenant(mix.tenant_id(0));
  for (iolfs::FileId f : hot_ids) {
    uint64_t size = sys->fs().SizeOf(f);
    sys->cache().Insert(
        f, 0, iolite::Aggregate::FromBuffer(sys->fs().ReadFromDisk(f, 0, size)));
  }
  sys->ctx().set_active_tenant(iolsim::kDefaultTenant);

  ioldrv::Experiment experiment(&sys->ctx(), &sys->net(), &sys->cache(),
                                ioldrv::Fleet(members), config);
  RunOutcome out;
  out.result = experiment.Run(&mix, [&hot_ids] { return hot_ids[0]; });
  out.hot_tenant = mix.tenant_id(0);
  return out;
}

void Show(const char* label, const RunOutcome& out, double solo_p99) {
  const ioldrv::TenantBreakdown* hot = Breakdown(out.result, out.hot_tenant);
  const ioldrv::TenantBreakdown* scan = Breakdown(out.result, 2);
  std::printf("%-8s hot p50=%7.2f ms  p99=%8.2f ms (%5.2fx solo)  hit=%3.0f%%",
              label, hot != nullptr ? hot->latency.p50_ms : 0,
              hot != nullptr ? hot->latency.p99_ms : 0,
              solo_p99 > 0 && hot != nullptr ? hot->latency.p99_ms / solo_p99 : 0,
              (hot != nullptr ? hot->cache_hit_fraction : 0) * 100.0);
  if (scan != nullptr) {
    std::printf("  | scan p99=%8.2f ms", scan->latency.p99_ms);
  }
  std::printf("  | fleet %.0f Mb/s\n", out.result.megabits_per_sec);
}

}  // namespace

int main() {
  std::printf("== multi-tenant QoS: hot-Zipf tenant vs cache-busting scan ==\n");

  RunOutcome solo = RunMix(false, false);
  double solo_p99 = HotP99(solo);
  Show("solo", solo, solo_p99);

  RunOutcome noqos = RunMix(true, false);
  Show("no-qos", noqos, solo_p99);

  RunOutcome qos = RunMix(true, true);
  Show("qos", qos, solo_p99);

  double degraded = solo_p99 > 0 ? HotP99(noqos) / solo_p99 : 0;
  double isolated = solo_p99 > 0 ? HotP99(qos) / solo_p99 : 0;
  std::printf(
      "\nwith the plane detached the scan evicts the hot set and queues hot\n"
      "work FIFO behind itself (%.1fx solo p99); WFQ + cache partitioning\n"
      "bring the hot tenant back to %.2fx solo.\n",
      degraded, isolated);

  bool ok = degraded >= 2.0 && isolated <= 1.25;
  std::printf("\n%s\n", ok ? "ISOLATION OK" : "ISOLATION BROKEN");
  return ok ? 0 : 1;
}
