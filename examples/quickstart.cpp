// Quickstart: the IO-Lite API in five minutes.
//
// Builds a simulated machine, creates a file, and walks through the core
// abstractions: IOL_read returning a buffer aggregate, aggregate mutation by
// pointer manipulation, copy-free IPC over a pipe, and the operation
// counters that show where data was (and was not) touched.
//
// Run:  ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "src/iolite/api.h"
#include "src/iolite/pipe.h"
#include "src/system/system.h"

int main() {
  // One self-contained simulated machine: VM, IO-Lite runtime, file system,
  // unified cache, network stack. Costs accrue to a virtual clock.
  iolsys::System sys;

  // A 64 KB file with deterministic synthetic content.
  iolfs::FileId file = sys.fs().CreateFile("greeting.html", 64 * 1024);

  // Open it through the descriptor layer and IOL_read it. The returned
  // aggregate references the cache's immutable buffers: no copy happened.
  iolsim::DomainId app = sys.ctx().vm().CreateDomain("quickstart-app");
  auto stream = std::make_shared<iolfs::FileStream>(&sys.io(), file);
  iolite::Fd fd = sys.runtime().Open(stream, app);

  iolite::IOL_Agg doc;
  size_t n = iolite::IOL_read(&sys.runtime(), fd, &doc, 64 * 1024);
  std::printf("IOL_read returned %zu bytes in %zu slice(s)\n", n, doc.slice_count());
  std::printf("bytes copied so far: %llu (zero-copy read path)\n",
              static_cast<unsigned long long>(sys.ctx().stats().bytes_copied));

  // Aggregates mutate by pointer manipulation: prepend a header, truncate,
  // split — the underlying buffers never change. The header pool belongs to
  // the app domain: the writer of an aggregate must be able to read every
  // byte it sends (conventional access control, Section 3.1).
  iolite::BufferPool* pool = sys.runtime().CreatePool("hdr-pool", app);
  std::string header = "HTTP/1.0 200 OK\r\n\r\n";
  iolite::BufferRef hdr = pool->AllocateFrom(header.data(), header.size());
  doc.Prepend(iolite::Aggregate::FromBuffer(std::move(hdr)));
  std::printf("after Prepend: %zu bytes, %zu slices\n", doc.size(), doc.slice_count());

  iolite::IOL_Agg tail = doc.SplitOff(1024);
  std::printf("SplitOff(1024): head=%zu bytes, tail=%zu bytes\n", doc.size(), tail.size());
  doc.Append(tail);  // And back together — still no data touched.

  // Copy-free IPC: send the aggregate to another process through a pipe.
  iolsim::DomainId peer = sys.ctx().vm().CreateDomain("quickstart-peer");
  iolite::PipeEnds pipe = iolite::MakePipe(&sys.runtime(), peer, app);
  iolite::IOL_write(&sys.runtime(), pipe.write_fd, doc);
  iolite::IOL_Agg received;
  iolite::IOL_read(&sys.runtime(), pipe.read_fd, &received, doc.size());
  std::printf("pipe delivered %zu bytes; content equal: %s\n", received.size(),
              received.ContentEquals(doc) ? "yes" : "no");

  // The whole exchange shared one physical copy of the file data.
  std::printf("total bytes copied: %llu (only the %zu-byte header)\n",
              static_cast<unsigned long long>(sys.ctx().stats().bytes_copied), header.size());
  std::printf("simulated time elapsed: %.1f us\n",
              iolsim::ToSeconds(sys.ctx().clock().now()) * 1e6);
  return 0;
}
