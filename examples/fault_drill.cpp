// A deterministic fault drill, end to end on one small fleet.
//
// Three Flash-Lite members behind a least-connections balancer serve a
// 6-client closed loop while a hand-scripted FaultPlan runs: member 0
// crashes twice (restarting 15 ms later, cold cache), a 4x disk fail-slow
// window lands in between, and a link outage briefly parks the front link.
// Recovery is the full lattice — timeout, capped-backoff retries, hedged
// requests, health-check ejection — so every casualty is absorbed: the
// drill demands 100% availability, at least one retry or hedge actually
// exercised, and at least one health ejection, and exits non-zero
// otherwise (CI runs it as a smoke gate).
//
// It also demonstrates the determinism contract: the same drill run twice
// produces byte-identical record streams, printed as a folded checksum.
//
// Run:  ./build/example_fault_drill

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/driver/telemetry.h"
#include "src/fault/fault_plan.h"
#include "src/fault/recovery.h"

namespace {

constexpr int kMembers = 3;
constexpr int kClients = 6;
constexpr int kDocs = 48;
constexpr uint64_t kDocBytes = 16 * 1024;
constexpr uint64_t kRequests = 3000;
constexpr uint64_t kWarmup = 100;

struct DrillRun {
  ioldrv::ExperimentResult result;
  uint64_t fold = 0;
  uint64_t outcomes[5] = {0, 0, 0, 0, 0};  // Indexed by ioldrv::Outcome.
};

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4);
  return h * 0xff51afd7ed558ccdull;
}

DrillRun RunDrill() {
  iolsys::SystemOptions options;
  options.cost.cpu_count = kMembers;
  options.cost.disk_count = kMembers;
  iolbench::ApplyKindOptions(iolbench::ServerKind::kFlashLite, &options);
  auto sys = std::make_unique<iolsys::System>(options);

  std::vector<iolfs::FileId> ids;
  for (int i = 0; i < kDocs; ++i) {
    ids.push_back(sys->fs().CreateFile("doc" + std::to_string(i), kDocBytes));
  }
  std::vector<std::unique_ptr<iolhttp::HttpServer>> servers;
  std::vector<iolhttp::HttpServer*> members;
  for (int i = 0; i < kMembers; ++i) {
    servers.push_back(iolbench::MakeServer(iolbench::ServerKind::kFlashLite, sys.get()));
    members.push_back(servers.back().get());
  }

  // Deterministic prewarm (see fig_fault_tolerance): the drill measures
  // recovery, not cold-start fill. The discarded tally keeps the fill from
  // advancing the clock — the scripted fault times below are absolute.
  {
    iolsim::Tally prewarm;
    iolsim::TallyScope scope(&sys->ctx(), &prewarm);
    for (iolfs::FileId f : ids) {
      uint64_t size = sys->fs().SizeOf(f);
      sys->cache().Insert(
          f, 0, iolite::Aggregate::FromBuffer(sys->fs().ReadFromDisk(f, 0, size)));
    }
  }

  // All faults land after the warmup drains (~35 ms with a warm cache), so
  // every casualty falls inside the counted window.
  using iolsim::kMillisecond;
  iolfault::FaultPlan plan;
  plan.AddMemberCrash(80 * kMillisecond, /*member=*/0, /*restart=*/15 * kMillisecond)
      .AddDiskFailSlow(150 * kMillisecond, 20 * kMillisecond, /*num=*/4, /*den=*/1)
      .AddLinkOutage(210 * kMillisecond, 3 * kMillisecond)
      .AddMemberCrash(260 * kMillisecond, /*member=*/0, /*restart=*/15 * kMillisecond);

  iolfault::RecoveryConfig rec;
  rec.request_timeout = 40 * kMillisecond;
  rec.max_retries = 3;
  rec.retry_backoff = kMillisecond;
  rec.retry_backoff_cap = 8 * kMillisecond;
  rec.hedge_delay = 10 * kMillisecond;
  rec.health_checks = true;
  rec.health_check_interval = 2 * kMillisecond;
  rec.unhealthy_after = 1;
  rec.healthy_after = 3;

  ioldrv::ExperimentConfig config;
  config.persistent_connections = true;
  config.max_requests = kRequests;
  config.warmup_requests = kWarmup;
  config.faults = &plan;
  config.recovery = rec;

  ioldrv::ClosedLoop workload(kClients);
  ioldrv::Experiment experiment(
      &sys->ctx(), &sys->net(), &sys->cache(),
      ioldrv::Fleet(members, std::make_unique<ioldrv::LeastConnectionsBalancer>()),
      config);
  iolsim::Rng rng(777);
  DrillRun run;
  run.result = experiment.Run(&workload, [&rng, &ids]() -> iolfs::FileId {
    return ids[rng.NextBelow(ids.size())];
  });

  uint64_t h = 1469598103934665603ull;
  for (const ioldrv::RequestRecord& r : experiment.telemetry().records()) {
    h = Mix(h, r.issue);
    h = Mix(h, r.complete);
    h = Mix(h, r.bytes);
    h = Mix(h, r.server);
    h = Mix(h, static_cast<uint64_t>(r.outcome));
    h = Mix(h, r.attempts);
    if (r.counted) {
      ++run.outcomes[static_cast<int>(r.outcome)];
    }
  }
  run.fold = Mix(h, sys->ctx().clock().now());
  return run;
}

}  // namespace

int main() {
  std::printf("# fault drill: scripted crash/fail-slow/link-outage chaos, full recovery lattice\n");
  DrillRun a = RunDrill();
  DrillRun b = RunDrill();

  std::printf("requests      %llu\n", static_cast<unsigned long long>(a.result.requests));
  std::printf("availability  %.4f%%\n", a.result.availability * 100.0);
  std::printf("outcomes      ok=%llu retried-ok=%llu hedge-won=%llu timed-out=%llu failed=%llu\n",
              static_cast<unsigned long long>(a.outcomes[0]),
              static_cast<unsigned long long>(a.outcomes[1]),
              static_cast<unsigned long long>(a.outcomes[2]),
              static_cast<unsigned long long>(a.outcomes[3]),
              static_cast<unsigned long long>(a.outcomes[4]));
  std::printf("retries       %llu\n", static_cast<unsigned long long>(a.result.retries));
  std::printf("hedges        %llu\n", static_cast<unsigned long long>(a.result.hedges));
  std::printf("ejections     %llu\n", static_cast<unsigned long long>(a.result.health_ejections));
  std::printf("blackholed    %llu\n", static_cast<unsigned long long>(a.result.blackholed_arrivals));
  std::printf("drops         %llu\n", static_cast<unsigned long long>(a.result.response_drops));
  std::printf("p99           %.2f ms\n", a.result.latency.p99_ms);
  std::printf("record fold   %016llx (run twice: %s)\n",
              static_cast<unsigned long long>(a.fold),
              a.fold == b.fold ? "identical" : "DIVERGED");

  bool recovered = a.outcomes[1] + a.outcomes[2] > 0;  // Retried or hedged wins.
  bool ok = a.result.availability >= 0.999 && recovered &&
            a.result.health_ejections > 0 && a.fold == b.fold;
  std::printf("drill         %s\n", ok ? "ok" : "FAIL");
  return ok ? 0 : 1;
}
