// Example: converted UNIX filters (Section 5.8).
//
// Runs wc and cat|grep in both their unmodified (POSIX) and IO-Lite
// variants over the same file, verifies they produce identical answers,
// and reports the simulated runtimes side by side.
//
// Run:  ./build/examples/unix_filters

#include <cstdio>

#include "src/apps/filters.h"
#include "src/system/system.h"
#include "tests/test_util.h"

int main() {
  iolsys::System sys;
  iolfs::FileId file = sys.fs().CreateFile("corpus.txt", 1750 * 1024);
  sys.io().ReadExtent(file, 0, 1750 * 1024);  // Warm the file cache.

  std::printf("# wc over a cached 1.75 MB file\n");
  iolsim::SimTime t0 = sys.ctx().clock().now();
  iolapp::WcCounts posix_counts = iolapp::WcPosix(&sys, file);
  double posix_ms = iolsim::ToSeconds(sys.ctx().clock().now() - t0) * 1e3;
  t0 = sys.ctx().clock().now();
  iolapp::WcCounts lite_counts = iolapp::WcIolite(&sys, file);
  double lite_ms = iolsim::ToSeconds(sys.ctx().clock().now() - t0) * 1e3;
  std::printf("posix : %llu lines %llu words %llu bytes in %.2f ms\n",
              static_cast<unsigned long long>(posix_counts.lines),
              static_cast<unsigned long long>(posix_counts.words),
              static_cast<unsigned long long>(posix_counts.bytes), posix_ms);
  std::printf("iolite: %llu lines %llu words %llu bytes in %.2f ms (%.0f%% faster)\n",
              static_cast<unsigned long long>(lite_counts.lines),
              static_cast<unsigned long long>(lite_counts.words),
              static_cast<unsigned long long>(lite_counts.bytes), lite_ms,
              100.0 * (1 - lite_ms / posix_ms));
  std::printf("answers agree: %s\n\n", posix_counts == lite_counts ? "yes" : "NO");

  std::printf("# cat corpus.txt | grep <pattern>\n");
  std::string pattern = ioltest::FileContent(sys.fs(), file, 4096, 3);
  t0 = sys.ctx().clock().now();
  uint64_t posix_matches = iolapp::GrepCatPosix(&sys, file, pattern);
  posix_ms = iolsim::ToSeconds(sys.ctx().clock().now() - t0) * 1e3;
  t0 = sys.ctx().clock().now();
  uint64_t lite_matches = iolapp::GrepCatIolite(&sys, file, pattern);
  lite_ms = iolsim::ToSeconds(sys.ctx().clock().now() - t0) * 1e3;
  std::printf("posix : %llu matches in %.2f ms\n",
              static_cast<unsigned long long>(posix_matches), posix_ms);
  std::printf("iolite: %llu matches in %.2f ms (%.0f%% faster)\n",
              static_cast<unsigned long long>(lite_matches), lite_ms,
              100.0 * (1 - lite_ms / posix_ms));
  std::printf("answers agree: %s\n", posix_matches == lite_matches ? "yes" : "NO");
  return 0;
}
