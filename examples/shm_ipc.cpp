// Shared-memory zero-copy IPC across a real process boundary.
//
// The simulated PipeChannel *models* the paper's copy-free IPC with charged
// costs; this example runs the real thing (src/ipc): a producer process
// seals IO-Lite aggregates into a shared region and publishes them as
// 32-byte descriptors through a lock-free SPSC ring, and a fork()ed consumer
// process reads every payload byte through its own mapping of the region.
// Nothing is copied on either side — the producer's stats counters and the
// consumer's verification both demonstrate it.
//
// The region prefers POSIX shm_open (attachable by name from unrelated
// processes) and falls back to an anonymous MAP_SHARED mapping, which the
// fork()ed child still shares — so the demo runs even in sandboxes without
// /dev/shm.
//
// Run:  ./build/example_shm_ipc

#include <sched.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "src/ipc/ring_channel.h"
#include "src/ipc/shm_pool.h"
#include "src/ipc/shm_region.h"
#include "src/simos/sim_context.h"

namespace {

constexpr uint64_t kAggregates = 2000;
constexpr size_t kDocBytes = 16 * 1024;

// Deterministic document byte so the consumer can verify without any side
// channel.
char DocByte(uint64_t doc, size_t i) {
  return static_cast<char>('a' + (doc * 7 + i * 131 + i / 97) % 26);
}

// The consumer process: attaches to the ring through the shared mapping and
// verifies every byte in place. Its exit code is the verdict.
int RunConsumer(iolipc::ShmRegion* region, uint64_t ring_offset) {
  iolipc::RingChannel ring = iolipc::RingChannel::Attach(region, ring_offset);
  if (!ring.valid()) {
    return 2;
  }
  uint64_t docs = 0;
  uint64_t bytes = 0;
  while (true) {
    iolipc::SliceDesc d{};
    if (ring.TryPeekSlice(&d)) {
      // Zero-copy read: the payload is inspected where the producer sealed
      // it; only the 32-byte descriptor crossed the ring. The pop is
      // committed only after the last byte is read — committing is what
      // licenses the producer to recycle the buffer.
      const char* p = region->At(d.offset);
      for (size_t i = 0; i < d.length; ++i) {
        if (p[i] != DocByte(docs, i)) {
          std::fprintf(stderr, "consumer: corruption in doc %llu at byte %zu\n",
                       static_cast<unsigned long long>(docs), i);
          return 1;
        }
      }
      bytes += d.length;
      if ((d.flags & iolipc::kFrameEnd) != 0) {
        ++docs;
      }
      ring.CommitPop();
    } else if (ring.drained()) {
      break;
    } else {
      sched_yield();
    }
  }
  std::printf("consumer (pid %d): verified %llu aggregates, %llu bytes, 0 copies\n", getpid(),
              static_cast<unsigned long long>(docs), static_cast<unsigned long long>(bytes));
  std::fflush(stdout);  // The caller _exit()s; flush or lose the report.
  return docs == kAggregates ? 0 : 1;
}

}  // namespace

int main() {
  // Region sized for the ring plus a working set of documents; the pool
  // recycles buffers as the consumer drains them, so steady state reuses a
  // handful of extents no matter how many aggregates cross.
  auto region = iolipc::ShmRegion::Create(8 << 20, "/iolite-shm-ipc-demo");
  if (region == nullptr) {
    std::fprintf(stderr, "mmap failed; no shared memory available\n");
    return 1;
  }
  std::printf("region: %zu MB via %s\n", region->size() >> 20,
              region->posix_shm_backed() ? "shm_open(/iolite-shm-ipc-demo)"
                                         : "anonymous MAP_SHARED (fork-shared fallback)");

  iolipc::RingChannel ring = iolipc::RingChannel::Create(region.get(), 64);

  std::fflush(stdout);  // Don't duplicate buffered output into the child.
  pid_t child = fork();
  if (child < 0) {
    std::perror("fork");
    return 1;
  }
  if (child == 0) {
    _exit(RunConsumer(region.get(), ring.state_offset()));
  }

  // Producer process: seal documents into the region, publish descriptors.
  iolsim::SimContext ctx;
  iolsim::DomainId producer = ctx.vm().CreateDomain("producer");
  iolipc::ShmPool pool(&ctx, "demo-pool", producer, region.get());
  iolipc::ShmStream stream(&ctx, &pool, ring);

  for (uint64_t doc = 0; doc < kAggregates; ++doc) {
    iolite::BufferRef b = pool.Allocate(kDocBytes);
    char* dst = b->writable_data();
    for (size_t i = 0; i < kDocBytes; ++i) {
      dst[i] = DocByte(doc, i);
    }
    b->Seal(kDocBytes);
    iolite::Aggregate agg = iolite::Aggregate::FromBuffer(std::move(b));
    while (stream.Write(producer, agg) == 0) {
      sched_yield();  // Ring full: wait for the consumer to catch up.
    }
  }
  stream.CloseWriteEnd();

  int status = 0;
  if (waitpid(child, &status, 0) != child || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "consumer failed (status %d)\n", status);
    return 1;
  }

  const iolsim::SimStats& s = ctx.stats();
  std::printf("producer (pid %d): %llu aggregates, %llu bytes by reference\n", getpid(),
              static_cast<unsigned long long>(s.ipc_frames_sent),
              static_cast<unsigned long long>(s.ipc_bytes_transferred));
  std::printf("payload bytes copied by the transport: %llu (zero-copy)\n",
              static_cast<unsigned long long>(s.ipc_bytes_copied));
  std::printf("descriptor bytes through the ring:     %llu (%zu per aggregate)\n",
              static_cast<unsigned long long>(s.ipc_desc_bytes), sizeof(iolipc::SliceDesc));
  std::printf("ring-full stalls: %llu, buffers recycled: %llu, region used: %llu KB\n",
              static_cast<unsigned long long>(s.ipc_ring_full_events),
              static_cast<unsigned long long>(s.buffers_recycled),
              static_cast<unsigned long long>(region->bytes_used() >> 10));
  if (s.ipc_bytes_copied != 0) {
    std::fprintf(stderr, "FAILED: transport copied payload bytes\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
