// Lock-free SPSC descriptor ring over a shared region, plus the ShmStream
// adapter that makes it an iolite::Stream.
//
// The ring is the control plane of the zero-copy transport: a power-of-two
// array of 32-byte SliceDescs with free-running head/tail counters. The
// producer publishes with a release store of tail, the consumer with a
// release store of head; each side keeps a *cached* copy of the other's
// index (zeroipc-style) and re-reads the shared atomic only when the cache
// says the ring looks full/empty, so steady-state transfers touch a single
// shared cache line per side. Everything the ring stores is a trivially
// copyable descriptor — the payload named by the descriptors never moves.
//
// RingChannel is a handle: the shared state (RingState) lives inside the
// region at a stable offset, so a second process can Attach() to the same
// ring after mapping the region.

#ifndef SRC_IPC_RING_CHANNEL_H_
#define SRC_IPC_RING_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "src/iolite/stream.h"
#include "src/ipc/shm_pool.h"
#include "src/ipc/slice_desc.h"
#include "src/simos/sim_context.h"

namespace iolipc {

class RingChannel {
 public:
  // Shared ring state, resident in the region. 64-byte alignment keeps the
  // producer-written and consumer-written lines from false sharing.
  struct RingState {
    uint32_t magic;
    uint32_t capacity;  // Slot count; power of two.
    alignas(64) std::atomic<uint64_t> tail;          // Producer-owned.
    alignas(64) std::atomic<uint64_t> head;          // Consumer-owned.
    alignas(64) std::atomic<uint64_t> bytes_queued;  // Payload bytes in flight.
    std::atomic<uint32_t> closed;
  };

  RingChannel() = default;

  // Carves ring state + `capacity` slots (power of two) out of `region`.
  // Returns an invalid channel if the region is exhausted.
  static RingChannel Create(ShmRegion* region, uint32_t capacity);

  // Adopts the ring whose RingState sits at `state_offset` in `region`
  // (obtained from state_offset() in the creating process).
  static RingChannel Attach(ShmRegion* region, uint64_t state_offset);

  bool valid() const { return state_ != nullptr; }
  uint64_t state_offset() const;
  uint32_t capacity() const { return state_->capacity; }

  // --- Producer side -------------------------------------------------------

  // True if a frame of `n` descriptors currently fits.
  bool CanAccept(uint32_t n);

  // Publishes `n` descriptors as one frame, all-or-nothing. The frame
  // becomes visible to the consumer atomically (single tail store).
  bool TryPushFrame(const SliceDesc* descs, uint32_t n);

  // Absolute count of slots the consumer has committed. The producer uses
  // this to learn which in-flight payloads are fully consumed and may be
  // recycled (see ShmStream::ReclaimConsumed).
  uint64_t consumed() const;

  // Absolute count of slots ever published (the producer's tail).
  uint64_t published() const;

  // --- Consumer side -------------------------------------------------------

  // Pops one descriptor; returns false when the ring is empty. Equivalent to
  // TryPeekSlice + CommitPop: use the two-step form when the payload is read
  // in place, so the producer cannot recycle it mid-read.
  bool TryPopSlice(SliceDesc* out);

  // Reads the descriptor at the head without advancing it.
  bool TryPeekSlice(SliceDesc* out);

  // Advances the head past the last peeked descriptor, signalling to the
  // producer that its payload is no longer referenced by this consumer.
  void CommitPop();

  // --- Shared ---------------------------------------------------------------

  uint64_t bytes_queued() const;
  uint32_t slots_used();
  void Close();
  bool closed() const;
  // End-of-stream: writer closed and every descriptor consumed.
  bool drained();

 private:
  ShmRegion* region_ = nullptr;
  RingState* state_ = nullptr;
  SliceDesc* slots_ = nullptr;
  uint32_t mask_ = 0;
  // Locally cached copies of the *other* side's index; refreshed from the
  // shared atomic only when the ring looks full (producer) or empty
  // (consumer).
  uint64_t cached_head_ = 0;
  uint64_t cached_tail_ = 0;
};

// iolite::Stream adapter: IOL_read / IOL_write work unchanged over a shared
// ring. Write converts an aggregate into a descriptor frame — region-resident
// slices go through untouched (ipc_bytes_transferred), foreign slices are
// staged into the region once (ipc_bytes_copied) — and Read reassembles
// aggregates from descriptors, splitting at max_bytes like a pipe.
//
// The pool is required on the write side (descriptor conversion) and on a
// same-process read side (pin resolution). A foreign process reads payload
// through its own region mapping instead of a ShmStream.
//
// Threading: like everything holding a SimContext, a ShmStream (and the
// ShmPool pin table it shares) is single-threaded — use it from one thread
// and let the RingChannel carry the data to the peer thread or process.
// Cross-thread/-process consumers drive RingChannel directly (peek/commit),
// as the threaded and fork tests and examples/shm_ipc.cpp do.
class ShmStream : public iolite::Stream {
 public:
  ShmStream(iolsim::SimContext* ctx, ShmPool* pool, RingChannel ring)
      : ctx_(ctx), pool_(pool), ring_(ring), pushed_slots_(ring_.published()) {}

  iolite::Aggregate Read(iolsim::DomainId reader, size_t max_bytes) override;
  size_t Write(iolsim::DomainId writer, const iolite::Aggregate& agg) override;
  size_t ReadableBytes() const override;

  // Unpins every in-flight buffer whose ring slot the consumer has
  // committed past, letting the pool recycle it. Called automatically on
  // each Write; a producer facing a foreign-process consumer (which cannot
  // touch the pin table) may also call it directly. Safe alongside the
  // same-process Read path, whose pins are already gone (Unpin is
  // idempotent).
  void ReclaimConsumed();

  void CloseWriteEnd() { ring_.Close(); }
  RingChannel& ring() { return ring_; }

 private:
  iolsim::SimContext* ctx_;
  ShmPool* pool_;
  RingChannel ring_;
  // Descriptors popped but not yet returned (a frame can exceed max_bytes).
  iolite::Aggregate pending_;
  // (absolute slot index, ticket) of every descriptor this stream pushed,
  // oldest first, until reclaimed. pushed_slots_ starts at the ring's
  // current tail so attaching to a ring with prior traffic cannot reclaim
  // someone else's in-flight slots.
  std::deque<std::pair<uint64_t, uint64_t>> in_flight_;
  uint64_t pushed_slots_;
  // Reused descriptor scratch: keeps the warm Write path allocation-free.
  std::vector<SliceDesc> descs_;
};

}  // namespace iolipc

#endif  // SRC_IPC_RING_CHANNEL_H_
