#include "src/ipc/shm_table.h"

#include <cassert>

namespace iolipc {

ShmTable ShmTable::Create(ShmRegion* region, uint32_t capacity) {
  assert(capacity > 0);
  assert(region->bytes_used() == 0 && "the table must be the region's first extent");
  size_t span = sizeof(TableHeader) + static_cast<size_t>(capacity) * sizeof(Entry);
  char* base = region->AllocateExtent(span);
  ShmTable table;
  if (base == nullptr) {
    return table;
  }
  assert(region->OffsetOf(base) == 0 && "the table must sit at payload offset 0");
  std::memset(base, 0, span);
  table.region_ = region;
  table.header_ = reinterpret_cast<TableHeader*>(base);
  table.header_->capacity = capacity;
  table.header_->count.store(0, std::memory_order_relaxed);
  // The magic is published last: an attacher that sees it sees a zeroed,
  // sized directory.
  std::atomic_thread_fence(std::memory_order_release);
  table.header_->magic = kTableMagic;
  return table;
}

ShmTable ShmTable::Attach(ShmRegion* region) {
  ShmTable table;
  if (region->size() < sizeof(TableHeader)) {
    return table;
  }
  auto* header = reinterpret_cast<TableHeader*>(region->At(0));
  if (header->magic != kTableMagic || header->capacity == 0 ||
      sizeof(TableHeader) + static_cast<size_t>(header->capacity) * sizeof(Entry) >
          region->size()) {
    return table;
  }
  table.region_ = region;
  table.header_ = header;
  return table;
}

size_t ShmTable::entry_count() const {
  uint32_t n = header_->count.load(std::memory_order_acquire);
  return n > header_->capacity ? header_->capacity : n;
}

bool ShmTable::Publish(const char* name, uint64_t offset, uint64_t size, ShmType type) {
  if (Find(name) != nullptr) {
    return false;
  }
  uint32_t idx = header_->count.fetch_add(1, std::memory_order_relaxed);
  if (idx >= header_->capacity) {
    // Leave the overshoot in `count`; entry_count clamps.
    return false;
  }
  Entry& e = entries()[idx];
  std::strncpy(e.name, name, kNameBytes - 1);
  e.name[kNameBytes - 1] = '\0';
  e.offset = offset;
  e.size = size;
  e.type = static_cast<uint32_t>(type);
  e.state.store(kEntryReady, std::memory_order_release);
  return true;
}

const ShmTable::Entry* ShmTable::Find(const char* name) const {
  size_t n = entry_count();
  for (size_t i = 0; i < n; ++i) {
    const Entry& e = entries()[i];
    if (e.state.load(std::memory_order_acquire) == kEntryReady &&
        std::strncmp(e.name, name, kNameBytes) == 0) {
      return &e;
    }
  }
  return nullptr;
}

const ShmTable::Entry* ShmTable::At(size_t i) const {
  if (i >= entry_count()) {
    return nullptr;
  }
  const Entry& e = entries()[i];
  return e.state.load(std::memory_order_acquire) == kEntryReady ? &e : nullptr;
}

}  // namespace iolipc
