// ShmTable: the named-structure directory of a shared region.
//
// zeroipc-style discovery: the table lives at a *fixed place* — payload
// offset 0, i.e. the region's first carved extent — so any process that can
// map the region can enumerate everything in it knowing only the region's
// name. Each entry names one structure (a queue, a map, a future pool, a
// counter block, or a raw span) by a NUL-terminated string and records its
// payload offset, byte size and type. Entries are published with a release
// store of their state word, so a concurrent attacher either sees a fully
// written entry or none.
//
// The table is append-only: structures are registered at plane construction
// and never removed, which keeps the directory lock-free and trivially
// parseable from outside (scripts/shm_inspect.py walks it with nothing but
// struct offsets — every layout below is ABI).

#ifndef SRC_IPC_SHM_TABLE_H_
#define SRC_IPC_SHM_TABLE_H_

#include <atomic>
#include <cstdint>
#include <cstring>

#include "src/ipc/shm_region.h"

namespace iolipc {

// What an entry points at. The inspector uses this to pick a decoder.
enum class ShmType : uint32_t {
  kRaw = 0,      // Uninterpreted span (slabs, doc-size arrays).
  kQueue = 1,    // MpmcQueue state + cells.
  kMap = 2,      // ShmMap header + slots.
  kFutures = 3,  // ShmFuturePool header + slots.
  kCounters = 4, // ShmCounters block.
  kRing = 5,     // PR 1's SPSC RingChannel state.
};

class ShmTable {
 public:
  static constexpr size_t kNameBytes = 32;

  // One directory entry; 64 bytes, published via `state`.
  struct Entry {
    char name[kNameBytes];        // offset 0: NUL-terminated.
    uint64_t offset;              // offset 32: payload offset of the structure.
    uint64_t size;                // offset 40: bytes.
    uint32_t type;                // offset 48: ShmType.
    std::atomic<uint32_t> state;  // offset 52: 0 = empty, 2 = ready.
    uint64_t reserved;            // offset 56.
  };
  static_assert(sizeof(Entry) == 64, "table entry layout is ABI");

  ShmTable() = default;

  // Carves the directory as the region's FIRST extent (asserts nothing was
  // carved before it) so attachers find it at payload offset 0.
  static ShmTable Create(ShmRegion* region, uint32_t capacity);

  // Adopts the directory at payload offset 0. Invalid handle if the region
  // does not start with a table.
  static ShmTable Attach(ShmRegion* region);

  bool valid() const { return header_ != nullptr; }
  uint32_t capacity() const { return header_->capacity; }
  size_t entry_count() const;

  // Registers [offset, offset+size) under `name` (truncated to 31 chars).
  // Returns false when the directory is full or the name already exists.
  bool Publish(const char* name, uint64_t offset, uint64_t size, ShmType type);

  // Finds a published entry; null when absent.
  const Entry* Find(const char* name) const;

  // Published entry by index (for enumeration); null when not yet ready.
  const Entry* At(size_t i) const;

  // Convenience: the mapped address of a published structure, or null.
  char* Resolve(const char* name) const {
    const Entry* e = Find(name);
    return e == nullptr ? nullptr : region_->At(e->offset);
  }

 private:
  // At the table's base; 64 bytes. Layout is ABI.
  struct TableHeader {
    uint32_t magic;               // offset 0: kTableMagic.
    uint32_t capacity;            // offset 4.
    std::atomic<uint32_t> count;  // offset 8: claimed entries (monotone).
    uint32_t reserved;            // offset 12.
    char pad[48];
  };
  static_assert(sizeof(TableHeader) == 64, "table header layout is ABI");

  static constexpr uint32_t kTableMagic = 0x494f4c54;  // "IOLT"
  static constexpr uint32_t kEntryReady = 2;

  Entry* entries() const { return reinterpret_cast<Entry*>(
      reinterpret_cast<char*>(header_) + sizeof(TableHeader)); }

  ShmRegion* region_ = nullptr;
  TableHeader* header_ = nullptr;
};

}  // namespace iolipc

#endif  // SRC_IPC_SHM_TABLE_H_
