// ShmFuturePool: pooled one-shot futures in shared memory — how a proxy
// worker awaits an origin miss-fill without copying anything.
//
// A future is a fixed slot holding up to two SliceDescs (header span + body
// span): the waiter allocates a slot, ships its handle to the filler inside
// a queue message, and spins/yields until the filler's release store of the
// state word publishes the descriptors. The payload the descriptors name
// never moves — completing a future transfers *references*, the IOL-IPC
// discipline at one more level.
//
// Handles carry a generation number: a slot is only completable while the
// generation matches, so a late filler (or one whose waiter timed out and
// recycled the slot) writes nothing — it gets `false` and walks away. That
// is the crash-recovery story: a waiter whose filler died times out, fails
// the future itself, and the slot is safely reusable even if the filler
// somehow resurfaces.
//
// Layouts are ABI (scripts/shm_inspect.py reports per-state slot counts).

#ifndef SRC_IPC_SHM_FUTURE_H_
#define SRC_IPC_SHM_FUTURE_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "src/ipc/shm_region.h"
#include "src/ipc/shm_table.h"
#include "src/ipc/slice_desc.h"

namespace iolipc {

// Opaque future handle: (generation << 32) | slot index. Crosses process
// boundaries inside 32-byte plane messages.
using FutureHandle = uint64_t;
constexpr FutureHandle kInvalidFuture = ~0ull;

// How a worker waits: called once per fruitless poll. Forked workers pass
// sched_yield; the in-process pump passes "run the other roles one step",
// which is what makes the same worker code a deterministic simulator.
using YieldFn = std::function<void()>;

class ShmFuturePool {
 public:
  enum State : uint32_t { kFree = 0, kPending = 1, kReady = 2, kError = 3 };

  // At the pool's base; 64 bytes. Layout is ABI.
  struct PoolHeader {
    uint32_t magic;                    // offset 0: kFutureMagic.
    uint32_t capacity;                 // offset 4.
    std::atomic<uint32_t> allocated;   // offset 8: live (pending/ready/error).
    std::atomic<uint32_t> alloc_hint;  // offset 12: rotating scan start.
    char pad[48];
  };
  static_assert(sizeof(PoolHeader) == 64, "future pool header layout is ABI");

  struct FutureSlot {
    std::atomic<uint32_t> state;  // offset 0.
    std::atomic<uint32_t> gen;    // offset 4: bumped on every Release.
    uint32_t error;               // offset 8.
    uint32_t reserved;            // offset 12.
    SliceDesc value[2];           // offset 16: header span, body span.
    char pad[48];
  };
  static_assert(sizeof(FutureSlot) == 128, "future slot layout is ABI");

  struct WaitResult {
    bool ok = false;          // kReady observed.
    bool timed_out = false;   // Deadline hit while still kPending.
    uint32_t error = 0;       // Filler-reported error when !ok && !timed_out.
    SliceDesc value[2] = {};  // Valid when ok.
  };

  ShmFuturePool() = default;

  static ShmFuturePool Create(ShmRegion* region, ShmTable* table, const char* name,
                              uint32_t capacity);
  static ShmFuturePool Attach(ShmRegion* region, const ShmTable& table,
                              const char* name);

  bool valid() const { return header_ != nullptr; }
  uint32_t capacity() const { return header_->capacity; }
  uint32_t allocated() const { return header_->allocated.load(std::memory_order_acquire); }

  // Claims a free slot (kFree -> kPending, generation captured in the
  // handle). kInvalidFuture when the pool is exhausted.
  FutureHandle Acquire();

  // Filler side: publishes the value (kPending -> kReady) or an error
  // (kPending -> kError). False when the handle is stale — the waiter gave
  // up and the slot moved on; the filler must not retry.
  bool Complete(FutureHandle h, const SliceDesc& header, const SliceDesc& body);
  bool Fail(FutureHandle h, uint32_t error);

  // Waiter side: polls until the future leaves kPending or ~`timeout_us`
  // host microseconds elapse, calling `yield` between polls.
  WaitResult Wait(FutureHandle h, uint64_t timeout_us, const YieldFn& yield);

  // Returns the slot to kFree and bumps its generation, invalidating every
  // outstanding handle to it. Only the handle's owner may call this.
  void Release(FutureHandle h);

  // Slot count currently in `s` (diagnostics/tests; approximate).
  uint32_t CountInState(State s) const;

 private:
  static constexpr uint32_t kFutureMagic = 0x494f4c46;  // "IOLF"

  FutureSlot* slots() const {
    return reinterpret_cast<FutureSlot*>(reinterpret_cast<char*>(header_) +
                                         sizeof(PoolHeader));
  }
  FutureSlot* SlotOf(FutureHandle h, uint32_t* gen) const;

  ShmRegion* region_ = nullptr;
  PoolHeader* header_ = nullptr;
};

}  // namespace iolipc

#endif  // SRC_IPC_SHM_FUTURE_H_
