// ShmMap: fixed-capacity open-addressing hash map in shared memory — the
// cross-process cache directory of the data plane.
//
// Maps a 64-bit key (the plane uses FileIds) to a SliceDesc naming the
// cached payload plus a pin count. The pin count is the cross-process
// analogue of the in-process BufferRef: a proxy serving an object pins its
// entry so eviction cannot retire the payload while its bytes are still
// being read through another mapping; the final consumer unpins.
//
// Concurrency: linear probing over power-of-two slots. Each slot has a
// one-word state machine (empty -> busy -> full, full -> tomb on erase)
// driven by CAS; `busy` doubles as a per-slot spinlock held for the few
// instructions that read or write the 48 bytes of slot payload, so readers
// never observe a half-written value. Tombstones keep probe chains intact.
//
// Two processes racing to insert the same key can both succeed into
// different slots (the claim-then-publish window); lookups then consistently
// find the probe-earlier copy and the loser's payload merely wastes region
// bytes. The plane's miss-fill futures make that window rare (one fill per
// key in flight per proxy worker); the map does not try to close it.
//
// All layouts are ABI — scripts/shm_inspect.py walks the slot array to dump
// live cache metadata from outside the serving processes.

#ifndef SRC_IPC_SHM_MAP_H_
#define SRC_IPC_SHM_MAP_H_

#include <atomic>
#include <cstdint>

#include "src/ipc/shm_region.h"
#include "src/ipc/shm_table.h"
#include "src/ipc/slice_desc.h"

namespace iolipc {

class ShmMap {
 public:
  // At the map's base; 64 bytes. Layout is ABI.
  struct MapHeader {
    uint32_t magic;                   // offset 0: kMapMagic.
    uint32_t capacity;                // offset 4: slots, power of two.
    std::atomic<uint32_t> size;       // offset 8: live entries.
    std::atomic<uint32_t> tombstones; // offset 12.
    std::atomic<uint64_t> bytes;      // offset 16: sum of value lengths.
    std::atomic<uint64_t> clock_hand; // offset 24: eviction scan cursor.
    char pad[32];
  };
  static_assert(sizeof(MapHeader) == 64, "map header layout is ABI");

  struct Slot {
    std::atomic<uint32_t> state;  // offset 0: kEmpty/kBusy/kFull/kTomb.
    std::atomic<int32_t> pins;    // offset 4.
    uint64_t key;                 // offset 8.
    SliceDesc value;              // offset 16.
    char pad[16];
  };
  static_assert(sizeof(Slot) == 64, "map slot layout is ABI");

  static constexpr uint32_t kEmpty = 0;
  static constexpr uint32_t kBusy = 1;
  static constexpr uint32_t kFull = 2;
  static constexpr uint32_t kTomb = 3;

  ShmMap() = default;

  // Carves header + slots and registers the span in `table` under `name`.
  // `capacity` must be a power of two.
  static ShmMap Create(ShmRegion* region, ShmTable* table, const char* name,
                       uint32_t capacity);
  static ShmMap Attach(ShmRegion* region, const ShmTable& table, const char* name);

  bool valid() const { return header_ != nullptr; }
  uint32_t capacity() const { return header_->capacity; }
  uint32_t size() const { return header_->size.load(std::memory_order_acquire); }
  uint64_t bytes() const { return header_->bytes.load(std::memory_order_acquire); }

  // Inserts key -> value. kExists when the key was already present (the
  // existing value wins), kFull when no slot is free.
  enum class InsertResult { kInserted, kExists, kFull };
  InsertResult Insert(uint64_t key, const SliceDesc& value);

  // Reads the value without touching the pin count.
  bool Lookup(uint64_t key, SliceDesc* out) const;

  // Reads the value and increments the entry's pin count under the slot
  // lock — the entry cannot be evicted or erased until Unpin.
  bool LookupAndPin(uint64_t key, SliceDesc* out);

  // Drops one pin. False when the key is absent (e.g. already erased by a
  // racing InvalidateFile — callers treat that as a bug in the plane).
  bool Unpin(uint64_t key);

  // Removes the entry unless pinned. False when absent or pinned.
  bool Erase(uint64_t key);

  // Clock-scan eviction: tombstones the first unpinned entry at or after
  // the shared clock hand. Reports what was evicted so the caller can
  // release the payload. False when every entry is pinned (or the map is
  // empty).
  bool EvictOne(uint64_t* evicted_key, SliceDesc* evicted_value);

  // Current pin count of `key`; -1 when absent. (Diagnostics/tests.)
  int32_t PinsOf(uint64_t key) const;

 private:
  static constexpr uint32_t kMapMagic = 0x494f4c4d;  // "IOLM"

  static uint64_t Mix(uint64_t key);  // splitmix64 finalizer.

  Slot* slots() const {
    return reinterpret_cast<Slot*>(reinterpret_cast<char*>(header_) + sizeof(MapHeader));
  }

  ShmRegion* region_ = nullptr;
  MapHeader* header_ = nullptr;
  uint32_t mask_ = 0;
};

}  // namespace iolipc

#endif  // SRC_IPC_SHM_MAP_H_
