// ShmCacheMirror: projects a FileCache's membership into a shared-memory
// ShmMap, making the unified cache's *metadata* visible across processes.
//
// The in-process FileCache stays the authority (policies, budget trigger,
// snapshot semantics all unchanged); the mirror is a write-through shadow of
// one fact per file — "file F's bytes live at region offset O, length L" —
// which is everything a foreign proxy worker needs to serve F with zero
// copies. Only entries the plane can actually share are mirrored: whole-file
// (offset 0), single-slice, and resident in the mirror's region. Anything
// else (multi-slice assemblies, partial ranges, heap-backed buffers) is
// silently skipped; a foreign lookup then misses and takes the fill path,
// which is correct, just slower.
//
// Erase is asymmetric on purpose: a mirrored entry that a foreign process
// has pinned cannot be removed from the map (ShmMap::Erase refuses), so the
// mirror parks the key and retries on later mutations. The payload is safe
// either way — region extents are never recycled by the plane.

#ifndef SRC_IPC_SHM_CACHE_MIRROR_H_
#define SRC_IPC_SHM_CACHE_MIRROR_H_

#include <cstdint>
#include <vector>

#include "src/fs/file_cache.h"
#include "src/ipc/shm_map.h"
#include "src/ipc/shm_region.h"

namespace iolipc {

class ShmCacheMirror : public iolfs::CacheMirror {
 public:
  // `region` and `map` must outlive the mirror (and the cache it watches).
  ShmCacheMirror(ShmRegion* region, ShmMap* map) : region_(region), map_(map) {}

  void OnInsert(iolfs::FileId file, uint64_t offset,
                const iolite::Aggregate& data) override;
  void OnErase(iolfs::FileId file, uint64_t offset, size_t length) override;

  // Entries skipped because they were not shareable (diagnostics).
  uint64_t skipped() const { return skipped_; }
  // Erases currently parked behind a foreign pin.
  size_t deferred_erases() const { return deferred_.size(); }

 private:
  void DrainDeferred();

  ShmRegion* region_;
  ShmMap* map_;
  std::vector<uint64_t> deferred_;
  uint64_t skipped_ = 0;
};

}  // namespace iolipc

#endif  // SRC_IPC_SHM_CACHE_MIRROR_H_
