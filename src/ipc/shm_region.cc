#include "src/ipc/shm_region.h"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace iolipc {

namespace {
constexpr uint32_t kRegionMagic = 0x494f4c53;  // "IOLS"
constexpr size_t kExtentAlign = 64;

// Whether `pid` still names a live process. kill(0) probes without
// signalling; EPERM means "alive but not ours", which still counts.
bool PidAlive(uint64_t pid) {
  if (pid == 0) {
    return false;
  }
  return kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

// Reads the header of the named segment. Returns false when the segment is
// not a region of ours (wrong size or magic). `out` may be null (probe only).
bool ReadHeaderOf(const char* name, uint32_t* magic, uint64_t* owner_pid) {
  int fd = shm_open(name, O_RDONLY, 0);
  if (fd < 0) {
    return false;
  }
  struct stat st;
  if (fstat(fd, &st) != 0 || static_cast<size_t>(st.st_size) < ShmRegion::kHeaderSpan) {
    close(fd);
    return false;
  }
  char buf[ShmRegion::kHeaderSpan];
  ssize_t n = pread(fd, buf, sizeof(buf), 0);
  close(fd);
  if (n != static_cast<ssize_t>(sizeof(buf))) {
    return false;
  }
  std::memcpy(magic, buf, sizeof(*magic));
  std::memcpy(owner_pid, buf + 24, sizeof(*owner_pid));
  return true;
}
}  // namespace

// Lives at offset 0 of the mapping, shared by all mappers. The allocation
// cursor is in here (not in any one process) so that creator and attachers
// agree on what has been carved. The owner pid makes crashed-owner segments
// recognizable: a name whose owner no longer runs is stale and reclaimable
// (see Create's collision path and SweepStale). Layout is ABI — the offsets
// below are mirrored by scripts/shm_inspect.py.
struct ShmRegion::Header {
  uint32_t magic;              // offset 0
  uint32_t reserved;           // offset 4
  uint64_t payload_size;       // offset 8
  std::atomic<uint64_t> bump;  // offset 16: next free payload offset.
  uint64_t owner_pid;          // offset 24: creator, for staleness checks.
};

std::unique_ptr<ShmRegion> ShmRegion::Create(size_t size, const std::string& name) {
  static_assert(sizeof(Header) <= kHeaderSpan, "header must fit in its span");
  static_assert(offsetof(Header, payload_size) == 8, "header layout is ABI");
  static_assert(offsetof(Header, bump) == 16, "header layout is ABI");
  static_assert(offsetof(Header, owner_pid) == 24, "header layout is ABI");
  auto region = std::unique_ptr<ShmRegion>(new ShmRegion());
  size_t mapping_size = kHeaderSpan + size;

  int fd = -1;
  if (!name.empty()) {
    fd = shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0 && errno == EEXIST) {
      // The name is taken. If its owner is dead (a previous run crashed
      // between shm_open and its destructor), reclaim the name and retry
      // once: a process still mapping the stale segment keeps its mapping,
      // it just loses the name. If the owner is alive the name is genuinely
      // in use — fall through to the anonymous mapping rather than yanking
      // a live region out from under another process.
      uint32_t magic = 0;
      uint64_t owner = 0;
      bool ours = ReadHeaderOf(name.c_str(), &magic, &owner);
      if (!ours || magic != kRegionMagic || !PidAlive(owner)) {
        shm_unlink(name.c_str());
        fd = shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
      }
    }
    if (fd >= 0 && ftruncate(fd, static_cast<off_t>(mapping_size)) != 0) {
      close(fd);
      shm_unlink(name.c_str());
      fd = -1;
    }
  }

  void* mapping;
  if (fd >= 0) {
    mapping = mmap(nullptr, mapping_size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    if (mapping == MAP_FAILED) {
      close(fd);
      shm_unlink(name.c_str());
      fd = -1;
    }
  }
  if (fd < 0) {
    // Sandboxed-CI fallback: anonymous shared mapping, inherited across
    // fork(). Not attachable by name.
    mapping = mmap(nullptr, mapping_size, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS,
                   -1, 0);
    if (mapping == MAP_FAILED) {
      return nullptr;
    }
  }

  region->name_ = fd >= 0 ? name : std::string();
  region->fd_ = fd;
  region->mapping_ = mapping;
  region->mapping_size_ = mapping_size;
  region->header_ = static_cast<Header*>(mapping);
  region->payload_ = static_cast<char*>(mapping) + kHeaderSpan;
  region->payload_size_ = size;
  region->owner_ = true;

  region->header_->magic = kRegionMagic;
  region->header_->reserved = 0;
  region->header_->payload_size = size;
  region->header_->bump.store(0, std::memory_order_relaxed);
  region->header_->owner_pid = static_cast<uint64_t>(getpid());
  return region;
}

int ShmRegion::SweepStale(const std::string& prefix) {
  DIR* dir = opendir("/dev/shm");
  if (dir == nullptr) {
    return 0;
  }
  int reclaimed = 0;
  while (struct dirent* ent = readdir(dir)) {
    if (std::strncmp(ent->d_name, prefix.c_str(), prefix.size()) != 0) {
      continue;
    }
    std::string shm_name = "/";
    shm_name += ent->d_name;
    uint32_t magic = 0;
    uint64_t owner = 0;
    if (ReadHeaderOf(shm_name.c_str(), &magic, &owner) && magic == kRegionMagic &&
        !PidAlive(owner)) {
      if (shm_unlink(shm_name.c_str()) == 0) {
        ++reclaimed;
      }
    }
  }
  closedir(dir);
  return reclaimed;
}

uint64_t ShmRegion::owner_pid() const { return header_->owner_pid; }

std::unique_ptr<ShmRegion> ShmRegion::Attach(const std::string& name) {
  int fd = shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) {
    return nullptr;
  }
  struct stat st;
  if (fstat(fd, &st) != 0 || static_cast<size_t>(st.st_size) < kHeaderSpan) {
    close(fd);
    return nullptr;
  }
  size_t mapping_size = static_cast<size_t>(st.st_size);
  void* mapping = mmap(nullptr, mapping_size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (mapping == MAP_FAILED) {
    close(fd);
    return nullptr;
  }
  auto* header = static_cast<Header*>(mapping);
  if (header->magic != kRegionMagic ||
      header->payload_size != mapping_size - kHeaderSpan) {
    munmap(mapping, mapping_size);
    close(fd);
    return nullptr;
  }

  auto region = std::unique_ptr<ShmRegion>(new ShmRegion());
  region->name_ = name;
  region->fd_ = fd;
  region->mapping_ = mapping;
  region->mapping_size_ = mapping_size;
  region->header_ = header;
  region->payload_ = static_cast<char*>(mapping) + kHeaderSpan;
  region->payload_size_ = header->payload_size;
  region->owner_ = false;
  return region;
}

ShmRegion::~ShmRegion() {
  if (mapping_ != nullptr) {
    munmap(mapping_, mapping_size_);
  }
  if (fd_ >= 0) {
    close(fd_);
    if (owner_ && !name_.empty()) {
      shm_unlink(name_.c_str());
    }
  }
}

char* ShmRegion::AllocateExtent(size_t n) {
  uint64_t offset = header_->bump.load(std::memory_order_relaxed);
  uint64_t aligned;
  uint64_t end;
  do {
    aligned = (offset + kExtentAlign - 1) & ~static_cast<uint64_t>(kExtentAlign - 1);
    end = aligned + n;
    if (end > payload_size_) {
      return nullptr;
    }
  } while (!header_->bump.compare_exchange_weak(offset, end, std::memory_order_relaxed,
                                                std::memory_order_relaxed));
  return payload_ + aligned;
}

uint64_t ShmRegion::bytes_used() const {
  return header_->bump.load(std::memory_order_relaxed);
}

uint64_t ShmRegion::bytes_free() const { return payload_size_ - bytes_used(); }

}  // namespace iolipc
