#include "src/ipc/shm_future.h"

#include <time.h>

#include <cassert>
#include <cstring>

namespace iolipc {

namespace {

constexpr uint32_t kWriting = 4;  // Filler holds the slot mid-publish.

uint64_t NowMicros() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000ull +
         static_cast<uint64_t>(ts.tv_nsec) / 1000ull;
}

}  // namespace

ShmFuturePool ShmFuturePool::Create(ShmRegion* region, ShmTable* table,
                                    const char* name, uint32_t capacity) {
  assert(capacity > 0);
  size_t span = sizeof(PoolHeader) + static_cast<size_t>(capacity) * sizeof(FutureSlot);
  char* base = region->AllocateExtent(span);
  ShmFuturePool pool;
  if (base == nullptr) {
    return pool;
  }
  std::memset(base, 0, span);
  pool.region_ = region;
  pool.header_ = reinterpret_cast<PoolHeader*>(base);
  pool.header_->capacity = capacity;
  std::atomic_thread_fence(std::memory_order_release);
  pool.header_->magic = kFutureMagic;
  if (table != nullptr &&
      !table->Publish(name, region->OffsetOf(base), span, ShmType::kFutures)) {
    return ShmFuturePool{};
  }
  return pool;
}

ShmFuturePool ShmFuturePool::Attach(ShmRegion* region, const ShmTable& table,
                                    const char* name) {
  ShmFuturePool pool;
  const ShmTable::Entry* e = table.Find(name);
  if (e == nullptr || e->type != static_cast<uint32_t>(ShmType::kFutures)) {
    return pool;
  }
  auto* header = reinterpret_cast<PoolHeader*>(region->At(e->offset));
  if (header->magic != kFutureMagic || header->capacity == 0) {
    return pool;
  }
  pool.region_ = region;
  pool.header_ = header;
  return pool;
}

ShmFuturePool::FutureSlot* ShmFuturePool::SlotOf(FutureHandle h, uint32_t* gen) const {
  uint32_t idx = static_cast<uint32_t>(h & 0xffffffffu);
  if (idx >= header_->capacity) {
    return nullptr;
  }
  *gen = static_cast<uint32_t>(h >> 32);
  return &slots()[idx];
}

FutureHandle ShmFuturePool::Acquire() {
  uint32_t cap = header_->capacity;
  uint32_t start = header_->alloc_hint.fetch_add(1, std::memory_order_relaxed);
  for (uint32_t i = 0; i < cap; ++i) {
    uint32_t idx = (start + i) % cap;
    FutureSlot& s = slots()[idx];
    uint32_t expected = kFree;
    if (s.state.compare_exchange_strong(expected, kPending,
                                        std::memory_order_acquire)) {
      s.error = 0;
      header_->allocated.fetch_add(1, std::memory_order_relaxed);
      uint32_t gen = s.gen.load(std::memory_order_relaxed);
      return (static_cast<FutureHandle>(gen) << 32) | idx;
    }
  }
  return kInvalidFuture;
}

bool ShmFuturePool::Complete(FutureHandle h, const SliceDesc& header,
                             const SliceDesc& body) {
  uint32_t gen = 0;
  FutureSlot* s = SlotOf(h, &gen);
  if (s == nullptr) {
    return false;
  }
  for (;;) {
    if (s->gen.load(std::memory_order_acquire) != gen) {
      return false;  // Stale handle: the waiter recycled the slot.
    }
    uint32_t expected = kPending;
    if (s->state.compare_exchange_strong(expected, kWriting,
                                         std::memory_order_acquire)) {
      break;
    }
    if (expected != kWriting) {
      return false;  // Already completed/failed (e.g. waiter timed out).
    }
    // Another filler holds the slot mid-publish; re-inspect.
  }
  // Exclusive: the waiter cannot release a kWriting slot. Re-check the
  // generation in case the slot was recycled between the gen read and the
  // CAS landing on a *new* owner's pending future.
  if (s->gen.load(std::memory_order_acquire) != gen) {
    s->state.store(kPending, std::memory_order_release);
    return false;
  }
  s->value[0] = header;
  s->value[1] = body;
  s->state.store(kReady, std::memory_order_release);
  return true;
}

bool ShmFuturePool::Fail(FutureHandle h, uint32_t error) {
  uint32_t gen = 0;
  FutureSlot* s = SlotOf(h, &gen);
  if (s == nullptr) {
    return false;
  }
  for (;;) {
    if (s->gen.load(std::memory_order_acquire) != gen) {
      return false;
    }
    uint32_t expected = kPending;
    if (s->state.compare_exchange_strong(expected, kWriting,
                                         std::memory_order_acquire)) {
      break;
    }
    if (expected != kWriting) {
      return false;
    }
  }
  if (s->gen.load(std::memory_order_acquire) != gen) {
    s->state.store(kPending, std::memory_order_release);
    return false;
  }
  s->error = error;
  s->state.store(kError, std::memory_order_release);
  return true;
}

ShmFuturePool::WaitResult ShmFuturePool::Wait(FutureHandle h, uint64_t timeout_us,
                                              const YieldFn& yield) {
  WaitResult result;
  uint32_t gen = 0;
  FutureSlot* s = SlotOf(h, &gen);
  if (s == nullptr || s->gen.load(std::memory_order_acquire) != gen) {
    result.error = 1;
    return result;
  }
  uint64_t deadline = NowMicros() + timeout_us;
  bool failed_it = false;
  for (;;) {
    uint32_t st = s->state.load(std::memory_order_acquire);
    if (st == kReady) {
      result.ok = true;
      result.value[0] = s->value[0];
      result.value[1] = s->value[1];
      return result;
    }
    if (st == kError) {
      result.error = s->error;
      result.timed_out = failed_it;
      return result;
    }
    if (!failed_it && NowMicros() >= deadline) {
      // Deadline: try to fail the future ourselves. Losing the race to the
      // filler is fine — the next poll observes its result instead.
      failed_it = Fail(h, /*error=*/2);
      continue;
    }
    if (yield) {
      yield();
    }
  }
}

void ShmFuturePool::Release(FutureHandle h) {
  uint32_t gen = 0;
  FutureSlot* s = SlotOf(h, &gen);
  assert(s != nullptr && s->gen.load(std::memory_order_relaxed) == gen &&
         "Release of a stale handle");
  uint32_t st = s->state.load(std::memory_order_acquire);
  assert((st == kReady || st == kError) && "Release before completion");
  (void)st;
  // Bump the generation *before* freeing the slot: a handle minted before
  // this point can never publish into the slot's next life.
  s->gen.fetch_add(1, std::memory_order_release);
  header_->allocated.fetch_sub(1, std::memory_order_relaxed);
  s->state.store(kFree, std::memory_order_release);
}

uint32_t ShmFuturePool::CountInState(State state) const {
  uint32_t n = 0;
  for (uint32_t i = 0; i < header_->capacity; ++i) {
    if (slots()[i].state.load(std::memory_order_acquire) == state) {
      ++n;
    }
  }
  return n;
}

}  // namespace iolipc
