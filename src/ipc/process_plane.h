// The shared-memory data plane: everything proxy, origin and CGI workers
// need to cooperate across process boundaries, assembled from the src/ipc
// primitives and discoverable through the ShmTable by name alone.
//
// One region holds (names as published in the directory):
//
//   plane.q.client    MpmcQueue   client -> proxy workers (ClientRequestMsg)
//   plane.q.origin    MpmcQueue   proxy -> origin workers (FillRequestMsg)
//   plane.q.cgi       MpmcQueue   proxy -> CGI workers    (FillRequestMsg)
//   plane.q.hdrfree   MpmcQueue   free-list of response-header slab slots
//   plane.q.cgifree   MpmcQueue   free-list of CGI response slab slots
//   plane.q.copyfree  MpmcQueue   free-list of copy-mode slab slots
//   plane.map.cache   ShmMap      FileId -> cached payload (offset, len) + pins
//   plane.futures     ShmFuturePool   response/fill completion slots
//   plane.counters    ShmCounters     warm-path counters (ABI, see shm_counters.h)
//   plane.pins        PinLedger       per-worker transient-pin tickets (fault plane)
//   plane.slab.*      raw spans       the slab storage the free-lists carve
//
// Free-lists are themselves MPMC queues of SliceDescs — a slot *is* a
// descriptor whose `reserved` field carries the slot's capacity — so the
// plane needs no shared-memory allocator beyond the region's bump cursor.
//
// This header is pure mechanism: no file-system or HTTP knowledge. The
// worker roles that give the plane its behaviour live in
// src/proxy/plane_proxy.h; composition and measurement in
// src/driver/process_tier.h.

#ifndef SRC_IPC_PROCESS_PLANE_H_
#define SRC_IPC_PROCESS_PLANE_H_

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/ipc/mpmc_queue.h"
#include "src/ipc/shm_counters.h"
#include "src/ipc/shm_future.h"
#include "src/ipc/shm_map.h"
#include "src/ipc/shm_region.h"
#include "src/ipc/shm_table.h"

namespace iolipc {

// Directory names of the plane's structures.
inline constexpr char kPlaneClientQueue[] = "plane.q.client";
inline constexpr char kPlaneOriginQueue[] = "plane.q.origin";
inline constexpr char kPlaneCgiQueue[] = "plane.q.cgi";
inline constexpr char kPlaneHeaderFree[] = "plane.q.hdrfree";
inline constexpr char kPlaneCgiFree[] = "plane.q.cgifree";
inline constexpr char kPlaneCopyFree[] = "plane.q.copyfree";
inline constexpr char kPlaneCacheMap[] = "plane.map.cache";
inline constexpr char kPlaneFutures[] = "plane.futures";
inline constexpr char kPlaneCounters[] = "plane.counters";
inline constexpr char kPlanePinLedger[] = "plane.pins";

// --- Pin ledger (fault plane) ------------------------------------------------

// One slot per worker, fixed at plane creation (worker slot ids are assigned
// by the driver: proxies [0, P), origins [P, P+O)).
inline constexpr uint32_t kPinLedgerSlots = 64;

// The crash-recovery ledger for transient cache pins. A worker that takes a
// map pin on a requester's behalf records the key in its own slot *while it
// holds the pin* and clears the slot immediately before handing the pin off
// (completing the future that carries it). If the worker dies mid-serve,
// the supervisor Take()s the slot and unpins the key — without the sweep,
// a SIGKILL'd worker's pin would wedge that cache entry against eviction
// forever. Clear-before-handoff means a sweep can never double-unpin a pin
// the consumer also releases; the cost is a one-instruction window (between
// Clear and the future Complete) where a crash leaks the pin instead.
class PinLedger {
 public:
  PinLedger() = default;

  static PinLedger Create(ShmRegion* region, ShmTable* table, const char* name);
  static PinLedger Attach(ShmRegion* region, const ShmTable& table,
                          const char* name);

  bool valid() const { return slots_ != nullptr; }

  // Records "worker `slot` holds a transient pin on `ticket`". Slots out of
  // range (notably kNoPinSlot) are ignored, so unledgered workers cost one
  // compare. A worker holds at most one transient pin at a time (its Step
  // serves one request end to end), so plain stores suffice.
  void Record(uint32_t slot, uint64_t ticket) {
    if (slot < kPinLedgerSlots) {
      slots_[slot].store(ticket + 1, std::memory_order_release);
    }
  }
  void Clear(uint32_t slot) {
    if (slot < kPinLedgerSlots) {
      slots_[slot].store(0, std::memory_order_release);
    }
  }
  // Claims the slot's entry for sweeping: returns ticket + 1, or 0 if none.
  uint64_t Take(uint32_t slot) {
    return slot < kPinLedgerSlots
               ? slots_[slot].exchange(0, std::memory_order_acq_rel)
               : 0;
  }

 private:
  std::atomic<uint64_t>* slots_ = nullptr;
};

// Workers constructed without a ledger slot (in-process pump, legacy tests).
inline constexpr uint32_t kNoPinSlot = UINT32_MAX;

struct PlaneConfig {
  // Capacities. Queues and the map must be powers of two.
  uint32_t table_capacity = 16;
  uint32_t queue_capacity = 256;
  uint32_t map_capacity = 1024;
  uint32_t future_capacity = 64;
  // Slabs. Header slots hold one built response header each; CGI slots hold
  // one contiguous [header][body] dynamic response; copy slots exist only
  // for the copy-mode contrast path and must hold the largest document.
  uint32_t header_slots = 64;
  uint32_t header_slot_bytes = 256;
  uint32_t cgi_slots = 32;
  uint32_t cgi_slot_bytes = 16384;
  uint32_t copy_slots = 32;
  uint32_t copy_slot_bytes = 64 << 10;
};

// Attached handles to every plane structure. Value type: copies are cheap
// handle copies onto the same shared state (what a forked worker uses).
struct PlaneShared {
  ShmRegion* region = nullptr;
  ShmTable table;
  MpmcQueue client_q;
  MpmcQueue origin_q;
  MpmcQueue cgi_q;
  MpmcQueue header_free;
  MpmcQueue cgi_free;
  MpmcQueue copy_free;
  ShmMap cache_map;
  ShmFuturePool futures;
  ShmCounters counters;
  PinLedger pin_ledger;

  bool valid() const {
    return region != nullptr && table.valid() && client_q.valid() &&
           origin_q.valid() && cgi_q.valid() && header_free.valid() &&
           cgi_free.valid() && copy_free.valid() && cache_map.valid() &&
           futures.valid() && counters.valid() && pin_ledger.valid();
  }
};

// Builds the plane inside `region` (which must be freshly created: the
// table must land at payload offset 0) and seeds the slab free-lists.
PlaneShared CreatePlane(ShmRegion* region, const PlaneConfig& config);

// Adopts a plane built by another process, by directory lookup only.
PlaneShared AttachPlane(ShmRegion* region);

// --- Wire messages ---------------------------------------------------------

// Everything crossing a plane queue is a 32-byte trivially copyable struct
// punned through MpmcQueue::PushAs/PopAs.

enum class RequestKind : uint32_t { kStatic = 0, kCgi = 1 };

// Client -> proxy. `future` is the client's response future; completing it
// delivers (header desc, body desc).
struct ClientRequestMsg {
  uint64_t file_id;
  FutureHandle future;
  uint32_t kind;  // RequestKind.
  uint32_t flags;
  uint64_t reserved;
};
static_assert(sizeof(ClientRequestMsg) == 32, "queue messages are 32-byte cells");

// Proxy -> origin (miss fill) and proxy -> CGI (dynamic response). For a
// fill, `future` is a proxy-owned fill future; for CGI it is the *client's*
// response future, completed by the CGI worker directly.
struct FillRequestMsg {
  uint64_t file_id;
  FutureHandle future;
  uint64_t reserved0;
  uint64_t reserved1;
};
static_assert(sizeof(FillRequestMsg) == 32, "queue messages are 32-byte cells");

// --- Response-descriptor flags ---------------------------------------------

// Set in SliceDesc::flags of future values; they tell the consumer how to
// give the resource back (bit 0 is kFrameEnd from slice_desc.h).
constexpr uint32_t kRespHeaderSlab = 1u << 1;  // Return slot to plane.q.hdrfree.
constexpr uint32_t kRespPinned = 1u << 2;      // Unpin cache_map key `ticket`.
constexpr uint32_t kRespCgiSlab = 1u << 3;     // Return slot to plane.q.cgifree.
constexpr uint32_t kRespCopySlab = 1u << 4;    // Return slot to plane.q.copyfree.

// --- Slab slot helpers -----------------------------------------------------

// Pops a free slot descriptor ({offset, capacity} with reserved=capacity).
inline bool TakeSlot(MpmcQueue* free_list, SliceDesc* slot) {
  return free_list->TryPop(slot);
}

// Returns a slot to its free-list. `d` may have a trimmed length and extra
// flags; the slot is restored to full capacity from `reserved`. The push
// cannot fail: the free-list's capacity covers every slot ever seeded.
void ReturnSlot(MpmcQueue* free_list, const SliceDesc& d);

// --- Worker harness --------------------------------------------------------

enum class PlaneMode {
  kInProcess,  // No concurrency: the driver pumps roles deterministically.
  kThreads,    // One std::thread per worker (the TSan-checkable mode).
  kProcesses,  // One fork()ed process per worker (the real data plane).
};

const char* PlaneModeName(PlaneMode mode);

// Launches and joins one group of identical workers. `body` runs once per
// worker — in a forked child (kProcesses), a thread (kThreads), or not at
// all (kInProcess: the driver pumps roles itself). Groups are joined in
// pipeline order: close a group's input queue, join the group, repeat.
class WorkerGroup {
 public:
  WorkerGroup() = default;
  ~WorkerGroup();

  WorkerGroup(const WorkerGroup&) = delete;
  WorkerGroup& operator=(const WorkerGroup&) = delete;

  // Starts `n` workers. Forked children run `body(slot)` then _exit(0);
  // `slot` is the worker's index in [0, n), stable across respawns — it is
  // what a worker hands to PinLedger. The no-arg overload serves bodies
  // that don't care which slot they are.
  bool Launch(PlaneMode mode, int n, const std::function<void(int)>& body);
  bool Launch(PlaneMode mode, int n, const std::function<void()>& body);

  // Waits for every worker. Returns the number that ended abnormally
  // (non-zero exit or signal); always 0 for threads. Workers already
  // reaped by Poll() are not re-counted.
  int JoinAll();

  // Forcibly kills worker `i` (kProcesses only; crash-recovery tests).
  bool Kill(int i);

  // --- Supervision (fault plane) ---------------------------------------
  // Reaps workers that have exited (kProcesses only, non-blocking). A
  // clean exit retires the slot — the worker drained its queue and left
  // legitimately. An abnormal exit (non-zero status or signal) fires
  // on_death(slot) — the supervisor's chance to sweep the dead worker's
  // pins — and then respawns the stored body into the same slot, where it
  // re-attaches to the plane through the same PlaneShared handles the
  // original worker used. Returns the number of workers respawned.
  int Poll();
  void set_on_death(std::function<void(int)> fn) { on_death_ = std::move(fn); }
  uint64_t abnormal_exits() const { return abnormal_exits_; }
  uint64_t respawns() const { return respawns_; }

  const std::vector<pid_t>& pids() const { return pids_; }

 private:
  pid_t Spawn(int slot);

  std::vector<pid_t> pids_;  // -1 marks a slot retired by Poll().
  std::vector<std::thread> threads_;
  PlaneMode mode_ = PlaneMode::kInProcess;
  std::function<void(int)> body_;
  std::function<void(int)> on_death_;
  uint64_t abnormal_exits_ = 0;
  uint64_t respawns_ = 0;
};

}  // namespace iolipc

#endif  // SRC_IPC_PROCESS_PLANE_H_
