#include "src/ipc/shm_pool.h"

namespace iolipc {

SliceDesc ShmPool::DescribeAndPin(const iolite::Slice& s) {
  assert(Resident(s) && "slice does not live in this pool's region");
  SliceDesc d;
  d.offset = region_->OffsetOf(s.data());
  d.length = s.length();
  d.ticket = next_ticket_++;
  d.flags = 0;
  d.reserved = 0;
  pinned_.emplace(d.ticket, s);
  return d;
}

iolite::Slice ShmPool::ResolveAndUnpin(const SliceDesc& d) {
  auto it = pinned_.find(d.ticket);
  assert(it != pinned_.end() && "descriptor was not pinned by this pool");
  iolite::Slice s = it->second;
  pinned_.erase(it);
  assert(region_->OffsetOf(s.data()) == d.offset && s.length() == d.length &&
         "descriptor does not match pinned slice");
  return s;
}

void ShmPool::Unpin(uint64_t ticket) { pinned_.erase(ticket); }

}  // namespace iolipc
