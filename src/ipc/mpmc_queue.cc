#include "src/ipc/mpmc_queue.h"

#include <cassert>

namespace iolipc {

MpmcQueue MpmcQueue::Create(ShmRegion* region, ShmTable* table, const char* name,
                            uint32_t capacity) {
  assert(capacity >= 2 && (capacity & (capacity - 1)) == 0 && "capacity must be 2^k");
  size_t span = sizeof(QueueState) + static_cast<size_t>(capacity) * sizeof(Cell);
  char* base = region->AllocateExtent(span);
  MpmcQueue q;
  if (base == nullptr) {
    return q;
  }
  std::memset(base, 0, span);
  q.region_ = region;
  q.state_ = reinterpret_cast<QueueState*>(base);
  q.cells_ = reinterpret_cast<Cell*>(base + sizeof(QueueState));
  q.mask_ = capacity - 1;
  q.state_->capacity = capacity;
  for (uint32_t i = 0; i < capacity; ++i) {
    q.cells_[i].seq.store(i, std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_release);
  q.state_->magic = kQueueMagic;
  if (table != nullptr && !table->Publish(name, region->OffsetOf(base), span,
                                          ShmType::kQueue)) {
    return MpmcQueue{};
  }
  return q;
}

MpmcQueue MpmcQueue::Attach(ShmRegion* region, const ShmTable& table, const char* name) {
  MpmcQueue q;
  const ShmTable::Entry* e = table.Find(name);
  if (e == nullptr || e->type != static_cast<uint32_t>(ShmType::kQueue)) {
    return q;
  }
  auto* state = reinterpret_cast<QueueState*>(region->At(e->offset));
  if (state->magic != kQueueMagic || state->capacity == 0 ||
      (state->capacity & (state->capacity - 1)) != 0) {
    return q;
  }
  q.region_ = region;
  q.state_ = state;
  q.cells_ = reinterpret_cast<Cell*>(region->At(e->offset) + sizeof(QueueState));
  q.mask_ = state->capacity - 1;
  return q;
}

bool MpmcQueue::TryPush(const SliceDesc& d) {
  uint64_t pos = state_->enqueue_pos.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    uint64_t seq = cell.seq.load(std::memory_order_acquire);
    int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
    if (dif == 0) {
      if (state_->enqueue_pos.compare_exchange_weak(pos, pos + 1,
                                                    std::memory_order_relaxed)) {
        cell.item = d;
        cell.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
      // CAS reloaded `pos`; retry with the fresher ticket.
    } else if (dif < 0) {
      return false;  // Full: the cell is still occupied from the last lap.
    } else {
      pos = state_->enqueue_pos.load(std::memory_order_relaxed);
    }
  }
}

bool MpmcQueue::TryPop(SliceDesc* out) {
  uint64_t pos = state_->dequeue_pos.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    uint64_t seq = cell.seq.load(std::memory_order_acquire);
    int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
    if (dif == 0) {
      if (state_->dequeue_pos.compare_exchange_weak(pos, pos + 1,
                                                    std::memory_order_relaxed)) {
        *out = cell.item;
        cell.seq.store(pos + mask_ + 1, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      return false;  // Empty: the cell has not been produced this lap.
    } else {
      pos = state_->dequeue_pos.load(std::memory_order_relaxed);
    }
  }
}

bool MpmcQueue::drained() const {
  if (!closed()) {
    return false;
  }
  // Acquire on both tickets: after Close, a producer's last publish
  // happens-before the consumer's closed() read in every interleaving the
  // plane uses (close-then-join).
  uint64_t tail = state_->enqueue_pos.load(std::memory_order_acquire);
  uint64_t head = state_->dequeue_pos.load(std::memory_order_acquire);
  return head >= tail;
}

uint64_t MpmcQueue::ApproxSize() const {
  uint64_t tail = state_->enqueue_pos.load(std::memory_order_relaxed);
  uint64_t head = state_->dequeue_pos.load(std::memory_order_relaxed);
  return tail > head ? tail - head : 0;
}

}  // namespace iolipc
