// The wire format of the shared-memory transport: what actually crosses the
// process boundary when an aggregate is transferred.
//
// A frame (one aggregate) is a run of SliceDescs whose last entry carries
// kFrameEnd. Only these 32-byte descriptors are ever copied; the payload
// they name stays where the producer sealed it, at a stable offset in the
// shared region — the real-transport realization of "aggregates move by
// reference" (Section 3.1).

#ifndef SRC_IPC_SLICE_DESC_H_
#define SRC_IPC_SLICE_DESC_H_

#include <cstdint>
#include <type_traits>

namespace iolipc {

struct SliceDesc {
  uint64_t offset;  // First payload byte, relative to the region base.
  uint64_t length;  // Payload bytes.
  uint64_t ticket;  // Producer-side pin id keeping the buffer alive in flight.
  uint32_t flags;
  uint32_t reserved;
};

constexpr uint32_t kFrameEnd = 1u;  // Last slice of an aggregate.

static_assert(sizeof(SliceDesc) == 32, "descriptor layout is ABI");
static_assert(std::is_trivially_copyable_v<SliceDesc>,
              "descriptors are memcpy'd through shared memory");

}  // namespace iolipc

#endif  // SRC_IPC_SLICE_DESC_H_
