// A shared-memory region: the real-transport analogue of the simulated
// IO-Lite window (Section 3.3).
//
// The region is one mmap'd span of memory that more than one process can
// map. Payload placed in it is named by (offset, len) relative to the region
// base, so a descriptor is valid in any mapper regardless of where the
// mapping landed. Preferred backing is POSIX shm_open + mmap (attachable by
// name from unrelated processes); when that is unavailable — sandboxed CI
// commonly mounts no /dev/shm — the region falls back to an anonymous
// MAP_SHARED mapping, which fork()ed children still share.
//
// The region doubles as an iolite::ExtentSource: an iolite::BufferPool whose
// extents are carved from a region produces buffers whose slices are
// region-resident, i.e. describable as (offset, len) and transferable with
// zero payload copies (see shm_pool.h).

#ifndef SRC_IPC_SHM_REGION_H_
#define SRC_IPC_SHM_REGION_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>

#include "src/iolite/buffer_pool.h"

namespace iolipc {

class ShmRegion : public iolite::ExtentSource {
 public:
  // Creates a region of `size` bytes. With a non-empty `name` (e.g.
  // "/iolite-cgi"), POSIX shared memory is tried first; an empty name, or
  // shm_open failure, yields the anonymous MAP_SHARED fallback.
  static std::unique_ptr<ShmRegion> Create(size_t size, const std::string& name = "");

  // Maps an existing named region created by another process. Returns null
  // if the name does not resolve (or names a region of a different size).
  static std::unique_ptr<ShmRegion> Attach(const std::string& name);

  // Unlinks every POSIX shm segment whose name starts with `prefix` (no
  // leading '/'), carries a valid region header, and whose creating process
  // is gone — the leak left behind when a test run dies between shm_open and
  // its destructor. Returns the number of segments reclaimed; 0 when /dev/shm
  // does not exist (anonymous-fallback environments have nothing to sweep).
  static int SweepStale(const std::string& prefix);

  // The pid that created the region (from the shared header).
  uint64_t owner_pid() const;

  ~ShmRegion() override;

  ShmRegion(const ShmRegion&) = delete;
  ShmRegion& operator=(const ShmRegion&) = delete;

  char* base() const { return payload_; }
  size_t size() const { return payload_size_; }
  const std::string& name() const { return name_; }

  // True when backed by shm_open (attachable by name); false on the
  // anonymous-mmap fallback (shareable only across fork()).
  bool posix_shm_backed() const { return fd_ >= 0; }

  // --- Offset addressing ---------------------------------------------------

  // Translates between mapper-local pointers and region offsets. Offsets are
  // the only currency that may cross a process boundary.
  uint64_t OffsetOf(const void* p) const {
    assert(Contains(p, 0) && "pointer outside region");
    return static_cast<uint64_t>(static_cast<const char*>(p) - payload_);
  }

  char* At(uint64_t offset) const {
    assert(offset <= payload_size_);
    return payload_ + offset;
  }

  bool Contains(const void* p, size_t len) const {
    const char* c = static_cast<const char*>(p);
    return c >= payload_ && c + len <= payload_ + payload_size_;
  }

  // --- Extent carving (iolite::ExtentSource) -------------------------------

  // Bump-allocates `n` bytes of stable-offset storage (64-byte aligned).
  // The cursor lives inside the region itself, so creator and attachers see
  // one consistent allocation state. Returns nullptr when exhausted.
  char* AllocateExtent(size_t n) override;

  uint64_t bytes_used() const;
  uint64_t bytes_free() const;

  // The mapping's first kHeaderSpan bytes hold the region header; the
  // payload starts right after, so payload pointers (and hence extents) are
  // 64-byte aligned in every mapper.
  static constexpr size_t kHeaderSpan = 64;

 private:
  struct Header;  // At mapping offset 0; payload begins after it.

  ShmRegion() = default;

  std::string name_;
  int fd_ = -1;
  void* mapping_ = nullptr;
  size_t mapping_size_ = 0;
  Header* header_ = nullptr;
  char* payload_ = nullptr;
  size_t payload_size_ = 0;
  bool owner_ = false;
};

}  // namespace iolipc

#endif  // SRC_IPC_SHM_REGION_H_
