#include "src/ipc/process_plane.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace iolipc {

namespace {

// Carves a slab of `slots` x `slot_bytes`, publishes it as a raw span, and
// seeds `free_list` with one descriptor per slot.
bool SeedSlab(ShmRegion* region, ShmTable* table, const char* slab_name,
              MpmcQueue* free_list, uint32_t slots, uint32_t slot_bytes) {
  size_t span = static_cast<size_t>(slots) * slot_bytes;
  char* base = region->AllocateExtent(span);
  if (base == nullptr) {
    return false;
  }
  if (!table->Publish(slab_name, region->OffsetOf(base), span, ShmType::kRaw)) {
    return false;
  }
  for (uint32_t i = 0; i < slots; ++i) {
    SliceDesc d{};
    d.offset = region->OffsetOf(base) + static_cast<uint64_t>(i) * slot_bytes;
    d.length = slot_bytes;
    d.reserved = slot_bytes;
    if (!free_list->TryPush(d)) {
      return false;  // Free-list capacity below slot count: config error.
    }
  }
  return true;
}

// Smallest power of two >= n (free-list capacity for n slots).
uint32_t PowTwoAtLeast(uint32_t n) {
  uint32_t p = 2;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

PlaneShared CreatePlane(ShmRegion* region, const PlaneConfig& config) {
  PlaneShared s;
  s.region = region;
  s.table = ShmTable::Create(region, config.table_capacity);
  if (!s.table.valid()) {
    return PlaneShared{};
  }
  s.client_q = MpmcQueue::Create(region, &s.table, kPlaneClientQueue,
                                 config.queue_capacity);
  s.origin_q = MpmcQueue::Create(region, &s.table, kPlaneOriginQueue,
                                 config.queue_capacity);
  s.cgi_q = MpmcQueue::Create(region, &s.table, kPlaneCgiQueue,
                              config.queue_capacity);
  s.header_free = MpmcQueue::Create(region, &s.table, kPlaneHeaderFree,
                                    PowTwoAtLeast(config.header_slots));
  s.cgi_free = MpmcQueue::Create(region, &s.table, kPlaneCgiFree,
                                 PowTwoAtLeast(config.cgi_slots));
  s.copy_free = MpmcQueue::Create(region, &s.table, kPlaneCopyFree,
                                  PowTwoAtLeast(config.copy_slots));
  s.cache_map = ShmMap::Create(region, &s.table, kPlaneCacheMap, config.map_capacity);
  s.futures = ShmFuturePool::Create(region, &s.table, kPlaneFutures,
                                    config.future_capacity);
  s.counters = ShmCounters::Create(region, &s.table, kPlaneCounters);
  s.pin_ledger = PinLedger::Create(region, &s.table, kPlanePinLedger);
  if (!s.valid()) {
    return PlaneShared{};
  }
  if (!SeedSlab(region, &s.table, "plane.slab.hdr", &s.header_free,
                config.header_slots, config.header_slot_bytes) ||
      !SeedSlab(region, &s.table, "plane.slab.cgi", &s.cgi_free,
                config.cgi_slots, config.cgi_slot_bytes) ||
      !SeedSlab(region, &s.table, "plane.slab.copy", &s.copy_free,
                config.copy_slots, config.copy_slot_bytes)) {
    return PlaneShared{};
  }
  return s;
}

PlaneShared AttachPlane(ShmRegion* region) {
  PlaneShared s;
  s.region = region;
  s.table = ShmTable::Attach(region);
  if (!s.table.valid()) {
    return PlaneShared{};
  }
  s.client_q = MpmcQueue::Attach(region, s.table, kPlaneClientQueue);
  s.origin_q = MpmcQueue::Attach(region, s.table, kPlaneOriginQueue);
  s.cgi_q = MpmcQueue::Attach(region, s.table, kPlaneCgiQueue);
  s.header_free = MpmcQueue::Attach(region, s.table, kPlaneHeaderFree);
  s.cgi_free = MpmcQueue::Attach(region, s.table, kPlaneCgiFree);
  s.copy_free = MpmcQueue::Attach(region, s.table, kPlaneCopyFree);
  s.cache_map = ShmMap::Attach(region, s.table, kPlaneCacheMap);
  s.futures = ShmFuturePool::Attach(region, s.table, kPlaneFutures);
  s.counters = ShmCounters::Attach(region, s.table, kPlaneCounters);
  s.pin_ledger = PinLedger::Attach(region, s.table, kPlanePinLedger);
  return s.valid() ? s : PlaneShared{};
}

PinLedger PinLedger::Create(ShmRegion* region, ShmTable* table, const char* name) {
  PinLedger l;
  size_t span = kPinLedgerSlots * sizeof(uint64_t);
  char* base = region->AllocateExtent(span);
  if (base == nullptr) {
    return l;
  }
  std::memset(base, 0, span);
  if (table != nullptr &&
      !table->Publish(name, region->OffsetOf(base), span, ShmType::kRaw)) {
    return l;
  }
  l.slots_ = reinterpret_cast<std::atomic<uint64_t>*>(base);
  return l;
}

PinLedger PinLedger::Attach(ShmRegion* region, const ShmTable& table,
                            const char* name) {
  PinLedger l;
  const ShmTable::Entry* e = table.Find(name);
  if (e == nullptr || e->type != static_cast<uint32_t>(ShmType::kRaw) ||
      e->size < kPinLedgerSlots * sizeof(uint64_t)) {
    return l;
  }
  l.slots_ = reinterpret_cast<std::atomic<uint64_t>*>(region->At(e->offset));
  return l;
}

void ReturnSlot(MpmcQueue* free_list, const SliceDesc& d) {
  SliceDesc slot{};
  slot.offset = d.offset;
  slot.length = d.reserved;
  slot.reserved = d.reserved;
  bool pushed = free_list->TryPush(slot);
  assert(pushed && "free-list sized below its slab's slot count");
  (void)pushed;
}

const char* PlaneModeName(PlaneMode mode) {
  switch (mode) {
    case PlaneMode::kInProcess:
      return "in-process";
    case PlaneMode::kThreads:
      return "threads";
    case PlaneMode::kProcesses:
      return "processes";
  }
  return "unknown";
}

WorkerGroup::~WorkerGroup() {
  assert(pids_.empty() && threads_.empty() && "WorkerGroup destroyed before JoinAll");
}

pid_t WorkerGroup::Spawn(int slot) {
  std::fflush(stdout);  // Don't duplicate buffered output into children.
  std::fflush(stderr);
  pid_t pid = fork();
  if (pid == 0) {
    body_(slot);
    _exit(0);
  }
  return pid;
}

bool WorkerGroup::Launch(PlaneMode mode, int n,
                         const std::function<void(int)>& body) {
  mode_ = mode;
  body_ = body;
  if (mode == PlaneMode::kInProcess) {
    return true;  // The driver pumps roles itself.
  }
  for (int i = 0; i < n; ++i) {
    if (mode == PlaneMode::kThreads) {
      threads_.emplace_back([body, i] { body(i); });
      continue;
    }
    pid_t pid = Spawn(i);
    if (pid < 0) {
      return false;
    }
    pids_.push_back(pid);
  }
  return true;
}

bool WorkerGroup::Launch(PlaneMode mode, int n,
                         const std::function<void()>& body) {
  return Launch(mode, n, std::function<void(int)>([body](int) { body(); }));
}

int WorkerGroup::JoinAll() {
  int abnormal = 0;
  for (std::thread& t : threads_) {
    t.join();
  }
  threads_.clear();
  for (pid_t pid : pids_) {
    if (pid <= 0) {
      continue;  // Slot already retired by Poll().
    }
    int status = 0;
    if (waitpid(pid, &status, 0) != pid) {
      ++abnormal;
      continue;
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      ++abnormal;
    }
  }
  pids_.clear();
  return abnormal;
}

bool WorkerGroup::Kill(int i) {
  if (i < 0 || static_cast<size_t>(i) >= pids_.size() || pids_[i] <= 0) {
    return false;
  }
  return kill(pids_[i], SIGKILL) == 0;
}

int WorkerGroup::Poll() {
  if (mode_ != PlaneMode::kProcesses) {
    return 0;
  }
  int respawned = 0;
  for (size_t i = 0; i < pids_.size(); ++i) {
    if (pids_[i] <= 0) {
      continue;
    }
    int status = 0;
    if (waitpid(pids_[i], &status, WNOHANG) != pids_[i]) {
      continue;  // Still running (or not our child — nothing to do).
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      // Drained its queue and left legitimately: retire the slot.
      pids_[i] = -1;
      continue;
    }
    ++abnormal_exits_;
    if (on_death_) {
      on_death_(static_cast<int>(i));
    }
    pids_[i] = Spawn(static_cast<int>(i));
    if (pids_[i] > 0) {
      ++respawns_;
      ++respawned;
    }
  }
  return respawned;
}

}  // namespace iolipc
