#include "src/ipc/shm_cache_mirror.h"

#include <algorithm>

#include "src/ipc/slice_desc.h"

namespace iolipc {

void ShmCacheMirror::OnInsert(iolfs::FileId file, uint64_t offset,
                              const iolite::Aggregate& data) {
  DrainDeferred();
  if (offset != 0 || data.slice_count() != 1) {
    ++skipped_;
    return;
  }
  const iolite::Slice& s = data.slices()[0];
  if (!region_->Contains(s.data(), s.length())) {
    ++skipped_;  // Heap-backed buffer: not addressable by other processes.
    return;
  }
  SliceDesc d{};
  d.offset = region_->OffsetOf(s.data());
  d.length = s.length();
  d.flags = kFrameEnd;
  uint64_t key = static_cast<uint64_t>(file);
  // Re-insert semantics: a write replaced the entry, so the old mapping (if
  // any) must not win. Erase-then-insert; a foreign pin parks the erase and
  // the stale value persists until the pin drops — the payload it names is
  // still valid bytes (immutability), just superseded.
  if (!map_->Erase(key) && map_->PinsOf(key) >= 0) {
    deferred_.push_back(key);
    return;
  }
  map_->Insert(key, d);
}

void ShmCacheMirror::OnErase(iolfs::FileId file, uint64_t offset, size_t length) {
  (void)offset;
  (void)length;
  DrainDeferred();
  uint64_t key = static_cast<uint64_t>(file);
  if (!map_->Erase(key) && map_->PinsOf(key) >= 0) {
    deferred_.push_back(key);
  }
}

void ShmCacheMirror::DrainDeferred() {
  deferred_.erase(std::remove_if(deferred_.begin(), deferred_.end(),
                                 [this](uint64_t key) {
                                   return map_->Erase(key) || map_->PinsOf(key) < 0;
                                 }),
                  deferred_.end());
}

}  // namespace iolipc
