#include "src/ipc/shm_map.h"

#include <sched.h>

#include <cassert>
#include <cstring>

namespace iolipc {

namespace {

// Spin-locks a slot observed kFull (state -> kBusy). Returns false when the
// slot left kFull before the lock landed (erased/evicted under us).
bool LockFull(ShmMap::Slot* s) {
  uint32_t expected = ShmMap::kFull;
  while (!s->state.compare_exchange_weak(expected, ShmMap::kBusy,
                                         std::memory_order_acquire,
                                         std::memory_order_acquire)) {
    if (expected != ShmMap::kFull && expected != ShmMap::kBusy) {
      return false;
    }
    if (expected == ShmMap::kBusy) {
      sched_yield();  // Another mapper holds the slot for a few instructions.
    }
    expected = ShmMap::kFull;
  }
  return true;
}

}  // namespace

uint64_t ShmMap::Mix(uint64_t key) {
  // splitmix64 finalizer: full-avalanche over sequential FileId keys.
  uint64_t x = key + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

ShmMap ShmMap::Create(ShmRegion* region, ShmTable* table, const char* name,
                      uint32_t capacity) {
  assert(capacity >= 2 && (capacity & (capacity - 1)) == 0 && "capacity must be 2^k");
  size_t span = sizeof(MapHeader) + static_cast<size_t>(capacity) * sizeof(Slot);
  char* base = region->AllocateExtent(span);
  ShmMap map;
  if (base == nullptr) {
    return map;
  }
  std::memset(base, 0, span);
  map.region_ = region;
  map.header_ = reinterpret_cast<MapHeader*>(base);
  map.mask_ = capacity - 1;
  map.header_->capacity = capacity;
  std::atomic_thread_fence(std::memory_order_release);
  map.header_->magic = kMapMagic;
  if (table != nullptr &&
      !table->Publish(name, region->OffsetOf(base), span, ShmType::kMap)) {
    return ShmMap{};
  }
  return map;
}

ShmMap ShmMap::Attach(ShmRegion* region, const ShmTable& table, const char* name) {
  ShmMap map;
  const ShmTable::Entry* e = table.Find(name);
  if (e == nullptr || e->type != static_cast<uint32_t>(ShmType::kMap)) {
    return map;
  }
  auto* header = reinterpret_cast<MapHeader*>(region->At(e->offset));
  if (header->magic != kMapMagic || header->capacity == 0 ||
      (header->capacity & (header->capacity - 1)) != 0) {
    return map;
  }
  map.region_ = region;
  map.header_ = header;
  map.mask_ = header->capacity - 1;
  return map;
}

ShmMap::InsertResult ShmMap::Insert(uint64_t key, const SliceDesc& value) {
  uint32_t start = static_cast<uint32_t>(Mix(key)) & mask_;
  // Pass 1: is the key already present? Probe chains end at the first
  // never-used slot; tombstones keep them intact.
  for (uint32_t i = 0; i <= mask_; ++i) {
    Slot& s = slots()[(start + i) & mask_];
    uint32_t st = s.state.load(std::memory_order_acquire);
    while (st == kBusy) {
      sched_yield();
      st = s.state.load(std::memory_order_acquire);
    }
    if (st == kEmpty) {
      break;
    }
    if (st == kFull && s.key == key) {
      return InsertResult::kExists;
    }
  }
  // Pass 2: claim the first free (empty or tombstone) slot in the chain.
  for (uint32_t i = 0; i <= mask_; ++i) {
    Slot& s = slots()[(start + i) & mask_];
    uint32_t st = s.state.load(std::memory_order_acquire);
    if (st != kEmpty && st != kTomb) {
      continue;
    }
    if (!s.state.compare_exchange_strong(st, kBusy, std::memory_order_acquire)) {
      --i;  // Lost the claim (or the slot went busy); re-inspect this slot.
      sched_yield();
      continue;
    }
    bool reused_tomb = st == kTomb;
    s.key = key;
    s.value = value;
    s.pins.store(0, std::memory_order_relaxed);
    s.state.store(kFull, std::memory_order_release);
    header_->size.fetch_add(1, std::memory_order_release);
    header_->bytes.fetch_add(value.length, std::memory_order_relaxed);
    if (reused_tomb) {
      header_->tombstones.fetch_sub(1, std::memory_order_relaxed);
    }
    return InsertResult::kInserted;
  }
  return InsertResult::kFull;
}

bool ShmMap::Lookup(uint64_t key, SliceDesc* out) const {
  uint32_t start = static_cast<uint32_t>(Mix(key)) & mask_;
  for (uint32_t i = 0; i <= mask_; ++i) {
    Slot& s = slots()[(start + i) & mask_];
    uint32_t st = s.state.load(std::memory_order_acquire);
    while (st == kBusy) {
      sched_yield();
      st = s.state.load(std::memory_order_acquire);
    }
    if (st == kEmpty) {
      return false;
    }
    if (st == kFull && s.key == key) {
      if (!LockFull(&s)) {
        return false;  // Erased between the key check and the lock.
      }
      if (s.key != key) {  // Tomb slot reused for another key meanwhile.
        s.state.store(kFull, std::memory_order_release);
        continue;
      }
      if (out != nullptr) {
        *out = s.value;
      }
      s.state.store(kFull, std::memory_order_release);
      return true;
    }
  }
  return false;
}

bool ShmMap::LookupAndPin(uint64_t key, SliceDesc* out) {
  uint32_t start = static_cast<uint32_t>(Mix(key)) & mask_;
  for (uint32_t i = 0; i <= mask_; ++i) {
    Slot& s = slots()[(start + i) & mask_];
    uint32_t st = s.state.load(std::memory_order_acquire);
    while (st == kBusy) {
      sched_yield();
      st = s.state.load(std::memory_order_acquire);
    }
    if (st == kEmpty) {
      return false;
    }
    if (st == kFull && s.key == key) {
      if (!LockFull(&s)) {
        return false;
      }
      if (s.key != key) {
        s.state.store(kFull, std::memory_order_release);
        continue;
      }
      s.pins.fetch_add(1, std::memory_order_relaxed);
      if (out != nullptr) {
        *out = s.value;
      }
      s.state.store(kFull, std::memory_order_release);
      return true;
    }
  }
  return false;
}

bool ShmMap::Unpin(uint64_t key) {
  uint32_t start = static_cast<uint32_t>(Mix(key)) & mask_;
  for (uint32_t i = 0; i <= mask_; ++i) {
    Slot& s = slots()[(start + i) & mask_];
    uint32_t st = s.state.load(std::memory_order_acquire);
    while (st == kBusy) {
      sched_yield();
      st = s.state.load(std::memory_order_acquire);
    }
    if (st == kEmpty) {
      return false;
    }
    if (st == kFull && s.key == key) {
      if (!LockFull(&s)) {
        return false;
      }
      if (s.key != key) {
        s.state.store(kFull, std::memory_order_release);
        continue;
      }
      assert(s.pins.load(std::memory_order_relaxed) > 0 && "unbalanced Unpin");
      s.pins.fetch_sub(1, std::memory_order_relaxed);
      s.state.store(kFull, std::memory_order_release);
      return true;
    }
  }
  return false;
}

bool ShmMap::Erase(uint64_t key) {
  uint32_t start = static_cast<uint32_t>(Mix(key)) & mask_;
  for (uint32_t i = 0; i <= mask_; ++i) {
    Slot& s = slots()[(start + i) & mask_];
    uint32_t st = s.state.load(std::memory_order_acquire);
    while (st == kBusy) {
      sched_yield();
      st = s.state.load(std::memory_order_acquire);
    }
    if (st == kEmpty) {
      return false;
    }
    if (st == kFull && s.key == key) {
      if (!LockFull(&s)) {
        return false;
      }
      if (s.key != key) {
        s.state.store(kFull, std::memory_order_release);
        continue;
      }
      if (s.pins.load(std::memory_order_relaxed) > 0) {
        s.state.store(kFull, std::memory_order_release);
        return false;  // Pinned: a reader still references the payload.
      }
      uint64_t len = s.value.length;
      s.state.store(kTomb, std::memory_order_release);
      header_->size.fetch_sub(1, std::memory_order_release);
      header_->bytes.fetch_sub(len, std::memory_order_relaxed);
      header_->tombstones.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool ShmMap::EvictOne(uint64_t* evicted_key, SliceDesc* evicted_value) {
  uint64_t hand = header_->clock_hand.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i <= mask_; ++i) {
    uint32_t idx = static_cast<uint32_t>(hand + i) & mask_;
    Slot& s = slots()[idx];
    if (s.state.load(std::memory_order_acquire) != kFull) {
      continue;
    }
    if (!LockFull(&s)) {
      continue;
    }
    if (s.pins.load(std::memory_order_relaxed) > 0) {
      s.state.store(kFull, std::memory_order_release);
      continue;
    }
    if (evicted_key != nullptr) {
      *evicted_key = s.key;
    }
    if (evicted_value != nullptr) {
      *evicted_value = s.value;
    }
    uint64_t len = s.value.length;
    s.state.store(kTomb, std::memory_order_release);
    header_->size.fetch_sub(1, std::memory_order_release);
    header_->bytes.fetch_sub(len, std::memory_order_relaxed);
    header_->tombstones.fetch_add(1, std::memory_order_relaxed);
    header_->clock_hand.store(hand + i + 1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

int32_t ShmMap::PinsOf(uint64_t key) const {
  uint32_t start = static_cast<uint32_t>(Mix(key)) & mask_;
  for (uint32_t i = 0; i <= mask_; ++i) {
    Slot& s = slots()[(start + i) & mask_];
    uint32_t st = s.state.load(std::memory_order_acquire);
    if (st == kEmpty) {
      return -1;
    }
    if ((st == kFull || st == kBusy) && s.key == key) {
      return s.pins.load(std::memory_order_relaxed);
    }
  }
  return -1;
}

}  // namespace iolipc
