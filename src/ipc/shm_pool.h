// A BufferPool whose storage lives at stable offsets in a shared region.
//
// ShmPool composes a ShmRegion with an iolite::BufferPool that carves its
// extents from the region (ExtentSource). Everything upstream —
// Buffer/Slice/Aggregate, sealing, refcounting, generation numbers, the
// simulated VM accounting — works unchanged; what the region adds is that
// every slice of every buffer is *region-resident*: describable as an
// (offset, len) SliceDesc that any process mapping the region can turn back
// into a pointer. That is the property that makes a ring transfer zero-copy.
//
// Buffer lifetime across a transfer is handled with a pin table: describing
// a slice for transmission pins its BufferRef under a ticket; resolving the
// descriptor on the consumer side (same process) unpins it. A buffer can
// therefore never be recycled while its bytes sit unconsumed in a ring.

#ifndef SRC_IPC_SHM_POOL_H_
#define SRC_IPC_SHM_POOL_H_

#include <string>
#include <unordered_map>

#include "src/iolite/buffer_pool.h"
#include "src/iolite/slice.h"
#include "src/ipc/shm_region.h"
#include "src/ipc/slice_desc.h"

namespace iolipc {

class ShmPool {
 public:
  // `region` must outlive the pool.
  ShmPool(iolsim::SimContext* ctx, std::string name, iolsim::DomainId producer,
          ShmRegion* region)
      : region_(region), pool_(ctx, std::move(name), producer, region) {}

  ShmPool(const ShmPool&) = delete;
  ShmPool& operator=(const ShmPool&) = delete;

  ShmRegion* region() const { return region_; }
  iolite::BufferPool& pool() { return pool_; }

  // --- BufferPool-compatible allocation surface ----------------------------

  iolite::BufferRef Allocate(size_t n) { return pool_.Allocate(n); }
  iolite::BufferRef AllocateFrom(const void* src, size_t n) { return pool_.AllocateFrom(src, n); }
  iolite::BufferRef AllocateDma(uint64_t seed, size_t n) { return pool_.AllocateDma(seed, n); }

  // --- Descriptor conversion ----------------------------------------------

  // True when the slice's bytes live inside this pool's region, i.e. it can
  // cross the ring without its payload being touched.
  bool Resident(const iolite::Slice& s) const {
    return region_->Contains(s.data(), s.length());
  }

  // Names `s` as a region descriptor and pins its buffer until the
  // descriptor is resolved. Requires Resident(s).
  SliceDesc DescribeAndPin(const iolite::Slice& s);

  // Turns a descriptor back into the pinned slice and releases the pin.
  // Same-process consumers only: a foreign process resolves descriptors
  // against its own mapping of the region instead (see examples/shm_ipc.cpp).
  iolite::Slice ResolveAndUnpin(const SliceDesc& d);

  // Drops a pin without consuming the payload (producer-side abort).
  void Unpin(uint64_t ticket);

  size_t pinned_count() const { return pinned_.size(); }

 private:
  ShmRegion* region_;
  iolite::BufferPool pool_;
  uint64_t next_ticket_ = 1;
  std::unordered_map<uint64_t, iolite::Slice> pinned_;
};

}  // namespace iolipc

#endif  // SRC_IPC_SHM_POOL_H_
