#include "src/ipc/ring_channel.h"

#include <cassert>
#include <vector>

namespace iolipc {

namespace {
constexpr uint32_t kRingMagic = 0x52494e47;  // "RING"

bool IsPowerOfTwo(uint32_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

RingChannel RingChannel::Create(ShmRegion* region, uint32_t capacity) {
  assert(IsPowerOfTwo(capacity) && "ring capacity must be a power of two");
  char* storage =
      region->AllocateExtent(sizeof(RingState) + capacity * sizeof(SliceDesc));
  if (storage == nullptr) {
    return RingChannel{};
  }
  auto* state = new (storage) RingState{};
  state->magic = kRingMagic;
  state->capacity = capacity;
  state->tail.store(0, std::memory_order_relaxed);
  state->head.store(0, std::memory_order_relaxed);
  state->bytes_queued.store(0, std::memory_order_relaxed);
  state->closed.store(0, std::memory_order_relaxed);

  RingChannel ch;
  ch.region_ = region;
  ch.state_ = state;
  ch.slots_ = reinterpret_cast<SliceDesc*>(storage + sizeof(RingState));
  ch.mask_ = capacity - 1;
  return ch;
}

RingChannel RingChannel::Attach(ShmRegion* region, uint64_t state_offset) {
  // This is the cross-process trust boundary: nothing in the header may be
  // believed until it is bounds-checked against the mapping.
  if (region->size() < sizeof(RingState) || state_offset > region->size() - sizeof(RingState)) {
    return RingChannel{};
  }
  auto* state = reinterpret_cast<RingState*>(region->At(state_offset));
  if (state->magic != kRingMagic || !IsPowerOfTwo(state->capacity)) {
    return RingChannel{};
  }
  uint64_t slots_bytes = static_cast<uint64_t>(state->capacity) * sizeof(SliceDesc);
  if (slots_bytes > region->size() - sizeof(RingState) - state_offset) {
    return RingChannel{};  // Corrupt capacity: slot array would leave the region.
  }
  RingChannel ch;
  ch.region_ = region;
  ch.state_ = state;
  ch.slots_ = reinterpret_cast<SliceDesc*>(region->At(state_offset) + sizeof(RingState));
  ch.mask_ = state->capacity - 1;
  // Start from the published indices; the caches catch up lazily.
  ch.cached_head_ = state->head.load(std::memory_order_acquire);
  ch.cached_tail_ = state->tail.load(std::memory_order_acquire);
  return ch;
}

uint64_t RingChannel::state_offset() const {
  return region_->OffsetOf(reinterpret_cast<const char*>(state_));
}

bool RingChannel::CanAccept(uint32_t n) {
  assert(valid());
  if (n > state_->capacity) {
    return false;  // Frame can never fit.
  }
  uint64_t tail = state_->tail.load(std::memory_order_relaxed);
  if (state_->capacity - (tail - cached_head_) < n) {
    cached_head_ = state_->head.load(std::memory_order_acquire);
  }
  return state_->capacity - (tail - cached_head_) >= n;
}

bool RingChannel::TryPushFrame(const SliceDesc* descs, uint32_t n) {
  assert(valid());
  assert(n > 0);
  if (!CanAccept(n)) {
    return false;
  }
  uint64_t tail = state_->tail.load(std::memory_order_relaxed);
  uint64_t payload = 0;
  for (uint32_t i = 0; i < n; ++i) {
    slots_[(tail + i) & mask_] = descs[i];
    payload += descs[i].length;
  }
  state_->bytes_queued.fetch_add(payload, std::memory_order_relaxed);
  // Publish the whole frame with one release store: the consumer acquiring
  // `tail` is guaranteed to see the slot contents (and, transitively, the
  // sealed payload bytes the descriptors name).
  state_->tail.store(tail + n, std::memory_order_release);
  return true;
}

bool RingChannel::TryPopSlice(SliceDesc* out) {
  if (!TryPeekSlice(out)) {
    return false;
  }
  CommitPop();
  return true;
}

bool RingChannel::TryPeekSlice(SliceDesc* out) {
  assert(valid());
  uint64_t head = state_->head.load(std::memory_order_relaxed);
  if (head == cached_tail_) {
    cached_tail_ = state_->tail.load(std::memory_order_acquire);
    if (head == cached_tail_) {
      return false;
    }
  }
  *out = slots_[head & mask_];
  return true;
}

void RingChannel::CommitPop() {
  assert(valid());
  uint64_t head = state_->head.load(std::memory_order_relaxed);
  assert(head != state_->tail.load(std::memory_order_acquire) && "commit without peek");
  state_->bytes_queued.fetch_sub(slots_[head & mask_].length, std::memory_order_relaxed);
  // Release: the producer acquiring `head` may now recycle slot and payload.
  state_->head.store(head + 1, std::memory_order_release);
}

uint64_t RingChannel::consumed() const {
  return state_->head.load(std::memory_order_acquire);
}

uint64_t RingChannel::published() const {
  return state_->tail.load(std::memory_order_acquire);
}

uint64_t RingChannel::bytes_queued() const {
  return state_->bytes_queued.load(std::memory_order_relaxed);
}

uint32_t RingChannel::slots_used() {
  uint64_t tail = state_->tail.load(std::memory_order_acquire);
  uint64_t head = state_->head.load(std::memory_order_acquire);
  return static_cast<uint32_t>(tail - head);
}

void RingChannel::Close() { state_->closed.store(1, std::memory_order_release); }

bool RingChannel::closed() const { return state_->closed.load(std::memory_order_acquire) != 0; }

bool RingChannel::drained() { return closed() && slots_used() == 0; }

// --- ShmStream --------------------------------------------------------------

size_t ShmStream::Write(iolsim::DomainId /*writer*/, const iolite::Aggregate& agg) {
  if (agg.empty()) {
    return 0;
  }
  assert(pool_ != nullptr && "write side needs a pool for descriptor conversion");
  uint32_t n = static_cast<uint32_t>(agg.slice_count());
  if (!ring_.CanAccept(n)) {
    // Backpressure: the caller drains the consumer (same process) or retries
    // after the peer catches up (separate process). Nothing was pinned.
    ctx_->stats().ipc_ring_full_events++;
    return 0;
  }

  descs_.clear();
  descs_.reserve(agg.slice_count());
  for (const iolite::Slice& s : agg.slices()) {
    if (pool_->Resident(s)) {
      // Warm path: the payload already lives in the region; only the
      // descriptor crosses. Zero bytes of payload are touched.
      descs_.push_back(pool_->DescribeAndPin(s));
      ctx_->stats().ipc_bytes_transferred += s.length();
    } else {
      // Foreign slice (another pool / heap): stage it into the region once.
      // AllocateFrom charges the copy cost and bumps bytes_copied.
      iolite::BufferRef staged = pool_->AllocateFrom(s.data(), s.length());
      ctx_->stats().ipc_bytes_copied += s.length();
      descs_.push_back(pool_->DescribeAndPin(iolite::Slice(staged, 0, s.length())));
    }
  }
  descs_.back().flags |= kFrameEnd;

  // The descriptors themselves are the only per-slice cost of a transfer.
  uint64_t desc_bytes = static_cast<uint64_t>(n) * sizeof(SliceDesc);
  ctx_->ChargeCpu(ctx_->cost().CopyCost(desc_bytes));
  ctx_->stats().ipc_desc_bytes += desc_bytes;
  ctx_->stats().ipc_slices_sent += n;
  ctx_->stats().ipc_frames_sent++;

  bool ok = ring_.TryPushFrame(descs_.data(), n);
  assert(ok && "CanAccept raced in SPSC ring");
  (void)ok;
  for (uint32_t i = 0; i < n; ++i) {
    in_flight_.emplace_back(pushed_slots_ + i, descs_[i].ticket);
  }
  pushed_slots_ += n;
  ReclaimConsumed();
  return agg.size();
}

void ShmStream::ReclaimConsumed() {
  uint64_t consumed = ring_.consumed();
  while (!in_flight_.empty() && in_flight_.front().first < consumed) {
    pool_->Unpin(in_flight_.front().second);
    in_flight_.pop_front();
  }
}

iolite::Aggregate ShmStream::Read(iolsim::DomainId /*reader*/, size_t max_bytes) {
  assert(pool_ != nullptr && "same-process read side needs the pool for pin resolution");
  SliceDesc d;
  while (pending_.size() < max_bytes && ring_.TryPopSlice(&d)) {
    pending_.Append(pool_->ResolveAndUnpin(d));
    if ((d.flags & kFrameEnd) != 0) {
      ctx_->stats().ipc_frames_received++;
    }
  }
  if (pending_.size() <= max_bytes) {
    iolite::Aggregate out = std::move(pending_);
    pending_ = iolite::Aggregate{};
    return out;
  }
  iolite::Aggregate rest = pending_.SplitOff(max_bytes);
  iolite::Aggregate out = std::move(pending_);
  pending_ = std::move(rest);
  return out;
}

size_t ShmStream::ReadableBytes() const { return pending_.size() + ring_.bytes_queued(); }

}  // namespace iolipc
