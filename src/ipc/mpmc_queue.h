// MpmcQueue: a CAS-based multi-producer/multi-consumer descriptor queue in
// shared memory — the generalization of PR 1's SPSC RingChannel that lets
// *fleets* of processes share one channel (N proxy workers pulling client
// requests, M origin workers pulling miss-fills).
//
// The algorithm is the classic bounded MPMC queue (Dmitry Vyukov): each cell
// carries a sequence number; a producer claims a cell by CAS-advancing the
// enqueue ticket when the cell's sequence says "free at this lap", writes
// the 32-byte payload, and publishes with a release store of the sequence.
// Consumers mirror it on the dequeue ticket. No side ever spins on a lock:
// a full/empty queue fails fast and the caller decides how to wait.
//
// Cells carry exactly one SliceDesc (32 bytes). Anything the plane sends —
// client requests, miss-fill orders, free-slot tokens — is encoded as a
// 32-byte trivially copyable struct and punned through PushAs/PopAs, so the
// queue stays a single well-tested primitive. All layouts below are ABI
// (read by scripts/shm_inspect.py).

#ifndef SRC_IPC_MPMC_QUEUE_H_
#define SRC_IPC_MPMC_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "src/ipc/shm_region.h"
#include "src/ipc/shm_table.h"
#include "src/ipc/slice_desc.h"

namespace iolipc {

class MpmcQueue {
 public:
  // Shared state at the queue's base, followed by `capacity` cells. The
  // ticket counters live on their own cache lines (producers and consumers
  // each contend on exactly one line).
  struct QueueState {
    uint32_t magic;     // offset 0: kQueueMagic.
    uint32_t capacity;  // offset 4: cell count, power of two.
    char pad0[56];
    std::atomic<uint64_t> enqueue_pos;  // offset 64: producer ticket.
    char pad1[56];
    std::atomic<uint64_t> dequeue_pos;  // offset 128: consumer ticket.
    char pad2[56];
    std::atomic<uint32_t> closed;       // offset 192.
    char pad3[60];
  };
  static_assert(sizeof(QueueState) == 256, "queue state layout is ABI");

  struct Cell {
    std::atomic<uint64_t> seq;  // offset 0.
    uint64_t pad;
    SliceDesc item;             // offset 16.
    char pad2[16];
  };
  static_assert(sizeof(Cell) == 64, "queue cell layout is ABI");

  MpmcQueue() = default;

  // Carves state + cells out of `region` and registers the span in `table`
  // under `name` (pass a null table to skip registration). `capacity` must
  // be a power of two. Invalid handle when the region is exhausted.
  static MpmcQueue Create(ShmRegion* region, ShmTable* table, const char* name,
                          uint32_t capacity);

  // Adopts the queue published in `table` under `name`.
  static MpmcQueue Attach(ShmRegion* region, const ShmTable& table, const char* name);

  bool valid() const { return state_ != nullptr; }
  uint32_t capacity() const { return state_->capacity; }

  // Enqueues one descriptor. False when the queue is full (caller backs off)
  // or closed.
  bool TryPush(const SliceDesc& d);

  // Dequeues one descriptor. False when the queue is empty.
  bool TryPop(SliceDesc* out);

  // Typed pun for 32-byte plane messages.
  template <typename T>
  bool PushAs(const T& msg) {
    static_assert(sizeof(T) == sizeof(SliceDesc), "plane messages are 32-byte cells");
    static_assert(std::is_trivially_copyable_v<T>, "messages cross process boundaries");
    SliceDesc d;
    std::memcpy(&d, &msg, sizeof(d));
    return TryPush(d);
  }

  template <typename T>
  bool PopAs(T* msg) {
    static_assert(sizeof(T) == sizeof(SliceDesc), "plane messages are 32-byte cells");
    static_assert(std::is_trivially_copyable_v<T>, "messages cross process boundaries");
    SliceDesc d;
    if (!TryPop(&d)) {
      return false;
    }
    std::memcpy(msg, &d, sizeof(d));
    return true;
  }

  // Producer-side end-of-stream flag. Consumers keep draining after Close;
  // drained() is the termination test of every worker loop.
  void Close() { state_->closed.store(1, std::memory_order_release); }
  bool closed() const { return state_->closed.load(std::memory_order_acquire) != 0; }
  bool drained() const;

  // Occupancy snapshot (approximate under concurrency; exact at quiesce).
  uint64_t ApproxSize() const;

 private:
  static constexpr uint32_t kQueueMagic = 0x494f4c51;  // "IOLQ"

  ShmRegion* region_ = nullptr;
  QueueState* state_ = nullptr;
  Cell* cells_ = nullptr;
  uint32_t mask_ = 0;
};

}  // namespace iolipc

#endif  // SRC_IPC_MPMC_QUEUE_H_
