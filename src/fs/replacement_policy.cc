#include "src/fs/replacement_policy.h"

#include <cassert>

namespace iolfs {

// --- PaperLruPolicy ---------------------------------------------------------

void PaperLruPolicy::OnInsert(EntryId id, size_t /*bytes*/) {
  lru_.push_back(id);
  index_[id] = std::prev(lru_.end());
}

void PaperLruPolicy::OnAccess(EntryId id) {
  auto it = index_.find(id);
  assert(it != index_.end());
  lru_.splice(lru_.end(), lru_, it->second);
}

void PaperLruPolicy::OnErase(EntryId id) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return;
  }
  lru_.erase(it->second);
  index_.erase(it);
}

EntryId PaperLruPolicy::ChooseVictim(const CacheView& view) {
  // Least recently used among currently unreferenced entries...
  for (EntryId id : lru_) {
    if (!view.IsReferenced(id)) {
      return id;
    }
  }
  // ...else least recently used among the referenced entries.
  return lru_.empty() ? kNoEntry : lru_.front();
}

// --- PlainLruPolicy ---------------------------------------------------------

void PlainLruPolicy::OnInsert(EntryId id, size_t /*bytes*/) {
  lru_.push_back(id);
  index_[id] = std::prev(lru_.end());
}

void PlainLruPolicy::OnAccess(EntryId id) {
  auto it = index_.find(id);
  assert(it != index_.end());
  lru_.splice(lru_.end(), lru_, it->second);
}

void PlainLruPolicy::OnErase(EntryId id) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return;
  }
  lru_.erase(it->second);
  index_.erase(it);
}

EntryId PlainLruPolicy::ChooseVictim(const CacheView& /*view*/) {
  return lru_.empty() ? kNoEntry : lru_.front();
}

// --- GreedyDualSizePolicy ---------------------------------------------------

double GreedyDualSizePolicy::PriorityFor(size_t bytes) const {
  // H = L + cost/size with cost = 1; larger objects get lower priority.
  return inflation_ + 1.0 / static_cast<double>(bytes == 0 ? 1 : bytes);
}

void GreedyDualSizePolicy::OnInsert(EntryId id, size_t bytes) {
  double h = PriorityFor(bytes);
  meta_[id] = Meta{h, bytes};
  queue_.emplace(h, id);
}

void GreedyDualSizePolicy::OnAccess(EntryId id) {
  auto it = meta_.find(id);
  assert(it != meta_.end());
  queue_.erase({it->second.priority, id});
  it->second.priority = PriorityFor(it->second.bytes);
  queue_.emplace(it->second.priority, id);
}

void GreedyDualSizePolicy::OnErase(EntryId id) {
  auto it = meta_.find(id);
  if (it == meta_.end()) {
    return;
  }
  queue_.erase({it->second.priority, id});
  meta_.erase(it);
}

EntryId GreedyDualSizePolicy::ChooseVictim(const CacheView& /*view*/) {
  if (queue_.empty()) {
    return kNoEntry;
  }
  auto [h, id] = *queue_.begin();
  // Aging: L rises to the evicted priority, so recently-touched entries
  // outrank long-idle ones regardless of size.
  inflation_ = h;
  return id;
}

}  // namespace iolfs
