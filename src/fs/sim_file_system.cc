#include "src/fs/sim_file_system.h"

#include <cassert>
#include <cstring>

namespace iolfs {

namespace {

// Deterministic byte generator: mixes the file's seed with the absolute
// offset so any subrange can be regenerated independently.
inline uint8_t SynthByte(uint64_t seed, uint64_t offset) {
  uint64_t z = seed + offset * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return static_cast<uint8_t>((z ^ (z >> 31)) & 0xff);
}

}  // namespace

bool SimFileSystem::MetadataCache::Touch(FileId file) {
  auto it = index_.find(file);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  if (lru_.size() >= slots_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(file);
  index_[file] = lru_.begin();
  return false;
}

FileId SimFileSystem::CreateFile(const std::string& name, uint64_t size) {
  FileId id = next_file_++;
  File& f = files_[id];
  f.name = name;
  f.size = size;
  f.content_seed = 0x5851f42d4c957f2dull * static_cast<uint64_t>(id) + 0x14057b7ef767814full;
  by_name_[name] = id;
  total_bytes_ += size;
  return id;
}

FileId SimFileSystem::Lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidFile : it->second;
}

uint64_t SimFileSystem::SizeOf(FileId file) const {
  auto it = files_.find(file);
  assert(it != files_.end());
  return it->second.size;
}

void SimFileSystem::TouchMetadata(FileId file) {
  if (!metadata_cache_.Touch(file)) {
    // Inode block read: one small disk access.
    ctx_->ChargeDisk(ctx_->cost().DiskAccessCost(512));
    ctx_->stats().disk_reads++;
    ctx_->stats().disk_bytes_read += 512;
  }
}

uint8_t SimFileSystem::ContentByteAt(FileId file, uint64_t offset) const {
  auto it = files_.find(file);
  assert(it != files_.end());
  const File& f = it->second;
  assert(offset < f.size);
  // Most-recent write wins: check the overlay first.
  auto ov = f.overlay.upper_bound(offset);
  if (ov != f.overlay.begin()) {
    --ov;
    if (offset < ov->first + ov->second.size()) {
      return static_cast<uint8_t>(ov->second[offset - ov->first]);
    }
  }
  return SynthByte(f.content_seed, offset);
}

iolite::BufferRef SimFileSystem::ReadFromDisk(FileId file, uint64_t offset, size_t length) {
  auto it = files_.find(file);
  assert(it != files_.end());
  assert(offset + length <= it->second.size && "read past end of file");

  ctx_->ChargeDisk(ctx_->cost().DiskAccessCost(length));
  ctx_->stats().disk_reads++;
  ctx_->stats().disk_bytes_read += length;

  // DMA fill: real bytes, no CPU charge.
  iolite::BufferRef buffer = pool_->Allocate(length);
  char* dst = buffer->writable_data();
  const File& f = it->second;
  if (f.overlay.empty()) {
    for (size_t i = 0; i < length; ++i) {
      dst[i] = static_cast<char>(SynthByte(f.content_seed, offset + i));
    }
  } else {
    for (size_t i = 0; i < length; ++i) {
      dst[i] = static_cast<char>(ContentByteAt(file, offset + i));
    }
  }
  buffer->Seal(length);
  return buffer;
}

void SimFileSystem::WriteToDisk(FileId file, uint64_t offset, const iolite::Aggregate& data) {
  auto it = files_.find(file);
  assert(it != files_.end());
  File& f = it->second;

  size_t length = data.size();
  ctx_->ChargeDisk(ctx_->cost().DiskAccessCost(length));
  ctx_->stats().disk_writes++;
  ctx_->stats().disk_bytes_written += length;

  if (offset + length > f.size) {
    total_bytes_ += offset + length - f.size;
    f.size = offset + length;
  }

  // Fold the bytes into the overlay. Remove or trim overlapped runs first.
  std::string bytes = data.ToString();
  uint64_t end = offset + length;
  auto ov = f.overlay.lower_bound(offset);
  // A run starting before `offset` may overlap: trim its tail, and if the
  // run extends past `end` (the write lands strictly inside it), preserve
  // the part beyond the write as a new run.
  if (ov != f.overlay.begin()) {
    auto prev = std::prev(ov);
    uint64_t prev_end = prev->first + prev->second.size();
    if (prev_end > offset) {
      if (prev_end > end) {
        f.overlay[end] = prev->second.substr(end - prev->first);
      }
      prev->second.resize(offset - prev->first);
      ov = f.overlay.lower_bound(offset);  // Iterator may be stale after insert.
    }
  }
  // Runs starting inside [offset, end): drop, preserving any tail past end.
  while (ov != f.overlay.end() && ov->first < end) {
    uint64_t run_end = ov->first + ov->second.size();
    if (run_end > end) {
      std::string tail = ov->second.substr(end - ov->first);
      f.overlay[end] = std::move(tail);
      f.overlay.erase(ov);
      break;
    }
    ov = f.overlay.erase(ov);
  }
  f.overlay[offset] = std::move(bytes);
}

}  // namespace iolfs
