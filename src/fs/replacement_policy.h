// Cache replacement policies for the unified IO-Lite file cache
// (Section 3.7 and 5.6).
//
// Three policies are provided:
//  * PaperLruPolicy — the strategy of Section 3.7: entries are ordered first
//    by current use (is anything other than the cache referencing the
//    buffers?), then by time of last read/write access; the victim is the
//    least-recently-used among currently *unreferenced* entries, else the
//    least-recently-used among referenced entries.
//  * PlainLruPolicy — classic LRU, used in the Figure 11 ablation.
//  * GreedyDualSizePolicy — GDS(1) [Cao & Irani 1997], the policy Flash-Lite
//    installs through IO-Lite's application-specific customization hook;
//    favours keeping small/cheap-to-miss documents.
//
// Policies see entries as opaque ids plus sizes; the cache supplies a view
// for the "currently referenced" predicate.

#ifndef SRC_FS_REPLACEMENT_POLICY_H_
#define SRC_FS_REPLACEMENT_POLICY_H_

#include <cstdint>
#include <list>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/simos/pool_allocator.h"

namespace iolfs {

using EntryId = uint64_t;
constexpr EntryId kNoEntry = 0;

// What a policy may ask the cache about an entry.
class CacheView {
 public:
  virtual ~CacheView() = default;
  // True if any buffer of the entry is referenced outside the cache.
  virtual bool IsReferenced(EntryId id) const = 0;
  virtual size_t SizeOf(EntryId id) const = 0;
};

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;
  virtual const char* name() const = 0;

  virtual void OnInsert(EntryId id, size_t bytes) = 0;
  virtual void OnAccess(EntryId id) = 0;
  virtual void OnErase(EntryId id) = 0;

  // Picks the entry to evict, or kNoEntry if the policy tracks nothing.
  virtual EntryId ChooseVictim(const CacheView& view) = 0;
};

// Section 3.7 policy.
class PaperLruPolicy : public ReplacementPolicy {
 public:
  const char* name() const override { return "paper-lru"; }
  void OnInsert(EntryId id, size_t bytes) override;
  void OnAccess(EntryId id) override;
  void OnErase(EntryId id) override;
  EntryId ChooseVictim(const CacheView& view) override;

 private:
  // Front = least recently used. Pool-allocated nodes: insert/erase churn
  // (cache misses, evictions) recycles instead of hitting the heap.
  using LruList = std::list<EntryId, iolsim::PoolAllocator<EntryId>>;
  LruList lru_;
  std::unordered_map<EntryId, LruList::iterator, std::hash<EntryId>, std::equal_to<EntryId>,
                     iolsim::PoolAllocator<std::pair<const EntryId, LruList::iterator>>>
      index_;
};

// Classic LRU ignoring the reference state.
class PlainLruPolicy : public ReplacementPolicy {
 public:
  const char* name() const override { return "lru"; }
  void OnInsert(EntryId id, size_t bytes) override;
  void OnAccess(EntryId id) override;
  void OnErase(EntryId id) override;
  EntryId ChooseVictim(const CacheView& view) override;

 private:
  using LruList = std::list<EntryId, iolsim::PoolAllocator<EntryId>>;
  LruList lru_;
  std::unordered_map<EntryId, LruList::iterator, std::hash<EntryId>, std::equal_to<EntryId>,
                     iolsim::PoolAllocator<std::pair<const EntryId, LruList::iterator>>>
      index_;
};

// Greedy Dual Size with uniform miss cost (GDS(1)).
class GreedyDualSizePolicy : public ReplacementPolicy {
 public:
  const char* name() const override { return "gds"; }
  void OnInsert(EntryId id, size_t bytes) override;
  void OnAccess(EntryId id) override;
  void OnErase(EntryId id) override;
  EntryId ChooseVictim(const CacheView& view) override;

  double inflation() const { return inflation_; }

 private:
  double PriorityFor(size_t bytes) const;

  struct Meta {
    double priority;
    size_t bytes;
  };
  double inflation_ = 0.0;  // The "L" value.
  // Pool-allocated: every access re-keys the entry (erase + insert on
  // queue_), which is warm-path churn for Flash-Lite's cache hits.
  std::set<std::pair<double, EntryId>, std::less<std::pair<double, EntryId>>,
           iolsim::PoolAllocator<std::pair<double, EntryId>>>
      queue_;
  std::unordered_map<EntryId, Meta, std::hash<EntryId>, std::equal_to<EntryId>,
                     iolsim::PoolAllocator<std::pair<const EntryId, Meta>>>
      meta_;
};

}  // namespace iolfs

#endif  // SRC_FS_REPLACEMENT_POLICY_H_
