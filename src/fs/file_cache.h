// The unified IO-Lite file cache (Sections 3.5 and 3.7).
//
// A data structure mapping <file-id, offset, length> triples to buffer
// aggregates holding the corresponding extent of file data. The cache has no
// statically allocated storage: entries reference ordinary IO-Lite buffers,
// so cached data may concurrently be application state, pipe contents and
// network send-queue data.
//
// Key semantics implemented here:
//  * Writes *replace* entries (immutability): the replaced buffers drop out
//    of the cache but persist while other references exist, preserving the
//    snapshot semantics of earlier IOL_reads.
//  * Eviction removes the cache's references; the memory is actually
//    reclaimed only when the last outside reference disappears.
//  * Replacement policy is pluggable, including application-customized
//    policies (Flash-Lite installs Greedy Dual Size).
//  * The eviction *trigger* of Section 3.7 — evict one entry whenever more
//    than half of the VM pageout daemon's recent victim pages held cached
//    I/O data — is implemented in EvictionTrigger; benchmark drivers also
//    enforce an explicit byte budget, which is the steady state the trigger
//    rule converges to.

#ifndef SRC_FS_FILE_CACHE_H_
#define SRC_FS_FILE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/fs/replacement_policy.h"
#include "src/fs/sim_file_system.h"
#include "src/iolite/aggregate.h"
#include "src/qos/tenant.h"
#include "src/simos/sim_context.h"

namespace iolqos {
class QosPolicy;
}  // namespace iolqos

namespace iolfs {

// Observer of cache membership changes. The multi-process data plane
// (src/ipc/shm_cache_mirror.h) implements this to project each entry's
// metadata into a shared-memory ShmMap, so *other processes* can find
// cached payload by (offset, len) without asking this process. The mirror
// sees every mutation path: Insert (including remainder re-inserts),
// InvalidateFile, and evictions.
class CacheMirror {
 public:
  virtual ~CacheMirror() = default;
  virtual void OnInsert(FileId file, uint64_t offset, const iolite::Aggregate& data) = 0;
  virtual void OnErase(FileId file, uint64_t offset, size_t length) = 0;
};

class FileCache : public CacheView {
 public:
  FileCache(iolsim::SimContext* ctx, std::unique_ptr<ReplacementPolicy> policy)
      : ctx_(ctx),
        policy_(std::move(policy)),
        hits_(&ctx->stats().cache_hits),
        misses_(&ctx->stats().cache_misses),
        evictions_(&ctx->stats().cache_evictions) {}

  FileCache(const FileCache&) = delete;
  FileCache& operator=(const FileCache&) = delete;

  // Application-specific policy customization (Section 3.7). Existing
  // entries are re-registered with the new policy in recency order.
  void SetPolicy(std::unique_ptr<ReplacementPolicy> policy);
  ReplacementPolicy& policy() { return *policy_; }

  // Cache-tier hook: points this cache's hit/miss/eviction accounting at
  // different SimStats counters. By default every FileCache counts into the
  // machine-wide cache_* fields; a second cache tier (the proxy cache of
  // src/proxy) routes its counters to the proxy_cache_* fields so per-tier
  // hit rates stay separable. Pointers must outlive the cache (SimStats
  // does: it lives in the SimContext).
  void RouteStats(uint64_t* hits, uint64_t* misses, uint64_t* evictions) {
    hits_ = hits;
    misses_ = misses;
    evictions_ = evictions;
  }

  // Attaches a membership observer (null detaches). The mirror must outlive
  // the cache or be detached first; it is invoked synchronously under every
  // entry create/erase.
  void set_mirror(CacheMirror* mirror) { mirror_ = mirror; }

  // --- Multi-tenant QoS plane (src/qos) -------------------------------------

  // Routes per-tenant accounting to `qos` the same way RouteStats routes the
  // machine-wide counters: every Lookup fires the on_cache_lookup stage hook
  // and bumps qos's per-tenant hit/miss block for this tier, and evictions
  // are charged to the evicted entry's owner. `proxy_tier` selects the
  // proxy-cache counter block (the unified/origin block otherwise). Null
  // detaches. The aggregate RouteStats counters are maintained regardless,
  // so existing per-tier hit-rate reporting is unchanged.
  void AttachQos(iolqos::QosPolicy* qos, bool proxy_tier = false) {
    qos_ = qos;
    qos_proxy_tier_ = proxy_tier;
  }

  // Enables per-tenant cache partitioning under `plan` (null disables):
  // entries are tagged with the inserting tenant (SimContext::
  // active_tenant), and eviction takes from the tenant furthest above its
  // reserved share — a tenant within its reservation never loses an entry
  // while any other tenant holds more than its own reservation. The
  // remainder (total - sum of reservations) is a shared pool tenants bid
  // for by inserting. Victims within a tenant are its least-recently-used
  // unreferenced entries (its referenced ones only as a last resort);
  // the global ReplacementPolicy covers the unpartitioned case. Must be
  // enabled while the cache is empty.
  void SetPartitions(const iolqos::CachePlan* plan);

  // Bytes currently held by `tenant` (0 unless partitioned).
  uint64_t tenant_bytes(iolsim::TenantId tenant) const {
    return tenant < shares_.size() ? shares_[tenant].bytes : 0;
  }

  bool partitioned() const { return plan_ != nullptr; }

  // Returns an aggregate covering [offset, offset+length) if the range is
  // fully cached (possibly assembled from several adjacent entries).
  // Counts a hit/miss and updates the policy's recency state.
  std::optional<iolite::Aggregate> Lookup(FileId file, uint64_t offset, size_t length);

  // Inserts `data` as the cache contents for [offset, offset+data.size()),
  // replacing any overlapping entries (their buffers persist while
  // referenced elsewhere). `version` tags the new entry for the CDN
  // consistency plane (src/cdn): a versioned cache can answer "how old are
  // these bytes?" without a side table. Trimmed remainders of overlapped
  // entries keep their own version — IO-Lite immutability means the old
  // snapshot is still exactly the old snapshot. Existing call sites pass no
  // version and are unchanged.
  void Insert(FileId file, uint64_t offset, iolite::Aggregate data,
              uint64_t version = 0);

  // Drops all entries of `file`.
  void InvalidateFile(FileId file);

  // --- CDN consistency plane (src/cdn) --------------------------------------

  // Whether any extent of `file` is cached. No accounting: this is a
  // metadata probe (invalidation targeting), not a lookup.
  bool Contains(FileId file) const {
    auto it = by_file_.find(file);
    return it != by_file_.end() && !it->second.empty();
  }

  // Highest version tag among `file`'s cached entries (0 when absent or
  // untagged). Proxies cache whole objects at offset 0, so this is the
  // version of the bytes a hit would serve.
  uint64_t VersionOf(FileId file) const;

  // Drops every entry of `file` tagged with a version below `min_version` —
  // the invalidation receive path. Returns the number of entries dropped
  // (0 when the file is absent or already current). Not counted as
  // evictions: the entry is not a replacement victim, it is dead data.
  int InvalidateOlderThan(FileId file, uint64_t min_version);

  // Evicts entries until the cache holds at most `budget` bytes. Returns
  // the number of entries evicted.
  int EnforceBudget(uint64_t budget);

  // Evicts a single entry chosen by the policy; false if the cache is empty.
  bool EvictOne();

  uint64_t bytes() const { return bytes_; }
  size_t entry_count() const { return entries_.size(); }

  // --- CacheView ------------------------------------------------------------
  bool IsReferenced(EntryId id) const override;
  size_t SizeOf(EntryId id) const override;

 private:
  struct Entry {
    FileId file;
    uint64_t offset;
    iolite::Aggregate data;
    iolsim::TenantId tenant = iolsim::kDefaultTenant;
    // Object version these bytes were fetched at (CDN consistency plane;
    // 0 for untagged single-tier entries).
    uint64_t version = 0;
  };

  // Per-tenant recency and byte accounting, maintained only when
  // partitioned (SetPartitions).
  struct TenantShare {
    uint64_t bytes = 0;
    std::list<EntryId> lru;  // Front = least recently used.
  };

  void EraseEntry(EntryId id);
  // The partitioned victim: LRU entry of the most-over-reservation tenant.
  EntryId PartitionVictim() const;
  void TouchTenantLru(EntryId id);
  // Counts one lookup into the routed aggregate counters and, when a QoS
  // policy is attached, the active tenant's per-tier block + stage hooks.
  void CountLookup(bool hit);

  iolsim::SimContext* ctx_;
  std::unique_ptr<ReplacementPolicy> policy_;
  CacheMirror* mirror_ = nullptr;
  // Tier-routable accounting (see RouteStats).
  uint64_t* hits_;
  uint64_t* misses_;
  uint64_t* evictions_;
  std::unordered_map<EntryId, Entry> entries_;
  // Per file: offset -> entry id, entries non-overlapping.
  std::unordered_map<FileId, std::map<uint64_t, EntryId>> by_file_;
  // How many references the cache itself holds on each buffer, so
  // IsReferenced can detect references held *outside* the cache.
  std::unordered_map<iolite::Buffer*, int> cache_refs_;
  EntryId next_id_ = 1;
  uint64_t bytes_ = 0;
  // QoS plane state (null/empty when detached).
  iolqos::QosPolicy* qos_ = nullptr;
  bool qos_proxy_tier_ = false;
  const iolqos::CachePlan* plan_ = nullptr;
  std::vector<TenantShare> shares_;
  std::unordered_map<EntryId, std::list<EntryId>::iterator> lru_pos_;
};

// Models the Section 3.7 trigger: the VM pageout daemon reports each page
// it selects for replacement; if, since the last cache eviction, more than
// half of the selected pages held cached I/O data, one cache entry is
// evicted (and the window restarts).
class EvictionTrigger {
 public:
  explicit EvictionTrigger(FileCache* cache) : cache_(cache) {}

  // Reports one pageout-daemon victim page. Returns true if the rule fired
  // (one cache entry was evicted).
  bool OnPageSelected(bool page_held_cached_io_data);

  uint64_t evictions() const { return evictions_; }

 private:
  FileCache* cache_;
  uint64_t io_pages_ = 0;
  uint64_t total_pages_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace iolfs

#endif  // SRC_FS_FILE_CACHE_H_
