// File I/O service: the read/write path joining the file system, the
// unified file cache and the IO-Lite runtime.
//
// Reads return aggregates referencing cached immutable buffers (zero copies
// on a hit; one disk DMA fill on a miss). Writes replace the corresponding
// cache extents — earlier readers keep their snapshots. FileStream adapts a
// <file, position> pair to the Stream interface so files can be read with
// IOL_read like any descriptor.

#ifndef SRC_FS_FILE_IO_H_
#define SRC_FS_FILE_IO_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/fs/file_cache.h"
#include "src/fs/sim_file_system.h"
#include "src/iolite/runtime.h"
#include "src/iolite/stream.h"
#include "src/simos/inline_function.h"

namespace iolfs {

class FileIoService {
 public:
  FileIoService(iolsim::SimContext* ctx, SimFileSystem* fs, FileCache* cache)
      : ctx_(ctx), fs_(fs), cache_(cache) {}

  FileIoService(const FileIoService&) = delete;
  FileIoService& operator=(const FileIoService&) = delete;

  SimFileSystem& fs() { return *fs_; }
  FileCache& cache() { return *cache_; }

  // Reads [offset, offset+length) through the cache. On a miss the extent
  // is read from disk into a fresh IO-Lite buffer and inserted. If
  // `was_miss` is non-null it reports whether disk I/O happened.
  iolite::Aggregate ReadExtent(FileId file, uint64_t offset, size_t length,
                               bool* was_miss = nullptr);

  // Completion callback of an asynchronous read: the aggregate plus
  // whether disk I/O happened. Inline-stored: captures must fit
  // kInlineCallbackBytes (the servers capture {this, req, size}).
  using ReadCallback = iolsim::InlineFunction<void(iolite::Aggregate, bool /*was_miss*/)>;

  // Asynchronous read through the cache for the staged request pipeline.
  // On a hit `done` runs immediately (in-place cache access, no charge
  // beyond what the caller's stage accounts). On a miss the disk resource
  // is acquired for the access's service demand and `done` runs at the
  // completion event; the extent becomes visible in the cache only then,
  // so concurrent readers of a cold file each pay their own disk access
  // (no read coalescing — matching one-outstanding-I/O-per-request disks).
  // Pending-read state (the filled aggregate and `done`) rides in a pooled
  // node until the disk completion event.
  void ReadExtentAsync(FileId file, uint64_t offset, size_t length, ReadCallback done);

  // Replaces [offset, offset+data.size()) in both the cache and the file.
  void WriteExtent(FileId file, uint64_t offset, const iolite::Aggregate& data);

 private:
  // One outstanding disk read awaiting its completion event.
  struct PendingRead {
    FileId file = kInvalidFile;
    uint64_t offset = 0;
    // Tenant that issued the read: restored before the cache insert and the
    // caller's continuation, so completions are attributed to their owner
    // even when no fair scheduler wraps the disk resource.
    iolsim::TenantId tenant = iolsim::kDefaultTenant;
    iolite::Aggregate agg;
    ReadCallback done;
    uint32_t next_free = UINT32_MAX;
  };

  void FinishRead(uint32_t idx);

  iolsim::SimContext* ctx_;
  SimFileSystem* fs_;
  FileCache* cache_;
  std::vector<PendingRead> pending_reads_;
  uint32_t free_pending_ = UINT32_MAX;
};

// Stream over an open file with a cursor, for the descriptor-based API.
class FileStream : public iolite::Stream {
 public:
  FileStream(FileIoService* io, FileId file) : io_(io), file_(file) {
    io_->fs().TouchMetadata(file_);
  }

  iolite::Aggregate Read(iolsim::DomainId /*reader*/, size_t max_bytes) override {
    uint64_t size = io_->fs().SizeOf(file_);
    if (position_ >= size) {
      return iolite::Aggregate{};
    }
    size_t len = max_bytes;
    if (position_ + len > size) {
      len = size - position_;
    }
    iolite::Aggregate agg = io_->ReadExtent(file_, position_, len);
    position_ += agg.size();
    return agg;
  }

  size_t Write(iolsim::DomainId /*writer*/, const iolite::Aggregate& agg) override {
    io_->WriteExtent(file_, position_, agg);
    position_ += agg.size();
    return agg.size();
  }

  void Seek(uint64_t position) { position_ = position; }
  uint64_t position() const { return position_; }
  FileId file() const { return file_; }

 private:
  FileIoService* io_;
  FileId file_;
  uint64_t position_ = 0;
};

}  // namespace iolfs

#endif  // SRC_FS_FILE_IO_H_
