#include "src/fs/file_io.h"

#include <cassert>
#include <utility>

namespace iolfs {

iolite::Aggregate FileIoService::ReadExtent(FileId file, uint64_t offset, size_t length,
                                            bool* was_miss) {
  if (was_miss != nullptr) {
    *was_miss = false;
  }
  if (length == 0) {
    return iolite::Aggregate{};
  }
  std::optional<iolite::Aggregate> cached = cache_->Lookup(file, offset, length);
  if (cached.has_value()) {
    return std::move(*cached);
  }
  if (was_miss != nullptr) {
    *was_miss = true;
  }
  // Miss: fetch the whole extent from disk in one sweep and cache it.
  // (Partial coverage is treated as a miss for the full extent; the paper's
  // cache is enlarged by one entry per miss.)
  iolite::BufferRef buffer = fs_->ReadFromDisk(file, offset, length);
  iolite::Aggregate agg = iolite::Aggregate::FromBuffer(std::move(buffer));
  cache_->Insert(file, offset, agg);
  return agg;
}

void FileIoService::ReadExtentAsync(FileId file, uint64_t offset, size_t length,
                                    ReadCallback done) {
  // Stage bodies run under a micro-tally; the async read must be issued
  // from continuation context so the disk acquisition isn't double-counted.
  assert(!ctx_->tally_active() && "issue async reads between stages, not inside one");
  if (length == 0) {
    done(iolite::Aggregate{}, false);
    return;
  }
  std::optional<iolite::Aggregate> cached = cache_->Lookup(file, offset, length);
  if (cached.has_value()) {
    done(std::move(*cached), false);
    return;
  }
  // Miss: measure the transfer's disk demand without advancing the clock
  // (the DMA fill itself costs no CPU), acquire the disk arm for it, and
  // complete — cache insert plus caller continuation — when it finishes.
  iolsim::Tally tally;
  iolite::BufferRef buffer;
  {
    iolsim::TallyScope scope(ctx_, &tally);
    buffer = fs_->ReadFromDisk(file, offset, length);
  }
  assert(tally.cpu == 0 && "disk DMA fill must not charge CPU");
  uint32_t idx;
  if (free_pending_ != UINT32_MAX) {
    idx = free_pending_;
    free_pending_ = pending_reads_[idx].next_free;
  } else {
    idx = static_cast<uint32_t>(pending_reads_.size());
    pending_reads_.emplace_back();
  }
  PendingRead& pending = pending_reads_[idx];
  pending.file = file;
  pending.offset = offset;
  pending.tenant = ctx_->active_tenant();
  pending.agg = iolite::Aggregate::FromBuffer(std::move(buffer));
  pending.done = std::move(done);
  ctx_->disk().AcquireAsync(&ctx_->events(), tally.disk, [this, idx] { FinishRead(idx); });
}

void FileIoService::FinishRead(uint32_t idx) {
  PendingRead& pending = pending_reads_[idx];
  iolite::Aggregate agg = std::move(pending.agg);
  ReadCallback done = std::move(pending.done);
  FileId file = pending.file;
  uint64_t offset = pending.offset;
  ctx_->set_active_tenant(pending.tenant);
  pending.next_free = free_pending_;
  free_pending_ = idx;
  cache_->Insert(file, offset, agg);
  done(std::move(agg), true);
}

void FileIoService::WriteExtent(FileId file, uint64_t offset, const iolite::Aggregate& data) {
  if (data.empty()) {
    return;
  }
  cache_->Insert(file, offset, data);
  fs_->WriteToDisk(file, offset, data);
}

}  // namespace iolfs
