#include "src/fs/file_io.h"

namespace iolfs {

iolite::Aggregate FileIoService::ReadExtent(FileId file, uint64_t offset, size_t length,
                                            bool* was_miss) {
  if (was_miss != nullptr) {
    *was_miss = false;
  }
  if (length == 0) {
    return iolite::Aggregate{};
  }
  std::optional<iolite::Aggregate> cached = cache_->Lookup(file, offset, length);
  if (cached.has_value()) {
    return std::move(*cached);
  }
  if (was_miss != nullptr) {
    *was_miss = true;
  }
  // Miss: fetch the whole extent from disk in one sweep and cache it.
  // (Partial coverage is treated as a miss for the full extent; the paper's
  // cache is enlarged by one entry per miss.)
  iolite::BufferRef buffer = fs_->ReadFromDisk(file, offset, length);
  iolite::Aggregate agg = iolite::Aggregate::FromBuffer(std::move(buffer));
  cache_->Insert(file, offset, agg);
  return agg;
}

void FileIoService::WriteExtent(FileId file, uint64_t offset, const iolite::Aggregate& data) {
  if (data.empty()) {
    return;
  }
  cache_->Insert(file, offset, data);
  fs_->WriteToDisk(file, offset, data);
}

}  // namespace iolfs
