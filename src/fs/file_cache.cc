#include "src/fs/file_cache.h"

#include <cassert>
#include <vector>

namespace iolfs {

void FileCache::SetPolicy(std::unique_ptr<ReplacementPolicy> policy) {
  for (const auto& [id, entry] : entries_) {
    policy->OnInsert(id, entry.data.size());
  }
  policy_ = std::move(policy);
}

std::optional<iolite::Aggregate> FileCache::Lookup(FileId file, uint64_t offset, size_t length) {
  auto fit = by_file_.find(file);
  if (fit == by_file_.end()) {
    (*misses_)++;
    return std::nullopt;
  }
  const std::map<uint64_t, EntryId>& runs = fit->second;

  // Find the run containing `offset`, then walk adjacent runs until the
  // requested range is covered or a gap appears.
  auto it = runs.upper_bound(offset);
  if (it == runs.begin()) {
    (*misses_)++;
    return std::nullopt;
  }
  --it;
  auto first_run = it;

  // Pass 1: verify the adjacent runs cover the range with no gap. No state
  // is accumulated — the warm hit path must not allocate.
  uint64_t want_end = offset + length;
  uint64_t covered_to = offset;
  while (covered_to < want_end) {
    if (it == runs.end() || it->first > covered_to) {
      (*misses_)++;
      return std::nullopt;  // Gap.
    }
    const Entry& entry = entries_.at(it->second);
    uint64_t run_end = entry.offset + entry.data.size();
    if (run_end <= covered_to) {
      (*misses_)++;
      return std::nullopt;  // Run ends before reaching our position.
    }
    covered_to = run_end;
    ++it;
  }

  // Pass 2: assemble the requested window from the same runs; the aggregate
  // is a value whose slices reference the cached immutable buffers.
  iolite::Aggregate out;
  for (it = first_run; out.size() < length; ++it) {
    const Entry& entry = entries_.at(it->second);
    uint64_t run_begin = entry.offset;
    uint64_t run_end = entry.offset + entry.data.size();
    uint64_t from = offset > run_begin ? offset : run_begin;
    uint64_t to = want_end < run_end ? want_end : run_end;
    out.AppendRange(entry.data, from - run_begin, to - from);
    policy_->OnAccess(it->second);
  }
  assert(out.size() == length);
  (*hits_)++;
  return out;
}

void FileCache::Insert(FileId file, uint64_t offset, iolite::Aggregate data) {
  if (data.empty()) {
    return;
  }
  uint64_t end = offset + data.size();
  std::map<uint64_t, EntryId>& runs = by_file_[file];

  // Collect overlapping runs: start from the run preceding `offset`.
  std::vector<EntryId> overlapping;
  auto it = runs.upper_bound(offset);
  if (it != runs.begin()) {
    auto prev = std::prev(it);
    const Entry& e = entries_.at(prev->second);
    if (e.offset + e.data.size() > offset) {
      overlapping.push_back(prev->second);
    }
  }
  while (it != runs.end() && it->first < end) {
    overlapping.push_back(it->second);
    ++it;
  }

  // A write replaces the overlapped portions (Section 3.5). Non-overlapped
  // remainders of trimmed entries are re-inserted so no cached data beyond
  // the written range is lost. The replaced buffers persist while other
  // references exist — snapshot semantics.
  struct Remainder {
    uint64_t offset;
    iolite::Aggregate data;
  };
  std::vector<Remainder> remainders;
  for (EntryId id : overlapping) {
    Entry& e = entries_.at(id);
    uint64_t run_end = e.offset + e.data.size();
    if (e.offset < offset) {
      remainders.push_back({e.offset, e.data.Range(0, offset - e.offset)});
    }
    if (run_end > end) {
      remainders.push_back({end, e.data.Range(end - e.offset, run_end - end)});
    }
    EraseEntry(id);
  }

  auto add = [&](uint64_t off, iolite::Aggregate agg) {
    EntryId id = next_id_++;
    bytes_ += agg.size();
    for (const iolite::Slice& s : agg.slices()) {
      cache_refs_[s.buffer().get()]++;
    }
    size_t sz = agg.size();
    entries_.emplace(id, Entry{file, off, std::move(agg)});
    by_file_[file][off] = id;
    policy_->OnInsert(id, sz);
    if (mirror_ != nullptr) {
      mirror_->OnInsert(file, off, entries_.at(id).data);
    }
  };

  for (Remainder& r : remainders) {
    add(r.offset, std::move(r.data));
  }
  add(offset, std::move(data));
}

void FileCache::InvalidateFile(FileId file) {
  auto fit = by_file_.find(file);
  if (fit == by_file_.end()) {
    return;
  }
  std::vector<EntryId> ids;
  for (const auto& [off, id] : fit->second) {
    ids.push_back(id);
  }
  for (EntryId id : ids) {
    EraseEntry(id);
  }
}

int FileCache::EnforceBudget(uint64_t budget) {
  int evicted = 0;
  while (bytes_ > budget && EvictOne()) {
    ++evicted;
  }
  return evicted;
}

bool FileCache::EvictOne() {
  EntryId victim = policy_->ChooseVictim(*this);
  if (victim == kNoEntry) {
    return false;
  }
  EraseEntry(victim);
  (*evictions_)++;
  return true;
}

bool FileCache::IsReferenced(EntryId id) const {
  auto it = entries_.find(id);
  assert(it != entries_.end());
  for (const iolite::Slice& s : it->second.data.slices()) {
    const iolite::Buffer* b = s.buffer().get();
    auto rit = cache_refs_.find(const_cast<iolite::Buffer*>(b));
    int held_by_cache = rit == cache_refs_.end() ? 0 : rit->second;
    if (b->refcount() > held_by_cache) {
      return true;  // Someone outside the cache holds this buffer.
    }
  }
  return false;
}

size_t FileCache::SizeOf(EntryId id) const {
  auto it = entries_.find(id);
  assert(it != entries_.end());
  return it->second.data.size();
}

void FileCache::EraseEntry(EntryId id) {
  auto it = entries_.find(id);
  assert(it != entries_.end());
  if (mirror_ != nullptr) {
    mirror_->OnErase(it->second.file, it->second.offset, it->second.data.size());
  }
  bytes_ -= it->second.data.size();
  for (const iolite::Slice& s : it->second.data.slices()) {
    auto rit = cache_refs_.find(s.buffer().get());
    assert(rit != cache_refs_.end());
    if (--rit->second == 0) {
      cache_refs_.erase(rit);
    }
  }
  by_file_[it->second.file].erase(it->second.offset);
  policy_->OnErase(id);
  entries_.erase(it);
}

bool EvictionTrigger::OnPageSelected(bool page_held_cached_io_data) {
  ++total_pages_;
  if (page_held_cached_io_data) {
    ++io_pages_;
  }
  // "If, during the period since the last cache entry eviction, more than
  // half of VM pages selected for replacement were pages containing cached
  // I/O data, then the current file cache is too large: evict one entry."
  if (io_pages_ * 2 > total_pages_) {
    if (cache_->EvictOne()) {
      ++evictions_;
    }
    io_pages_ = 0;
    total_pages_ = 0;
    return true;
  }
  return false;
}

}  // namespace iolfs
