#include "src/fs/file_cache.h"

#include <cassert>
#include <vector>

#include "src/qos/policy.h"

namespace iolfs {

void FileCache::SetPartitions(const iolqos::CachePlan* plan) {
  // Tags are assigned at insert time; enabling over a populated cache would
  // leave untagged entries invisible to the per-tenant shares.
  assert((plan == nullptr || entries_.empty()) &&
         "enable cache partitions before the cache is populated");
  plan_ = plan;
  if (plan == nullptr) {
    shares_.clear();
    lru_pos_.clear();
  }
}

void FileCache::TouchTenantLru(EntryId id) {
  auto pos = lru_pos_.find(id);
  assert(pos != lru_pos_.end());
  std::list<EntryId>& lru = shares_[entries_.at(id).tenant].lru;
  lru.splice(lru.end(), lru, pos->second);
}

EntryId FileCache::PartitionVictim() const {
  // The tenant furthest above its reserved share loses first (ties go to
  // the lowest tenant id, deterministically); when everyone is within
  // reservation the least-under tenant pays — the shared remainder is a
  // bid, not a grant. Within the tenant: oldest unreferenced entry, falling
  // back to its LRU head if everything is pinned.
  size_t victim_tenant = shares_.size();
  int64_t victim_over = 0;
  for (size_t t = 0; t < shares_.size(); ++t) {
    if (shares_[t].lru.empty()) {
      continue;
    }
    int64_t over = static_cast<int64_t>(shares_[t].bytes) -
                   static_cast<int64_t>(plan_->ReservedFor(static_cast<iolsim::TenantId>(t)));
    if (victim_tenant == shares_.size() || over > victim_over) {
      victim_tenant = t;
      victim_over = over;
    }
  }
  if (victim_tenant == shares_.size()) {
    return kNoEntry;
  }
  const std::list<EntryId>& lru = shares_[victim_tenant].lru;
  for (EntryId id : lru) {
    if (!IsReferenced(id)) {
      return id;
    }
  }
  return lru.front();
}

void FileCache::SetPolicy(std::unique_ptr<ReplacementPolicy> policy) {
  for (const auto& [id, entry] : entries_) {
    policy->OnInsert(id, entry.data.size());
  }
  policy_ = std::move(policy);
}

std::optional<iolite::Aggregate> FileCache::Lookup(FileId file, uint64_t offset, size_t length) {
  auto fit = by_file_.find(file);
  if (fit == by_file_.end()) {
    CountLookup(false);
    return std::nullopt;
  }
  const std::map<uint64_t, EntryId>& runs = fit->second;

  // Find the run containing `offset`, then walk adjacent runs until the
  // requested range is covered or a gap appears.
  auto it = runs.upper_bound(offset);
  if (it == runs.begin()) {
    CountLookup(false);
    return std::nullopt;
  }
  --it;
  auto first_run = it;

  // Pass 1: verify the adjacent runs cover the range with no gap. No state
  // is accumulated — the warm hit path must not allocate.
  uint64_t want_end = offset + length;
  uint64_t covered_to = offset;
  while (covered_to < want_end) {
    if (it == runs.end() || it->first > covered_to) {
      CountLookup(false);
      return std::nullopt;  // Gap.
    }
    const Entry& entry = entries_.at(it->second);
    uint64_t run_end = entry.offset + entry.data.size();
    if (run_end <= covered_to) {
      CountLookup(false);
      return std::nullopt;  // Run ends before reaching our position.
    }
    covered_to = run_end;
    ++it;
  }

  // Pass 2: assemble the requested window from the same runs; the aggregate
  // is a value whose slices reference the cached immutable buffers.
  iolite::Aggregate out;
  for (it = first_run; out.size() < length; ++it) {
    const Entry& entry = entries_.at(it->second);
    uint64_t run_begin = entry.offset;
    uint64_t run_end = entry.offset + entry.data.size();
    uint64_t from = offset > run_begin ? offset : run_begin;
    uint64_t to = want_end < run_end ? want_end : run_end;
    out.AppendRange(entry.data, from - run_begin, to - from);
    policy_->OnAccess(it->second);
    if (plan_ != nullptr) {
      TouchTenantLru(it->second);
    }
  }
  assert(out.size() == length);
  CountLookup(true);
  return out;
}

void FileCache::Insert(FileId file, uint64_t offset, iolite::Aggregate data,
                       uint64_t version) {
  if (data.empty()) {
    return;
  }
  uint64_t end = offset + data.size();
  std::map<uint64_t, EntryId>& runs = by_file_[file];

  // Collect overlapping runs: start from the run preceding `offset`.
  std::vector<EntryId> overlapping;
  auto it = runs.upper_bound(offset);
  if (it != runs.begin()) {
    auto prev = std::prev(it);
    const Entry& e = entries_.at(prev->second);
    if (e.offset + e.data.size() > offset) {
      overlapping.push_back(prev->second);
    }
  }
  while (it != runs.end() && it->first < end) {
    overlapping.push_back(it->second);
    ++it;
  }

  // A write replaces the overlapped portions (Section 3.5). Non-overlapped
  // remainders of trimmed entries are re-inserted so no cached data beyond
  // the written range is lost. The replaced buffers persist while other
  // references exist — snapshot semantics.
  struct Remainder {
    uint64_t offset;
    iolite::Aggregate data;
    uint64_t version;
  };
  std::vector<Remainder> remainders;
  for (EntryId id : overlapping) {
    Entry& e = entries_.at(id);
    uint64_t run_end = e.offset + e.data.size();
    if (e.offset < offset) {
      remainders.push_back({e.offset, e.data.Range(0, offset - e.offset), e.version});
    }
    if (run_end > end) {
      remainders.push_back({end, e.data.Range(end - e.offset, run_end - end), e.version});
    }
    EraseEntry(id);
  }

  auto add = [&](uint64_t off, iolite::Aggregate agg, uint64_t ver) {
    EntryId id = next_id_++;
    bytes_ += agg.size();
    for (const iolite::Slice& s : agg.slices()) {
      cache_refs_[s.buffer().get()]++;
    }
    size_t sz = agg.size();
    // The inserting tenant owns the entry: the principal that missed pays
    // for the space (partitioned runs only; kDefaultTenant otherwise).
    iolsim::TenantId owner = ctx_->active_tenant();
    entries_.emplace(id, Entry{file, off, std::move(agg), owner, ver});
    by_file_[file][off] = id;
    policy_->OnInsert(id, sz);
    if (plan_ != nullptr) {
      if (owner >= shares_.size()) {
        shares_.resize(owner + 1);
      }
      TenantShare& share = shares_[owner];
      share.bytes += sz;
      lru_pos_[id] = share.lru.insert(share.lru.end(), id);
    }
    if (mirror_ != nullptr) {
      mirror_->OnInsert(file, off, entries_.at(id).data);
    }
  };

  for (Remainder& r : remainders) {
    add(r.offset, std::move(r.data), r.version);
  }
  add(offset, std::move(data), version);
}

uint64_t FileCache::VersionOf(FileId file) const {
  auto fit = by_file_.find(file);
  if (fit == by_file_.end()) {
    return 0;
  }
  uint64_t version = 0;
  for (const auto& [off, id] : fit->second) {
    uint64_t v = entries_.at(id).version;
    if (v > version) {
      version = v;
    }
  }
  return version;
}

int FileCache::InvalidateOlderThan(FileId file, uint64_t min_version) {
  auto fit = by_file_.find(file);
  if (fit == by_file_.end()) {
    return 0;
  }
  std::vector<EntryId> stale;
  for (const auto& [off, id] : fit->second) {
    if (entries_.at(id).version < min_version) {
      stale.push_back(id);
    }
  }
  for (EntryId id : stale) {
    EraseEntry(id);
  }
  return static_cast<int>(stale.size());
}

void FileCache::InvalidateFile(FileId file) {
  auto fit = by_file_.find(file);
  if (fit == by_file_.end()) {
    return;
  }
  std::vector<EntryId> ids;
  for (const auto& [off, id] : fit->second) {
    ids.push_back(id);
  }
  for (EntryId id : ids) {
    EraseEntry(id);
  }
}

int FileCache::EnforceBudget(uint64_t budget) {
  int evicted = 0;
  while (bytes_ > budget && EvictOne()) {
    ++evicted;
  }
  return evicted;
}

bool FileCache::EvictOne() {
  EntryId victim = plan_ != nullptr ? PartitionVictim() : policy_->ChooseVictim(*this);
  if (victim == kNoEntry) {
    return false;
  }
  if (qos_ != nullptr) {
    qos_->OnCacheEviction(entries_.at(victim).tenant, qos_proxy_tier_);
  }
  EraseEntry(victim);
  (*evictions_)++;
  return true;
}

bool FileCache::IsReferenced(EntryId id) const {
  auto it = entries_.find(id);
  assert(it != entries_.end());
  for (const iolite::Slice& s : it->second.data.slices()) {
    const iolite::Buffer* b = s.buffer().get();
    auto rit = cache_refs_.find(const_cast<iolite::Buffer*>(b));
    int held_by_cache = rit == cache_refs_.end() ? 0 : rit->second;
    if (b->refcount() > held_by_cache) {
      return true;  // Someone outside the cache holds this buffer.
    }
  }
  return false;
}

size_t FileCache::SizeOf(EntryId id) const {
  auto it = entries_.find(id);
  assert(it != entries_.end());
  return it->second.data.size();
}

void FileCache::EraseEntry(EntryId id) {
  auto it = entries_.find(id);
  assert(it != entries_.end());
  if (mirror_ != nullptr) {
    mirror_->OnErase(it->second.file, it->second.offset, it->second.data.size());
  }
  bytes_ -= it->second.data.size();
  if (plan_ != nullptr) {
    auto pos = lru_pos_.find(id);
    assert(pos != lru_pos_.end());
    TenantShare& share = shares_[it->second.tenant];
    share.bytes -= it->second.data.size();
    share.lru.erase(pos->second);
    lru_pos_.erase(pos);
  }
  for (const iolite::Slice& s : it->second.data.slices()) {
    auto rit = cache_refs_.find(s.buffer().get());
    assert(rit != cache_refs_.end());
    if (--rit->second == 0) {
      cache_refs_.erase(rit);
    }
  }
  by_file_[it->second.file].erase(it->second.offset);
  policy_->OnErase(id);
  entries_.erase(it);
}

void FileCache::CountLookup(bool hit) {
  if (hit) {
    (*hits_)++;
  } else {
    (*misses_)++;
  }
  if (qos_ != nullptr) {
    qos_->OnCacheLookup(ctx_->active_tenant(), hit, qos_proxy_tier_,
                        ctx_->clock().now());
  }
}

bool EvictionTrigger::OnPageSelected(bool page_held_cached_io_data) {
  ++total_pages_;
  if (page_held_cached_io_data) {
    ++io_pages_;
  }
  // "If, during the period since the last cache entry eviction, more than
  // half of VM pages selected for replacement were pages containing cached
  // I/O data, then the current file cache is too large: evict one entry."
  if (io_pages_ * 2 > total_pages_) {
    if (cache_->EvictOne()) {
      ++evictions_;
    }
    io_pages_ = 0;
    total_pages_ = 0;
    return true;
  }
  return false;
}

}  // namespace iolfs
