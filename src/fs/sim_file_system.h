// Simulated file system over a latency-modelled disk.
//
// The paper leaves the file system below the block read/write interface
// unchanged (Section 4.2); what matters for IO-Lite is (a) where file data
// lands — directly in IO-Lite buffers, filled by DMA — and (b) the disk
// service time charged on cache misses. Files have deterministic synthetic
// content (regenerated per <file, offset> on each disk read) plus a write
// overlay so write-then-read round-trips return the written bytes.
//
// Metadata is cached in a small "old buffer cache" as in 4.4BSD: the first
// open of a file charges a metadata disk access unless its inode block is
// resident.

#ifndef SRC_FS_SIM_FILE_SYSTEM_H_
#define SRC_FS_SIM_FILE_SYSTEM_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/iolite/aggregate.h"
#include "src/iolite/buffer_pool.h"
#include "src/simos/sim_context.h"

namespace iolfs {

using FileId = int64_t;
constexpr FileId kInvalidFile = -1;

class SimFileSystem {
 public:
  // `pool` is the pool disk DMA fills (normally the kernel pool).
  SimFileSystem(iolsim::SimContext* ctx, iolite::BufferPool* pool)
      : ctx_(ctx), pool_(pool), metadata_cache_(kMetadataCacheSlots) {}

  SimFileSystem(const SimFileSystem&) = delete;
  SimFileSystem& operator=(const SimFileSystem&) = delete;

  // Creates a file of `size` bytes of synthetic content. Returns its id.
  FileId CreateFile(const std::string& name, uint64_t size);

  FileId Lookup(const std::string& name) const;
  uint64_t SizeOf(FileId file) const;
  bool Exists(FileId file) const { return files_.count(file) > 0; }
  size_t file_count() const { return files_.size(); }
  uint64_t total_bytes() const { return total_bytes_; }

  // Charges the metadata access for opening `file` (disk read on a cold
  // inode, free when the inode block is in the metadata buffer cache).
  void TouchMetadata(FileId file);

  // Reads [offset, offset+length) from disk into a fresh IO-Lite buffer.
  // Charges disk service time; the fill itself is DMA (no CPU).
  iolite::BufferRef ReadFromDisk(FileId file, uint64_t offset, size_t length);

  // Writes `data` at `offset` (write-through: disk time charged now). The
  // overlay remembers the bytes so later disk reads return them; the file
  // grows if the write extends past the current end.
  void WriteToDisk(FileId file, uint64_t offset, const iolite::Aggregate& data);

  // Reference content generator: what a disk read of one byte returns.
  // Exposed so tests can validate reads without going through buffers.
  uint8_t ContentByteAt(FileId file, uint64_t offset) const;

 private:
  static constexpr size_t kMetadataCacheSlots = 512;

  struct File {
    std::string name;
    uint64_t size = 0;
    uint64_t content_seed = 0;
    // Sparse write overlay: offset -> written bytes (non-overlapping).
    std::map<uint64_t, std::string> overlay;
  };

  // LRU set of file ids whose metadata is resident.
  class MetadataCache {
   public:
    explicit MetadataCache(size_t slots) : slots_(slots) {}
    // Returns true on hit; on miss, inserts (evicting LRU).
    bool Touch(FileId file);

   private:
    size_t slots_;
    std::list<FileId> lru_;
    std::unordered_map<FileId, std::list<FileId>::iterator> index_;
  };

  iolsim::SimContext* ctx_;
  iolite::BufferPool* pool_;
  std::unordered_map<FileId, File> files_;
  std::unordered_map<std::string, FileId> by_name_;
  FileId next_file_ = 1;
  uint64_t total_bytes_ = 0;
  MetadataCache metadata_cache_;
};

}  // namespace iolfs

#endif  // SRC_FS_SIM_FILE_SYSTEM_H_
