// Token-bucket shaping of backhaul bytes (ROADMAP item 5a).
//
// The QoS plane's GCRA token bucket meters *requests* at the fleet front
// door; the CDN hierarchy needs the complementary control: metering *bytes*
// on each interior link, so one level's refill storm cannot saturate the
// WAN pipe the level above shares. A BackhaulShaper wraps one TokenBucket
// whose tokens are bytes: every transfer (object payload, invalidation
// frame, revalidation headers) reserves its size and is delayed until the
// grant — deterministic integer arithmetic, so shaped runs keep the
// engine's run-twice byte-identity.

#ifndef SRC_QOS_BACKHAUL_SHAPER_H_
#define SRC_QOS_BACKHAUL_SHAPER_H_

#include <cstdint>

#include "src/qos/token_bucket.h"
#include "src/simos/clock.h"

namespace iolqos {

class BackhaulShaper {
 public:
  // `bytes_per_sec` is the sustained shaped rate; `burst_bytes` may pass
  // back-to-back after idle (>= one MTU keeps single transfers unshaped).
  BackhaulShaper(double bytes_per_sec, double burst_bytes)
      : bucket_(bytes_per_sec, burst_bytes) {}

  // Reserves `bytes` at `now`; returns how long the transfer must wait
  // before entering the link (0 when within rate/burst). Large transfers
  // are granted as a unit: the GCRA TAT advances by size, so the *next*
  // transfer pays for this one's bytes — classic leaky-bucket smoothing
  // without per-packet events.
  iolsim::SimTime DelayFor(iolsim::SimTime now, uint64_t bytes) {
    if (bytes == 0) {
      return 0;
    }
    // TokenBucket costs are uint32; charge oversized transfers in chunks.
    iolsim::SimTime grant = now;
    while (bytes > 0) {
      uint32_t chunk = bytes > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(bytes);
      grant = bucket_.ReserveAt(now, chunk);
      bytes -= chunk;
    }
    iolsim::SimTime delay = grant > now ? grant - now : 0;
    if (delay > 0) {
      ++holds_;
    }
    return delay;
  }

  uint64_t holds() const { return holds_; }

  void Reset() {
    bucket_.Reset();
    holds_ = 0;
  }

 private:
  TokenBucket bucket_;
  uint64_t holds_ = 0;
};

}  // namespace iolqos

#endif  // SRC_QOS_BACKHAUL_SHAPER_H_
