// Deterministic token-bucket rate limiter (GCRA virtual-scheduling form).
//
// Instead of materializing a fractional token count that refills over time,
// the bucket tracks a single theoretical arrival time (TAT) in integer
// nanoseconds: each grant advances the TAT by the token period, and a
// request is eligible as soon as `TAT - burst allowance` has passed. This
// is the classic equivalence of token buckets and the generic cell rate
// algorithm — pure int64 arithmetic, so a replayed request sequence grants
// byte-identical timestamps on every run and platform (the run-twice parity
// property tested in tests/qos_test.cc).

#ifndef SRC_QOS_TOKEN_BUCKET_H_
#define SRC_QOS_TOKEN_BUCKET_H_

#include <cstdint>

#include "src/simos/clock.h"

namespace iolqos {

class TokenBucket {
 public:
  // `tokens_per_sec` is the sustained rate; `burst_tokens` how many grants
  // may pass back-to-back after a long idle period (>= 1).
  TokenBucket(double tokens_per_sec, double burst_tokens)
      : period_(PeriodNs(tokens_per_sec)),
        tau_(static_cast<iolsim::SimTime>(
            (burst_tokens > 1.0 ? burst_tokens - 1.0 : 0.0) *
            static_cast<double>(PeriodNs(tokens_per_sec)))) {}

  // Reserves `cost` tokens for a request arriving at `now` and returns the
  // instant the tokens are available (== now when within rate/burst). Calls
  // must be made with non-decreasing `now`; grants are monotone in call
  // order, so a caller delays admission by (grant - now).
  iolsim::SimTime ReserveAt(iolsim::SimTime now, uint32_t cost = 1) {
    iolsim::SimTime eligible = tat_ - tau_;
    iolsim::SimTime grant = eligible > now ? eligible : now;
    iolsim::SimTime base = tat_ > grant ? tat_ : grant;
    tat_ = base + period_ * static_cast<iolsim::SimTime>(cost);
    return grant;
  }

  // Probe without consuming: when would a request arriving at `now` be
  // admitted?
  iolsim::SimTime PeekAt(iolsim::SimTime now) const {
    iolsim::SimTime eligible = tat_ - tau_;
    return eligible > now ? eligible : now;
  }

  iolsim::SimTime period() const { return period_; }

  void Reset() { tat_ = 0; }

 private:
  static iolsim::SimTime PeriodNs(double tokens_per_sec) {
    if (tokens_per_sec <= 0.0) {
      return 1;
    }
    double ns = 1e9 / tokens_per_sec;
    iolsim::SimTime p = static_cast<iolsim::SimTime>(ns);
    return p > 0 ? p : 1;
  }

  iolsim::SimTime period_;  // ns between sustained grants (1/rate).
  iolsim::SimTime tau_;     // Burst allowance: (burst - 1) periods.
  iolsim::SimTime tat_ = 0;
};

}  // namespace iolqos

#endif  // SRC_QOS_TOKEN_BUCKET_H_
