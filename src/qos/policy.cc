#include "src/qos/policy.h"

namespace iolqos {

namespace {
const CacheCounters kZeroCounters;
}  // namespace

QosPolicy::QosPolicy() = default;
QosPolicy::~QosPolicy() = default;

TenantId QosPolicy::Register(std::string name, uint32_t weight) {
  TenantId t = registry_.Register(std::move(name), weight);
  for (std::unique_ptr<FairScheduler>& s : schedulers_) {
    s->queue().SetWeight(t, weight);
  }
  return t;
}

void QosPolicy::SetWeight(TenantId t, uint32_t weight) {
  registry_.set_weight(t, weight);
  for (std::unique_ptr<FairScheduler>& s : schedulers_) {
    s->queue().SetWeight(t, registry_.weight(t));
  }
}

FairScheduler* QosPolicy::AttachFairQueue(iolsim::SimContext* ctx,
                                          iolsim::Resource* resource) {
  schedulers_.push_back(std::make_unique<FairScheduler>(ctx, resource));
  FairScheduler* s = schedulers_.back().get();
  for (TenantId t = 0; t < registry_.size(); ++t) {
    s->queue().SetWeight(t, registry_.weight(t));
  }
  s->queue().set_max_wait(starvation_bound_);
  return s;
}

void QosPolicy::AttachWfq(iolsim::SimContext* ctx) {
  AttachFairQueue(ctx, &ctx->cpu());
  AttachFairQueue(ctx, &ctx->disk());
  AttachFairQueue(ctx, &ctx->link());
  ctx->set_qos(this);
}

void QosPolicy::SetStarvationBound(iolsim::SimTime max_wait) {
  starvation_bound_ = max_wait;
  for (std::unique_ptr<FairScheduler>& s : schedulers_) {
    s->queue().set_max_wait(max_wait);
  }
}

uint64_t QosPolicy::promotions() const {
  uint64_t total = 0;
  for (const std::unique_ptr<FairScheduler>& s : schedulers_) {
    total += s->queue().promotions();
  }
  return total;
}

void QosPolicy::SetThrottle(TenantId t, double tokens_per_sec, double burst_tokens) {
  if (t >= throttles_.size()) {
    throttles_.resize(t + 1);
  }
  throttles_[t] = std::make_unique<TokenBucket>(tokens_per_sec, burst_tokens);
}

iolsim::SimTime QosPolicy::OnAdmit(TenantId t, iolsim::SimTime now) {
  iolsim::SimTime delay = 0;
  if (t < throttles_.size() && throttles_[t] != nullptr) {
    delay = throttles_[t]->ReserveAt(now) - now;
  }
  for (StageHook* hook : hooks_) {
    iolsim::SimTime d = hook->OnAdmit(t, now);
    if (d > delay) {
      delay = d;
    }
  }
  if (delay > 0) {
    ++admit_delays_;
  }
  return delay;
}

void QosPolicy::OnCacheLookup(TenantId t, bool hit, bool proxy_tier,
                              iolsim::SimTime now) {
  CacheCounters& c = MutableCounters(t, proxy_tier);
  if (hit) {
    ++c.hits;
  } else {
    ++c.misses;
  }
  for (StageHook* hook : hooks_) {
    hook->OnCacheLookup(t, hit, proxy_tier, now);
  }
}

iolsim::SimTime QosPolicy::OnTransmit(TenantId t, uint64_t bytes,
                                      iolsim::SimTime now) {
  iolsim::SimTime delay = 0;
  for (StageHook* hook : hooks_) {
    iolsim::SimTime d = hook->OnTransmit(t, bytes, now);
    if (d > delay) {
      delay = d;
    }
  }
  if (delay > 0) {
    ++transmit_delays_;
  }
  return delay;
}

void QosPolicy::OnCacheEviction(TenantId t, bool proxy_tier) {
  ++MutableCounters(t, proxy_tier).evictions;
}

const CacheCounters& QosPolicy::cache_counters(TenantId t, bool proxy_tier) const {
  const std::vector<CacheCounters>& v = proxy_tier ? proxy_counters_ : unified_counters_;
  return t < v.size() ? v[t] : kZeroCounters;
}

CacheCounters& QosPolicy::MutableCounters(TenantId t, bool proxy_tier) {
  std::vector<CacheCounters>& v = proxy_tier ? proxy_counters_ : unified_counters_;
  if (t >= v.size()) {
    v.resize(t + 1);
  }
  return v[t];
}

}  // namespace iolqos
