// Tenant identity for the multi-tenant QoS plane.
//
// A tenant is a principal that owns requests: a customer, a workload class,
// a virtual host. The registry maps tenant ids (dense, starting at
// kDefaultTenant = 0) to names and weights; weights drive the fair
// schedulers (fair_queue.h) and can be changed at runtime by stage hooks
// ("reprioritize"). A CachePlan carves the unified cache budget into
// per-tenant reserved shares plus a shared remainder (file_cache.cc).

#ifndef SRC_QOS_TENANT_H_
#define SRC_QOS_TENANT_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "src/simos/clock.h"

namespace iolqos {

using TenantId = iolsim::TenantId;
using iolsim::kDefaultTenant;

struct TenantInfo {
  std::string name;
  uint32_t weight = 1;
};

// Dense tenant table. Id 0 is pre-registered as the default tenant so that
// untagged traffic (every pre-QoS workload) always resolves.
class TenantRegistry {
 public:
  TenantRegistry() { tenants_.push_back({"default", 1}); }

  TenantId Register(std::string name, uint32_t weight = 1) {
    tenants_.push_back({std::move(name), weight > 0 ? weight : 1});
    return static_cast<TenantId>(tenants_.size() - 1);
  }

  size_t size() const { return tenants_.size(); }

  const TenantInfo& info(TenantId t) const {
    assert(t < tenants_.size());
    return tenants_[t];
  }

  uint32_t weight(TenantId t) const {
    return t < tenants_.size() ? tenants_[t].weight : 1;
  }

  void set_weight(TenantId t, uint32_t weight) {
    assert(t < tenants_.size());
    tenants_[t].weight = weight > 0 ? weight : 1;
  }

  const char* name(TenantId t) const {
    return t < tenants_.size() ? tenants_[t].name.c_str() : "?";
  }

 private:
  std::vector<TenantInfo> tenants_;
};

// Per-tenant carve-up of a cache byte budget: each tenant holds a reserved
// share it can never be evicted below while any other tenant sits above its
// own reservation; the remainder (total - sum of reservations) is a shared
// pool tenants bid for by inserting (first-come, evicted back first).
struct CachePlan {
  uint64_t total_bytes = 0;
  std::vector<uint64_t> reserved_bytes;  // Indexed by TenantId; absent => 0.

  uint64_t ReservedFor(TenantId t) const {
    return t < reserved_bytes.size() ? reserved_bytes[t] : 0;
  }

  void SetReserved(TenantId t, uint64_t bytes) {
    if (t >= reserved_bytes.size()) {
      reserved_bytes.resize(t + 1, 0);
    }
    reserved_bytes[t] = bytes;
  }
};

}  // namespace iolqos

#endif  // SRC_QOS_TENANT_H_
