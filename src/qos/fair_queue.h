// Start-time fair queueing (SFQ) over the simulated machine's resources.
//
// FairQueue is the discipline in isolation: per-tenant FIFO queues with
// virtual start/finish tags (Goyal's SFQ). A job arriving from tenant T
// gets start tag S = max(v, F_T) and finish tag F_T = S + service / w_T,
// where v is the virtual time (the start tag of the most recently
// dispatched job) and w_T the tenant's weight. Dispatch picks the smallest
// (S, arrival seq) pair — the arrival sequence number is the same
// deterministic tie-break the event queue uses, so a single tenant (or any
// run with equal tags) dispatches in exact FIFO order and the golden
// determinism tests are unaffected. A bounded-wait starvation guard can
// promote the globally oldest queued job past the tag order.
//
// FairScheduler plugs the discipline into a Resource via the
// ResourceScheduler admission hook: jobs queue here instead of reserving a
// unit at call time, and each dispatch reserves the unit directly (the
// synchronous Acquire path, which bypasses the scheduler). The completion
// wrapper restores the owning tenant's identity on the SimContext before
// running the caller's continuation, so multi-stage request chains carry
// their tenant through disk, CPU, and link hops automatically. All queue
// and slot state is pooled: the warm path neither allocates nor frees.

#ifndef SRC_QOS_FAIR_QUEUE_H_
#define SRC_QOS_FAIR_QUEUE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/qos/tenant.h"
#include "src/simos/sim_context.h"

namespace iolqos {

// Virtual-time tags are kept in weighted nanoseconds scaled by kTagScale so
// integer division by the weight keeps sub-weight precision. int64 gives
// centuries of weighted service before overflow.
constexpr int64_t kTagScale = 1024;

class FairQueue {
 public:
  // One dispatched job, as returned by Pop.
  struct Job {
    uint64_t token = 0;        // Caller cookie from Push.
    TenantId tenant = kDefaultTenant;
    iolsim::SimTime service = 0;
    iolsim::SimTime enqueued_at = 0;
    bool promoted = false;     // Dispatched by the starvation guard.
  };

  // Weights default to 1 for every tenant never configured.
  void SetWeight(TenantId t, uint32_t weight) {
    Lane(t).weight = weight > 0 ? weight : 1;
  }

  // Bounded-wait promotion: a queued job older than `max_wait` is
  // dispatched next regardless of its start tag. 0 disables the guard.
  void set_max_wait(iolsim::SimTime max_wait) { max_wait_ = max_wait; }

  void Push(TenantId t, iolsim::SimTime now, iolsim::SimTime service, uint64_t token) {
    TenantLane& lane = Lane(t);
    int64_t start = lane.finish_tag > vtime_ ? lane.finish_tag : vtime_;
    int64_t finish = start + service * kTagScale / static_cast<int64_t>(lane.weight);
    lane.finish_tag = finish;

    uint32_t idx = AllocNode();
    Node& n = nodes_[idx];
    n.token = token;
    n.service = service;
    n.enqueued_at = now;
    n.seq = next_seq_++;
    n.start_tag = start;
    n.next = kNone;
    if (lane.tail != kNone) {
      nodes_[lane.tail].next = idx;
    } else {
      lane.head = idx;
    }
    lane.tail = idx;
    ++size_;
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  // Removes and returns the job to dispatch at time `now`: the queue-head
  // with the smallest (start tag, seq) — or, when the guard is armed and
  // the globally oldest job has waited past the bound, that job.
  Job Pop(iolsim::SimTime now) {
    assert(size_ > 0);
    size_t best = tenants_.size();
    size_t oldest = tenants_.size();
    for (size_t t = 0; t < tenants_.size(); ++t) {
      uint32_t head = tenants_[t].head;
      if (head == kNone) {
        continue;
      }
      if (best == tenants_.size() || TagLess(nodes_[head], nodes_[tenants_[best].head])) {
        best = t;
      }
      if (oldest == tenants_.size() ||
          nodes_[head].seq < nodes_[tenants_[oldest].head].seq) {
        oldest = t;
      }
    }
    bool promoted = false;
    if (max_wait_ > 0 && oldest != best &&
        now - nodes_[tenants_[oldest].head].enqueued_at > max_wait_) {
      best = oldest;
      promoted = true;
      ++promotions_;
    }
    TenantLane& lane = tenants_[best];
    uint32_t idx = lane.head;
    Node& n = nodes_[idx];
    lane.head = n.next;
    if (lane.head == kNone) {
      lane.tail = kNone;
    }
    if (n.start_tag > vtime_) {
      vtime_ = n.start_tag;  // Virtual time: start tag of the last dispatch.
    }
    lane.dispatched_service += n.service;
    Job job;
    job.token = n.token;
    job.tenant = static_cast<TenantId>(best);
    job.service = n.service;
    job.enqueued_at = n.enqueued_at;
    job.promoted = promoted;
    FreeNode(idx);
    --size_;
    return job;
  }

  // Cumulative service dispatched on behalf of `t` (the share-ratio
  // property tests integrate this).
  iolsim::SimTime dispatched_service(TenantId t) const {
    return t < tenants_.size() ? tenants_[t].dispatched_service : 0;
  }

  uint64_t promotions() const { return promotions_; }

  void Reset() {
    for (TenantLane& lane : tenants_) {
      lane.head = lane.tail = kNone;
      lane.finish_tag = 0;
      lane.dispatched_service = 0;
    }
    nodes_.clear();
    free_head_ = kNone;
    size_ = 0;
    next_seq_ = 0;
    vtime_ = 0;
    promotions_ = 0;
  }

 private:
  static constexpr uint32_t kNone = UINT32_MAX;

  struct Node {
    uint64_t token = 0;
    iolsim::SimTime service = 0;
    iolsim::SimTime enqueued_at = 0;
    uint64_t seq = 0;
    int64_t start_tag = 0;
    uint32_t next = kNone;
  };

  // Per-tenant lane: FIFO of pooled nodes plus the SFQ finish tag.
  struct TenantLane {
    uint32_t head = kNone;
    uint32_t tail = kNone;
    uint32_t weight = 1;
    int64_t finish_tag = 0;
    iolsim::SimTime dispatched_service = 0;
  };

  TenantLane& Lane(TenantId t) {
    if (t >= tenants_.size()) {
      tenants_.resize(t + 1);
    }
    return tenants_[t];
  }

  bool TagLess(const Node& a, const Node& b) const {
    if (a.start_tag != b.start_tag) {
      return a.start_tag < b.start_tag;
    }
    return a.seq < b.seq;
  }

  uint32_t AllocNode() {
    if (free_head_ != kNone) {
      uint32_t idx = free_head_;
      free_head_ = nodes_[idx].next;
      return idx;
    }
    nodes_.emplace_back();
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  void FreeNode(uint32_t idx) {
    nodes_[idx].next = free_head_;
    free_head_ = idx;
  }

  std::vector<TenantLane> tenants_;
  std::vector<Node> nodes_;
  uint32_t free_head_ = kNone;
  size_t size_ = 0;
  uint64_t next_seq_ = 0;
  int64_t vtime_ = 0;
  iolsim::SimTime max_wait_ = 0;
  uint64_t promotions_ = 0;
};

// Binds a FairQueue to one Resource. Construction attaches (the resource's
// AcquireAsync calls start routing here); destruction detaches. The
// scheduler is work-conserving: a unit never idles while jobs are queued,
// and because every reservation is made at dispatch time, `inflight_ <
// units` implies some unit is free *now* — so a dispatched job always
// starts immediately and finishes at now + service.
class FairScheduler : public iolsim::ResourceScheduler {
 public:
  FairScheduler(iolsim::SimContext* ctx, iolsim::Resource* resource)
      : ctx_(ctx), resource_(resource) {
    resource_->set_scheduler(this);
  }

  ~FairScheduler() override {
    if (resource_->scheduler() == this) {
      resource_->set_scheduler(nullptr);
    }
  }

  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  void Admit(iolsim::Resource* resource, iolsim::EventQueue* events,
             iolsim::SimTime service, iolsim::InlineCallback done) override {
    assert(resource == resource_);
    (void)resource;
    (void)events;  // Completions ride ctx_->events(), the same queue.
    uint32_t slot = AllocSlot();
    Slot& s = slots_[slot];
    s.done = std::move(done);
    s.tenant = ctx_->active_tenant();
    ++admitted_;
    // Always enqueue, then pump: even with idle units the job must pass
    // through the tag order so it cannot overtake already-queued peers.
    queue_.Push(s.tenant, ctx_->clock().now(), service, slot);
    Pump();
  }

  FairQueue& queue() { return queue_; }
  const FairQueue& queue() const { return queue_; }

  uint64_t admitted() const { return admitted_; }
  uint64_t dispatched() const { return dispatched_; }
  size_t backlog() const { return queue_.size(); }

 private:
  static constexpr uint32_t kNoSlot = UINT32_MAX;

  struct Slot {
    iolsim::InlineCallback done;
    TenantId tenant = kDefaultTenant;
    uint32_t next_free = kNoSlot;
  };

  void Pump() {
    while (inflight_ < resource_->units() && !queue_.empty()) {
      FairQueue::Job job = queue_.Pop(ctx_->clock().now());
      ++inflight_;
      ++dispatched_;
      uint32_t slot = static_cast<uint32_t>(job.token);
      // Direct reservation: with inflight_ < units a unit is free now, so
      // this starts immediately (see class comment).
      iolsim::SimTime finish = resource_->Acquire(job.service);
      ctx_->events().ScheduleAt(finish, [this, slot] { Complete(slot); });
    }
  }

  void Complete(uint32_t slot) {
    Slot& s = slots_[slot];
    TenantId tenant = s.tenant;
    iolsim::InlineCallback done = std::move(s.done);
    FreeSlot(slot);
    --inflight_;
    // The continuation runs as its owning tenant: downstream stages (the
    // next resource hop, cache inserts) attribute to the right principal.
    ctx_->set_active_tenant(tenant);
    done();
    Pump();
  }

  uint32_t AllocSlot() {
    if (free_head_ != kNoSlot) {
      uint32_t idx = free_head_;
      free_head_ = slots_[idx].next_free;
      return idx;
    }
    slots_.emplace_back();
    return static_cast<uint32_t>(slots_.size() - 1);
  }

  void FreeSlot(uint32_t idx) {
    slots_[idx].next_free = free_head_;
    free_head_ = idx;
  }

  iolsim::SimContext* ctx_;
  iolsim::Resource* resource_;
  FairQueue queue_;
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNoSlot;
  int inflight_ = 0;
  uint64_t admitted_ = 0;
  uint64_t dispatched_ = 0;
};

}  // namespace iolqos

#endif  // SRC_QOS_FAIR_QUEUE_H_
