// QosPolicy: the per-machine policy plane tying tenants, fair schedulers,
// stage hooks, throttles, and per-tenant cache accounting together.
//
// The engine (src/driver/experiment.cc) consults the policy at three PAIO
// -style stage-hook points as a request flows through the pipeline:
//
//   on_admit         fleet front door, before the balancer — may delay the
//                    request (token-bucket throttling) or retag it
//   on_cache_lookup  every unified/proxy cache probe — per-tenant hit/miss
//                    accounting, observation hooks
//   on_transmit      response entering the link stage — may delay or
//                    reprioritize (e.g. demote a tenant mid-run)
//
// Weighted fair sharing on CPU/disk/link attaches separately via
// AttachWfq(ctx): one FairScheduler per resource, all reading this policy's
// tenant weights. Cache partitioning attaches via FileCache::SetPartitions
// with this policy's CachePlan. Everything is optional and composable —
// a SimContext with no policy attached runs the exact pre-QoS code paths.

#ifndef SRC_QOS_POLICY_H_
#define SRC_QOS_POLICY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/qos/fair_queue.h"
#include "src/qos/tenant.h"
#include "src/qos/token_bucket.h"
#include "src/simos/sim_context.h"

namespace iolqos {

// Per-tenant cache accounting, one block per cache tier (unified / proxy).
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    uint64_t lookups = hits + misses;
    return lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
  }
};

// A programmable stage hook. Register with QosPolicy::AddHook; the policy
// fans each stage event out to every hook. Hooks returning a positive delay
// from OnAdmit/OnTransmit stall that request (the policy takes the max over
// hooks, so independent rate limiters compose as the tightest one).
class StageHook {
 public:
  virtual ~StageHook() = default;
  virtual const char* name() const = 0;

  // Request at the fleet front door. Return how long to delay admission
  // (0 = admit now).
  virtual iolsim::SimTime OnAdmit(TenantId t, iolsim::SimTime now) {
    (void)t;
    (void)now;
    return 0;
  }

  // A cache probed on behalf of `t`. `proxy_tier` distinguishes the proxy
  // cache from the unified origin cache.
  virtual void OnCacheLookup(TenantId t, bool hit, bool proxy_tier,
                             iolsim::SimTime now) {
    (void)t;
    (void)hit;
    (void)proxy_tier;
    (void)now;
  }

  // Response entering transmission. Return how long to delay the transmit
  // (0 = send now).
  virtual iolsim::SimTime OnTransmit(TenantId t, uint64_t bytes,
                                     iolsim::SimTime now) {
    (void)t;
    (void)bytes;
    (void)now;
    return 0;
  }
};

// What the classifier sees for each request, at parse/issue time.
struct ClassifyContext {
  TenantId hint = kDefaultTenant;   // The workload's declared tenant.
  int64_t file = -1;                // Requested file, when already pinned.
  size_t client = 0;                // Issuing client (connection index).
};

class QosPolicy {
 public:
  using Classifier = std::function<TenantId(const ClassifyContext&)>;

  QosPolicy();
  ~QosPolicy();

  QosPolicy(const QosPolicy&) = delete;
  QosPolicy& operator=(const QosPolicy&) = delete;

  // --- Tenants --------------------------------------------------------------

  TenantRegistry& registry() { return registry_; }
  const TenantRegistry& registry() const { return registry_; }

  TenantId Register(std::string name, uint32_t weight = 1);

  // Reprioritization: updates the registry and every attached fair queue.
  void SetWeight(TenantId t, uint32_t weight);

  // --- Classification -------------------------------------------------------

  // Installs the parse-time classifier; default is identity on the hint.
  void set_classifier(Classifier c) { classifier_ = std::move(c); }

  TenantId Classify(const ClassifyContext& cc) const {
    return classifier_ ? classifier_(cc) : cc.hint;
  }

  // --- Weighted fair sharing ------------------------------------------------

  // Attaches a fair scheduler to one resource (weights seeded from the
  // registry). The scheduler lives until the policy is destroyed.
  FairScheduler* AttachFairQueue(iolsim::SimContext* ctx, iolsim::Resource* resource);

  // Convenience: WFQ on the machine's CPU, disk, and link, and registers
  // this policy on the context (ctx->qos()) so stage-hook sites find it.
  void AttachWfq(iolsim::SimContext* ctx);

  // Bounded-wait starvation guard applied to all attached fair queues
  // (current and future). 0 disables.
  void SetStarvationBound(iolsim::SimTime max_wait);

  const std::vector<std::unique_ptr<FairScheduler>>& schedulers() const {
    return schedulers_;
  }

  uint64_t promotions() const;  // Starvation-guard promotions, all queues.

  // --- Throttling -----------------------------------------------------------

  // Installs/replaces the built-in front-door token bucket for `t`
  // (tokens = requests). Applied at on_admit, composing with hook delays.
  void SetThrottle(TenantId t, double tokens_per_sec, double burst_tokens);

  // --- Stage hooks ----------------------------------------------------------

  // Registers an external hook (not owned; must outlive the policy).
  void AddHook(StageHook* hook) { hooks_.push_back(hook); }

  // Fired by the engine at the fleet front door. Returns the admission
  // delay (max over throttle + hooks).
  iolsim::SimTime OnAdmit(TenantId t, iolsim::SimTime now);

  // Fired by FileCache on every probe when attached (see FileCache::
  // AttachQos). Updates per-tenant counters, then notifies hooks.
  void OnCacheLookup(TenantId t, bool hit, bool proxy_tier, iolsim::SimTime now);

  // Fired by the HTTP server's transmit stage. Returns the transmit delay.
  iolsim::SimTime OnTransmit(TenantId t, uint64_t bytes, iolsim::SimTime now);

  // Fired by FileCache when an entry owned by `t` is evicted.
  void OnCacheEviction(TenantId t, bool proxy_tier);

  // --- Per-tenant accounting ------------------------------------------------

  const CacheCounters& cache_counters(TenantId t, bool proxy_tier = false) const;
  uint64_t admit_delays() const { return admit_delays_; }
  uint64_t transmit_delays() const { return transmit_delays_; }

 private:
  CacheCounters& MutableCounters(TenantId t, bool proxy_tier);

  TenantRegistry registry_;
  Classifier classifier_;
  std::vector<std::unique_ptr<FairScheduler>> schedulers_;
  std::vector<StageHook*> hooks_;
  std::vector<std::unique_ptr<TokenBucket>> throttles_;  // By tenant; null = none.
  std::vector<CacheCounters> unified_counters_;
  std::vector<CacheCounters> proxy_counters_;
  iolsim::SimTime starvation_bound_ = 0;
  uint64_t admit_delays_ = 0;
  uint64_t transmit_delays_ = 0;
};

}  // namespace iolqos

#endif  // SRC_QOS_POLICY_H_
