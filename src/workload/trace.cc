#include "src/workload/trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <unordered_set>

namespace iolwl {

namespace {

constexpr uint32_t kMinFileBytes = 128;

// Request-weighted mean size under Zipf weights.
double WeightedMean(const std::vector<double>& weights, const std::vector<double>& sizes) {
  double num = 0;
  double den = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    num += weights[i] * sizes[i];
    den += weights[i];
  }
  return num / den;
}

}  // namespace

TraceSpec EceSpec() {
  TraceSpec s;
  s.name = "ECE";
  s.num_files = 10195;
  s.total_bytes = 523ull * 1024 * 1024;
  s.num_requests = 783529;
  s.mean_request_bytes = 23 * 1024;
  s.zipf_alpha = 0.95;
  s.seed = 101;
  return s;
}

TraceSpec CsSpec() {
  TraceSpec s;
  s.name = "CS";
  s.num_files = 26948;
  s.total_bytes = 933ull * 1024 * 1024;
  s.num_requests = 3746842;
  s.mean_request_bytes = 20 * 1024;
  s.zipf_alpha = 0.95;
  s.seed = 102;
  return s;
}

TraceSpec MergedSpec() {
  TraceSpec s;
  s.name = "MERGED";
  s.num_files = 37703;
  s.total_bytes = 1418ull * 1024 * 1024;
  s.num_requests = 2290909;
  s.mean_request_bytes = 17 * 1024;
  s.zipf_alpha = 0.9;
  s.seed = 103;
  return s;
}

TraceSpec SubtraceSpec() {
  TraceSpec s;
  s.name = "MERGED-150MB";
  s.num_files = 5459;
  s.total_bytes = 150ull * 1024 * 1024;
  s.num_requests = 28403;
  s.mean_request_bytes = 15 * 1024;
  // Weaker skew than the full-campus logs: the 150 MB subtrace is the
  // poor-locality portion of MERGED (the paper's disk-bound regime).
  s.zipf_alpha = 0.80;
  s.seed = 104;
  return s;
}

TraceSpec Scaled(const TraceSpec& spec, double scale) {
  TraceSpec s = spec;
  s.name = spec.name + "-scaled";
  s.num_files = static_cast<size_t>(spec.num_files * scale);
  if (s.num_files < 16) {
    s.num_files = 16;
  }
  s.total_bytes = static_cast<uint64_t>(spec.total_bytes * scale);
  s.num_requests = static_cast<uint64_t>(spec.num_requests * scale);
  if (s.num_requests < 1000) {
    s.num_requests = 1000;
  }
  return s;
}

Trace Trace::Generate(const TraceSpec& spec) {
  Trace t;
  t.spec_ = spec;
  iolsim::Rng rng(spec.seed);
  size_t f = spec.num_files;

  // Zipf popularity weights by rank.
  std::vector<double> weights(f);
  for (size_t i = 0; i < f; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), spec.zipf_alpha);
  }

  // Raw lognormal sizes (shape only; scaled to the exact total later).
  std::vector<double> raw(f);
  for (size_t i = 0; i < f; ++i) {
    raw[i] = rng.NextLognormal(0.0, spec.size_sigma);
  }

  // Popularity-size correlation: size_i = raw_i * ((i+1)/f)^beta. beta > 0
  // makes popular files smaller. Fit beta by bisection so the
  // request-weighted mean size matches the spec after scaling to the total.
  double target_ratio = static_cast<double>(spec.mean_request_bytes) * f /
                        static_cast<double>(spec.total_bytes);
  auto ratio_for = [&](double beta) {
    std::vector<double> sizes(f);
    double sum = 0;
    for (size_t i = 0; i < f; ++i) {
      sizes[i] = raw[i] * std::pow(static_cast<double>(i + 1) / f, beta);
      sum += sizes[i];
    }
    // ratio = weighted_mean / unweighted_mean (scale-invariant).
    return WeightedMean(weights, sizes) / (sum / f);
  };

  double lo = 0.0;
  double hi = 4.0;
  double beta = 0.0;
  if (ratio_for(0.0) > target_ratio) {
    for (int iter = 0; iter < 48; ++iter) {
      beta = 0.5 * (lo + hi);
      if (ratio_for(beta) > target_ratio) {
        lo = beta;
      } else {
        hi = beta;
      }
    }
  }

  // Final sizes, scaled so the total matches the spec exactly (modulo
  // rounding and the minimum size clamp).
  std::vector<double> sized(f);
  double sum = 0;
  for (size_t i = 0; i < f; ++i) {
    sized[i] = raw[i] * std::pow(static_cast<double>(i + 1) / f, beta);
    sum += sized[i];
  }
  double scale = static_cast<double>(spec.total_bytes) / sum;
  t.file_sizes_.resize(f);
  t.total_bytes_ = 0;
  for (size_t i = 0; i < f; ++i) {
    auto sz = static_cast<uint32_t>(sized[i] * scale);
    if (sz < kMinFileBytes) {
      sz = kMinFileBytes;
    }
    t.file_sizes_[i] = sz;
    t.total_bytes_ += sz;
  }

  // Sample the request sequence from the Zipf weights (inverse-CDF with
  // binary search; deterministic in the seed).
  std::vector<double> cdf(f);
  double acc = 0;
  for (size_t i = 0; i < f; ++i) {
    acc += weights[i];
    cdf[i] = acc;
  }
  t.requests_.resize(spec.num_requests);
  for (uint64_t r = 0; r < spec.num_requests; ++r) {
    double u = rng.NextDouble() * acc;
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    t.requests_[r] = static_cast<uint32_t>(it - cdf.begin());
  }
  return t;
}

uint64_t Trace::MeanRequestBytes() const {
  if (requests_.empty()) {
    return 0;
  }
  uint64_t total = 0;
  for (uint32_t rank : requests_) {
    total += file_sizes_[rank];
  }
  return total / requests_.size();
}

Trace Trace::Prefix(uint64_t max_bytes) const {
  Trace t;
  t.spec_ = spec_;
  t.spec_.name = spec_.name + "-prefix";
  t.file_sizes_ = file_sizes_;

  // Take the log prefix whose distinct-data size fits the budget — the
  // paper's subtrace methodology ("use a portion of the MERGED access log
  // that corresponds to a 150MB data set size, and then use prefixes of it
  // to generate input streams with smaller data set sizes"). Truncating
  // (rather than filtering) keeps the request-size mix of the full log.
  std::unordered_set<uint32_t> admitted;
  uint64_t bytes = 0;
  for (uint32_t rank : requests_) {
    if (admitted.count(rank) == 0) {
      if (bytes + file_sizes_[rank] > max_bytes) {
        break;
      }
      admitted.insert(rank);
      bytes += file_sizes_[rank];
    }
    t.requests_.push_back(rank);
  }
  t.total_bytes_ = bytes;
  return t;
}

std::vector<iolfs::FileId> Trace::Materialize(iolfs::SimFileSystem* fs) const {
  std::vector<iolfs::FileId> ids(file_sizes_.size());
  for (size_t i = 0; i < file_sizes_.size(); ++i) {
    ids[i] = fs->CreateFile(spec_.name + "/f" + std::to_string(i), file_sizes_[i]);
  }
  return ids;
}

std::vector<Trace::CdfPoint> Trace::Cdf(const std::vector<size_t>& ks) const {
  // Per-rank request counts.
  std::vector<uint64_t> counts(file_sizes_.size(), 0);
  for (uint32_t rank : requests_) {
    counts[rank]++;
  }
  // Order files by observed request count (descending), as in Figure 7.
  std::vector<size_t> order(file_sizes_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return counts[a] > counts[b]; });

  uint64_t total_data = 0;
  for (uint32_t s : file_sizes_) {
    total_data += s;
  }
  std::vector<CdfPoint> points;
  uint64_t req_acc = 0;
  uint64_t data_acc = 0;
  size_t next_k = 0;
  std::vector<size_t> sorted_ks = ks;
  std::sort(sorted_ks.begin(), sorted_ks.end());
  for (size_t i = 0; i < order.size() && next_k < sorted_ks.size(); ++i) {
    req_acc += counts[order[i]];
    data_acc += file_sizes_[order[i]];
    if (i + 1 == sorted_ks[next_k]) {
      points.push_back(CdfPoint{
          i + 1,
          static_cast<double>(req_acc) / static_cast<double>(requests_.size()),
          static_cast<double>(data_acc) / static_cast<double>(total_data)});
      ++next_k;
    }
  }
  return points;
}

double TimestampedLog::MeanArrivalsPerSec() const {
  if (entries.size() < 2) {
    return 0;
  }
  iolsim::SimTime span = entries.back().at - entries.front().at;
  if (span <= 0) {
    return 0;
  }
  return static_cast<double>(entries.size() - 1) / iolsim::ToSeconds(span);
}

std::string TimestampedLog::ToText() const {
  std::string out;
  char line[64];
  for (const Entry& e : entries) {
    std::snprintf(line, sizeof(line), "%.9f %u\n", iolsim::ToSeconds(e.at), e.rank);
    out += line;
  }
  return out;
}

TimestampedLog TimestampedLog::Parse(const std::string& text) {
  TimestampedLog log;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') {
      continue;
    }
    double seconds = 0;
    long long rank = 0;  // Signed so "-1" is rejected instead of wrapping.
    int consumed = 0;
    // 9e9 seconds (~285 simulated years) keeps seconds * kSecond well
    // inside SimTime; anything larger would overflow llround into a
    // garbage negative instant.
    if (std::sscanf(line.c_str() + start, "%lf %lld %n", &seconds, &rank, &consumed) != 2 ||
        !std::isfinite(seconds) || seconds < 0 || seconds > 9.0e9 || rank < 0 ||
        rank > 0xffffffffll ||
        line.find_first_not_of(" \t\r", start + consumed) != std::string::npos) {
      return TimestampedLog{};  // Malformed line: reject the whole log.
    }
    // Round (not truncate): the text form is decimal seconds, and
    // truncation would shave a nanosecond off exactly-representable
    // instants, breaking the ToText/Parse round trip.
    log.entries.push_back(
        Entry{static_cast<iolsim::SimTime>(
                  std::llround(seconds * static_cast<double>(iolsim::kSecond))),
              static_cast<uint32_t>(rank)});
  }
  std::stable_sort(log.entries.begin(), log.entries.end(),
                   [](const Entry& a, const Entry& b) { return a.at < b.at; });
  return log;
}

TimestampedLog SynthesizeArrivals(const Trace& trace, double arrivals_per_sec,
                                  uint64_t seed) {
  TimestampedLog log;
  if (!(arrivals_per_sec > 0)) {
    return log;
  }
  iolsim::Rng rng(seed);
  iolsim::SimTime at = 0;
  log.entries.reserve(trace.requests().size());
  for (uint32_t rank : trace.requests()) {
    at += iolsim::ExponentialInterarrival(&rng, arrivals_per_sec);
    log.entries.push_back(TimestampedLog::Entry{at, rank});
  }
  return log;
}

}  // namespace iolwl
