// Synthetic Web traces calibrated to the paper's access logs (Section 5.4,
// Figures 7 and 9).
//
// The original Rice University logs are not available; what the experiments
// depend on is the joint distribution of file popularity and file size:
// how many requests the top-k files absorb, and how much of the data set
// they cover. We synthesize traces with Zipf-like popularity and lognormal
// sizes, with a popularity-size correlation exponent fitted so that the
// published aggregates hold: total bytes, file count, request count and
// mean *request* size (request-weighted mean file size).

#ifndef SRC_WORKLOAD_TRACE_H_
#define SRC_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fs/sim_file_system.h"
#include "src/simos/clock.h"
#include "src/simos/rng.h"

namespace iolwl {

// Published aggregates for one access log.
struct TraceSpec {
  std::string name;
  size_t num_files = 0;
  uint64_t total_bytes = 0;
  uint64_t num_requests = 0;
  uint64_t mean_request_bytes = 0;
  double zipf_alpha = 1.0;       // Popularity skew.
  double size_sigma = 1.4;       // Lognormal shape of file sizes.
  uint64_t seed = 1;
};

// The paper's three logs (Figure 7) and the 150 MB subtrace (Figure 9).
TraceSpec EceSpec();
TraceSpec CsSpec();
TraceSpec MergedSpec();
TraceSpec SubtraceSpec();

// A scaled version of `spec` with file and request counts multiplied by
// `scale` (total bytes scale along). Used to keep host run times sensible
// while preserving distribution shape; EXPERIMENTS.md records the scale.
TraceSpec Scaled(const TraceSpec& spec, double scale);

// A generated trace: per-file sizes in popularity-rank order (rank 0 is the
// most requested file) and a request sequence of rank indices.
class Trace {
 public:
  // Generates sizes and requests from the spec (deterministic per seed).
  static Trace Generate(const TraceSpec& spec);

  const TraceSpec& spec() const { return spec_; }
  const std::vector<uint32_t>& file_sizes() const { return file_sizes_; }
  const std::vector<uint32_t>& requests() const { return requests_; }

  uint64_t total_bytes() const { return total_bytes_; }

  // Request-weighted mean file size (should approximate the spec's
  // mean_request_bytes).
  uint64_t MeanRequestBytes() const;

  // A prefix trace covering approximately `max_bytes` of distinct data:
  // restricts requests to the most popular files whose cumulative size
  // stays within the budget (the Section 5.5 subtrace-prefix methodology).
  Trace Prefix(uint64_t max_bytes) const;

  // Materializes the trace's files in `fs`; returns ids in rank order.
  std::vector<iolfs::FileId> Materialize(iolfs::SimFileSystem* fs) const;

  // Cumulative distribution report used by the Figure 7 / Figure 9
  // benchmarks: fraction of requests and of data covered by the top-k
  // files, for a list of k values.
  struct CdfPoint {
    size_t top_files;
    double request_fraction;
    double data_fraction;
  };
  std::vector<CdfPoint> Cdf(const std::vector<size_t>& ks) const;

 private:
  TraceSpec spec_;
  std::vector<uint32_t> file_sizes_;  // By popularity rank.
  std::vector<uint32_t> requests_;    // Sequence of rank indices.
  uint64_t total_bytes_ = 0;
};

// A timestamped access log: arrival instants paired with popularity ranks,
// in nondecreasing time order. This is what open-loop trace replay consumes
// (ioldrv::TraceReplay): arrival times come from the log instead of a
// fitted arrival model, so latency-vs-load curves reproduce real traffic.
struct TimestampedLog {
  struct Entry {
    iolsim::SimTime at = 0;  // Arrival instant (simulated nanoseconds).
    uint32_t rank = 0;       // Popularity rank of the requested file.
  };
  std::vector<Entry> entries;

  // Mean arrival rate over the log's span; 0 for logs shorter than two
  // entries or with zero span.
  double MeanArrivalsPerSec() const;

  // Text form, one "<arrival-seconds> <rank>" pair per line — the common
  // denominator of real access-log exports. ToText/Parse round-trip.
  std::string ToText() const;
  // Parses the text form; '#' comment lines and blank lines are skipped.
  // Entries are sorted into time order. Malformed lines return an empty
  // log (entries.empty()) rather than a partial one.
  static TimestampedLog Parse(const std::string& text);
};

// Synthesizes arrival timestamps for `trace`'s request sequence: a Poisson
// process at `arrivals_per_sec`, deterministic in `seed`. The result pairs
// each of the trace's requests, in order, with an arrival instant — the
// bridge from the synthesized logs of Figure 7 to timestamped replay.
TimestampedLog SynthesizeArrivals(const Trace& trace, double arrivals_per_sec,
                                  uint64_t seed);

}  // namespace iolwl

#endif  // SRC_WORKLOAD_TRACE_H_
