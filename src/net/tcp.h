// TCP connection model (Sections 5.1, 5.2, 5.7).
//
// Models the CPU-side costs of the send path plus the memory footprint of
// socket send buffers — the two things the paper's experiments vary:
//
//  * Copy-based sockets (POSIX write/writev): data is copied into kernel
//    send-buffer mbuf clusters (per-byte copy cost), checksummed on every
//    transmission, and the connection pins Tss bytes of send-buffer memory
//    while open — memory that comes straight out of the file cache.
//  * IO-Lite sockets (IOL_write): payload moves by reference into
//    mbuf-encapsulated IO-Lite buffers; the checksum module may serve the
//    checksum from its generation-keyed cache; no send-buffer memory is
//    pinned beyond mbuf headers.
//
// Wire time and queueing on the shared NIC array are staged by
// TransmitAsync onto the SimContext's link resource, one event per TCP
// segment (the network is a contended resource, not a CPU cost).

#ifndef SRC_NET_TCP_H_
#define SRC_NET_TCP_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/iolite/aggregate.h"
#include "src/net/checksum.h"
#include "src/net/mbuf.h"
#include "src/simos/inline_function.h"
#include "src/simos/sim_context.h"

namespace iolnet {

// An alternate wire a connection transmits on, instead of the machine's
// shared front link (SimContext::link()). The proxy tier uses this for its
// backhaul: origin responses to the proxy occupy the backhaul resource at
// the backhaul's payload rate, per MSS segment, while client-facing
// responses keep contending for the front link. The spec must outlive every
// connection pointing at it.
struct LinkSpec {
  iolsim::Resource* link = nullptr;
  double bytes_per_sec = 0;  // Effective payload rate of this wire.
  // WireTime(MSS), cached by the owner (see Prime): every non-final
  // segment costs exactly this, so the per-segment hot path skips the FP
  // division — mirroring NetworkSubsystem::mss_wire_time_ for the default
  // link.
  iolsim::SimTime mss_wire_time = 0;

  iolsim::SimTime WireTime(uint64_t n) const {
    if (n == 0) {
      return 0;
    }
    // A zero rate would cast inf to SimTime (UB) and corrupt the clock;
    // catch the unconfigured spec at the source.
    assert(bytes_per_sec > 0 && "LinkSpec used before its rate was set");
    return static_cast<iolsim::SimTime>(static_cast<double>(n) / bytes_per_sec *
                                        iolsim::kSecond);
  }

  // Precomputes the cached per-MSS wire time; call after setting the rate.
  void Prime(int mtu_bytes) { mss_wire_time = WireTime(static_cast<uint64_t>(mtu_bytes)); }
};

// Shared state of the simulated network stack.
class NetworkSubsystem {
 public:
  NetworkSubsystem(iolsim::SimContext* ctx, bool checksum_cache_enabled,
                   size_t checksum_cache_entries = 65536)
      : ctx_(ctx),
        checksum_(ctx, checksum_cache_enabled, checksum_cache_entries),
        mss_wire_time_(ctx->cost().WireTime(
            static_cast<uint64_t>(ctx->cost().params().mtu_bytes))) {}

  NetworkSubsystem(const NetworkSubsystem&) = delete;
  NetworkSubsystem& operator=(const NetworkSubsystem&) = delete;

  iolsim::SimContext* ctx() const { return ctx_; }
  ChecksumModule& checksum() { return checksum_; }

  int open_connections() const { return open_connections_; }

  // Memory currently pinned by socket send buffers (copy-based sockets).
  uint64_t send_buffer_bytes() const {
    return ctx_->memory().reservation("socket_send_buffers");
  }

  // High-water mark of the pooled in-flight transmission states (one per
  // concurrently transmitting response; pool-stats tests read this).
  size_t transmit_pool_size() const { return transmits_.size(); }

 private:
  friend class TcpConnection;

  // One in-flight per-segment transmission, pooled on a free list so the
  // per-MSS-segment hot path re-arms the same state instead of building a
  // closure chain (one heap allocation per segment, pre-pool).
  struct TransmitState {
    size_t remaining = 0;
    // Null for the machine's front link; a connection's LinkSpec otherwise.
    const LinkSpec* link = nullptr;
    iolsim::InlineCallback done;
    uint32_t next_free = UINT32_MAX;
  };

  uint32_t AcquireTransmit(size_t remaining, const LinkSpec* link,
                           iolsim::InlineCallback done);
  // Stages the next MSS-sized segment of `idx` onto the shared link.
  void TransmitSegment(uint32_t idx);

  iolsim::SimContext* ctx_;
  ChecksumModule checksum_;
  int open_connections_ = 0;
  std::vector<TransmitState> transmits_;
  uint32_t free_transmit_ = UINT32_MAX;
  // WireTime(MSS), precomputed: every non-final segment of every response
  // costs exactly this, so the per-segment hot path skips the FP math.
  iolsim::SimTime mss_wire_time_;
};

class TcpConnection {
 public:
  // `iolite_sockets` selects the IO-Lite data path for this connection.
  TcpConnection(NetworkSubsystem* net, bool iolite_sockets);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // Connection establishment: SYN handshake + PCB setup costs; copy-based
  // connections reserve the Tss send buffer.
  void Connect();

  // Termination; releases the send buffer reservation.
  void Close();

  bool connected() const { return connected_; }

  // Receive path for a client request of `n` bytes: early-demultiplexed by
  // the packet filter, one small copy to the application for the copy
  // path is charged by the HTTP layer, not here.
  void ReceiveRequest(size_t n);

  // POSIX-style send: copies `src` into the kernel send buffer, checksums
  // every byte, charges per-packet processing. Returns bytes queued.
  size_t SendCopy(const iolite::Aggregate& src);

  // writev(2)-style gathered copy send: response header from private
  // memory plus body (e.g. an mmap'd file window or cache data), copied and
  // checksummed as one unit.
  size_t SendGatheredCopy(const char* header, size_t header_len, const iolite::Aggregate& body);

  // writev(2)-style gathered copy send with both iovecs in private memory
  // (e.g. header + a CGI response buffer).
  size_t SendPrivateCopy(const char* a, size_t na, const char* b, size_t nb);

  // IO-Lite send: payload by reference, checksum possibly served from the
  // generation-keyed cache, per-packet processing. Returns bytes queued.
  size_t SendAggregate(const iolite::Aggregate& agg);

  // Routes this connection's transmissions over `spec` instead of the
  // machine's front link (null restores the default). The spec must outlive
  // the connection's last transmission.
  void set_link(const LinkSpec* spec) { link_ = spec; }

  // Stages `n` queued payload bytes onto the shared link as MSS-sized
  // segments. Each segment is a separate acquisition of the link resource,
  // reserved from the previous segment's completion event, so concurrent
  // transmissions interleave at segment granularity instead of serializing
  // whole responses. `done` runs when the last segment has left the wire.
  // The CPU-side costs were already charged by the Send* call that queued
  // the bytes; this models only wire occupancy. The per-segment state rides
  // in the NetworkSubsystem's TransmitState pool: no allocation per segment
  // or per transmission.
  void TransmitAsync(size_t n, iolsim::InlineCallback done);

  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  void ChargePackets(size_t n);
  // Ensures the scratch send buffer holds `n` bytes, growing geometrically
  // and without value-initializing storage that is overwritten anyway.
  char* Scratch(size_t n);

  NetworkSubsystem* net_;
  bool iolite_sockets_;
  const LinkSpec* link_ = nullptr;  // Null: the machine's front link.
  bool connected_ = false;
  uint64_t bytes_sent_ = 0;
  // Scratch kernel send buffer for the copy path (reused across sends).
  std::unique_ptr<char[]> scratch_;
  size_t scratch_size_ = 0;
};

// Adds symmetric one-way delay between clients and server (Section 5.7's
// "delay routers"). Pure latency: used by the closed-loop driver to compute
// response completion times.
struct DelayRouter {
  iolsim::SimTime one_way_delay = 0;
  iolsim::SimTime RoundTrip() const { return 2 * one_way_delay; }
};

}  // namespace iolnet

#endif  // SRC_NET_TCP_H_
