// BSD-style mbufs encapsulating IO-Lite buffers (Section 4.1).
//
// The prototype keeps the mbuf abstraction so the network stack works
// unmodified: small items (packet headers) are stored inline in the mbuf;
// performance-critical bulk data resides in IO-Lite buffers referenced
// through the mbuf's out-of-line ("external/cluster") pointer, here a Slice
// holding a buffer reference.

#ifndef SRC_NET_MBUF_H_
#define SRC_NET_MBUF_H_

#include <cassert>
#include <cstring>

#include "src/iolite/slice.h"
#include "src/iolite/small_vec.h"

namespace iolnet {

class Mbuf {
 public:
  static constexpr size_t kInlineCapacity = 104;  // MLEN-ish in 4.4BSD.

  // An mbuf with `n` bytes of inline data.
  static Mbuf Inline(const void* data, size_t n) {
    assert(n <= kInlineCapacity);
    Mbuf m;
    m.inline_len_ = n;
    std::memcpy(m.inline_data_, data, n);
    return m;
  }

  // An mbuf whose payload lives out-of-line in an IO-Lite buffer.
  static Mbuf External(iolite::Slice slice) {
    Mbuf m;
    m.ext_ = std::move(slice);
    return m;
  }

  bool is_external() const { return !ext_.empty(); }
  size_t length() const { return is_external() ? ext_.length() : inline_len_; }
  const char* data() const { return is_external() ? ext_.data() : inline_data_; }
  const iolite::Slice& external_slice() const { return ext_; }

 private:
  Mbuf() = default;

  char inline_data_[kInlineCapacity] = {};
  size_t inline_len_ = 0;
  iolite::Slice ext_;
};

// A packet: chain of mbufs (header mbuf + payload mbufs).
class MbufChain {
 public:
  void Append(Mbuf m) {
    total_ += m.length();
    mbufs_.push_back(std::move(m));
  }

  size_t length() const { return total_; }
  const iolite::SmallVec<Mbuf, 4>& mbufs() const { return mbufs_; }
  bool empty() const { return mbufs_.empty(); }

  // Builds a chain from an aggregate: one external mbuf per slice. No data
  // is touched; the buffers move by reference.
  static MbufChain FromAggregate(const iolite::Aggregate& agg) {
    MbufChain chain;
    for (const iolite::Slice& s : agg.slices()) {
      chain.Append(Mbuf::External(s));
    }
    return chain;
  }

 private:
  // Inline storage: a typical packet is one header mbuf plus a handful of
  // external payload mbufs, so chain construction touches no allocator.
  iolite::SmallVec<Mbuf, 4> mbufs_;
  size_t total_ = 0;
};

}  // namespace iolnet

#endif  // SRC_NET_MBUF_H_
