// Internet checksum (RFC 1071) and the IO-Lite checksum cache (Section 3.9).
//
// Because IO-Lite buffers are immutable and carry generation numbers, the
// pair (buffer id, generation) uniquely identifies buffer *contents*
// system-wide. The TCP/UDP checksum module exploits this: it caches the
// checksum computed for each slice of a buffer aggregate, and when the same
// slice is transmitted again the cached value is reused — eliminating the
// last data-touching operation on the static-content fast path.
//
// Checksums are really computed over the real bytes; partial sums are
// combined with correct odd-offset folding so the cached per-slice sums
// compose into the exact end-to-end checksum.

#ifndef SRC_NET_CHECKSUM_H_
#define SRC_NET_CHECKSUM_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "src/iolite/aggregate.h"
#include "src/simos/pool_allocator.h"
#include "src/simos/sim_context.h"

namespace iolnet {

// One's-complement 32-bit accumulation of `n` bytes starting at `data`,
// assuming the run begins at an even byte offset within the message.
uint32_t ChecksumAccumulate(const char* data, size_t n);

// Folds a 32-bit accumulation into the 16-bit one's-complement sum.
uint16_t ChecksumFold(uint32_t sum);

// Byte-swaps a partial sum; needed when a partial sum is placed at an odd
// byte offset within the surrounding message.
uint32_t ChecksumSwap(uint32_t sum);

// LRU-bounded cache of per-slice partial checksums. List and map nodes come
// from freelist pools: at capacity, every Store recycles the evicted
// entry's nodes, so the steady state (one fresh header generation per
// transmission) runs without heap traffic.
class ChecksumCache {
 public:
  explicit ChecksumCache(size_t capacity = 65536) : capacity_(capacity) {}

  struct Key {
    uint64_t buffer_id;
    uint32_t generation;
    uint64_t offset;
    uint64_t length;
    bool operator==(const Key&) const = default;
  };

  // Returns true and sets *sum on a hit.
  bool Lookup(const Key& key, uint32_t* sum);
  void Store(const Key& key, uint32_t sum);

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  void Clear();

 private:
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.buffer_id * 0x9e3779b97f4a7c15ull;
      h ^= (static_cast<uint64_t>(k.generation) << 32) ^ k.offset;
      h *= 0xbf58476d1ce4e5b9ull;
      h ^= k.length;
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };

  using LruList = std::list<Key, iolsim::PoolAllocator<Key>>;
  using MapEntry = std::pair<uint32_t, LruList::iterator>;

  size_t capacity_;
  LruList lru_;
  std::unordered_map<Key, MapEntry, KeyHash, std::equal_to<Key>,
                     iolsim::PoolAllocator<std::pair<const Key, MapEntry>>>
      map_;
};

// The checksum module used by the TCP send path. When a cache is attached,
// per-slice sums of *sealed, generation-stamped* buffers are cached; CPU
// cost is charged only for bytes actually summed.
class ChecksumModule {
 public:
  // `cache_entries` bounds the LRU cache (tests shrink it to reach the
  // at-capacity recycling steady state quickly).
  ChecksumModule(iolsim::SimContext* ctx, bool cache_enabled, size_t cache_entries = 65536)
      : ctx_(ctx), cache_enabled_(cache_enabled), cache_(cache_entries) {}

  // Computes the Internet checksum of the aggregate's contents.
  uint16_t Checksum(const iolite::Aggregate& agg);

  bool cache_enabled() const { return cache_enabled_; }
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }
  ChecksumCache& cache() { return cache_; }

 private:
  iolsim::SimContext* ctx_;
  bool cache_enabled_;
  ChecksumCache cache_;
};

}  // namespace iolnet

#endif  // SRC_NET_CHECKSUM_H_
