#include "src/net/tcp.h"

#include <cassert>
#include <cstring>

namespace iolnet {

TcpConnection::TcpConnection(NetworkSubsystem* net, bool iolite_sockets)
    : net_(net), iolite_sockets_(iolite_sockets) {}

TcpConnection::~TcpConnection() {
  if (connected_) {
    Close();
  }
}

void TcpConnection::Connect() {
  assert(!connected_);
  iolsim::SimContext* ctx = net_->ctx_;
  ctx->ChargeCpu(ctx->cost().TcpSetupCost());
  ctx->stats().tcp_connections++;
  if (!iolite_sockets_) {
    // Copy-based sockets need real send-buffer memory sized to the
    // bandwidth-delay product (Tss). IO-Lite send queues hold references.
    ctx->memory().Reserve("socket_send_buffers",
                          ctx->cost().params().socket_send_buffer_bytes);
  } else {
    // Mbuf headers only ("a small amount of memory is required to hold
    // mbuf structures", Section 5.7).
    ctx->memory().Reserve("socket_send_buffers", 2048);
  }
  net_->open_connections_++;
  connected_ = true;
}

void TcpConnection::Close() {
  assert(connected_);
  iolsim::SimContext* ctx = net_->ctx_;
  if (!iolite_sockets_) {
    ctx->memory().Release("socket_send_buffers",
                          ctx->cost().params().socket_send_buffer_bytes);
  } else {
    ctx->memory().Release("socket_send_buffers", 2048);
  }
  net_->open_connections_--;
  connected_ = false;
}

void TcpConnection::ReceiveRequest(size_t n) {
  iolsim::SimContext* ctx = net_->ctx_;
  // Early demultiplexing: the packet filter classifies the packet to an
  // I/O stream (and hence an ACL) before it is stored (Section 3.6).
  ctx->ChargeCpu(ctx->cost().PacketProcessingCost(n));
  ctx->stats().packets_sent++;  // Request packets also traverse the stack.
}

void TcpConnection::ChargePackets(size_t n) {
  iolsim::SimContext* ctx = net_->ctx_;
  ctx->ChargeCpu(ctx->cost().PacketProcessingCost(n));
  uint64_t packets =
      (n + ctx->cost().params().mtu_bytes - 1) / ctx->cost().params().mtu_bytes;
  ctx->stats().packets_sent += packets == 0 ? 1 : packets;
}

size_t TcpConnection::SendCopy(const iolite::Aggregate& src) {
  assert(connected_);
  iolsim::SimContext* ctx = net_->ctx_;
  size_t n = src.size();
  if (scratch_size_ < n) {
    scratch_ = std::make_unique<char[]>(n);
    scratch_size_ = n;
  }
  // Copy into kernel send-buffer clusters...
  src.CopyTo(scratch_.get());
  ctx->ChargeCpu(ctx->cost().CopyCost(n));
  ctx->stats().bytes_copied += n;
  ctx->stats().copy_ops++;
  // ...and checksum the private copy. Its contents have no system-wide
  // identity, so the checksum cache cannot apply.
  ChecksumAccumulate(scratch_.get(), n);
  ctx->ChargeCpu(ctx->cost().ChecksumCost(n));
  ctx->stats().bytes_checksummed += n;
  ctx->stats().checksum_ops++;
  ChargePackets(n);
  bytes_sent_ += n;
  ctx->stats().bytes_sent += n;
  return n;
}

size_t TcpConnection::SendGatheredCopy(const char* header, size_t header_len,
                                       const iolite::Aggregate& body) {
  assert(connected_);
  iolsim::SimContext* ctx = net_->ctx_;
  size_t n = header_len + body.size();
  if (scratch_size_ < n) {
    scratch_ = std::make_unique<char[]>(n);
    scratch_size_ = n;
  }
  std::memcpy(scratch_.get(), header, header_len);
  body.CopyTo(scratch_.get() + header_len);
  ctx->ChargeCpu(ctx->cost().CopyCost(n));
  ctx->stats().bytes_copied += n;
  ctx->stats().copy_ops++;
  ChecksumAccumulate(scratch_.get(), n);
  ctx->ChargeCpu(ctx->cost().ChecksumCost(n));
  ctx->stats().bytes_checksummed += n;
  ctx->stats().checksum_ops++;
  ChargePackets(n);
  bytes_sent_ += n;
  ctx->stats().bytes_sent += n;
  return n;
}

size_t TcpConnection::SendPrivateCopy(const char* a, size_t na, const char* b, size_t nb) {
  assert(connected_);
  iolsim::SimContext* ctx = net_->ctx_;
  size_t n = na + nb;
  if (scratch_size_ < n) {
    scratch_ = std::make_unique<char[]>(n);
    scratch_size_ = n;
  }
  std::memcpy(scratch_.get(), a, na);
  std::memcpy(scratch_.get() + na, b, nb);
  ctx->ChargeCpu(ctx->cost().CopyCost(n));
  ctx->stats().bytes_copied += n;
  ctx->stats().copy_ops++;
  ChecksumAccumulate(scratch_.get(), n);
  ctx->ChargeCpu(ctx->cost().ChecksumCost(n));
  ctx->stats().bytes_checksummed += n;
  ctx->stats().checksum_ops++;
  ChargePackets(n);
  bytes_sent_ += n;
  ctx->stats().bytes_sent += n;
  return n;
}

void TcpConnection::TransmitAsync(size_t n, std::function<void()> done) {
  if (n == 0) {
    // Header-only/empty response: one ACK-sized segment still occupies the
    // link for a negligible-but-ordered slot.
    iolsim::SimContext* ctx = net_->ctx_;
    ctx->link().AcquireAsync(&ctx->events(), 0, std::move(done));
    return;
  }
  TransmitSegment(n, std::move(done));
}

void TcpConnection::TransmitSegment(size_t remaining, std::function<void()> done) {
  iolsim::SimContext* ctx = net_->ctx_;
  size_t mtu = static_cast<size_t>(ctx->cost().params().mtu_bytes);
  size_t seg = remaining < mtu ? remaining : mtu;
  ctx->link().AcquireAsync(
      &ctx->events(), ctx->cost().WireTime(seg),
      [this, rest = remaining - seg, done = std::move(done)]() mutable {
        if (rest == 0) {
          done();
        } else {
          TransmitSegment(rest, std::move(done));
        }
      });
}

size_t TcpConnection::SendAggregate(const iolite::Aggregate& agg) {
  assert(connected_);
  iolsim::SimContext* ctx = net_->ctx_;
  size_t n = agg.size();
  // Encapsulate by reference: one external mbuf per slice, no data touch.
  MbufChain chain = MbufChain::FromAggregate(agg);
  assert(chain.length() == n);
  // Checksum via the module: cached per-slice sums apply when the same
  // immutable buffer contents are transmitted repeatedly.
  net_->checksum_.Checksum(agg);
  ChargePackets(n);
  bytes_sent_ += n;
  ctx->stats().bytes_sent += n;
  return n;
}

}  // namespace iolnet
