#include "src/net/tcp.h"

#include <cassert>
#include <cstring>

namespace iolnet {

TcpConnection::TcpConnection(NetworkSubsystem* net, bool iolite_sockets)
    : net_(net), iolite_sockets_(iolite_sockets) {}

TcpConnection::~TcpConnection() {
  if (connected_) {
    Close();
  }
}

void TcpConnection::Connect() {
  assert(!connected_);
  iolsim::SimContext* ctx = net_->ctx_;
  ctx->ChargeCpu(ctx->cost().TcpSetupCost());
  ctx->stats().tcp_connections++;
  if (!iolite_sockets_) {
    // Copy-based sockets need real send-buffer memory sized to the
    // bandwidth-delay product (Tss). IO-Lite send queues hold references.
    ctx->memory().Reserve("socket_send_buffers",
                          ctx->cost().params().socket_send_buffer_bytes);
  } else {
    // Mbuf headers only ("a small amount of memory is required to hold
    // mbuf structures", Section 5.7).
    ctx->memory().Reserve("socket_send_buffers", 2048);
  }
  net_->open_connections_++;
  connected_ = true;
}

void TcpConnection::Close() {
  assert(connected_);
  iolsim::SimContext* ctx = net_->ctx_;
  if (!iolite_sockets_) {
    ctx->memory().Release("socket_send_buffers",
                          ctx->cost().params().socket_send_buffer_bytes);
  } else {
    ctx->memory().Release("socket_send_buffers", 2048);
  }
  net_->open_connections_--;
  connected_ = false;
}

void TcpConnection::ReceiveRequest(size_t n) {
  iolsim::SimContext* ctx = net_->ctx_;
  // Early demultiplexing: the packet filter classifies the packet to an
  // I/O stream (and hence an ACL) before it is stored (Section 3.6).
  ctx->ChargeCpu(ctx->cost().PacketProcessingCost(n));
  ctx->stats().packets_sent++;  // Request packets also traverse the stack.
}

void TcpConnection::ChargePackets(size_t n) {
  iolsim::SimContext* ctx = net_->ctx_;
  ctx->ChargeCpu(ctx->cost().PacketProcessingCost(n));
  uint64_t packets =
      (n + ctx->cost().params().mtu_bytes - 1) / ctx->cost().params().mtu_bytes;
  ctx->stats().packets_sent += packets == 0 ? 1 : packets;
}

char* TcpConnection::Scratch(size_t n) {
  if (scratch_size_ < n) {
    // Geometric growth, and make_unique_for_overwrite: the old exact-size
    // make_unique<char[]> value-initialized (memset) the whole buffer right
    // before every byte of it was overwritten by the send path.
    size_t grown = scratch_size_ < 4096 ? 4096 : scratch_size_ * 2;
    if (grown < n) {
      grown = n;
    }
    scratch_ = std::make_unique_for_overwrite<char[]>(grown);
    scratch_size_ = grown;
  }
  return scratch_.get();
}

size_t TcpConnection::SendCopy(const iolite::Aggregate& src) {
  assert(connected_);
  iolsim::SimContext* ctx = net_->ctx_;
  size_t n = src.size();
  // Copy into kernel send-buffer clusters...
  src.CopyTo(Scratch(n));
  ctx->ChargeCpu(ctx->cost().CopyCost(n));
  ctx->stats().bytes_copied += n;
  ctx->stats().copy_ops++;
  // ...and checksum the private copy. Its contents have no system-wide
  // identity, so the checksum cache cannot apply.
  ChecksumAccumulate(scratch_.get(), n);
  ctx->ChargeCpu(ctx->cost().ChecksumCost(n));
  ctx->stats().bytes_checksummed += n;
  ctx->stats().checksum_ops++;
  ChargePackets(n);
  bytes_sent_ += n;
  ctx->stats().bytes_sent += n;
  return n;
}

size_t TcpConnection::SendGatheredCopy(const char* header, size_t header_len,
                                       const iolite::Aggregate& body) {
  assert(connected_);
  iolsim::SimContext* ctx = net_->ctx_;
  size_t n = header_len + body.size();
  char* scratch = Scratch(n);
  std::memcpy(scratch, header, header_len);
  body.CopyTo(scratch + header_len);
  ctx->ChargeCpu(ctx->cost().CopyCost(n));
  ctx->stats().bytes_copied += n;
  ctx->stats().copy_ops++;
  ChecksumAccumulate(scratch_.get(), n);
  ctx->ChargeCpu(ctx->cost().ChecksumCost(n));
  ctx->stats().bytes_checksummed += n;
  ctx->stats().checksum_ops++;
  ChargePackets(n);
  bytes_sent_ += n;
  ctx->stats().bytes_sent += n;
  return n;
}

size_t TcpConnection::SendPrivateCopy(const char* a, size_t na, const char* b, size_t nb) {
  assert(connected_);
  iolsim::SimContext* ctx = net_->ctx_;
  size_t n = na + nb;
  char* scratch = Scratch(n);
  std::memcpy(scratch, a, na);
  std::memcpy(scratch + na, b, nb);
  ctx->ChargeCpu(ctx->cost().CopyCost(n));
  ctx->stats().bytes_copied += n;
  ctx->stats().copy_ops++;
  ChecksumAccumulate(scratch_.get(), n);
  ctx->ChargeCpu(ctx->cost().ChecksumCost(n));
  ctx->stats().bytes_checksummed += n;
  ctx->stats().checksum_ops++;
  ChargePackets(n);
  bytes_sent_ += n;
  ctx->stats().bytes_sent += n;
  return n;
}

void TcpConnection::TransmitAsync(size_t n, iolsim::InlineCallback done) {
  if (n == 0) {
    // Header-only/empty response: one ACK-sized segment still occupies the
    // link for a negligible-but-ordered slot.
    iolsim::SimContext* ctx = net_->ctx_;
    iolsim::Resource* link = link_ != nullptr ? link_->link : &ctx->link();
    link->AcquireAsync(&ctx->events(), 0, std::move(done));
    return;
  }
  net_->TransmitSegment(net_->AcquireTransmit(n, link_, std::move(done)));
}

uint32_t NetworkSubsystem::AcquireTransmit(size_t remaining, const LinkSpec* link,
                                           iolsim::InlineCallback done) {
  uint32_t idx;
  if (free_transmit_ != UINT32_MAX) {
    idx = free_transmit_;
    free_transmit_ = transmits_[idx].next_free;
  } else {
    idx = static_cast<uint32_t>(transmits_.size());
    transmits_.emplace_back();
  }
  transmits_[idx].remaining = remaining;
  transmits_[idx].link = link;
  transmits_[idx].done = std::move(done);
  return idx;
}

void NetworkSubsystem::TransmitSegment(uint32_t idx) {
  // Same link-reservation sequence as the old per-segment closure chain —
  // one acquisition per MSS segment, the next reserved at the previous
  // segment's completion event — but the state is a pooled node the
  // completion re-arms, so steady-state transmission allocates nothing.
  size_t remaining = transmits_[idx].remaining;
  size_t mtu = static_cast<size_t>(ctx_->cost().params().mtu_bytes);
  size_t seg = remaining < mtu ? remaining : mtu;
  transmits_[idx].remaining = remaining - seg;
  const LinkSpec* spec = transmits_[idx].link;
  iolsim::Resource* link;
  iolsim::SimTime wire;
  if (spec == nullptr) {
    link = &ctx_->link();
    wire = seg == mtu ? mss_wire_time_ : ctx_->cost().WireTime(seg);
  } else {
    link = spec->link;
    // An unprimed spec (mss_wire_time == 0) falls back to the computation.
    wire = seg == mtu && spec->mss_wire_time > 0 ? spec->mss_wire_time
                                                 : spec->WireTime(seg);
  }
  link->AcquireAsync(&ctx_->events(), wire, [this, idx] {
    TransmitState& t = transmits_[idx];
    if (t.remaining == 0) {
      iolsim::InlineCallback done = std::move(t.done);
      t.next_free = free_transmit_;
      free_transmit_ = idx;
      done();
    } else {
      TransmitSegment(idx);
    }
  });
}

size_t TcpConnection::SendAggregate(const iolite::Aggregate& agg) {
  assert(connected_);
  iolsim::SimContext* ctx = net_->ctx_;
  size_t n = agg.size();
  // Encapsulate by reference: one external mbuf per slice, no data touch.
  MbufChain chain = MbufChain::FromAggregate(agg);
  assert(chain.length() == n);
  // Checksum via the module: cached per-slice sums apply when the same
  // immutable buffer contents are transmitted repeatedly.
  net_->checksum_.Checksum(agg);
  ChargePackets(n);
  bytes_sent_ += n;
  ctx->stats().bytes_sent += n;
  return n;
}

}  // namespace iolnet
