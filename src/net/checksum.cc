#include "src/net/checksum.h"

#include <cstring>

namespace iolnet {

uint32_t ChecksumAccumulate(const char* data, size_t n) {
  const auto* p = reinterpret_cast<const uint8_t*>(data);
  // Big-endian 16-bit words, as on the wire. Eight bytes per step: a
  // byte-swapped 64-bit load yields four wire-order words at fixed shifts.
  // Accumulating in 64 bits then truncating equals the old byte-wise
  // uint32 accumulation exactly (addition commutes modulo 2^32), so cached
  // partial sums are bit-identical to the scalar loop's.
  uint64_t sum = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t v;
    std::memcpy(&v, p + i, 8);
    uint64_t x = __builtin_bswap64(v);
    sum += (x >> 48) + ((x >> 32) & 0xffff) + ((x >> 16) & 0xffff) + (x & 0xffff);
  }
  for (; i + 1 < n; i += 2) {
    sum += (static_cast<uint64_t>(p[i]) << 8) | p[i + 1];
  }
  if (i < n) {
    sum += static_cast<uint64_t>(p[i]) << 8;  // Trailing odd byte, zero-padded.
  }
  return static_cast<uint32_t>(sum);
}

uint16_t ChecksumFold(uint32_t sum) {
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum & 0xffff);
}

uint32_t ChecksumSwap(uint32_t sum) {
  // Fold to 16 bits first, then swap bytes: this is the standard trick for
  // combining a partial sum that starts at an odd offset.
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return ((sum & 0xff) << 8) | (sum >> 8);
}

bool ChecksumCache::Lookup(const Key& key, uint32_t* sum) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.second);
  *sum = it->second.first;
  return true;
}

void ChecksumCache::Store(const Key& key, uint32_t sum) {
  // One hash probe for both the update and insert cases (fresh generation
  // keys make this the hot path); eviction past capacity lands on the same
  // LRU victim whether it runs before or after the insert.
  auto [it, inserted] = map_.try_emplace(key, sum, LruList::iterator{});
  if (!inserted) {
    it->second.first = sum;
    lru_.splice(lru_.begin(), lru_, it->second.second);
    return;
  }
  lru_.push_front(key);
  it->second.second = lru_.begin();
  if (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
}

void ChecksumCache::Clear() {
  map_.clear();
  lru_.clear();
}

uint16_t ChecksumModule::Checksum(const iolite::Aggregate& agg) {
  uint32_t total = 0;
  uint64_t position = 0;  // Byte offset within the message so far.
  for (const iolite::Slice& s : agg.slices()) {
    uint32_t partial = 0;
    bool from_cache = false;
    ChecksumCache::Key key{s.buffer()->id(), s.buffer()->generation(), s.offset(), s.length()};
    if (cache_enabled_ && cache_.Lookup(key, &partial)) {
      from_cache = true;
      ctx_->stats().checksum_cache_hits++;
    } else {
      partial = ChecksumAccumulate(s.data(), s.length());
      ctx_->ChargeCpu(ctx_->cost().ChecksumCost(s.length()));
      ctx_->stats().bytes_checksummed += s.length();
      ctx_->stats().checksum_ops++;
      if (cache_enabled_) {
        cache_.Store(key, partial);
        ctx_->stats().checksum_cache_misses++;
      }
    }
    (void)from_cache;
    // Slices at odd message offsets contribute byte-swapped.
    total += (position % 2 == 0) ? partial : ChecksumSwap(partial);
    position += s.length();
  }
  return ChecksumFold(total);
}

}  // namespace iolnet
