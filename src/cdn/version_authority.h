// VersionAuthority: the origin-side source of truth for object versions.
//
// Implements iolproxy::VersionSource for the whole hierarchy. A write at
// the origin bumps the object's version and, under kInvalidate, pushes an
// invalidation frame down the tree to every proxy currently holding the
// object: the frame crosses each holder's uplink (cumulative propagation
// delay, plus that proxy's backhaul shaper if one is attached) and lands as
// ProxyServer::OnInvalidate at the delivery instant. ApplyWrite returns the
// *acknowledgement* instant — the time the slowest invalidation lands —
// which is the moment from which the protocol guarantees no proxy serves a
// version older than this write (requests already in flight may still
// complete with the bytes they were promised; IO-Lite snapshot semantics).
//
// Reading a version is free in the simulated machine: the modeled price of
// freshness is the control traffic this class generates, never the lookup.

#ifndef SRC_CDN_VERSION_AUTHORITY_H_
#define SRC_CDN_VERSION_AUTHORITY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/proxy/consistency.h"
#include "src/proxy/proxy_server.h"
#include "src/simos/sim_context.h"

namespace iolcdn {

class VersionAuthority : public iolproxy::VersionSource {
 public:
  explicit VersionAuthority(iolsim::SimContext* ctx) : ctx_(ctx) {}

  void set_mode(iolproxy::ConsistencyMode mode) { mode_ = mode; }

  // Registers a proxy as a potential holder. `delay` is the cumulative
  // one-way propagation from the origin down to this proxy (the sum of the
  // link delays of every level from the proxy's up to the top), i.e. how
  // long an invalidation frame travels before it can land.
  void RegisterHolder(iolproxy::ProxyServer* proxy, iolsim::SimTime delay) {
    holders_.push_back(Holder{proxy, delay});
  }

  // One origin write: bumps the version, stamps the write instant, counts
  // SimStats::cdn_writes, and (kInvalidate) pushes invalidations to every
  // registered proxy currently caching the object. Returns the ack instant
  // (== now when nothing had to be invalidated).
  iolsim::SimTime ApplyWrite(iolfs::FileId file);

  uint64_t writes() const { return writes_; }

  // --- VersionSource --------------------------------------------------------
  uint64_t VersionOf(iolfs::FileId file) const override {
    auto it = versions_.find(file);
    return it == versions_.end() ? 0 : it->second;
  }
  iolsim::SimTime WrittenAt(iolfs::FileId file) const override {
    auto it = written_at_.find(file);
    return it == written_at_.end() ? 0 : it->second;
  }

 private:
  struct Holder {
    iolproxy::ProxyServer* proxy;
    iolsim::SimTime delay;  // Origin-to-proxy cumulative propagation.
  };

  iolsim::SimContext* ctx_;
  iolproxy::ConsistencyMode mode_ = iolproxy::ConsistencyMode::kNone;
  std::vector<Holder> holders_;
  std::unordered_map<iolfs::FileId, uint64_t> versions_;
  std::unordered_map<iolfs::FileId, iolsim::SimTime> written_at_;
  uint64_t writes_ = 0;
};

}  // namespace iolcdn

#endif  // SRC_CDN_VERSION_AUTHORITY_H_
