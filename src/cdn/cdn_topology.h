// CdnTopology: the shape of a planet-scale CDN hierarchy (src/cdn).
//
// The hierarchy composes existing iolproxy::ProxyServers into an N-level
// tree: level 0 is the edge tier clients talk to, higher levels sit closer
// to the origin, and the top level fetches from the origin fleet itself.
// Each level declares how many proxies it has, the per-proxy cache budget,
// and the WAN uplink every one of its proxies crosses toward its parent —
// propagation delay, payload rate, and (optionally) a token-bucket shape
// on the bytes it may push up that link (ROADMAP 5a).
//
// Parenting is deterministic: proxy p at level l attaches to proxy
// p % count(l+1) at level l+1, so edges spread over regionals the way
// regionals spread over the origin fleet's balancer. One consistency
// protocol (src/proxy/consistency.h) governs every interior link.

#ifndef SRC_CDN_CDN_TOPOLOGY_H_
#define SRC_CDN_CDN_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "src/proxy/consistency.h"
#include "src/simos/clock.h"

namespace iolcdn {

// One level of the tree. Defaults mirror ProxyConfig's single-proxy wire.
struct CdnLevelSpec {
  // Proxies at this level. Edges typically outnumber regionals.
  int count = 1;
  // Per-proxy cache byte budget at this level.
  uint64_t cache_bytes = 8ull * 1024 * 1024;
  // Uplink toward the parent level (the origin fleet for the top level):
  // effective payload rate and one-way propagation.
  double link_bytes_per_sec = 100.0e6 / 8.0 * 0.72;
  iolsim::SimTime link_one_way_delay = 500 * iolsim::kMicrosecond;
  // Token-bucket shape on this level's per-proxy backhaul bytes
  // (0 = unshaped). Burst should cover at least one object so a lone
  // transfer is never held.
  double shape_bytes_per_sec = 0;
  double shape_burst_bytes = 0;
};

struct CdnTopology {
  // levels[0] = edge tier ... levels.back() = closest to the origin.
  std::vector<CdnLevelSpec> levels;
  // Consistency protocol run on every interior link.
  iolproxy::ConsistencyMode protocol = iolproxy::ConsistencyMode::kNone;
  // kRevalidate: trust window after a fetch or successful revalidation.
  iolsim::SimTime ttl = 0;

  int edge_count() const { return levels.empty() ? 0 : levels.front().count; }
  int total_proxies() const {
    int n = 0;
    for (const CdnLevelSpec& l : levels) {
      n += l.count;
    }
    return n;
  }
};

}  // namespace iolcdn

#endif  // SRC_CDN_CDN_TOPOLOGY_H_
