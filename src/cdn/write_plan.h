// WritePlan: a deterministic origin write process for the CDN hierarchy.
//
// A seeded Poisson stream of origin writes: each write picks a file (
// optionally biased toward the low file ids, which the trace synthesizer
// makes the popular ones) and applies it through the VersionAuthority —
// version bump, write timestamp, and (kInvalidate) the invalidation fan-out
// down the tree. The plan is a self-rescheduling event source, so it checks
// Experiment::finished() before re-arming: Run drains the queue after the
// last counted completion, and an unconditional re-arm would keep that
// drain alive forever.

#ifndef SRC_CDN_WRITE_PLAN_H_
#define SRC_CDN_WRITE_PLAN_H_

#include <cstdint>

#include "src/cdn/version_authority.h"
#include "src/driver/experiment.h"
#include "src/simos/rng.h"

namespace iolcdn {

struct WritePlanSpec {
  // Mean origin writes per second (0 disables the plan entirely).
  double writes_per_sec = 0;
  // Write targets are file ids in [0, num_files).
  uint64_t num_files = 1;
  // 0 = uniform over the files; > 0 biases toward low ids (popular files)
  // as id = num_files * u^(1 + hot_bias), so writes collide with reads.
  double hot_bias = 0;
  uint64_t seed = 1;
  // First write may not fire before this instant (let caches warm).
  iolsim::SimTime start = 0;
};

class WritePlan {
 public:
  WritePlan(iolsim::SimContext* ctx, VersionAuthority* authority,
            WritePlanSpec spec)
      : ctx_(ctx), authority_(authority), spec_(spec), rng_(spec.seed) {}

  // Schedules the first write. Call after the experiment exists and before
  // (or as) it runs; `experiment` is consulted for finished() only.
  void Arm(ioldrv::Experiment* experiment);

  uint64_t writes() const { return writes_; }
  // Ack instant of the most recent write (see VersionAuthority::ApplyWrite).
  iolsim::SimTime last_ack() const { return last_ack_; }

 private:
  void Step();
  iolfs::FileId PickFile();

  iolsim::SimContext* ctx_;
  VersionAuthority* authority_;
  WritePlanSpec spec_;
  iolsim::Rng rng_;
  ioldrv::Experiment* experiment_ = nullptr;
  uint64_t writes_ = 0;
  iolsim::SimTime last_ack_ = 0;
};

}  // namespace iolcdn

#endif  // SRC_CDN_WRITE_PLAN_H_
