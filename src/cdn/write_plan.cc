#include "src/cdn/write_plan.h"

#include <cmath>

namespace iolcdn {

void WritePlan::Arm(ioldrv::Experiment* experiment) {
  experiment_ = experiment;
  if (!(spec_.writes_per_sec > 0) || spec_.num_files == 0) {
    return;
  }
  iolsim::SimTime first =
      spec_.start + iolsim::ExponentialInterarrival(&rng_, spec_.writes_per_sec);
  ctx_->events().ScheduleAfter(first, [this] { Step(); });
}

void WritePlan::Step() {
  // The run is over: do not re-arm, or the post-done_ queue drain never
  // terminates. (Events already scheduled still fire during the drain;
  // that is fine — they just stop begetting successors.)
  if (experiment_->finished()) {
    return;
  }
  ++writes_;
  last_ack_ = authority_->ApplyWrite(PickFile());
  iolsim::SimTime next =
      iolsim::ExponentialInterarrival(&rng_, spec_.writes_per_sec);
  ctx_->events().ScheduleAfter(next, [this] { Step(); });
}

iolfs::FileId WritePlan::PickFile() {
  double u = rng_.NextDouble();
  if (spec_.hot_bias > 0) {
    u = std::pow(u, 1.0 + spec_.hot_bias);
  }
  auto id = static_cast<uint64_t>(u * static_cast<double>(spec_.num_files));
  if (id >= spec_.num_files) {
    id = spec_.num_files - 1;
  }
  return static_cast<iolfs::FileId>(id);
}

}  // namespace iolcdn
