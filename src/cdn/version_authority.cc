#include "src/cdn/version_authority.h"

namespace iolcdn {

iolsim::SimTime VersionAuthority::ApplyWrite(iolfs::FileId file) {
  iolsim::SimTime now = ctx_->clock().now();
  uint64_t version = ++versions_[file];
  written_at_[file] = now;
  ++writes_;
  ctx_->stats().cdn_writes++;
  iolsim::SimTime ack = now;
  if (mode_ != iolproxy::ConsistencyMode::kInvalidate) {
    return ack;
  }
  // Push an invalidation to every proxy holding the object. Targeting by
  // current membership is the protocol (the origin tracks holders the way
  // AFS tracks callbacks); a fetch in flight right now is not yet a holder
  // — the proxy's ReceiveStage version check catches that race instead.
  for (const Holder& h : holders_) {
    if (!h.proxy->CachesFile(file)) {
      continue;
    }
    int level = h.proxy->consistency().level;
    iolsim::SimStats::CdnLevelStats& c = ctx_->stats().cdn[level];
    c.invalidations_sent++;
    // The frame crosses the holder's uplink: shaped like any other
    // backhaul bytes, then the cumulative propagation down the tree.
    iolsim::SimTime hold = 0;
    if (iolqos::BackhaulShaper* shaper = h.proxy->backhaul_shaper()) {
      hold = shaper->DelayFor(now, iolproxy::kInvalidationBytes);
      if (hold > 0) {
        c.shaper_holds++;
      }
    }
    iolsim::SimTime at = now + hold + h.delay;
    if (at > ack) {
      ack = at;
    }
    iolproxy::ProxyServer* proxy = h.proxy;
    ctx_->events().ScheduleAfter(at - now, [proxy, file, version] {
      proxy->OnInvalidate(file, version);
    });
  }
  return ack;
}

}  // namespace iolcdn
