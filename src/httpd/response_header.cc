#include "src/httpd/response_header.h"

#include <cassert>
#include <cstdio>
#include <cstring>

namespace iolhttp {

size_t BuildResponseHeader(char* buf, uint64_t content_length) {
  int n = std::snprintf(buf, kResponseHeaderBytes,
                        "HTTP/1.0 200 OK\r\n"
                        "Server: iolite-sim/1.0\r\n"
                        "Content-Type: text/html\r\n"
                        "Content-Length: %llu\r\n"
                        "X-Pad: ",
                        static_cast<unsigned long long>(content_length));
  assert(n > 0 && static_cast<size_t>(n) <= kResponseHeaderBytes - 4);
  for (size_t i = n; i < kResponseHeaderBytes - 4; ++i) {
    buf[i] = 'x';
  }
  std::memcpy(buf + kResponseHeaderBytes - 4, "\r\n\r\n", 4);
  return kResponseHeaderBytes;
}

iolite::BufferRef MakeIoLiteHeader(iolsim::SimContext* ctx, iolite::BufferPool* pool,
                                   uint64_t content_length) {
  char header[kResponseHeaderBytes];
  size_t header_len = BuildResponseHeader(header, content_length);
  iolite::BufferRef hbuf = pool->Allocate(header_len);
  std::memcpy(hbuf->writable_data(), header, header_len);
  ctx->ChargeCpu(ctx->cost().CopyCost(header_len));
  ctx->stats().bytes_copied += header_len;
  ctx->stats().copy_ops++;
  hbuf->Seal(header_len);
  return hbuf;
}

}  // namespace iolhttp
