#include "src/httpd/response_header.h"

#include <cassert>
#include <cstring>

namespace iolhttp {

size_t BuildResponseHeader(char* buf, uint64_t content_length) {
  // Hand-formatted (byte-identical to the old snprintf, which cost more
  // host CPU per request than the whole event dispatch path).
  static constexpr char kPrefix[] =
      "HTTP/1.0 200 OK\r\n"
      "Server: iolite-sim/1.0\r\n"
      "Content-Type: text/html\r\n"
      "Content-Length: ";
  static constexpr char kSuffix[] = "\r\nX-Pad: ";
  size_t n = sizeof(kPrefix) - 1;
  std::memcpy(buf, kPrefix, n);
  char digits[20];
  size_t d = 0;
  do {
    digits[d++] = static_cast<char>('0' + content_length % 10);
    content_length /= 10;
  } while (content_length != 0);
  while (d > 0) {
    buf[n++] = digits[--d];
  }
  std::memcpy(buf + n, kSuffix, sizeof(kSuffix) - 1);
  n += sizeof(kSuffix) - 1;
  assert(n <= kResponseHeaderBytes - 4);
  std::memset(buf + n, 'x', kResponseHeaderBytes - 4 - n);
  std::memcpy(buf + kResponseHeaderBytes - 4, "\r\n\r\n", 4);
  return kResponseHeaderBytes;
}

iolite::BufferRef MakeIoLiteHeader(iolsim::SimContext* ctx, iolite::BufferPool* pool,
                                   uint64_t content_length) {
  char header[kResponseHeaderBytes];
  size_t header_len = BuildResponseHeader(header, content_length);
  iolite::BufferRef hbuf = pool->Allocate(header_len);
  std::memcpy(hbuf->writable_data(), header, header_len);
  ctx->ChargeCpu(ctx->cost().CopyCost(header_len));
  ctx->stats().bytes_copied += header_len;
  ctx->stats().copy_ops++;
  hbuf->Seal(header_len);
  return hbuf;
}

}  // namespace iolhttp
