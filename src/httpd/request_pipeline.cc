#include "src/httpd/request_pipeline.h"

#include <cassert>
#include <utility>

namespace iolhttp {

void RunCpuStage(iolsim::SimContext* ctx, std::function<void()> body,
                 std::function<void()> next) {
  assert(!ctx->tally_active() && "stages do not nest");
  iolsim::Tally tally;
  {
    iolsim::TallyScope scope(ctx, &tally);
    body();
  }
  iolsim::EventQueue* events = &ctx->events();
  if (tally.disk > 0) {
    ctx->disk().AcquireAsync(
        events, tally.disk, [ctx, cpu = tally.cpu, next = std::move(next)]() mutable {
          ctx->cpu().AcquireAsync(&ctx->events(), cpu, std::move(next));
        });
  } else {
    ctx->cpu().AcquireAsync(events, tally.cpu, std::move(next));
  }
}

}  // namespace iolhttp
