#include "src/httpd/driver.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "src/driver/workload.h"

namespace iolhttp {

DriverResult LoadDriver::Run(RequestSource next_file) {
  if (ran_) {
    std::fprintf(stderr, "LoadDriver: Run() called twice on the same instance\n");
    std::abort();
  }
  ran_ = true;

  std::unique_ptr<ioldrv::Workload> workload;
  if (config_.open_loop) {
    // OpenLoopPoisson validates the rate (fatal on <= 0). pipeline_depth
    // carries over so the initial pool's lanes match the old driver's.
    workload = std::make_unique<ioldrv::OpenLoopPoisson>(
        config_.arrivals_per_sec, config_.arrival_seed, config_.num_clients,
        config_.pipeline_depth);
  } else {
    workload =
        std::make_unique<ioldrv::ClosedLoop>(config_.num_clients, config_.pipeline_depth);
  }

  ioldrv::ExperimentConfig config;
  config.max_requests = config_.max_requests;
  config.warmup_requests = config_.warmup_requests;
  config.persistent_connections = config_.persistent_connections;
  config.delay = config_.delay;
  config.max_concurrent = config_.max_concurrent;
  config.enforce_cache_budget = config_.enforce_cache_budget;

  ioldrv::Experiment experiment(ctx_, net_, cache_, server_, config);
  ioldrv::ExperimentResult full = experiment.Run(workload.get(), std::move(next_file));

  DriverResult result;
  result.requests = full.requests;
  result.bytes = full.bytes;
  result.seconds = full.seconds;
  result.megabits_per_sec = full.megabits_per_sec;
  result.cache_hit_rate = full.cache_hit_rate;
  result.peak_concurrent = full.peak_concurrent;
  result.admission_waits = full.admission_waits;
  return result;
}

}  // namespace iolhttp
