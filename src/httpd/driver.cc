#include "src/httpd/driver.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace iolhttp {

uint64_t LoadDriver::CacheBudget() const {
  // The file cache may use whatever physical memory is left after the
  // kernel, server processes and socket send buffers. The IO-Lite window
  // reservation is excluded from "used": the cache's own data lives there,
  // so counting it would shrink the budget by the cache's own size.
  uint64_t non_window =
      ctx_->memory().used() - ctx_->memory().reservation("iolite_window");
  uint64_t total = ctx_->memory().total();
  return total > non_window ? total - non_window : 0;
}

size_t LoadDriver::AddLane(size_t conn_index) {
  lanes_.push_back(std::make_unique<Lane>());
  size_t lane = lanes_.size() - 1;
  Lane& l = *lanes_[lane];
  l.conn = conns_[conn_index].get();
  l.conn_index = conn_index;
  l.req.conn = l.conn;
  l.req.on_done = [this, lane](RequestContext*) { OnServerDone(lane); };
  return lane;
}

void LoadDriver::UpdateSteadyMemory() {
  int pool = static_cast<int>(conns_.size());
  int effective_concurrent = pool;
  if (config_.max_concurrent > 0 && config_.max_concurrent < effective_concurrent) {
    effective_concurrent = config_.max_concurrent;
  }
  if (config_.persistent_connections) {
    // Connections stay open; their own reservations (made by Connect)
    // cover the socket buffers. Server processes:
    ctx_->memory().Set("server_processes",
                       static_cast<uint64_t>(effective_concurrent) *
                           server_->per_connection_memory());
  } else {
    uint64_t per_conn =
        server_->uses_iolite_sockets()
            ? 2048
            : static_cast<uint64_t>(ctx_->cost().params().socket_send_buffer_bytes *
                                    ctx_->cost().params().send_buffer_utilization);
    ctx_->memory().Set("connections_steady",
                       static_cast<uint64_t>(pool) * per_conn +
                           static_cast<uint64_t>(effective_concurrent) *
                               server_->per_connection_memory());
  }
}

DriverResult LoadDriver::Run(RequestSource next_file) {
  next_file_ = std::move(next_file);
  if (config_.open_loop && !(config_.arrivals_per_sec > 0)) {
    // A zero/NaN rate would divide to +inf interarrival math below; die
    // loudly instead of spinning (release builds skip asserts).
    std::fprintf(stderr,
                 "LoadDriver: open_loop requires arrivals_per_sec > 0 (got %g)\n",
                 config_.arrivals_per_sec);
    std::abort();
  }

  int depth = config_.persistent_connections && config_.pipeline_depth > 1
                  ? config_.pipeline_depth
                  : 1;

  for (int i = 0; i < config_.num_clients; ++i) {
    conns_.push_back(
        std::make_unique<iolnet::TcpConnection>(net_, server_->uses_iolite_sockets()));
    if (config_.persistent_connections) {
      conns_[i]->Connect();  // One handshake for the whole run (setup time).
    }
  }
  conn_state_.resize(conns_.size());
  // Steady-state memory pinned by the client population.
  UpdateSteadyMemory();
  // A client's pipelined lanes share its connection.
  for (int i = 0; i < config_.num_clients; ++i) {
    for (int d = 0; d < depth; ++d) {
      AddLane(i);
    }
  }

  if (config_.open_loop) {
    // All lanes idle; Poisson arrivals claim them (pool grows on demand).
    for (size_t lane = lanes_.size(); lane-- > 0;) {
      free_lanes_.push_back(lane);
    }
    ScheduleNextArrival();
  } else {
    // Kick off all clients at t=0.
    for (size_t lane = 0; lane < lanes_.size(); ++lane) {
      ctx_->events().ScheduleAt(0, [this, lane] { IssueRequest(lane); });
    }
  }

  while (!done_ && ctx_->events().RunOne()) {
  }

  DriverResult result;
  result.requests = counted_requests_;
  result.bytes = counted_bytes_;
  result.seconds = iolsim::ToSeconds(ctx_->clock().now() - count_start_);
  if (result.seconds > 0) {
    result.megabits_per_sec = static_cast<double>(counted_bytes_) * 8.0 / 1e6 / result.seconds;
  }
  uint64_t lookups = ctx_->stats().cache_hits + ctx_->stats().cache_misses;
  if (lookups > 0) {
    result.cache_hit_rate =
        static_cast<double>(ctx_->stats().cache_hits) / static_cast<double>(lookups);
  }
  result.peak_concurrent = peak_in_service_;
  result.admission_waits = admission_waits_;

  // Drain in-flight continuations so no event in the queue outlives the
  // driver; every callback early-returns behind done_. (The result was
  // already captured above, so the extra clock movement is invisible.)
  while (ctx_->events().RunOne()) {
  }

  for (std::unique_ptr<iolnet::TcpConnection>& c : conns_) {
    if (c->connected()) {
      c->Close();
    }
  }
  ctx_->memory().Set("server_processes", 0);
  ctx_->memory().Set("connections_steady", 0);
  next_file_ = nullptr;
  return result;
}

void LoadDriver::ScheduleNextArrival() {
  if (done_) {
    return;
  }
  // Exponential interarrival: -ln(1-U)/lambda.
  double u = arrival_rng_.NextDouble();
  double dt_sec = -std::log(1.0 - u) / config_.arrivals_per_sec;
  iolsim::SimTime dt = static_cast<iolsim::SimTime>(dt_sec * iolsim::kSecond);
  if (dt < 1) {
    dt = 1;
  }
  ctx_->events().ScheduleAfter(dt, [this] {
    if (done_) {
      return;
    }
    size_t lane;
    if (!free_lanes_.empty()) {
      lane = free_lanes_.back();
      free_lanes_.pop_back();
    } else {
      // Overload: the arrival stream outpaces completions; grow the pool
      // (and the steady-state memory the population pins with it).
      conns_.push_back(
          std::make_unique<iolnet::TcpConnection>(net_, server_->uses_iolite_sockets()));
      conn_state_.resize(conns_.size());
      lane = AddLane(conns_.size() - 1);
      UpdateSteadyMemory();
    }
    IssueRequest(lane);
    ScheduleNextArrival();
  });
}

void LoadDriver::IssueRequest(size_t lane) {
  if (done_) {
    return;
  }
  Lane& l = *lanes_[lane];
  // Position in the connection's request stream (delivery is in-order).
  l.seq = conn_state_[l.conn_index].next_issue++;
  // Request propagation to the server.
  ctx_->events().ScheduleAfter(config_.delay.one_way_delay,
                               [this, lane] { ArriveAtServer(lane); });
}

void LoadDriver::ArriveAtServer(size_t lane) {
  if (done_) {
    return;
  }
  if (config_.max_concurrent > 0 && in_service_ >= config_.max_concurrent) {
    // At capacity: the connection waits in the accept queue (never dropped).
    accept_queue_.push_back(lane);
    ++admission_waits_;
    return;
  }
  ServeRequest(lane);
}

void LoadDriver::ServeRequest(size_t lane) {
  ++in_service_;
  if (in_service_ > peak_in_service_) {
    peak_in_service_ = in_service_;
  }
  Lane& l = *lanes_[lane];
  l.req.file = next_file_();
  l.req.response_bytes = 0;
  if (!l.conn->connected()) {
    // Handshake CPU (SYN/PCB work) is a pipeline stage like any other; the
    // handshake round trip itself is charged with the response delays.
    RunCpuStage(
        ctx_, [&l] { l.conn->Connect(); },
        [this, lane] { server_->StartRequest(&lanes_[lane]->req); });
  } else {
    server_->StartRequest(&l.req);
  }
}

void LoadDriver::OnServerDone(size_t lane) {
  if (done_) {
    return;
  }
  Lane& l = *lanes_[lane];
  size_t bytes = l.req.response_bytes;
  if (!config_.persistent_connections) {
    l.conn->Close();
  }
  if (config_.enforce_cache_budget) {
    cache_->EnforceBudget(CacheBudget());
  }
  --in_service_;
  if (!accept_queue_.empty()) {
    size_t waiting = accept_queue_.front();
    accept_queue_.pop_front();
    ServeRequest(waiting);
  }

  // Response propagation, plus one handshake round trip for nonpersistent
  // connections. A pipelined connection delivers responses in request
  // order: an out-of-order completion (e.g. a sibling's cache hit passing
  // this lane's disk read) waits for the head of line.
  iolsim::SimTime respond_delay = config_.delay.one_way_delay;
  if (!config_.persistent_connections) {
    respond_delay += config_.delay.RoundTrip();
  }
  ConnState& cs = conn_state_[l.conn_index];
  cs.done_out_of_order[l.seq] = {lane, bytes};
  while (!cs.done_out_of_order.empty() &&
         cs.done_out_of_order.begin()->first == cs.next_deliver) {
    auto [head_lane, head_bytes] = cs.done_out_of_order.begin()->second;
    cs.done_out_of_order.erase(cs.done_out_of_order.begin());
    ++cs.next_deliver;
    ctx_->events().ScheduleAfter(respond_delay, [this, head_lane, head_bytes] {
      OnClientReceive(head_lane, head_bytes);
    });
  }
}

void LoadDriver::OnClientReceive(size_t lane, size_t bytes) {
  if (done_) {
    return;
  }
  ++completed_;
  if (completed_ <= config_.warmup_requests) {
    if (completed_ == config_.warmup_requests) {
      count_start_ = ctx_->clock().now();
    }
  } else {
    ++counted_requests_;
    counted_bytes_ += bytes;
    if (counted_requests_ >= config_.max_requests) {
      done_ = true;
      return;
    }
  }
  if (config_.open_loop) {
    free_lanes_.push_back(lane);
  } else {
    IssueRequest(lane);
  }
}

}  // namespace iolhttp
