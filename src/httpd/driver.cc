#include "src/httpd/driver.h"

namespace iolhttp {

uint64_t ClosedLoopDriver::CacheBudget() const {
  // The file cache may use whatever physical memory is left after the
  // kernel, server processes and socket send buffers. The IO-Lite window
  // reservation is excluded from "used": the cache's own data lives there,
  // so counting it would shrink the budget by the cache's own size.
  uint64_t non_window =
      ctx_->memory().used() - ctx_->memory().reservation("iolite_window");
  uint64_t total = ctx_->memory().total();
  return total > non_window ? total - non_window : 0;
}

DriverResult ClosedLoopDriver::Run(RequestSource next_file) {
  clients_.resize(config_.num_clients);

  int effective_concurrent = config_.num_clients;
  if (config_.max_concurrent > 0 && config_.max_concurrent < effective_concurrent) {
    effective_concurrent = config_.max_concurrent;
  }

  // Steady-state memory pinned by the client population.
  if (config_.persistent_connections) {
    // Connections stay open for the whole run; their own reservations (made
    // by Connect below) cover the socket buffers. Server processes:
    ctx_->memory().Set("server_processes",
                       static_cast<uint64_t>(effective_concurrent) *
                           server_->per_connection_memory());
  } else {
    uint64_t per_conn =
        server_->uses_iolite_sockets()
            ? 2048
            : static_cast<uint64_t>(ctx_->cost().params().socket_send_buffer_bytes *
                                    ctx_->cost().params().send_buffer_utilization);
    ctx_->memory().Set("connections_steady",
                       static_cast<uint64_t>(config_.num_clients) * per_conn +
                           static_cast<uint64_t>(effective_concurrent) *
                               server_->per_connection_memory());
  }

  for (int i = 0; i < config_.num_clients; ++i) {
    clients_[i].conn =
        std::make_unique<iolnet::TcpConnection>(net_, server_->uses_iolite_sockets());
    if (config_.persistent_connections) {
      clients_[i].conn->Connect();  // One handshake for the whole run.
    }
  }

  // Kick off all clients at t=0.
  for (int i = 0; i < config_.num_clients; ++i) {
    ctx_->events().ScheduleAt(0, [this, i, &next_file] { IssueRequest(i, next_file); });
  }

  while (!done_ && ctx_->events().RunOne()) {
  }

  for (Client& c : clients_) {
    if (c.conn->connected()) {
      c.conn->Close();
    }
  }
  ctx_->memory().Set("server_processes", 0);
  ctx_->memory().Set("connections_steady", 0);

  DriverResult result;
  result.requests = counted_requests_;
  result.bytes = counted_bytes_;
  result.seconds = iolsim::ToSeconds(ctx_->clock().now() - count_start_);
  if (result.seconds > 0) {
    result.megabits_per_sec = static_cast<double>(counted_bytes_) * 8.0 / 1e6 / result.seconds;
  }
  uint64_t lookups = ctx_->stats().cache_hits + ctx_->stats().cache_misses;
  if (lookups > 0) {
    result.cache_hit_rate =
        static_cast<double>(ctx_->stats().cache_hits) / static_cast<double>(lookups);
  }
  return result;
}

void ClosedLoopDriver::IssueRequest(int client_index, RequestSource& next_file) {
  if (done_) {
    return;
  }
  Client& client = clients_[client_index];
  iolfs::FileId file = next_file();

  // Execute the request's data path under a tally: CPU and disk demand
  // accumulate instead of advancing the clock.
  iolsim::Tally tally;
  size_t bytes = 0;
  {
    iolsim::TallyScope scope(ctx_, &tally);
    if (!config_.persistent_connections) {
      client.conn->Connect();
    }
    bytes = server_->HandleRequest(client.conn.get(), file);
    if (!config_.persistent_connections) {
      client.conn->Close();
    }
  }

  if (config_.enforce_cache_budget) {
    cache_->EnforceBudget(CacheBudget());
  }

  // Pipeline the demands: disk first (cache miss I/O), then the server CPU,
  // then the wire. Each stage is a FIFO resource shared by all requests.
  iolsim::SimTime arrive = ctx_->clock().now() + config_.delay.one_way_delay;
  iolsim::SimTime after_disk =
      tally.disk > 0 ? disk_.AcquireAfter(arrive, tally.disk) : arrive;
  iolsim::SimTime after_cpu = cpu_.AcquireAfter(after_disk, tally.cpu);
  iolsim::SimTime after_wire = link_.AcquireAfter(after_cpu, ctx_->cost().WireTime(bytes));

  // Response propagation, plus one handshake round trip for nonpersistent
  // connections.
  iolsim::SimTime respond = after_wire + config_.delay.one_way_delay;
  if (!config_.persistent_connections) {
    respond += config_.delay.RoundTrip();
  }

  ctx_->events().ScheduleAt(
      respond, [this, client_index, bytes, &next_file] {
        OnComplete(client_index, bytes, next_file);
      });
}

void ClosedLoopDriver::OnComplete(int client_index, size_t bytes, RequestSource& next_file) {
  if (done_) {
    return;
  }
  ++completed_;
  if (completed_ <= config_.warmup_requests) {
    if (completed_ == config_.warmup_requests) {
      count_start_ = ctx_->clock().now();
    }
  } else {
    ++counted_requests_;
    counted_bytes_ += bytes;
    if (counted_requests_ >= config_.max_requests) {
      done_ = true;
      return;
    }
  }
  IssueRequest(client_index, next_file);
}

}  // namespace iolhttp
