#include "src/httpd/http_server.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace iolhttp {

size_t HttpServer::HandleRequest(iolnet::TcpConnection* conn, iolfs::FileId file) {
  assert(!ctx_->tally_active());
  RequestContext req;
  req.conn = conn;
  req.file = file;
  bool finished = false;
  req.on_done = [&finished](RequestContext*) { finished = true; };
  StartRequest(&req);
  while (!finished && ctx_->events().RunOne()) {
  }
  if (!finished) {
    // A stage forgot to schedule its continuation; die loudly instead of
    // returning a zero-byte response (release builds skip asserts).
    std::fprintf(stderr, "%s: pipeline stalled — event queue drained before completion\n",
                 name());
    std::abort();
  }
  return req.response_bytes;
}

void FlashServer::StartRequest(RequestContext* req) {
  // Stage 1: event loop wakeup, HTTP parse, per-request application work.
  CpuStage(
      [this, req] {
        ctx_->ChargeCpu(RequestCpu());
        req->conn->ReceiveRequest(kRequestBytes);
      },
      [this, req] {
        // Stage 2: cache lookup; a miss occupies the disk arm. Stamp the
        // owning tenant first — this continuation fires from the CPU
        // resource, not from the request's own context.
        ctx_->set_active_tenant(req->tenant);
        uint64_t size = io_->fs().SizeOf(req->file);
        io_->ReadExtentAsync(
            req->file, 0, size,
            [this, req, size](iolite::Aggregate body, bool miss) {
              req->cache_hit = !miss;
              // Stage 3: mmap fault mapping (cold data only), header build,
              // writev — one gathered copy + checksum into socket buffers.
              CpuStage(
                  [this, req, size, miss, body = std::move(body)] {
                    if (miss) {
                      ctx_->ChargeCpu(ctx_->cost().PageMapCost(ctx_->cost().PagesFor(size)));
                      ctx_->stats().pages_mapped += ctx_->cost().PagesFor(size);
                    }
                    char header[kResponseHeaderBytes];
                    size_t header_len = BuildResponseHeader(header, size);
                    ctx_->ChargeCpu(ctx_->cost().SyscallCost());
                    ctx_->stats().syscalls++;
                    req->response_bytes =
                        req->conn->SendGatheredCopy(header, header_len, body);
                  },
                  // Stage 4: per-segment transmission on the shared link.
                  [this, req] { TransmitStage(req); });
            });
      });
}

void SendfileServer::StartRequest(RequestContext* req) {
  CpuStage(
      [this, req] {
        ctx_->ChargeCpu(ctx_->cost().params().flash_request_cpu);
        req->conn->ReceiveRequest(kRequestBytes);
        // One sendfile(2) call: file -> socket entirely inside the kernel.
        ctx_->ChargeCpu(ctx_->cost().SyscallCost());
        ctx_->stats().syscalls++;
      },
      [this, req] {
        ctx_->set_active_tenant(req->tenant);
        uint64_t size = io_->fs().SizeOf(req->file);
        io_->ReadExtentAsync(
            req->file, 0, size,
            [this, req, size](iolite::Aggregate body, bool miss) {
              req->cache_hit = !miss;
              CpuStage(
                  [this, req, size, body = std::move(body)] {
                    // The in-transit pages must be protected against
                    // modification (the "copy-on-write / exclusive locks" of
                    // Section 6.7): one protection operation per chunk per
                    // transmission.
                    int chunks = 0;
                    for (const iolite::Slice& s : body.slices()) {
                      chunks += static_cast<int>(s.buffer()->chunks().size());
                    }
                    ctx_->ChargeCpu(ctx_->cost().PageProtectCost(1) * chunks * 2);

                    char header[kResponseHeaderBytes];
                    size_t header_len = BuildResponseHeader(header, size);
                    // The header is prepended in kernel mbufs; the body moves
                    // by reference — but its checksum cannot be cached:
                    // sendfile has no generation numbers, so the TCP layer
                    // must assume the file may have changed.
                    bool cache_was_enabled = net_->checksum().cache_enabled();
                    net_->checksum().set_cache_enabled(false);
                    // Header bytes travel as an inline mbuf: copied (tiny)
                    // and checksummed.
                    ctx_->ChargeCpu(ctx_->cost().CopyCost(header_len));
                    ctx_->stats().bytes_copied += header_len;
                    ctx_->stats().copy_ops++;
                    req->response_bytes = header_len + req->conn->SendAggregate(body);
                    ctx_->ChargeCpu(ctx_->cost().ChecksumCost(header_len));
                    net_->checksum().set_cache_enabled(cache_was_enabled);
                  },
                  [this, req] { TransmitStage(req); });
            });
      });
}

FlashLiteServer::FlashLiteServer(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net,
                                 iolfs::FileIoService* io, iolite::IoLiteRuntime* runtime)
    : HttpServer(ctx, net, io), runtime_(runtime) {
  domain_ = ctx_->vm().CreateDomain("flash-lite");
  // Headers and other server-generated data come from the server's own
  // pool (its ACL is the server process; Section 3.10).
  header_pool_ = runtime_->CreatePool("flash-lite-headers", domain_);
}

void FlashLiteServer::StartRequest(RequestContext* req) {
  CpuStage(
      [this, req] {
        ctx_->ChargeCpu(ctx_->cost().params().flash_request_cpu);
        req->conn->ReceiveRequest(kRequestBytes);
        // IOL_read syscall boundary; the read itself proceeds in stage 2.
        ctx_->ChargeCpu(ctx_->cost().SyscallCost());
        ctx_->stats().syscalls++;
      },
      [this, req] {
        // IOL_read: an aggregate referencing the cache's immutable buffers;
        // a miss occupies the disk arm before the request continues.
        ctx_->set_active_tenant(req->tenant);
        uint64_t size = io_->fs().SizeOf(req->file);
        io_->ReadExtentAsync(
            req->file, 0, size,
            [this, req, size](iolite::Aggregate body, bool miss) {
              req->cache_hit = !miss;
              CpuStage(
                  [this, req, size, body = std::move(body)] {
                    // The buffers' chunks are mapped into the server domain
                    // (cold chunks only — mappings persist, so a popular
                    // document costs nothing here).
                    runtime_->MapAggregate(body, domain_);

                    iolite::Aggregate response = iolite::Aggregate::FromBuffer(
                        MakeIoLiteHeader(ctx_, header_pool_, size));
                    response.Append(body);

                    // IOL_write: payload by reference; checksum of the body
                    // slices comes from the checksum cache when the document
                    // was transmitted before. The header buffer was just
                    // reallocated (new generation), so only it is summed.
                    ctx_->ChargeCpu(ctx_->cost().SyscallCost());
                    ctx_->stats().syscalls++;
                    req->response_bytes = req->conn->SendAggregate(response);
                  },
                  [this, req] { TransmitStage(req); });
            });
      });
}

}  // namespace iolhttp
