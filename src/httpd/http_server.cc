#include "src/httpd/http_server.h"

#include <cstring>

namespace iolhttp {

size_t FlashServer::HandleRequest(iolnet::TcpConnection* conn, iolfs::FileId file) {
  ctx_->ChargeCpu(RequestCpu());
  conn->ReceiveRequest(kRequestBytes);

  uint64_t size = io_->fs().SizeOf(file);
  // mmap semantics: file data is accessed in place from the (unified)
  // cache; no copy into user space. On a miss the data comes from disk and
  // the freshly faulted pages must be mapped.
  bool miss = false;
  iolite::Aggregate body = io_->ReadExtent(file, 0, size, &miss);
  if (miss) {
    ctx_->ChargeCpu(ctx_->cost().PageMapCost(ctx_->cost().PagesFor(size)));
    ctx_->stats().pages_mapped += ctx_->cost().PagesFor(size);
  }

  char header[kResponseHeaderBytes];
  size_t header_len = BuildHeader(header, size);

  // writev(2): gathers header + mapped file into the socket send buffer.
  ctx_->ChargeCpu(ctx_->cost().SyscallCost());
  ctx_->stats().syscalls++;
  return conn->SendGatheredCopy(header, header_len, body);
}

size_t SendfileServer::HandleRequest(iolnet::TcpConnection* conn, iolfs::FileId file) {
  ctx_->ChargeCpu(ctx_->cost().params().flash_request_cpu);
  conn->ReceiveRequest(kRequestBytes);

  uint64_t size = io_->fs().SizeOf(file);
  // One sendfile(2) call: file -> socket entirely inside the kernel.
  ctx_->ChargeCpu(ctx_->cost().SyscallCost());
  ctx_->stats().syscalls++;
  iolite::Aggregate body = io_->ReadExtent(file, 0, size);

  // The in-transit pages must be protected against modification (the
  // "copy-on-write / exclusive locks" of Section 6.7): one protection
  // operation per chunk per transmission.
  int chunks = 0;
  for (const iolite::Slice& s : body.slices()) {
    chunks += static_cast<int>(s.buffer()->chunks().size());
  }
  ctx_->ChargeCpu(ctx_->cost().PageProtectCost(1) * chunks * 2);  // Lock + unlock.

  char header[kResponseHeaderBytes];
  size_t header_len = BuildHeader(header, size);
  iolite::Aggregate response;
  // The header is prepended in kernel mbufs; the body moves by reference —
  // but its checksum cannot be cached: sendfile has no generation numbers,
  // so the TCP layer must assume the file may have changed.
  bool cache_was_enabled = net_->checksum().cache_enabled();
  net_->checksum().set_cache_enabled(false);
  // Header bytes travel as an inline mbuf: copied (tiny) and checksummed.
  ctx_->ChargeCpu(ctx_->cost().CopyCost(header_len));
  ctx_->stats().bytes_copied += header_len;
  ctx_->stats().copy_ops++;
  size_t sent = header_len + conn->SendAggregate(body);
  ctx_->ChargeCpu(ctx_->cost().ChecksumCost(header_len));
  net_->checksum().set_cache_enabled(cache_was_enabled);
  return sent;
}

FlashLiteServer::FlashLiteServer(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net,
                                 iolfs::FileIoService* io, iolite::IoLiteRuntime* runtime)
    : HttpServer(ctx, net, io), runtime_(runtime) {
  domain_ = ctx_->vm().CreateDomain("flash-lite");
  // Headers and other server-generated data come from the server's own
  // pool (its ACL is the server process; Section 3.10).
  header_pool_ = runtime_->CreatePool("flash-lite-headers", domain_);
}

size_t FlashLiteServer::HandleRequest(iolnet::TcpConnection* conn, iolfs::FileId file) {
  ctx_->ChargeCpu(ctx_->cost().params().flash_request_cpu);
  conn->ReceiveRequest(kRequestBytes);

  uint64_t size = io_->fs().SizeOf(file);
  // IOL_read: an aggregate referencing the cache's immutable buffers; the
  // buffers' chunks are mapped into the server domain (cold chunks only —
  // mappings persist, so a popular document costs nothing here).
  ctx_->ChargeCpu(ctx_->cost().SyscallCost());
  ctx_->stats().syscalls++;
  iolite::Aggregate body = io_->ReadExtent(file, 0, size);
  runtime_->MapAggregate(body, domain_);

  // Response header: allocated from IO-Lite space instead of malloc
  // (Section 5: "allocating memory for response headers ... is handled
  // with memory allocation from IO-Lite space").
  char header[kResponseHeaderBytes];
  size_t header_len = BuildHeader(header, size);
  iolite::BufferRef hbuf = header_pool_->Allocate(header_len);
  std::memcpy(hbuf->writable_data(), header, header_len);
  ctx_->ChargeCpu(ctx_->cost().CopyCost(header_len));
  ctx_->stats().bytes_copied += header_len;
  ctx_->stats().copy_ops++;
  hbuf->Seal(header_len);

  iolite::Aggregate response = iolite::Aggregate::FromBuffer(std::move(hbuf));
  response.Append(body);

  // IOL_write: payload by reference; checksum of the body slices comes from
  // the checksum cache when the document was transmitted before. The header
  // buffer was just reallocated (new generation), so only it is summed.
  ctx_->ChargeCpu(ctx_->cost().SyscallCost());
  ctx_->stats().syscalls++;
  return conn->SendAggregate(response);
}

}  // namespace iolhttp
