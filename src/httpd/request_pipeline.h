// The staged, event-driven request pipeline.
//
// A request is a chain of continuations walking the stages
//
//   parse -> cache lookup -> (async) disk I/O -> header build / CGI hop
//         -> checksum + enqueue -> transmit
//
// Each stage acquires the machine's contended resources (N-way CPU, disk
// arm, shared link — see SimContext::cpu()/disk()/link()) at the moment it
// runs, so the CPU work of one request overlaps the disk and wire time of
// others. This replaces the old model that executed a request's whole data
// path under one cost tally and scheduled the summed demand post hoc.
//
// Mechanically, a stage's *body* (side effects: cache updates, checksum
// cache, buffer movement) executes when the stage is entered, under a
// micro-tally that captures its CPU/disk demand without advancing the
// clock; the demand is then pushed through the FIFO resources and the next
// stage resumes at the completion event.
//
// Allocation contract: the body runs synchronously and is a template
// parameter — it may capture anything (aggregates included) at zero cost.
// The continuation `next` is an InlineCallback: it is stored in the event
// heap, so its capture must fit kInlineCallbackBytes — in practice a couple
// of pointers. Oversized captures fail to compile.

#ifndef SRC_HTTPD_REQUEST_PIPELINE_H_
#define SRC_HTTPD_REQUEST_PIPELINE_H_

#include <cassert>
#include <utility>

#include "src/fs/sim_file_system.h"
#include "src/simos/inline_function.h"
#include "src/simos/sim_context.h"

namespace iolnet {
class TcpConnection;
}

namespace iolhttp {

// One in-flight request walking the staged pipeline. Owned by the caller
// (driver, or the synchronous HandleRequest wrapper); must stay alive until
// `on_done` has fired. Callers reuse the same context across requests
// (driver lanes are pooled), so steady-state request turnover allocates
// nothing.
struct RequestContext {
  iolnet::TcpConnection* conn = nullptr;
  iolfs::FileId file = iolfs::kInvalidFile;
  // Header + body bytes of the response, set once the response is queued.
  size_t response_bytes = 0;
  // Whether the body came from the unified cache (set by the server's
  // cache-lookup stage; stays false for generated content, e.g. CGI).
  bool cache_hit = false;
  // Owning tenant (multi-tenant QoS plane, src/qos). Assigned by the
  // classifier at issue/parse time; kDefaultTenant for single-tenant runs.
  iolsim::TenantId tenant = iolsim::kDefaultTenant;
  // Invoked exactly once, when the last response byte has left the wire.
  iolsim::InlineFunction<void(RequestContext*)> on_done;
};

// Pushes a measured stage demand through explicit FIFO resources — `disk`
// first if the stage did disk work (e.g. metadata I/O), then `cpu` — and
// resumes `next` at the completion event. A stage with zero demand still
// hands control back through the event queue, preserving deterministic
// stage ordering. `disk` may be null for stages that structurally cannot do
// disk work (e.g. the proxy tier's front-cache stages, whose machine has no
// disk in the model); such a stage asserting disk demand is a bug.
inline void DispatchStageDemandOn(iolsim::SimContext* ctx, iolsim::Resource* cpu,
                                  iolsim::Resource* disk, const iolsim::Tally& tally,
                                  iolsim::InlineCallback next) {
  if (tally.disk > 0) {
    assert(disk != nullptr && "stage charged disk time on a diskless pipeline");
    ctx->chain().AcquireThenAsync(disk, tally.disk, cpu, tally.cpu, std::move(next));
  } else {
    cpu->AcquireAsync(&ctx->events(), tally.cpu, std::move(next));
  }
}

// Pushes a measured stage demand through the machine's own resources
// (SimContext::cpu()/disk()).
inline void DispatchStageDemand(iolsim::SimContext* ctx, const iolsim::Tally& tally,
                                iolsim::InlineCallback next) {
  DispatchStageDemandOn(ctx, &ctx->cpu(), &ctx->disk(), tally, std::move(next));
}

// Runs `body` immediately under a micro-tally, then dispatches the measured
// demand onto explicit resources (see DispatchStageDemandOn). This is the
// stage primitive for pipelines that do not run on the machine's own
// CPU/disk — the proxy tier schedules its stages on the proxy machine's CPU
// this way while reusing the same tally mechanics as the origin servers.
template <typename Body>
void RunStageOn(iolsim::SimContext* ctx, iolsim::Resource* cpu, iolsim::Resource* disk,
                Body&& body, iolsim::InlineCallback next) {
  assert(!ctx->tally_active() && "stages do not nest");
  iolsim::Tally tally;
  {
    iolsim::TallyScope scope(ctx, &tally);
    body();
  }
  DispatchStageDemandOn(ctx, cpu, disk, tally, std::move(next));
}

// Runs `body` immediately under a micro-tally, then dispatches the measured
// demand onto the machine's own resources (see DispatchStageDemand).
template <typename Body>
void RunCpuStage(iolsim::SimContext* ctx, Body&& body, iolsim::InlineCallback next) {
  RunStageOn(ctx, &ctx->cpu(), &ctx->disk(), std::forward<Body>(body), std::move(next));
}

}  // namespace iolhttp

#endif  // SRC_HTTPD_REQUEST_PIPELINE_H_
