// The staged, event-driven request pipeline.
//
// A request is a chain of continuations walking the stages
//
//   parse -> cache lookup -> (async) disk I/O -> header build / CGI hop
//         -> checksum + enqueue -> transmit
//
// Each stage acquires the machine's contended resources (N-way CPU, disk
// arm, shared link — see SimContext::cpu()/disk()/link()) at the moment it
// runs, so the CPU work of one request overlaps the disk and wire time of
// others. This replaces the old model that executed a request's whole data
// path under one cost tally and scheduled the summed demand post hoc.
//
// Mechanically, a stage's *body* (side effects: cache updates, checksum
// cache, buffer movement) executes when the stage is entered, under a
// micro-tally that captures its CPU/disk demand without advancing the
// clock; the demand is then pushed through the FIFO resources and the next
// stage resumes at the completion event.
//
// Allocation contract: the body runs synchronously and is a template
// parameter — it may capture anything (aggregates included) at zero cost.
// The continuation `next` is an InlineCallback: it is stored in the event
// heap, so its capture must fit kInlineCallbackBytes — in practice a couple
// of pointers. Oversized captures fail to compile.

#ifndef SRC_HTTPD_REQUEST_PIPELINE_H_
#define SRC_HTTPD_REQUEST_PIPELINE_H_

#include <cassert>
#include <utility>

#include "src/fs/sim_file_system.h"
#include "src/simos/inline_function.h"
#include "src/simos/sim_context.h"

namespace iolnet {
class TcpConnection;
}

namespace iolhttp {

// One in-flight request walking the staged pipeline. Owned by the caller
// (driver, or the synchronous HandleRequest wrapper); must stay alive until
// `on_done` has fired. Callers reuse the same context across requests
// (driver lanes are pooled), so steady-state request turnover allocates
// nothing.
struct RequestContext {
  iolnet::TcpConnection* conn = nullptr;
  iolfs::FileId file = iolfs::kInvalidFile;
  // Header + body bytes of the response, set once the response is queued.
  size_t response_bytes = 0;
  // Whether the body came from the unified cache (set by the server's
  // cache-lookup stage; stays false for generated content, e.g. CGI).
  bool cache_hit = false;
  // Invoked exactly once, when the last response byte has left the wire.
  iolsim::InlineFunction<void(RequestContext*)> on_done;
};

// Pushes a measured stage demand through the machine's FIFO resources —
// disk first if the stage did disk work (e.g. metadata I/O), then the CPU —
// and resumes `next` at the completion event. A stage with zero demand
// still hands control back through the event queue, preserving
// deterministic stage ordering.
inline void DispatchStageDemand(iolsim::SimContext* ctx, const iolsim::Tally& tally,
                                iolsim::InlineCallback next) {
  if (tally.disk > 0) {
    ctx->chain().AcquireThenAsync(&ctx->disk(), tally.disk, &ctx->cpu(), tally.cpu,
                                  std::move(next));
  } else {
    ctx->cpu().AcquireAsync(&ctx->events(), tally.cpu, std::move(next));
  }
}

// Runs `body` immediately under a micro-tally, then dispatches the measured
// demand (see DispatchStageDemand).
template <typename Body>
void RunCpuStage(iolsim::SimContext* ctx, Body&& body, iolsim::InlineCallback next) {
  assert(!ctx->tally_active() && "stages do not nest");
  iolsim::Tally tally;
  {
    iolsim::TallyScope scope(ctx, &tally);
    body();
  }
  DispatchStageDemand(ctx, tally, std::move(next));
}

}  // namespace iolhttp

#endif  // SRC_HTTPD_REQUEST_PIPELINE_H_
