// Client populations driving a server model over the staged request
// pipeline (Section 5.1's methodology, generalized).
//
// The driver is a thin layer over the same event engine the servers run
// on: it issues requests, admits them to the server (queueing — never
// dropping — when DriverConfig::max_concurrent caps concurrency), lets the
// staged pipeline acquire CPU/disk/link as each stage runs, and schedules
// client-side completions (plus optional WAN delay-router latency,
// Section 5.7). Two arrival models:
//
//  * Closed loop (default): each client issues a new request as soon as the
//    response to its previous one arrives; persistent connections may keep
//    `pipeline_depth` requests in flight (HTTP/1.1 pipelining).
//  * Open loop: requests arrive in a Poisson stream at `arrivals_per_sec`,
//    independent of completions, over a growing connection pool.

#ifndef SRC_HTTPD_DRIVER_H_
#define SRC_HTTPD_DRIVER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/httpd/http_server.h"
#include "src/httpd/request_pipeline.h"
#include "src/net/tcp.h"
#include "src/simos/event_queue.h"
#include "src/simos/rng.h"
#include "src/simos/sim_context.h"

namespace iolhttp {

struct DriverConfig {
  int num_clients = 40;
  bool persistent_connections = false;
  // Stop after this many counted (post-warmup) request completions.
  uint64_t max_requests = 20000;
  // Completions ignored at the start (cold caches, cold mappings).
  uint64_t warmup_requests = 0;
  iolnet::DelayRouter delay;
  // Cap on concurrently served connections (Apache process model); 0 = off.
  // Excess arrivals wait in a FIFO accept queue — they are never dropped.
  int max_concurrent = 0;
  // Enforce the file-cache byte budget from the memory model after each
  // request (trace experiments). Off for single-file tests.
  bool enforce_cache_budget = false;
  // Requests a client keeps in flight on its persistent connection
  // (HTTP/1.1 pipelining). Ignored for nonpersistent connections.
  int pipeline_depth = 1;
  // Open-loop (Poisson) arrivals instead of the closed loop.
  bool open_loop = false;
  double arrivals_per_sec = 0;
  uint64_t arrival_seed = 0x9e3779b9;
};

struct DriverResult {
  uint64_t requests = 0;
  uint64_t bytes = 0;
  double seconds = 0;
  double megabits_per_sec = 0;
  double cache_hit_rate = 0;
  // High-water mark of concurrently served requests.
  int peak_concurrent = 0;
  // Arrivals that had to wait in the accept queue (max_concurrent).
  uint64_t admission_waits = 0;
};

class LoadDriver {
 public:
  // Returns the file to request next (shared across clients; called in
  // service order).
  using RequestSource = std::function<iolfs::FileId()>;

  LoadDriver(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net,
             iolfs::FileCache* cache, HttpServer* server, DriverConfig config)
      : ctx_(ctx),
        net_(net),
        cache_(cache),
        server_(server),
        config_(config),
        arrival_rng_(config.arrival_seed) {}

  DriverResult Run(RequestSource next_file);

 private:
  // One request slot: a connection (shared by a client's pipelined lanes)
  // plus the in-flight request state. Heap-allocated so addresses stay
  // stable when the open-loop pool grows.
  struct Lane {
    iolnet::TcpConnection* conn = nullptr;
    size_t conn_index = 0;
    uint64_t seq = 0;  // Issue order on this lane's connection.
    RequestContext req;
  };

  // Per-connection pipelining state: responses are delivered to the client
  // in request-issue order (HTTP/1.1 pipelining head-of-line blocking),
  // even when the staged pipeline completes them out of order.
  struct ConnState {
    uint64_t next_issue = 0;
    uint64_t next_deliver = 0;
    // Completed out-of-order responses waiting for their turn: seq ->
    // (lane, bytes).
    std::map<uint64_t, std::pair<size_t, size_t>> done_out_of_order;
  };

  size_t AddLane(size_t conn_index);
  // Recomputes the steady-state memory the client population pins, for the
  // current pool size (open-loop growth re-runs this).
  void UpdateSteadyMemory();
  // Client issues: the request propagates to the server (one-way delay).
  void IssueRequest(size_t lane);
  // Request reaches the server: admitted now or queued behind
  // max_concurrent.
  void ArriveAtServer(size_t lane);
  // Admitted: connection setup (if needed) as a CPU stage, then the
  // server's staged pipeline.
  void ServeRequest(size_t lane);
  void OnServerDone(size_t lane);
  void OnClientReceive(size_t lane, size_t bytes);
  void ScheduleNextArrival();
  uint64_t CacheBudget() const;

  iolsim::SimContext* ctx_;
  iolnet::NetworkSubsystem* net_;
  iolfs::FileCache* cache_;
  HttpServer* server_;
  DriverConfig config_;
  iolsim::Rng arrival_rng_;
  RequestSource next_file_;

  std::vector<std::unique_ptr<iolnet::TcpConnection>> conns_;
  std::vector<ConnState> conn_state_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::deque<size_t> accept_queue_;
  std::vector<size_t> free_lanes_;  // Open loop: idle pool entries.

  int in_service_ = 0;
  int peak_in_service_ = 0;
  uint64_t admission_waits_ = 0;
  uint64_t completed_ = 0;  // All completions, including warmup.
  uint64_t counted_requests_ = 0;
  uint64_t counted_bytes_ = 0;
  iolsim::SimTime count_start_ = 0;
  bool done_ = false;
};

// Historical name from when the driver only spoke the closed-loop protocol;
// kept so existing call sites read naturally for that mode.
using ClosedLoopDriver = LoadDriver;

}  // namespace iolhttp

#endif  // SRC_HTTPD_DRIVER_H_
