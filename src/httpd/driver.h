// Compatibility wrapper over the composable experiment engine.
//
// The experiment API proper lives in src/driver/: Workload (arrival
// process) x Fleet (servers + balancer) x Telemetry (per-request records),
// composed by ioldrv::Experiment. LoadDriver survives as a thin adapter
// for the original flat-config, single-server, throughput-only entry
// point: DriverConfig is translated into a Workload + ExperimentConfig,
// DriverResult is the throughput slice of ExperimentResult. New code and
// new scenarios (fleets, trace replay, latency percentiles) should use the
// engine directly.

#ifndef SRC_HTTPD_DRIVER_H_
#define SRC_HTTPD_DRIVER_H_

#include <cstdint>
#include <functional>

#include "src/driver/experiment.h"
#include "src/httpd/http_server.h"
#include "src/net/tcp.h"
#include "src/simos/sim_context.h"

namespace iolhttp {

struct DriverConfig {
  int num_clients = 40;
  bool persistent_connections = false;
  // Stop after this many counted (post-warmup) request completions.
  uint64_t max_requests = 20000;
  // Completions ignored at the start (cold caches, cold mappings).
  uint64_t warmup_requests = 0;
  iolnet::DelayRouter delay;
  // Cap on concurrently served connections (Apache process model); 0 = off.
  // Excess arrivals wait in a FIFO accept queue — they are never dropped.
  int max_concurrent = 0;
  // Enforce the file-cache byte budget from the memory model after each
  // request (trace experiments). Off for single-file tests.
  bool enforce_cache_budget = false;
  // Requests a client keeps in flight on its persistent connection
  // (HTTP/1.1 pipelining). Ignored for nonpersistent connections.
  int pipeline_depth = 1;
  // Open-loop (Poisson) arrivals instead of the closed loop.
  bool open_loop = false;
  double arrivals_per_sec = 0;
  uint64_t arrival_seed = 0x9e3779b9;
};

struct DriverResult {
  uint64_t requests = 0;
  uint64_t bytes = 0;
  double seconds = 0;
  double megabits_per_sec = 0;
  double cache_hit_rate = 0;
  // High-water mark of concurrently served requests.
  int peak_concurrent = 0;
  // Arrivals that had to wait in the accept queue (max_concurrent).
  uint64_t admission_waits = 0;
};

class LoadDriver {
 public:
  // Returns the file to request next (shared across clients; called in
  // service order).
  using RequestSource = std::function<iolfs::FileId()>;

  LoadDriver(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net,
             iolfs::FileCache* cache, HttpServer* server, DriverConfig config)
      : ctx_(ctx), net_(net), cache_(cache), server_(server), config_(config) {}

  // One run per instance (the underlying engine's lanes and counters are
  // single-run state; a second call dies loudly).
  DriverResult Run(RequestSource next_file);

 private:
  iolsim::SimContext* ctx_;
  iolnet::NetworkSubsystem* net_;
  iolfs::FileCache* cache_;
  HttpServer* server_;
  DriverConfig config_;
  bool ran_ = false;
};

}  // namespace iolhttp

#endif  // SRC_HTTPD_DRIVER_H_
