// Closed-loop client population driving a server model (Section 5.1's
// methodology: "a client issues a new request as soon as a response is
// received for the previous request").
//
// Each request's data path is executed under a cost tally, then its CPU and
// disk demands are scheduled onto FIFO resources (single server CPU, single
// disk) and its payload onto the shared NIC-array link; the completion event
// triggers the client's next request. Optional delay routers add WAN
// round-trip time (Section 5.7).

#ifndef SRC_HTTPD_DRIVER_H_
#define SRC_HTTPD_DRIVER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/httpd/http_server.h"
#include "src/net/tcp.h"
#include "src/simos/event_queue.h"
#include "src/simos/sim_context.h"

namespace iolhttp {

struct DriverConfig {
  int num_clients = 40;
  bool persistent_connections = false;
  // Stop after this many counted (post-warmup) request completions.
  uint64_t max_requests = 20000;
  // Completions ignored at the start (cold caches, cold mappings).
  uint64_t warmup_requests = 0;
  iolnet::DelayRouter delay;
  // Cap on concurrently served connections (Apache process model); 0 = off.
  int max_concurrent = 0;
  // Enforce the file-cache byte budget from the memory model after each
  // request (trace experiments). Off for single-file tests.
  bool enforce_cache_budget = false;
};

struct DriverResult {
  uint64_t requests = 0;
  uint64_t bytes = 0;
  double seconds = 0;
  double megabits_per_sec = 0;
  double cache_hit_rate = 0;
};

class ClosedLoopDriver {
 public:
  // Returns the file to request next (shared across clients).
  using RequestSource = std::function<iolfs::FileId()>;

  ClosedLoopDriver(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net,
                   iolfs::FileCache* cache, HttpServer* server, DriverConfig config)
      : ctx_(ctx),
        net_(net),
        cache_(cache),
        server_(server),
        config_(config),
        cpu_(&ctx->clock()),
        disk_(&ctx->clock()),
        link_(&ctx->clock()) {}

  DriverResult Run(RequestSource next_file);

 private:
  struct Client {
    std::unique_ptr<iolnet::TcpConnection> conn;
  };

  void IssueRequest(int client_index, RequestSource& next_file);
  void OnComplete(int client_index, size_t bytes, RequestSource& next_file);
  uint64_t CacheBudget() const;

  iolsim::SimContext* ctx_;
  iolnet::NetworkSubsystem* net_;
  iolfs::FileCache* cache_;
  HttpServer* server_;
  DriverConfig config_;
  iolsim::Resource cpu_;
  iolsim::Resource disk_;
  iolsim::Resource link_;
  std::vector<Client> clients_;

  uint64_t completed_ = 0;       // All completions, including warmup.
  uint64_t counted_requests_ = 0;
  uint64_t counted_bytes_ = 0;
  iolsim::SimTime count_start_ = 0;
  bool done_ = false;
};

}  // namespace iolhttp

#endif  // SRC_HTTPD_DRIVER_H_
