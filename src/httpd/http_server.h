// The Web server family of the evaluation (Section 5).
//
// Three data-path models over the simulated OS:
//  * FlashServer — the paper's aggressively optimized event-driven server:
//    mmap-based file access (no read copy; page-map cost on faults), user
//    headers via malloc, writev gathering header+body into socket buffers
//    (one copy + one checksum per transmission).
//  * ApacheServer — same mmap/writev data path, but process-per-connection:
//    higher per-request CPU and a resident process per concurrent
//    connection (memory that shrinks the file cache).
//  * FlashLiteServer — Flash ported to the IO-Lite API: IOL_read from the
//    unified cache, header allocated from the server's IO-Lite pool,
//    IOL_write by reference, checksum served from the generation-keyed
//    cache for everything but the header.
//
// Every server is written as a staged continuation chain (StartRequest):
// each stage acquires the machine's CPU/disk/link resources as it runs, so
// concurrent requests overlap. HandleRequest is a synchronous convenience
// wrapper for direct-mode callers (tests, examples).

#ifndef SRC_HTTPD_HTTP_SERVER_H_
#define SRC_HTTPD_HTTP_SERVER_H_

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "src/fs/file_io.h"
#include "src/httpd/request_pipeline.h"
#include "src/httpd/response_header.h"
#include "src/iolite/runtime.h"
#include "src/net/tcp.h"
#include "src/qos/policy.h"
#include "src/simos/sim_context.h"

namespace iolhttp {

class HttpServer {
 public:
  HttpServer(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net, iolfs::FileIoService* io)
      : ctx_(ctx), net_(net), io_(io) {}
  virtual ~HttpServer() = default;

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  virtual const char* name() const = 0;

  // Whether connections to this server use the IO-Lite socket data path.
  virtual bool uses_iolite_sockets() const = 0;

  // Resident memory added per concurrent connection beyond socket buffers
  // (Apache: a worker process).
  virtual uint64_t per_connection_memory() const { return 0; }

  // Starts the staged pipeline for one request. `req` (caller-owned, alive
  // until completion) carries the connection and file; `req->on_done`
  // fires when the last response byte has left the wire.
  virtual void StartRequest(RequestContext* req) = 0;

  // Synchronous convenience for direct-mode callers: starts the pipeline
  // and drains the event queue until this request completes. Returns
  // response bytes (header + body).
  size_t HandleRequest(iolnet::TcpConnection* conn, iolfs::FileId file);

  // --- Fault plane (src/fault) ------------------------------------------
  // Crash/restart state for the member-crash fault. The staged pipeline's
  // resource reservations cannot be revoked mid-flight, so a crash is
  // modeled at the endpoints instead: the experiment engine consults
  // down() at arrival time (a down member black-holes new requests) and
  // compares crash_epoch() against the epoch captured at serve start when
  // the pipeline completes — a serve that began before the crash has its
  // response dropped on the floor, exactly what a dead process does with
  // its in-flight connections.
  bool down() const { return down_; }
  uint32_t crash_epoch() const { return crash_epoch_; }
  void Crash() {
    down_ = true;
    ++crash_epoch_;
  }
  void Restart() { down_ = false; }

 protected:
  // Stage scheduling helper; see RunCpuStage. The body is inlined and may
  // capture freely; `next` lives in the event heap and must fit an
  // InlineCallback.
  template <typename Body>
  void CpuStage(Body&& body, iolsim::InlineCallback next) {
    RunCpuStage(ctx_, std::forward<Body>(body), std::move(next));
  }

  // Terminal stage: per-segment transmission of the queued response. With a
  // QoS policy attached, the on_transmit stage hook fires first and may
  // hold the response (rate limiting); the deferred start re-establishes
  // the owning tenant so the link's fair queue attributes the segments.
  void TransmitStage(RequestContext* req) {
    // Re-establish the owner: this stage fires from a resource-completion
    // event, where the active tenant is whichever request finished last.
    ctx_->set_active_tenant(req->tenant);
    if (ctx_->qos() != nullptr) {
      iolsim::SimTime hold =
          ctx_->qos()->OnTransmit(req->tenant, req->response_bytes, ctx_->clock().now());
      if (hold > 0) {
        iolsim::SimContext* ctx = ctx_;
        ctx_->events().ScheduleAfter(hold, [ctx, req] {
          ctx->set_active_tenant(req->tenant);
          req->conn->TransmitAsync(req->response_bytes, [req] { req->on_done(req); });
        });
        return;
      }
    }
    req->conn->TransmitAsync(req->response_bytes, [req] { req->on_done(req); });
  }

  iolsim::SimContext* ctx_;
  iolnet::NetworkSubsystem* net_;
  iolfs::FileIoService* io_;

 private:
  bool down_ = false;
  uint32_t crash_epoch_ = 0;
};

// Flash: mmap + writev (Section 5, "Flash uses memory-mapped files to read
// disk data").
class FlashServer : public HttpServer {
 public:
  using HttpServer::HttpServer;

  const char* name() const override { return "Flash"; }
  bool uses_iolite_sockets() const override { return false; }
  void StartRequest(RequestContext* req) override;

 protected:
  // Per-request CPU beyond the data path (event loop, parse, headers).
  virtual iolsim::SimTime RequestCpu() const { return ctx_->cost().params().flash_request_cpu; }
};

// Apache 1.3.1 model: Flash's data path, process-per-connection overheads.
class ApacheServer : public FlashServer {
 public:
  using FlashServer::FlashServer;

  const char* name() const override { return "Apache"; }
  uint64_t per_connection_memory() const override {
    return ctx_->cost().params().apache_process_bytes;
  }

 protected:
  iolsim::SimTime RequestCpu() const override {
    return ctx_->cost().params().apache_request_cpu;
  }
};

// sendfile(2)-style monolithic-syscall baseline (Section 6.7): the kernel
// transmits file-cache data to the socket with no user-level copy, in one
// system call. Copy-free like IO-Lite on the static path, but (a) the
// checksum must be recomputed on every transmission — there is no
// system-wide content identity to key a checksum cache on — and (b) an
// internal mechanism (here modelled as a per-chunk lock toggle) must keep
// applications from modifying in-transit file data. No help for CGI.
class SendfileServer : public HttpServer {
 public:
  using HttpServer::HttpServer;

  const char* name() const override { return "Flash-sendfile"; }
  bool uses_iolite_sockets() const override { return true; }  // No Tss copy buffer.
  void StartRequest(RequestContext* req) override;
};

// Flash-Lite: the IO-Lite API data path.
class FlashLiteServer : public HttpServer {
 public:
  FlashLiteServer(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net,
                  iolfs::FileIoService* io, iolite::IoLiteRuntime* runtime);

  const char* name() const override { return "Flash-Lite"; }
  bool uses_iolite_sockets() const override { return true; }
  void StartRequest(RequestContext* req) override;

  iolsim::DomainId domain() const { return domain_; }

 private:
  iolite::IoLiteRuntime* runtime_;
  iolsim::DomainId domain_;
  iolite::BufferPool* header_pool_;
};

}  // namespace iolhttp

#endif  // SRC_HTTPD_HTTP_SERVER_H_
