// The Web server family of the evaluation (Section 5).
//
// Three data-path models over the simulated OS:
//  * FlashServer — the paper's aggressively optimized event-driven server:
//    mmap-based file access (no read copy; page-map cost on faults), user
//    headers via malloc, writev gathering header+body into socket buffers
//    (one copy + one checksum per transmission).
//  * ApacheServer — same mmap/writev data path, but process-per-connection:
//    higher per-request CPU and a resident process per concurrent
//    connection (memory that shrinks the file cache).
//  * FlashLiteServer — Flash ported to the IO-Lite API: IOL_read from the
//    unified cache, header allocated from the server's IO-Lite pool,
//    IOL_write by reference, checksum served from the generation-keyed
//    cache for everything but the header.
//
// Servers charge CPU/disk costs through the SimContext; wire transmission
// and queueing belong to the closed-loop driver.

#ifndef SRC_HTTPD_HTTP_SERVER_H_
#define SRC_HTTPD_HTTP_SERVER_H_

#include <cassert>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/fs/file_io.h"
#include "src/iolite/runtime.h"
#include "src/net/tcp.h"
#include "src/simos/sim_context.h"

namespace iolhttp {

// Typical HTTP/1.0 response header and request sizes.
constexpr size_t kResponseHeaderBytes = 250;
constexpr size_t kRequestBytes = 300;

class HttpServer {
 public:
  HttpServer(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net, iolfs::FileIoService* io)
      : ctx_(ctx), net_(net), io_(io) {}
  virtual ~HttpServer() = default;

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  virtual const char* name() const = 0;

  // Whether connections to this server use the IO-Lite socket data path.
  virtual bool uses_iolite_sockets() const = 0;

  // Resident memory added per concurrent connection beyond socket buffers
  // (Apache: a worker process).
  virtual uint64_t per_connection_memory() const { return 0; }

  // Serves one request for `file` on `conn`; returns response bytes
  // (header + body). Charges all CPU/disk costs via the SimContext.
  virtual size_t HandleRequest(iolnet::TcpConnection* conn, iolfs::FileId file) = 0;

 protected:
  // Builds a plausible response header into `buf` (real bytes, so checksums
  // over it are real). Returns the header length (kResponseHeaderBytes).
  // The header terminates with the blank line ("\r\n\r\n") that separates it
  // from the body; an X-Pad comment header absorbs the padding.
  size_t BuildHeader(char* buf, uint64_t content_length) const {
    int n = std::snprintf(buf, kResponseHeaderBytes,
                          "HTTP/1.0 200 OK\r\n"
                          "Server: iolite-sim/1.0\r\n"
                          "Content-Type: text/html\r\n"
                          "Content-Length: %llu\r\n"
                          "X-Pad: ",
                          static_cast<unsigned long long>(content_length));
    assert(n > 0 && static_cast<size_t>(n) <= kResponseHeaderBytes - 4);
    for (size_t i = n; i < kResponseHeaderBytes - 4; ++i) {
      buf[i] = 'x';
    }
    std::memcpy(buf + kResponseHeaderBytes - 4, "\r\n\r\n", 4);
    return kResponseHeaderBytes;
  }

  iolsim::SimContext* ctx_;
  iolnet::NetworkSubsystem* net_;
  iolfs::FileIoService* io_;
};

// Flash: mmap + writev (Section 5, "Flash uses memory-mapped files to read
// disk data").
class FlashServer : public HttpServer {
 public:
  using HttpServer::HttpServer;

  const char* name() const override { return "Flash"; }
  bool uses_iolite_sockets() const override { return false; }
  size_t HandleRequest(iolnet::TcpConnection* conn, iolfs::FileId file) override;

 protected:
  // Per-request CPU beyond the data path (event loop, parse, headers).
  virtual iolsim::SimTime RequestCpu() const { return ctx_->cost().params().flash_request_cpu; }
};

// Apache 1.3.1 model: Flash's data path, process-per-connection overheads.
class ApacheServer : public FlashServer {
 public:
  using FlashServer::FlashServer;

  const char* name() const override { return "Apache"; }
  uint64_t per_connection_memory() const override {
    return ctx_->cost().params().apache_process_bytes;
  }

 protected:
  iolsim::SimTime RequestCpu() const override {
    return ctx_->cost().params().apache_request_cpu;
  }
};

// sendfile(2)-style monolithic-syscall baseline (Section 6.7): the kernel
// transmits file-cache data to the socket with no user-level copy, in one
// system call. Copy-free like IO-Lite on the static path, but (a) the
// checksum must be recomputed on every transmission — there is no
// system-wide content identity to key a checksum cache on — and (b) an
// internal mechanism (here modelled as a per-chunk lock toggle) must keep
// applications from modifying in-transit file data. No help for CGI.
class SendfileServer : public HttpServer {
 public:
  using HttpServer::HttpServer;

  const char* name() const override { return "Flash-sendfile"; }
  bool uses_iolite_sockets() const override { return true; }  // No Tss copy buffer.
  size_t HandleRequest(iolnet::TcpConnection* conn, iolfs::FileId file) override;
};

// Flash-Lite: the IO-Lite API data path.
class FlashLiteServer : public HttpServer {
 public:
  FlashLiteServer(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net,
                  iolfs::FileIoService* io, iolite::IoLiteRuntime* runtime);

  const char* name() const override { return "Flash-Lite"; }
  bool uses_iolite_sockets() const override { return true; }
  size_t HandleRequest(iolnet::TcpConnection* conn, iolfs::FileId file) override;

  iolsim::DomainId domain() const { return domain_; }

 private:
  iolite::IoLiteRuntime* runtime_;
  iolsim::DomainId domain_;
  iolite::BufferPool* header_pool_;
};

}  // namespace iolhttp

#endif  // SRC_HTTPD_HTTP_SERVER_H_
