// FastCGI dynamic-content generation (Sections 3.10 and 5.3).
//
// The paper's test CGI program, on each request, sends a "dynamic" document
// of a given size from its memory to the server over a UNIX pipe; the
// server forwards it to the client.
//
//  * Copy path (Flash/Apache + CGI): the document crosses the pipe with a
//    copy in and a copy out, then a third copy into the socket buffer —
//    which is why their CGI bandwidth is roughly half their static
//    bandwidth.
//  * IO-Lite path (Flash-Lite + CGI): the CGI process keeps the document in
//    buffers from its own ACL pool; the pipe transfer moves references, the
//    server maps the chunks once, the checksum is cached after the first
//    transmission — CGI approaches static-content speed without giving up
//    fault isolation.

#ifndef SRC_HTTPD_CGI_H_
#define SRC_HTTPD_CGI_H_

#include <memory>
#include <vector>

#include "src/httpd/http_server.h"
#include "src/iolite/pipe.h"
#include "src/posix/posix_io.h"

namespace iolhttp {

// A FastCGI process using copy-based pipes (conventional UNIX).
class CopyCgiProcess {
 public:
  CopyCgiProcess(iolsim::SimContext* ctx, size_t doc_bytes);

  // Handles one FastCGI request: writes the document into the pipe.
  void ProduceResponse(iolposix::PosixPipe* pipe);

  size_t doc_bytes() const { return doc_.size(); }

 private:
  iolsim::SimContext* ctx_;
  std::vector<char> doc_;
};

// A FastCGI process using the IO-Lite API: the cached document lives in
// buffers from the CGI process's own pool (separate ACL, Section 3.10).
class LiteCgiProcess {
 public:
  LiteCgiProcess(iolsim::SimContext* ctx, iolite::IoLiteRuntime* runtime, size_t doc_bytes);

  // Handles one FastCGI request: pushes the (cached) document aggregate
  // into the pipe channel by reference.
  void ProduceResponse(iolite::PipeChannel* channel);

  size_t doc_bytes() const { return doc_.size(); }
  iolsim::DomainId domain() const { return domain_; }

 private:
  iolsim::SimContext* ctx_;
  iolsim::DomainId domain_;
  iolite::BufferPool* pool_;
  iolite::Aggregate doc_;
};

// Flash (or Apache) serving FastCGI content over a copy-based pipe.
class CopyCgiServer : public HttpServer {
 public:
  CopyCgiServer(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net, iolfs::FileIoService* io,
                size_t doc_bytes, bool apache_costs = false);

  const char* name() const override { return apache_costs_ ? "Apache-CGI" : "Flash-CGI"; }
  bool uses_iolite_sockets() const override { return false; }
  uint64_t per_connection_memory() const override {
    return apache_costs_ ? ctx_->cost().params().apache_process_bytes : 0;
  }
  size_t HandleRequest(iolnet::TcpConnection* conn, iolfs::FileId file) override;

 private:
  bool apache_costs_;
  CopyCgiProcess cgi_;
  iolposix::PosixPipe pipe_;
  std::vector<char> server_buf_;
};

// Flash-Lite serving FastCGI content over an IO-Lite pipe.
class LiteCgiServer : public HttpServer {
 public:
  LiteCgiServer(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net, iolfs::FileIoService* io,
                iolite::IoLiteRuntime* runtime, size_t doc_bytes);

  const char* name() const override { return "Flash-Lite-CGI"; }
  bool uses_iolite_sockets() const override { return true; }
  size_t HandleRequest(iolnet::TcpConnection* conn, iolfs::FileId file) override;

 private:
  iolite::IoLiteRuntime* runtime_;
  iolsim::DomainId server_domain_;
  iolite::BufferPool* header_pool_;
  LiteCgiProcess cgi_;
  std::shared_ptr<iolite::PipeChannel> channel_;
};

}  // namespace iolhttp

#endif  // SRC_HTTPD_CGI_H_
