// FastCGI dynamic-content generation (Sections 3.10 and 5.3).
//
// The paper's test CGI program, on each request, sends a "dynamic" document
// of a given size from its memory to the server over a UNIX pipe; the
// server forwards it to the client.
//
//  * Copy path (Flash/Apache + CGI): the document crosses the pipe with a
//    copy in and a copy out, then a third copy into the socket buffer —
//    which is why their CGI bandwidth is roughly half their static
//    bandwidth.
//  * IO-Lite path (Flash-Lite + CGI): the CGI process keeps the document in
//    buffers from its own ACL pool; the pipe transfer moves references, the
//    server maps the chunks once, the checksum is cached after the first
//    transmission — CGI approaches static-content speed without giving up
//    fault isolation.

#ifndef SRC_HTTPD_CGI_H_
#define SRC_HTTPD_CGI_H_

#include <memory>
#include <vector>

#include "src/httpd/http_server.h"
#include "src/iolite/pipe.h"
#include "src/ipc/ring_channel.h"
#include "src/ipc/shm_pool.h"
#include "src/ipc/shm_region.h"
#include "src/posix/posix_io.h"

namespace iolhttp {

// Transport carrying the CGI process's response to the server:
//  * kSimulatedPipe — the in-simulator PipeChannel with charged costs
//    (the seed's original data path).
//  * kShmRing — the real shared-memory transport of src/ipc: the document
//    lives in a ShmRegion-backed pool and crosses to the server as 32-byte
//    descriptors through a lock-free SPSC ring. Byte-identical output,
//    measurably zero payload copies (stats().ipc_bytes_copied == 0).
enum class CgiTransport {
  kSimulatedPipe,
  kShmRing,
};

// A FastCGI process using copy-based pipes (conventional UNIX).
class CopyCgiProcess {
 public:
  CopyCgiProcess(iolsim::SimContext* ctx, size_t doc_bytes);

  // Handles one FastCGI request: writes the document into the pipe.
  void ProduceResponse(iolposix::PosixPipe* pipe);

  size_t doc_bytes() const { return doc_.size(); }

 private:
  iolsim::SimContext* ctx_;
  std::vector<char> doc_;
};

// A FastCGI process using the IO-Lite API: the cached document lives in
// buffers from the CGI process's own pool (separate ACL, Section 3.10).
class LiteCgiProcess {
 public:
  // With a null `region` the document is cached in a runtime pool
  // (simulated-pipe transport); with a region the process creates its own
  // ShmPool there and caches the document region-resident, so transfers to
  // the server are describable as (offset, len) descriptors. The document
  // bytes are identical either way.
  LiteCgiProcess(iolsim::SimContext* ctx, iolite::IoLiteRuntime* runtime, size_t doc_bytes,
                 iolipc::ShmRegion* region = nullptr);

  // Handles one FastCGI request: pushes the (cached) document aggregate
  // into the pipe channel by reference.
  void ProduceResponse(iolite::PipeChannel* channel);

  // Same request over the real shared-memory transport: the aggregate
  // crosses the SPSC ring as descriptors, zero payload bytes touched.
  void ProduceResponse(iolipc::ShmStream* stream);

  size_t doc_bytes() const { return doc_.size(); }
  iolsim::DomainId domain() const { return domain_; }

  // Non-null only on the shared-memory transport; the server's ShmStream
  // shares it for descriptor pin resolution.
  iolipc::ShmPool* shm_pool() const { return shm_pool_.get(); }

 private:
  iolsim::SimContext* ctx_;
  iolsim::DomainId domain_;
  iolite::BufferPool* pool_;  // Null when the document lives in the ShmPool.
  std::unique_ptr<iolipc::ShmPool> shm_pool_;
  iolite::Aggregate doc_;
};

// Flash (or Apache) serving FastCGI content over a copy-based pipe.
class CopyCgiServer : public HttpServer {
 public:
  CopyCgiServer(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net, iolfs::FileIoService* io,
                size_t doc_bytes, bool apache_costs = false);

  const char* name() const override { return apache_costs_ ? "Apache-CGI" : "Flash-CGI"; }
  bool uses_iolite_sockets() const override { return false; }
  uint64_t per_connection_memory() const override {
    return apache_costs_ ? ctx_->cost().params().apache_process_bytes : 0;
  }
  void StartRequest(RequestContext* req) override;

 private:
  // Pooled per-request pipe-read buffer: concurrent requests each hold one
  // across their stage suspensions (the node index travels in the stage
  // continuations); completed requests return theirs to the free list, so
  // steady-state request turnover allocates nothing.
  struct BodyNode {
    std::vector<char> buf;
    uint32_t next_free = UINT32_MAX;
  };

  uint32_t AcquireBody();
  void ReleaseBody(uint32_t idx);

  bool apache_costs_;
  CopyCgiProcess cgi_;
  iolposix::PosixPipe pipe_;
  std::vector<BodyNode> bodies_;
  uint32_t free_body_ = UINT32_MAX;
};

// Flash-Lite serving FastCGI content over an IO-Lite pipe or, with the
// kShmRing transport knob, over the real shared-memory ring of src/ipc.
class LiteCgiServer : public HttpServer {
 public:
  LiteCgiServer(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net, iolfs::FileIoService* io,
                iolite::IoLiteRuntime* runtime, size_t doc_bytes,
                CgiTransport transport = CgiTransport::kSimulatedPipe);

  const char* name() const override {
    return transport_ == CgiTransport::kShmRing ? "Flash-Lite-CGI-shm" : "Flash-Lite-CGI";
  }
  bool uses_iolite_sockets() const override { return true; }
  void StartRequest(RequestContext* req) override;

  CgiTransport transport() const { return transport_; }

  // Test/diagnostic hook: when capture is enabled, the exact bytes handed to
  // the socket for the most recent request — used to assert both transports
  // produce identical output. Off by default so the benchmark hot path pays
  // nothing for it.
  void set_capture_responses(bool on) { capture_responses_ = on; }
  const iolite::Aggregate& last_response() const { return last_response_; }

 private:
  // Pooled per-request body aggregate (same pattern as CopyCgiServer's
  // BodyNode): holds the reference-passed CGI document between stages.
  struct BodyNode {
    iolite::Aggregate agg;
    uint32_t next_free = UINT32_MAX;
  };

  uint32_t AcquireBody();
  void ReleaseBody(uint32_t idx);

  iolite::IoLiteRuntime* runtime_;
  CgiTransport transport_;
  iolsim::DomainId server_domain_;
  iolite::BufferPool* header_pool_;
  std::vector<BodyNode> bodies_;
  uint32_t free_body_ = UINT32_MAX;
  // Shared-memory transport state (kShmRing only). The region is declared
  // before cgi_ so it exists when the CGI process caches its document there.
  std::unique_ptr<iolipc::ShmRegion> region_;
  LiteCgiProcess cgi_;
  std::unique_ptr<iolipc::ShmStream> stream_;
  std::shared_ptr<iolite::PipeChannel> channel_;
  bool capture_responses_ = false;
  iolite::Aggregate last_response_;
};

}  // namespace iolhttp

#endif  // SRC_HTTPD_CGI_H_
