// HTTP response-header construction, shared by every server model.
//
// The header bytes are real (checksums over them are real); an X-Pad
// comment header absorbs padding so every response header is exactly
// kResponseHeaderBytes long, terminated by the blank line that separates
// it from the body.

#ifndef SRC_HTTPD_RESPONSE_HEADER_H_
#define SRC_HTTPD_RESPONSE_HEADER_H_

#include <cstddef>
#include <cstdint>

#include "src/iolite/buffer_pool.h"
#include "src/simos/sim_context.h"

namespace iolhttp {

// Typical HTTP/1.0 response header and request sizes.
constexpr size_t kResponseHeaderBytes = 250;
constexpr size_t kRequestBytes = 300;

// Builds a plausible response header into `buf` (which must hold at least
// kResponseHeaderBytes). Returns the header length (kResponseHeaderBytes).
size_t BuildResponseHeader(char* buf, uint64_t content_length);

// The IO-Lite servers' header path: allocates a buffer from the server's
// own pool (Section 5: "allocating memory for response headers ... is
// handled with memory allocation from IO-Lite space"), fills it with the
// response header, charges the one copy the IO-Lite data path pays per
// request, and seals it.
iolite::BufferRef MakeIoLiteHeader(iolsim::SimContext* ctx, iolite::BufferPool* pool,
                                   uint64_t content_length);

}  // namespace iolhttp

#endif  // SRC_HTTPD_RESPONSE_HEADER_H_
