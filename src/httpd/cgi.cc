#include "src/httpd/cgi.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace iolhttp {

// --- CopyCgiProcess ---------------------------------------------------------

CopyCgiProcess::CopyCgiProcess(iolsim::SimContext* ctx, size_t doc_bytes) : ctx_(ctx) {
  doc_.resize(doc_bytes);
  // Real, deterministic content.
  for (size_t i = 0; i < doc_bytes; ++i) {
    doc_[i] = static_cast<char>('a' + (i * 131) % 26);
  }
}

void CopyCgiProcess::ProduceResponse(iolposix::PosixPipe* pipe) {
  // FastCGI dispatch overhead (context switch into the CGI process).
  ctx_->ChargeCpu(ctx_->cost().params().cgi_request_cpu);
  // The pipe write copies the document into the kernel.
  pipe->Write(doc_.data(), doc_.size());
}

// --- LiteCgiProcess ---------------------------------------------------------

LiteCgiProcess::LiteCgiProcess(iolsim::SimContext* ctx, iolite::IoLiteRuntime* runtime,
                               size_t doc_bytes, iolipc::ShmRegion* region)
    : ctx_(ctx) {
  domain_ = ctx_->vm().CreateDomain("cgi-process");
  // Build the cached document once: generation cost paid here, after which
  // the same immutable buffers are reused for every request (the "caching
  // CGI program" of Section 3.10).
  std::vector<char> bytes(doc_bytes);
  for (size_t i = 0; i < doc_bytes; ++i) {
    bytes[i] = static_cast<char>('A' + (i * 131) % 26);
  }
  iolite::BufferRef buffer;
  if (region != nullptr) {
    shm_pool_ = std::make_unique<iolipc::ShmPool>(ctx, "cgi-shm-pool", domain_, region);
    pool_ = nullptr;
    buffer = shm_pool_->AllocateFrom(bytes.data(), doc_bytes);
  } else {
    pool_ = runtime->CreatePool("cgi-pool", domain_);
    buffer = pool_->AllocateFrom(bytes.data(), doc_bytes);
  }
  doc_ = iolite::Aggregate::FromBuffer(std::move(buffer));
}

void LiteCgiProcess::ProduceResponse(iolite::PipeChannel* channel) {
  ctx_->ChargeCpu(ctx_->cost().params().cgi_request_cpu);
  // IOL_write on the pipe: one syscall, references move, nothing is copied.
  ctx_->ChargeCpu(ctx_->cost().SyscallCost());
  ctx_->stats().syscalls++;
  channel->Push(doc_);
}

void LiteCgiProcess::ProduceResponse(iolipc::ShmStream* stream) {
  ctx_->ChargeCpu(ctx_->cost().params().cgi_request_cpu);
  // Same syscall surface as the simulated pipe; the payload crosses the
  // ring as descriptors only (the document is region-resident).
  ctx_->ChargeCpu(ctx_->cost().SyscallCost());
  ctx_->stats().syscalls++;
  size_t pushed = stream->Write(domain_, doc_);
  assert(pushed == doc_.size() && "CGI ring sized to always accept one document");
  (void)pushed;
}

// --- CopyCgiServer ----------------------------------------------------------

CopyCgiServer::CopyCgiServer(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net,
                             iolfs::FileIoService* io, size_t doc_bytes, bool apache_costs)
    : HttpServer(ctx, net, io), apache_costs_(apache_costs), cgi_(ctx, doc_bytes), pipe_(ctx) {}

uint32_t CopyCgiServer::AcquireBody() {
  uint32_t idx;
  if (free_body_ != UINT32_MAX) {
    idx = free_body_;
    free_body_ = bodies_[idx].next_free;
  } else {
    idx = static_cast<uint32_t>(bodies_.size());
    bodies_.emplace_back();
    bodies_[idx].buf.resize(cgi_.doc_bytes());
  }
  return idx;
}

void CopyCgiServer::ReleaseBody(uint32_t idx) {
  bodies_[idx].next_free = free_body_;
  free_body_ = idx;
}

void CopyCgiServer::StartRequest(RequestContext* req) {
  // Stage 1: server-side accept + parse.
  CpuStage(
      [this, req] {
        const iolsim::CostParams& p = ctx_->cost().params();
        ctx_->ChargeCpu(apache_costs_ ? p.apache_request_cpu : p.flash_request_cpu);
        req->conn->ReceiveRequest(kRequestBytes);
      },
      [this, req] {
        // Stage 2 — the CGI hop: the process writes the document into the
        // pipe (copy #1), blocking on the pipe buffer as it fills (one
        // producer/consumer context switch per pipe-buffer's worth), and
        // the server reads it out into a per-request buffer (copy #2).
        // The buffer travels with the request as a pooled node index:
        // concurrent requests are each suspended between stages and must
        // not share it.
        uint32_t body = AcquireBody();
        CpuStage(
            [this, body] {
              const iolsim::CostParams& p = ctx_->cost().params();
              cgi_.ProduceResponse(&pipe_);
              uint64_t chunks =
                  (cgi_.doc_bytes() + p.pipe_buffer_bytes - 1) / p.pipe_buffer_bytes;
              ctx_->ChargeCpu(p.context_switch_cost * static_cast<iolsim::SimTime>(chunks));
              pipe_.Read(bodies_[body].buf.data(), bodies_[body].buf.size());
            },
            [this, req, body] {
              // Stage 3: header build + writev copies header + body into
              // the socket buffer (copy #3), checksummed in full.
              CpuStage(
                  [this, req, body] {
                    std::vector<char>& buf = bodies_[body].buf;
                    char header[kResponseHeaderBytes];
                    size_t header_len = BuildResponseHeader(header, buf.size());
                    ctx_->ChargeCpu(ctx_->cost().SyscallCost());
                    ctx_->stats().syscalls++;
                    req->response_bytes = req->conn->SendPrivateCopy(
                        header, header_len, buf.data(), buf.size());
                    ReleaseBody(body);
                  },
                  [this, req] { TransmitStage(req); });
            });
      });
}

// --- LiteCgiServer ----------------------------------------------------------

namespace {

// Region sized for the cached document (chunk-rounded) plus ring state and
// slack for staging; only used on the kShmRing transport.
std::unique_ptr<iolipc::ShmRegion> MakeCgiRegion(iolsim::SimContext* ctx, size_t doc_bytes,
                                                 CgiTransport transport) {
  if (transport != CgiTransport::kShmRing) {
    return nullptr;
  }
  size_t chunk = static_cast<size_t>(ctx->cost().params().chunk_size);
  size_t doc_span = (doc_bytes + chunk - 1) / chunk * chunk;
  auto region = iolipc::ShmRegion::Create(doc_span + 4 * chunk);
  if (region == nullptr) {
    // No error path out of the constructor chain; dying loudly beats the
    // null dereference a release build would otherwise hit.
    std::fprintf(stderr, "LiteCgiServer: mmap failed for %zu-byte CGI shm region\n",
                 doc_span + 4 * chunk);
    std::abort();
  }
  return region;
}

constexpr uint32_t kCgiRingSlots = 256;

}  // namespace

LiteCgiServer::LiteCgiServer(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net,
                             iolfs::FileIoService* io, iolite::IoLiteRuntime* runtime,
                             size_t doc_bytes, CgiTransport transport)
    : HttpServer(ctx, net, io),
      runtime_(runtime),
      transport_(transport),
      region_(MakeCgiRegion(ctx, doc_bytes, transport)),
      cgi_(ctx, runtime, doc_bytes, region_.get()),
      channel_(std::make_shared<iolite::PipeChannel>(ctx)) {
  server_domain_ = ctx_->vm().CreateDomain("flash-lite-cgi");
  header_pool_ = runtime_->CreatePool("flash-lite-cgi-headers", server_domain_);
  if (transport_ == CgiTransport::kShmRing) {
    stream_ = std::make_unique<iolipc::ShmStream>(
        ctx_, cgi_.shm_pool(), iolipc::RingChannel::Create(region_.get(), kCgiRingSlots));
  }
}

uint32_t LiteCgiServer::AcquireBody() {
  uint32_t idx;
  if (free_body_ != UINT32_MAX) {
    idx = free_body_;
    free_body_ = bodies_[idx].next_free;
  } else {
    idx = static_cast<uint32_t>(bodies_.size());
    bodies_.emplace_back();
  }
  return idx;
}

void LiteCgiServer::ReleaseBody(uint32_t idx) {
  bodies_[idx].agg.Clear();  // Drop buffer references, keep the node.
  bodies_[idx].next_free = free_body_;
  free_body_ = idx;
}

void LiteCgiServer::StartRequest(RequestContext* req) {
  // Stage 1: server-side accept + parse.
  CpuStage(
      [this, req] {
        ctx_->ChargeCpu(ctx_->cost().params().flash_request_cpu);
        req->conn->ReceiveRequest(kRequestBytes);
      },
      [this, req] {
        // Stage 2 — the CGI hop, by reference: the process pushes the
        // cached document into the channel, the server IOL_reads the
        // aggregate out (one syscall; descriptor resolution on the ring,
        // cold-chunk mapping on the simulated pipe), zero payload copies.
        // The aggregate rides in a pooled node across the suspension.
        uint32_t body = AcquireBody();
        CpuStage(
            [this, body] {
              iolite::Aggregate& agg = bodies_[body].agg;
              if (transport_ == CgiTransport::kShmRing) {
                cgi_.ProduceResponse(stream_.get());
                ctx_->ChargeCpu(ctx_->cost().SyscallCost());
                ctx_->stats().syscalls++;
                agg = stream_->Read(server_domain_, SIZE_MAX);
              } else {
                cgi_.ProduceResponse(channel_.get());
                ctx_->ChargeCpu(ctx_->cost().SyscallCost());
                ctx_->stats().syscalls++;
                agg = channel_->Pop(SIZE_MAX);
              }
              runtime_->MapAggregate(agg, server_domain_);
            },
            [this, req, body] {
              // Stage 3: header from the server's IO-Lite pool, IOL_write
              // by reference; only the fresh header generation is summed.
              CpuStage(
                  [this, req, body] {
                    iolite::Aggregate& agg = bodies_[body].agg;
                    iolite::Aggregate response = iolite::Aggregate::FromBuffer(
                        MakeIoLiteHeader(ctx_, header_pool_, agg.size()));
                    response.Append(agg);
                    if (capture_responses_) {
                      last_response_ = response;
                    }
                    ctx_->ChargeCpu(ctx_->cost().SyscallCost());
                    ctx_->stats().syscalls++;
                    req->response_bytes = req->conn->SendAggregate(response);
                    ReleaseBody(body);
                  },
                  [this, req] { TransmitStage(req); });
            });
      });
}

}  // namespace iolhttp
