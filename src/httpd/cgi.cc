#include "src/httpd/cgi.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace iolhttp {

// --- CopyCgiProcess ---------------------------------------------------------

CopyCgiProcess::CopyCgiProcess(iolsim::SimContext* ctx, size_t doc_bytes) : ctx_(ctx) {
  doc_.resize(doc_bytes);
  // Real, deterministic content.
  for (size_t i = 0; i < doc_bytes; ++i) {
    doc_[i] = static_cast<char>('a' + (i * 131) % 26);
  }
}

void CopyCgiProcess::ProduceResponse(iolposix::PosixPipe* pipe) {
  // FastCGI dispatch overhead (context switch into the CGI process).
  ctx_->ChargeCpu(ctx_->cost().params().cgi_request_cpu);
  // The pipe write copies the document into the kernel.
  pipe->Write(doc_.data(), doc_.size());
}

// --- LiteCgiProcess ---------------------------------------------------------

LiteCgiProcess::LiteCgiProcess(iolsim::SimContext* ctx, iolite::IoLiteRuntime* runtime,
                               size_t doc_bytes, iolipc::ShmRegion* region)
    : ctx_(ctx) {
  domain_ = ctx_->vm().CreateDomain("cgi-process");
  // Build the cached document once: generation cost paid here, after which
  // the same immutable buffers are reused for every request (the "caching
  // CGI program" of Section 3.10).
  std::vector<char> bytes(doc_bytes);
  for (size_t i = 0; i < doc_bytes; ++i) {
    bytes[i] = static_cast<char>('A' + (i * 131) % 26);
  }
  iolite::BufferRef buffer;
  if (region != nullptr) {
    shm_pool_ = std::make_unique<iolipc::ShmPool>(ctx, "cgi-shm-pool", domain_, region);
    pool_ = nullptr;
    buffer = shm_pool_->AllocateFrom(bytes.data(), doc_bytes);
  } else {
    pool_ = runtime->CreatePool("cgi-pool", domain_);
    buffer = pool_->AllocateFrom(bytes.data(), doc_bytes);
  }
  doc_ = iolite::Aggregate::FromBuffer(std::move(buffer));
}

void LiteCgiProcess::ProduceResponse(iolite::PipeChannel* channel) {
  ctx_->ChargeCpu(ctx_->cost().params().cgi_request_cpu);
  // IOL_write on the pipe: one syscall, references move, nothing is copied.
  ctx_->ChargeCpu(ctx_->cost().SyscallCost());
  ctx_->stats().syscalls++;
  channel->Push(doc_);
}

void LiteCgiProcess::ProduceResponse(iolipc::ShmStream* stream) {
  ctx_->ChargeCpu(ctx_->cost().params().cgi_request_cpu);
  // Same syscall surface as the simulated pipe; the payload crosses the
  // ring as descriptors only (the document is region-resident).
  ctx_->ChargeCpu(ctx_->cost().SyscallCost());
  ctx_->stats().syscalls++;
  size_t pushed = stream->Write(domain_, doc_);
  assert(pushed == doc_.size() && "CGI ring sized to always accept one document");
  (void)pushed;
}

// --- CopyCgiServer ----------------------------------------------------------

CopyCgiServer::CopyCgiServer(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net,
                             iolfs::FileIoService* io, size_t doc_bytes, bool apache_costs)
    : HttpServer(ctx, net, io), apache_costs_(apache_costs), cgi_(ctx, doc_bytes), pipe_(ctx) {
  server_buf_.resize(doc_bytes);
}

size_t CopyCgiServer::HandleRequest(iolnet::TcpConnection* conn, iolfs::FileId /*file*/) {
  const iolsim::CostParams& p = ctx_->cost().params();
  ctx_->ChargeCpu(apache_costs_ ? p.apache_request_cpu : p.flash_request_cpu);
  conn->ReceiveRequest(kRequestBytes);

  // The CGI process writes the document into the pipe (copy #1)...
  cgi_.ProduceResponse(&pipe_);
  // ...blocking on the pipe buffer as it fills: one producer/consumer
  // context switch per pipe-buffer's worth of data...
  uint64_t chunks = (cgi_.doc_bytes() + p.pipe_buffer_bytes - 1) / p.pipe_buffer_bytes;
  ctx_->ChargeCpu(p.context_switch_cost * static_cast<iolsim::SimTime>(chunks));
  // ...and the server reads it out into its own buffer (copy #2).
  pipe_.Read(server_buf_.data(), server_buf_.size());

  char header[kResponseHeaderBytes];
  size_t header_len = BuildHeader(header, server_buf_.size());

  // ...and writev copies header + body into the socket buffer (copy #3).
  ctx_->ChargeCpu(ctx_->cost().SyscallCost());
  ctx_->stats().syscalls++;
  return conn->SendPrivateCopy(header, header_len, server_buf_.data(), server_buf_.size());
}

// --- LiteCgiServer ----------------------------------------------------------

namespace {

// Region sized for the cached document (chunk-rounded) plus ring state and
// slack for staging; only used on the kShmRing transport.
std::unique_ptr<iolipc::ShmRegion> MakeCgiRegion(iolsim::SimContext* ctx, size_t doc_bytes,
                                                 CgiTransport transport) {
  if (transport != CgiTransport::kShmRing) {
    return nullptr;
  }
  size_t chunk = static_cast<size_t>(ctx->cost().params().chunk_size);
  size_t doc_span = (doc_bytes + chunk - 1) / chunk * chunk;
  auto region = iolipc::ShmRegion::Create(doc_span + 4 * chunk);
  if (region == nullptr) {
    // No error path out of the constructor chain; dying loudly beats the
    // null dereference a release build would otherwise hit.
    std::fprintf(stderr, "LiteCgiServer: mmap failed for %zu-byte CGI shm region\n",
                 doc_span + 4 * chunk);
    std::abort();
  }
  return region;
}

constexpr uint32_t kCgiRingSlots = 256;

}  // namespace

LiteCgiServer::LiteCgiServer(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net,
                             iolfs::FileIoService* io, iolite::IoLiteRuntime* runtime,
                             size_t doc_bytes, CgiTransport transport)
    : HttpServer(ctx, net, io),
      runtime_(runtime),
      transport_(transport),
      region_(MakeCgiRegion(ctx, doc_bytes, transport)),
      cgi_(ctx, runtime, doc_bytes, region_.get()),
      channel_(std::make_shared<iolite::PipeChannel>(ctx)) {
  server_domain_ = ctx_->vm().CreateDomain("flash-lite-cgi");
  header_pool_ = runtime_->CreatePool("flash-lite-cgi-headers", server_domain_);
  if (transport_ == CgiTransport::kShmRing) {
    stream_ = std::make_unique<iolipc::ShmStream>(
        ctx_, cgi_.shm_pool(), iolipc::RingChannel::Create(region_.get(), kCgiRingSlots));
  }
}

size_t LiteCgiServer::HandleRequest(iolnet::TcpConnection* conn, iolfs::FileId /*file*/) {
  ctx_->ChargeCpu(ctx_->cost().params().flash_request_cpu);
  conn->ReceiveRequest(kRequestBytes);

  // CGI produces into the channel by reference...
  iolite::Aggregate body;
  if (transport_ == CgiTransport::kShmRing) {
    cgi_.ProduceResponse(stream_.get());
    // ...the server IOL_reads the aggregate out of the ring: one syscall,
    // descriptor resolution, zero payload bytes touched.
    ctx_->ChargeCpu(ctx_->cost().SyscallCost());
    ctx_->stats().syscalls++;
    body = stream_->Read(server_domain_, SIZE_MAX);
  } else {
    cgi_.ProduceResponse(channel_.get());
    // ...the server IOL_reads the aggregate out: one syscall plus mapping of
    // any cold chunks into the server domain (first request only).
    ctx_->ChargeCpu(ctx_->cost().SyscallCost());
    ctx_->stats().syscalls++;
    body = channel_->Pop(SIZE_MAX);
  }
  runtime_->MapAggregate(body, server_domain_);

  char header[kResponseHeaderBytes];
  size_t header_len = BuildHeader(header, body.size());
  iolite::BufferRef hbuf = header_pool_->Allocate(header_len);
  std::memcpy(hbuf->writable_data(), header, header_len);
  ctx_->ChargeCpu(ctx_->cost().CopyCost(header_len));
  ctx_->stats().bytes_copied += header_len;
  ctx_->stats().copy_ops++;
  hbuf->Seal(header_len);

  iolite::Aggregate response = iolite::Aggregate::FromBuffer(std::move(hbuf));
  response.Append(body);
  if (capture_responses_) {
    last_response_ = response;
  }

  ctx_->ChargeCpu(ctx_->cost().SyscallCost());
  ctx_->stats().syscalls++;
  return conn->SendAggregate(response);
}

}  // namespace iolhttp
