#include "src/fault/fault_plan.h"

#include "src/simos/rng.h"

namespace iolfault {

namespace {

// Uniform in [mean/2, 3*mean/2): jittered-periodic gaps in pure integer
// arithmetic (no libm), so generated schedules are identical everywhere.
iolsim::SimTime JitteredGap(iolsim::Rng* rng, iolsim::SimTime mean) {
  if (mean <= 1) {
    return 1;
  }
  iolsim::SimTime half = mean / 2;
  return half + static_cast<iolsim::SimTime>(
                    rng->NextBelow(static_cast<uint64_t>(mean)));
}

}  // namespace

FaultPlan& FaultPlan::AddMemberCrash(iolsim::SimTime at, int member,
                                     iolsim::SimTime restart_delay,
                                     bool cold_cache) {
  FaultEvent e;
  e.kind = FaultKind::kMemberCrash;
  e.at = at;
  e.duration = restart_delay;
  e.target = member;
  e.cold_cache = cold_cache;
  return Add(e);
}

FaultPlan& FaultPlan::AddDiskFailSlow(iolsim::SimTime at,
                                      iolsim::SimTime duration, uint32_t num,
                                      uint32_t den) {
  FaultEvent e;
  e.kind = FaultKind::kDiskFailSlow;
  e.at = at;
  e.duration = duration;
  e.slow_num = num;
  e.slow_den = den;
  return Add(e);
}

FaultPlan& FaultPlan::AddDiskFailStop(iolsim::SimTime at,
                                      iolsim::SimTime duration) {
  FaultEvent e;
  e.kind = FaultKind::kDiskFailStop;
  e.at = at;
  e.duration = duration;
  return Add(e);
}

FaultPlan& FaultPlan::AddLinkOutage(iolsim::SimTime at,
                                    iolsim::SimTime duration) {
  FaultEvent e;
  e.kind = FaultKind::kLinkOutage;
  e.at = at;
  e.duration = duration;
  return Add(e);
}

FaultPlan& FaultPlan::AddBackhaulFlap(iolsim::SimTime at,
                                      iolsim::SimTime duration, int level) {
  FaultEvent e;
  e.kind = FaultKind::kBackhaulFlap;
  e.at = at;
  e.duration = duration;
  e.target = level;
  return Add(e);
}

FaultPlan& FaultPlan::AddRandomCrashes(uint64_t seed, int members,
                                       iolsim::SimTime mean_uptime,
                                       iolsim::SimTime restart_delay,
                                       iolsim::SimTime horizon,
                                       bool cold_cache) {
  for (int m = 0; m < members; ++m) {
    // Per-member substream: member schedules are independent of the member
    // count (adding a member never reshuffles the others' crashes).
    iolsim::Rng rng(seed ^ (0x9e3779b97f4a7c15ull * (m + 1)));
    iolsim::SimTime t = JitteredGap(&rng, mean_uptime);
    while (t < horizon) {
      AddMemberCrash(t, m, restart_delay, cold_cache);
      t += restart_delay + JitteredGap(&rng, mean_uptime);
    }
  }
  return *this;
}

FaultPlan& FaultPlan::AddRandomDiskFailSlow(uint64_t seed,
                                            iolsim::SimTime mean_gap,
                                            iolsim::SimTime window,
                                            uint32_t num, uint32_t den,
                                            iolsim::SimTime horizon) {
  iolsim::Rng rng(seed ^ 0xd1b54a32d192ed03ull);
  iolsim::SimTime t = JitteredGap(&rng, mean_gap);
  while (t < horizon) {
    AddDiskFailSlow(t, window, num, den);
    t += window + JitteredGap(&rng, mean_gap);
  }
  return *this;
}

bool FaultPlan::has_member_crashes() const {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kMemberCrash) {
      return true;
    }
  }
  return false;
}

}  // namespace iolfault
