// Deterministic fault injection: the plan half of the fault plane.
//
// A FaultPlan is a list of clock-scheduled fault events, either hand-placed
// or drawn from a seeded SplitMix64 stream before the run starts. Every
// fault dispatches through the existing machinery — crash/restart flips ride
// the event queue, device degradation rides Resource fault windows — so a
// faulted run is bit-identical given the same seed, and an EMPTY plan leaves
// every code path untouched (the golden determinism tests pin byte-identity
// with today's engine).
//
// Layer map (who arms which kind):
//   kMemberCrash   -> ioldrv::Experiment + iolhttp::HttpServer::Crash/Restart
//                     (in-flight serves are dropped; optionally the crashed
//                     member's share of the unified cache is evicted at
//                     restart — "cold cache").
//   kDiskFailSlow  -> Resource slow window on SimContext::disk().
//   kDiskFailStop  -> Resource outage window on SimContext::disk().
//   kLinkOutage    -> Resource outage window on SimContext::link() (the
//                     front link a LinkSpec wraps; transmissions queue and
//                     resume FIFO when the partition heals).
//   kBackhaulFlap  -> iolproxy::ProxyServer::AddBackhaulOutage (armed by
//                     whoever owns the proxy; the experiment engine has no
//                     proxy handle, see ProxyServer::ArmBackhaulFaults).
//
// The recovery half (timeouts, retries, hedging, health checks) is
// configured by RecoveryConfig in src/fault/recovery.h and implemented by
// ioldrv::Experiment.

#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <vector>

#include "src/simos/clock.h"

namespace iolfault {

enum class FaultKind : uint8_t {
  kMemberCrash,   // target = fleet member; duration = restart delay.
  kDiskFailSlow,  // duration window; service *= slow_num/slow_den.
  kDiskFailStop,  // duration window; the disk serves nothing.
  kLinkOutage,    // duration window; the front link carries nothing.
  kBackhaulFlap,  // duration window; the proxy backhaul carries nothing.
};

struct FaultEvent {
  FaultKind kind = FaultKind::kMemberCrash;
  iolsim::SimTime at = 0;        // Window / crash start (absolute sim time).
  iolsim::SimTime duration = 0;  // Window length / restart delay.
  // kMemberCrash: the fleet member. kBackhaulFlap: the CDN hierarchy level
  // whose uplinks flap (-1 = every level; ignored by single-proxy tiers,
  // which own exactly one backhaul wire).
  int target = 0;
  uint32_t slow_num = 4;         // Fail-slow multiplier num/den.
  uint32_t slow_den = 1;
  // Crash only: evict the member's share of the unified cache at restart
  // (1/fleet of the cached bytes — the machine survives, the process's
  // working set does not).
  bool cold_cache = true;
};

// An ordered list of fault events. Builders return *this so plans compose:
//   FaultPlan plan;
//   plan.AddMemberCrash(50 * kMillisecond, 1, 20 * kMillisecond)
//       .AddDiskFailSlow(100 * kMillisecond, 30 * kMillisecond, 8, 1);
class FaultPlan {
 public:
  FaultPlan& Add(const FaultEvent& e) {
    events_.push_back(e);
    return *this;
  }

  FaultPlan& AddMemberCrash(iolsim::SimTime at, int member,
                            iolsim::SimTime restart_delay,
                            bool cold_cache = true);
  FaultPlan& AddDiskFailSlow(iolsim::SimTime at, iolsim::SimTime duration,
                             uint32_t num, uint32_t den);
  FaultPlan& AddDiskFailStop(iolsim::SimTime at, iolsim::SimTime duration);
  FaultPlan& AddLinkOutage(iolsim::SimTime at, iolsim::SimTime duration);
  // `level` targets one CDN hierarchy level's uplinks (src/driver CdnTier);
  // -1 flaps every level. Single-proxy tiers ignore the level.
  FaultPlan& AddBackhaulFlap(iolsim::SimTime at, iolsim::SimTime duration,
                             int level = -1);

  // Seeded generators (SplitMix64; pure integer arithmetic so the schedule
  // is identical on every platform). Crashes are spread over [0, horizon):
  // each member independently crashes roughly every `mean_uptime`, jittered
  // uniformly in [mean/2, 3*mean/2), and restarts `restart_delay` later.
  FaultPlan& AddRandomCrashes(uint64_t seed, int members,
                              iolsim::SimTime mean_uptime,
                              iolsim::SimTime restart_delay,
                              iolsim::SimTime horizon,
                              bool cold_cache = true);

  // Fail-slow windows of length `window` arriving roughly every
  // `mean_gap` (same jitter scheme) over [0, horizon).
  FaultPlan& AddRandomDiskFailSlow(uint64_t seed, iolsim::SimTime mean_gap,
                                   iolsim::SimTime window, uint32_t num,
                                   uint32_t den, iolsim::SimTime horizon);

  bool empty() const { return events_.empty(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  bool has_member_crashes() const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace iolfault

#endif  // SRC_FAULT_FAULT_PLAN_H_
