// Recovery policy knobs: the half of the fault plane that turns injected
// faults into survivable events. Consumed by ioldrv::Experiment.
//
// The whole recovery plane is gated on request_timeout > 0: with the
// timeout off (the default), the engine runs the exact pre-fault code paths
// — no timeout events, no outcome bookkeeping beyond the kOk default — so
// every existing run stays byte-identical. With the timeout on but
// max_retries == 0, a timed-out request is simply recorded as failed
// ("unprotected": the availability-collapse baseline of
// bench/fig_fault_tolerance).

#ifndef SRC_FAULT_RECOVERY_H_
#define SRC_FAULT_RECOVERY_H_

#include "src/simos/clock.h"

namespace iolfault {

struct RecoveryConfig {
  // Per-request timeout, measured from (re)issue. 0 disables the entire
  // recovery plane.
  iolsim::SimTime request_timeout = 0;

  // Capped exponential backoff retry: attempt k (k = 1..max_retries) waits
  // min(retry_backoff << (k-1), retry_backoff_cap) before reissuing on a
  // fresh connection. 0 = no retries (timed-out requests fail).
  int max_retries = 0;
  iolsim::SimTime retry_backoff = 2 * iolsim::kMillisecond;
  iolsim::SimTime retry_backoff_cap = 64 * iolsim::kMillisecond;

  // Hedged requests: if the current attempt has not delivered within
  // hedge_delay of its issue, send a duplicate to a (preferably different,
  // healthy) member and take whichever response lands first. 0 = off.
  // Callers typically set this to the fault-free p99.
  iolsim::SimTime hedge_delay = 0;

  // Health-check-driven balancer ejection: a deterministic prober marks a
  // member unhealthy after `unhealthy_after` consecutive failed probes
  // (probe = is the member up at probe time) and re-admits it after
  // `healthy_after` consecutive good ones. Ejected members are skipped by
  // both balancers; if every member is ejected the balancer falls back to
  // its normal pick (requests must go somewhere).
  bool health_checks = false;
  iolsim::SimTime health_check_interval = 10 * iolsim::kMillisecond;
  int unhealthy_after = 1;
  int healthy_after = 1;

  bool enabled() const { return request_timeout > 0; }
};

}  // namespace iolfault

#endif  // SRC_FAULT_RECOVERY_H_
