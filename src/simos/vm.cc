#include "src/simos/vm.h"

#include <cassert>

#include "src/simos/sim_context.h"

namespace iolsim {

namespace {
const std::string kUnknownDomain = "<unknown>";
}  // namespace

DomainId VmSystem::CreateDomain(const std::string& name) {
  DomainId id = next_domain_++;
  domains_[id] = name;
  return id;
}

void VmSystem::DestroyDomain(DomainId domain) {
  domains_.erase(domain);
  for (auto& [id, chunk] : chunks_) {
    chunk.mappings.erase(domain);
  }
}

const std::string& VmSystem::DomainName(DomainId domain) const {
  if (domain == kKernelDomain) {
    static const std::string kKernelName = "kernel";
    return kKernelName;
  }
  auto it = domains_.find(domain);
  return it == domains_.end() ? kUnknownDomain : it->second;
}

int VmSystem::PagesPerChunk() const {
  const CostParams& p = ctx_->cost().params();
  return p.chunk_size / p.page_size;
}

ChunkId VmSystem::AllocateChunk(DomainId producer) {
  ChunkId id = next_chunk_++;
  Chunk& chunk = chunks_[id];
  chunk.producer = producer;
  // The kernel is trusted and keeps a permanent read/write mapping.
  chunk.mappings[kKernelDomain] = MapState::kReadWrite;
  if (producer != kKernelDomain) {
    chunk.mappings[producer] = MapState::kReadWrite;
    ctx_->ChargeCpu(ctx_->cost().PageMapCost(PagesPerChunk()));
    ctx_->stats().pages_mapped += PagesPerChunk();
  }
  ctx_->stats().chunk_map_ops++;
  return id;
}

void VmSystem::FreeChunk(ChunkId chunk) { chunks_.erase(chunk); }

bool VmSystem::EnsureReadable(ChunkId chunk, DomainId domain) {
  auto it = chunks_.find(chunk);
  assert(it != chunks_.end() && "EnsureReadable on freed chunk");
  MapState& state = it->second.mappings[domain];
  if (state != MapState::kUnmapped) {
    return false;  // Mapping persists from an earlier transfer: free.
  }
  state = MapState::kReadOnly;
  ctx_->ChargeCpu(ctx_->cost().PageMapCost(PagesPerChunk()));
  ctx_->stats().pages_mapped += PagesPerChunk();
  ctx_->stats().chunk_map_ops++;
  return true;
}

void VmSystem::SetWritable(ChunkId chunk, DomainId domain, bool writable) {
  auto it = chunks_.find(chunk);
  assert(it != chunks_.end() && "SetWritable on freed chunk");
  if (domain == kKernelDomain) {
    return;  // Trusted producer: permanent write permission, no toggling.
  }
  MapState& state = it->second.mappings[domain];
  MapState target = writable ? MapState::kReadWrite : MapState::kReadOnly;
  if (state == target) {
    return;
  }
  if (state == MapState::kUnmapped) {
    // Granting write to an unmapped chunk requires establishing mappings.
    ctx_->ChargeCpu(ctx_->cost().PageMapCost(PagesPerChunk()));
    ctx_->stats().pages_mapped += PagesPerChunk();
    ctx_->stats().chunk_map_ops++;
  } else {
    // One mprotect-style call flips the whole chunk's protection.
    ctx_->ChargeCpu(ctx_->cost().PageProtectCost(1));
    ctx_->stats().page_protect_ops++;
  }
  state = target;
}

bool VmSystem::CanRead(ChunkId chunk, DomainId domain) const {
  if (domain == kKernelDomain) {
    return ChunkExists(chunk);
  }
  return StateOf(chunk, domain) != MapState::kUnmapped;
}

bool VmSystem::CanWrite(ChunkId chunk, DomainId domain) const {
  if (domain == kKernelDomain) {
    return ChunkExists(chunk);
  }
  return StateOf(chunk, domain) == MapState::kReadWrite;
}

MapState VmSystem::StateOf(ChunkId chunk, DomainId domain) const {
  auto it = chunks_.find(chunk);
  if (it == chunks_.end()) {
    return MapState::kUnmapped;
  }
  auto mit = it->second.mappings.find(domain);
  return mit == it->second.mappings.end() ? MapState::kUnmapped : mit->second;
}

}  // namespace iolsim
