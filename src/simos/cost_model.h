// Calibrated cost model for the simulated machine.
//
// The paper's testbed is a 333 MHz Pentium II with 128 MB RAM and five
// switched 100 Mb/s Fast Ethernet interfaces (Section 5). We reproduce the
// *ratios* between data-touching operations (copy, checksum), per-operation
// kernel costs (syscalls, page mapping, TCP connection management) and wire
// speed, because those ratios determine every shape in the evaluation:
// where control overhead dominates (< 5 KB files), where copy elimination
// pays off (>= 20 KB), and where the network saturates.
//
// All costs are returned in simulated nanoseconds (see clock.h).

#ifndef SRC_SIMOS_COST_MODEL_H_
#define SRC_SIMOS_COST_MODEL_H_

#include <cstdint>

#include "src/simos/clock.h"

namespace iolsim {

// Tunable machine constants. The defaults model the paper's server; tests
// use custom instances to probe scaling behaviour.
struct CostParams {
  // Data-touching operations, bytes per second of simulated CPU time.
  // A copy reads and writes memory and pollutes the data cache; the paper
  // calls this out as proceeding "at memory rather than CPU speed".
  // Calibrated against the Figure 3 anchors (see DESIGN.md Section 5).
  double copy_bytes_per_sec = 150.0e6;
  // Internet checksum touches each byte once (read-only: faster than copy).
  double checksum_bytes_per_sec = 200.0e6;

  // Fixed per-operation kernel costs.
  SimTime syscall_cost = 5 * kMicrosecond;
  // Installing one page mapping (page-table + TLB work).
  SimTime page_map_cost = 3 * kMicrosecond;
  // Toggling write permission on an existing mapping (one mprotect-style
  // operation per chunk; cheaper than establishing mappings).
  SimTime page_protect_cost = 1 * kMicrosecond;
  // TCP connection establishment + termination (SYN/FIN processing, PCB
  // management). Charged once per nonpersistent request.
  SimTime tcp_setup_cost = 110 * kMicrosecond;
  // Per-packet protocol processing (TCP/IP output, driver, interrupt).
  SimTime per_packet_cost = 28 * kMicrosecond;

  // Number of identical CPUs (service units of the CPU resource). The
  // paper's testbed is a uniprocessor; the staged request pipeline can
  // sweep this to model SMP servers.
  int cpu_count = 1;
  // Number of independent disk arms (service units of the disk resource).
  // Fleet experiments scale this with cpu_count so an N-member fleet
  // models one machine per member behind the shared front link.
  int disk_count = 1;

  // Per-request server application overheads (event loop, HTTP parse,
  // response header generation). Apache pays more: process-per-connection
  // scheduling and per-request process work.
  SimTime flash_request_cpu = 50 * kMicrosecond;
  SimTime apache_request_cpu = 700 * kMicrosecond;
  // Extra per-request cost of routing through a FastCGI process (context
  // switches, select wakeups) beyond the data transfer itself.
  SimTime cgi_request_cpu = 150 * kMicrosecond;

  // Network.
  int nic_count = 5;
  double nic_bits_per_sec = 100.0e6;  // Each NIC, 100 Mb/s Fast Ethernet.
  int mtu_bytes = 1460;               // TCP MSS on Ethernet.
  // Fraction of raw wire capacity deliverable as HTTP payload (protocol
  // headers, ACK traffic, interframe gaps).
  double wire_efficiency = 0.72;

  // Producer/consumer context switch (scheduling + cache pollution). The
  // copy-based CGI path pays one per pipe-buffer fill: the CGI process
  // blocks when the pipe is full and the server must run to drain it.
  SimTime context_switch_cost = 75 * kMicrosecond;
  int pipe_buffer_bytes = 8192;

  // Disk: average positioning time plus sequential transfer.
  SimTime disk_seek_cost = 8500 * kMicrosecond;  // 8.5 ms average positioning.
  double disk_bytes_per_sec = 20.0e6;
  int disk_max_transfer = 64 * 1024;  // Largest single disk operation.

  // Memory geometry.
  uint64_t ram_bytes = 128ull * 1024 * 1024;
  uint64_t kernel_reserved_bytes = 24ull * 1024 * 1024;
  // Resident size of one Apache worker process (unshared data; text pages
  // are shared across workers).
  uint64_t apache_process_bytes = 320ull * 1024;
  // Default TCP socket send buffer (Tss), Section 5.7.
  uint64_t socket_send_buffer_bytes = 64ull * 1024;
  // Average fraction of Tss actually occupied by mbuf clusters across the
  // connection population (buffers are allocated on demand; a connection's
  // queue is full only while a response larger than Tss drains).
  double send_buffer_utilization = 0.55;

  int page_size = 4096;
  int chunk_size = 64 * 1024;  // Access-control granularity (Section 4.5).

  // Application compute rates for the Section 5.8 workloads (bytes/sec of
  // simulated CPU). Calibrated so the IO-Lite savings match the paper's
  // percentages (wc -37%, permute -33%, grep -48%, gcc ~0%).
  double wc_scan_bytes_per_sec = 95.0e6;
  double grep_scan_bytes_per_sec = 50.0e6;
  double permute_bytes_per_sec = 64.0e6;
  double compile_bytes_per_sec = 2.5e6;
};

// Converts the parameter block into cost queries. Stateless other than the
// parameters; per-run counters live in SimStats.
class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(const CostParams& params) : p_(params) {}

  const CostParams& params() const { return p_; }

  // CPU time to copy `n` bytes.
  SimTime CopyCost(uint64_t n) const { return PerByte(n, p_.copy_bytes_per_sec); }

  // CPU time to checksum `n` bytes.
  SimTime ChecksumCost(uint64_t n) const { return PerByte(n, p_.checksum_bytes_per_sec); }

  // CPU time for application computation over `n` bytes at a given rate
  // (used by the Section 5.8 application workloads).
  SimTime ComputeCost(uint64_t n, double bytes_per_sec) const {
    return PerByte(n, bytes_per_sec);
  }

  // One system call boundary crossing.
  SimTime SyscallCost() const { return p_.syscall_cost; }

  // Mapping `pages` new pages into an address space.
  SimTime PageMapCost(int pages) const { return p_.page_map_cost * pages; }

  // Toggling protection on `pages` already-mapped pages.
  SimTime PageProtectCost(int pages) const { return p_.page_protect_cost * pages; }

  SimTime TcpSetupCost() const { return p_.tcp_setup_cost; }

  // Protocol processing for a payload of `n` bytes (per-packet costs).
  SimTime PacketProcessingCost(uint64_t n) const {
    uint64_t packets = (n + p_.mtu_bytes - 1) / p_.mtu_bytes;
    if (packets == 0) {
      packets = 1;  // ACK-only / header-only segment.
    }
    return p_.per_packet_cost * static_cast<SimTime>(packets);
  }

  // Wire time for `n` payload bytes across the NIC array at the effective
  // (efficiency-discounted) aggregate rate.
  SimTime WireTime(uint64_t n) const {
    double total_bps = p_.nic_bits_per_sec * p_.nic_count * p_.wire_efficiency;
    return PerByte(n, total_bps / 8.0);
  }

  // Disk service time for one contiguous read/write of `n` bytes.
  SimTime DiskAccessCost(uint64_t n) const {
    SimTime t = 0;
    uint64_t remaining = n;
    while (true) {
      uint64_t piece =
          remaining > static_cast<uint64_t>(p_.disk_max_transfer)
              ? static_cast<uint64_t>(p_.disk_max_transfer)
              : remaining;
      t += p_.disk_seek_cost + PerByte(piece, p_.disk_bytes_per_sec);
      if (remaining <= static_cast<uint64_t>(p_.disk_max_transfer)) {
        break;
      }
      remaining -= p_.disk_max_transfer;
    }
    return t;
  }

  // Number of pages spanned by `n` bytes.
  int PagesFor(uint64_t n) const {
    return static_cast<int>((n + p_.page_size - 1) / p_.page_size);
  }

 private:
  SimTime PerByte(uint64_t n, double bytes_per_sec) const {
    if (n == 0) {
      return 0;
    }
    return static_cast<SimTime>(static_cast<double>(n) / bytes_per_sec * kSecond);
  }

  CostParams p_;
};

}  // namespace iolsim

#endif  // SRC_SIMOS_COST_MODEL_H_
