// Conservative parallel discrete-event execution: shard lanes + a windowed
// lookahead runner.
//
// A ShardLane is one sequential simulation island (its own SimContext,
// clock, and event queue). The ShardRunner executes N lanes in barrier-
// synchronized rounds: each round drains cross-lane mailboxes, computes the
// global minimum next-event time, and lets every lane run the window
// [min, min + lookahead) in parallel. Lookahead is the minimum cross-lane
// link latency, so any message sent inside a window arrives at or after the
// window's end — no lane can ever receive an event in its past (the
// classic windowed CMB/YAWNS discipline).
//
// Determinism is structural, not scheduled: the round sequence, the window
// boundaries, each lane's intra-window execution, and the mailbox drain
// order (sender 0..N-1, FIFO within a sender) are all functions of the
// simulation state alone. OS threads only *execute* lanes — the
// thread count changes wall-clock time and nothing else, which is what
// makes `shards=N` telemetry byte-identical to `shards=1`.
//
// Mailboxes are fixed-capacity SPSC rings (the in-process incarnation of
// the ipc RingChannel discipline: power-of-two capacity, acquire/release
// head/tail). Overflow spills to a sender-side vector — deterministically:
// once a window spills, it keeps spilling, so the drain (ring first, then
// spill) always replays the exact send order.

#ifndef SRC_SIMOS_SHARD_H_
#define SRC_SIMOS_SHARD_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "src/simos/clock.h"

namespace iolsim {

// "No pending event": lanes return this from NextEventAt when idle. A
// round where every lane is idle (after the drain) terminates the run —
// messages can't be in flight, because every send from window k is drained
// at the start of round k+1, before the idle check.
inline constexpr SimTime kShardIdle = std::numeric_limits<SimTime>::max();

// A cross-lane event in flight. POD on purpose: messages cross thread
// boundaries by value through the rings; `a..d` carry lane-protocol payload
// (request ranks, byte counts, flags — the lanes agree on the encoding).
struct ShardMsg {
  SimTime when = 0;   // Arrival time at the receiver (≥ the window end).
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  uint64_t d = 0;
  uint32_t kind = 0;
  uint32_t from = 0;  // Sender lane; filled in by ShardRunner::Send.
};

// One sequential simulation island. Implementations own a SimContext and
// translate messages into locally scheduled events.
class ShardLane {
 public:
  virtual ~ShardLane() = default;

  // Earliest pending local event, or kShardIdle.
  virtual SimTime NextEventAt() = 0;

  // Runs every local event with time < `end`. Must not advance the local
  // clock past the last dispatched event (in particular: not to `end`) —
  // messages arriving later in virtual time would otherwise be clamped.
  virtual void RunWindow(SimTime end) = 0;

  // Delivers a cross-lane message: schedule its effect at msg.when. Called
  // only at round boundaries, on the thread that owns this lane.
  virtual void OnMessage(const ShardMsg& msg) = 0;
};

// Fixed-capacity single-producer single-consumer mailbox ring. Lock-free:
// the producer owns tail_, the consumer owns head_, each published with
// release and observed with acquire — the same discipline as the
// shared-memory RingChannel, minus the shm region.
class ShardMailbox {
 public:
  explicit ShardMailbox(size_t capacity_pow2)
      : slots_(capacity_pow2), mask_(capacity_pow2 - 1) {
    assert((capacity_pow2 & mask_) == 0 && capacity_pow2 >= 2);
  }

  bool TryPush(const ShardMsg& m) {
    size_t tail = tail_.load(std::memory_order_relaxed);
    size_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= slots_.size()) {
      return false;
    }
    slots_[tail & mask_] = m;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  bool TryPop(ShardMsg* m) {
    size_t head = head_.load(std::memory_order_relaxed);
    size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) {
      return false;
    }
    *m = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

 private:
  std::vector<ShardMsg> slots_;
  size_t mask_;
  std::atomic<size_t> head_{0};
  std::atomic<size_t> tail_{0};
};

// Executes N lanes in windowed-lookahead rounds across T OS threads.
// Lane i is owned by thread i % T for the whole run; mailboxes are
// per-(sender, receiver) pair, so every ring has exactly one producer
// thread and one consumer thread.
class ShardRunner {
 public:
  struct Options {
    int threads = 1;                 // Clamped to [1, lanes].
    SimTime lookahead = 1;           // Min cross-lane latency; must be > 0.
    size_t mailbox_capacity = 1024;  // Per-pair ring slots (power of two).
  };

  struct Stats {
    uint64_t rounds = 0;         // Barrier rounds executed.
    uint64_t messages = 0;       // Cross-lane messages delivered.
    uint64_t spilled = 0;        // Messages that overflowed a ring.
    int threads = 0;             // Actual thread count used.
  };

  ShardRunner(std::vector<ShardLane*> lanes, const Options& options);
  ~ShardRunner();

  ShardRunner(const ShardRunner&) = delete;
  ShardRunner& operator=(const ShardRunner&) = delete;

  // Sends `msg` from lane `from` to lane `to`. Only valid while lane
  // `from` is inside RunWindow (i.e. called from its owning thread).
  // msg.when must respect the lookahead: at or after the current window's
  // end — asserted, because a violation would silently break determinism.
  void Send(uint32_t from, uint32_t to, ShardMsg msg);

  // Runs rounds until every lane is idle and no message is in flight.
  Stats Run();

  SimTime lookahead() const { return lookahead_; }
  int lanes() const { return static_cast<int>(lanes_.size()); }

 private:
  struct Pair;  // Mailbox + sender-side spill + counters.

  void ThreadMain(int tid);
  void DrainInboxes(size_t lane);
  void Reduce() noexcept;  // Barrier completion: min next-event → window.

  Pair& PairAt(size_t from, size_t to) { return *pairs_[from * lanes_.size() + to]; }

  std::vector<ShardLane*> lanes_;
  SimTime lookahead_;
  int threads_;
  std::vector<std::unique_ptr<Pair>> pairs_;  // Dense N×N (diagonal unused).
  std::vector<SimTime> next_at_;              // Per lane, written pre-reduce.

  // Round state, written by Reduce() under the barrier, read by all after.
  SimTime window_end_ = 0;
  bool stop_ = false;
  uint64_t rounds_ = 0;

  struct Barriers;  // Hides <barrier> from this header.
  std::unique_ptr<Barriers> barriers_;
};

}  // namespace iolsim

#endif  // SRC_SIMOS_SHARD_H_
