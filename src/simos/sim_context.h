// SimContext bundles the simulated machine: clock, event queue, cost model,
// operation counters, memory accounting, and the VM system.
//
// Cost charging has two modes:
//  * Direct mode (default): ChargeCpu advances the virtual clock
//    immediately. Used by the single-program application benchmarks
//    (Figure 13) where one process runs alone on the CPU.
//  * Tally mode: between BeginTally/EndTally, charges accumulate into a
//    Tally instead of moving the clock. The staged HTTP request pipeline
//    runs each stage's body under a micro-tally, then acquires the
//    machine's CPU/disk resources for the measured demand so concurrent
//    requests queue — and overlap — realistically.

#ifndef SRC_SIMOS_SIM_CONTEXT_H_
#define SRC_SIMOS_SIM_CONTEXT_H_

#include <cassert>
#include <memory>

#include "src/simos/clock.h"
#include "src/simos/cost_model.h"
#include "src/simos/event_queue.h"
#include "src/simos/memory_model.h"
#include "src/simos/stats.h"
#include "src/simos/vm.h"

namespace iolqos {
class QosPolicy;
}  // namespace iolqos

namespace iolsim {

// Accumulated demand of one logical task (e.g. one HTTP request).
struct Tally {
  SimTime cpu = 0;
  SimTime disk = 0;
};

class SimContext {
 public:
  SimContext() : SimContext(CostParams{}) {}

  explicit SimContext(const CostParams& params)
      : cost_(params),
        memory_(params.ram_bytes),
        events_(&clock_, &stats_.events_dispatched),
        cpu_(&clock_, params.cpu_count),
        disk_(&clock_, params.disk_count),
        link_(&clock_),
        chain_(&events_),
        vm_(std::make_unique<VmSystem>(this)) {
    memory_.Set("kernel", params.kernel_reserved_bytes);
  }

  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  VirtualClock& clock() { return clock_; }
  const CostModel& cost() const { return cost_; }
  SimStats& stats() { return stats_; }
  MemoryModel& memory() { return memory_; }
  EventQueue& events() { return events_; }
  VmSystem& vm() { return *vm_; }

  // The machine's contended resources. Staged request pipelines acquire
  // these asynchronously as each stage runs; sequential (direct-mode)
  // callers may ignore them and charge costs straight onto the clock.
  Resource& cpu() { return cpu_; }
  Resource& disk() { return disk_; }
  Resource& link() { return link_; }

  // Pooled two-hop acquisitions over those resources (disk-then-CPU stages).
  ResourceChain& chain() { return chain_; }

  // Charges `t` of CPU time: into the active tally, or directly onto the
  // clock when no tally is active.
  void ChargeCpu(SimTime t) {
    if (t <= 0) {
      return;
    }
    if (tally_ != nullptr) {
      tally_->cpu += t;
    } else {
      clock_.Advance(t);
    }
  }

  // Charges `t` of disk service time.
  void ChargeDisk(SimTime t) {
    if (t <= 0) {
      return;
    }
    if (tally_ != nullptr) {
      tally_->disk += t;
    } else {
      clock_.Advance(t);
    }
  }

  // Begins accumulating charges into `tally`. Not reentrant.
  void BeginTally(Tally* tally) {
    assert(tally_ == nullptr);
    tally_ = tally;
  }

  void EndTally() {
    assert(tally_ != nullptr);
    tally_ = nullptr;
  }

  bool tally_active() const { return tally_ != nullptr; }

  // The tenant on whose behalf the machine is currently working. The QoS
  // plane's fair schedulers restore this before running each dispatched
  // continuation, so downstream stages (disk reads, cache inserts, per-MSS
  // transmits) attribute their demand to the right tenant without
  // per-callsite plumbing. Stays kDefaultTenant in single-tenant runs.
  TenantId active_tenant() const { return active_tenant_; }
  void set_active_tenant(TenantId t) { active_tenant_ = t; }

  // The attached QoS policy plane, if any (owned by the experiment
  // composition, not the context). Stage-hook sites test this for null.
  iolqos::QosPolicy* qos() const { return qos_; }
  void set_qos(iolqos::QosPolicy* qos) { qos_ = qos; }

 private:
  VirtualClock clock_;
  CostModel cost_;
  SimStats stats_;
  MemoryModel memory_;
  EventQueue events_;
  Resource cpu_;
  Resource disk_;
  Resource link_;
  ResourceChain chain_;
  std::unique_ptr<VmSystem> vm_;
  Tally* tally_ = nullptr;
  TenantId active_tenant_ = kDefaultTenant;
  iolqos::QosPolicy* qos_ = nullptr;
};

// RAII helper for tally scopes.
class TallyScope {
 public:
  TallyScope(SimContext* ctx, Tally* tally) : ctx_(ctx) { ctx_->BeginTally(tally); }
  ~TallyScope() { ctx_->EndTally(); }
  TallyScope(const TallyScope&) = delete;
  TallyScope& operator=(const TallyScope&) = delete;

 private:
  SimContext* ctx_;
};

}  // namespace iolsim

#endif  // SRC_SIMOS_SIM_CONTEXT_H_
