// Physical memory accounting for the simulated machine.
//
// The paper's server has 128 MB. How that memory is divided matters for the
// trace experiments: copy-based servers lose file-cache memory to TCP socket
// send buffers (one Tss per concurrent connection, Section 5.7) and Apache
// additionally loses a resident process per connection; IO-Lite's send
// "buffers" are references into the unified cache, so the cache budget is
// independent of the client population.

#ifndef SRC_SIMOS_MEMORY_MODEL_H_
#define SRC_SIMOS_MEMORY_MODEL_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "src/simos/pool_allocator.h"

namespace iolsim {

// Category lookups are heterogeneous (string_view against std::string keys)
// and a category whose reservation drops to zero keeps its entry: the
// nonpersistent request path reserves and releases the socket send buffer
// once per connection, and neither a temporary key string nor a map-node
// round trip belongs on that path. Zero-byte entries are invisible to every
// query (they add nothing to used() and reservation() reads 0).
class MemoryModel {
 public:
  explicit MemoryModel(uint64_t total_bytes) : total_(total_bytes) {}

  uint64_t total() const { return total_; }

  // Records `bytes` of memory in use under `category` (e.g. "kernel",
  // "apache_processes", "socket_send_buffers"). Returns false if the
  // reservation would exceed physical memory; the reservation is still
  // recorded (the VM system would page, which the file cache budget then
  // reflects as zero).
  bool Reserve(std::string_view category, uint64_t bytes) {
    Entry(category) += bytes;
    used_ += bytes;
    return used_ <= total_;
  }

  // Releases `bytes` from `category` (clamped at zero).
  void Release(std::string_view category, uint64_t bytes) {
    auto it = reserved_.find(category);
    if (it == reserved_.end()) {
      return;
    }
    uint64_t released = bytes < it->second ? bytes : it->second;
    it->second -= released;
    used_ -= released;
  }

  // Replaces the reservation under `category` with exactly `bytes`.
  void Set(std::string_view category, uint64_t bytes) {
    uint64_t& entry = Entry(category);
    used_ += bytes - entry;
    entry = bytes;
  }

  uint64_t reservation(std::string_view category) const {
    auto it = reserved_.find(category);
    return it == reserved_.end() ? 0 : it->second;
  }

  // Sum of all reservations (maintained incrementally).
  uint64_t used() const { return used_; }

  // Memory left over for the file cache after all other reservations.
  uint64_t CacheBudget() const {
    return used_ >= total_ ? 0 : total_ - used_;
  }

  void Reset() {
    reserved_.clear();
    used_ = 0;
  }

 private:
  uint64_t& Entry(std::string_view category) {
    auto it = reserved_.find(category);
    if (it == reserved_.end()) {
      it = reserved_.emplace(std::string(category), 0).first;
    }
    return it->second;
  }

  uint64_t total_;
  uint64_t used_ = 0;
  std::map<std::string, uint64_t, std::less<>,
           PoolAllocator<std::pair<const std::string, uint64_t>>>
      reserved_;
};

}  // namespace iolsim

#endif  // SRC_SIMOS_MEMORY_MODEL_H_
