// Physical memory accounting for the simulated machine.
//
// The paper's server has 128 MB. How that memory is divided matters for the
// trace experiments: copy-based servers lose file-cache memory to TCP socket
// send buffers (one Tss per concurrent connection, Section 5.7) and Apache
// additionally loses a resident process per connection; IO-Lite's send
// "buffers" are references into the unified cache, so the cache budget is
// independent of the client population.

#ifndef SRC_SIMOS_MEMORY_MODEL_H_
#define SRC_SIMOS_MEMORY_MODEL_H_

#include <cstdint>
#include <map>
#include <string>

namespace iolsim {

class MemoryModel {
 public:
  explicit MemoryModel(uint64_t total_bytes) : total_(total_bytes) {}

  uint64_t total() const { return total_; }

  // Records `bytes` of memory in use under `category` (e.g. "kernel",
  // "apache_processes", "socket_send_buffers"). Returns false if the
  // reservation would exceed physical memory; the reservation is still
  // recorded (the VM system would page, which the file cache budget then
  // reflects as zero).
  bool Reserve(const std::string& category, uint64_t bytes) {
    reserved_[category] += bytes;
    return used() <= total_;
  }

  // Releases `bytes` from `category` (clamped at zero).
  void Release(const std::string& category, uint64_t bytes) {
    auto it = reserved_.find(category);
    if (it == reserved_.end()) {
      return;
    }
    if (it->second <= bytes) {
      reserved_.erase(it);
    } else {
      it->second -= bytes;
    }
  }

  // Replaces the reservation under `category` with exactly `bytes`.
  void Set(const std::string& category, uint64_t bytes) {
    if (bytes == 0) {
      reserved_.erase(category);
    } else {
      reserved_[category] = bytes;
    }
  }

  uint64_t reservation(const std::string& category) const {
    auto it = reserved_.find(category);
    return it == reserved_.end() ? 0 : it->second;
  }

  // Sum of all reservations.
  uint64_t used() const {
    uint64_t sum = 0;
    for (const auto& [name, bytes] : reserved_) {
      sum += bytes;
    }
    return sum;
  }

  // Memory left over for the file cache after all other reservations.
  uint64_t CacheBudget() const {
    uint64_t u = used();
    return u >= total_ ? 0 : total_ - u;
  }

  void Reset() { reserved_.clear(); }

 private:
  uint64_t total_;
  std::map<std::string, uint64_t> reserved_;
};

}  // namespace iolsim

#endif  // SRC_SIMOS_MEMORY_MODEL_H_
