// Per-run operation counters.
//
// Every subsystem increments these as it performs work, so tests can assert
// structural properties ("Flash-Lite performed zero data copies on the static
// path") and EXPERIMENTS.md can report the mechanism behind each result.

#ifndef SRC_SIMOS_STATS_H_
#define SRC_SIMOS_STATS_H_

#include <cstdint>

namespace iolsim {

struct SimStats {
  // Data-touching operations.
  uint64_t bytes_copied = 0;
  uint64_t copy_ops = 0;
  uint64_t bytes_checksummed = 0;
  uint64_t checksum_ops = 0;
  uint64_t checksum_cache_hits = 0;
  uint64_t checksum_cache_misses = 0;

  // VM activity.
  uint64_t pages_mapped = 0;
  uint64_t page_protect_ops = 0;
  uint64_t chunk_map_ops = 0;

  // Buffer lifecycle.
  uint64_t buffers_allocated = 0;
  uint64_t buffers_recycled = 0;
  uint64_t buffers_freed = 0;

  // File cache.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;

  // Disk.
  uint64_t disk_reads = 0;
  uint64_t disk_bytes_read = 0;
  uint64_t disk_writes = 0;
  uint64_t disk_bytes_written = 0;

  // Network.
  uint64_t tcp_connections = 0;
  uint64_t packets_sent = 0;
  uint64_t bytes_sent = 0;

  // Syscall boundary crossings.
  uint64_t syscalls = 0;

  // Discrete-event engine: callbacks dispatched by the EventQueue. The
  // wall-clock benchmarks divide this by elapsed host time to report
  // events_per_sec; simulated results must not depend on it.
  uint64_t events_dispatched = 0;

  // Proxy-cache tier (src/proxy). The front cache's own hit/miss/eviction
  // counters are kept apart from the machine's unified-cache counters
  // (cache_hits/cache_misses above) so per-tier hit rates stay separable:
  // in a proxy experiment the unified-cache counters describe the origin
  // tier, these describe the proxy tier.
  uint64_t proxy_cache_hits = 0;
  uint64_t proxy_cache_misses = 0;
  uint64_t proxy_cache_evictions = 0;
  // Payload fetched from the origin tier over the backhaul, and the subset
  // of it that a copy-based proxy memcpy'd into its private cache on
  // arrival. A warm co-located IO-Lite proxy must leave both untouched.
  uint64_t backhaul_bytes = 0;
  uint64_t backhaul_bytes_copied = 0;

  // CDN hierarchy (src/cdn): per-level consistency and backhaul traffic.
  // Level 0 is the edge tier, higher indices sit closer to the origin.
  // Every counter here describes the proxies *at* that level: hits/misses
  // of their caches, payload they pulled from their parents, consistency
  // control traffic addressed to them, and the stale serves they performed.
  static constexpr int kMaxCdnLevels = 4;
  struct CdnLevelStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t backhaul_bytes = 0;       // Payload fetched from the parent.
    uint64_t stale_serves = 0;         // Served bytes older than the origin's.
    uint64_t invalidations_sent = 0;   // Invalidation messages delivered here.
    uint64_t invalidations_applied = 0;  // ...that actually dropped an entry.
    uint64_t revalidations = 0;        // Conditional checks issued upward.
    uint64_t revalidation_bytes = 0;   // Header bytes those checks moved.
    uint64_t fetch_races = 0;          // In-flight fetches beaten by a write.
    uint64_t shaper_holds = 0;         // Backhaul transfers delayed by shaping.
  };
  CdnLevelStats cdn[kMaxCdnLevels];
  uint64_t cdn_writes = 0;  // Origin WriteExtents applied by the write plan.

  // Shared-memory IPC (src/ipc): the real-transport descriptor rings.
  // `ipc_bytes_transferred` counts payload moved purely by reference (never
  // touched by the transport); `ipc_bytes_copied` counts payload that had to
  // be staged into the region because it lived outside it. A warm aggregate
  // transfer must increment only the former — tests assert it.
  uint64_t ipc_frames_sent = 0;
  uint64_t ipc_frames_received = 0;
  uint64_t ipc_slices_sent = 0;
  uint64_t ipc_bytes_transferred = 0;
  uint64_t ipc_bytes_copied = 0;
  uint64_t ipc_desc_bytes = 0;       // Control-plane descriptor traffic.
  uint64_t ipc_ring_full_events = 0; // Backpressure: frame did not fit.

  void Reset() { *this = SimStats{}; }
};

}  // namespace iolsim

#endif  // SRC_SIMOS_STATS_H_
