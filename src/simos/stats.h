// Per-run operation counters.
//
// Every subsystem increments these as it performs work, so tests can assert
// structural properties ("Flash-Lite performed zero data copies on the static
// path") and EXPERIMENTS.md can report the mechanism behind each result.

#ifndef SRC_SIMOS_STATS_H_
#define SRC_SIMOS_STATS_H_

#include <cstdint>

namespace iolsim {

struct SimStats {
  // Data-touching operations.
  uint64_t bytes_copied = 0;
  uint64_t copy_ops = 0;
  uint64_t bytes_checksummed = 0;
  uint64_t checksum_ops = 0;
  uint64_t checksum_cache_hits = 0;
  uint64_t checksum_cache_misses = 0;

  // VM activity.
  uint64_t pages_mapped = 0;
  uint64_t page_protect_ops = 0;
  uint64_t chunk_map_ops = 0;

  // Buffer lifecycle.
  uint64_t buffers_allocated = 0;
  uint64_t buffers_recycled = 0;
  uint64_t buffers_freed = 0;

  // File cache.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;

  // Disk.
  uint64_t disk_reads = 0;
  uint64_t disk_bytes_read = 0;
  uint64_t disk_writes = 0;
  uint64_t disk_bytes_written = 0;

  // Network.
  uint64_t tcp_connections = 0;
  uint64_t packets_sent = 0;
  uint64_t bytes_sent = 0;

  // Syscall boundary crossings.
  uint64_t syscalls = 0;

  void Reset() { *this = SimStats{}; }
};

}  // namespace iolsim

#endif  // SRC_SIMOS_STATS_H_
