// PoolAllocator: a freelist-backed std allocator for node-based containers.
//
// The warm request path performs balanced insert/erase cycles on a few
// node-based containers — the checksum cache's LRU list + hash map, the GDS
// policy's priority set, the buffer pool's free list, the memory model's
// reservation map. With the default allocator every cycle is an operator
// new/delete round trip. PoolAllocator gives each container a private free
// list keyed by block size: deallocated nodes are parked and reused, so
// steady-state container churn never touches the heap (memory is retained
// until the container — and the last allocator copy — is destroyed).
//
// Semantics (element order, iterator validity, tie-breaking) are exactly
// the container's own: only the source of raw node memory changes, which is
// what keeps pooled containers bit-compatible with the unpooled originals.

#ifndef SRC_SIMOS_POOL_ALLOCATOR_H_
#define SRC_SIMOS_POOL_ALLOCATOR_H_

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace iolsim {

namespace internal {

// Free lists for one container family, shared across rebound copies.
// Containers rebind the allocator to 2-3 distinct node types; a small
// linear-scanned array of size classes covers them.
class PoolState {
 public:
  void* Allocate(size_t bytes) {
    std::vector<void*>* fl = ListFor(bytes, /*create=*/false);
    if (fl != nullptr && !fl->empty()) {
      void* p = fl->back();
      fl->pop_back();
      return p;
    }
    return ::operator new(bytes);
  }

  void Deallocate(void* p, size_t bytes) {
    std::vector<void*>* fl = ListFor(bytes, /*create=*/true);
    if (fl == nullptr) {
      ::operator delete(p);
      return;
    }
    fl->push_back(p);
  }

  ~PoolState() {
    for (SizeClass& sc : classes_) {
      for (void* p : sc.free) {
        ::operator delete(p);
      }
    }
  }

 private:
  struct SizeClass {
    size_t bytes = 0;
    std::vector<void*> free;
  };

  std::vector<void*>* ListFor(size_t bytes, bool create) {
    for (SizeClass& sc : classes_) {
      if (sc.bytes == bytes) {
        return &sc.free;
      }
    }
    if (!create || classes_.size() >= kMaxClasses) {
      return nullptr;  // Unknown or overflowing size class: plain heap.
    }
    classes_.push_back(SizeClass{bytes, {}});
    return &classes_.back().free;
  }

  static constexpr size_t kMaxClasses = 8;
  std::vector<SizeClass> classes_;
};

}  // namespace internal

template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  PoolAllocator() : state_(std::make_shared<internal::PoolState>()) {}

  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) : state_(other.state_) {}  // NOLINT

  T* allocate(size_t n) {
    if (n == 1) {
      return static_cast<T*>(state_->Allocate(sizeof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, size_t n) {
    if (n == 1) {
      state_->Deallocate(p, sizeof(T));
      return;
    }
    ::operator delete(p);
  }

  bool operator==(const PoolAllocator& other) const { return state_ == other.state_; }
  bool operator!=(const PoolAllocator& other) const { return !(*this == other); }

 private:
  template <typename U>
  friend class PoolAllocator;

  std::shared_ptr<internal::PoolState> state_;
};

}  // namespace iolsim

#endif  // SRC_SIMOS_POOL_ALLOCATOR_H_
