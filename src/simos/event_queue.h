// Discrete-event engine driving the simulated machine.
//
// Benchmarks model a closed-loop client population: each client issues a
// request, the request visits a series of Resources (CPU, disk, network
// link), and completion schedules the client's next request. The EventQueue
// orders those completions in virtual time.
//
// The engine is allocation-free in steady state: continuations are
// InlineCallbacks (fixed inline storage, no heap), the scheduler structures
// order lightweight POD keys over a pooled slot array so dispatched events
// are *moved* out rather than copied, and multi-stage continuations ride in
// pooled nodes (ResourceChain, and per-subsystem pools in net/fs/httpd).
//
// Two scheduler implementations share the slot pool and the exact
// (when, seq) dispatch contract:
//
//  * kCalendar (default): a bucketed calendar queue (R. Brown, CACM '88).
//    Days are a power-of-two width auto-tuned from observed inter-event
//    gaps; each bucket is a sorted FIFO of pooled nodes with an O(1)
//    append fast path (monotone and same-instant schedules); the bucket
//    array lazily doubles/halves as the population drifts. Amortized O(1)
//    schedule and dispatch for the stationary-arrival workloads every
//    figure runs.
//  * kHeap: the 4-ary POD heap, kept as the reference implementation
//    behind a knob (env IOLITE_EVENT_QUEUE=heap, the IOLITE_HEAP_SCHEDULER
//    build option, or EventQueue::set_default_impl). O(log n) per event.
//
// Both dispatch in exactly (when, seq) order — seq is unique, so the order
// is a total order independent of scheduler internals. The golden
// determinism tests pin this; tests/scheduler_test.cc drives randomized
// schedule/cancel streams through both and asserts identical sequences.

#ifndef SRC_SIMOS_EVENT_QUEUE_H_
#define SRC_SIMOS_EVENT_QUEUE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "src/simos/clock.h"
#include "src/simos/inline_function.h"

namespace iolsim {

// A time-ordered queue of callbacks. Ties are broken by insertion order so
// simulations are deterministic.
class EventQueue {
 public:
  enum class Impl { kCalendar, kHeap };

  // Handle for Cancel: packs the callback slot and its generation, so a
  // stale handle (the event already dispatched or cancelled) is rejected.
  using EventId = uint64_t;

  // The process-wide default scheduler. Starts as kCalendar (kHeap when
  // built with IOLITE_HEAP_SCHEDULER), overridable by the environment
  // (IOLITE_EVENT_QUEUE=heap|calendar) and at runtime by set_default_impl
  // (read once per EventQueue construction; not thread-safe against
  // concurrent construction — flip it between runs, from one thread).
  static Impl default_impl() { return DefaultImplSlot(); }
  static void set_default_impl(Impl impl) { DefaultImplSlot() = impl; }

  // `dispatched_counter`, when given, is incremented once per dispatched
  // event (SimContext points it at SimStats::events_dispatched).
  explicit EventQueue(VirtualClock* clock, uint64_t* dispatched_counter = nullptr,
                      Impl impl = default_impl())
      : clock_(clock),
        dispatched_(dispatched_counter != nullptr ? dispatched_counter : &own_dispatched_),
        impl_(impl) {
    if (impl_ == Impl::kCalendar) {
      cal_head_.assign(kMinBuckets, kNil);
      cal_tail_.assign(kMinBuckets, kNil);
      cal_mask_ = kMinBuckets - 1;
      cal_top_ = SimTime{1} << cal_shift_;
    }
  }

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  Impl impl() const { return impl_; }

  // Schedules `fn` to run at absolute time `when` (clamped to now). The
  // returned id is valid until the event dispatches (or is cancelled) and
  // may be ignored — almost every caller does.
  EventId ScheduleAt(SimTime when, InlineCallback fn) {
    if (when < clock_->now()) {
      when = clock_->now();
    }
    uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot].fn = std::move(fn);
    } else {
      slot = static_cast<uint32_t>(slots_.size());
      slots_.emplace_back();
      slots_[slot].fn = std::move(fn);
    }
    uint64_t seq = next_seq_++;
    if (impl_ == Impl::kHeap) {
      heap_.push_back(Event{when, seq, slot});
      SiftUp(heap_.size() - 1);
    } else {
      CalInsert(when, seq, slot);
    }
    ++live_;
    return MakeId(slot, slots_[slot].gen);
  }

  // Schedules `fn` to run `delay` after the current time.
  EventId ScheduleAfter(SimTime delay, InlineCallback fn) {
    return ScheduleAt(clock_->now() + delay, std::move(fn));
  }

  // Cancels a pending event. Returns false for a stale id (already
  // dispatched, already cancelled, or never valid). O(1): the event's key
  // stays queued and is discarded when it surfaces; the callback (and
  // whatever it captured) is destroyed immediately.
  bool Cancel(EventId id) {
    uint32_t slot = static_cast<uint32_t>(id >> 32);
    uint32_t gen = static_cast<uint32_t>(id);
    if (slot >= slots_.size() || slots_[slot].gen != gen || slots_[slot].cancelled) {
      return false;
    }
    Slot& s = slots_[slot];
    // A live generation match can still be a free slot (never scheduled
    // under this gen) only if the caller forged an id; scheduled slots are
    // exactly those not on the free list with matching gen.
    s.cancelled = true;
    s.fn = InlineCallback();
    ++s.gen;  // Invalidate the handle immediately (double-cancel is a no-op).
    assert(live_ > 0);
    --live_;
    return true;
  }

  // True if no live events are pending.
  bool empty() const { return live_ == 0; }

  // Number of live (non-cancelled) pending events.
  size_t size() const { return live_; }

  // Time of the earliest live event; false when none is pending. Purges
  // cancelled keys it surfaces along the way.
  bool PeekWhen(SimTime* when) {
    while (live_ > 0) {
      Event e = PeekMinKey();
      if (slots_[e.slot].cancelled) {
        PopMinKey();
        ReleaseCancelled(e.slot);
        continue;
      }
      *when = e.when;
      return true;
    }
    return false;
  }

  // Dispatches the earliest event, advancing the clock to its timestamp.
  // Returns false if the queue was empty.
  bool RunOne() {
    SimTime when;
    if (!PeekWhen(&when)) {
      return false;
    }
    Event ev = PopMinKey();
    clock_->AdvanceTo(ev.when);
    ++*dispatched_;
    --live_;
    // Move the continuation out and release the slot before invoking: the
    // callback is free to schedule into the slot it just vacated.
    InlineCallback fn = std::move(slots_[ev.slot].fn);
    ReleaseSlot(ev.slot);
    fn();
    return true;
  }

  // Runs events until the queue drains or the clock passes `deadline`.
  // Events scheduled exactly at `deadline` still run. Returns the number of
  // events dispatched.
  uint64_t RunUntil(SimTime deadline) {
    uint64_t dispatched = 0;
    SimTime when;
    while (PeekWhen(&when) && when <= deadline) {
      RunOne();
      ++dispatched;
    }
    clock_->AdvanceTo(deadline);
    return dispatched;
  }

  // Runs until no events remain.
  uint64_t RunAll() {
    uint64_t dispatched = 0;
    while (RunOne()) {
      ++dispatched;
    }
    return dispatched;
  }

 private:
  // Both schedulers order lightweight POD keys; the continuations
  // themselves sit in a slot pool and never move while queued.
  struct Event {
    SimTime when;
    uint64_t seq;
    uint32_t slot;
  };

  // A pooled continuation plus the bookkeeping Cancel needs: the
  // generation invalidates stale EventIds, and `cancelled` marks a key
  // whose surfacing should be silent (no clock movement, no dispatch).
  struct Slot {
    InlineCallback fn;
    uint32_t gen = 0;
    bool cancelled = false;
  };

  static constexpr uint32_t kNil = UINT32_MAX;

  static Impl& DefaultImplSlot() {
    static Impl impl = [] {
#ifdef IOLITE_HEAP_SCHEDULER
      Impl v = Impl::kHeap;
#else
      Impl v = Impl::kCalendar;
#endif
      const char* env = std::getenv("IOLITE_EVENT_QUEUE");
      if (env != nullptr) {
        if (std::strcmp(env, "heap") == 0) {
          v = Impl::kHeap;
        } else if (std::strcmp(env, "calendar") == 0) {
          v = Impl::kCalendar;
        }
      }
      return v;
    }();
    return impl;
  }

  static EventId MakeId(uint32_t slot, uint32_t gen) {
    return (static_cast<uint64_t>(slot) << 32) | gen;
  }

  void ReleaseSlot(uint32_t slot) {
    ++slots_[slot].gen;
    free_slots_.push_back(slot);
  }

  // A cancelled key surfaced: the callback is already destroyed and the
  // generation already bumped (Cancel did both); just recycle the slot.
  void ReleaseCancelled(uint32_t slot) {
    slots_[slot].cancelled = false;
    free_slots_.push_back(slot);
  }

  Event PeekMinKey() {
    if (impl_ == Impl::kHeap) {
      return heap_[0];
    }
    CalFindMin();
    const CalNode& n = cal_nodes_[cal_head_[cal_bucket_]];
    return Event{n.when, n.seq, n.slot};
  }

  Event PopMinKey() {
    if (impl_ == Impl::kHeap) {
      Event ev = heap_[0];
      Event last = heap_.back();
      heap_.pop_back();
      if (!heap_.empty()) {
        SiftDownFromRoot(last);
      }
      return ev;
    }
    CalFindMin();
    uint32_t idx = cal_head_[cal_bucket_];
    CalNode& n = cal_nodes_[idx];
    Event ev{n.when, n.seq, n.slot};
    cal_head_[cal_bucket_] = n.next;
    if (n.next == kNil) {
      cal_tail_[cal_bucket_] = kNil;
    }
    n.next = cal_free_;
    cal_free_ = idx;
    --cal_count_;
    // Day-width tuning input: the gap between successive dispatch instants
    // is exactly the stationary inter-event spacing the day width should
    // match. (Resizes consume the running average; see CalResize.)
    SimTime gap = ev.when - cal_last_when_;
    cal_last_when_ = ev.when;
    cal_gap_sum_ += gap;
    ++cal_gap_n_;
    if (cal_count_ < (cal_mask_ + 1) / 4 && cal_mask_ + 1 > kMinBuckets) {
      CalResize(cal_count_);
    }
    return ev;
  }

  // --- 4-ary heap (reference implementation) --------------------------------

  // "a dispatches after b". (when, seq) is a total order — seq is unique —
  // so the dispatch order is exactly the old priority_queue's, independent
  // of heap shape or arity.
  static bool After(const Event& a, const Event& b) {
    if (a.when != b.when) {
      return a.when > b.when;
    }
    return a.seq > b.seq;
  }

  static constexpr size_t kArity = 4;

  void SiftUp(size_t i) {
    Event e = heap_[i];
    while (i > 0) {
      size_t parent = (i - 1) / kArity;
      if (!After(heap_[parent], e)) {
        break;
      }
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  // Places `e` starting at the (just-vacated) root.
  void SiftDownFromRoot(Event e) {
    size_t n = heap_.size();
    size_t i = 0;
    while (true) {
      size_t first_kid = i * kArity + 1;
      if (first_kid >= n) {
        break;
      }
      size_t best = first_kid;
      size_t end = first_kid + kArity < n ? first_kid + kArity : n;
      for (size_t kid = first_kid + 1; kid < end; ++kid) {
        if (After(heap_[best], heap_[kid])) {
          best = kid;
        }
      }
      if (!After(e, heap_[best])) {
        break;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  // --- Calendar queue -------------------------------------------------------
  //
  // Keys live in pooled, index-linked nodes; bucket b holds every pending
  // event whose day index (when >> cal_shift_) lands on b modulo the bucket
  // count. Within a bucket the list is sorted by (when, seq), so the head
  // of the "current day" bucket is the global minimum — and because two
  // events with equal `when` always share a bucket, cross-bucket
  // comparisons never need the seq tie-break.
  //
  // The dispatch cursor (cal_bucket_, cal_top_) walks day by day. Events
  // are never scheduled before the last dispatched instant (ScheduleAt
  // clamps to now, and now never precedes the last pop), so the cursor
  // only ever moves forward; a full lap without a hit (sparse far-future
  // events) falls back to a direct scan of all bucket heads.

  struct CalNode {
    SimTime when;
    uint64_t seq;
    uint32_t slot;
    uint32_t next;
  };

  static constexpr size_t kMinBuckets = 64;

  // "a sorts before b" within a bucket.
  bool CalBefore(const CalNode& a, SimTime when, uint64_t seq) const {
    if (a.when != when) {
      return a.when < when;
    }
    return a.seq < seq;
  }

  void CalInsert(SimTime when, uint64_t seq, uint32_t slot) {
    uint32_t idx;
    if (cal_free_ != kNil) {
      idx = cal_free_;
      cal_free_ = cal_nodes_[idx].next;
    } else {
      idx = static_cast<uint32_t>(cal_nodes_.size());
      cal_nodes_.emplace_back();
    }
    CalNode& n = cal_nodes_[idx];
    n.when = when;
    n.seq = seq;
    n.slot = slot;
    n.next = kNil;
    if (cal_count_ == 0 || when < cal_top_ - (SimTime{1} << cal_shift_)) {
      // Re-anchor the cursor: either the queue sat empty (the cursor is
      // stale), or this event lands in a day the cursor already passed —
      // possible because peeks advance the cursor without advancing the
      // clock, and schedules only clamp to the clock. Moving the cursor
      // *backward* is always safe; the forward walk just rescans.
      cal_bucket_ = static_cast<size_t>(when >> cal_shift_) & cal_mask_;
      cal_top_ = ((when >> cal_shift_) + 1) << cal_shift_;
    }
    CalLink(idx);
    ++cal_count_;
    if (cal_count_ > (cal_mask_ + 1) * 2) {
      CalResize(cal_count_);
    }
  }

  // Links node `idx` into its bucket's sorted list. O(1) for the dominant
  // patterns: append (monotone inserts, and same-instant bursts — seq grows
  // monotonically, so equal-when events always append behind their peers).
  void CalLink(uint32_t idx) {
    CalNode& n = cal_nodes_[idx];
    size_t b = static_cast<size_t>(n.when >> cal_shift_) & cal_mask_;
    uint32_t tail = cal_tail_[b];
    if (tail == kNil) {
      cal_head_[b] = idx;
      cal_tail_[b] = idx;
      return;
    }
    if (CalBefore(cal_nodes_[tail], n.when, n.seq)) {
      cal_nodes_[tail].next = idx;
      cal_tail_[b] = idx;
      return;
    }
    uint32_t prev = kNil;
    uint32_t cur = cal_head_[b];
    while (cur != kNil && CalBefore(cal_nodes_[cur], n.when, n.seq)) {
      prev = cur;
      cur = cal_nodes_[cur].next;
    }
    n.next = cur;
    if (prev == kNil) {
      cal_head_[b] = idx;
    } else {
      cal_nodes_[prev].next = idx;
    }
  }

  // Advances the cursor until the head of cal_bucket_ is the global
  // minimum (precondition: cal_count_ > 0; callers guard via live_).
  void CalFindMin() {
    assert(cal_count_ > 0);
    size_t scanned = 0;
    while (true) {
      uint32_t h = cal_head_[cal_bucket_];
      if (h != kNil && cal_nodes_[h].when < cal_top_) {
        return;
      }
      cal_bucket_ = (cal_bucket_ + 1) & cal_mask_;
      cal_top_ += SimTime{1} << cal_shift_;
      if (++scanned > cal_mask_) {
        // A whole year without a hit: every pending event is at least one
        // lap ahead. Jump straight to the earliest bucket head (ties across
        // buckets are impossible — equal `when` shares a bucket).
        size_t best = 0;
        SimTime best_when = INT64_MAX;
        for (size_t b = 0; b <= cal_mask_; ++b) {
          uint32_t head = cal_head_[b];
          if (head != kNil && cal_nodes_[head].when < best_when) {
            best_when = cal_nodes_[head].when;
            best = b;
          }
        }
        cal_bucket_ = best;
        cal_top_ = ((best_when >> cal_shift_) + 1) << cal_shift_;
        return;
      }
    }
  }

  // Rebuilds the bucket array for roughly `target` events and re-tunes the
  // day width to the observed mean inter-dispatch gap. "Lazy": runs only
  // at the 2x-grow / 4x-shrink thresholds, so each event pays amortized
  // O(1) relinking.
  void CalResize(size_t target) {
    size_t buckets = kMinBuckets;
    while (buckets < target) {
      buckets <<= 1;
    }
    if (cal_gap_n_ >= 16) {
      SimTime avg = cal_gap_sum_ / static_cast<SimTime>(cal_gap_n_);
      // Day width = the next power of two at or above twice the mean gap:
      // ~2 events per day per lap keeps both the insert scan and the
      // cursor walk O(1) for stationary arrivals.
      int shift = 0;
      while (shift < 40 && (SimTime{1} << shift) < avg * 2) {
        ++shift;
      }
      cal_shift_ = shift;
      // Age the sample so the tuning tracks drift instead of history.
      cal_gap_sum_ /= 2;
      cal_gap_n_ /= 2;
    }
    cal_mask_ = buckets - 1;
    std::vector<uint32_t> old_head = std::move(cal_head_);
    cal_head_.assign(buckets, kNil);
    cal_tail_.assign(buckets, kNil);
    for (uint32_t h : old_head) {
      while (h != kNil) {
        uint32_t next = cal_nodes_[h].next;
        cal_nodes_[h].next = kNil;
        CalLink(h);
        h = next;
      }
    }
    // Re-anchor the cursor at the last dispatched instant — every pending
    // event is at or after it, so the forward walk stays correct.
    cal_bucket_ = static_cast<size_t>(cal_last_when_ >> cal_shift_) & cal_mask_;
    cal_top_ = ((cal_last_when_ >> cal_shift_) + 1) << cal_shift_;
  }

  VirtualClock* clock_;
  uint64_t* dispatched_;
  uint64_t own_dispatched_ = 0;
  uint64_t next_seq_ = 0;
  size_t live_ = 0;  // Pending minus cancelled-but-not-yet-surfaced.
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  Impl impl_;

  // kHeap state.
  std::vector<Event> heap_;

  // kCalendar state.
  std::vector<CalNode> cal_nodes_;
  uint32_t cal_free_ = kNil;
  std::vector<uint32_t> cal_head_;
  std::vector<uint32_t> cal_tail_;
  size_t cal_count_ = 0;  // Queued keys, cancelled included.
  size_t cal_mask_ = 0;
  int cal_shift_ = 13;  // Day width 8192 ns to start; auto-tuned at resizes.
  size_t cal_bucket_ = 0;
  SimTime cal_top_ = 0;
  SimTime cal_last_when_ = 0;
  SimTime cal_gap_sum_ = 0;
  uint64_t cal_gap_n_ = 0;
};

class Resource;

// Admission hook for the multi-tenant QoS plane (src/qos). When a scheduler
// is attached to a Resource, asynchronous acquisitions are handed to it
// instead of being reserved immediately: the scheduler queues the work under
// its own discipline (e.g. per-tenant start-time fair queueing) and performs
// the actual unit reservation only when it dispatches the job. Synchronous
// Acquire/AcquireAfter calls bypass the scheduler — direct-mode callers own
// the machine and have no peers to share with.
class ResourceScheduler {
 public:
  virtual ~ResourceScheduler() = default;

  // Takes ownership of one asynchronous acquisition: `done` must eventually
  // run on `events` at the job's completion time, exactly once.
  virtual void Admit(Resource* resource, EventQueue* events, SimTime service,
                     InlineCallback done) = 0;
};

// A FIFO service resource (CPU, disk arm, network link) with one or more
// identical service units (an N-way CPU is Resource(clock, N)).
//
// A job arriving at time `now` with service demand `d` begins service on
// the earliest-available unit at max(now, unit free time) and completes at
// begin + d. Reservations are made in call order, so service is FIFO by
// arrival; callers that arrive via the event queue inherit its deterministic
// insertion-order tie-breaking. The queue itself is never materialized,
// which keeps the simulation allocation-free on the sync path.
//
// Unit selection is O(1): a single unit is tracked directly, and multi-unit
// resources keep an index heap ordered by (free time, index) — the same
// earliest-free, lowest-index-on-ties rule the old linear scan implemented,
// now at O(log units) per acquire and O(1) for available_at.
class Resource {
 public:
  explicit Resource(VirtualClock* clock, int units = 1)
      : clock_(clock), unit_free_at_(units > 0 ? units : 1, 0) {
    heap_.resize(unit_free_at_.size());
    ResetHeap();
  }

  // Reserves a unit for `service` time and returns the completion time.
  // The caller typically schedules an event at the returned time.
  SimTime Acquire(SimTime service) { return AcquireAfter(clock_->now(), service); }

  // Reserves a unit for `service` time starting no earlier than `earliest`
  // (e.g. after an upstream stage completes).
  SimTime AcquireAfter(SimTime earliest, SimTime service) {
    SimTime now = clock_->now();
    SimTime start = earliest > now ? earliest : now;
    SimTime& unit = unit_free_at_[BestUnit()];
    if (unit > start) {
      start = unit;
    }
    if (!fault_windows_.empty()) {
      ApplyFaultWindows(now, &start, &service);
    }
    unit = start + service;
    busy_ += service;
    if (unit_free_at_.size() > 1) {
      SiftRootDown();  // The root's key just grew; restore heap order.
    }
    return unit;
  }

  // Asynchronous acquisition: reserves the earliest-available unit starting
  // now and schedules `done` on `events` at the completion time. FIFO
  // fairness follows from reservation-at-call order; simultaneous
  // completions dispatch in schedule order (EventQueue seq numbers).
  //
  // With a ResourceScheduler attached the acquisition is queued under the
  // scheduler's discipline instead, and the completion time is unknown
  // until it dispatches — the return value is 0 in that case (no async
  // call site consumes it).
  SimTime AcquireAsync(EventQueue* events, SimTime service, InlineCallback done) {
    if (scheduler_ != nullptr) {
      scheduler_->Admit(this, events, service, std::move(done));
      return 0;
    }
    SimTime finish = Acquire(service);
    events->ScheduleAt(finish, std::move(done));
    return finish;
  }

  // QoS hook (src/qos): routes AcquireAsync through `scheduler`; null
  // restores the plain reservation-at-call FIFO semantics.
  void set_scheduler(ResourceScheduler* scheduler) { scheduler_ = scheduler; }
  ResourceScheduler* scheduler() const { return scheduler_; }

  // Time at which some unit next becomes free.
  SimTime available_at() const { return unit_free_at_[BestUnit()]; }

  int units() const { return static_cast<int>(unit_free_at_.size()); }

  // Total busy time accumulated across all units (for utilization
  // reporting; divide by units() for per-unit utilization).
  SimTime busy_time() const { return busy_; }

  void Reset() {
    for (SimTime& t : unit_free_at_) {
      t = 0;
    }
    busy_ = 0;
    ResetHeap();
  }

  // --- Fault plane (src/fault) ------------------------------------------
  //
  // Timed degradation windows, armed against the resource before (or
  // during) a run. A job whose service would begin inside a window is
  // degraded:
  //   * fail-slow: its service demand is multiplied by num/den (integer
  //     arithmetic, so faulted runs stay bit-identical across platforms);
  //   * fail-stop (num == 0): the device serves nothing while stopped —
  //     the job's start is deferred to the window end, and queued work
  //     resumes in the original FIFO reservation order.
  // With no windows armed, the acquire path is untouched (a single
  // empty() check), so an empty FaultPlan is byte-identical to the
  // un-faulted engine. Overlapping slow windows do not stack: the
  // earliest-starting one covering the job applies.

  void AddSlowWindow(SimTime start, SimTime end, uint32_t num, uint32_t den) {
    assert(num > 0 && den > 0 && end > start);
    fault_windows_.push_back(FaultWindow{start, end, num, den});
    SortFaultWindows();
  }

  void AddOutageWindow(SimTime start, SimTime end) {
    assert(end > start);
    fault_windows_.push_back(FaultWindow{start, end, 0, 1});
    SortFaultWindows();
  }

  // True if a fail-stop window covers `t` (proxy fail-open checks this
  // before queueing a fetch behind a dead backhaul).
  bool InOutage(SimTime t) const {
    for (const FaultWindow& w : fault_windows_) {
      if (w.start > t) {
        break;  // Sorted by start: no later window can cover t.
      }
      if (w.num == 0 && t < w.end) {
        return true;
      }
    }
    return false;
  }

  bool has_fault_windows() const { return !fault_windows_.empty(); }

 private:
  struct FaultWindow {
    SimTime start = 0;
    SimTime end = 0;
    uint32_t num = 0;  // 0 = fail-stop (outage); otherwise service *= num/den.
    uint32_t den = 1;
  };

  void SortFaultWindows() {
    // Insertion-time sort (arming is rare, acquiring is hot). Stable order
    // by (start, end) keeps overlapping-window resolution deterministic.
    std::sort(fault_windows_.begin(), fault_windows_.end(),
              [](const FaultWindow& a, const FaultWindow& b) {
                return a.start != b.start ? a.start < b.start : a.end < b.end;
              });
    fault_cursor_ = 0;
  }

  void ApplyFaultWindows(SimTime now, SimTime* start, SimTime* service) {
    // Windows fully in the past can never degrade a new job (start >= now,
    // and now only moves forward), so skip them permanently.
    while (fault_cursor_ < fault_windows_.size() &&
           fault_windows_[fault_cursor_].end <= now) {
      ++fault_cursor_;
    }
    for (size_t i = fault_cursor_; i < fault_windows_.size(); ++i) {
      const FaultWindow& w = fault_windows_[i];
      if (w.start > *start) {
        break;  // Sorted by start: later windows can't cover this start.
      }
      if (*start >= w.end) {
        continue;  // Already over by the time this job would begin.
      }
      if (w.num == 0) {
        *start = w.end;  // Fail-stop: resume when the device comes back.
        continue;        // Back-to-back windows may cover the new start.
      }
      *service = *service * w.num / w.den;
      break;  // One slow multiplier per job; overlapping windows don't stack.
    }
  }

  // Earliest-free unit; ties resolve to the lowest index so unit selection
  // is deterministic. O(1): the single-unit case has no choice to make and
  // the multi-unit case reads the heap root.
  size_t BestUnit() const { return unit_free_at_.size() == 1 ? 0 : heap_[0]; }

  // "unit a is a worse pick than unit b" under (free time, index).
  bool Worse(uint32_t a, uint32_t b) const {
    if (unit_free_at_[a] != unit_free_at_[b]) {
      return unit_free_at_[a] > unit_free_at_[b];
    }
    return a > b;
  }

  void SiftRootDown() {
    size_t n = heap_.size();
    size_t i = 0;
    uint32_t moving = heap_[0];
    while (true) {
      size_t kid = 2 * i + 1;
      if (kid >= n) {
        break;
      }
      if (kid + 1 < n && Worse(heap_[kid], heap_[kid + 1])) {
        ++kid;
      }
      if (!Worse(moving, heap_[kid])) {
        break;
      }
      heap_[i] = heap_[kid];
      i = kid;
    }
    heap_[i] = moving;
  }

  void ResetHeap() {
    // All-equal keys: ascending indices already satisfy the heap property
    // and encode the lowest-index tie-break.
    for (size_t i = 0; i < heap_.size(); ++i) {
      heap_[i] = static_cast<uint32_t>(i);
    }
  }

  VirtualClock* clock_;
  std::vector<SimTime> unit_free_at_;
  std::vector<uint32_t> heap_;  // Unit indices, min-heap by (free time, index).
  SimTime busy_ = 0;
  ResourceScheduler* scheduler_ = nullptr;
  std::vector<FaultWindow> fault_windows_;  // Sorted by (start, end).
  size_t fault_cursor_ = 0;                 // First window not fully past.
};

// Pooled two-hop acquisition: reserve `first` for `s1`, and at its
// completion event reserve `second` for `s2` with `done` running at that
// completion. The continuation between the hops rides in a free-listed node
// — the staged pipeline's disk-then-CPU stages schedule millions of these —
// so steady-state chains never allocate.
class ResourceChain {
 public:
  explicit ResourceChain(EventQueue* events) : events_(events) {}

  ResourceChain(const ResourceChain&) = delete;
  ResourceChain& operator=(const ResourceChain&) = delete;

  void AcquireThenAsync(Resource* first, SimTime s1, Resource* second, SimTime s2,
                        InlineCallback done) {
    uint32_t idx;
    if (free_head_ != kNone) {
      idx = free_head_;
      free_head_ = nodes_[idx].next_free;
    } else {
      idx = static_cast<uint32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    Node& n = nodes_[idx];
    n.second = second;
    n.s2 = s2;
    n.done = std::move(done);
    first->AcquireAsync(events_, s1, [this, idx] { Resume(idx); });
  }

  size_t pool_size() const { return nodes_.size(); }

 private:
  static constexpr uint32_t kNone = UINT32_MAX;

  struct Node {
    Resource* second = nullptr;
    SimTime s2 = 0;
    InlineCallback done;
    uint32_t next_free = kNone;
  };

  void Resume(uint32_t idx) {
    Node& n = nodes_[idx];
    Resource* second = n.second;
    SimTime s2 = n.s2;
    InlineCallback done = std::move(n.done);
    n.next_free = free_head_;
    free_head_ = idx;
    second->AcquireAsync(events_, s2, std::move(done));
  }

  EventQueue* events_;
  std::vector<Node> nodes_;
  uint32_t free_head_ = kNone;
};

}  // namespace iolsim

#endif  // SRC_SIMOS_EVENT_QUEUE_H_
