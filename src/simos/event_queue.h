// Discrete-event engine driving the simulated machine.
//
// Benchmarks model a closed-loop client population: each client issues a
// request, the request visits a series of Resources (CPU, disk, network
// link), and completion schedules the client's next request. The EventQueue
// orders those completions in virtual time.

#ifndef SRC_SIMOS_EVENT_QUEUE_H_
#define SRC_SIMOS_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "src/simos/clock.h"

namespace iolsim {

// A time-ordered queue of callbacks. Ties are broken by insertion order so
// simulations are deterministic.
class EventQueue {
 public:
  explicit EventQueue(VirtualClock* clock) : clock_(clock) {}

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` to run at absolute time `when` (clamped to now).
  void ScheduleAt(SimTime when, std::function<void()> fn) {
    if (when < clock_->now()) {
      when = clock_->now();
    }
    heap_.push(Event{when, next_seq_++, std::move(fn)});
  }

  // Schedules `fn` to run `delay` after the current time.
  void ScheduleAfter(SimTime delay, std::function<void()> fn) {
    ScheduleAt(clock_->now() + delay, std::move(fn));
  }

  // True if no events are pending.
  bool empty() const { return heap_.empty(); }

  // Number of pending events.
  size_t size() const { return heap_.size(); }

  // Dispatches the earliest event, advancing the clock to its timestamp.
  // Returns false if the queue was empty.
  bool RunOne() {
    if (heap_.empty()) {
      return false;
    }
    Event ev = heap_.top();
    heap_.pop();
    clock_->AdvanceTo(ev.when);
    ev.fn();
    return true;
  }

  // Runs events until the queue drains or the clock passes `deadline`.
  // Events scheduled exactly at `deadline` still run. Returns the number of
  // events dispatched.
  uint64_t RunUntil(SimTime deadline) {
    uint64_t dispatched = 0;
    while (!heap_.empty() && heap_.top().when <= deadline) {
      RunOne();
      ++dispatched;
    }
    clock_->AdvanceTo(deadline);
    return dispatched;
  }

  // Runs until no events remain.
  uint64_t RunAll() {
    uint64_t dispatched = 0;
    while (RunOne()) {
      ++dispatched;
    }
    return dispatched;
  }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  VirtualClock* clock_;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
};

// A FIFO service resource (CPU, disk arm, network link) with one or more
// identical service units (an N-way CPU is Resource(clock, N)).
//
// A job arriving at time `now` with service demand `d` begins service on
// the earliest-available unit at max(now, unit free time) and completes at
// begin + d. Reservations are made in call order, so service is FIFO by
// arrival; callers that arrive via the event queue inherit its deterministic
// insertion-order tie-breaking. The queue itself is never materialized,
// which keeps the simulation allocation-free on the sync path.
class Resource {
 public:
  explicit Resource(VirtualClock* clock, int units = 1)
      : clock_(clock), unit_free_at_(units > 0 ? units : 1, 0) {}

  // Reserves a unit for `service` time and returns the completion time.
  // The caller typically schedules an event at the returned time.
  SimTime Acquire(SimTime service) { return AcquireAfter(clock_->now(), service); }

  // Reserves a unit for `service` time starting no earlier than `earliest`
  // (e.g. after an upstream stage completes).
  SimTime AcquireAfter(SimTime earliest, SimTime service) {
    SimTime now = clock_->now();
    SimTime start = earliest > now ? earliest : now;
    SimTime& unit = unit_free_at_[BestUnit()];
    if (unit > start) {
      start = unit;
    }
    unit = start + service;
    busy_ += service;
    return unit;
  }

  // Asynchronous acquisition: reserves the earliest-available unit starting
  // now and schedules `done` on `events` at the completion time. FIFO
  // fairness follows from reservation-at-call order; simultaneous
  // completions dispatch in schedule order (EventQueue seq numbers).
  SimTime AcquireAsync(EventQueue* events, SimTime service, std::function<void()> done) {
    SimTime finish = Acquire(service);
    events->ScheduleAt(finish, std::move(done));
    return finish;
  }

  // Time at which some unit next becomes free.
  SimTime available_at() const { return unit_free_at_[BestUnit()]; }

  int units() const { return static_cast<int>(unit_free_at_.size()); }

  // Total busy time accumulated across all units (for utilization
  // reporting; divide by units() for per-unit utilization).
  SimTime busy_time() const { return busy_; }

  void Reset() {
    for (SimTime& t : unit_free_at_) {
      t = 0;
    }
    busy_ = 0;
  }

 private:
  // Earliest-free unit; ties resolve to the lowest index so unit selection
  // is deterministic.
  size_t BestUnit() const {
    size_t best = 0;
    for (size_t i = 1; i < unit_free_at_.size(); ++i) {
      if (unit_free_at_[i] < unit_free_at_[best]) {
        best = i;
      }
    }
    return best;
  }

  VirtualClock* clock_;
  std::vector<SimTime> unit_free_at_;
  SimTime busy_ = 0;
};

}  // namespace iolsim

#endif  // SRC_SIMOS_EVENT_QUEUE_H_
