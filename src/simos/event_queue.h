// Discrete-event engine driving the simulated machine.
//
// Benchmarks model a closed-loop client population: each client issues a
// request, the request visits a series of Resources (CPU, disk, network
// link), and completion schedules the client's next request. The EventQueue
// orders those completions in virtual time.

#ifndef SRC_SIMOS_EVENT_QUEUE_H_
#define SRC_SIMOS_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "src/simos/clock.h"

namespace iolsim {

// A time-ordered queue of callbacks. Ties are broken by insertion order so
// simulations are deterministic.
class EventQueue {
 public:
  explicit EventQueue(VirtualClock* clock) : clock_(clock) {}

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` to run at absolute time `when` (clamped to now).
  void ScheduleAt(SimTime when, std::function<void()> fn) {
    if (when < clock_->now()) {
      when = clock_->now();
    }
    heap_.push(Event{when, next_seq_++, std::move(fn)});
  }

  // Schedules `fn` to run `delay` after the current time.
  void ScheduleAfter(SimTime delay, std::function<void()> fn) {
    ScheduleAt(clock_->now() + delay, std::move(fn));
  }

  // True if no events are pending.
  bool empty() const { return heap_.empty(); }

  // Number of pending events.
  size_t size() const { return heap_.size(); }

  // Dispatches the earliest event, advancing the clock to its timestamp.
  // Returns false if the queue was empty.
  bool RunOne() {
    if (heap_.empty()) {
      return false;
    }
    Event ev = heap_.top();
    heap_.pop();
    clock_->AdvanceTo(ev.when);
    ev.fn();
    return true;
  }

  // Runs events until the queue drains or the clock passes `deadline`.
  // Events scheduled exactly at `deadline` still run. Returns the number of
  // events dispatched.
  uint64_t RunUntil(SimTime deadline) {
    uint64_t dispatched = 0;
    while (!heap_.empty() && heap_.top().when <= deadline) {
      RunOne();
      ++dispatched;
    }
    clock_->AdvanceTo(deadline);
    return dispatched;
  }

  // Runs until no events remain.
  uint64_t RunAll() {
    uint64_t dispatched = 0;
    while (RunOne()) {
      ++dispatched;
    }
    return dispatched;
  }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  VirtualClock* clock_;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
};

// A FIFO service resource (CPU, disk arm, network link).
//
// A job arriving at time `now` with service demand `d` begins service at
// max(now, available_at) and completes at begin + d. This models a single
// server queue without materializing the queue itself, which is sufficient
// for FIFO service and keeps the simulation allocation-free.
class Resource {
 public:
  explicit Resource(VirtualClock* clock) : clock_(clock) {}

  // Reserves the resource for `service` time and returns the completion
  // time. The caller typically schedules an event at the returned time.
  SimTime Acquire(SimTime service) { return AcquireAfter(clock_->now(), service); }

  // Reserves the resource for `service` time starting no earlier than
  // `earliest` (e.g. after an upstream stage completes).
  SimTime AcquireAfter(SimTime earliest, SimTime service) {
    SimTime now = clock_->now();
    SimTime start = earliest > now ? earliest : now;
    if (available_at_ > start) {
      start = available_at_;
    }
    available_at_ = start + service;
    busy_ += service;
    return available_at_;
  }

  // Time at which the resource next becomes free.
  SimTime available_at() const { return available_at_; }

  // Total busy time accumulated (for utilization reporting).
  SimTime busy_time() const { return busy_; }

  void Reset() {
    available_at_ = 0;
    busy_ = 0;
  }

 private:
  VirtualClock* clock_;
  SimTime available_at_ = 0;
  SimTime busy_ = 0;
};

}  // namespace iolsim

#endif  // SRC_SIMOS_EVENT_QUEUE_H_
