// Discrete-event engine driving the simulated machine.
//
// Benchmarks model a closed-loop client population: each client issues a
// request, the request visits a series of Resources (CPU, disk, network
// link), and completion schedules the client's next request. The EventQueue
// orders those completions in virtual time.
//
// The engine is allocation-free in steady state: continuations are
// InlineCallbacks (fixed inline storage, no heap), the event heap is an
// explicit vector manipulated with push_heap/pop_heap so dispatched events
// are *moved* out rather than copied, and multi-stage continuations ride in
// pooled nodes (ResourceChain, and per-subsystem pools in net/fs/httpd).

#ifndef SRC_SIMOS_EVENT_QUEUE_H_
#define SRC_SIMOS_EVENT_QUEUE_H_

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/simos/clock.h"
#include "src/simos/inline_function.h"

namespace iolsim {

// A time-ordered queue of callbacks. Ties are broken by insertion order so
// simulations are deterministic.
class EventQueue {
 public:
  // `dispatched_counter`, when given, is incremented once per dispatched
  // event (SimContext points it at SimStats::events_dispatched).
  explicit EventQueue(VirtualClock* clock, uint64_t* dispatched_counter = nullptr)
      : clock_(clock),
        dispatched_(dispatched_counter != nullptr ? dispatched_counter : &own_dispatched_) {}

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` to run at absolute time `when` (clamped to now).
  void ScheduleAt(SimTime when, InlineCallback fn) {
    if (when < clock_->now()) {
      when = clock_->now();
    }
    uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = std::move(fn);
    } else {
      slot = static_cast<uint32_t>(slots_.size());
      slots_.push_back(std::move(fn));
    }
    heap_.push_back(Event{when, next_seq_++, slot});
    SiftUp(heap_.size() - 1);
  }

  // Schedules `fn` to run `delay` after the current time.
  void ScheduleAfter(SimTime delay, InlineCallback fn) {
    ScheduleAt(clock_->now() + delay, std::move(fn));
  }

  // True if no events are pending.
  bool empty() const { return heap_.empty(); }

  // Number of pending events.
  size_t size() const { return heap_.size(); }

  // Dispatches the earliest event, advancing the clock to its timestamp.
  // Returns false if the queue was empty.
  bool RunOne() {
    if (heap_.empty()) {
      return false;
    }
    Event ev = heap_[0];
    Event last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      SiftDownFromRoot(last);
    }
    clock_->AdvanceTo(ev.when);
    ++*dispatched_;
    // Move the continuation out and release the slot before invoking: the
    // callback is free to schedule into the slot it just vacated.
    InlineCallback fn = std::move(slots_[ev.slot]);
    free_slots_.push_back(ev.slot);
    fn();
    return true;
  }

  // Runs events until the queue drains or the clock passes `deadline`.
  // Events scheduled exactly at `deadline` still run. Returns the number of
  // events dispatched.
  uint64_t RunUntil(SimTime deadline) {
    uint64_t dispatched = 0;
    while (!heap_.empty() && heap_[0].when <= deadline) {
      RunOne();
      ++dispatched;
    }
    clock_->AdvanceTo(deadline);
    return dispatched;
  }

  // Runs until no events remain.
  uint64_t RunAll() {
    uint64_t dispatched = 0;
    while (RunOne()) {
      ++dispatched;
    }
    return dispatched;
  }

 private:
  // The heap orders lightweight POD keys; the continuations themselves sit
  // in a slot pool and never move while queued. Sifting therefore shuffles
  // 24-byte trivially-copyable entries instead of full events — the single
  // hottest loop in a macro run. The heap is 4-ary: half the depth of a
  // binary heap for typical populations, so a dispatch touches fewer cache
  // lines.
  struct Event {
    SimTime when;
    uint64_t seq;
    uint32_t slot;
  };

  // "a dispatches after b". (when, seq) is a total order — seq is unique —
  // so the dispatch order is exactly the old priority_queue's, independent
  // of heap shape or arity.
  static bool After(const Event& a, const Event& b) {
    if (a.when != b.when) {
      return a.when > b.when;
    }
    return a.seq > b.seq;
  }

  static constexpr size_t kArity = 4;

  void SiftUp(size_t i) {
    Event e = heap_[i];
    while (i > 0) {
      size_t parent = (i - 1) / kArity;
      if (!After(heap_[parent], e)) {
        break;
      }
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  // Places `e` starting at the (just-vacated) root.
  void SiftDownFromRoot(Event e) {
    size_t n = heap_.size();
    size_t i = 0;
    while (true) {
      size_t first_kid = i * kArity + 1;
      if (first_kid >= n) {
        break;
      }
      size_t best = first_kid;
      size_t end = first_kid + kArity < n ? first_kid + kArity : n;
      for (size_t kid = first_kid + 1; kid < end; ++kid) {
        if (After(heap_[best], heap_[kid])) {
          best = kid;
        }
      }
      if (!After(e, heap_[best])) {
        break;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  VirtualClock* clock_;
  uint64_t* dispatched_;
  uint64_t own_dispatched_ = 0;
  uint64_t next_seq_ = 0;
  std::vector<Event> heap_;
  std::vector<InlineCallback> slots_;
  std::vector<uint32_t> free_slots_;
};

// A FIFO service resource (CPU, disk arm, network link) with one or more
// identical service units (an N-way CPU is Resource(clock, N)).
//
// A job arriving at time `now` with service demand `d` begins service on
// the earliest-available unit at max(now, unit free time) and completes at
// begin + d. Reservations are made in call order, so service is FIFO by
// arrival; callers that arrive via the event queue inherit its deterministic
// insertion-order tie-breaking. The queue itself is never materialized,
// which keeps the simulation allocation-free on the sync path.
//
// Unit selection is O(1): a single unit is tracked directly, and multi-unit
// resources keep an index heap ordered by (free time, index) — the same
// earliest-free, lowest-index-on-ties rule the old linear scan implemented,
// now at O(log units) per acquire and O(1) for available_at.
class Resource {
 public:
  explicit Resource(VirtualClock* clock, int units = 1)
      : clock_(clock), unit_free_at_(units > 0 ? units : 1, 0) {
    heap_.resize(unit_free_at_.size());
    ResetHeap();
  }

  // Reserves a unit for `service` time and returns the completion time.
  // The caller typically schedules an event at the returned time.
  SimTime Acquire(SimTime service) { return AcquireAfter(clock_->now(), service); }

  // Reserves a unit for `service` time starting no earlier than `earliest`
  // (e.g. after an upstream stage completes).
  SimTime AcquireAfter(SimTime earliest, SimTime service) {
    SimTime now = clock_->now();
    SimTime start = earliest > now ? earliest : now;
    SimTime& unit = unit_free_at_[BestUnit()];
    if (unit > start) {
      start = unit;
    }
    unit = start + service;
    busy_ += service;
    if (unit_free_at_.size() > 1) {
      SiftRootDown();  // The root's key just grew; restore heap order.
    }
    return unit;
  }

  // Asynchronous acquisition: reserves the earliest-available unit starting
  // now and schedules `done` on `events` at the completion time. FIFO
  // fairness follows from reservation-at-call order; simultaneous
  // completions dispatch in schedule order (EventQueue seq numbers).
  SimTime AcquireAsync(EventQueue* events, SimTime service, InlineCallback done) {
    SimTime finish = Acquire(service);
    events->ScheduleAt(finish, std::move(done));
    return finish;
  }

  // Time at which some unit next becomes free.
  SimTime available_at() const { return unit_free_at_[BestUnit()]; }

  int units() const { return static_cast<int>(unit_free_at_.size()); }

  // Total busy time accumulated across all units (for utilization
  // reporting; divide by units() for per-unit utilization).
  SimTime busy_time() const { return busy_; }

  void Reset() {
    for (SimTime& t : unit_free_at_) {
      t = 0;
    }
    busy_ = 0;
    ResetHeap();
  }

 private:
  // Earliest-free unit; ties resolve to the lowest index so unit selection
  // is deterministic. O(1): the single-unit case has no choice to make and
  // the multi-unit case reads the heap root.
  size_t BestUnit() const { return unit_free_at_.size() == 1 ? 0 : heap_[0]; }

  // "unit a is a worse pick than unit b" under (free time, index).
  bool Worse(uint32_t a, uint32_t b) const {
    if (unit_free_at_[a] != unit_free_at_[b]) {
      return unit_free_at_[a] > unit_free_at_[b];
    }
    return a > b;
  }

  void SiftRootDown() {
    size_t n = heap_.size();
    size_t i = 0;
    uint32_t moving = heap_[0];
    while (true) {
      size_t kid = 2 * i + 1;
      if (kid >= n) {
        break;
      }
      if (kid + 1 < n && Worse(heap_[kid], heap_[kid + 1])) {
        ++kid;
      }
      if (!Worse(moving, heap_[kid])) {
        break;
      }
      heap_[i] = heap_[kid];
      i = kid;
    }
    heap_[i] = moving;
  }

  void ResetHeap() {
    // All-equal keys: ascending indices already satisfy the heap property
    // and encode the lowest-index tie-break.
    for (size_t i = 0; i < heap_.size(); ++i) {
      heap_[i] = static_cast<uint32_t>(i);
    }
  }

  VirtualClock* clock_;
  std::vector<SimTime> unit_free_at_;
  std::vector<uint32_t> heap_;  // Unit indices, min-heap by (free time, index).
  SimTime busy_ = 0;
};

// Pooled two-hop acquisition: reserve `first` for `s1`, and at its
// completion event reserve `second` for `s2` with `done` running at that
// completion. The continuation between the hops rides in a free-listed node
// — the staged pipeline's disk-then-CPU stages schedule millions of these —
// so steady-state chains never allocate.
class ResourceChain {
 public:
  explicit ResourceChain(EventQueue* events) : events_(events) {}

  ResourceChain(const ResourceChain&) = delete;
  ResourceChain& operator=(const ResourceChain&) = delete;

  void AcquireThenAsync(Resource* first, SimTime s1, Resource* second, SimTime s2,
                        InlineCallback done) {
    uint32_t idx;
    if (free_head_ != kNone) {
      idx = free_head_;
      free_head_ = nodes_[idx].next_free;
    } else {
      idx = static_cast<uint32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    Node& n = nodes_[idx];
    n.second = second;
    n.s2 = s2;
    n.done = std::move(done);
    first->AcquireAsync(events_, s1, [this, idx] { Resume(idx); });
  }

  size_t pool_size() const { return nodes_.size(); }

 private:
  static constexpr uint32_t kNone = UINT32_MAX;

  struct Node {
    Resource* second = nullptr;
    SimTime s2 = 0;
    InlineCallback done;
    uint32_t next_free = kNone;
  };

  void Resume(uint32_t idx) {
    Node& n = nodes_[idx];
    Resource* second = n.second;
    SimTime s2 = n.s2;
    InlineCallback done = std::move(n.done);
    n.next_free = free_head_;
    free_head_ = idx;
    second->AcquireAsync(events_, s2, std::move(done));
  }

  EventQueue* events_;
  std::vector<Node> nodes_;
  uint32_t free_head_ = kNone;
};

}  // namespace iolsim

#endif  // SRC_SIMOS_EVENT_QUEUE_H_
