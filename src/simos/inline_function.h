// InlineFunction: a move-only callable with fixed inline storage.
//
// The discrete-event engine dispatches tens of millions of continuations per
// experiment; storing them as std::function costs one heap allocation per
// event once captures exceed the library's tiny SSO buffer. InlineFunction
// stores the callable in-place — a capture that does not fit is a
// compile-time error, not a silent allocation — so scheduling an event never
// touches the allocator.
//
// The capture-size contract: callbacks flowing through EventQueue/Resource
// capture at most kInlineCallbackBytes (48) bytes — a handful of pointers
// and integers. Larger per-request state (a pending read's aggregate, a
// transmission's remaining byte count) lives in pooled nodes owned by the
// subsystem that schedules the callback, and the callback captures the node
// pointer. See README "The event engine" for the pooling strategy.

#ifndef SRC_SIMOS_INLINE_FUNCTION_H_
#define SRC_SIMOS_INLINE_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace iolsim {

inline constexpr size_t kInlineCallbackBytes = 48;

template <typename Signature, size_t kBytes = kInlineCallbackBytes>
class InlineFunction;

template <typename R, typename... Args, size_t kBytes>
class InlineFunction<R(Args...), kBytes> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kBytes,
                  "capture too large for InlineFunction: shrink the capture or move the "
                  "state into a pooled node and capture its pointer");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned captures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "captures must be nothrow-movable (events are moved out of the heap)");
    if constexpr (sizeof(Fn) < kBytes) {
      // Defined tail: moves blanket-memcpy the storage, which must never
      // read indeterminate bytes (MemorySanitizer/valgrind cleanliness).
      __builtin_memset(storage_ + sizeof(Fn), 0, kBytes - sizeof(Fn));
    }
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    invoke_ = [](void* p, Args... args) -> R {
      return (*static_cast<Fn*>(p))(std::forward<Args>(args)...);
    };
    if constexpr (std::is_trivially_copyable_v<Fn>) {
      relocate_ = nullptr;  // memcpy-movable, destructor-free: the fast path.
    } else {
      relocate_ = [](void* dst, void* src) {
        if (dst != nullptr) {
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        }
        static_cast<Fn*>(src)->~Fn();
      };
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Destroy(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(static_cast<void*>(storage_), std::forward<Args>(args)...);
  }

 private:
  void MoveFrom(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    if (invoke_ != nullptr) {
      if (relocate_ != nullptr) {
        relocate_(storage_, other.storage_);
      } else {
        __builtin_memcpy(storage_, other.storage_, kBytes);
      }
    }
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
  }

  void Destroy() {
    if (relocate_ != nullptr) {
      relocate_(nullptr, storage_);
    }
    invoke_ = nullptr;
    relocate_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kBytes];
  R (*invoke_)(void*, Args...) = nullptr;
  // Move-construct dst from src and destroy src; with dst == nullptr, just
  // destroy src. Null for trivially-copyable captures.
  void (*relocate_)(void* dst, void* src) = nullptr;
};

// The engine's continuation type.
using InlineCallback = InlineFunction<void()>;

}  // namespace iolsim

#endif  // SRC_SIMOS_INLINE_FUNCTION_H_
