// Simulated virtual memory system: protection domains and the IO-Lite window.
//
// IO-Lite buffers live in a region (the "IO-Lite window") that appears at the
// same virtual address in every protection domain, including the kernel
// (Section 3.3). Access control is performed at chunk granularity (64 KB,
// Section 4.5): in a given domain, either all pages of a chunk are accessible
// or none are. Read mappings are established lazily when an aggregate first
// crosses into a domain and persist afterwards, which is what makes warm
// cross-domain transfers approach shared-memory speed (Section 3.2).

#ifndef SRC_SIMOS_VM_H_
#define SRC_SIMOS_VM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace iolsim {

class SimContext;

using DomainId = int32_t;
using ChunkId = int64_t;

constexpr DomainId kKernelDomain = 0;
constexpr ChunkId kInvalidChunk = -1;

// Per-domain mapping state of one chunk.
enum class MapState : uint8_t {
  kUnmapped = 0,
  kReadOnly = 1,
  kReadWrite = 2,
};

class VmSystem {
 public:
  explicit VmSystem(SimContext* ctx) : ctx_(ctx) {}

  VmSystem(const VmSystem&) = delete;
  VmSystem& operator=(const VmSystem&) = delete;

  // Creates a new protection domain (process address space).
  DomainId CreateDomain(const std::string& name);

  // Destroys a domain; its mappings disappear.
  void DestroyDomain(DomainId domain);

  const std::string& DomainName(DomainId domain) const;
  size_t domain_count() const { return domains_.size(); }

  // Allocates a fresh chunk in the IO-Lite window, writable in `producer`
  // (and implicitly accessible to the kernel, which is trusted). Charges the
  // page-mapping cost of the chunk's pages in the producer domain.
  ChunkId AllocateChunk(DomainId producer);

  // Frees a chunk entirely (its memory returns to the VM system).
  void FreeChunk(ChunkId chunk);

  // Grants `domain` read access to `chunk`. The first grant charges page
  // mapping costs; thereafter the mapping persists and the call is free.
  // Returns true if mapping work happened (cold transfer).
  bool EnsureReadable(ChunkId chunk, DomainId domain);

  // Toggles write permission for the producer when a buffer is being filled
  // or sealed. Trusted domains (the kernel) hold permanent write permission
  // and toggling is free (Section 3.2).
  void SetWritable(ChunkId chunk, DomainId domain, bool writable);

  // Access checks used by the IO-Lite runtime to enforce protection.
  bool CanRead(ChunkId chunk, DomainId domain) const;
  bool CanWrite(ChunkId chunk, DomainId domain) const;

  MapState StateOf(ChunkId chunk, DomainId domain) const;

  bool ChunkExists(ChunkId chunk) const { return chunks_.count(chunk) > 0; }
  size_t live_chunks() const { return chunks_.size(); }

 private:
  struct Chunk {
    DomainId producer = kKernelDomain;
    // Mapping state per domain. Small maps: few domains per chunk.
    std::unordered_map<DomainId, MapState> mappings;
  };

  int PagesPerChunk() const;

  SimContext* ctx_;
  ChunkId next_chunk_ = 1;
  std::unordered_map<ChunkId, Chunk> chunks_;
  std::unordered_map<DomainId, std::string> domains_;
  DomainId next_domain_ = 1;
};

}  // namespace iolsim

#endif  // SRC_SIMOS_VM_H_
