// Deterministic pseudo-random number generation for workload synthesis.
//
// SplitMix64 core with convenience samplers. Every benchmark seeds its own
// generator so runs are exactly reproducible.

#ifndef SRC_SIMOS_RNG_H_
#define SRC_SIMOS_RNG_H_

#include <cmath>
#include <cstdint>

#include "src/simos/clock.h"

namespace iolsim {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  // Next raw 64-bit value (SplitMix64).
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform integer in [0, n).
  uint64_t NextBelow(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  // Uniform integer in [lo, hi].
  int64_t NextInRange(int64_t lo, int64_t hi) {
    if (hi <= lo) {
      return lo;
    }
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  // Lognormal with the given parameters of the underlying normal.
  double NextLognormal(double mu, double sigma) {
    return std::exp(mu + sigma * NextGaussian());
  }

 private:
  uint64_t state_;
};

// One draw of a Poisson process's exponential interarrival time at `rate`
// arrivals per second, floored at one tick so time strictly advances. The
// single definition keeps every arrival sampler (open-loop workloads,
// synthesized trace logs) on identical math.
inline SimTime ExponentialInterarrival(Rng* rng, double rate_per_sec) {
  // -ln(1-U)/lambda.
  double dt_sec = -std::log(1.0 - rng->NextDouble()) / rate_per_sec;
  auto dt = static_cast<SimTime>(dt_sec * kSecond);
  return dt < 1 ? 1 : dt;
}

}  // namespace iolsim

#endif  // SRC_SIMOS_RNG_H_
