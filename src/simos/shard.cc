#include "src/simos/shard.h"

#include <barrier>
#include <thread>

namespace iolsim {

// A directed (sender → receiver) channel: the lock-free ring plus a
// sender-owned spill for overflow. The spill is only ever touched by the
// sender (during its window) and the receiver (during its drain), and the
// two phases are barrier-separated, so plain vectors are race-free.
struct ShardRunner::Pair {
  explicit Pair(size_t capacity) : ring(capacity) {}
  ShardMailbox ring;
  std::vector<ShardMsg> spill;
  bool spilling = false;   // Sender-side: once a window spills, keep spilling
                           // so the drain replays exact send order.
  uint64_t sent = 0;       // Sender-side counters, aggregated after Run().
  uint64_t spilled = 0;
};

struct ShardRunner::Barriers {
  struct Completion {
    ShardRunner* runner;
    void operator()() noexcept { runner->Reduce(); }
  };
  Barriers(ptrdiff_t n, ShardRunner* runner)
      : reduce(n, Completion{runner}), resume(n) {}
  // Round shape: drain + record → [reduce] → run window → [resume] → …
  std::barrier<Completion> reduce;
  std::barrier<> resume;
};

ShardRunner::ShardRunner(std::vector<ShardLane*> lanes, const Options& options)
    : lanes_(std::move(lanes)),
      lookahead_(options.lookahead),
      threads_(options.threads),
      next_at_(lanes_.size(), kShardIdle) {
  assert(!lanes_.empty());
  assert(lookahead_ > 0);
  if (threads_ < 1) {
    threads_ = 1;
  }
  if (threads_ > static_cast<int>(lanes_.size())) {
    threads_ = static_cast<int>(lanes_.size());
  }
  size_t cap = options.mailbox_capacity;
  assert(cap >= 2 && (cap & (cap - 1)) == 0);
  size_t n = lanes_.size();
  pairs_.reserve(n * n);
  for (size_t i = 0; i < n * n; ++i) {
    pairs_.push_back(std::make_unique<Pair>(cap));
  }
  barriers_ = std::make_unique<Barriers>(threads_, this);
}

ShardRunner::~ShardRunner() = default;

void ShardRunner::Send(uint32_t from, uint32_t to, ShardMsg msg) {
  assert(from < lanes_.size() && to < lanes_.size() && from != to);
  // The lookahead guarantee: inside window [start, end) every event time is
  // ≥ start, so an arrival at send time + (latency ≥ lookahead) is ≥
  // start + lookahead = end. A message before the window end would need to
  // be delivered into a window already running — undetectably wrong later,
  // so fail loudly here.
  assert(msg.when >= window_end_ && "cross-shard message violates lookahead");
  msg.from = from;
  Pair& p = PairAt(from, to);
  ++p.sent;
  if (!p.spilling && p.ring.TryPush(msg)) {
    return;
  }
  p.spilling = true;
  ++p.spilled;
  p.spill.push_back(msg);
}

void ShardRunner::DrainInboxes(size_t lane) {
  // Fixed sender order + FIFO within a sender ⇒ the receiver observes one
  // canonical arrival order, so locally assigned event sequence numbers
  // (the (when, seq) tie-break) are identical run to run and for any
  // thread count.
  for (size_t from = 0; from < lanes_.size(); ++from) {
    if (from == lane) {
      continue;
    }
    Pair& p = PairAt(from, lane);
    ShardMsg m;
    while (p.ring.TryPop(&m)) {
      lanes_[lane]->OnMessage(m);
    }
    if (!p.spill.empty()) {
      for (const ShardMsg& s : p.spill) {
        lanes_[lane]->OnMessage(s);
      }
      p.spill.clear();
      p.spilling = false;
    }
  }
}

void ShardRunner::Reduce() noexcept {
  SimTime min = kShardIdle;
  for (SimTime t : next_at_) {
    if (t < min) {
      min = t;
    }
  }
  if (min == kShardIdle) {
    stop_ = true;
    return;
  }
  window_end_ = min + lookahead_;
  ++rounds_;
}

void ShardRunner::ThreadMain(int tid) {
  size_t n = lanes_.size();
  while (true) {
    for (size_t i = tid; i < n; i += threads_) {
      DrainInboxes(i);
      next_at_[i] = lanes_[i]->NextEventAt();
    }
    barriers_->reduce.arrive_and_wait();
    if (stop_) {
      return;
    }
    SimTime end = window_end_;
    for (size_t i = tid; i < n; i += threads_) {
      lanes_[i]->RunWindow(end);
    }
    barriers_->resume.arrive_and_wait();
  }
}

ShardRunner::Stats ShardRunner::Run() {
  stop_ = false;
  rounds_ = 0;
  std::vector<std::thread> workers;
  workers.reserve(threads_ - 1);
  for (int t = 1; t < threads_; ++t) {
    workers.emplace_back([this, t] { ThreadMain(t); });
  }
  ThreadMain(0);
  for (std::thread& w : workers) {
    w.join();
  }
  Stats stats;
  stats.rounds = rounds_;
  stats.threads = threads_;
  for (const auto& p : pairs_) {
    stats.messages += p->sent;
    stats.spilled += p->spilled;
  }
  return stats;
}

}  // namespace iolsim
