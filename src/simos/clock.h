// Virtual time base for the simulated operating system.
//
// All IO-Lite subsystems charge their costs against a VirtualClock instead of
// wall time. Time is kept in integer nanoseconds so that simulations are
// exactly reproducible across runs and platforms.

#ifndef SRC_SIMOS_CLOCK_H_
#define SRC_SIMOS_CLOCK_H_

#include <cstdint>

namespace iolsim {

// Duration and time-point type, in nanoseconds of simulated time.
using SimTime = int64_t;

// Tenant identity for the multi-tenant QoS plane (src/qos). Tenant 0 is the
// implicit default tenant; single-tenant workloads never see another value.
using TenantId = uint32_t;
constexpr TenantId kDefaultTenant = 0;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

// Converts a simulated duration to floating-point seconds (for reporting).
constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / kSecond; }

// Converts floating-point seconds to a simulated duration.
constexpr SimTime FromSeconds(double s) { return static_cast<SimTime>(s * kSecond); }

// A monotonically advancing virtual clock.
//
// The clock is advanced either directly (Advance) by code that executes
// sequentially on the simulated CPU, or by the discrete-event engine
// (EventQueue) when it dispatches the next pending event.
class VirtualClock {
 public:
  VirtualClock() = default;

  // Current simulated time.
  SimTime now() const { return now_; }

  // Moves time forward by `delta` (must be non-negative).
  void Advance(SimTime delta) {
    if (delta > 0) {
      now_ += delta;
    }
  }

  // Jumps directly to `t`; no-op if `t` is in the past (events may be
  // dispatched at the current time).
  void AdvanceTo(SimTime t) {
    if (t > now_) {
      now_ = t;
    }
  }

  // Resets the clock to zero (used between benchmark runs).
  void Reset() { now_ = 0; }

 private:
  SimTime now_ = 0;
};

}  // namespace iolsim

#endif  // SRC_SIMOS_CLOCK_H_
