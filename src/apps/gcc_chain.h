// The compiler-chain experiment of Section 5.8 (the "gcc" bar of Figure 13).
//
// The paper relinks the gcc tool chain (driver, cpp, cc1, as) against a
// stdio library that uses IO-Lite for pipe communication. Compilation is
// compute-bound, and only the *interprocess* copying is eliminated — the
// application<->stdio copies remain — so the measured benefit is ~zero.
//
// We model the chain as a per-file pipeline of compute stages with realistic
// expansion factors, connected by stdio-buffered pipes:
//   cpp (x3.0 output) -> cc1 (slow, x2.0) -> as (x0.3)
// The gcc sources themselves are proprietary-irrelevant; the stage structure
// and byte flows are what the experiment exercises.

#ifndef SRC_APPS_GCC_CHAIN_H_
#define SRC_APPS_GCC_CHAIN_H_

#include <cstdint>

#include "src/system/system.h"

namespace iolapp {

struct GccChainConfig {
  int num_files = 27;                       // The paper's 27-file set.
  uint64_t total_source_bytes = 167 * 1024; // 167 KB total.
  double cpp_expand = 3.0;
  double cc1_expand = 2.0;
  double as_expand = 0.3;
  double cpp_bytes_per_sec = 8.0e6;
  double cc1_bytes_per_sec = 1.2e6;  // Compilation dominates.
  double as_bytes_per_sec = 5.0e6;
};

// Returns total bytes that crossed the two pipes (for sanity checks);
// simulated time is read off the System's clock by the caller.
uint64_t GccChainPosix(iolsys::System* sys, const GccChainConfig& config);
uint64_t GccChainIolite(iolsys::System* sys, const GccChainConfig& config);

}  // namespace iolapp

#endif  // SRC_APPS_GCC_CHAIN_H_
