// The converted UNIX applications of Section 5.8: wc, cat|grep, and
// permute|wc, each in an unmodified (POSIX copy-semantics) variant and an
// IO-Lite variant. The programs do real work over real bytes — wc counts
// the simulated file's actual words; grep finds actual pattern matches —
// while charging the cost model, so functional equality between the two
// variants is a test invariant and the runtime ratio is the benchmark.

#ifndef SRC_APPS_FILTERS_H_
#define SRC_APPS_FILTERS_H_

#include <cstdint>
#include <string>

#include "src/system/system.h"

namespace iolapp {

struct WcCounts {
  uint64_t lines = 0;
  uint64_t words = 0;
  uint64_t bytes = 0;
  bool operator==(const WcCounts&) const = default;
};

// wc reading a (cached) file with read(2): syscalls + copies + scan.
WcCounts WcPosix(iolsys::System* sys, iolfs::FileId file);

// wc converted to IOL_read: iterates the aggregate's slices in place. The
// remaining overhead is mapping the cached file's chunks into the
// application's address space (first run only).
WcCounts WcIolite(iolsys::System* sys, iolfs::FileId file);

// cat file | grep pattern: returns the number of pattern occurrences.
// POSIX: three copies (cat read, cat->pipe, pipe->grep).
uint64_t GrepCatPosix(iolsys::System* sys, iolfs::FileId file, const std::string& pattern);

// IO-Lite variant: all three copies eliminated; lines (here: matches)
// spanning buffer boundaries are copied into contiguous memory, as the
// converted grep does.
uint64_t GrepCatIolite(iolsys::System* sys, iolfs::FileId file, const std::string& pattern);

// permute | wc: generates the k-word permutations of `sentence` (split into
// words of `word_len` chars) into a pipe consumed by wc. The paper's
// configuration is a 40-character string of ten 4-character words:
// 10! * 40 = 145,152,000 bytes through the pipe.
WcCounts PermuteWcPosix(iolsys::System* sys, const std::string& sentence, size_t word_len);
WcCounts PermuteWcIolite(iolsys::System* sys, const std::string& sentence, size_t word_len);

// Shared scanning helpers (exposed for unit tests).
void WcScan(const char* data, size_t n, bool* in_word, WcCounts* counts);
uint64_t CountMatches(const char* data, size_t n, const std::string& pattern);

}  // namespace iolapp

#endif  // SRC_APPS_FILTERS_H_
