#include "src/apps/gcc_chain.h"

#include <cstring>
#include <vector>

#include "src/iolite/stdio_lite.h"
#include "src/posix/posix_io.h"

namespace iolapp {

namespace {

constexpr size_t kStdioBuf = 8192;

// One compute stage: consumes `in_bytes` at `rate`, produces
// `in_bytes * expand` bytes of output content into `out`.
uint64_t StageOutputBytes(uint64_t in_bytes, double expand) {
  auto out = static_cast<uint64_t>(static_cast<double>(in_bytes) * expand);
  return out == 0 ? 1 : out;
}

}  // namespace

uint64_t GccChainPosix(iolsys::System* sys, const GccChainConfig& config) {
  iolsim::SimContext& ctx = sys->ctx();
  uint64_t piped = 0;
  uint64_t per_file = config.total_source_bytes / config.num_files;
  std::vector<char> stdio_buf(kStdioBuf);

  for (int f = 0; f < config.num_files; ++f) {
    // Conventional chain: each hop pays the app->stdio copy, the stdio->
    // kernel pipe copy, the kernel->stdio copy, and the stdio->app copy.
    struct Hop {
      double rate;
      double expand;
    };
    const Hop hops[] = {{config.cpp_bytes_per_sec, config.cpp_expand},
                        {config.cc1_bytes_per_sec, config.cc1_expand},
                        {config.as_bytes_per_sec, config.as_expand}};
    uint64_t bytes = per_file;
    for (const Hop& hop : hops) {
      ctx.ChargeCpu(ctx.cost().ComputeCost(bytes, hop.rate));  // The stage's work.
      uint64_t out = StageOutputBytes(bytes, hop.expand);
      // Producer side: app -> stdio buffer copies, then pipe writes.
      iolposix::PosixPipe pipe(&ctx);
      uint64_t remaining = out;
      while (remaining > 0) {
        size_t n = remaining < kStdioBuf ? remaining : kStdioBuf;
        // App composes into the stdio buffer (copy), stdio flushes into the
        // kernel pipe (copy), consumer stdio reads out (copy), consumer app
        // takes delivery from stdio (copy).
        ctx.ChargeCpu(ctx.cost().CopyCost(n));  // app -> stdio.
        ctx.stats().bytes_copied += n;
        ctx.stats().copy_ops++;
        pipe.Write(stdio_buf.data(), n);        // stdio -> kernel (charged inside).
        pipe.Read(stdio_buf.data(), n);         // kernel -> stdio (charged inside).
        ctx.ChargeCpu(ctx.cost().CopyCost(n));  // stdio -> app.
        ctx.stats().bytes_copied += n;
        ctx.stats().copy_ops++;
        piped += n;
        remaining -= n;
      }
      bytes = out;
    }
  }
  return piped;
}

uint64_t GccChainIolite(iolsys::System* sys, const GccChainConfig& config) {
  iolsim::SimContext& ctx = sys->ctx();
  uint64_t piped = 0;
  uint64_t per_file = config.total_source_bytes / config.num_files;
  std::vector<char> app_buf(kStdioBuf);

  iolsim::DomainId chain_domain = ctx.vm().CreateDomain("gcc-chain");
  iolite::BufferPool* pool = sys->runtime().CreatePool("gcc-stdio", chain_domain);

  for (int f = 0; f < config.num_files; ++f) {
    struct Hop {
      double rate;
      double expand;
    };
    const Hop hops[] = {{config.cpp_bytes_per_sec, config.cpp_expand},
                        {config.cc1_bytes_per_sec, config.cc1_expand},
                        {config.as_bytes_per_sec, config.as_expand}};
    uint64_t bytes = per_file;
    for (const Hop& hop : hops) {
      ctx.ChargeCpu(ctx.cost().ComputeCost(bytes, hop.rate));
      uint64_t out = StageOutputBytes(bytes, hop.expand);
      // IO-Lite stdio: the app->stdio and stdio->app copies remain, but the
      // pipe transfer itself moves references.
      iolite::PipeChannel channel(&ctx);
      iolite::StdioLiteWriter writer(&ctx, pool, &channel, kStdioBuf);
      iolite::StdioLiteReader reader(&ctx, &channel);
      uint64_t remaining = out;
      while (remaining > 0) {
        size_t n = remaining < kStdioBuf ? remaining : kStdioBuf;
        writer.Write(app_buf.data(), n);  // app -> stdio (copy charged inside).
        writer.Flush();                   // stdio -> pipe, by reference.
        reader.Read(app_buf.data(), n);   // stdio -> app (copy charged inside).
        piped += n;
        remaining -= n;
      }
      bytes = out;
    }
  }
  ctx.vm().DestroyDomain(chain_domain);
  return piped;
}

}  // namespace iolapp
