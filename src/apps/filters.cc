#include "src/apps/filters.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/iolite/pipe.h"

namespace iolapp {

namespace {
constexpr size_t kChunk = 64 * 1024;
}  // namespace

void WcScan(const char* data, size_t n, bool* in_word, WcCounts* counts) {
  for (size_t i = 0; i < n; ++i) {
    char c = data[i];
    counts->bytes++;
    if (c == '\n') {
      counts->lines++;
    }
    bool space = c == ' ' || c == '\t' || c == '\n' || c == '\r';
    if (space) {
      *in_word = false;
    } else if (!*in_word) {
      *in_word = true;
      counts->words++;
    }
  }
}

uint64_t CountMatches(const char* data, size_t n, const std::string& pattern) {
  if (pattern.empty() || n < pattern.size()) {
    return 0;
  }
  uint64_t count = 0;
  const char* p = data;
  const char* end = data + n - pattern.size() + 1;
  while (p < end) {
    const char* hit = static_cast<const char*>(
        memchr(p, pattern[0], static_cast<size_t>(end - p)));
    if (hit == nullptr) {
      break;
    }
    if (std::memcmp(hit, pattern.data(), pattern.size()) == 0) {
      ++count;
    }
    p = hit + 1;
  }
  return count;
}

WcCounts WcPosix(iolsys::System* sys, iolfs::FileId file) {
  iolsim::SimContext& ctx = sys->ctx();
  uint64_t size = sys->fs().SizeOf(file);
  std::vector<char> buf(kChunk);
  WcCounts counts;
  bool in_word = false;
  for (uint64_t off = 0; off < size; off += kChunk) {
    size_t got = sys->posix().Read(file, off, buf.data(), kChunk);
    WcScan(buf.data(), got, &in_word, &counts);
    ctx.ChargeCpu(ctx.cost().ComputeCost(got, ctx.cost().params().wc_scan_bytes_per_sec));
  }
  return counts;
}

WcCounts WcIolite(iolsys::System* sys, iolfs::FileId file) {
  iolsim::SimContext& ctx = sys->ctx();
  // A fresh process: its address space has no IO-Lite mappings yet, so the
  // cached file's chunks are mapped in as the aggregate arrives — the
  // remaining overhead the paper observes for wc.
  iolsim::DomainId domain = ctx.vm().CreateDomain("wc");
  uint64_t size = sys->fs().SizeOf(file);
  WcCounts counts;
  bool in_word = false;
  for (uint64_t off = 0; off < size; off += kChunk) {
    size_t len = std::min<uint64_t>(kChunk, size - off);
    ctx.ChargeCpu(ctx.cost().SyscallCost());  // IOL_read.
    ctx.stats().syscalls++;
    iolite::Aggregate agg = sys->io().ReadExtent(file, off, len);
    sys->runtime().MapAggregate(agg, domain);
    // Iterate the slices in place: no copy.
    for (iolite::Aggregate::Reader r = agg.NewReader(); !r.AtEnd();) {
      WcScan(r.data(), r.run_length(), &in_word, &counts);
      r.Skip(r.run_length());
    }
    ctx.ChargeCpu(ctx.cost().ComputeCost(len, ctx.cost().params().wc_scan_bytes_per_sec));
  }
  ctx.vm().DestroyDomain(domain);
  return counts;
}

uint64_t GrepCatPosix(iolsys::System* sys, iolfs::FileId file, const std::string& pattern) {
  iolsim::SimContext& ctx = sys->ctx();
  uint64_t size = sys->fs().SizeOf(file);
  iolposix::PosixPipe pipe(&ctx);
  std::vector<char> cat_buf(kChunk);
  std::vector<char> grep_buf(kChunk);
  uint64_t matches = 0;
  // Both grep variants scan chunk-wise (matches are counted within each
  // 64 KB file chunk; the IO-Lite variant additionally stitches matches
  // across its intra-chunk slice boundaries so the two agree exactly).
  for (uint64_t off = 0; off < size; off += kChunk) {
    // cat: read(2) copies out of the cache, write(2) copies into the pipe.
    size_t got = sys->posix().Read(file, off, cat_buf.data(), kChunk);
    pipe.Write(cat_buf.data(), got);
    // grep: read(2) copies out of the pipe, then scans.
    size_t read = pipe.Read(grep_buf.data(), got);
    matches += CountMatches(grep_buf.data(), read, pattern);
    ctx.ChargeCpu(ctx.cost().ComputeCost(read, ctx.cost().params().grep_scan_bytes_per_sec));
  }
  return matches;
}

uint64_t GrepCatIolite(iolsys::System* sys, iolfs::FileId file, const std::string& pattern) {
  iolsim::SimContext& ctx = sys->ctx();
  uint64_t size = sys->fs().SizeOf(file);
  iolite::PipeChannel channel(&ctx);
  iolsim::DomainId cat_domain = ctx.vm().CreateDomain("cat");
  iolsim::DomainId grep_domain = ctx.vm().CreateDomain("grep");
  uint64_t matches = 0;
  std::vector<char> boundary(2 * pattern.size());

  for (uint64_t off = 0; off < size; off += kChunk) {
    size_t len = std::min<uint64_t>(kChunk, size - off);
    // cat: IOL_read from the file, IOL_write to the pipe — by reference.
    ctx.ChargeCpu(ctx.cost().SyscallCost());
    ctx.stats().syscalls++;
    iolite::Aggregate agg = sys->io().ReadExtent(file, off, len);
    sys->runtime().MapAggregate(agg, cat_domain);
    ctx.ChargeCpu(ctx.cost().SyscallCost());
    ctx.stats().syscalls++;
    channel.Push(agg);

    // grep: IOL_read from the pipe, scan slices in place.
    ctx.ChargeCpu(ctx.cost().SyscallCost());
    ctx.stats().syscalls++;
    iolite::Aggregate got = channel.Pop(SIZE_MAX);
    sys->runtime().MapAggregate(got, grep_domain);

    const char* prev_tail = nullptr;
    size_t prev_tail_len = 0;
    for (iolite::Aggregate::Reader r = got.NewReader(); !r.AtEnd();) {
      const char* run = r.data();
      size_t run_len = r.run_length();
      matches += CountMatches(run, run_len, pattern);
      // Data spanning buffer boundaries is copied into contiguous memory,
      // as the converted grep does for split lines (Section 5.8).
      if (prev_tail != nullptr && pattern.size() > 1) {
        size_t a = std::min(prev_tail_len, pattern.size() - 1);
        size_t b = std::min(run_len, pattern.size() - 1);
        std::memcpy(boundary.data(), prev_tail + prev_tail_len - a, a);
        std::memcpy(boundary.data() + a, run, b);
        ctx.ChargeCpu(ctx.cost().CopyCost(a + b));
        ctx.stats().bytes_copied += a + b;
        ctx.stats().copy_ops++;
        matches += CountMatches(boundary.data(), a + b, pattern);
        matches -= CountMatches(boundary.data(), a, pattern);
        matches -= CountMatches(boundary.data() + a, b, pattern);
      }
      prev_tail = run;
      prev_tail_len = run_len;
      r.Skip(run_len);
    }
    ctx.ChargeCpu(ctx.cost().ComputeCost(len, ctx.cost().params().grep_scan_bytes_per_sec));
  }
  ctx.vm().DestroyDomain(cat_domain);
  ctx.vm().DestroyDomain(grep_domain);
  return matches;
}

namespace {

// Shared permutation generator: calls `emit(line, 40)` for each of the
// word-order permutations of `sentence`.
template <typename Emit>
void GeneratePermutations(const std::string& sentence, size_t word_len, Emit&& emit) {
  size_t words = sentence.size() / word_len;
  std::vector<int> order(words);
  for (size_t i = 0; i < words; ++i) {
    order[i] = static_cast<int>(i);
  }
  std::string line(sentence.size(), '\0');
  do {
    for (size_t w = 0; w < words; ++w) {
      std::memcpy(line.data() + w * word_len, sentence.data() + order[w] * word_len, word_len);
    }
    emit(line.data(), line.size());
  } while (std::next_permutation(order.begin(), order.end()));
}

}  // namespace

WcCounts PermuteWcPosix(iolsys::System* sys, const std::string& sentence, size_t word_len) {
  iolsim::SimContext& ctx = sys->ctx();
  iolposix::PosixPipe pipe(&ctx);
  std::vector<char> stage(kChunk);
  std::vector<char> consumer(kChunk);
  size_t filled = 0;
  WcCounts counts;
  bool in_word = false;

  auto drain = [&]() {
    if (filled == 0) {
      return;
    }
    pipe.Write(stage.data(), filled);  // Producer copy into the kernel.
    size_t got = pipe.Read(consumer.data(), filled);  // Consumer copy out.
    WcScan(consumer.data(), got, &in_word, &counts);
    ctx.ChargeCpu(ctx.cost().ComputeCost(got, ctx.cost().params().wc_scan_bytes_per_sec));
    filled = 0;
  };

  GeneratePermutations(sentence, word_len, [&](const char* line, size_t n) {
    if (filled + n > stage.size()) {
      drain();
    }
    std::memcpy(stage.data() + filled, line, n);
    filled += n;
    ctx.ChargeCpu(ctx.cost().ComputeCost(n, ctx.cost().params().permute_bytes_per_sec));
  });
  drain();
  return counts;
}

WcCounts PermuteWcIolite(iolsys::System* sys, const std::string& sentence, size_t word_len) {
  iolsim::SimContext& ctx = sys->ctx();
  iolite::PipeChannel channel(&ctx);
  iolsim::DomainId produce_domain = ctx.vm().CreateDomain("permute");
  iolsim::DomainId consume_domain = ctx.vm().CreateDomain("wc");
  iolite::BufferPool* pool = sys->runtime().CreatePool("permute", produce_domain);
  WcCounts counts;
  bool in_word = false;

  iolite::BufferRef current;
  size_t filled = 0;

  auto drain = [&]() {
    if (!current || filled == 0) {
      return;
    }
    current->Seal(filled);
    ctx.ChargeCpu(ctx.cost().SyscallCost());  // IOL_write.
    ctx.stats().syscalls++;
    channel.Push(iolite::Aggregate::FromBuffer(std::move(current)));
    current = iolite::BufferRef();
    filled = 0;

    // Consumer turn: IOL_read, map (first use of each recycled buffer
    // only), scan in place. Dropping the aggregate recycles the buffer.
    ctx.ChargeCpu(ctx.cost().SyscallCost());
    ctx.stats().syscalls++;
    iolite::Aggregate got = channel.Pop(SIZE_MAX);
    sys->runtime().MapAggregate(got, consume_domain);
    for (iolite::Aggregate::Reader r = got.NewReader(); !r.AtEnd();) {
      WcScan(r.data(), r.run_length(), &in_word, &counts);
      ctx.ChargeCpu(
          ctx.cost().ComputeCost(r.run_length(), ctx.cost().params().wc_scan_bytes_per_sec));
      r.Skip(r.run_length());
    }
  };

  GeneratePermutations(sentence, word_len, [&](const char* line, size_t n) {
    if (current && filled + n > current->capacity()) {
      drain();
    }
    if (!current) {
      current = pool->Allocate(kChunk);
      filled = 0;
    }
    // The producer composes its output directly in the IO-Lite buffer: the
    // generation cost is the computation itself, no separate copy.
    std::memcpy(current->writable_data() + filled, line, n);
    filled += n;
    ctx.ChargeCpu(ctx.cost().ComputeCost(n, ctx.cost().params().permute_bytes_per_sec));
  });
  drain();
  ctx.vm().DestroyDomain(produce_domain);
  ctx.vm().DestroyDomain(consume_domain);
  return counts;
}

}  // namespace iolapp
