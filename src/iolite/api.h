// Paper-flavoured convenience entry points (Figure 2).
//
// The object-oriented surface lives in IoLiteRuntime; these free functions
// mirror the names used in the paper so examples read like its code
// fragments:
//
//   size_t IOL_read(IOL_FD fd, IOL_Agg **aggregate, size_t size);
//   size_t IOL_write(IOL_FD fd, IOL_Agg *aggregate);

#ifndef SRC_IOLITE_API_H_
#define SRC_IOLITE_API_H_

#include "src/iolite/runtime.h"

namespace iolite {

using IOL_FD = Fd;
using IOL_Agg = Aggregate;

// Reads at most `size` bytes from `fd` into a fresh aggregate. Returns the
// number of bytes read (0 at end of stream). IOL_read may always return
// fewer bytes than requested.
inline size_t IOL_read(IoLiteRuntime* rt, IOL_FD fd, IOL_Agg* aggregate, size_t size) {
  *aggregate = rt->IolRead(fd, size);
  return aggregate->size();
}

// Replaces the data of the object bound to `fd` with the aggregate's
// contents. Returns bytes written.
inline size_t IOL_write(IoLiteRuntime* rt, IOL_FD fd, const IOL_Agg& aggregate) {
  return rt->IolWrite(fd, aggregate);
}

}  // namespace iolite

#endif  // SRC_IOLITE_API_H_
