// IoLiteRuntime: the system-call layer of IO-Lite (Section 3.4).
//
// Owns the descriptor table and the per-ACL buffer pools, charges syscall
// costs, and enforces the transfer rule of Section 3.1: when a buffer
// aggregate crosses a protection domain boundary, the VM pages (chunks) of
// all its buffers are made readable in the receiving domain — lazily, and
// the mappings persist.

#ifndef SRC_IOLITE_RUNTIME_H_
#define SRC_IOLITE_RUNTIME_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "src/iolite/buffer_pool.h"
#include "src/iolite/stream.h"
#include "src/simos/sim_context.h"

namespace iolite {

class IoLiteRuntime {
 public:
  explicit IoLiteRuntime(iolsim::SimContext* ctx) : ctx_(ctx) {
    // The default kernel pool backs the file cache and network receive path.
    kernel_pool_ = CreatePool("kernel", iolsim::kKernelDomain);
  }

  IoLiteRuntime(const IoLiteRuntime&) = delete;
  IoLiteRuntime& operator=(const IoLiteRuntime&) = delete;

  iolsim::SimContext* ctx() const { return ctx_; }

  // --- Allocation pools (IO-Lite system calls for pool management) --------

  // Creates an allocation pool whose buffers are produced by `producer`.
  BufferPool* CreatePool(const std::string& name, iolsim::DomainId producer);

  // Deletes a pool. All buffers must be unreferenced (asserted).
  void DeletePool(BufferPool* pool);

  BufferPool* kernel_pool() const { return kernel_pool_; }

  // --- Descriptor table ----------------------------------------------------

  // Installs a stream; `owner` is the domain holding the descriptor.
  Fd Open(std::shared_ptr<Stream> stream, iolsim::DomainId owner);
  void Close(Fd fd);
  Stream* StreamOf(Fd fd) const;
  iolsim::DomainId OwnerOf(Fd fd) const;

  // --- Core API (Figure 2): IOL_read / IOL_write ---------------------------

  // Returns an aggregate with at most `max_bytes`; the aggregate's chunks
  // are made readable in the caller's domain.
  Aggregate IolRead(Fd fd, size_t max_bytes);

  // Writes the aggregate to the descriptor's data object. The caller must
  // have read access to every buffer in the aggregate (conventional access
  // control, Section 3.1); asserted in debug builds.
  size_t IolWrite(Fd fd, const Aggregate& agg);

  // Maps every chunk referenced by `agg` readable in `domain`, charging
  // only for mappings not already present. Returns the number of chunks
  // that needed mapping work (0 on a fully warm path).
  int MapAggregate(const Aggregate& agg, iolsim::DomainId domain);

  // Verifies the domain can read every byte of `agg`.
  bool CheckAccess(const Aggregate& agg, iolsim::DomainId domain) const;

 private:
  iolsim::SimContext* ctx_;
  std::vector<std::unique_ptr<BufferPool>> pools_;
  BufferPool* kernel_pool_ = nullptr;

  struct Descriptor {
    std::shared_ptr<Stream> stream;
    iolsim::DomainId owner;
  };
  std::unordered_map<Fd, Descriptor> descriptors_;
  Fd next_fd_ = 3;  // 0-2 reserved by convention.
};

}  // namespace iolite

#endif  // SRC_IOLITE_RUNTIME_H_
