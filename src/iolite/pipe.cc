#include "src/iolite/pipe.h"

#include "src/iolite/runtime.h"

namespace iolite {

PipeEnds MakePipe(IoLiteRuntime* runtime, iolsim::DomainId reader_domain,
                  iolsim::DomainId writer_domain) {
  auto channel = std::make_shared<PipeChannel>(runtime->ctx());
  PipeEnds ends;
  ends.channel = channel;
  ends.read_fd = runtime->Open(std::make_shared<PipeReadStream>(channel), reader_domain);
  ends.write_fd = runtime->Open(std::make_shared<PipeWriteStream>(channel), writer_domain);
  return ends;
}

}  // namespace iolite
