#include "src/iolite/buffer_pool.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace iolite {

std::atomic<uint64_t> BufferPool::next_pool_seed_{1};

void Buffer::Seal(size_t filled) {
  assert(!sealed_ && "double seal");
  assert(filled <= capacity_ && "seal beyond capacity");
  size_ = filled;
  sealed_ = true;
  pool_->OnBufferSealed(this);
}

void Buffer::Release() {
  assert(refcount_ > 0);
  if (--refcount_ == 0) {
    pool_->OnBufferUnreferenced(this);
  }
}

const std::vector<iolsim::ChunkId>& Buffer::chunks() const { return pool_->ChunksOf(*this); }

BufferPool::BufferPool(iolsim::SimContext* ctx, std::string name, iolsim::DomainId producer,
                       ExtentSource* extent_source)
    : ctx_(ctx), name_(std::move(name)), producer_(producer), extent_source_(extent_source) {
  next_buffer_id_ = next_pool_seed_.fetch_add(1, std::memory_order_relaxed) << 32;
}

BufferPool::~BufferPool() {
  for (Extent& e : extents_) {
    for (iolsim::ChunkId c : e.chunks) {
      ctx_->vm().FreeChunk(c);
    }
  }
  ctx_->memory().Release("iolite_window", bytes_reserved_);
}

size_t BufferPool::NewExtent(size_t n) {
  const int chunk_size = ctx_->cost().params().chunk_size;
  size_t chunk_count = (n + chunk_size - 1) / chunk_size;
  if (chunk_count == 0) {
    chunk_count = 1;
  }
  Extent e;
  e.size = chunk_count * chunk_size;
  if (extent_source_ != nullptr) {
    e.data = extent_source_->AllocateExtent(e.size);
    if (e.data == nullptr) {
      // There is no error path out of Allocate; dying loudly beats handing
      // out a buffer over invalid memory (NDEBUG builds included).
      std::fprintf(stderr, "BufferPool '%s': extent source exhausted carving %zu bytes\n",
                   name_.c_str(), e.size);
      std::abort();
    }
  } else {
    e.owned = std::make_unique<char[]>(e.size);
    e.data = e.owned.get();
  }
  for (size_t i = 0; i < chunk_count; ++i) {
    e.chunks.push_back(ctx_->vm().AllocateChunk(producer_));
  }
  bytes_reserved_ += e.size;
  ctx_->memory().Reserve("iolite_window", e.size);
  extents_.push_back(std::move(e));
  return extents_.size() - 1;
}

Buffer* BufferPool::CarveBuffer(size_t n) {
  const int chunk_size = ctx_->cost().params().chunk_size;
  size_t extent_index;
  size_t offset;
  if (n >= static_cast<size_t>(chunk_size)) {
    // Large object: dedicated multi-chunk extent, fully consumed so small
    // allocations can never carve into its storage.
    extent_index = NewExtent(n);
    offset = 0;
    extents_[extent_index].bump = extents_[extent_index].size;
  } else {
    // Small object: carve from the newest small extent, or open one.
    if (extents_.empty() || extents_.back().size - extents_.back().bump < n ||
        extents_.back().size > static_cast<size_t>(chunk_size)) {
      extent_index = NewExtent(chunk_size);
    } else {
      extent_index = extents_.size() - 1;
    }
    offset = extents_[extent_index].bump;
    extents_[extent_index].bump += n;
  }
  char* data = extents_[extent_index].data + offset;
  auto buffer = std::unique_ptr<Buffer>(
      new Buffer(this, next_buffer_id_++, data, n, extent_index, producer_));
  Buffer* raw = buffer.get();
  all_buffers_.push_back(std::move(buffer));
  ctx_->stats().buffers_allocated++;
  return raw;
}

void BufferPool::PrepareFill(Buffer* buffer) {
  if (producer_ == iolsim::kKernelDomain) {
    return;  // Trusted producer holds permanent write permission.
  }
  for (iolsim::ChunkId c : ChunksOf(*buffer)) {
    ctx_->vm().SetWritable(c, producer_, true);
  }
}

BufferRef BufferPool::Allocate(size_t n) {
  assert(n > 0 && "zero-size buffer");
  // First fit from the free list.
  auto it = free_list_.lower_bound(n);
  if (it != free_list_.end()) {
    Buffer* buffer = it->second;
    free_list_.erase(it);
    --free_count_;
    buffer->ResetForReuse(producer_);
    PrepareFill(buffer);
    ctx_->stats().buffers_recycled++;
    ++live_buffers_;
    return BufferRef(buffer);
  }
  Buffer* buffer = CarveBuffer(n);
  PrepareFill(buffer);
  ++live_buffers_;
  return BufferRef(buffer);
}

BufferRef BufferPool::AllocateFrom(const void* src, size_t n) {
  BufferRef buffer = Allocate(n);
  std::memcpy(buffer->writable_data(), src, n);
  ctx_->ChargeCpu(ctx_->cost().CopyCost(n));
  ctx_->stats().bytes_copied += n;
  ctx_->stats().copy_ops++;
  buffer->Seal(n);
  return buffer;
}

BufferRef BufferPool::AllocateDma(uint64_t pattern_seed, size_t n) {
  BufferRef buffer = Allocate(n);
  // Deterministic content so checksums and tests are meaningful, filled
  // without CPU charge (DMA).
  char* dst = buffer->writable_data();
  uint64_t x = pattern_seed * 0x9e3779b97f4a7c15ull + 1;
  for (size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    dst[i] = static_cast<char>((x >> (8 * (i % 8))) & 0xff);
  }
  buffer->Seal(n);
  return buffer;
}

const std::vector<iolsim::ChunkId>& BufferPool::ChunksOf(const Buffer& buffer) const {
  return extents_[buffer.extent_index_].chunks;
}

void BufferPool::OnBufferSealed(Buffer* buffer) {
  if (producer_ == iolsim::kKernelDomain) {
    return;  // Trusted producer: write permission is permanent.
  }
  for (iolsim::ChunkId c : ChunksOf(*buffer)) {
    ctx_->vm().SetWritable(c, producer_, false);
  }
}

void BufferPool::OnBufferUnreferenced(Buffer* buffer) {
  // The buffer's storage stays resident and mapped; it is simply available
  // for reuse. Mappings established in consumer domains persist, which is
  // what makes the next use of this buffer copy- and map-free.
  free_list_.emplace(buffer->capacity(), buffer);
  ++free_count_;
  --live_buffers_;
  ctx_->stats().buffers_freed++;
}

}  // namespace iolite
