// ACL-scoped buffer pools (Sections 3.3 and 4.5).
//
// IO-Lite maintains cached pools of buffers with a common access control
// list. The pool a buffer is allocated from determines which protection
// domains may see its data, so programs determine the ACL *before* storing
// data in memory (trivial everywhere except early demultiplexing of network
// input, handled in src/net).
//
// Storage is carved out of *extents* — runs of one or more 64 KB chunks —
// so objects smaller than a page share pages, and no memory is wasted on
// small allocations. Deallocated buffers go on a per-pool free list; reusing
// one bumps its generation and requires no VM work beyond re-enabling write
// permission for an untrusted producer. This is the "lazily established pool
// of read-only shared memory pages" of Section 3.2.

#ifndef SRC_IOLITE_BUFFER_POOL_H_
#define SRC_IOLITE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/iolite/buffer.h"
#include "src/simos/pool_allocator.h"
#include "src/simos/sim_context.h"

namespace iolite {

// Pluggable backing store for pool extents. The default pool backs extents
// with private heap storage; a shared-memory pool (src/ipc) backs them with
// stable-offset carve-outs of an mmap'd region, which is what lets an
// aggregate be described as (offset, len) pairs valid in any process that
// maps the region.
class ExtentSource {
 public:
  virtual ~ExtentSource() = default;

  // Returns `n` bytes of storage that stays valid for the source's lifetime,
  // or nullptr when the source is exhausted.
  virtual char* AllocateExtent(size_t n) = 0;
};

class BufferPool {
 public:
  // `producer` is the domain that fills buffers allocated here; the kernel
  // (domain 0) is trusted and skips write-permission toggling. When
  // `extent_source` is non-null, extent storage is carved from it instead of
  // the heap (it must outlive the pool).
  BufferPool(iolsim::SimContext* ctx, std::string name, iolsim::DomainId producer,
             ExtentSource* extent_source = nullptr);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  const std::string& name() const { return name_; }
  iolsim::DomainId producer() const { return producer_; }

  // Allocates a buffer with capacity >= `n` in the filling state. Prefers a
  // recycled buffer (cheap); otherwise carves new storage and charges the
  // producer's mapping costs. The returned ref is the caller's.
  BufferRef Allocate(size_t n);

  // Convenience: allocate, fill from `src` (charging copy cost), seal.
  BufferRef AllocateFrom(const void* src, size_t n);

  // Convenience: allocate, fill with a deterministic pattern *without*
  // charging CPU (models DMA from a device), seal.
  BufferRef AllocateDma(uint64_t pattern_seed, size_t n);

  // The set of chunks backing `buffer` (extent lookup for VM operations).
  const std::vector<iolsim::ChunkId>& ChunksOf(const Buffer& buffer) const;

  // Called by Buffer::Release when the last reference drops; the buffer
  // returns to the free list for recycling.
  void OnBufferUnreferenced(Buffer* buffer);

  // Called by Buffer::Seal to revoke an untrusted producer's write access.
  void OnBufferSealed(Buffer* buffer);

  // --- Introspection ------------------------------------------------------

  // Bytes of storage held by this pool (live + recyclable).
  uint64_t bytes_reserved() const { return bytes_reserved_; }
  size_t free_list_size() const { return free_count_; }
  size_t live_buffers() const { return live_buffers_; }

 private:
  struct Extent {
    std::vector<iolsim::ChunkId> chunks;
    char* data = nullptr;             // Start of the extent's storage.
    std::unique_ptr<char[]> owned;    // Heap backing (null when external).
    size_t size = 0;
    size_t bump = 0;  // Next free offset for small carving.
  };

  // Creates a new extent spanning >= `n` bytes of whole chunks.
  size_t NewExtent(size_t n);

  // Carves a brand-new buffer of capacity `n`.
  Buffer* CarveBuffer(size_t n);

  void PrepareFill(Buffer* buffer);

  iolsim::SimContext* ctx_;
  std::string name_;
  iolsim::DomainId producer_;
  ExtentSource* extent_source_;  // Not owned; null for heap-backed pools.

  std::vector<Extent> extents_;
  std::vector<std::unique_ptr<Buffer>> all_buffers_;
  // Free buffers keyed by capacity (first-fit via lower_bound; equal keys
  // stay in release order). Pool-allocated nodes: the steady-state
  // release/reallocate cycle of e.g. header buffers recycles, never
  // allocates.
  std::multimap<size_t, Buffer*, std::less<size_t>,
                iolsim::PoolAllocator<std::pair<const size_t, Buffer*>>>
      free_list_;
  size_t free_count_ = 0;
  size_t live_buffers_ = 0;
  uint64_t bytes_reserved_ = 0;
  uint64_t next_buffer_id_;

  // Atomic: pools are constructed concurrently by threaded plane workers.
  static std::atomic<uint64_t> next_pool_seed_;
};

}  // namespace iolite

#endif  // SRC_IOLITE_BUFFER_POOL_H_
