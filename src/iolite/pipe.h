// Copy-free interprocess communication (Sections 3.2 and 4.4).
//
// When both ends of a pipe use the IO-Lite API, a write enqueues the buffer
// aggregate by value — the underlying buffers move by reference — and the
// read on the other side dequeues slices, with the runtime mapping the
// chunks readable in the consumer's domain. On a warm path (recycled
// buffers, persistent mappings) a transfer costs two syscalls and nothing
// per byte.

#ifndef SRC_IOLITE_PIPE_H_
#define SRC_IOLITE_PIPE_H_

#include <deque>
#include <memory>

#include "src/iolite/stream.h"
#include "src/simos/sim_context.h"

namespace iolite {

// Shared state of one pipe.
class PipeChannel {
 public:
  explicit PipeChannel(iolsim::SimContext* ctx) : ctx_(ctx) {}

  // Appends the aggregate (reference transfer, no data touch).
  size_t Push(const Aggregate& agg) {
    if (agg.empty()) {
      return 0;
    }
    queued_.push_back(agg);
    bytes_ += agg.size();
    return agg.size();
  }

  // Dequeues up to `max_bytes`, splitting the head aggregate if needed.
  Aggregate Pop(size_t max_bytes) {
    Aggregate out;
    while (!queued_.empty() && out.size() < max_bytes) {
      Aggregate& head = queued_.front();
      size_t want = max_bytes - out.size();
      if (head.size() <= want) {
        out.Append(head);
        bytes_ -= head.size();
        queued_.pop_front();
      } else {
        out.Append(head.Range(0, want));
        head.DropFront(want);
        bytes_ -= want;
      }
    }
    return out;
  }

  size_t bytes_queued() const { return bytes_; }
  bool closed() const { return closed_; }
  void CloseWriteEnd() { closed_ = true; }
  iolsim::SimContext* ctx() const { return ctx_; }

 private:
  iolsim::SimContext* ctx_;
  std::deque<Aggregate> queued_;
  size_t bytes_ = 0;
  bool closed_ = false;
};

// Stream adapter for the read end.
class PipeReadStream : public Stream {
 public:
  explicit PipeReadStream(std::shared_ptr<PipeChannel> channel) : channel_(std::move(channel)) {}

  Aggregate Read(iolsim::DomainId /*reader*/, size_t max_bytes) override {
    return channel_->Pop(max_bytes);
  }

  size_t Write(iolsim::DomainId /*writer*/, const Aggregate& /*agg*/) override {
    return 0;  // Read end is not writable.
  }

  size_t ReadableBytes() const override { return channel_->bytes_queued(); }

 private:
  std::shared_ptr<PipeChannel> channel_;
};

// Stream adapter for the write end.
class PipeWriteStream : public Stream {
 public:
  explicit PipeWriteStream(std::shared_ptr<PipeChannel> channel) : channel_(std::move(channel)) {}

  Aggregate Read(iolsim::DomainId /*reader*/, size_t /*max_bytes*/) override {
    return Aggregate{};  // Write end is not readable.
  }

  size_t Write(iolsim::DomainId /*writer*/, const Aggregate& agg) override {
    return channel_->Push(agg);
  }

 private:
  std::shared_ptr<PipeChannel> channel_;
};

// A created pipe: two descriptors over one channel.
struct PipeEnds {
  Fd read_fd;
  Fd write_fd;
  std::shared_ptr<PipeChannel> channel;
};

// Creates a pipe between `reader_domain` and `writer_domain`.
PipeEnds MakePipe(class IoLiteRuntime* runtime, iolsim::DomainId reader_domain,
                  iolsim::DomainId writer_domain);

}  // namespace iolite

#endif  // SRC_IOLITE_PIPE_H_
