// Buffer aggregates: the mutable ADT through which all IO-Lite data is
// accessed (Section 3.1). An aggregate is an ordered list of slices; the
// underlying buffers are immutable, the aggregate itself supports
// truncating, prepending, appending, concatenating and splitting by pure
// pointer manipulation — no data is touched.
//
// Aggregates are passed among subsystems *by value*; the buffers they name
// are passed by reference (slices hold BufferRefs).

#ifndef SRC_IOLITE_AGGREGATE_H_
#define SRC_IOLITE_AGGREGATE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/iolite/slice.h"
#include "src/iolite/small_vec.h"

namespace iolite {

// Aggregates overwhelmingly name one or two slices (a cached body extent,
// or header + body); four inline slots make typical request flows
// allocation-free while long chains still spill to the heap.
using SliceList = SmallVec<Slice, 4>;

class Aggregate {
 public:
  Aggregate() = default;

  // An aggregate covering `buffer`'s entire sealed contents.
  static Aggregate FromBuffer(BufferRef buffer);

  // An aggregate covering one explicit slice.
  static Aggregate FromSlice(Slice slice);

  // --- Structure queries -------------------------------------------------

  size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }
  size_t slice_count() const { return slices_.size(); }
  const SliceList& slices() const { return slices_; }

  // --- Mutation by pointer manipulation (no data copies) -----------------

  void Append(Slice slice);
  void Append(const Aggregate& other);
  void Prepend(Slice slice);
  void Prepend(const Aggregate& other);

  // Keeps only the first `len` bytes.
  void Truncate(size_t len);

  // Removes the first `n` bytes.
  void DropFront(size_t n);

  // Splits at byte position `at`: this aggregate keeps [0, at), the returned
  // aggregate holds [at, size).
  Aggregate SplitOff(size_t at);

  // A value copy restricted to [offset, offset + len).
  Aggregate Range(size_t offset, size_t len) const;

  // Appends `other`'s [offset, offset + len) window to this aggregate —
  // Range + Append without the temporary (the cache's warm hit path).
  // `other` must not be this aggregate (use Range + Append for that).
  void AppendRange(const Aggregate& other, size_t offset, size_t len);

  // Drops all slices (buffer references are released).
  void Clear();

  // --- Data access (host-side; cost charging is the caller's job) --------

  // Byte at logical position `i`. O(#slices); use Reader for scans.
  uint8_t ByteAt(size_t i) const;

  // Gathers the aggregate's bytes into `dst` (must hold size() bytes).
  void CopyTo(char* dst) const;

  // Gathers into a std::string (tests and small metadata only).
  std::string ToString() const;

  // True if both aggregates denote the same byte sequence (may differ in
  // slice structure).
  bool ContentEquals(const Aggregate& other) const;

  // --- Sequential reader --------------------------------------------------

  // Zero-copy cursor over the aggregate's bytes, yielding maximal
  // contiguous runs. This is the access pattern the converted applications
  // use (Section 5.8: "iterating through the slices returned in the buffer
  // aggregate").
  class Reader {
   public:
    explicit Reader(const Aggregate& agg) : agg_(&agg) {}

    bool AtEnd() const { return slice_index_ >= agg_->slices_.size(); }

    // Current contiguous run (pointer + length). Valid unless AtEnd().
    const char* data() const;
    size_t run_length() const;

    // Advances by `n` bytes (may cross slice boundaries).
    void Skip(size_t n);

    // Total bytes consumed so far.
    size_t position() const { return position_; }

   private:
    const Aggregate* agg_;
    size_t slice_index_ = 0;
    size_t offset_in_slice_ = 0;
    size_t position_ = 0;
  };

  Reader NewReader() const { return Reader(*this); }

 private:
  void PushBack(Slice slice);
  void PushFront(Slice slice);

  SliceList slices_;
  size_t total_ = 0;
};

}  // namespace iolite

#endif  // SRC_IOLITE_AGGREGATE_H_
