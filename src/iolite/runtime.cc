#include "src/iolite/runtime.h"

#include <algorithm>
#include <cassert>

namespace iolite {

BufferPool* IoLiteRuntime::CreatePool(const std::string& name, iolsim::DomainId producer) {
  pools_.push_back(std::make_unique<BufferPool>(ctx_, name, producer));
  return pools_.back().get();
}

void IoLiteRuntime::DeletePool(BufferPool* pool) {
  assert(pool->live_buffers() == 0 && "deleting pool with referenced buffers");
  auto it = std::find_if(pools_.begin(), pools_.end(),
                         [pool](const std::unique_ptr<BufferPool>& p) { return p.get() == pool; });
  assert(it != pools_.end());
  pools_.erase(it);
}

Fd IoLiteRuntime::Open(std::shared_ptr<Stream> stream, iolsim::DomainId owner) {
  Fd fd = next_fd_++;
  descriptors_[fd] = Descriptor{std::move(stream), owner};
  return fd;
}

void IoLiteRuntime::Close(Fd fd) { descriptors_.erase(fd); }

Stream* IoLiteRuntime::StreamOf(Fd fd) const {
  auto it = descriptors_.find(fd);
  return it == descriptors_.end() ? nullptr : it->second.stream.get();
}

iolsim::DomainId IoLiteRuntime::OwnerOf(Fd fd) const {
  auto it = descriptors_.find(fd);
  assert(it != descriptors_.end());
  return it->second.owner;
}

Aggregate IoLiteRuntime::IolRead(Fd fd, size_t max_bytes) {
  auto it = descriptors_.find(fd);
  assert(it != descriptors_.end() && "IolRead on closed descriptor");
  ctx_->ChargeCpu(ctx_->cost().SyscallCost());
  ctx_->stats().syscalls++;
  Aggregate agg = it->second.stream->Read(it->second.owner, max_bytes);
  MapAggregate(agg, it->second.owner);
  return agg;
}

size_t IoLiteRuntime::IolWrite(Fd fd, const Aggregate& agg) {
  auto it = descriptors_.find(fd);
  assert(it != descriptors_.end() && "IolWrite on closed descriptor");
  assert(CheckAccess(agg, it->second.owner) && "writer lacks access to aggregate data");
  ctx_->ChargeCpu(ctx_->cost().SyscallCost());
  ctx_->stats().syscalls++;
  return it->second.stream->Write(it->second.owner, agg);
}

int IoLiteRuntime::MapAggregate(const Aggregate& agg, iolsim::DomainId domain) {
  if (domain == iolsim::kKernelDomain) {
    return 0;  // The kernel maps the whole IO-Lite window permanently.
  }
  int cold = 0;
  for (const Slice& s : agg.slices()) {
    for (iolsim::ChunkId c : s.buffer()->chunks()) {
      if (ctx_->vm().EnsureReadable(c, domain)) {
        ++cold;
      }
    }
  }
  return cold;
}

bool IoLiteRuntime::CheckAccess(const Aggregate& agg, iolsim::DomainId domain) const {
  for (const Slice& s : agg.slices()) {
    for (iolsim::ChunkId c : s.buffer()->chunks()) {
      if (!ctx_->vm().CanRead(c, domain)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace iolite
