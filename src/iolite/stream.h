// Abstract I/O stream: the object behind an IO-Lite file descriptor.
//
// The file system (src/fs), the network subsystem (src/net) and the IPC
// system (pipe.h) each implement this interface; the runtime dispatches
// IOL_read / IOL_write to it and performs cross-domain mapping of the
// aggregates that cross the syscall boundary.

#ifndef SRC_IOLITE_STREAM_H_
#define SRC_IOLITE_STREAM_H_

#include <cstddef>

#include "src/iolite/aggregate.h"
#include "src/simos/vm.h"

namespace iolite {

// Descriptor handle in the simulated system-call layer.
using Fd = int;

class Stream {
 public:
  virtual ~Stream() = default;

  // Reads at most `max_bytes`; may always return less than requested
  // (Section 3.4). An empty aggregate signals end-of-stream.
  virtual Aggregate Read(iolsim::DomainId reader, size_t max_bytes) = 0;

  // Replaces/extends the external data object with the aggregate's
  // contents; returns bytes accepted.
  virtual size_t Write(iolsim::DomainId writer, const Aggregate& agg) = 0;

  // Bytes immediately available for Read without blocking, if the stream
  // can know (pipes); SIZE_MAX for "unbounded / not applicable".
  virtual size_t ReadableBytes() const { return SIZE_MAX; }
};

}  // namespace iolite

#endif  // SRC_IOLITE_STREAM_H_
