// stdio over IO-Lite pipes (Sections 3.4 and 5.8).
//
// Language runtime I/O libraries can be converted to use the IO-Lite API
// internally without changing their own interface; applications benefit by
// relinking. This is the mechanism used for the compiler-chain experiment:
// the copy between application and stdio buffer remains (it is part of the
// stdio contract), but the kernel-crossing copy of a conventional pipe is
// replaced by a by-reference aggregate transfer.

#ifndef SRC_IOLITE_STDIO_LITE_H_
#define SRC_IOLITE_STDIO_LITE_H_

#include <cstring>
#include <memory>

#include "src/iolite/buffer_pool.h"
#include "src/iolite/pipe.h"
#include "src/simos/sim_context.h"

namespace iolite {

// Buffered writer: user data is copied into an IO-Lite buffer (the stdio
// buffer), which is pushed into the pipe by reference when full.
class StdioLiteWriter {
 public:
  StdioLiteWriter(iolsim::SimContext* ctx, BufferPool* pool, PipeChannel* channel,
                  size_t buffer_bytes = 8192)
      : ctx_(ctx), pool_(pool), channel_(channel), capacity_(buffer_bytes) {}

  ~StdioLiteWriter() { Flush(); }

  void Write(const char* src, size_t n) {
    while (n > 0) {
      if (!current_) {
        current_ = pool_->Allocate(capacity_);
        filled_ = 0;
      }
      size_t room = capacity_ - filled_;
      size_t take = n < room ? n : room;
      std::memcpy(current_->writable_data() + filled_, src, take);
      ctx_->ChargeCpu(ctx_->cost().CopyCost(take));  // App -> stdio buffer.
      ctx_->stats().bytes_copied += take;
      ctx_->stats().copy_ops++;
      filled_ += take;
      src += take;
      n -= take;
      if (filled_ == capacity_) {
        Flush();
      }
    }
  }

  // Seals the stdio buffer and hands it to the pipe by reference.
  void Flush() {
    if (!current_ || filled_ == 0) {
      return;
    }
    current_->Seal(filled_);
    ctx_->ChargeCpu(ctx_->cost().SyscallCost());  // IOL_write on the pipe.
    ctx_->stats().syscalls++;
    channel_->Push(Aggregate::FromBuffer(std::move(current_)));
    current_ = BufferRef();
    filled_ = 0;
  }

 private:
  iolsim::SimContext* ctx_;
  BufferPool* pool_;
  PipeChannel* channel_;
  size_t capacity_;
  BufferRef current_;
  size_t filled_ = 0;
};

// Buffered reader: aggregates are popped by reference; bytes are copied out
// to the caller (the stdio contract).
class StdioLiteReader {
 public:
  StdioLiteReader(iolsim::SimContext* ctx, PipeChannel* channel) : ctx_(ctx), channel_(channel) {}

  size_t Read(char* dst, size_t n) {
    size_t got = 0;
    while (got < n) {
      if (pending_.empty()) {
        if (channel_->bytes_queued() == 0) {
          break;
        }
        ctx_->ChargeCpu(ctx_->cost().SyscallCost());  // IOL_read on the pipe.
        ctx_->stats().syscalls++;
        pending_ = channel_->Pop(n - got > 65536 ? n - got : 65536);
      }
      size_t take = pending_.size() < n - got ? pending_.size() : n - got;
      iolite::Aggregate head = pending_.Range(0, take);
      head.CopyTo(dst + got);  // stdio buffer -> app.
      ctx_->ChargeCpu(ctx_->cost().CopyCost(take));
      ctx_->stats().bytes_copied += take;
      ctx_->stats().copy_ops++;
      pending_.DropFront(take);
      got += take;
    }
    return got;
  }

 private:
  iolsim::SimContext* ctx_;
  PipeChannel* channel_;
  Aggregate pending_;
};

}  // namespace iolite

#endif  // SRC_IOLITE_STDIO_LITE_H_
