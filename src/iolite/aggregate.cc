#include "src/iolite/aggregate.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace iolite {

Aggregate Aggregate::FromBuffer(BufferRef buffer) {
  Aggregate agg;
  size_t len = buffer->size();
  if (len > 0) {
    agg.PushBack(Slice(std::move(buffer), 0, len));
  }
  return agg;
}

Aggregate Aggregate::FromSlice(Slice slice) {
  Aggregate agg;
  if (!slice.empty()) {
    agg.PushBack(std::move(slice));
  }
  return agg;
}

void Aggregate::PushBack(Slice slice) {
  total_ += slice.length();
  slices_.push_back(std::move(slice));
}

void Aggregate::PushFront(Slice slice) {
  total_ += slice.length();
  slices_.insert_at(0, std::move(slice));
}

void Aggregate::Append(Slice slice) {
  if (!slice.empty()) {
    PushBack(std::move(slice));
  }
}

void Aggregate::Append(const Aggregate& other) {
  for (const Slice& s : other.slices_) {
    PushBack(s);
  }
}

void Aggregate::Prepend(Slice slice) {
  if (!slice.empty()) {
    PushFront(std::move(slice));
  }
}

void Aggregate::Prepend(const Aggregate& other) {
  // Append then rotate: linear in the combined slice count.
  size_t old_count = slices_.size();
  for (const Slice& s : other.slices_) {
    slices_.push_back(s);
  }
  std::rotate(slices_.begin(), slices_.begin() + old_count, slices_.end());
  total_ += other.total_;
}

void Aggregate::Truncate(size_t len) {
  if (len >= total_) {
    return;
  }
  size_t kept = 0;
  size_t i = 0;
  while (i < slices_.size() && kept + slices_[i].length() <= len) {
    kept += slices_[i].length();
    ++i;
  }
  if (i < slices_.size() && kept < len) {
    slices_[i] = slices_[i].Prefix(len - kept);
    ++i;
  }
  slices_.resize_down(i);
  total_ = len;
}

void Aggregate::DropFront(size_t n) {
  if (n == 0) {
    return;
  }
  if (n >= total_) {
    Clear();
    return;
  }
  size_t dropped = 0;
  size_t i = 0;
  while (i < slices_.size() && dropped + slices_[i].length() <= n) {
    dropped += slices_[i].length();
    ++i;
  }
  slices_.erase_front(i);
  total_ -= dropped;
  size_t remainder = n - dropped;
  if (remainder > 0) {
    total_ -= remainder;
    slices_[0] = slices_[0].Suffix(remainder);
  }
}

Aggregate Aggregate::SplitOff(size_t at) {
  assert(at <= total_ && "split point beyond aggregate");
  Aggregate tail = Range(at, total_ - at);
  Truncate(at);
  return tail;
}

Aggregate Aggregate::Range(size_t offset, size_t len) const {
  Aggregate out;
  out.AppendRange(*this, offset, len);
  return out;
}

void Aggregate::AppendRange(const Aggregate& other, size_t offset, size_t len) {
  assert(&other != this && "self-append would iterate storage being grown");
  assert(offset + len <= other.total_ && "range beyond aggregate");
  if (len == 0) {
    return;
  }
  size_t pos = 0;
  size_t appended = 0;
  for (const Slice& s : other.slices_) {
    size_t slice_end = pos + s.length();
    if (slice_end <= offset) {
      pos = slice_end;
      continue;
    }
    size_t start_in_slice = offset > pos ? offset - pos : 0;
    size_t want = len - appended;
    size_t avail = s.length() - start_in_slice;
    size_t take = avail < want ? avail : want;
    PushBack(s.Sub(start_in_slice, take));
    appended += take;
    pos = slice_end;
    if (appended == len) {
      break;
    }
  }
  assert(appended == len);
}

void Aggregate::Clear() {
  slices_.clear();
  total_ = 0;
}

uint8_t Aggregate::ByteAt(size_t i) const {
  assert(i < total_ && "ByteAt out of range");
  for (const Slice& s : slices_) {
    if (i < s.length()) {
      return static_cast<uint8_t>(s.data()[i]);
    }
    i -= s.length();
  }
  assert(false && "unreachable");
  return 0;
}

void Aggregate::CopyTo(char* dst) const {
  for (const Slice& s : slices_) {
    std::memcpy(dst, s.data(), s.length());
    dst += s.length();
  }
}

std::string Aggregate::ToString() const {
  std::string out;
  out.resize(total_);
  CopyTo(out.data());
  return out;
}

bool Aggregate::ContentEquals(const Aggregate& other) const {
  if (total_ != other.total_) {
    return false;
  }
  Reader a = NewReader();
  Reader b = other.NewReader();
  while (!a.AtEnd() && !b.AtEnd()) {
    size_t n = a.run_length() < b.run_length() ? a.run_length() : b.run_length();
    if (std::memcmp(a.data(), b.data(), n) != 0) {
      return false;
    }
    a.Skip(n);
    b.Skip(n);
  }
  return a.AtEnd() && b.AtEnd();
}

const char* Aggregate::Reader::data() const {
  assert(!AtEnd());
  return agg_->slices_[slice_index_].data() + offset_in_slice_;
}

size_t Aggregate::Reader::run_length() const {
  assert(!AtEnd());
  return agg_->slices_[slice_index_].length() - offset_in_slice_;
}

void Aggregate::Reader::Skip(size_t n) {
  position_ += n;
  while (n > 0 && !AtEnd()) {
    size_t run = agg_->slices_[slice_index_].length() - offset_in_slice_;
    if (n < run) {
      offset_in_slice_ += n;
      return;
    }
    n -= run;
    offset_in_slice_ = 0;
    ++slice_index_;
  }
  // Skipping to exactly the end is legal; beyond is a bug.
  assert(n == 0 && "Skip past end of aggregate");
}

}  // namespace iolite
