// SmallVec: a vector with inline storage for the first N elements.
//
// Buffer aggregates are passed among subsystems by value and almost always
// name one or two slices (a body extent, a header + body pair); mbuf chains
// are similar. Backing them with std::vector meant one heap allocation per
// aggregate per request on the warm path. SmallVec keeps up to N elements
// in place and only touches the heap beyond that, so the common case is
// allocation-free while arbitrarily long aggregates still work.
//
// Supports the subset of the std::vector interface the aggregate and mbuf
// code uses; grows geometrically; never shrinks its heap allocation.

#ifndef SRC_IOLITE_SMALL_VEC_H_
#define SRC_IOLITE_SMALL_VEC_H_

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace iolite {

template <typename T, size_t N>
class SmallVec {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() = default;

  SmallVec(const SmallVec& other) { AppendRange(other.begin(), other.end()); }

  SmallVec(SmallVec&& other) noexcept { StealFrom(other); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      clear();
      AppendRange(other.begin(), other.end());
    }
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      clear();
      if (data_ != inline_data()) {
        ::operator delete(data_);
        data_ = inline_data();
        capacity_ = N;
      }
      StealFrom(other);
    }
    return *this;
  }

  ~SmallVec() {
    clear();
    if (data_ != inline_data()) {
      ::operator delete(data_);
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  T* data() { return data_; }
  const T* data() const { return data_; }

  T& operator[](size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  void reserve(size_t n) {
    if (n > capacity_) {
      Grow(n);
    }
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) {
      Grow(capacity_ * 2);
    }
    T* slot = ::new (static_cast<void*>(data_ + size_)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  // Inserts `v` before index `at` (0 == front).
  void insert_at(size_t at, T v) {
    assert(at <= size_);
    emplace_back(std::move(v));  // Grows if needed; new element lands at the back...
    for (size_t i = size_ - 1; i > at; --i) {  // ...then rotates into place.
      using std::swap;
      swap(data_[i], data_[i - 1]);
    }
  }

  // Removes the first `n` elements.
  void erase_front(size_t n) {
    assert(n <= size_);
    for (size_t i = n; i < size_; ++i) {
      data_[i - n] = std::move(data_[i]);
    }
    resize_down(size_ - n);
  }

  // Shrinks to `n` elements (n <= size()).
  void resize_down(size_t n) {
    assert(n <= size_);
    while (size_ > n) {
      data_[--size_].~T();
    }
  }

  void clear() { resize_down(0); }

 private:
  T* inline_data() { return reinterpret_cast<T*>(inline_storage_); }

  // Move-from into a freshly-reset (inline, empty) vector: steal heap
  // storage outright, element-move inline storage. Allocation-free, so the
  // move operations are honestly noexcept (requires nothrow-movable T).
  void StealFrom(SmallVec& other) noexcept {
    static_assert(std::is_nothrow_move_constructible_v<T>);
    if (other.data_ != other.inline_data()) {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
      other.size_ = 0;
      return;
    }
    for (size_t i = 0; i < other.size_; ++i) {
      ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
      other.data_[i].~T();
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  template <typename It>
  void AppendRange(It first, It last) {
    reserve(size_ + static_cast<size_t>(last - first));
    for (; first != last; ++first) {
      emplace_back(*first);
    }
  }

  void Grow(size_t want) {
    size_t cap = capacity_ * 2;
    if (cap < want) {
      cap = want;
    }
    T* grown = static_cast<T*>(::operator new(cap * sizeof(T)));
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(grown + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (data_ != inline_data()) {
      ::operator delete(data_);
    }
    data_ = grown;
    capacity_ = cap;
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = inline_data();
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace iolite

#endif  // SRC_IOLITE_SMALL_VEC_H_
