// Immutable IO-Lite buffers (Section 3.1).
//
// A Buffer is allocated with an initial content that may not subsequently be
// modified; all sharing is therefore read-only. Buffers are refcounted
// system-wide so unused buffers can be reclaimed safely, and each carries a
// generation number that is incremented on reallocation: (buffer id,
// generation) uniquely identifies buffer *contents* system-wide, which is
// what enables cross-subsystem optimizations such as checksum caching
// (Section 3.9).
//
// Lifecycle: a buffer is carved out of a pool extent in the *filling* state,
// the producer writes its content exactly once, then Seal() freezes it. Only
// sealed buffers may appear in aggregates that cross protection domains.

#ifndef SRC_IOLITE_BUFFER_H_
#define SRC_IOLITE_BUFFER_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/simos/vm.h"

namespace iolite {

class BufferPool;

class Buffer {
 public:
  // Buffers are created only by BufferPool.
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  // Stable identity. The id plays the role of the buffer's address in the
  // IO-Lite window; together with the generation it names the contents.
  uint64_t id() const { return id_; }
  uint32_t generation() const { return generation_; }

  // Capacity carved from the pool; size() is the number of bytes the
  // producer actually filled (fixed at Seal time).
  size_t capacity() const { return capacity_; }
  size_t size() const { return size_; }

  bool sealed() const { return sealed_; }

  // Read access to the immutable contents. Valid only once sealed.
  const char* data() const {
    assert(sealed_ && "reading an unsealed buffer");
    return data_;
  }

  // Write access during the fill phase. Asserts immutability afterwards.
  char* writable_data() {
    assert(!sealed_ && "IO-Lite buffers are immutable once sealed");
    return data_;
  }

  // Freezes the first `filled` bytes as the buffer's immutable content and
  // revokes the producer's write permission (unless the producer is the
  // trusted kernel, Section 3.2).
  void Seal(size_t filled);

  // The VM chunks this buffer's storage spans (for mapping operations).
  const std::vector<iolsim::ChunkId>& chunks() const;

  BufferPool* pool() const { return pool_; }
  iolsim::DomainId producer() const { return producer_; }

  // Intrusive reference counting. Release() returning the buffer to its
  // pool's free list is what makes warm-path transfers allocation-free.
  void AddRef() { ++refcount_; }
  void Release();
  int refcount() const { return refcount_; }

 private:
  friend class BufferPool;

  Buffer(BufferPool* pool, uint64_t id, char* data, size_t capacity, size_t extent_index,
         iolsim::DomainId producer)
      : pool_(pool),
        id_(id),
        data_(data),
        capacity_(capacity),
        extent_index_(extent_index),
        producer_(producer) {}

  // Pool-side reuse: bumps the generation, returns to the filling state.
  void ResetForReuse(iolsim::DomainId producer) {
    ++generation_;
    sealed_ = false;
    size_ = 0;
    producer_ = producer;
  }

  BufferPool* pool_;
  uint64_t id_;
  char* data_;
  size_t capacity_;
  size_t extent_index_;
  iolsim::DomainId producer_;
  uint32_t generation_ = 1;
  size_t size_ = 0;
  bool sealed_ = false;
  int refcount_ = 0;
};

// Smart pointer managing Buffer refcounts.
class BufferRef {
 public:
  BufferRef() = default;
  explicit BufferRef(Buffer* b) : b_(b) {
    if (b_ != nullptr) {
      b_->AddRef();
    }
  }
  BufferRef(const BufferRef& other) : BufferRef(other.b_) {}
  BufferRef(BufferRef&& other) noexcept : b_(other.b_) { other.b_ = nullptr; }
  BufferRef& operator=(const BufferRef& other) {
    if (this != &other) {
      Reset();
      b_ = other.b_;
      if (b_ != nullptr) {
        b_->AddRef();
      }
    }
    return *this;
  }
  BufferRef& operator=(BufferRef&& other) noexcept {
    if (this != &other) {
      Reset();
      b_ = other.b_;
      other.b_ = nullptr;
    }
    return *this;
  }
  ~BufferRef() { Reset(); }

  void Reset() {
    if (b_ != nullptr) {
      b_->Release();
      b_ = nullptr;
    }
  }

  Buffer* get() const { return b_; }
  Buffer* operator->() const { return b_; }
  Buffer& operator*() const { return *b_; }
  explicit operator bool() const { return b_ != nullptr; }
  bool operator==(const BufferRef& other) const { return b_ == other.b_; }

 private:
  Buffer* b_ = nullptr;
};

}  // namespace iolite

#endif  // SRC_IOLITE_BUFFER_H_
