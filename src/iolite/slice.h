// A slice is a <buffer, offset, length> tuple referring to a contiguous
// subrange of one immutable IO-Lite buffer (Figure 1). Slices in the same
// buffer may overlap; the slice holds a reference that keeps the buffer
// alive.

#ifndef SRC_IOLITE_SLICE_H_
#define SRC_IOLITE_SLICE_H_

#include <cassert>
#include <cstddef>

#include "src/iolite/buffer.h"

namespace iolite {

class Slice {
 public:
  Slice() = default;

  Slice(BufferRef buffer, size_t offset, size_t length)
      : buffer_(std::move(buffer)), offset_(offset), length_(length) {
    assert(buffer_ && "slice over null buffer");
    assert(offset_ + length_ <= buffer_->size() && "slice exceeds sealed contents");
  }

  const BufferRef& buffer() const { return buffer_; }
  size_t offset() const { return offset_; }
  size_t length() const { return length_; }
  bool empty() const { return length_ == 0; }

  // Pointer to the slice's first byte in the immutable buffer.
  const char* data() const { return buffer_->data() + offset_; }

  // A sub-slice of this slice; shares the same buffer reference.
  Slice Sub(size_t rel_offset, size_t len) const {
    assert(rel_offset + len <= length_);
    return Slice(buffer_, offset_ + rel_offset, len);
  }

  // First `n` bytes.
  Slice Prefix(size_t n) const { return Sub(0, n); }

  // Everything after the first `n` bytes.
  Slice Suffix(size_t n) const { return Sub(n, length_ - n); }

 private:
  BufferRef buffer_;
  size_t offset_ = 0;
  size_t length_ = 0;
};

}  // namespace iolite

#endif  // SRC_IOLITE_SLICE_H_
