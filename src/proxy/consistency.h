// Cache-consistency protocols for the CDN hierarchy (src/cdn).
//
// IO-Lite immutability makes a *stale* snapshot free — any tier can keep
// serving the bytes it holds, because nothing can mutate them in place —
// but *freshness* costs backhaul bandwidth. Each interior link of the
// hierarchy runs one of three protocols that trade those two currencies:
//
//  * kInvalidate  — the origin pushes an invalidation message down the tree
//                   on every write; holders drop the stale entry, so the
//                   next request refetches. Control cost scales with the
//                   write rate; hits are always fresh.
//  * kRevalidate  — entries carry a TTL; an expired hit issues a
//                   conditional check upward (header bytes + one backhaul
//                   RTT) and refreshes on a match. Control cost scales with
//                   the request rate over the TTL; staleness is bounded by
//                   the TTL exactly.
//  * kStale       — serve forever, never check. Zero consistency traffic;
//                   staleness is unbounded and measured instead.
//
// This header lives in src/proxy (not src/cdn) so ProxyServer can consume
// the protocol without depending on the hierarchy layer: src/cdn implements
// VersionSource (iolcdn::VersionAuthority) and wires the config downward.

#ifndef SRC_PROXY_CONSISTENCY_H_
#define SRC_PROXY_CONSISTENCY_H_

#include <cstdint>

#include "src/fs/sim_file_system.h"
#include "src/simos/clock.h"

namespace iolproxy {

enum class ConsistencyMode : uint8_t {
  kNone,        // Single-tier proxy (PR 5): no versions, no checks.
  kInvalidate,  // Origin-push invalidations.
  kRevalidate,  // TTL + conditional revalidation.
  kStale,       // Serve forever, measure staleness.
};

inline const char* Name(ConsistencyMode mode) {
  switch (mode) {
    case ConsistencyMode::kNone:
      return "none";
    case ConsistencyMode::kInvalidate:
      return "invalidate";
    case ConsistencyMode::kRevalidate:
      return "revalidate";
    case ConsistencyMode::kStale:
      return "stale";
  }
  return "?";
}

// The authoritative view of object versions, implemented by the hierarchy's
// origin-side authority (iolcdn::VersionAuthority). Consulted by proxies at
// fetch completion (to tag the cached bytes), at revalidation (to compare),
// and at serve time (to detect a stale serve). Pure metadata: reading a
// version costs nothing in the simulated machine — the modeled cost of
// freshness is the backhaul traffic the protocol generates.
class VersionSource {
 public:
  virtual ~VersionSource() = default;
  // Current version of `file` (0 if never written).
  virtual uint64_t VersionOf(iolfs::FileId file) const = 0;
  // Instant of the write that produced the current version (0 if none).
  virtual iolsim::SimTime WrittenAt(iolfs::FileId file) const = 0;
};

// Per-proxy consistency configuration, handed down by the hierarchy layer.
struct ConsistencyConfig {
  ConsistencyMode mode = ConsistencyMode::kNone;
  // Authoritative versions (not owned; must outlive the proxy). Required
  // for any mode but kNone.
  VersionSource* source = nullptr;
  // This proxy's level in the hierarchy (0 = edge), for the per-level
  // SimStats::cdn[] counters. Must be in [0, SimStats::kMaxCdnLevels).
  int level = 0;
  // kRevalidate: an entry is trusted for this long after fetch/refresh.
  iolsim::SimTime ttl = 0;
};

// Wire sizes of the consistency control plane. An invalidation is one small
// control frame; a revalidation is a conditional request plus a header-only
// 304 — both move headers, never payload.
inline constexpr uint64_t kInvalidationBytes = 64;
inline constexpr uint64_t kRevalidationBytes = 192;

}  // namespace iolproxy

#endif  // SRC_PROXY_CONSISTENCY_H_
