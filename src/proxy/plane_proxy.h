// The data plane's worker roles: proxy, origin and CGI, each written once
// and runnable three ways.
//
// Every role is a Step() that processes at most one message plus a Run()
// loop around it. The YieldFn a role polls with decides the execution
// shape: sched_yield makes it a real concurrent worker (forked process or
// thread); "run the other roles one step" makes the identical code a
// deterministic single-threaded simulator — which is how the in-process
// baseline of the A/B comparison is produced, and why byte-identity across
// modes is a meaningful check of the plane rather than of two separate
// implementations.
//
// Topology (descriptors flow along the arrows; payload never moves):
//
//   client --ClientRequestMsg--> proxy --FillRequestMsg--> origin
//     ^                            |   \--FillRequestMsg--> CGI
//     |                            v
//     +<----- response future <----+  (origin fills complete a proxy-owned
//                                      fill future; CGI completes the
//                                      client's future directly)
//
// The origin worker is where the unified cache goes multi-process: it runs
// a replica SimFileSystem + FileCache whose buffers are carved from the
// shared region, with a ShmCacheMirror projecting every cache entry into
// plane.map.cache. SimFileSystem content is a pure function of (file id,
// offset), and file ids are assigned sequentially from 1, so a replica
// created with the same PlaneDocSet generates byte-identical content to the
// driver's reference system — no content ever crosses the fork.

#ifndef SRC_PROXY_PLANE_PROXY_H_
#define SRC_PROXY_PLANE_PROXY_H_

#include <cstdint>
#include <memory>

#include "src/fs/file_cache.h"
#include "src/fs/file_io.h"
#include "src/fs/sim_file_system.h"
#include "src/iolite/buffer_pool.h"
#include "src/ipc/process_plane.h"
#include "src/ipc/shm_cache_mirror.h"
#include "src/simos/sim_context.h"

namespace iolproxy {

// The document population: `doc_count` files of `doc_bytes` each, created
// in name order so ids are 1..doc_count in every replica.
struct PlaneDocSet {
  int doc_count = 32;
  uint64_t doc_bytes = 16384;
};

// Deterministic dynamic-content generator shared by the CGI worker and the
// driver's verifier (the CGI analogue of SimFileSystem::ContentByteAt).
inline uint8_t CgiByteAt(uint64_t request_key, uint64_t i) {
  uint64_t x = request_key * 0x9e3779b97f4a7c15ull + i * 0xbf58476d1ce4e5b9ull;
  x ^= x >> 29;
  return static_cast<uint8_t>(x * 0x94d049bb133111ebull >> 56);
}

// Future error codes the plane reports (ShmFuturePool reserves 1 = stale
// handle, 2 = wait timeout).
constexpr uint32_t kPlaneErrNoFile = 10;
constexpr uint32_t kPlaneErrUnshareable = 11;
constexpr uint32_t kPlaneErrNoFuture = 12;
constexpr uint32_t kPlaneErrNoSlot = 13;

// --- Origin -----------------------------------------------------------------

// Serves miss fills: reads the file through its replica unified cache
// (region-backed buffers, metadata mirrored to plane.map.cache), pins the
// entry on behalf of the requester and completes the fill future with the
// pinned descriptor.
class OriginWorker {
 public:
  // `cache_budget_bytes` = 0 disables budget enforcement. `pin_slot` is the
  // worker's PinLedger slot (kNoPinSlot = unledgered); supervised workers
  // get one so a crash between pin and hand-off can be swept.
  OriginWorker(iolipc::PlaneShared* shared, const PlaneDocSet& docs,
               uint64_t cache_budget_bytes,
               uint32_t pin_slot = iolipc::kNoPinSlot);

  // Serves one fill; false when plane.q.origin yielded nothing.
  bool Step();

  // Until plane.q.origin is closed and drained.
  void Run(const iolipc::YieldFn& idle);

  iolfs::FileCache& cache() { return cache_; }

 private:
  iolipc::PlaneShared* s_;
  uint64_t budget_;
  iolsim::SimContext ctx_;
  iolite::BufferPool pool_;  // Region-backed: every fill is region-resident.
  iolfs::SimFileSystem fs_;
  iolfs::FileCache cache_;
  iolfs::FileIoService io_;
  iolipc::ShmCacheMirror mirror_;
  uint32_t pin_slot_;
};

// --- CGI --------------------------------------------------------------------

// Serves dynamic requests: builds one contiguous [header][body] response in
// a CGI slab slot and completes the client's future directly — the response
// flows CGI -> client without re-entering the proxy, the co-located IOL-IPC
// shape of PR 5 taken cross-process.
class CgiWorker {
 public:
  CgiWorker(iolipc::PlaneShared* shared, uint64_t body_bytes);

  // Serves one dynamic request; false when plane.q.cgi yielded nothing.
  // `yield` is polled while waiting for a free slab slot.
  bool Step(const iolipc::YieldFn& yield);

  void Run(const iolipc::YieldFn& idle);

 private:
  iolipc::PlaneShared* s_;
  uint64_t body_bytes_;
};

// --- Proxy ------------------------------------------------------------------

// The front tier: pops client requests, serves static ones from the shared
// cache map (warm path: pin + header build, zero payload bytes touched),
// routes misses through origin fill futures and dynamic requests to the CGI
// queue. With `copy_data_path` the warm path degenerates to memcpy-per-
// response into a copy slab — the measured contrast that shows what the
// descriptor discipline saves.
class ProxyWorker {
 public:
  // `pin_slot`: see OriginWorker — the proxy holds a transient pin on the
  // warm path (LookupAndPin -> Complete) and after a fill hands it one.
  // `die_after_pins`: deterministic fault injection for supervision tests —
  // the worker _Exit(9)s on taking its Nth pin, i.e. at the exact point
  // where it holds a ledgered pin and nothing else (no queue mid-state, no
  // lock), so the supervisor's sweep is the only thing standing between the
  // crash and a permanently wedged cache entry. 0 = never.
  ProxyWorker(iolipc::PlaneShared* shared, bool copy_data_path,
              uint64_t fill_wait_us, uint32_t pin_slot = iolipc::kNoPinSlot,
              uint32_t die_after_pins = 0);

  // Serves one client request end to end; false when plane.q.client yielded
  // nothing. `yield` is polled while waiting on fills and free slots.
  bool Step(const iolipc::YieldFn& yield);

  void Run(const iolipc::YieldFn& yield);

 private:
  void ServeStatic(const iolipc::ClientRequestMsg& m, const iolipc::YieldFn& yield);
  // Ledgers the pin, then dies if the injection count just came up.
  void RecordPin(uint64_t ticket);

  iolipc::PlaneShared* s_;
  bool copy_data_path_;
  uint64_t fill_wait_us_;
  uint32_t pin_slot_;
  uint32_t die_after_pins_;
  uint32_t pins_recorded_ = 0;
};

}  // namespace iolproxy

#endif  // SRC_PROXY_PLANE_PROXY_H_
