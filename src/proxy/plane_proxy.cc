#include "src/proxy/plane_proxy.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/fs/replacement_policy.h"
#include "src/httpd/response_header.h"
#include "src/simos/vm.h"

namespace iolproxy {

namespace {

using iolipc::kFrameEnd;
using iolipc::kRespCgiSlab;
using iolipc::kRespCopySlab;
using iolipc::kRespHeaderSlab;
using iolipc::kRespPinned;
using iolipc::SliceDesc;

}  // namespace

// --- Origin -----------------------------------------------------------------

OriginWorker::OriginWorker(iolipc::PlaneShared* shared, const PlaneDocSet& docs,
                           uint64_t cache_budget_bytes, uint32_t pin_slot)
    : s_(shared),
      budget_(cache_budget_bytes),
      ctx_(),
      pool_(&ctx_, "origin-shm", iolsim::kKernelDomain, shared->region),
      fs_(&ctx_, &pool_),
      cache_(&ctx_, std::make_unique<iolfs::PlainLruPolicy>()),
      io_(&ctx_, &fs_, &cache_),
      mirror_(shared->region, &shared->cache_map),
      pin_slot_(pin_slot) {
  // Replica population: same creation order => same sequential FileIds =>
  // same content seeds as every other replica and the driver's reference.
  char name[32];
  for (int i = 0; i < docs.doc_count; ++i) {
    std::snprintf(name, sizeof(name), "doc-%05d", i);
    fs_.CreateFile(name, docs.doc_bytes);
  }
  cache_.set_mirror(&mirror_);
}

bool OriginWorker::Step() {
  iolipc::FillRequestMsg m;
  if (!s_->origin_q.PopAs(&m)) {
    return false;
  }
  iolipc::ShmCounters* c = &s_->counters;
  iolfs::FileId file = static_cast<iolfs::FileId>(m.file_id);
  if (!fs_.Exists(file)) {
    s_->futures.Fail(m.future, kPlaneErrNoFile);
    return true;
  }
  uint64_t size = fs_.SizeOf(file);
  bool was_miss = false;
  io_.ReadExtent(file, 0, size, &was_miss);
  if (was_miss) {
    c->Add(iolipc::kBytesFilledOrigin, size);
  }
  // The read populated the local cache; the mirror projected the entry into
  // the shared map. Pin it on the requester's behalf and hand over the
  // descriptor — the pin travels with the response until the client unpins.
  SliceDesc body;
  if (!s_->cache_map.LookupAndPin(m.file_id, &body)) {
    s_->futures.Fail(m.future, kPlaneErrUnshareable);
  } else {
    s_->pin_ledger.Record(pin_slot_, m.file_id);
    body.ticket = m.file_id;
    body.flags = kRespPinned | kFrameEnd;
    SliceDesc none{};
    // Clear-before-handoff: once Complete succeeds the pin belongs to the
    // requester, and the supervisor must never sweep it out from under
    // them (PinLedger contract).
    s_->pin_ledger.Clear(pin_slot_);
    if (!s_->futures.Complete(m.future, none, body)) {
      s_->cache_map.Unpin(m.file_id);  // Requester timed out; drop its pin.
    } else {
      c->Add(iolipc::kOriginFills, 1);
    }
  }
  if (budget_ != 0) {
    int evicted = cache_.EnforceBudget(budget_);
    if (evicted > 0) {
      c->Add(iolipc::kMapEvictions, static_cast<uint64_t>(evicted));
    }
  }
  return true;
}

void OriginWorker::Run(const iolipc::YieldFn& idle) {
  for (;;) {
    if (Step()) {
      continue;
    }
    if (s_->origin_q.drained()) {
      return;
    }
    idle();
  }
}

// --- CGI --------------------------------------------------------------------

CgiWorker::CgiWorker(iolipc::PlaneShared* shared, uint64_t body_bytes)
    : s_(shared), body_bytes_(body_bytes) {}

bool CgiWorker::Step(const iolipc::YieldFn& yield) {
  iolipc::FillRequestMsg m;
  if (!s_->cgi_q.PopAs(&m)) {
    return false;
  }
  iolipc::ShmCounters* c = &s_->counters;
  SliceDesc slot;
  while (!iolipc::TakeSlot(&s_->cgi_free, &slot)) {
    c->Add(iolipc::kQueueFullYields, 1);
    yield();
  }
  assert(body_bytes_ + iolhttp::kResponseHeaderBytes <= slot.reserved &&
         "CGI slab slots must hold header + body");
  // One contiguous [header][body] response, completed straight to the
  // client's future: CGI -> client without re-entering the proxy.
  char* base = s_->region->At(slot.offset);
  size_t hlen = iolhttp::BuildResponseHeader(base, body_bytes_);
  for (uint64_t i = 0; i < body_bytes_; ++i) {
    base[hlen + i] = static_cast<char>(CgiByteAt(m.file_id, i));
  }
  SliceDesc hdr{};
  hdr.offset = slot.offset;
  hdr.length = hlen;
  hdr.flags = kRespCgiSlab;  // Returning the header desc returns the slot.
  hdr.reserved = slot.reserved;
  SliceDesc body{};
  body.offset = slot.offset + hlen;
  body.length = body_bytes_;
  body.flags = kFrameEnd;
  if (!s_->futures.Complete(m.future, hdr, body)) {
    iolipc::ReturnSlot(&s_->cgi_free, slot);
  } else {
    c->Add(iolipc::kCgiRequests, 1);
    c->Add(iolipc::kRequestsServed, 1);
    c->Add(iolipc::kBytesServed, hlen + body_bytes_);
  }
  return true;
}

void CgiWorker::Run(const iolipc::YieldFn& idle) {
  for (;;) {
    if (Step(idle)) {
      continue;
    }
    if (s_->cgi_q.drained()) {
      return;
    }
    idle();
  }
}

// --- Proxy ------------------------------------------------------------------

ProxyWorker::ProxyWorker(iolipc::PlaneShared* shared, bool copy_data_path,
                         uint64_t fill_wait_us, uint32_t pin_slot,
                         uint32_t die_after_pins)
    : s_(shared),
      copy_data_path_(copy_data_path),
      fill_wait_us_(fill_wait_us),
      pin_slot_(pin_slot),
      die_after_pins_(die_after_pins) {}

void ProxyWorker::RecordPin(uint64_t ticket) {
  s_->pin_ledger.Record(pin_slot_, ticket);
  if (die_after_pins_ != 0 && ++pins_recorded_ == die_after_pins_) {
    // Fault injection: die *while holding the ledgered pin*. The state left
    // behind is exactly one recorded ledger slot and one map pin — the
    // supervisor must sweep it or the cache entry is wedged forever. _Exit
    // skips destructors, like a real SIGKILL would.
    std::_Exit(9);
  }
}

bool ProxyWorker::Step(const iolipc::YieldFn& yield) {
  iolipc::ClientRequestMsg m;
  if (!s_->client_q.PopAs(&m)) {
    return false;
  }
  if (static_cast<iolipc::RequestKind>(m.kind) == iolipc::RequestKind::kCgi) {
    iolipc::FillRequestMsg f{m.file_id, m.future, 0, 0};
    while (!s_->cgi_q.PushAs(f)) {
      s_->counters.Add(iolipc::kQueueFullYields, 1);
      yield();
    }
    return true;
  }
  ServeStatic(m, yield);
  return true;
}

void ProxyWorker::ServeStatic(const iolipc::ClientRequestMsg& m,
                              const iolipc::YieldFn& yield) {
  iolipc::ShmCounters* c = &s_->counters;
  SliceDesc body;
  bool hit = s_->cache_map.LookupAndPin(m.file_id, &body);
  if (hit) {
    c->Add(iolipc::kCacheHits, 1);
    RecordPin(m.file_id);
    body.ticket = m.file_id;
    body.flags = kRespPinned | kFrameEnd;
  } else {
    c->Add(iolipc::kCacheMisses, 1);
    iolipc::FutureHandle fill = s_->futures.Acquire();
    if (fill == iolipc::kInvalidFuture) {
      s_->futures.Fail(m.future, kPlaneErrNoFuture);
      return;
    }
    iolipc::FillRequestMsg f{m.file_id, fill, 0, 0};
    while (!s_->origin_q.PushAs(f)) {
      c->Add(iolipc::kQueueFullYields, 1);
      yield();
    }
    iolipc::ShmFuturePool::WaitResult r = s_->futures.Wait(fill, fill_wait_us_, yield);
    s_->futures.Release(fill);
    if (!r.ok) {
      // Fill failed or the origin died mid-request: the client future
      // resolves with an error instead of hanging — crash containment.
      c->Add(iolipc::kFutureErrors, 1);
      s_->futures.Fail(m.future, r.error != 0 ? r.error : 2);
      return;
    }
    body = r.value[1];  // Already pinned by the origin on our behalf.
    if (body.flags & kRespPinned) {
      RecordPin(body.ticket);  // The pin is ours now.
    }
  }
  if (copy_data_path_) {
    // Contrast path: what a process-per-tier server without the descriptor
    // discipline does — copy the payload across the boundary per response.
    SliceDesc slot;
    while (!iolipc::TakeSlot(&s_->copy_free, &slot)) {
      c->Add(iolipc::kQueueFullYields, 1);
      yield();
    }
    assert(body.length <= slot.reserved && "copy slots must hold the largest doc");
    std::memcpy(s_->region->At(slot.offset), s_->region->At(body.offset),
                body.length);
    c->Add(iolipc::kBytesCopiedCrossProcess, body.length);
    if (body.flags & kRespPinned) {
      s_->cache_map.Unpin(body.ticket);
      s_->pin_ledger.Clear(pin_slot_);
    }
    SliceDesc copied{};
    copied.offset = slot.offset;
    copied.length = body.length;
    copied.flags = kRespCopySlab | kFrameEnd;
    copied.reserved = slot.reserved;
    body = copied;
  }
  SliceDesc hdr;
  while (!iolipc::TakeSlot(&s_->header_free, &hdr)) {
    c->Add(iolipc::kQueueFullYields, 1);
    yield();
  }
  size_t hlen = iolhttp::BuildResponseHeader(s_->region->At(hdr.offset), body.length);
  hdr.length = hlen;
  hdr.flags = kRespHeaderSlab;
  // Clear-before-handoff (PinLedger contract): on Complete success the pin
  // travels to the client with the descriptor.
  if (body.flags & kRespPinned) {
    s_->pin_ledger.Clear(pin_slot_);
  }
  if (!s_->futures.Complete(m.future, hdr, body)) {
    // Client gave up on this response: give every resource back.
    iolipc::ReturnSlot(&s_->header_free, hdr);
    if (body.flags & kRespPinned) {
      s_->cache_map.Unpin(body.ticket);
    }
    if (body.flags & kRespCopySlab) {
      iolipc::ReturnSlot(&s_->copy_free, body);
    }
    return;
  }
  c->Add(iolipc::kRequestsServed, 1);
  c->Add(iolipc::kBytesServed, hlen + body.length);
}

void ProxyWorker::Run(const iolipc::YieldFn& yield) {
  for (;;) {
    if (Step(yield)) {
      continue;
    }
    if (s_->client_q.drained()) {
      return;
    }
    yield();
  }
}

}  // namespace iolproxy
