#include "src/proxy/proxy_server.h"

#include <cassert>
#include <utility>

#include "src/ipc/slice_desc.h"

namespace iolproxy {

namespace {

std::unique_ptr<iolfs::ReplacementPolicy> MakePolicy(ProxyCachePolicy policy) {
  if (policy == ProxyCachePolicy::kGds) {
    return std::make_unique<iolfs::GreedyDualSizePolicy>();
  }
  return std::make_unique<iolfs::PlainLruPolicy>();
}

// Routes a shared unified cache's hit/miss/eviction counters to the proxy
// tier for one scope (the proxy-hop Lookup, the proxy-budget eviction
// pass). The restore is a destructor, so no early return can leave the
// origin tier's counters misrouted.
class ProxyTierStatsScope {
 public:
  ProxyTierStatsScope(iolfs::FileCache* cache, iolsim::SimStats* stats)
      : cache_(cache), stats_(stats) {
    cache_->RouteStats(&stats_->proxy_cache_hits, &stats_->proxy_cache_misses,
                       &stats_->proxy_cache_evictions);
  }
  ~ProxyTierStatsScope() {
    cache_->RouteStats(&stats_->cache_hits, &stats_->cache_misses,
                       &stats_->cache_evictions);
  }
  ProxyTierStatsScope(const ProxyTierStatsScope&) = delete;
  ProxyTierStatsScope& operator=(const ProxyTierStatsScope&) = delete;

 private:
  iolfs::FileCache* cache_;
  iolsim::SimStats* stats_;
};

}  // namespace

ProxyServer::ProxyServer(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net,
                         iolfs::FileIoService* io, iolite::IoLiteRuntime* runtime,
                         std::vector<iolhttp::HttpServer*> origins, ProxyConfig config)
    : HttpServer(ctx, net, io),
      runtime_(runtime),
      origins_(std::move(origins)),
      config_(config),
      shared_cache_(config.backhaul == BackhaulMode::kColocated &&
                    config.data_path == ProxyDataPath::kIoLite),
      own_cpu_(&ctx->clock(), config.proxy_cpu_count),
      backhaul_link_(&ctx->clock()) {
  assert(!origins_.empty());
  backhaul_spec_.link = &backhaul_link_;
  backhaul_spec_.bytes_per_sec = config_.backhaul == BackhaulMode::kRemote
                                     ? config_.backhaul_bytes_per_sec
                                     : config_.loopback_bytes_per_sec;
  backhaul_spec_.Prime(ctx_->cost().params().mtu_bytes);
  domain_ = ctx_->vm().CreateDomain("proxy");
  // Server-generated data (headers) and fetched objects come from the
  // proxy's own pools (its ACL, Section 3.10).
  header_pool_ = runtime_->CreatePool("proxy-headers", domain_);
  object_pool_ = runtime_->CreatePool("proxy-objects", domain_);
  if (shared_cache_) {
    // Co-located IO-Lite: the proxy tier serves straight from the machine's
    // unified cache — one copy of each object machine-wide.
    cache_ = &io_->cache();
  } else {
    own_cache_ = std::make_unique<iolfs::FileCache>(ctx_, MakePolicy(config_.policy));
    own_cache_->RouteStats(&ctx_->stats().proxy_cache_hits,
                           &ctx_->stats().proxy_cache_misses,
                           &ctx_->stats().proxy_cache_evictions);
    cache_ = own_cache_.get();
  }
  in_flight_.assign(origins_.size(), 0);
  origin_requests_.assign(origins_.size(), 0);
  if (!shared_cache_) {
    // One persistent backhaul connection per origin member; its per-MSS
    // transmissions occupy the backhaul resource, not the front link. The
    // IOL-IPC configuration forwards descriptors instead and has no socket.
    backhaul_conns_.reserve(origins_.size());
    for (iolhttp::HttpServer* origin : origins_) {
      auto conn =
          std::make_unique<iolnet::TcpConnection>(net_, origin->uses_iolite_sockets());
      conn->set_link(&backhaul_spec_);
      conn->Connect();  // Setup time, charged before the run starts.
      backhaul_conns_.push_back(std::move(conn));
    }
  }
}

ProxyServer::~ProxyServer() = default;

const char* ProxyServer::name() const {
  if (config_.data_path == ProxyDataPath::kIoLite) {
    return config_.backhaul == BackhaulMode::kColocated ? "IOL-proxy-colocated"
                                                        : "IOL-proxy-remote";
  }
  return config_.backhaul == BackhaulMode::kColocated ? "copy-proxy-colocated"
                                                      : "copy-proxy-remote";
}

uint32_t ProxyServer::AcquireNode(iolhttp::RequestContext* req) {
  uint32_t idx;
  if (free_node_ != UINT32_MAX) {
    idx = free_node_;
    free_node_ = nodes_[idx].next_free;
  } else {
    idx = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[idx].req = req;
  return idx;
}

void ProxyServer::ReleaseNode(uint32_t idx) {
  TaskNode& node = nodes_[idx];
  node.req = nullptr;
  node.body = iolite::Aggregate{};
  node.is_fetch = false;
  node.next_free = free_node_;
  free_node_ = idx;
}

size_t ProxyServer::PickOrigin() {
  if (pick_origin_) {
    return pick_origin_(in_flight_) % origins_.size();
  }
  // Least outstanding fetches; ties scan from the slot after the previous
  // pick so an idle fleet degenerates to round-robin.
  size_t n = origins_.size();
  size_t best = (last_origin_ + 1) % n;
  for (size_t k = 1; k < n; ++k) {
    size_t c = (last_origin_ + 1 + k) % n;
    if (in_flight_[c] < in_flight_[best]) {
      best = c;
    }
  }
  last_origin_ = best;
  return best;
}

void ProxyServer::StartRequest(iolhttp::RequestContext* req) {
  // Stage 1: event loop wakeup, HTTP parse, cache-read syscall — on the
  // proxy's CPU (the shared machine CPU when co-located).
  iolhttp::RunStageOn(
      ctx_, proxy_cpu(), nullptr,
      [this, req] {
        ctx_->ChargeCpu(config_.proxy_request_cpu);
        req->conn->ReceiveRequest(iolhttp::kRequestBytes);
        ctx_->ChargeCpu(ctx_->cost().SyscallCost());
        ctx_->stats().syscalls++;
      },
      [this, req] { LookupStage(req); });
}

void ProxyServer::LookupStage(iolhttp::RequestContext* req) {
  uint64_t size = io_->fs().SizeOf(req->file);
  // Per-tier accounting over one shared cache: the proxy-hop lookup counts
  // into the proxy_cache_* counters, origin-side lookups (ReadExtentAsync
  // on a miss) keep counting into the machine-wide cache_* counters — so
  // SimStats::cache_* describes the origin tier in every configuration.
  std::optional<iolite::Aggregate> cached;
  if (shared_cache_) {
    ProxyTierStatsScope scope(cache_, &ctx_->stats());
    cached = cache_->Lookup(req->file, 0, size);
  } else {
    cached = cache_->Lookup(req->file, 0, size);
  }
  uint32_t idx = AcquireNode(req);
  TaskNode& node = nodes_[idx];
  if (cached.has_value()) {
    req->cache_hit = true;
    node.body = std::move(*cached);
    // Serve-stale: a hit during a backhaul outage serves from the proxy
    // tier exactly as it always does — count it so the drill can assert
    // the proxy stayed available through the flap.
    iolsim::SimTime now = ctx_->clock().now();
    if (BackhaulDown(now)) {
      ++stale_hits_;
    }
    if (consistency_on()) {
      if (ccfg_.mode == ConsistencyMode::kRevalidate && Expired(req->file, now) &&
          !BackhaulDown(now)) {
        // Expired entry: a conditional check must travel up the backhaul
        // before these bytes may be served again. (During an outage the
        // check cannot travel — fall through and serve stale instead: an
        // edge masks its parent's flap at a measured staleness cost.)
        uint64_t cached_version = cache_->VersionOf(req->file);
        iolhttp::RunStageOn(
            ctx_, proxy_cpu(), nullptr,
            [this] {
              ctx_->ChargeCpu(ctx_->cost().SyscallCost());
              ctx_->stats().syscalls++;
              ctx_->ChargeCpu(ctx_->cost().PacketProcessingCost(kRevalidationBytes));
              cdn_stats().revalidations++;
              cdn_stats().revalidation_bytes += kRevalidationBytes;
            },
            [this, idx, cached_version] {
              // One backhaul round trip: conditional request up, header-only
              // answer down — shaped like any other backhaul bytes.
              iolsim::SimTime rtt = 2 * config_.backhaul_one_way_delay;
              if (shaper_ != nullptr) {
                iolsim::SimTime hold =
                    shaper_->DelayFor(ctx_->clock().now(), kRevalidationBytes);
                if (hold > 0) {
                  cdn_stats().shaper_holds++;
                }
                rtt += hold;
              }
              ctx_->events().ScheduleAfter(rtt, [this, idx, cached_version] {
                RevalidateResolve(idx, cached_version);
              });
            });
        return;
      }
      cdn_stats().hits++;
      NoteServe(req->file, cache_->VersionOf(req->file));
    }
    ServeBody(idx);
    return;
  }
  req->cache_hit = false;
  if (consistency_on()) {
    cdn_stats().misses++;
  }
  // Fail-open: with the backhaul inside an outage window, a miss cannot
  // reach the origin until the window closes. Rather than queueing the
  // fetch behind the outage (tail latency), answer immediately with a
  // degraded header-only response.
  if (config_.fail_open && !shared_cache_ && BackhaulDown(ctx_->clock().now())) {
    ++fail_open_serves_;
    ServeDegraded(idx);
    return;
  }
  node.is_fetch = true;
  node.fetch_issue = ctx_->clock().now();
  if (shared_cache_) {
    ForwardIpc(idx);
  } else {
    ForwardRemote(idx);
  }
}

// --- Fault plane (src/fault) ------------------------------------------------

void ProxyServer::AddBackhaulOutage(iolsim::SimTime start, iolsim::SimTime end) {
  backhaul_link_.AddOutageWindow(start, end);
}

void ProxyServer::ArmBackhaulFaults(const iolfault::FaultPlan& plan) {
  for (const iolfault::FaultEvent& e : plan.events()) {
    if (e.kind == iolfault::FaultKind::kBackhaulFlap) {
      AddBackhaulOutage(e.at, e.at + e.duration);
    }
  }
}

bool ProxyServer::BackhaulDown(iolsim::SimTime t) const {
  return backhaul_link_.InOutage(t);
}

void ProxyServer::ServeDegraded(uint32_t idx) {
  // The degraded answer is proxy-generated: one header, no body, no
  // backhaul traffic. node.body stays empty, so both serve tails emit a
  // zero-length payload; is_fetch stays false, so no FetchRecord is
  // fabricated for a fetch that never happened.
  ServeBody(idx);
}

// --- Socket backhaul (kRemote, and kColocated + kCopy) ----------------------

void ProxyServer::ForwardRemote(uint32_t idx) {
  iolhttp::RunStageOn(
      ctx_, proxy_cpu(), nullptr,
      [this] {
        // Forward the request out the backhaul: one syscall plus the
        // request's packet processing on the proxy CPU.
        ctx_->ChargeCpu(ctx_->cost().SyscallCost());
        ctx_->stats().syscalls++;
        ctx_->ChargeCpu(ctx_->cost().PacketProcessingCost(iolhttp::kRequestBytes));
      },
      [this, idx] {
        iolsim::SimTime delay = config_.backhaul == BackhaulMode::kRemote
                                    ? config_.backhaul_one_way_delay
                                    : 0;
        ctx_->events().ScheduleAfter(delay, [this, idx] { StartOriginFetch(idx); });
      });
}

void ProxyServer::StartOriginFetch(uint32_t idx) {
  TaskNode& node = nodes_[idx];
  size_t origin = PickOrigin();
  node.origin = origin;
  ++in_flight_[origin];
  ++origin_requests_[origin];
  node.fetch_admit = ctx_->clock().now();
  // A real HTTP transaction against the member, over the persistent
  // backhaul connection: the origin's own staged pipeline serves it and
  // transmits per MSS segment on the backhaul resource.
  node.bh_req.conn = backhaul_conns_[origin].get();
  node.bh_req.file = node.req->file;
  node.bh_req.response_bytes = 0;
  node.bh_req.cache_hit = false;
  // The origin transaction runs on behalf of the client request's tenant:
  // backhaul link shares and origin-cache fills stay attributed.
  node.bh_req.tenant = node.req->tenant;
  node.bh_req.on_done = [this, idx](iolhttp::RequestContext*) { OnFetchDone(idx); };
  origins_[origin]->StartRequest(&node.bh_req);
}

void ProxyServer::OnFetchDone(uint32_t idx) {
  TaskNode& node = nodes_[idx];
  --in_flight_[node.origin];
  node.origin_hit = node.bh_req.cache_hit;
  if (node.origin_hit) {
    ++origin_hits_;
  } else {
    ++origin_misses_;
  }
  iolsim::SimTime delay = config_.backhaul == BackhaulMode::kRemote
                              ? config_.backhaul_one_way_delay
                              : 0;
  if (consistency_on()) {
    // Tag the bytes with the version the origin held as it finished
    // serving; ReceiveStage compares against the authority again to catch
    // writes that beat the payload down the wire.
    node.fetch_version = ccfg_.source->VersionOf(node.req->file);
    if (shaper_ != nullptr) {
      uint64_t size = io_->fs().SizeOf(node.req->file);
      iolsim::SimTime hold = shaper_->DelayFor(
          ctx_->clock().now(), size + iolhttp::kResponseHeaderBytes);
      if (hold > 0) {
        cdn_stats().shaper_holds++;
      }
      delay += hold;
    }
  }
  ctx_->events().ScheduleAfter(delay, [this, idx] { ReceiveStage(idx); });
}

void ProxyServer::ReceiveStage(uint32_t idx) {
  iolhttp::RunStageOn(
      ctx_, proxy_cpu(), nullptr,
      [this, idx] {
        TaskNode& node = nodes_[idx];
        uint64_t size = io_->fs().SizeOf(node.req->file);
        // Receive-path protocol processing for the arriving object.
        ctx_->ChargeCpu(
            ctx_->cost().PacketProcessingCost(size + iolhttp::kResponseHeaderBytes));
        if (config_.backhaul == BackhaulMode::kColocated) {
          // Local socket: the origin blocks when the socket fills and the
          // proxy must run to drain it — one scheduler round trip per fetch
          // (cf. the copy-based CGI pipe).
          ctx_->ChargeCpu(ctx_->cost().params().context_switch_cost);
        }
        ctx_->stats().backhaul_bytes += size;
        if (consistency_on()) {
          cdn_stats().backhaul_bytes += size;
        }
        // The object lands in buffers filled by the NIC (no CPU charge).
        iolite::BufferRef buf = object_pool_->AllocateDma(
            static_cast<uint64_t>(node.req->file), size);
        node.body = iolite::Aggregate::FromBuffer(std::move(buf));
        if (config_.data_path == ProxyDataPath::kCopy) {
          // memcpy off the socket into the proxy's private cache: the
          // double-buffering a copy-based proxy cannot avoid.
          ctx_->ChargeCpu(ctx_->cost().CopyCost(size));
          ctx_->stats().bytes_copied += size;
          ctx_->stats().copy_ops++;
          ctx_->stats().backhaul_bytes_copied += size;
        }
        // Fetch/write race: a write landed while the payload was in flight.
        // kInvalidate: the invalidation has already swept (or will never
        // target) this cache — inserting would repollute it and break the
        // "never serve older than the acknowledged write" invariant.
        // kRevalidate: inserting would grant stale bytes a fresh TTL, so
        // the ttl staleness bound would stretch by the flight time. Both
        // serve the bytes (the request predates the write) but keep them
        // out of the cache; kStale inserts regardless — serving old
        // snapshots is that protocol's contract, and the staleness samples
        // price it.
        bool stale_fetch = consistency_on() &&
                           ccfg_.mode != ConsistencyMode::kStale &&
                           ccfg_.source->VersionOf(node.req->file) != node.fetch_version;
        if (stale_fetch) {
          cdn_stats().fetch_races++;
          NoteServe(node.req->file, node.fetch_version);
        } else {
          // An IO-Lite proxy mutates only cache metadata here: the entry's
          // slices reference the receive buffers.
          cache_->Insert(node.req->file, 0, node.body, node.fetch_version);
          if (consistency_on()) {
            RefreshExpiry(node.req->file, ctx_->clock().now());
          }
        }
        cache_->EnforceBudget(config_.cache_bytes);
        if (config_.origin_cache_bytes > 0) {
          io_->cache().EnforceBudget(config_.origin_cache_bytes);
        }
      },
      [this, idx] { ServeBody(idx); });
}

// --- IOL-IPC backhaul (kColocated + kIoLite) --------------------------------

void ProxyServer::ForwardIpc(uint32_t idx) {
  iolhttp::RunStageOn(
      ctx_, proxy_cpu(), nullptr,
      [this] {
        // IOL_write of the request descriptor into the proxy->origin ring.
        ctx_->ChargeCpu(ctx_->cost().SyscallCost());
        ctx_->stats().syscalls++;
        ctx_->stats().ipc_frames_sent++;
        ctx_->stats().ipc_desc_bytes += sizeof(iolipc::SliceDesc);
      },
      [this, idx] { OriginIpcServe(idx); });
}

void ProxyServer::OriginIpcServe(uint32_t idx) {
  TaskNode& node = nodes_[idx];
  size_t origin = PickOrigin();
  node.origin = origin;
  ++in_flight_[origin];
  ++origin_requests_[origin];
  node.fetch_admit = ctx_->clock().now();
  iolhttp::RunStageOn(
      ctx_, &ctx_->cpu(), &ctx_->disk(),
      [this] {
        // Origin-side service loop: descriptor pop, IOL_read syscall.
        ctx_->stats().ipc_frames_received++;
        ctx_->ChargeCpu(config_.origin_ipc_request_cpu);
        ctx_->ChargeCpu(ctx_->cost().SyscallCost());
        ctx_->stats().syscalls++;
      },
      [this, idx] {
        TaskNode& node = nodes_[idx];
        uint64_t size = io_->fs().SizeOf(node.req->file);
        // Through the unified cache: a cold object occupies the disk arm
        // and becomes visible to both tiers at once.
        io_->ReadExtentAsync(node.req->file, 0, size,
                             [this, idx](iolite::Aggregate body, bool was_miss) {
                               nodes_[idx].body = std::move(body);
                               OnOriginRead(idx, was_miss);
                             });
      });
}

void ProxyServer::OnOriginRead(uint32_t idx, bool was_miss) {
  TaskNode& node = nodes_[idx];
  --in_flight_[node.origin];
  node.origin_hit = !was_miss;
  if (node.origin_hit) {
    ++origin_hits_;
  } else {
    ++origin_misses_;
  }
  iolhttp::RunStageOn(
      ctx_, &ctx_->cpu(), nullptr,
      [this, idx] {
        TaskNode& node = nodes_[idx];
        // IOL_write of the response descriptors into the origin->proxy ring
        // and the proxy's IOL_read popping them: 32 bytes per slice cross
        // the ring; the payload never moves (the "forward by reference"
        // arrow of the topology diagram).
        ctx_->ChargeCpu(ctx_->cost().SyscallCost());
        ctx_->ChargeCpu(ctx_->cost().SyscallCost());
        ctx_->stats().syscalls += 2;
        size_t slices = node.body.slices().size();
        ctx_->stats().ipc_frames_sent++;
        ctx_->stats().ipc_frames_received++;
        ctx_->stats().ipc_slices_sent += slices;
        ctx_->stats().ipc_desc_bytes += slices * sizeof(iolipc::SliceDesc);
        ctx_->stats().ipc_bytes_transferred += node.body.size();
        ctx_->stats().backhaul_bytes += node.body.size();
        // One machine, one budget: the unified cache is the proxy cache,
        // and evictions its budget forces belong to the proxy tier's
        // accounting (same routing scope as the proxy-hop Lookup).
        ProxyTierStatsScope scope(&io_->cache(), &ctx_->stats());
        io_->cache().EnforceBudget(config_.cache_bytes);
      },
      [this, idx] { ServeBody(idx); });
}

// --- Shared serve tail ------------------------------------------------------

void ProxyServer::ServeBody(uint32_t idx) {
  TaskNode& node = nodes_[idx];
  if (node.is_fetch) {
    fetch_records_.push_back(FetchRecord{node.fetch_issue, node.fetch_admit,
                                         ctx_->clock().now(), node.body.size(),
                                         node.origin, node.origin_hit});
  }
  if (config_.data_path == ProxyDataPath::kIoLite) {
    iolhttp::RunStageOn(
        ctx_, proxy_cpu(), nullptr,
        [this, idx] {
          TaskNode& node = nodes_[idx];
          // Chunks map into the proxy domain once; a popular object costs
          // nothing here on the warm path.
          runtime_->MapAggregate(node.body, domain_);
          iolite::Aggregate response = iolite::Aggregate::FromBuffer(
              iolhttp::MakeIoLiteHeader(ctx_, header_pool_, node.body.size()));
          response.Append(node.body);
          // IOL_write: payload by reference; body checksums come from the
          // generation-keyed cache after the first transmission.
          ctx_->ChargeCpu(ctx_->cost().SyscallCost());
          ctx_->stats().syscalls++;
          node.req->response_bytes = node.req->conn->SendAggregate(response);
        },
        [this, idx] { FinishServe(idx); });
  } else {
    iolhttp::RunStageOn(
        ctx_, proxy_cpu(), nullptr,
        [this, idx] {
          TaskNode& node = nodes_[idx];
          char header[iolhttp::kResponseHeaderBytes];
          size_t header_len = iolhttp::BuildResponseHeader(header, node.body.size());
          // writev: header + cached copy, copied and checksummed into the
          // socket on every hit — the copy-based proxy's per-serve tax.
          ctx_->ChargeCpu(ctx_->cost().SyscallCost());
          ctx_->stats().syscalls++;
          node.req->response_bytes =
              node.req->conn->SendGatheredCopy(header, header_len, node.body);
        },
        [this, idx] { FinishServe(idx); });
  }
}

void ProxyServer::FinishServe(uint32_t idx) {
  iolhttp::RequestContext* req = nodes_[idx].req;
  ReleaseNode(idx);
  // Per-segment transmission of the response on the front link.
  TransmitStage(req);
}

// --- CDN consistency plane (src/cdn) ----------------------------------------

void ProxyServer::ConfigureConsistency(const ConsistencyConfig& cfg) {
  assert(cfg.mode == ConsistencyMode::kNone ||
         (cfg.source != nullptr && cfg.level >= 0 &&
          cfg.level < iolsim::SimStats::kMaxCdnLevels));
  assert(cfg.mode != ConsistencyMode::kRevalidate || cfg.ttl > 0);
  ccfg_ = cfg;
}

void ProxyServer::OnInvalidate(iolfs::FileId file, uint64_t version) {
  assert(ccfg_.mode == ConsistencyMode::kInvalidate);
  // The authority counts the send; we count whether the frame actually
  // swept anything. Versioned drop, not InvalidateFile: a concurrent fetch
  // may already have landed the *new* bytes, which must survive.
  int dropped = cache_->InvalidateOlderThan(file, version);
  if (dropped > 0) {
    cdn_stats().invalidations_applied++;
  }
  expires_.erase(file);
}

void ProxyServer::RevalidateResolve(uint32_t idx, uint64_t cached_version) {
  TaskNode& node = nodes_[idx];
  uint64_t current = ccfg_.source->VersionOf(node.req->file);
  if (current == cached_version) {
    // 304: the cached bytes are still the origin's bytes — trust them for
    // another TTL and serve what LookupStage already assembled.
    RefreshExpiry(node.req->file, ctx_->clock().now());
    cdn_stats().hits++;
    ServeBody(idx);
    return;
  }
  // Modified: the cached body is dead weight; fall into the normal fetch
  // path (the fetched copy replaces the stale entry on arrival).
  node.body = iolite::Aggregate{};
  node.req->cache_hit = false;
  cdn_stats().misses++;
  node.is_fetch = true;
  node.fetch_issue = ctx_->clock().now();
  if (shared_cache_) {
    ForwardIpc(idx);
  } else {
    ForwardRemote(idx);
  }
}

void ProxyServer::NoteServe(iolfs::FileId file, uint64_t served_version) {
  uint64_t current = ccfg_.source->VersionOf(file);
  if (served_version == current) {
    return;
  }
  ++stale_serves_;
  cdn_stats().stale_serves++;
  iolsim::SimTime written = ccfg_.source->WrittenAt(file);
  iolsim::SimTime now = ctx_->clock().now();
  staleness_samples_.push_back(now > written ? now - written : 0);
}

bool ProxyServer::Expired(iolfs::FileId file, iolsim::SimTime now) const {
  auto it = expires_.find(file);
  return it == expires_.end() || now >= it->second;
}

void ProxyServer::RefreshExpiry(iolfs::FileId file, iolsim::SimTime now) {
  if (ccfg_.mode == ConsistencyMode::kRevalidate) {
    expires_[file] = now + ccfg_.ttl;
  }
}

}  // namespace iolproxy
