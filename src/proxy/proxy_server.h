// The proxy-cache tier: a second caching tier in front of the origin fleet.
//
// IO-Lite's claim is that one unified buffering/caching system eliminates
// redundant copying *and redundant caching* across cooperating programs
// (Sections 1 and 3.5). A proxy cache is the canonical multi-application
// case: a copy-based proxy double-buffers every object it relays (one copy
// off the backhaul socket into its private cache, one copy per hit into the
// client socket) and caches each object a second time; an IO-Lite proxy
// serves hits by reference, and — co-located with the origin — shares the
// machine's unified cache over the IOL-IPC descriptor path, so an object is
// cached once machine-wide and forwarded without its payload being touched.
//
// ProxyServer is an HttpServer running on the same staged event engine as
// the origin servers: clients arrive over the machine's front link, the
// proxy runs on its own CPU Resource (its own machine) unless co-located,
// hits are served from the proxy cache, and misses are forwarded to the
// origin fleet over a configurable backhaul:
//
//  * kRemote — a separate proxy machine. Misses become real HTTP
//    transactions against an origin fleet member over a persistent backhaul
//    connection whose per-MSS transmissions occupy a dedicated backhaul
//    Resource (see iolnet::LinkSpec). The arriving object lands in the
//    proxy's own FileCache: a copy-based proxy memcpys it off the socket
//    (and its cache duplicates the origin's); an IO-Lite proxy only mutates
//    cache metadata — the receive buffers are appended by reference.
//  * kColocated — proxy and origin share one machine (one CPU resource).
//    The copy-based pair still runs two private caches and crosses a local
//    socket at bus speed, double-caching on one machine; the IO-Lite pair
//    shares the unified cache and forwards misses over the IOL-IPC
//    descriptor path (32-byte SliceDescs, accounted in the ipc_* stats):
//    zero payload bytes copied, zero duplicate cache entries — asserted on
//    the warm path by tests/proxy_test.cc.
//
// Per-tier accounting: the proxy cache's hit/miss/eviction counters are
// routed to SimStats::proxy_cache_* (see FileCache::RouteStats); the
// machine's cache_* counters keep describing the origin tier. Backhaul
// payload volume and the subset of it memcpy'd at the proxy land in
// SimStats::backhaul_bytes / backhaul_bytes_copied.

#ifndef SRC_PROXY_PROXY_SERVER_H_
#define SRC_PROXY_PROXY_SERVER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/fs/file_cache.h"
#include "src/httpd/http_server.h"
#include "src/iolite/runtime.h"
#include "src/net/tcp.h"
#include "src/proxy/consistency.h"
#include "src/qos/backhaul_shaper.h"
#include "src/simos/sim_context.h"

namespace iolproxy {

// Where the origin fleet sits relative to the proxy.
enum class BackhaulMode {
  kRemote,     // Separate machines joined by a backhaul wire.
  kColocated,  // One machine: local socket (copy) or IOL-IPC (IO-Lite).
};

// The proxy's data path, mirroring the server families of Section 5.
enum class ProxyDataPath {
  kCopy,    // read()/writev() relay: copy in, private cache, copy out.
  kIoLite,  // IOL_read/IOL_write: by-reference cache, cached checksums.
};

// Replacement policy of the proxy's own cache (own-cache configurations).
enum class ProxyCachePolicy {
  kLru,
  kGds,
};

struct ProxyConfig {
  ProxyDataPath data_path = ProxyDataPath::kIoLite;
  BackhaulMode backhaul = BackhaulMode::kRemote;
  ProxyCachePolicy policy = ProxyCachePolicy::kGds;

  // Byte budget of the proxy-tier cache, enforced after each fetch. In the
  // shared-cache configuration (kColocated + kIoLite) this bounds the
  // machine's unified cache — the same RAM the two private caches of the
  // copy-based pair split between them.
  uint64_t cache_bytes = 32ull * 1024 * 1024;
  // Optional budget for the origin's unified cache in own-cache
  // configurations (0 = unbounded).
  uint64_t origin_cache_bytes = 0;

  // Remote backhaul wire: effective payload rate and one-way propagation.
  // Default: one Fast Ethernet at the front link's efficiency — the
  // origin-side pipe every miss must cross.
  double backhaul_bytes_per_sec = 100.0e6 / 8.0 * 0.72;
  iolsim::SimTime backhaul_one_way_delay = 500 * iolsim::kMicrosecond;
  // Co-located copy-based forwarding crosses a local socket at bus speed.
  double loopback_bytes_per_sec = 400.0e6;

  // The proxy machine's CPU (own-cache modes; co-located proxies share the
  // origin machine's CPU resource).
  int proxy_cpu_count = 1;
  // Per-request proxy application work (event loop, parse, routing).
  iolsim::SimTime proxy_request_cpu = 50 * iolsim::kMicrosecond;
  // Origin-side service loop for one IOL-IPC fetch (descriptor pop, unified
  // cache read, descriptor push) beyond the charged syscalls.
  iolsim::SimTime origin_ipc_request_cpu = 50 * iolsim::kMicrosecond;

  // Fault plane (src/fault): when the backhaul is inside an outage window
  // (AddBackhaulOutage / ArmBackhaulFaults), cache hits keep serving from
  // the proxy tier regardless — that is serve-stale, and it needs no flag.
  // fail_open decides what a *miss* does: true serves an immediate degraded
  // header-only response (counted in fail_open_serves()); false lets the
  // fetch queue behind the outage on the backhaul Resource, surfacing the
  // flap as tail latency instead of errors.
  bool fail_open = false;
};

// One backhaul fetch, as observed by the proxy (per-tier latency).
struct FetchRecord {
  iolsim::SimTime issue = 0;     // Proxy missed and decided to forward.
  iolsim::SimTime admit = 0;     // Origin began serving the fetch.
  iolsim::SimTime complete = 0;  // Object resident at the proxy tier.
  size_t bytes = 0;
  size_t origin = 0;  // Fleet member that served it.
  bool origin_hit = false;
};

class ProxyServer : public iolhttp::HttpServer {
 public:
  // `origins` (non-owning, non-empty) is the fleet behind the proxy;
  // `runtime` hosts the proxy's pools and domain. A custom `pick_origin`
  // (e.g. a driver LoadBalancer) may replace the default least-outstanding
  // pick; it receives the per-origin in-flight counts.
  ProxyServer(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net,
              iolfs::FileIoService* io, iolite::IoLiteRuntime* runtime,
              std::vector<iolhttp::HttpServer*> origins, ProxyConfig config);
  ~ProxyServer() override;

  const char* name() const override;
  bool uses_iolite_sockets() const override {
    return config_.data_path == ProxyDataPath::kIoLite;
  }
  void StartRequest(iolhttp::RequestContext* req) override;

  // Replaces the origin pick (load[i] = in-flight fetches at member i).
  void set_pick_origin(std::function<size_t(const std::vector<int>&)> pick) {
    pick_origin_ = std::move(pick);
  }

  // The cache the proxy tier serves hits from: the machine's unified cache
  // when co-located IO-Lite, the proxy's own cache otherwise.
  iolfs::FileCache& proxy_cache() { return *cache_; }
  bool shares_unified_cache() const { return shared_cache_; }

  // --- Fault plane (src/fault) -------------------------------------------
  // Declares a backhaul outage window [start, end): the backhaul Resource
  // stalls transmissions until `end`, and LookupStage consults the window
  // for the serve-stale / fail-open decision. The engine's ArmFaults
  // deliberately skips FaultKind::kBackhaulFlap — the backhaul wire is
  // proxy-owned state, so the proxy owner arms it here.
  void AddBackhaulOutage(iolsim::SimTime start, iolsim::SimTime end);
  // Arms every kBackhaulFlap event of the plan (other kinds are ignored;
  // they belong to the engine's ArmFaults).
  void ArmBackhaulFaults(const iolfault::FaultPlan& plan);
  // Whether the backhaul sits inside an outage window at time t.
  bool BackhaulDown(iolsim::SimTime t) const;

  // Hits served from the proxy tier while the backhaul was down
  // (serve-stale), and misses answered with a degraded header-only
  // response under fail_open.
  uint64_t stale_hits() const { return stale_hits_; }
  uint64_t fail_open_serves() const { return fail_open_serves_; }

  // --- CDN consistency plane (src/cdn) -----------------------------------
  // Attaches a consistency protocol: fetched objects are version-tagged in
  // the cache, hits are checked against the authoritative VersionSource,
  // and the per-level SimStats::cdn[] counters go live. kNone (the default)
  // keeps every pre-CDN code path byte-identical. Configure before traffic.
  void ConfigureConsistency(const ConsistencyConfig& cfg);
  bool consistency_on() const { return ccfg_.mode != ConsistencyMode::kNone; }
  const ConsistencyConfig& consistency() const { return ccfg_; }

  // Invalidation receive path (kInvalidate): drops cached extents of `file`
  // older than `version`. Called by the hierarchy's VersionAuthority at the
  // instant the invalidation frame arrives over this proxy's backhaul.
  void OnInvalidate(iolfs::FileId file, uint64_t version);

  // Whether any extent of `file` sits in this proxy's cache (invalidation
  // targeting; pure metadata, no hit/miss accounting).
  bool CachesFile(iolfs::FileId file) const { return cache_->Contains(file); }

  // Token-bucket shaping of this proxy's backhaul bytes (ROADMAP 5a): when
  // set, fetched payload, revalidation headers and invalidation frames are
  // delayed to the shaper's grant before crossing the link. Not owned.
  void set_backhaul_shaper(iolqos::BackhaulShaper* shaper) { shaper_ = shaper; }
  iolqos::BackhaulShaper* backhaul_shaper() { return shaper_; }

  // Serves whose bytes were older than the origin's current version, and
  // the age of each such serve (now - the write that obsoleted the bytes).
  // CdnTier folds the samples into staleness percentiles.
  uint64_t stale_serves() const { return stale_serves_; }
  const std::vector<iolsim::SimTime>& staleness_samples() const {
    return staleness_samples_;
  }

  // --- Per-tier accounting ---------------------------------------------------
  uint64_t origin_fetches() const { return origin_hits_ + origin_misses_; }
  uint64_t origin_hits() const { return origin_hits_; }
  uint64_t origin_misses() const { return origin_misses_; }
  const std::vector<uint64_t>& origin_requests() const { return origin_requests_; }
  const std::vector<FetchRecord>& fetches() const { return fetch_records_; }

 private:
  // Pooled per-request state: the body aggregate between stages, plus the
  // backhaul fetch context on a miss. Steady-state turnover allocates
  // nothing once the pool has grown to the concurrency high-water mark.
  struct TaskNode {
    iolhttp::RequestContext* req = nullptr;
    iolite::Aggregate body;
    iolhttp::RequestContext bh_req;  // Remote-mode origin transaction.
    size_t origin = 0;
    bool is_fetch = false;
    bool origin_hit = false;
    iolsim::SimTime fetch_issue = 0;
    iolsim::SimTime fetch_admit = 0;
    // Authoritative object version sampled when the origin finished serving
    // this fetch (consistency plane; 0 with consistency off).
    uint64_t fetch_version = 0;
    uint32_t next_free = UINT32_MAX;
  };

  // The CPU the proxy's stages run on: its own machine's, or the shared
  // machine's when co-located.
  iolsim::Resource* proxy_cpu() {
    return config_.backhaul == BackhaulMode::kColocated ? &ctx_->cpu() : &own_cpu_;
  }

  uint32_t AcquireNode(iolhttp::RequestContext* req);
  void ReleaseNode(uint32_t idx);
  size_t PickOrigin();

  void LookupStage(iolhttp::RequestContext* req);
  // Miss paths.
  void ForwardRemote(uint32_t idx);      // kRemote, and kColocated + kCopy.
  void StartOriginFetch(uint32_t idx);
  void OnFetchDone(uint32_t idx);
  void ReceiveStage(uint32_t idx);       // Object arrives; insert into cache.
  void ForwardIpc(uint32_t idx);         // kColocated + kIoLite.
  void OriginIpcServe(uint32_t idx);
  void OnOriginRead(uint32_t idx, bool was_miss);
  // Fail-open miss path: immediate degraded header-only response.
  void ServeDegraded(uint32_t idx);
  // Shared tail: serve node's body to the client over the front link.
  void ServeBody(uint32_t idx);
  void FinishServe(uint32_t idx);

  // --- Consistency plane (active only when consistency_on()) ---------------
  // This proxy's per-level counter block.
  iolsim::SimStats::CdnLevelStats& cdn_stats() {
    return ctx_->stats().cdn[ccfg_.level];
  }
  // kRevalidate: the conditional check's response arrives; `cached_version`
  // is what the cache held when the check was issued.
  void RevalidateResolve(uint32_t idx, uint64_t cached_version);
  // Serve-time staleness check: when `served_version` is behind the
  // authority, counts a stale serve and samples its age.
  void NoteServe(iolfs::FileId file, uint64_t served_version);
  // Expiry bookkeeping for kRevalidate (trust-until instants per file).
  bool Expired(iolfs::FileId file, iolsim::SimTime now) const;
  void RefreshExpiry(iolfs::FileId file, iolsim::SimTime now);

  iolite::IoLiteRuntime* runtime_;
  std::vector<iolhttp::HttpServer*> origins_;
  ProxyConfig config_;
  bool shared_cache_;

  iolsim::Resource own_cpu_;
  iolsim::Resource backhaul_link_;
  iolnet::LinkSpec backhaul_spec_;

  iolsim::DomainId domain_;
  iolite::BufferPool* header_pool_;
  iolite::BufferPool* object_pool_;  // Fetched objects (own-cache modes).
  std::unique_ptr<iolfs::FileCache> own_cache_;
  iolfs::FileCache* cache_;  // own_cache_ or the machine's unified cache.

  // One persistent backhaul connection per origin member (remote and
  // co-located copy modes; the IPC path has no socket).
  std::vector<std::unique_ptr<iolnet::TcpConnection>> backhaul_conns_;

  std::function<size_t(const std::vector<int>&)> pick_origin_;
  std::vector<int> in_flight_;
  std::vector<uint64_t> origin_requests_;
  size_t last_origin_ = 0;

  uint64_t origin_hits_ = 0;
  uint64_t origin_misses_ = 0;
  std::vector<FetchRecord> fetch_records_;

  // Fault plane: outage windows live on backhaul_link_ itself (the
  // Resource defers transmissions and answers BackhaulDown via InOutage).
  uint64_t stale_hits_ = 0;
  uint64_t fail_open_serves_ = 0;

  // Consistency plane (all empty/idle while ccfg_.mode == kNone, so the
  // pre-CDN event sequence is untouched).
  ConsistencyConfig ccfg_;
  iolqos::BackhaulShaper* shaper_ = nullptr;
  // kRevalidate: instant until which each cached object is trusted.
  std::unordered_map<iolfs::FileId, iolsim::SimTime> expires_;
  uint64_t stale_serves_ = 0;
  std::vector<iolsim::SimTime> staleness_samples_;

  // Deque: origin pipelines hold &bh_req across their stage suspensions, so
  // node addresses must survive pool growth.
  std::deque<TaskNode> nodes_;
  uint32_t free_node_ = UINT32_MAX;
};

}  // namespace iolproxy

#endif  // SRC_PROXY_PROXY_SERVER_H_
