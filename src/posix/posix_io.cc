#include "src/posix/posix_io.h"

#include <cassert>
#include <cstring>

namespace iolposix {

size_t PosixIo::Read(iolfs::FileId file, uint64_t offset, char* dst, size_t n) {
  uint64_t size = io_->fs().SizeOf(file);
  if (offset >= size) {
    return 0;
  }
  if (offset + n > size) {
    n = size - offset;
  }
  ctx_->ChargeCpu(ctx_->cost().SyscallCost());
  ctx_->stats().syscalls++;
  iolite::Aggregate agg = io_->ReadExtent(file, offset, n);
  // Copy semantics: move the data into the application's private buffer.
  agg.CopyTo(dst);
  ctx_->ChargeCpu(ctx_->cost().CopyCost(n));
  ctx_->stats().bytes_copied += n;
  ctx_->stats().copy_ops++;
  return n;
}

size_t PosixIo::Write(iolfs::FileId file, uint64_t offset, const char* src, size_t n) {
  ctx_->ChargeCpu(ctx_->cost().SyscallCost());
  ctx_->stats().syscalls++;
  // Copy the application's bytes into IO-Lite buffers (AllocateFrom
  // charges the copy), then splice them into cache + file.
  iolite::BufferRef buffer = pool_->AllocateFrom(src, n);
  io_->WriteExtent(file, offset, iolite::Aggregate::FromBuffer(std::move(buffer)));
  return n;
}

size_t PosixPipe::Write(const char* src, size_t n) {
  ctx_->ChargeCpu(ctx_->cost().SyscallCost());
  ctx_->stats().syscalls++;
  buffer_.insert(buffer_.end(), src, src + n);
  ctx_->ChargeCpu(ctx_->cost().CopyCost(n));
  ctx_->stats().bytes_copied += n;
  ctx_->stats().copy_ops++;
  return n;
}

size_t PosixPipe::Read(char* dst, size_t n) {
  ctx_->ChargeCpu(ctx_->cost().SyscallCost());
  ctx_->stats().syscalls++;
  size_t avail = buffer_.size() - read_pos_;
  if (n > avail) {
    n = avail;
  }
  std::memcpy(dst, buffer_.data() + read_pos_, n);
  read_pos_ += n;
  ctx_->ChargeCpu(ctx_->cost().CopyCost(n));
  ctx_->stats().bytes_copied += n;
  ctx_->stats().copy_ops++;
  Compact();
  return n;
}

void PosixPipe::Compact() {
  if (read_pos_ > 0 && read_pos_ == buffer_.size()) {
    buffer_.clear();
    read_pos_ = 0;
  }
}

MmapRegion::MmapRegion(PosixIo* posix, iolfs::FileId file)
    : posix_(posix), file_(file), length_(posix->io().fs().SizeOf(file)) {
  page_size_ = static_cast<size_t>(posix_->ctx()->cost().params().page_size);
  uint64_t pages = (length_ + page_size_ - 1) / page_size_;
  window_ = std::make_unique<char[]>(pages * page_size_);
  states_.assign(pages, PageState::kUntouched);
  dirty_.assign(pages, false);
  posix_->ctx()->ChargeCpu(posix_->ctx()->cost().SyscallCost());  // mmap(2).
  posix_->ctx()->stats().syscalls++;
}

bool MmapRegion::PageIsAligned(uint64_t page, const iolite::Aggregate& agg) const {
  // The page's bytes must come from one slice, and the slice's placement
  // within its buffer must preserve page alignment. Data read from local
  // disk is page-aligned and page-sized; data received from the network in
  // general is not (Section 3.5).
  uint64_t page_begin = page * page_size_;
  if (agg.slice_count() == 1) {
    const iolite::Slice& s = agg.slices()[0];
    return (s.offset() + page_begin) % page_size_ == 0;
  }
  // Multiple slices: check the slice covering this page covers it fully
  // and with aligned placement.
  uint64_t pos = 0;
  for (const iolite::Slice& s : agg.slices()) {
    uint64_t slice_end = pos + s.length();
    if (page_begin >= pos && page_begin < slice_end) {
      uint64_t page_end = page_begin + page_size_;
      if (page_end > length_) {
        page_end = length_;
      }
      bool covered = page_end <= slice_end;
      bool aligned = (s.offset() + (page_begin - pos)) % page_size_ == 0;
      return covered && aligned;
    }
    pos = slice_end;
  }
  return false;
}

void MmapRegion::FaultRead(uint64_t page) {
  if (states_[page] != PageState::kUntouched) {
    return;
  }
  iolsim::SimContext* ctx = posix_->ctx();
  uint64_t begin = page * page_size_;
  size_t len = page_size_;
  if (begin + len > length_) {
    len = length_ - begin;
  }
  iolite::Aggregate agg = posix_->io().ReadExtent(file_, begin, len);
  agg.CopyTo(window_.get() + begin);  // Host-side materialization.
  ctx->ChargeCpu(ctx->cost().PageMapCost(1));
  ctx->stats().pages_mapped++;
  pages_mapped_++;
  if (PageIsAligned(page, agg)) {
    states_[page] = PageState::kMapped;  // Shared mapping: no copy charged.
  } else {
    // Hardware alignment constraint: lazy per-page copy (Section 3.8).
    ctx->ChargeCpu(ctx->cost().CopyCost(len));
    ctx->stats().bytes_copied += len;
    ctx->stats().copy_ops++;
    pages_copied_++;
    states_[page] = PageState::kCopied;
  }
}

void MmapRegion::FaultWrite(uint64_t page) {
  FaultRead(page);
  if (states_[page] == PageState::kMapped) {
    // The page is shared with an immutable IO-Lite buffer: copy on write to
    // preserve the snapshot semantics of earlier IOL_reads.
    iolsim::SimContext* ctx = posix_->ctx();
    uint64_t begin = page * page_size_;
    size_t len = page_size_;
    if (begin + len > length_) {
      len = length_ - begin;
    }
    ctx->ChargeCpu(ctx->cost().CopyCost(len));
    ctx->stats().bytes_copied += len;
    ctx->stats().copy_ops++;
    pages_copied_++;
    states_[page] = PageState::kCopied;
  }
  dirty_[page] = true;
}

const char* MmapRegion::EnsureRead(uint64_t offset, size_t len) {
  assert(offset + len <= length_);
  uint64_t first = offset / page_size_;
  uint64_t last = len == 0 ? first : (offset + len - 1) / page_size_;
  for (uint64_t p = first; p <= last; ++p) {
    FaultRead(p);
  }
  return window_.get() + offset;
}

char* MmapRegion::EnsureWrite(uint64_t offset, size_t len) {
  assert(offset + len <= length_);
  uint64_t first = offset / page_size_;
  uint64_t last = len == 0 ? first : (offset + len - 1) / page_size_;
  for (uint64_t p = first; p <= last; ++p) {
    FaultWrite(p);
  }
  return window_.get() + offset;
}

void MmapRegion::Sync() {
  iolsim::SimContext* ctx = posix_->ctx();
  for (uint64_t p = 0; p < dirty_.size(); ++p) {
    if (!dirty_[p]) {
      continue;
    }
    uint64_t begin = p * page_size_;
    size_t len = page_size_;
    if (begin + len > length_) {
      len = length_ - begin;
    }
    // The dirtied page becomes new immutable file contents.
    iolite::BufferRef buffer = posix_->pool()->AllocateFrom(window_.get() + begin, len);
    posix_->io().WriteExtent(file_, begin, iolite::Aggregate::FromBuffer(std::move(buffer)));
    dirty_[p] = false;
  }
}

}  // namespace iolposix
