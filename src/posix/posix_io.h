// Baseline POSIX-semantics I/O (Section 6.1) and mmap emulation (Sections
// 3.8 and 6.2), implemented on top of the unified cache exactly as the
// prototype implements backward compatibility (Section 4.2): "the original
// UNIX read and write system calls ... a data copy operation is used to
// move data between application buffers and IO-Lite buffers."
//
// This is both the backward-compatibility layer of IO-Lite and the baseline
// data path that Flash and Apache use in the evaluation.

#ifndef SRC_POSIX_POSIX_IO_H_
#define SRC_POSIX_POSIX_IO_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/fs/file_io.h"
#include "src/simos/sim_context.h"

namespace iolposix {

class PosixIo {
 public:
  // `pool` receives the copies made on the write path (normally the kernel
  // pool — the kernel performs the copy on behalf of the application).
  PosixIo(iolsim::SimContext* ctx, iolfs::FileIoService* io, iolite::BufferPool* pool)
      : ctx_(ctx), io_(io), pool_(pool) {}

  PosixIo(const PosixIo&) = delete;
  PosixIo& operator=(const PosixIo&) = delete;

  // pread: reads up to `n` bytes at `offset` into the caller's private
  // buffer. Copy semantics: one syscall + one copy out of the file cache.
  size_t Read(iolfs::FileId file, uint64_t offset, char* dst, size_t n);

  // pwrite: copy semantics in the other direction.
  size_t Write(iolfs::FileId file, uint64_t offset, const char* src, size_t n);

  iolfs::FileIoService& io() { return *io_; }
  iolite::BufferPool* pool() { return pool_; }
  iolsim::SimContext* ctx() { return ctx_; }

 private:
  iolsim::SimContext* ctx_;
  iolfs::FileIoService* io_;
  iolite::BufferPool* pool_;
};

// Copy-based pipe (conventional UNIX): a write copies the producer's data
// into a kernel buffer, a read copies it out again — two copies per byte
// transferred, plus the syscalls.
class PosixPipe {
 public:
  explicit PosixPipe(iolsim::SimContext* ctx) : ctx_(ctx) {}

  size_t Write(const char* src, size_t n);
  size_t Read(char* dst, size_t n);
  size_t bytes_queued() const { return buffer_.size() - read_pos_; }

 private:
  void Compact();

  iolsim::SimContext* ctx_;
  std::vector<char> buffer_;
  size_t read_pos_ = 0;
};

// Memory-mapped file window (the mmap interface IO-Lite incorporates for
// programs needing contiguous, in-place-modifiable storage, Section 3.8).
//
// Page-fault behaviour:
//  * First access to a page whose cached data is page-aligned and
//    contiguous: mapping only (page-map cost, no copy).
//  * First access to a page whose data is not properly aligned (e.g. it
//    arrived from the network): lazy per-page *copy* plus mapping.
//  * Store to a page also referenced through an immutable IO-Lite buffer:
//    lazy copy-on-write to preserve IOL_read snapshot semantics.
class MmapRegion {
 public:
  MmapRegion(PosixIo* posix, iolfs::FileId file);

  // Faults in [offset, offset+len) for reading; returns a pointer to the
  // contiguous window at `offset`.
  const char* EnsureRead(uint64_t offset, size_t len);

  // Faults in the range for writing (copy-on-write where needed) and
  // returns a mutable pointer. Stores do NOT write back to the file in
  // this emulation unless Sync() is called.
  char* EnsureWrite(uint64_t offset, size_t len);

  // Writes dirty pages back through the cache.
  void Sync();

  uint64_t length() const { return length_; }
  uint64_t pages_mapped() const { return pages_mapped_; }
  uint64_t pages_copied() const { return pages_copied_; }

 private:
  enum class PageState : uint8_t { kUntouched, kMapped, kCopied };

  void FaultRead(uint64_t page);
  void FaultWrite(uint64_t page);
  bool PageIsAligned(uint64_t page, const iolite::Aggregate& agg) const;

  PosixIo* posix_;
  iolfs::FileId file_;
  uint64_t length_;
  size_t page_size_;
  std::unique_ptr<char[]> window_;
  std::vector<PageState> states_;
  std::vector<bool> dirty_;
  uint64_t pages_mapped_ = 0;
  uint64_t pages_copied_ = 0;
};

}  // namespace iolposix

#endif  // SRC_POSIX_POSIX_IO_H_
