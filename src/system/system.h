// System: one fully assembled simulated machine.
//
// Bundles the substrate (SimContext), the IO-Lite runtime and kernel pool,
// the simulated file system, the unified file cache, the file I/O service,
// the POSIX compatibility layer and the network subsystem — the pieces every
// test, example and benchmark needs. Construct one System per experiment
// run; it is deterministic and self-contained.

#ifndef SRC_SYSTEM_SYSTEM_H_
#define SRC_SYSTEM_SYSTEM_H_

#include <memory>
#include <utility>

#include "src/fs/file_cache.h"
#include "src/fs/file_io.h"
#include "src/fs/replacement_policy.h"
#include "src/fs/sim_file_system.h"
#include "src/iolite/runtime.h"
#include "src/net/tcp.h"
#include "src/posix/posix_io.h"
#include "src/simos/sim_context.h"

namespace iolsys {

struct SystemOptions {
  iolsim::CostParams cost;
  bool checksum_cache = true;
  // LRU capacity (entries) of the checksum cache. The default matches the
  // old hard-coded bound; allocation tests shrink it so the at-capacity
  // recycling steady state is reached within a short warmup.
  size_t checksum_cache_entries = 65536;
  // Initial cache policy; replaced via Flash-Lite's customization hook when
  // an experiment asks for GDS.
  enum class Policy { kPaperLru, kPlainLru, kGds } policy = Policy::kPaperLru;
};

class System {
 public:
  explicit System(const SystemOptions& options = SystemOptions{})
      : ctx_(options.cost),
        runtime_(&ctx_),
        fs_(&ctx_, runtime_.kernel_pool()),
        cache_(&ctx_, MakePolicy(options.policy)),
        io_(&ctx_, &fs_, &cache_),
        posix_(&ctx_, &io_, runtime_.kernel_pool()),
        net_(&ctx_, options.checksum_cache, options.checksum_cache_entries) {}

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  iolsim::SimContext& ctx() { return ctx_; }
  iolite::IoLiteRuntime& runtime() { return runtime_; }
  iolfs::SimFileSystem& fs() { return fs_; }
  iolfs::FileCache& cache() { return cache_; }
  iolfs::FileIoService& io() { return io_; }
  iolposix::PosixIo& posix() { return posix_; }
  iolnet::NetworkSubsystem& net() { return net_; }

  static std::unique_ptr<iolfs::ReplacementPolicy> MakePolicy(SystemOptions::Policy p) {
    switch (p) {
      case SystemOptions::Policy::kPlainLru:
        return std::make_unique<iolfs::PlainLruPolicy>();
      case SystemOptions::Policy::kGds:
        return std::make_unique<iolfs::GreedyDualSizePolicy>();
      case SystemOptions::Policy::kPaperLru:
      default:
        return std::make_unique<iolfs::PaperLruPolicy>();
    }
  }

 private:
  iolsim::SimContext ctx_;
  iolite::IoLiteRuntime runtime_;
  iolfs::SimFileSystem fs_;
  iolfs::FileCache cache_;
  iolfs::FileIoService io_;
  iolposix::PosixIo posix_;
  iolnet::NetworkSubsystem net_;
};

}  // namespace iolsys

#endif  // SRC_SYSTEM_SYSTEM_H_
