#include "src/driver/tenant_mix.h"

#include <cassert>

namespace ioldrv {

TenantMix::TenantMix(std::vector<TenantWorkloadSpec> specs)
    : specs_(std::move(specs)) {
  assert(!specs_.empty());
  client_begin_.reserve(specs_.size() + 1);
  for (size_t i = 0; i < specs_.size(); ++i) {
    // Default ids match what a fresh QosPolicy assigns in Configure (the
    // registry pre-seeds tenant 0 as "default").
    ids_.push_back(static_cast<iolsim::TenantId>(i + 1));
    client_begin_.push_back(static_cast<size_t>(total_clients_));
    total_clients_ += specs_[i].clients > 0 ? specs_[i].clients : 0;
  }
  client_begin_.push_back(static_cast<size_t>(total_clients_));
}

void TenantMix::Configure(iolqos::QosPolicy* policy, iolqos::CachePlan* plan) {
  for (size_t i = 0; i < specs_.size(); ++i) {
    const TenantWorkloadSpec& s = specs_[i];
    ids_[i] = policy->Register(s.name, s.weight);
    if (s.throttle_tokens_per_sec > 0) {
      policy->SetThrottle(ids_[i], s.throttle_tokens_per_sec, s.throttle_burst);
    }
    if (plan != nullptr && s.cache_reserved_bytes > 0) {
      plan->SetReserved(ids_[i], s.cache_reserved_bytes);
    }
  }
}

iolsim::TenantId TenantMix::TenantOf(size_t client, uint64_t issue_seq) {
  (void)issue_seq;
  assert(client < static_cast<size_t>(total_clients_));
  // Populations are static and small in count: a linear scan over specs is
  // cheaper than a binary search for the handful of tenants a mix carries.
  size_t i = 0;
  while (client >= client_begin_[i + 1]) {
    ++i;
  }
  last_spec_ = i;
  return ids_[i];
}

bool TenantMix::NextFile(iolfs::FileId* file) {
  // The engine always resolves TenantOf immediately before NextFile, so
  // last_spec_ names the tenant whose stream supplies this request.
  const TenantWorkloadSpec& s = specs_[last_spec_];
  if (!s.next_file) {
    return false;
  }
  *file = s.next_file();
  return true;
}

}  // namespace ioldrv
