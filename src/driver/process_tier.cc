#include "src/driver/process_tier.h"

#include <sched.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <optional>

#include "src/fs/sim_file_system.h"
#include "src/httpd/response_header.h"
#include "src/iolite/buffer_pool.h"
#include "src/simos/sim_context.h"
#include "src/simos/vm.h"

namespace ioldrv {

namespace {

using iolipc::SliceDesc;

double NowMs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 + static_cast<double>(ts.tv_nsec) / 1e6;
}

uint32_t PowTwoAtLeast(uint32_t n) {
  uint32_t p = 2;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

// Tailors slab/future capacities to the workload so no resource can
// deadlock the plane (slots are returned only by the client, so every
// bound must cover the inflight window plus the workers' hands).
iolipc::PlaneConfig TailorPlane(const ProcessTierConfig& cfg) {
  iolipc::PlaneConfig pc = cfg.plane;
  uint32_t window = static_cast<uint32_t>(cfg.inflight);
  uint32_t hands = static_cast<uint32_t>(cfg.proxy_workers + cfg.cgi_workers + 2);
  pc.future_capacity = std::max(pc.future_capacity, window + hands + 4);
  pc.header_slots = std::max(pc.header_slots, window + hands);
  pc.cgi_slots = std::max(pc.cgi_slots, window + hands);
  pc.copy_slots = std::max(pc.copy_slots, window + hands);
  pc.copy_slot_bytes =
      std::max<uint32_t>(pc.copy_slot_bytes, static_cast<uint32_t>(cfg.docs.doc_bytes));
  pc.cgi_slot_bytes = std::max<uint32_t>(
      pc.cgi_slot_bytes,
      static_cast<uint32_t>(cfg.cgi_body_bytes + iolhttp::kResponseHeaderBytes + 64));
  pc.map_capacity =
      std::max(pc.map_capacity, PowTwoAtLeast(static_cast<uint32_t>(cfg.docs.doc_count) * 4));
  pc.queue_capacity = std::max(pc.queue_capacity, PowTwoAtLeast(window * 4));
  return pc;
}

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvFold(uint64_t h, const char* p, uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(p[i]);
    h *= kFnvPrime;
  }
  return h;
}

struct Pending {
  iolipc::FutureHandle h;
  uint64_t file_id;
  iolipc::RequestKind kind;
};

}  // namespace

ProcessTierResult RunProcessTier(const ProcessTierConfig& cfg) {
  ProcessTierResult result;

  // Reclaim segments leaked by crashed prior runs, then build the region.
  std::string shm_name;
  if (!cfg.region_name.empty()) {
    iolipc::ShmRegion::SweepStale(cfg.region_name);
    shm_name = "/" + cfg.region_name + "." + std::to_string(getpid());
  }
  iolipc::PlaneConfig pc = TailorPlane(cfg);
  // Size the region from the workload: structures + slabs + fill payload.
  // The region never recycles extents, so budgeted runs that re-fill after
  // eviction get extra headroom (x4 the one-copy-per-origin footprint).
  uint64_t structures =
      64 * 1024 +
      6ull * (256 + static_cast<uint64_t>(pc.queue_capacity) * 64) +
      static_cast<uint64_t>(pc.map_capacity) * 64 +
      static_cast<uint64_t>(pc.future_capacity) * 128;
  uint64_t slabs = static_cast<uint64_t>(pc.header_slots) * pc.header_slot_bytes +
                   static_cast<uint64_t>(pc.cgi_slots) * pc.cgi_slot_bytes +
                   static_cast<uint64_t>(pc.copy_slots) * pc.copy_slot_bytes;
  uint64_t payload = static_cast<uint64_t>(cfg.docs.doc_count) * cfg.docs.doc_bytes *
                     static_cast<uint64_t>(cfg.origin_workers + 1) * 4;
  size_t region_bytes =
      std::max<size_t>(cfg.region_bytes, structures + slabs + payload + (1u << 20));
  std::unique_ptr<iolipc::ShmRegion> region =
      iolipc::ShmRegion::Create(region_bytes, shm_name);
  if (region == nullptr) {
    return result;
  }
  iolipc::PlaneShared s = iolipc::CreatePlane(region.get(), pc);
  if (!s.valid()) {
    return result;
  }

  // Independent reference system for verification: same doc population,
  // heap-backed, never touches the plane.
  iolsim::SimContext ref_ctx;
  iolite::BufferPool ref_pool(&ref_ctx, "ref", iolsim::kKernelDomain);
  iolfs::SimFileSystem ref_fs(&ref_ctx, &ref_pool);
  {
    char name[32];
    for (int i = 0; i < cfg.docs.doc_count; ++i) {
      std::snprintf(name, sizeof(name), "doc-%05d", i);
      ref_fs.CreateFile(name, cfg.docs.doc_bytes);
    }
  }

  const iolipc::YieldFn sched = [] { sched_yield(); };

  // Launch the fleet (no-op for the in-process pump). Worker bodies take
  // their slot id so supervision can respawn into the same PinLedger slot:
  // proxies occupy ledger slots [0, P), origins [P, P+O).
  iolipc::WorkerGroup proxies;
  iolipc::WorkerGroup origins;
  iolipc::WorkerGroup cgis;
  // Pin-crash injection arms only first-generation proxy 0: forked children
  // inherit the flag's value at fork time, and the parent disarms it right
  // after the initial Launch, so supervisor respawns come up healthy
  // (otherwise the injection would re-fire in every replacement — a crash
  // loop, not a drill). kProcesses only: a thread _Exit would take the
  // whole harness down with it.
  bool proxy_die_armed =
      cfg.mode == iolipc::PlaneMode::kProcesses && cfg.proxy_die_after_pins > 0;
  if (cfg.mode != iolipc::PlaneMode::kInProcess) {
    bool launched =
        proxies.Launch(cfg.mode, cfg.proxy_workers,
                       [&](int slot) {
                         uint32_t die = slot == 0 && proxy_die_armed
                             ? static_cast<uint32_t>(cfg.proxy_die_after_pins)
                             : 0;
                         iolproxy::ProxyWorker w(&s, cfg.copy_data_path, cfg.fill_wait_us,
                                                 static_cast<uint32_t>(slot), die);
                         w.Run(sched);
                       }) &&
        origins.Launch(cfg.mode, cfg.origin_workers,
                       [&](int slot) {
                         iolproxy::OriginWorker w(
                             &s, cfg.docs, cfg.origin_cache_budget,
                             static_cast<uint32_t>(cfg.proxy_workers + slot));
                         w.Run(sched);
                       }) &&
        cgis.Launch(cfg.mode, cfg.cgi_workers, [&] {
          iolproxy::CgiWorker w(&s, cfg.cgi_body_bytes);
          w.Run(sched);
        });
    if (!launched) {
      s.client_q.Close();
      s.origin_q.Close();
      s.cgi_q.Close();
      proxies.JoinAll();
      origins.JoinAll();
      cgis.JoinAll();
      return result;
    }
    if (proxy_die_armed) {
      proxy_die_armed = false;  // Initial forks done: respawns spawn healthy.
    }
    // Arm the death hooks: count the abnormal exit and sweep the dead
    // worker's transient pin before its replacement is spawned.
    auto arm_sweep = [&s](iolipc::WorkerGroup* g, int slot_base) {
      g->set_on_death([&s, slot_base](int i) {
        s.counters.Add(iolipc::kWorkerAbnormalExits, 1);
        uint64_t t = s.pin_ledger.Take(static_cast<uint32_t>(slot_base + i));
        if (t != 0) {
          s.cache_map.Unpin(t - 1);
          s.counters.Add(iolipc::kPinsSwept, 1);
        }
      });
    };
    arm_sweep(&proxies, 0);
    arm_sweep(&origins, cfg.proxy_workers);
    cgis.set_on_death(
        [&s](int) { s.counters.Add(iolipc::kWorkerAbnormalExits, 1); });
  }

  const bool supervising =
      cfg.supervise && cfg.mode == iolipc::PlaneMode::kProcesses;
  auto supervise_poll = [&] {
    if (!supervising) {
      return;
    }
    int n = proxies.Poll() + origins.Poll() + cgis.Poll();
    if (n > 0) {
      s.counters.Add(iolipc::kWorkerRespawns, static_cast<uint64_t>(n));
    }
  };

  // In-process pump: one instance of each role, yielded into each other.
  std::optional<iolproxy::ProxyWorker> pump_proxy;
  std::optional<iolproxy::OriginWorker> pump_origin;
  std::optional<iolproxy::CgiWorker> pump_cgi;
  iolipc::YieldFn client_yield = sched;
  if (cfg.mode == iolipc::PlaneMode::kInProcess) {
    pump_proxy.emplace(&s, cfg.copy_data_path, cfg.fill_wait_us);
    pump_origin.emplace(&s, cfg.docs, cfg.origin_cache_budget);
    pump_cgi.emplace(&s, cfg.cgi_body_bytes);
    iolipc::YieldFn pump_oc = [&] {
      pump_origin->Step();
      pump_cgi->Step([] {});
    };
    client_yield = [&, pump_oc] {
      pump_proxy->Step(pump_oc);
      pump_oc();
    };
  }

  // The client: submit with a bounded window, collect in submission order.
  std::deque<Pending> window;
  uint64_t checksum = kFnvOffset;
  char expect_hdr[iolhttp::kResponseHeaderBytes];

  auto submit = [&](Pending* p) {
    iolipc::FutureHandle h;
    while ((h = s.futures.Acquire()) == iolipc::kInvalidFuture) {
      client_yield();
    }
    p->h = h;
    iolipc::ClientRequestMsg msg{p->file_id, h, static_cast<uint32_t>(p->kind),
                                 0, 0};
    while (!s.client_q.PushAs(msg)) {
      client_yield();
    }
  };

  auto collect_one = [&] {
    Pending p = window.front();
    window.pop_front();
    iolipc::ShmFuturePool::WaitResult r;
    int tries = 0;
    for (;;) {
      r = s.futures.Wait(p.h, cfg.client_wait_us, client_yield);
      s.futures.Release(p.h);
      if (r.ok || tries >= cfg.client_retries) {
        break;
      }
      // Recovery: reap (and respawn) whoever died holding this request,
      // then re-submit the same file id on a fresh future.
      ++tries;
      ++result.client_retries_used;
      supervise_poll();
      submit(&p);
    }
    if (!r.ok) {
      ++result.errors;
      return;
    }
    const SliceDesc& hd = r.value[0];
    const SliceDesc& bd = r.value[1];
    const char* hbytes = region->At(hd.offset);
    const char* bbytes = region->At(bd.offset);
    checksum = FnvFold(checksum, hbytes, hd.length);
    checksum = FnvFold(checksum, bbytes, bd.length);
    uint64_t expect_len = p.kind == iolipc::RequestKind::kCgi ? cfg.cgi_body_bytes
                                                              : cfg.docs.doc_bytes;
    if (hd.length != iolhttp::kResponseHeaderBytes || bd.length != expect_len) {
      result.byte_identical = false;
    } else if (cfg.verify) {
      iolhttp::BuildResponseHeader(expect_hdr, expect_len);
      if (std::memcmp(hbytes, expect_hdr, sizeof(expect_hdr)) != 0) {
        result.byte_identical = false;
      }
      for (uint64_t j = 0; j < expect_len; ++j) {
        uint8_t want = p.kind == iolipc::RequestKind::kCgi
                           ? iolproxy::CgiByteAt(p.file_id, j)
                           : ref_fs.ContentByteAt(static_cast<iolfs::FileId>(p.file_id), j);
        if (static_cast<uint8_t>(bbytes[j]) != want) {
          result.byte_identical = false;
          break;
        }
      }
    }
    // Hand every resource back to the plane.
    for (const SliceDesc* d : {&hd, &bd}) {
      if (d->flags & iolipc::kRespHeaderSlab) {
        iolipc::ReturnSlot(&s.header_free, *d);
      }
      if (d->flags & iolipc::kRespCgiSlab) {
        iolipc::ReturnSlot(&s.cgi_free, *d);
      }
      if (d->flags & iolipc::kRespCopySlab) {
        iolipc::ReturnSlot(&s.copy_free, *d);
      }
      if (d->flags & iolipc::kRespPinned) {
        s.cache_map.Unpin(d->ticket);
      }
    }
    ++result.requests;
  };

  double t0 = NowMs();
  uint64_t rng = 0x853c49e6748fea9bull;  // Deterministic id stream, all modes.
  bool killed = false;
  for (int i = 0; i < cfg.requests; ++i) {
    supervise_poll();
    bool cgi = cfg.cgi_every > 0 && (i % cfg.cgi_every) == cfg.cgi_every - 1;
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    uint64_t file_id =
        cgi ? 1000000ull + static_cast<uint64_t>(i)
            : 1 + (rng % static_cast<uint64_t>(cfg.docs.doc_count));
    Pending p{iolipc::kInvalidFuture, file_id,
              cgi ? iolipc::RequestKind::kCgi : iolipc::RequestKind::kStatic};
    submit(&p);
    window.push_back(p);
    if (static_cast<int>(window.size()) >= cfg.inflight) {
      collect_one();
    }
    // Crash injection: kill proxy worker 0 once enough requests resolved.
    if (cfg.kill_proxy_after > 0 && !killed &&
        cfg.mode == iolipc::PlaneMode::kProcesses &&
        static_cast<int>(result.requests + result.errors) >= cfg.kill_proxy_after) {
      killed = proxies.Kill(0);
    }
  }
  while (!window.empty()) {
    collect_one();
  }
  result.wall_ms = NowMs() - t0;

  // Quiesce the fleet in pipeline order. Join-time abnormal exits are kept
  // apart from supervised ones: `ok` means the *final* join was clean.
  int join_abnormal = 0;
  s.client_q.Close();
  join_abnormal += proxies.JoinAll();
  s.origin_q.Close();
  s.cgi_q.Close();
  join_abnormal += origins.JoinAll();
  join_abnormal += cgis.JoinAll();
  if (join_abnormal > 0) {
    s.counters.Add(iolipc::kWorkerAbnormalExits,
                   static_cast<uint64_t>(join_abnormal));
  }
  result.abnormal_worker_exits =
      join_abnormal + static_cast<int>(proxies.abnormal_exits() +
                                       origins.abnormal_exits() +
                                       cgis.abnormal_exits());
  result.worker_respawns =
      proxies.respawns() + origins.respawns() + cgis.respawns();
  // Post-quiesce pin audit over the doc keys: every pin was either unpinned
  // by its consumer or swept by the supervisor.
  for (int i = 1; i <= cfg.docs.doc_count; ++i) {
    int32_t pins = s.cache_map.PinsOf(static_cast<uint64_t>(i));
    if (pins > 0) {
      result.leaked_pins += static_cast<uint64_t>(pins);
    }
  }

  // Read the warm-path counters — through a fresh attach-by-name when the
  // region supports it, i.e. the way an unrelated process would.
  auto fill_counters = [&result](iolipc::ShmCounters& c) {
    result.bytes_served = c.Get(iolipc::kBytesServed);
    result.bytes_copied_cross_process = c.Get(iolipc::kBytesCopiedCrossProcess);
    result.cache_hits = c.Get(iolipc::kCacheHits);
    result.cache_misses = c.Get(iolipc::kCacheMisses);
    result.origin_fills = c.Get(iolipc::kOriginFills);
    result.cgi_requests = c.Get(iolipc::kCgiRequests);
    result.future_errors = c.Get(iolipc::kFutureErrors);
    result.pins_swept = c.Get(iolipc::kPinsSwept);
  };
  if (region->posix_shm_backed()) {
    std::unique_ptr<iolipc::ShmRegion> fresh = iolipc::ShmRegion::Attach(region->name());
    if (fresh != nullptr) {
      iolipc::PlaneShared v = iolipc::AttachPlane(fresh.get());
      if (v.valid()) {
        fill_counters(v.counters);
        result.counters_out_of_process = true;
      }
    }
  }
  if (!result.counters_out_of_process) {
    fill_counters(s.counters);
  }

  result.response_checksum = checksum;
  double wall_s = result.wall_ms > 0 ? result.wall_ms / 1e3 : 1e-9;
  result.requests_per_sec = static_cast<double>(result.requests) / wall_s;
  result.mbits_per_sec = static_cast<double>(result.bytes_served) * 8.0 / 1e6 / wall_s;
  result.ok = join_abnormal == 0;
  return result;
}

}  // namespace ioldrv
