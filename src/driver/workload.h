// Workload: the arrival-process axis of an experiment.
//
// A Workload answers exactly two questions for the engine — "when does the
// next request arrive?" and (optionally) "which file does it want?" — so
// arrival models compose with any server fleet and any telemetry sink:
//
//  * ClosedLoop: each client issues a new request the moment its previous
//    response arrives; persistent connections may keep `pipeline_depth`
//    requests in flight (HTTP/1.1 pipelining). Arrival rate equals service
//    rate — the saturation experiments of Figures 3-12.
//  * OpenLoopPoisson: requests arrive in a Poisson stream, independent of
//    completions, over a connection pool that grows under overload. The
//    arrival rate is the experiment's independent variable.
//  * TraceReplay: arrivals at the instants of a timestamped access log
//    (parsed or synthesized — see iolwl::TimestampedLog), each pinned to
//    the file the log names. Latency-vs-load curves replay real traffic
//    instead of a fitted arrival model.

#ifndef SRC_DRIVER_WORKLOAD_H_
#define SRC_DRIVER_WORKLOAD_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/fs/sim_file_system.h"
#include "src/simos/clock.h"
#include "src/simos/rng.h"
#include "src/workload/trace.h"

namespace ioldrv {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual const char* name() const = 0;

  // Client connections the engine creates up front (the whole population
  // for closed loops; the initial pool for open loops, which grow on
  // demand).
  virtual int initial_clients() const = 0;

  // Requests a client keeps in flight on a persistent connection.
  virtual int pipeline_depth() const { return 1; }

  // Closed loop: every completion immediately issues the lane's next
  // request; NextArrival is never consulted.
  virtual bool closed_loop() const = 0;

  // Open loop: absolute time of the next arrival, given the current time.
  // Returns false when the arrival stream is exhausted (end of a replayed
  // log); the run then ends once in-flight requests drain.
  virtual bool NextArrival(iolsim::SimTime now, iolsim::SimTime* at);

  // Tenant issuing the arrival (multi-tenant QoS plane, src/qos). The
  // engine calls this immediately before NextFile for the same arrival, so
  // a multi-tenant workload may pick the file from the resolved tenant's
  // stream. Single-tenant workloads keep the default.
  virtual iolsim::TenantId TenantOf(size_t client, uint64_t issue_seq) {
    (void)client;
    (void)issue_seq;
    return iolsim::kDefaultTenant;
  }

  // File pinned to the arrival being issued (trace replay). Returns false
  // when the workload does not dictate files; the engine falls back to the
  // experiment's RequestSource.
  virtual bool NextFile(iolfs::FileId* file);

  // Fleet member pinned to `client`'s requests. Geographic workloads (the
  // CDN hierarchy's per-edge client populations, src/cdn) return true and
  // set *member: a client always talks to its edge, never to a balancer's
  // pick. Default: false — the engine balances as usual.
  virtual bool PinMember(size_t client, size_t* member) {
    (void)client;
    (void)member;
    return false;
  }

  // Rewinds cursors and reseeds generators so the same Workload object can
  // drive a fresh run deterministically. Called by Experiment::Run.
  virtual void Reset() {}
};

// Saturated closed loop: `clients` connections, each re-issuing on
// completion, optionally `pipeline_depth` deep on persistent connections.
class ClosedLoop : public Workload {
 public:
  explicit ClosedLoop(int clients, int pipeline_depth = 1)
      : clients_(clients), depth_(pipeline_depth) {}

  const char* name() const override { return "closed-loop"; }
  int initial_clients() const override { return clients_; }
  int pipeline_depth() const override { return depth_; }
  bool closed_loop() const override { return true; }

 private:
  int clients_;
  int depth_;
};

// Poisson arrivals at a fixed mean rate, decoupled from completions.
class OpenLoopPoisson : public Workload {
 public:
  // Dies loudly on a non-positive rate (a zero rate would spin the
  // interarrival math to +inf; release builds skip asserts).
  // `pipeline_depth` sizes the initial pool's lanes per connection, as in
  // ClosedLoop; arrivals themselves remain completion-independent.
  explicit OpenLoopPoisson(double arrivals_per_sec, uint64_t seed = 0x9e3779b9,
                           int initial_pool = 8, int pipeline_depth = 1);

  const char* name() const override { return "open-loop-poisson"; }
  int initial_clients() const override { return pool_; }
  int pipeline_depth() const override { return depth_; }
  bool closed_loop() const override { return false; }
  bool NextArrival(iolsim::SimTime now, iolsim::SimTime* at) override;
  void Reset() override { rng_ = iolsim::Rng(seed_); }

 private:
  double rate_;
  uint64_t seed_;
  int pool_;
  int depth_;
  iolsim::Rng rng_;
};

// Replays a timestamped log: one arrival per entry, at the entry's instant,
// requesting the entry's file. `ids` maps the log's popularity ranks to
// materialized files (see Trace::Materialize).
class TraceReplay : public Workload {
 public:
  TraceReplay(const iolwl::TimestampedLog* log, std::vector<iolfs::FileId> ids,
              int initial_pool = 8);

  const char* name() const override { return "trace-replay"; }
  int initial_clients() const override { return pool_; }
  bool closed_loop() const override { return false; }
  bool NextArrival(iolsim::SimTime now, iolsim::SimTime* at) override;
  bool NextFile(iolfs::FileId* file) override;
  void Reset() override {
    cursor_ = 0;
    pending_.clear();
  }

 private:
  const iolwl::TimestampedLog* log_;
  std::vector<iolfs::FileId> ids_;
  int pool_;
  size_t cursor_ = 0;
  // Files of scheduled-but-not-yet-issued arrivals, consumed in issue order
  // (issue order equals arrival order: the engine schedules one arrival at
  // a time).
  std::deque<iolfs::FileId> pending_;
};

}  // namespace ioldrv

#endif  // SRC_DRIVER_WORKLOAD_H_
