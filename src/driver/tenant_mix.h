// TenantMix: N tenant workloads x weights x one fleet.
//
// The multi-tenant composition of the experiment engine: each tenant brings
// a closed-loop client population and its own file-request stream (a hot
// Zipf core, a sequential cache-busting scan, ...), and the mix runs them
// against a single fleet. Configure() projects the mix into a QosPolicy —
// tenant registrations, WFQ weights, front-door token buckets — and into a
// CachePlan's reserved shares, so a bench can sweep the same mix with the
// policy plane on or off.
//
// The engine resolves the tenant of every arrival via TenantOf (called
// immediately before NextFile), so per-request telemetry records carry the
// tenant tag even when no QosPolicy is attached — the QoS-off contrast run
// of fig_tenant_isolation still reports per-tenant percentiles.

#ifndef SRC_DRIVER_TENANT_MIX_H_
#define SRC_DRIVER_TENANT_MIX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/driver/workload.h"
#include "src/qos/policy.h"

namespace ioldrv {

// One tenant's slice of the mix.
struct TenantWorkloadSpec {
  std::string name;
  // WFQ weight on CPU/disk/link when the policy plane is attached.
  uint32_t weight = 1;
  // Closed-loop client population (each client re-issues on completion).
  int clients = 1;
  // Per-request file source for this tenant's clients.
  std::function<iolfs::FileId()> next_file;
  // Front-door token bucket (requests/sec); 0 = unthrottled.
  double throttle_tokens_per_sec = 0;
  double throttle_burst = 1;
  // Reserved share under cache partitioning; 0 = bids for the shared pool.
  uint64_t cache_reserved_bytes = 0;
};

class TenantMix : public Workload {
 public:
  explicit TenantMix(std::vector<TenantWorkloadSpec> specs);

  // Registers every tenant with `policy` (names, weights, throttles) and,
  // when `plan` is given, its reserved cache share. Tenant ids assigned by
  // a fresh policy match the ids used without one (spec i -> tenant i+1),
  // so QoS-on and QoS-off runs of the same mix report comparable tags.
  void Configure(iolqos::QosPolicy* policy, iolqos::CachePlan* plan = nullptr);

  const char* name() const override { return "tenant-mix"; }
  int initial_clients() const override { return total_clients_; }
  bool closed_loop() const override { return true; }
  iolsim::TenantId TenantOf(size_t client, uint64_t issue_seq) override;
  bool NextFile(iolfs::FileId* file) override;

  size_t tenant_count() const { return specs_.size(); }
  iolsim::TenantId tenant_id(size_t spec_index) const { return ids_[spec_index]; }
  const TenantWorkloadSpec& spec(size_t spec_index) const { return specs_[spec_index]; }

 private:
  std::vector<TenantWorkloadSpec> specs_;
  std::vector<iolsim::TenantId> ids_;   // Spec index -> tenant id.
  std::vector<size_t> client_begin_;    // Spec i owns clients [begin[i], begin[i+1]).
  int total_clients_ = 0;
  size_t last_spec_ = 0;  // Spec resolved by the latest TenantOf (see NextFile).
};

}  // namespace ioldrv

#endif  // SRC_DRIVER_TENANT_MIX_H_
