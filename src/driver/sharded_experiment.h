// ShardedExperiment: the parallel fleet engine over shard lanes.
//
// The classic Experiment drives a fleet whose members share one simulated
// machine and one event queue. This engine models the fleet the way a real
// deployment is built — each member is its own machine (System: CPU, disk,
// cache, link) with its own clock and event lane — and executes the lanes
// in parallel under the ShardRunner's conservative-lookahead rounds. The
// client population lives on a frontend lane; requests and responses cross
// lanes as ShardMsgs with the client↔fleet one-way delay as the lookahead.
//
// Topology is fixed by the fleet (one lane per member + the frontend);
// ExperimentConfig::shard_count only chooses how many OS threads execute
// the lanes. Telemetry is therefore byte-identical for any shard_count —
// the determinism contract the invariance tests pin.
//
// Scope (asserted, not silently wrong): one-way delay > 0 (it is the
// lookahead), pipeline_depth == 1, no workload-pinned files (trace replay),
// no enforce_cache_budget. Balancing is client-affine round-robin —
// client c is served by member c mod M — which a per-member accept queue
// (max_concurrent) still applies to.

#ifndef SRC_DRIVER_SHARDED_EXPERIMENT_H_
#define SRC_DRIVER_SHARDED_EXPERIMENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/driver/experiment.h"
#include "src/driver/telemetry.h"
#include "src/driver/workload.h"
#include "src/httpd/http_server.h"
#include "src/net/tcp.h"
#include "src/simos/shard.h"
#include "src/system/system.h"

namespace ioldrv {

// One fleet member's machine + server, built by the caller's factory so
// benches control the server kind, cost model and file catalog. Factories
// run sequentially on the calling thread (construction order is part of
// the determinism contract); every member must materialize the same file
// catalog in the same order, since FileIds travel across lanes.
struct ShardMember {
  std::unique_ptr<iolsys::System> sys;
  std::unique_ptr<iolhttp::HttpServer> server;
};
using ShardMemberFactory = std::function<ShardMember(size_t member)>;

// The merged result plus the parallel-engine diagnostics.
struct ShardedResult {
  ExperimentResult result;            // Legacy-shaped: benches reuse JsonReporter.
  std::vector<uint64_t> lane_events;  // [0] = frontend, [1..] = members.
  iolsim::ShardRunner::Stats shard;   // Rounds, messages, spills, threads.
};

class ShardedExperiment {
 public:
  using RequestSource = Experiment::RequestSource;

  ShardedExperiment(size_t members, ShardMemberFactory factory,
                    ExperimentConfig config);
  ~ShardedExperiment();

  ShardedExperiment(const ShardedExperiment&) = delete;
  ShardedExperiment& operator=(const ShardedExperiment&) = delete;

  // Runs `workload` to completion across the lanes. One Run per instance,
  // like the classic engine.
  ShardedResult Run(Workload* workload, RequestSource next_file);

  const Telemetry& telemetry() const { return telemetry_; }
  iolsys::System* member_system(size_t m) { return members_[m].sys.get(); }

 private:
  class FrontendLane;
  class MemberLane;

  size_t member_count_;
  ExperimentConfig config_;
  std::vector<ShardMember> members_;
  Telemetry telemetry_;
  std::unique_ptr<FrontendLane> frontend_;
  std::vector<std::unique_ptr<MemberLane>> member_lanes_;
  bool ran_ = false;
};

}  // namespace ioldrv

#endif  // SRC_DRIVER_SHARDED_EXPERIMENT_H_
