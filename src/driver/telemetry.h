// Telemetry: the per-request record sink of the experiment engine.
//
// The engine timestamps every request at three points — client issue,
// server admission (past the accept queue) and client receipt of the last
// response byte — and hands the finished record to a Telemetry sink. The
// sink keeps the raw stream; percentile summaries are computed
// deterministically (sort + nearest-rank) so the same run always reports
// the same p50/p90/p99, with no histogram-bucket rounding.

#ifndef SRC_DRIVER_TELEMETRY_H_
#define SRC_DRIVER_TELEMETRY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/simos/clock.h"

namespace ioldrv {

// How a logical request ended, as observed by the client (fault plane,
// src/fault). Everything before kTimedOut delivered a response; kTimedOut
// and kFailed did not, and their records carry no latency sample (a
// timeout instant is a policy constant, not a measurement).
enum class Outcome : uint8_t {
  kOk = 0,      // First attempt delivered.
  kRetriedOk,   // A retry attempt delivered.
  kHedgeWon,    // The hedged duplicate delivered first.
  kTimedOut,    // Timed out with no retries configured (unprotected).
  kFailed,      // Timed out after exhausting every retry.
};

inline bool Delivered(Outcome o) { return o <= Outcome::kHedgeWon; }

// One completed request, as observed by the client population.
struct RequestRecord {
  iolsim::SimTime issue = 0;     // Client issued the request.
  iolsim::SimTime admit = 0;     // Server admitted it (past the accept queue).
  iolsim::SimTime complete = 0;  // Last response byte reached the client.
  size_t bytes = 0;              // Response bytes (header + body).
  size_t server = 0;             // Fleet member that served it.
  iolsim::TenantId tenant = iolsim::kDefaultTenant;  // Owning tenant (src/qos).
  Outcome outcome = Outcome::kOk;  // Fault plane; kOk on every fault-free run.
  uint8_t attempts = 1;          // Issues of this logical request (1 + retries).
  bool cache_hit = false;        // Body served from the unified cache.
  bool counted = false;          // Post-warmup (excluded from summaries otherwise).
};

// Deterministic latency percentiles over a set of records, in milliseconds.
// All fields are zero for an empty set — never NaN — so empty or
// warmup-only runs serialize cleanly.
struct LatencySummary {
  uint64_t count = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p90_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

// Deterministic sort + nearest-rank summary over raw SimTime samples — the
// same arithmetic every Telemetry summary uses, exposed for sample streams
// that are not request records (the CDN tier's staleness ages).
LatencySummary SummarizeSamples(std::vector<iolsim::SimTime> samples);

// Per-tenant slice of a run's counted records (multi-tenant QoS plane).
struct TenantSummary {
  iolsim::TenantId tenant = iolsim::kDefaultTenant;
  uint64_t requests = 0;         // Counted completions.
  uint64_t bytes = 0;
  LatencySummary latency;        // End-to-end, counted records only.
  // Fraction of this tenant's counted requests served from the cache (the
  // per-request flag; whole-run per-tenant lookup rates live on the
  // QosPolicy's cache counters).
  double cache_hit_fraction = 0;
};

// Collects the record stream of one experiment run. Warmup records are kept
// (flagged `counted = false`) so callers can inspect the full stream, but
// every summary covers counted records only.
class Telemetry {
 public:
  virtual ~Telemetry() = default;

  // Called by the engine once per completed request, in completion order.
  // Non-virtual on purpose: the record is stored first (summaries always
  // see the full stream), then OnRecord notifies subclasses.
  void Record(const RequestRecord& rec) {
    records_.push_back(rec);
    OnRecord(rec);
  }

  const std::vector<RequestRecord>& records() const { return records_; }

  // Pre-sizes the record stream (the engine reserves its expected
  // completion count up front so steady-state Records never grow the
  // vector mid-run).
  void Reserve(size_t n) { records_.reserve(n); }

  // End-to-end latency (complete - issue) of counted *delivered* requests,
  // starting at record index `from` — an accumulating sink shared across
  // runs can be summarized per run (the engine passes its run's first
  // record index). Failed records contribute no sample: a timeout instant
  // measures the policy, not the system.
  LatencySummary EndToEndLatency(size_t from = 0) const;

  // Fraction of counted requests that delivered a response (1.0 on every
  // fault-free run).
  double Availability(size_t from = 0) const;

  // Accept-queue + propagation wait (admit - issue) of counted requests.
  LatencySummary QueueWait(size_t from = 0) const;

  // Fraction of counted requests served from the cache, starting at record
  // index `from` (same per-run slicing as the latency summaries).
  double CacheHitFraction(size_t from = 0) const;

  // Per-tenant breakdown of the counted records, ordered by tenant id.
  // Tenants with no counted records are omitted; a pre-QoS run (every
  // record tagged kDefaultTenant) yields a single entry equal to the
  // aggregate summaries.
  std::vector<TenantSummary> PerTenant(size_t from = 0) const;

  void Clear() { records_.clear(); }

 protected:
  // Override point for streaming sinks (live plots, disk spooling); fired
  // after the record is stored.
  virtual void OnRecord(const RequestRecord&) {}

 private:
  std::vector<RequestRecord> records_;
};

}  // namespace ioldrv

#endif  // SRC_DRIVER_TELEMETRY_H_
