#include "src/driver/cdn_tier.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "src/driver/telemetry.h"

namespace ioldrv {

namespace {

std::vector<iolhttp::HttpServer*> Members(const Fleet& fleet) {
  std::vector<iolhttp::HttpServer*> members;
  members.reserve(fleet.size());
  for (size_t i = 0; i < fleet.size(); ++i) {
    members.push_back(fleet.server(i));
  }
  return members;
}

}  // namespace

CdnTier::CdnTier(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net,
                 iolfs::FileIoService* io, iolite::IoLiteRuntime* runtime,
                 Fleet origins, iolcdn::CdnTopology topo,
                 iolproxy::ProxyConfig pconfig, ExperimentConfig config)
    : ctx_(ctx), origins_(std::move(origins)), topo_(std::move(topo)),
      authority_(ctx) {
  int num_levels = static_cast<int>(topo_.levels.size());
  if (num_levels < 1 || num_levels > iolsim::SimStats::kMaxCdnLevels) {
    std::fprintf(stderr, "CdnTier: need 1..%d levels (got %d)\n",
                 iolsim::SimStats::kMaxCdnLevels, num_levels);
    std::abort();
  }
  if (pconfig.backhaul != iolproxy::BackhaulMode::kRemote) {
    std::fprintf(stderr, "CdnTier: hierarchy levels must use kRemote backhaul\n");
    std::abort();
  }
  authority_.set_mode(topo_.protocol);
  proxies_.resize(num_levels);

  // Build top-down: a proxy's origins must exist before the proxy does.
  for (int level = num_levels - 1; level >= 0; --level) {
    const iolcdn::CdnLevelSpec& spec = topo_.levels[level];
    assert(spec.count >= 1);
    // Invalidations travel origin -> top -> ... -> this level: cumulative
    // one-way propagation over every uplink from here to the top.
    iolsim::SimTime inval_delay = 0;
    for (int k = level; k < num_levels; ++k) {
      inval_delay += topo_.levels[k].link_one_way_delay;
    }
    proxies_[level].reserve(spec.count);
    for (int i = 0; i < spec.count; ++i) {
      iolproxy::ProxyConfig pc = pconfig;
      pc.cache_bytes = spec.cache_bytes;
      pc.backhaul_bytes_per_sec = spec.link_bytes_per_sec;
      pc.backhaul_one_way_delay = spec.link_one_way_delay;
      std::vector<iolhttp::HttpServer*> parents;
      if (level == num_levels - 1) {
        parents = Members(origins_);
      } else {
        // Deterministic parenting: proxy i attaches to parent i % count.
        parents.push_back(proxies_[level + 1][i % proxies_[level + 1].size()].get());
      }
      auto proxy = std::make_unique<iolproxy::ProxyServer>(
          ctx_, net, io, runtime, std::move(parents), pc);
      if (level == num_levels - 1) {
        proxy->set_pick_origin([this](const std::vector<int>& load) {
          return origins_.PickServer(load);
        });
      }
      if (spec.shape_bytes_per_sec > 0) {
        shapers_.push_back(std::make_unique<iolqos::BackhaulShaper>(
            spec.shape_bytes_per_sec, spec.shape_burst_bytes));
        proxy->set_backhaul_shaper(shapers_.back().get());
      }
      if (topo_.protocol != iolproxy::ConsistencyMode::kNone) {
        iolproxy::ConsistencyConfig cc;
        cc.mode = topo_.protocol;
        cc.source = &authority_;
        cc.level = level;
        cc.ttl = topo_.ttl;
        proxy->ConfigureConsistency(cc);
        authority_.RegisterHolder(proxy.get(), inval_delay);
      }
      proxies_[level].push_back(std::move(proxy));
    }
  }

  // The experiment drives the edge tier. A single edge takes the exact
  // Fleet::Single fast path ProxyTier runs through.
  std::vector<iolhttp::HttpServer*> edges;
  edges.reserve(proxies_[0].size());
  for (auto& p : proxies_[0]) {
    edges.push_back(p.get());
  }
  experiment_ = std::make_unique<Experiment>(ctx_, net, &io->cache(),
                                             Fleet(std::move(edges)), config);
}

void CdnTier::ArmBackhaulFaults(const iolfault::FaultPlan& plan) {
  for (const iolfault::FaultEvent& e : plan.events()) {
    if (e.kind != iolfault::FaultKind::kBackhaulFlap) {
      continue;
    }
    for (int level = 0; level < level_count(); ++level) {
      if (e.target >= 0 && e.target != level) {
        continue;
      }
      for (auto& proxy : proxies_[level]) {
        proxy->AddBackhaulOutage(e.at, e.at + e.duration);
      }
    }
  }
}

ExperimentResult CdnTier::Run(Workload* workload,
                              Experiment::RequestSource next_file,
                              Telemetry* sink) {
  const iolsim::SimStats& stats = ctx_->stats();
  uint64_t proxy_hits0 = stats.proxy_cache_hits;
  uint64_t proxy_misses0 = stats.proxy_cache_misses;
  uint64_t backhaul_bytes0 = stats.backhaul_bytes;
  uint64_t backhaul_copied0 = stats.backhaul_bytes_copied;
  uint64_t writes0 = stats.cdn_writes;
  iolsim::SimStats::CdnLevelStats cdn0[iolsim::SimStats::kMaxCdnLevels];
  for (int l = 0; l < iolsim::SimStats::kMaxCdnLevels; ++l) {
    cdn0[l] = stats.cdn[l];
  }
  size_t record_from = sink != nullptr ? sink->records().size() : 0;

  if (write_plan_ != nullptr) {
    write_plan_->Arm(experiment_.get());
  }
  ExperimentResult result = experiment_->Run(workload, std::move(next_file), sink);

  // Aggregate proxy fields, ProxyTier semantics: every level's cache routes
  // to the proxy_cache_* counters, so the rates cover the whole hierarchy.
  uint64_t hits = stats.proxy_cache_hits - proxy_hits0;
  uint64_t misses = stats.proxy_cache_misses - proxy_misses0;
  if (hits + misses > 0) {
    result.proxy_hit_rate =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
  result.backhaul_bytes = stats.backhaul_bytes - backhaul_bytes0;
  result.bytes_copied_backhaul = stats.backhaul_bytes_copied - backhaul_copied0;
  result.cdn_writes = stats.cdn_writes - writes0;

  // Origin-fleet load and fetch latency come from the top level: its
  // fetches are the requests the hierarchy failed to absorb.
  int top = level_count() - 1;
  uint64_t origin_fetches = 0;
  uint64_t origin_hits = 0;
  Telemetry fetch_telemetry;
  for (auto& proxy : proxies_[top]) {
    origin_fetches += proxy->origin_fetches();
    origin_hits += proxy->origin_hits();
    for (const iolproxy::FetchRecord& f : proxy->fetches()) {
      RequestRecord rec;
      rec.issue = f.issue;
      rec.admit = f.admit;
      rec.complete = f.complete;
      rec.bytes = f.bytes;
      rec.server = f.origin;
      rec.cache_hit = f.origin_hit;
      rec.counted = f.complete > result.count_start;
      fetch_telemetry.Record(rec);
    }
  }
  result.origin_fleet_fetches = origin_fetches;
  if (origin_fetches > 0) {
    result.origin_hit_rate = static_cast<double>(origin_hits) /
                             static_cast<double>(origin_fetches);
  }
  result.origin_latency = fetch_telemetry.EndToEndLatency();

  // Per-level counters: the run's slice of the SimStats::cdn[] block.
  result.cdn_levels.resize(level_count());
  for (int l = 0; l < level_count(); ++l) {
    const iolsim::SimStats::CdnLevelStats& c = stats.cdn[l];
    ExperimentResult::CdnLevelResult& out = result.cdn_levels[l];
    out.proxies = proxies_at(l);
    uint64_t lh = c.hits - cdn0[l].hits;
    uint64_t lm = c.misses - cdn0[l].misses;
    if (lh + lm > 0) {
      out.hit_rate = static_cast<double>(lh) / static_cast<double>(lh + lm);
    }
    out.backhaul_bytes = c.backhaul_bytes - cdn0[l].backhaul_bytes;
    out.stale_serves = c.stale_serves - cdn0[l].stale_serves;
    out.invalidations_sent = c.invalidations_sent - cdn0[l].invalidations_sent;
    out.invalidations_applied =
        c.invalidations_applied - cdn0[l].invalidations_applied;
    out.revalidations = c.revalidations - cdn0[l].revalidations;
    out.revalidation_bytes = c.revalidation_bytes - cdn0[l].revalidation_bytes;
    out.fetch_races = c.fetch_races - cdn0[l].fetch_races;
    out.shaper_holds = c.shaper_holds - cdn0[l].shaper_holds;
  }

  // Staleness percentiles over every stale serve in the hierarchy, merged
  // in (level, proxy) order — deterministic, and Summarize sorts anyway.
  std::vector<iolsim::SimTime> ages;
  for (int l = 0; l < level_count(); ++l) {
    for (auto& proxy : proxies_[l]) {
      result.stale_serves += proxy->stale_serves();
      const std::vector<iolsim::SimTime>& s = proxy->staleness_samples();
      ages.insert(ages.end(), s.begin(), s.end());
    }
  }
  result.staleness = SummarizeSamples(std::move(ages));

  // Per-edge breakdown from the run's record stream (record.server is the
  // edge index: the experiment's fleet is the edge tier).
  const Telemetry& t = sink != nullptr ? *sink : experiment_->telemetry();
  size_t edges = proxies_[0].size();
  result.edges.assign(edges, ExperimentResult::EdgeBreakdown{});
  std::vector<std::vector<iolsim::SimTime>> lat(edges);
  std::vector<uint64_t> edge_hits(edges, 0);
  for (size_t i = record_from; i < t.records().size(); ++i) {
    const RequestRecord& r = t.records()[i];
    if (!r.counted || r.server >= edges) {
      continue;
    }
    ExperimentResult::EdgeBreakdown& e = result.edges[r.server];
    e.requests++;
    e.bytes += r.bytes;
    if (Delivered(r.outcome)) {
      lat[r.server].push_back(r.complete - r.issue);
    }
    edge_hits[r.server] += r.cache_hit ? 1 : 0;
  }
  for (size_t e = 0; e < edges; ++e) {
    result.edges[e].latency = SummarizeSamples(std::move(lat[e]));
    if (result.edges[e].requests > 0) {
      result.edges[e].cache_hit_fraction =
          static_cast<double>(edge_hits[e]) /
          static_cast<double>(result.edges[e].requests);
    }
  }
  return result;
}

}  // namespace ioldrv
