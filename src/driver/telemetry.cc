#include "src/driver/telemetry.h"

#include <algorithm>
#include <cmath>

namespace ioldrv {

namespace {

// Nearest-rank percentile of a sorted sample: the smallest value such that
// at least q of the sample is <= it. Exact (no interpolation), so tests can
// assert precise values from known service times.
double NearestRank(const std::vector<iolsim::SimTime>& sorted, double q) {
  if (sorted.empty()) {
    return 0;
  }
  size_t n = sorted.size();
  // rank = ceil(q * n), guarded against the product landing epsilon above
  // an integer and ceiling one rank too far.
  auto rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n) - 1e-9));
  if (rank < 1) {
    rank = 1;
  }
  if (rank > n) {
    rank = n;
  }
  return static_cast<double>(sorted[rank - 1]) / iolsim::kMillisecond;
}

LatencySummary Summarize(std::vector<iolsim::SimTime> samples) {
  LatencySummary s;
  s.count = samples.size();
  if (samples.empty()) {
    return s;
  }
  std::sort(samples.begin(), samples.end());
  double total = 0;
  for (iolsim::SimTime t : samples) {
    total += static_cast<double>(t);
  }
  s.mean_ms = total / static_cast<double>(samples.size()) / iolsim::kMillisecond;
  s.p50_ms = NearestRank(samples, 0.50);
  s.p90_ms = NearestRank(samples, 0.90);
  s.p99_ms = NearestRank(samples, 0.99);
  s.max_ms = static_cast<double>(samples.back()) / iolsim::kMillisecond;
  return s;
}

}  // namespace

LatencySummary Telemetry::EndToEndLatency(size_t from) const {
  std::vector<iolsim::SimTime> samples;
  if (from < records_.size()) {
    samples.reserve(records_.size() - from);
  }
  for (size_t i = from; i < records_.size(); ++i) {
    const RequestRecord& r = records_[i];
    if (r.counted && Delivered(r.outcome)) {
      samples.push_back(r.complete - r.issue);
    }
  }
  return Summarize(std::move(samples));
}

double Telemetry::Availability(size_t from) const {
  uint64_t counted = 0;
  uint64_t delivered = 0;
  for (size_t i = from; i < records_.size(); ++i) {
    const RequestRecord& r = records_[i];
    if (r.counted) {
      ++counted;
      delivered += Delivered(r.outcome) ? 1 : 0;
    }
  }
  return counted > 0 ? static_cast<double>(delivered) / static_cast<double>(counted)
                     : 1.0;
}

LatencySummary Telemetry::QueueWait(size_t from) const {
  std::vector<iolsim::SimTime> samples;
  if (from < records_.size()) {
    samples.reserve(records_.size() - from);
  }
  for (size_t i = from; i < records_.size(); ++i) {
    const RequestRecord& r = records_[i];
    if (r.counted && Delivered(r.outcome)) {
      samples.push_back(r.admit - r.issue);
    }
  }
  return Summarize(std::move(samples));
}

double Telemetry::CacheHitFraction(size_t from) const {
  uint64_t counted = 0;
  uint64_t hits = 0;
  for (size_t i = from; i < records_.size(); ++i) {
    const RequestRecord& r = records_[i];
    if (r.counted) {
      ++counted;
      hits += r.cache_hit ? 1 : 0;
    }
  }
  return counted > 0 ? static_cast<double>(hits) / static_cast<double>(counted) : 0;
}

std::vector<TenantSummary> Telemetry::PerTenant(size_t from) const {
  // Pass 1: which tenants appear, and how many counted records each has.
  iolsim::TenantId max_tenant = 0;
  for (size_t i = from; i < records_.size(); ++i) {
    if (records_[i].counted && records_[i].tenant > max_tenant) {
      max_tenant = records_[i].tenant;
    }
  }
  std::vector<std::vector<iolsim::SimTime>> samples(max_tenant + 1);
  std::vector<TenantSummary> out(max_tenant + 1);
  std::vector<uint64_t> hits(max_tenant + 1, 0);
  for (size_t i = from; i < records_.size(); ++i) {
    const RequestRecord& r = records_[i];
    if (!r.counted) {
      continue;
    }
    TenantSummary& s = out[r.tenant];
    s.tenant = r.tenant;
    ++s.requests;
    s.bytes += r.bytes;
    hits[r.tenant] += r.cache_hit ? 1 : 0;
    if (Delivered(r.outcome)) {
      samples[r.tenant].push_back(r.complete - r.issue);
    }
  }
  std::vector<TenantSummary> present;
  for (iolsim::TenantId t = 0; t <= max_tenant; ++t) {
    if (out[t].requests == 0) {
      continue;
    }
    out[t].latency = Summarize(std::move(samples[t]));
    out[t].cache_hit_fraction =
        static_cast<double>(hits[t]) / static_cast<double>(out[t].requests);
    present.push_back(std::move(out[t]));
  }
  return present;
}

LatencySummary SummarizeSamples(std::vector<iolsim::SimTime> samples) {
  return Summarize(std::move(samples));
}

}  // namespace ioldrv
