#include "src/driver/sharded_experiment.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/httpd/request_pipeline.h"

namespace ioldrv {

namespace {

// Cross-lane protocol. Payload packing: FileId is int64_t and all times are
// SimTime (int64_t), so everything rides the ShardMsg uint64 fields.
constexpr uint32_t kRequest = 1;   // frontend → member: a=client, b=file.
constexpr uint32_t kResponse = 2;  // member → frontend: a=client, b=bytes,
                                   //   c=admit time, d=cache_hit.

constexpr uint32_t kFrontendLane = 0;

// The lane plumbing shared by the frontend and the members: an event queue
// view plus a pooled ShardMsg buffer, so delivering a message costs one
// slot index in the scheduled callback's capture (a ShardMsg itself would
// not fit an InlineCallback).
class LaneCore : public iolsim::ShardLane {
 public:
  LaneCore(iolsim::VirtualClock* clock, iolsim::EventQueue* events)
      : clock_(clock), events_(events) {}

  iolsim::SimTime NextEventAt() override {
    iolsim::SimTime when;
    return events_->PeekWhen(&when) ? when : iolsim::kShardIdle;
  }

  void RunWindow(iolsim::SimTime end) override {
    // Strictly-before: events at exactly `end` belong to the next window.
    // The clock is left at the last dispatched event, never pushed to
    // `end` — later arrivals must not be clamped forward.
    iolsim::SimTime when;
    while (events_->PeekWhen(&when) && when < end) {
      events_->RunOne();
    }
  }

  void OnMessage(const iolsim::ShardMsg& msg) override {
    uint32_t slot;
    if (!free_msgs_.empty()) {
      slot = free_msgs_.back();
      free_msgs_.pop_back();
      msgs_[slot] = msg;
    } else {
      slot = static_cast<uint32_t>(msgs_.size());
      msgs_.push_back(msg);
    }
    events_->ScheduleAt(msg.when, [this, slot] {
      iolsim::ShardMsg m = msgs_[slot];
      free_msgs_.push_back(slot);
      HandleMsg(m);
    });
  }

 protected:
  virtual void HandleMsg(const iolsim::ShardMsg& msg) = 0;

  iolsim::SimTime now() const { return clock_->now(); }

  iolsim::VirtualClock* clock_;
  iolsim::EventQueue* events_;

 private:
  std::vector<iolsim::ShardMsg> msgs_;
  std::vector<uint32_t> free_msgs_;
};

}  // namespace

// One fleet member: its own machine, server, connection pool, and the
// legacy admission discipline (max_concurrent + FIFO accept queue).
class ShardedExperiment::MemberLane : public LaneCore {
 public:
  MemberLane(ShardMember* member, size_t index, size_t fleet_size,
             const ExperimentConfig* config)
      : LaneCore(&member->sys->ctx().clock(), &member->sys->ctx().events()),
        sys_(member->sys.get()),
        server_(member->server.get()),
        lane_(static_cast<uint32_t>(index + 1)),
        fleet_size_(fleet_size),
        config_(config) {}

  void Bind(iolsim::ShardRunner* runner) { runner_ = runner; }

  int peak_concurrent() const { return peak_; }
  uint64_t admission_waits() const { return admission_waits_; }

 private:
  // One in-flight request. Slots live in a deque so RequestContext
  // addresses stay stable while the pool grows; on_done is wired once at
  // slot birth and reused across requests, like the legacy engine's lanes.
  struct Slot {
    uint64_t client = 0;
    iolsim::SimTime admit = 0;
    size_t conn = 0;
    iolhttp::RequestContext req;
  };

  void HandleMsg(const iolsim::ShardMsg& msg) override {
    assert(msg.kind == kRequest);
    uint32_t slot = AllocSlot();
    Slot& s = slots_[slot];
    s.client = msg.a;
    s.req.file = static_cast<iolfs::FileId>(msg.b);
    if (config_->max_concurrent > 0 && in_service_ >= config_->max_concurrent) {
      accept_queue_.push_back(slot);
      ++admission_waits_;
      return;
    }
    Serve(slot);
  }

  void Serve(uint32_t slot) {
    Slot& s = slots_[slot];
    ++in_service_;
    if (in_service_ > peak_) {
      peak_ = in_service_;
    }
    s.admit = now();
    s.conn = AcquireConn(s.client);
    s.req.conn = conns_[s.conn].get();
    s.req.response_bytes = 0;
    s.req.cache_hit = false;
    if (!s.req.conn->connected()) {
      // Handshake CPU is a pipeline stage, as in the legacy engine; the
      // handshake round trip is charged with the response delay below.
      iolnet::TcpConnection* conn = s.req.conn;
      iolhttp::RunCpuStage(
          &sys_->ctx(), [conn] { conn->Connect(); },
          [this, slot] { server_->StartRequest(&slots_[slot].req); });
    } else {
      server_->StartRequest(&s.req);
    }
  }

  void OnServerDone(uint32_t slot) {
    Slot& s = slots_[slot];
    uint64_t bytes = s.req.response_bytes;
    bool hit = s.req.cache_hit;
    uint64_t client = s.client;
    iolsim::SimTime admit = s.admit;
    if (!config_->persistent_connections) {
      s.req.conn->Close();
      free_conns_.push_back(s.conn);
    }
    --in_service_;
    if (!accept_queue_.empty()) {
      uint32_t waiting = accept_queue_.front();
      accept_queue_.pop_front();
      Serve(waiting);
    }
    free_slots_.push_back(slot);
    // Response propagation, plus one handshake round trip for
    // nonpersistent connections — both at or above the lookahead.
    iolsim::SimTime respond_delay = config_->delay.one_way_delay;
    if (!config_->persistent_connections) {
      respond_delay += config_->delay.RoundTrip();
    }
    iolsim::ShardMsg r;
    r.when = now() + respond_delay;
    r.kind = kResponse;
    r.a = client;
    r.b = bytes;
    r.c = static_cast<uint64_t>(admit);
    r.d = hit ? 1 : 0;
    runner_->Send(lane_, kFrontendLane, r);
  }

  uint32_t AllocSlot() {
    if (!free_slots_.empty()) {
      uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    uint32_t slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
    slots_[slot].req.on_done = [this, slot](iolhttp::RequestContext*) {
      OnServerDone(slot);
    };
    return slot;
  }

  // Persistent runs pin client c to connection c / fleet_size (the c-th
  // client of this member); nonpersistent runs recycle a free pool.
  size_t AcquireConn(uint64_t client) {
    if (config_->persistent_connections) {
      size_t local = static_cast<size_t>(client) / fleet_size_;
      while (pinned_.size() <= local) {
        pinned_.push_back(NewConn());
      }
      return pinned_[local];
    }
    if (!free_conns_.empty()) {
      size_t idx = free_conns_.back();
      free_conns_.pop_back();
      return idx;
    }
    return NewConn();
  }

  size_t NewConn() {
    conns_.push_back(std::make_unique<iolnet::TcpConnection>(
        &sys_->net(), server_->uses_iolite_sockets()));
    return conns_.size() - 1;
  }

  iolsys::System* sys_;
  iolhttp::HttpServer* server_;
  uint32_t lane_;
  size_t fleet_size_;
  const ExperimentConfig* config_;
  iolsim::ShardRunner* runner_ = nullptr;

  std::deque<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  std::vector<std::unique_ptr<iolnet::TcpConnection>> conns_;
  std::vector<size_t> free_conns_;
  std::vector<size_t> pinned_;
  std::deque<uint32_t> accept_queue_;
  int in_service_ = 0;
  int peak_ = 0;
  uint64_t admission_waits_ = 0;
};

// The client population: issues per the Workload, receives responses,
// timestamps records, and owns the warmup / count / stop bookkeeping —
// the exact discipline of Experiment::OnClientReceive.
class ShardedExperiment::FrontendLane : public LaneCore {
 public:
  FrontendLane(size_t fleet_size, const ExperimentConfig* config,
               Telemetry* telemetry)
      : LaneCore(&front_clock_, nullptr),
        fleet_size_(fleet_size),
        config_(config),
        telemetry_(telemetry),
        events_storage_(&front_clock_, &dispatched_) {
    events_ = &events_storage_;
    share_.assign(fleet_size_, ServerShare{});
  }

  void Bind(iolsim::ShardRunner* runner) { runner_ = runner; }

  // Seeds the initial events; the runner's first window dispatches them.
  void Start(Workload* workload, RequestSource next_file) {
    workload_ = workload;
    next_file_ = std::move(next_file);
    int clients = workload_->initial_clients();
    for (int c = 0; c < clients; ++c) {
      AddClient();
    }
    if (workload_->closed_loop()) {
      for (int c = 0; c < clients; ++c) {
        uint64_t client = static_cast<uint64_t>(c);
        events_->ScheduleAt(0, [this, client] { Issue(client); });
      }
    } else {
      for (size_t c = in_flight_.size(); c-- > 0;) {
        free_clients_.push_back(c);
      }
      ScheduleNextArrival();
    }
  }

  uint64_t dispatched() const { return dispatched_; }
  uint64_t counted_requests() const { return counted_requests_; }
  uint64_t counted_bytes() const { return counted_bytes_; }
  iolsim::SimTime count_start() const { return count_start_; }
  iolsim::SimTime end_time() const { return done_ ? done_at_ : front_clock_.now(); }
  const std::vector<ServerShare>& share() const { return share_; }

 private:
  struct InFlight {
    iolsim::SimTime issue = 0;
  };

  void AddClient() { in_flight_.emplace_back(); }

  void Issue(uint64_t client) {
    if (done_) {
      return;
    }
    iolfs::FileId probe;
    if (workload_->NextFile(&probe)) {
      std::fprintf(stderr,
                   "ShardedExperiment: workload-pinned files (trace replay) "
                   "are not supported on the sharded engine\n");
      std::abort();
    }
    in_flight_[client].issue = now();
    iolsim::ShardMsg m;
    m.when = now() + config_->delay.one_way_delay;
    m.kind = kRequest;
    m.a = client;
    m.b = static_cast<uint64_t>(next_file_());
    runner_->Send(kFrontendLane, MemberLaneOf(client), m);
  }

  uint32_t MemberLaneOf(uint64_t client) const {
    return static_cast<uint32_t>(1 + client % fleet_size_);
  }

  void ScheduleNextArrival() {
    if (done_) {
      return;
    }
    iolsim::SimTime at = 0;
    if (!workload_->NextArrival(front_clock_.now(), &at)) {
      return;  // Stream exhausted: the run drains and ends.
    }
    events_->ScheduleAt(at, [this] {
      if (done_) {
        return;
      }
      uint64_t client;
      if (!free_clients_.empty()) {
        client = free_clients_.back();
        free_clients_.pop_back();
      } else {
        client = in_flight_.size();
        AddClient();
      }
      Issue(client);
      ScheduleNextArrival();
    });
  }

  void HandleMsg(const iolsim::ShardMsg& msg) override {
    assert(msg.kind == kResponse);
    if (done_) {
      return;
    }
    uint64_t client = msg.a;
    ++completed_;
    RequestRecord rec;
    rec.issue = in_flight_[client].issue;
    rec.complete = now();
    rec.admit = static_cast<iolsim::SimTime>(msg.c);
    rec.bytes = static_cast<size_t>(msg.b);
    rec.server = static_cast<size_t>(client % fleet_size_);
    rec.cache_hit = msg.d != 0;
    rec.counted = completed_ > config_->warmup_requests;
    telemetry_->Record(rec);
    if (!rec.counted) {
      if (completed_ == config_->warmup_requests) {
        count_start_ = now();
      }
    } else {
      ++counted_requests_;
      counted_bytes_ += rec.bytes;
      share_[rec.server].requests++;
      share_[rec.server].bytes += rec.bytes;
      if (counted_requests_ >= config_->max_requests) {
        done_ = true;
        done_at_ = now();
        return;
      }
    }
    if (workload_->closed_loop()) {
      Issue(client);
    } else {
      free_clients_.push_back(client);
    }
  }

  iolsim::VirtualClock front_clock_;
  uint64_t dispatched_ = 0;
  iolsim::EventQueue events_storage_;
  size_t fleet_size_;
  const ExperimentConfig* config_;
  Telemetry* telemetry_;
  iolsim::ShardRunner* runner_ = nullptr;
  Workload* workload_ = nullptr;
  RequestSource next_file_;

  std::vector<InFlight> in_flight_;
  std::vector<uint64_t> free_clients_;
  std::vector<ServerShare> share_;
  uint64_t completed_ = 0;
  uint64_t counted_requests_ = 0;
  uint64_t counted_bytes_ = 0;
  iolsim::SimTime count_start_ = 0;
  iolsim::SimTime done_at_ = 0;
  bool done_ = false;
};

ShardedExperiment::ShardedExperiment(size_t members, ShardMemberFactory factory,
                                     ExperimentConfig config)
    : member_count_(members), config_(config) {
  assert(members > 0);
  if (config_.delay.one_way_delay <= 0) {
    std::fprintf(stderr,
                 "ShardedExperiment: one_way_delay must be > 0 — it is the "
                 "conservative lookahead between shards\n");
    std::abort();
  }
  assert(!config_.enforce_cache_budget &&
         "cache-budget enforcement is a single-machine memory-model feature");
  // Members are built sequentially here, on the calling thread: global
  // construction-order state (e.g. BufferPool's pool-seed counter) must not
  // depend on the thread schedule.
  members_.reserve(members);
  for (size_t m = 0; m < members; ++m) {
    members_.push_back(factory(m));
  }
  frontend_ = std::make_unique<FrontendLane>(members, &config_, &telemetry_);
  member_lanes_.reserve(members);
  for (size_t m = 0; m < members; ++m) {
    member_lanes_.push_back(
        std::make_unique<MemberLane>(&members_[m], m, members, &config_));
  }
}

ShardedExperiment::~ShardedExperiment() = default;

ShardedResult ShardedExperiment::Run(Workload* workload, RequestSource next_file) {
  if (ran_) {
    std::fprintf(stderr, "ShardedExperiment: Run() called twice on the same instance\n");
    std::abort();
  }
  ran_ = true;
  assert(workload->pipeline_depth() <= 1 ||
         !config_.persistent_connections);  // Pipelining needs per-conn order.
  workload->Reset();
  telemetry_.Reserve(config_.max_requests + config_.warmup_requests);

  std::vector<iolsim::ShardLane*> lanes;
  lanes.push_back(frontend_.get());
  for (auto& m : member_lanes_) {
    lanes.push_back(m.get());
  }
  iolsim::ShardRunner::Options options;
  options.threads = config_.shard_count;
  options.lookahead = config_.delay.one_way_delay;
  iolsim::ShardRunner runner(lanes, options);
  frontend_->Bind(&runner);
  for (auto& m : member_lanes_) {
    m->Bind(&runner);
  }

  std::chrono::steady_clock::time_point wall_start = std::chrono::steady_clock::now();
  frontend_->Start(workload, std::move(next_file));
  iolsim::ShardRunner::Stats shard_stats = runner.Run();

  ShardedResult out;
  out.shard = shard_stats;
  ExperimentResult& result = out.result;
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  result.requests = frontend_->counted_requests();
  result.bytes = frontend_->counted_bytes();
  result.count_start = frontend_->count_start();
  result.seconds = iolsim::ToSeconds(frontend_->end_time() - frontend_->count_start());
  if (result.seconds > 0) {
    result.megabits_per_sec =
        static_cast<double>(result.bytes) * 8.0 / 1e6 / result.seconds;
  }
  result.latency = telemetry_.EndToEndLatency();
  result.cache_hit_fraction = telemetry_.CacheHitFraction();
  result.per_server = frontend_->share();

  out.lane_events.push_back(frontend_->dispatched());
  result.events_dispatched = frontend_->dispatched();
  uint64_t hits = 0;
  uint64_t lookups = 0;
  for (size_t m = 0; m < member_count_; ++m) {
    const iolsim::SimStats& stats = members_[m].sys->ctx().stats();
    out.lane_events.push_back(stats.events_dispatched);
    result.events_dispatched += stats.events_dispatched;
    hits += stats.cache_hits;
    lookups += stats.cache_hits + stats.cache_misses;
    result.per_server[m].peak_concurrent = member_lanes_[m]->peak_concurrent();
    // Fleet-wide concurrency: members are independent machines here, so
    // the sum of per-member peaks is the deterministic upper envelope.
    result.peak_concurrent += member_lanes_[m]->peak_concurrent();
    result.admission_waits += member_lanes_[m]->admission_waits();
  }
  if (lookups > 0) {
    result.cache_hit_rate = static_cast<double>(hits) / static_cast<double>(lookups);
  }
  return out;
}

}  // namespace ioldrv
