// EdgeMix: per-edge client populations for the CDN hierarchy (src/cdn).
//
// The geographic sibling of TenantMix: each edge proxy fronts its own
// closed-loop client population with its own file-request stream (its own
// Zipf mix — one metro's hot set is not another's), and every client is
// pinned to its edge via Workload::PinMember, so the engine never balances
// a client across the edge fleet. The engine resolves the population via
// TenantOf (called immediately before NextFile for the same arrival),
// which is how NextFile knows whose stream to draw from — the same
// last-resolved-spec idiom TenantMix uses.

#ifndef SRC_DRIVER_EDGE_MIX_H_
#define SRC_DRIVER_EDGE_MIX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/driver/workload.h"

namespace ioldrv {

// One edge's client population.
struct EdgePopulationSpec {
  std::string name;
  // Closed-loop clients attached to this edge.
  int clients = 1;
  // Per-request file source for this edge's clients (its own Zipf mix).
  std::function<iolfs::FileId()> next_file;
};

class EdgeMix : public Workload {
 public:
  explicit EdgeMix(std::vector<EdgePopulationSpec> specs)
      : specs_(std::move(specs)) {
    client_begin_.reserve(specs_.size() + 1);
    client_begin_.push_back(0);
    for (const EdgePopulationSpec& s : specs_) {
      total_clients_ += s.clients;
      client_begin_.push_back(static_cast<size_t>(total_clients_));
    }
  }

  const char* name() const override { return "edge-mix"; }
  int initial_clients() const override { return total_clients_; }
  bool closed_loop() const override { return true; }

  iolsim::TenantId TenantOf(size_t client, uint64_t /*issue_seq*/) override {
    last_edge_ = EdgeOf(client);
    return iolsim::kDefaultTenant;
  }

  bool NextFile(iolfs::FileId* file) override {
    *file = specs_[last_edge_].next_file();
    return true;
  }

  bool PinMember(size_t client, size_t* member) override {
    *member = EdgeOf(client);
    return true;
  }

  size_t edge_count() const { return specs_.size(); }
  const EdgePopulationSpec& spec(size_t edge) const { return specs_[edge]; }

  // Edge owning `client`: populations occupy contiguous client-index
  // ranges, in spec order.
  size_t EdgeOf(size_t client) const {
    size_t edge = 0;
    while (edge + 1 < specs_.size() && client >= client_begin_[edge + 1]) {
      ++edge;
    }
    return edge;
  }

 private:
  std::vector<EdgePopulationSpec> specs_;
  std::vector<size_t> client_begin_;  // Edge i owns [begin[i], begin[i+1]).
  int total_clients_ = 0;
  size_t last_edge_ = 0;  // Edge resolved by the latest TenantOf.
};

}  // namespace ioldrv

#endif  // SRC_DRIVER_EDGE_MIX_H_
