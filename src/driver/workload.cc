#include "src/driver/workload.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace ioldrv {

bool Workload::NextArrival(iolsim::SimTime /*now*/, iolsim::SimTime* /*at*/) {
  return false;
}

bool Workload::NextFile(iolfs::FileId* /*file*/) { return false; }

OpenLoopPoisson::OpenLoopPoisson(double arrivals_per_sec, uint64_t seed, int initial_pool,
                                 int pipeline_depth)
    : rate_(arrivals_per_sec),
      seed_(seed),
      pool_(initial_pool),
      depth_(pipeline_depth),
      rng_(seed) {
  if (!(rate_ > 0)) {
    std::fprintf(stderr, "OpenLoopPoisson: arrivals_per_sec must be > 0 (got %g)\n", rate_);
    std::abort();
  }
}

bool OpenLoopPoisson::NextArrival(iolsim::SimTime now, iolsim::SimTime* at) {
  *at = now + iolsim::ExponentialInterarrival(&rng_, rate_);
  return true;
}

TraceReplay::TraceReplay(const iolwl::TimestampedLog* log, std::vector<iolfs::FileId> ids,
                         int initial_pool)
    : log_(log), ids_(std::move(ids)), pool_(initial_pool) {}

bool TraceReplay::NextArrival(iolsim::SimTime now, iolsim::SimTime* at) {
  if (cursor_ >= log_->entries.size()) {
    return false;
  }
  const iolwl::TimestampedLog::Entry& e = log_->entries[cursor_++];
  if (e.rank >= ids_.size()) {
    // A parsed foreign log can name ranks the materialized trace does not
    // have; die with a usable message instead of an uncaught exception.
    std::fprintf(stderr, "TraceReplay: log entry %zu names rank %u, but only %zu files\n",
                 cursor_ - 1, e.rank, ids_.size());
    std::abort();
  }
  // A log instant already in the past (e.g. service lagging the log under
  // overload) fires immediately — arrivals are never dropped or reordered.
  *at = e.at > now ? e.at : now;
  pending_.push_back(ids_[e.rank]);
  return true;
}

bool TraceReplay::NextFile(iolfs::FileId* file) {
  if (pending_.empty()) {
    return false;
  }
  *file = pending_.front();
  pending_.pop_front();
  return true;
}

}  // namespace ioldrv
