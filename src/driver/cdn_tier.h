// CdnTier: the N-level composition of the experiment API (src/cdn).
//
// Mirrors ProxyTier one level up: where ProxyTier wires one ProxyServer in
// front of an origin Fleet, CdnTier wires a CdnTopology of them — an edge
// tier clients talk to, interior levels those edges fetch through, and a
// top level that fetches from the origin fleet via its balancer. Clients
// pin to their edge (Workload::PinMember; EdgeMix populations), every
// interior link runs the topology's consistency protocol against one
// VersionAuthority, and per-level backhaul shaping attaches where the
// topology asks for it.
//
// The degenerate one-level, one-proxy topology constructs exactly the
// ProxyTier wiring — same ProxyServer arguments, same Fleet::Single fast
// path in the engine — so a zero-write CDN run is byte-identical to the
// PR 5 proxy tier (tests/cdn_test.cc pins this).

#ifndef SRC_DRIVER_CDN_TIER_H_
#define SRC_DRIVER_CDN_TIER_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/cdn/cdn_topology.h"
#include "src/cdn/version_authority.h"
#include "src/cdn/write_plan.h"
#include "src/driver/experiment.h"
#include "src/driver/fleet.h"
#include "src/proxy/proxy_server.h"
#include "src/qos/backhaul_shaper.h"

namespace ioldrv {

class CdnTier {
 public:
  // `origins` is the fleet behind the top proxy level; `topo` shapes the
  // tree; `pconfig` supplies everything CdnLevelSpec does not override
  // (data path, CPU costs, fail_open). The System pieces must outlive the
  // tier. `topo.levels` must be non-empty, each level's count >= 1, and
  // levels.size() <= SimStats::kMaxCdnLevels.
  CdnTier(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net,
          iolfs::FileIoService* io, iolite::IoLiteRuntime* runtime, Fleet origins,
          iolcdn::CdnTopology topo, iolproxy::ProxyConfig pconfig,
          ExperimentConfig config);

  // Attaches a deterministic origin write process; armed at Run. Not owned.
  void set_write_plan(iolcdn::WritePlan* plan) { write_plan_ = plan; }

  // Runs `workload` against the edge tier (one run per instance). The
  // result carries the proxy fields aggregated over every level plus the
  // cdn_levels / staleness / per-edge blocks.
  ExperimentResult Run(Workload* workload, Experiment::RequestSource next_file,
                       Telemetry* sink = nullptr);

  // --- Fault plane (src/cdn satellite) -------------------------------------
  // Arms every kBackhaulFlap of the plan onto the hierarchy: an event whose
  // `target` names a level flaps every uplink at that level; target -1
  // flaps every level. (The engine's ArmFaults skips flap events; the
  // hierarchy owns its backhaul wires, so they are armed here.)
  void ArmBackhaulFaults(const iolfault::FaultPlan& plan);

  iolcdn::VersionAuthority& authority() { return authority_; }
  // Proxy `i` at `level` (level 0 = edges).
  iolproxy::ProxyServer& proxy(int level, int i) { return *proxies_[level][i]; }
  int level_count() const { return static_cast<int>(proxies_.size()); }
  int proxies_at(int level) const {
    return static_cast<int>(proxies_[level].size());
  }

 private:
  iolsim::SimContext* ctx_;
  Fleet origins_;
  iolcdn::CdnTopology topo_;
  iolcdn::VersionAuthority authority_;
  // proxies_[level][i]; level 0 = edge tier.
  std::vector<std::vector<std::unique_ptr<iolproxy::ProxyServer>>> proxies_;
  std::vector<std::unique_ptr<iolqos::BackhaulShaper>> shapers_;
  iolcdn::WritePlan* write_plan_ = nullptr;
  std::unique_ptr<Experiment> experiment_;
};

}  // namespace ioldrv

#endif  // SRC_DRIVER_CDN_TIER_H_
