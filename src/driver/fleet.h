// Fleet: the server axis of an experiment.
//
// A Fleet is N server instances behind a pluggable load-balancer policy.
// The members share one simulated machine's front link (and, per the cost
// model, its CPU/disk service units — scale CostParams::cpu_count and
// disk_count with the fleet to model one machine per member), so copy-based
// and IO-Lite fleets can be compared under a single client population. The
// balancer picks a member per request, at arrival, from the members'
// current load (in service + waiting in that member's accept queue).

#ifndef SRC_DRIVER_FLEET_H_
#define SRC_DRIVER_FLEET_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/httpd/http_server.h"

namespace ioldrv {

// A member whose load reads kEjected has been ejected by the health checker
// (fault plane, src/fault): balancers skip it. If every member is ejected,
// balancers fall back to their normal pick — arrivals must go somewhere,
// and a uniformly-dead fleet has no better choice.
inline constexpr int kEjected = -1;

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;
  virtual const char* name() const = 0;
  // Picks the member for an arriving request; `load[i]` counts requests in
  // service at or queued for member i, or kEjected for a health-ejected
  // member. Must return an index < load.size().
  virtual size_t Pick(const std::vector<int>& load) = 0;
};

// Cycles through the members regardless of load.
class RoundRobinBalancer : public LoadBalancer {
 public:
  const char* name() const override { return "round-robin"; }
  size_t Pick(const std::vector<int>& load) override {
    if (load.empty()) {
      return 0;
    }
    size_t n = load.size();
    size_t pick = next_++ % n;
    // Skip ejected members, at most one lap (all-ejected: keep the pick).
    for (size_t i = 0; i < n && load[pick] == kEjected; ++i) {
      pick = next_++ % n;
    }
    return pick;
  }

 private:
  size_t next_ = 0;
};

// Picks the least-loaded member. Ties resolve by scanning from the slot
// after the previous pick, so an all-idle fleet degenerates to round-robin
// instead of hammering member 0.
class LeastConnectionsBalancer : public LoadBalancer {
 public:
  const char* name() const override { return "least-connections"; }
  size_t Pick(const std::vector<int>& load) override;

 private:
  size_t last_ = 0;
};

// N servers (non-owning) plus the balancer that spreads requests over them.
// Homogeneous fleets are assumed for memory accounting: member 0's
// per-connection footprint and socket data path stand for all members.
class Fleet {
 public:
  explicit Fleet(std::vector<iolhttp::HttpServer*> servers,
                 std::unique_ptr<LoadBalancer> balancer = nullptr);

  // The degenerate single-server fleet (every classic experiment).
  static Fleet Single(iolhttp::HttpServer* server) {
    return Fleet(std::vector<iolhttp::HttpServer*>{server});
  }

  size_t size() const { return servers_.size(); }
  iolhttp::HttpServer* server(size_t i) const { return servers_[i]; }
  const char* balancer_name() const { return balancer_->name(); }

  size_t PickServer(const std::vector<int>& load) {
    return balancer_->Pick(load) % servers_.size();
  }

 private:
  std::vector<iolhttp::HttpServer*> servers_;
  std::unique_ptr<LoadBalancer> balancer_;
};

}  // namespace ioldrv

#endif  // SRC_DRIVER_FLEET_H_
