#include "src/driver/fleet.h"

#include <cassert>
#include <utility>

namespace ioldrv {

size_t LeastConnectionsBalancer::Pick(const std::vector<int>& load) {
  if (load.empty()) {
    return 0;
  }
  size_t n = load.size();
  size_t best = (last_ + 1) % n;
  for (size_t i = 1; i < n; ++i) {
    size_t candidate = (last_ + 1 + i) % n;
    if (load[candidate] < load[best]) {
      best = candidate;
    }
  }
  last_ = best;
  return best;
}

Fleet::Fleet(std::vector<iolhttp::HttpServer*> servers,
             std::unique_ptr<LoadBalancer> balancer)
    : servers_(std::move(servers)), balancer_(std::move(balancer)) {
  assert(!servers_.empty());
  // The engine builds every client connection against member 0's socket
  // data path; a mixed fleet would silently measure some members over the
  // wrong transport, so fail loudly instead.
  for (iolhttp::HttpServer* s : servers_) {
    (void)s;
    assert(s->uses_iolite_sockets() == servers_[0]->uses_iolite_sockets() &&
           "Fleet members must share one socket data path (homogeneous fleets)");
  }
  if (balancer_ == nullptr) {
    balancer_ = std::make_unique<RoundRobinBalancer>();
  }
}

}  // namespace ioldrv
