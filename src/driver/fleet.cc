#include "src/driver/fleet.h"

#include <cassert>
#include <utility>

namespace ioldrv {

size_t LeastConnectionsBalancer::Pick(const std::vector<int>& load) {
  if (load.empty()) {
    return 0;
  }
  size_t n = load.size();
  // Least-loaded among non-ejected members, ties scanning from the slot
  // after the previous pick. kEjected is negative, so it would win every
  // "least" comparison — exactly the black-hole-attraction pathology the
  // health checker exists to prevent — hence the explicit skip. If every
  // member is ejected, fall back to the plain scan (kEjected everywhere
  // compares equal, so this degenerates to round-robin over a dead fleet).
  size_t best = n;  // No eligible member seen yet.
  for (size_t i = 0; i < n; ++i) {
    size_t candidate = (last_ + 1 + i) % n;
    if (load[candidate] == kEjected) {
      continue;
    }
    if (best == n || load[candidate] < load[best]) {
      best = candidate;
    }
  }
  if (best == n) {
    best = (last_ + 1) % n;
  }
  last_ = best;
  return best;
}

Fleet::Fleet(std::vector<iolhttp::HttpServer*> servers,
             std::unique_ptr<LoadBalancer> balancer)
    : servers_(std::move(servers)), balancer_(std::move(balancer)) {
  assert(!servers_.empty());
  // The engine builds every client connection against member 0's socket
  // data path; a mixed fleet would silently measure some members over the
  // wrong transport, so fail loudly instead.
  for (iolhttp::HttpServer* s : servers_) {
    (void)s;
    assert(s->uses_iolite_sockets() == servers_[0]->uses_iolite_sockets() &&
           "Fleet members must share one socket data path (homogeneous fleets)");
  }
  if (balancer_ == nullptr) {
    balancer_ = std::make_unique<RoundRobinBalancer>();
  }
}

}  // namespace ioldrv
