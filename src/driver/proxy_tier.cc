#include "src/driver/proxy_tier.h"

namespace ioldrv {

namespace {

std::vector<iolhttp::HttpServer*> Members(const Fleet& fleet) {
  std::vector<iolhttp::HttpServer*> members;
  members.reserve(fleet.size());
  for (size_t i = 0; i < fleet.size(); ++i) {
    members.push_back(fleet.server(i));
  }
  return members;
}

}  // namespace

ProxyTier::ProxyTier(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net,
                     iolfs::FileIoService* io, iolite::IoLiteRuntime* runtime,
                     Fleet origins, iolproxy::ProxyConfig pconfig,
                     ExperimentConfig config)
    : ctx_(ctx),
      origins_(std::move(origins)),
      proxy_(std::make_unique<iolproxy::ProxyServer>(ctx, net, io, runtime,
                                                     Members(origins_), pconfig)),
      experiment_(ctx, net, &io->cache(), proxy_.get(), config) {
  // The origin fleet's balancer routes backhaul fetches.
  proxy_->set_pick_origin(
      [this](const std::vector<int>& load) { return origins_.PickServer(load); });
}

ExperimentResult ProxyTier::Run(Workload* workload,
                                Experiment::RequestSource next_file, Telemetry* sink) {
  const iolsim::SimStats& stats = ctx_->stats();
  uint64_t proxy_hits0 = stats.proxy_cache_hits;
  uint64_t proxy_misses0 = stats.proxy_cache_misses;
  uint64_t backhaul_bytes0 = stats.backhaul_bytes;
  uint64_t backhaul_copied0 = stats.backhaul_bytes_copied;

  ExperimentResult result = experiment_.Run(workload, std::move(next_file), sink);

  uint64_t hits = stats.proxy_cache_hits - proxy_hits0;
  uint64_t misses = stats.proxy_cache_misses - proxy_misses0;
  if (hits + misses > 0) {
    result.proxy_hit_rate =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
  if (proxy_->origin_fetches() > 0) {
    result.origin_hit_rate = static_cast<double>(proxy_->origin_hits()) /
                             static_cast<double>(proxy_->origin_fetches());
  }
  result.backhaul_bytes = stats.backhaul_bytes - backhaul_bytes0;
  result.bytes_copied_backhaul = stats.backhaul_bytes_copied - backhaul_copied0;

  // Per-tier latency: each backhaul fetch as a pseudo-request record, so
  // the same nearest-rank summary covers both tiers. Warmup-era fetches
  // (completing before the engine's measurement window opened) are
  // excluded, matching the window of result.latency.
  iolsim::SimTime count_start = result.count_start;
  Telemetry fetch_telemetry;
  fetch_telemetry.Reserve(proxy_->fetches().size());
  for (const iolproxy::FetchRecord& f : proxy_->fetches()) {
    RequestRecord rec;
    rec.issue = f.issue;
    rec.admit = f.admit;
    rec.complete = f.complete;
    rec.bytes = f.bytes;
    rec.server = f.origin;
    rec.cache_hit = f.origin_hit;
    rec.counted = f.complete > count_start;
    fetch_telemetry.Record(rec);
  }
  result.origin_latency = fetch_telemetry.EndToEndLatency();
  return result;
}

}  // namespace ioldrv
