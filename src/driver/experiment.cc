#include "src/driver/experiment.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/qos/policy.h"

namespace ioldrv {

uint64_t Experiment::CacheBudget() const {
  // The file cache may use whatever physical memory is left after the
  // kernel, server processes and socket send buffers. The IO-Lite window
  // reservation is excluded from "used": the cache's own data lives there,
  // so counting it would shrink the budget by the cache's own size.
  uint64_t non_window =
      ctx_->memory().used() - ctx_->memory().reservation("iolite_window");
  uint64_t total = ctx_->memory().total();
  return total > non_window ? total - non_window : 0;
}

size_t Experiment::AddLane(size_t conn_index) {
  lanes_.emplace_back();
  size_t lane = lanes_.size() - 1;
  Lane& l = lanes_[lane];
  l.conn = conns_[conn_index].get();
  l.conn_index = conn_index;
  l.req.conn = l.conn;
  l.req.on_done = [this, lane](iolhttp::RequestContext*) { OnServerDone(lane); };
  return lane;
}

void Experiment::AddConnection() {
  // Homogeneous-fleet assumption: member 0's socket data path stands for
  // all members (a connection does not know its server until arrival).
  conns_.push_back(std::make_unique<iolnet::TcpConnection>(
      net_, fleet_.server(0)->uses_iolite_sockets()));
}

void Experiment::UpdateSteadyMemory() {
  int pool = static_cast<int>(conns_.size());
  int effective_concurrent = pool;
  int fleet_cap = config_.max_concurrent > 0
                      ? config_.max_concurrent * static_cast<int>(fleet_.size())
                      : 0;
  if (fleet_cap > 0 && fleet_cap < effective_concurrent) {
    effective_concurrent = fleet_cap;
  }
  iolhttp::HttpServer* server = fleet_.server(0);
  if (config_.persistent_connections) {
    // Connections stay open; their own reservations (made by Connect)
    // cover the socket buffers. Server processes:
    ctx_->memory().Set("server_processes",
                       static_cast<uint64_t>(effective_concurrent) *
                           server->per_connection_memory());
  } else {
    uint64_t per_conn =
        server->uses_iolite_sockets()
            ? 2048
            : static_cast<uint64_t>(ctx_->cost().params().socket_send_buffer_bytes *
                                    ctx_->cost().params().send_buffer_utilization);
    ctx_->memory().Set("connections_steady",
                       static_cast<uint64_t>(pool) * per_conn +
                           static_cast<uint64_t>(effective_concurrent) *
                               server->per_connection_memory());
  }
}

ExperimentResult Experiment::Run(Workload* workload, RequestSource next_file,
                                 Telemetry* sink) {
  if (ran_) {
    // Lanes, counters and the population's memory reservations are
    // single-run state; silently reusing them would fold one run's tail
    // into the next run's measurements. Die loudly (release builds skip
    // asserts); build a fresh Experiment per run instead.
    std::fprintf(stderr, "Experiment: Run() called twice on the same instance\n");
    std::abort();
  }
  ran_ = true;
  workload_ = workload;
  workload_->Reset();
  next_file_ = std::move(next_file);
  telemetry_ = sink != nullptr ? sink : &own_telemetry_;
  // An external sink may already hold earlier runs' records (accumulating
  // sinks are legal); this run's summary starts where they end.
  size_t record_base = telemetry_->records().size();
  // Pre-size the record stream so steady-state completions never hit a
  // vector growth mid-run.
  telemetry_->Reserve(record_base + config_.max_requests + config_.warmup_requests);
  std::chrono::steady_clock::time_point wall_start = std::chrono::steady_clock::now();
  uint64_t events_base = ctx_->stats().events_dispatched;

  accept_queues_.resize(fleet_.size());
  in_service_per_.assign(fleet_.size(), 0);
  share_.assign(fleet_.size(), ServerShare{});
  load_scratch_.assign(fleet_.size(), 0);

  pipeline_depth_ =
      config_.persistent_connections && workload_->pipeline_depth() > 1
          ? workload_->pipeline_depth()
          : 1;

  fault_on_ = config_.faults != nullptr && !config_.faults->empty();
  recovery_on_ = config_.recovery.enabled();
  health_on_ = recovery_on_ && config_.recovery.health_checks;
  if (fault_on_ && config_.faults->has_member_crashes() && !recovery_on_) {
    // A request routed to a crashed member is black-holed; without the
    // timeout there is nothing to reclaim it and the run hangs. Die loudly.
    std::fprintf(stderr,
                 "Experiment: a FaultPlan with member crashes requires "
                 "recovery.request_timeout > 0\n");
    std::abort();
  }
  if (recovery_on_ && pipeline_depth_ > 1) {
    std::fprintf(stderr,
                 "Experiment: the recovery plane requires pipeline depth 1 "
                 "(an abandoned attempt's connection is dead)\n");
    std::abort();
  }
  if (recovery_on_) {
    ejected_.assign(fleet_.size(), 0);
    probe_bad_.assign(fleet_.size(), 0);
    probe_good_.assign(fleet_.size(), 0);
    if (health_on_) {
      ctx_->events().ScheduleAfter(config_.recovery.health_check_interval,
                                   [this] { RunHealthProbe(); });
    }
  }
  if (fault_on_) {
    ArmFaults();
  }

  int clients = workload_->initial_clients();
  for (int i = 0; i < clients; ++i) {
    AddConnection();
    if (config_.persistent_connections) {
      conns_[i]->Connect();  // One handshake for the whole run (setup time).
    }
  }
  conn_state_.resize(conns_.size());
  // Steady-state memory pinned by the client population.
  UpdateSteadyMemory();
  // A client's pipelined lanes share its connection.
  for (int i = 0; i < clients; ++i) {
    for (int d = 0; d < pipeline_depth_; ++d) {
      AddLane(i);
    }
  }

  if (workload_->closed_loop()) {
    // Kick off all clients at t=0.
    for (size_t lane = 0; lane < lanes_.size(); ++lane) {
      ctx_->events().ScheduleAt(0, [this, lane] { IssueRequest(lane); });
    }
  } else {
    // All lanes idle; workload arrivals claim them (pool grows on demand).
    for (size_t lane = lanes_.size(); lane-- > 0;) {
      free_lanes_.push_back(lane);
    }
    ScheduleNextArrival();
  }

  while (!done_ && ctx_->events().RunOne()) {
  }

  ExperimentResult result;
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  result.events_dispatched = ctx_->stats().events_dispatched - events_base;
  result.requests = counted_requests_;
  result.bytes = counted_bytes_;
  result.count_start = count_start_;
  result.seconds = iolsim::ToSeconds(ctx_->clock().now() - count_start_);
  if (result.seconds > 0) {
    result.megabits_per_sec =
        static_cast<double>(counted_bytes_) * 8.0 / 1e6 / result.seconds;
  }
  uint64_t lookups = ctx_->stats().cache_hits + ctx_->stats().cache_misses;
  if (lookups > 0) {
    result.cache_hit_rate =
        static_cast<double>(ctx_->stats().cache_hits) / static_cast<double>(lookups);
  }
  result.peak_concurrent = peak_in_service_;
  result.admission_waits = admission_waits_;
  result.latency = telemetry_->EndToEndLatency(record_base);
  result.cache_hit_fraction = telemetry_->CacheHitFraction(record_base);
  result.per_server = share_;

  // Fault-plane accounting. Failed requests count toward `requests` (the
  // run is N logical outcomes) but contributed no bytes, so goodput is the
  // delivered-bytes rate and equals megabits_per_sec by construction.
  if (counted_requests_ > 0) {
    result.availability = 1.0 - static_cast<double>(failed_counted_) /
                                    static_cast<double>(counted_requests_);
    result.error_rate = static_cast<double>(failed_counted_) /
                        static_cast<double>(counted_requests_);
  }
  result.goodput_mbps = result.megabits_per_sec;
  result.retries = retries_total_;
  result.hedges = hedges_total_;
  result.failed_requests = failed_counted_;
  result.response_drops = response_drops_;
  result.blackholed_arrivals = blackholed_;
  result.health_ejections = health_ejections_;

  // Per-tenant breakdown: filled for multi-tenant streams or whenever a
  // policy plane is attached; single-tenant pre-QoS runs leave it empty so
  // their JSON rows are unchanged. The allocation-free probe runs first:
  // summarizing unconditionally would make the engine's total allocation
  // count grow with run length (per-tenant sample vectors), which the
  // steady-state zero-allocation test pins.
  bool any_tagged = false;
  const std::vector<RequestRecord>& recs = telemetry_->records();
  for (size_t i = record_base; i < recs.size() && !any_tagged; ++i) {
    any_tagged = recs[i].tenant != iolsim::kDefaultTenant;
  }
  if (config_.qos != nullptr || any_tagged) {
    std::vector<TenantSummary> per_tenant = telemetry_->PerTenant(record_base);
    result.tenants.reserve(per_tenant.size());
    for (const TenantSummary& ts : per_tenant) {
      TenantBreakdown b;
      b.tenant = ts.tenant;
      b.requests = ts.requests;
      b.bytes = ts.bytes;
      b.latency = ts.latency;
      b.cache_hit_fraction = ts.cache_hit_fraction;
      if (config_.qos != nullptr) {
        if (ts.tenant < config_.qos->registry().size()) {
          b.name = config_.qos->registry().info(ts.tenant).name;
        }
        b.cache_hit_rate = config_.qos->cache_counters(ts.tenant).HitRate();
      }
      result.tenants.push_back(std::move(b));
    }
  }

  // Drain in-flight continuations so no event in the queue outlives the
  // engine; every callback early-returns behind done_. (The result was
  // already captured above, so the extra clock movement is invisible.)
  while (ctx_->events().RunOne()) {
  }

  for (std::unique_ptr<iolnet::TcpConnection>& c : conns_) {
    if (c->connected()) {
      c->Close();
    }
  }
  ctx_->memory().Set("server_processes", 0);
  ctx_->memory().Set("connections_steady", 0);
  next_file_ = nullptr;
  return result;
}

void Experiment::ScheduleNextArrival() {
  if (done_) {
    return;
  }
  iolsim::SimTime at = 0;
  if (!workload_->NextArrival(ctx_->clock().now(), &at)) {
    return;  // Arrival stream exhausted: the run drains and ends.
  }
  ctx_->events().ScheduleAt(at, [this] {
    if (done_) {
      return;
    }
    size_t lane;
    if (!free_lanes_.empty()) {
      lane = free_lanes_.back();
      free_lanes_.pop_back();
    } else {
      // Overload: the arrival stream outpaces completions; grow the pool
      // (and the steady-state memory the population pins with it).
      AddConnection();
      conn_state_.resize(conns_.size());
      lane = AddLane(conns_.size() - 1);
      UpdateSteadyMemory();
    }
    IssueRequest(lane);
    ScheduleNextArrival();
  });
}

void Experiment::IssueRequest(size_t lane) {
  if (done_) {
    return;
  }
  Lane& l = lanes_[lane];
  // Position in the connection's request stream (delivery is in-order).
  l.seq = conn_state_[l.conn_index].next_issue++;
  l.record = RequestRecord{};
  l.record.issue = ctx_->clock().now();
  // Tenant resolution precedes NextFile: a multi-tenant workload picks the
  // file from the resolved tenant's stream (see Workload::TenantOf).
  iolsim::TenantId hint = workload_->TenantOf(l.conn_index, l.seq);
  l.has_pinned_file = workload_->NextFile(&l.pinned_file);
  if (config_.qos != nullptr) {
    iolqos::ClassifyContext cc;
    cc.hint = hint;
    cc.file = l.has_pinned_file ? l.pinned_file : iolfs::kInvalidFile;
    cc.client = l.conn_index;
    l.req.tenant = config_.qos->Classify(cc);
  } else {
    l.req.tenant = hint;
  }
  if (recovery_on_) {
    // A fresh flight: this lane is its owner.
    l.flight_owner = kNoLane;
    l.hedge_lane = kNoLane;
    l.zombie = false;
    l.limbo = false;
    l.attempts = 1;
    l.retries_used = 0;
    // Resolve the file now (not at serve time): a retry or hedge of this
    // flight must request the SAME file, and the shared RequestSource
    // would hand each attempt a different one.
    if (!l.has_pinned_file && next_file_ != nullptr) {
      l.pinned_file = next_file_();
      l.has_pinned_file = true;
    }
    ArmFlightTimers(lane, 0);
  }
  // Request propagation to the fleet.
  ctx_->events().ScheduleAfter(config_.delay.one_way_delay,
                               [this, lane] { ArriveAtFleet(lane); });
}

void Experiment::ArriveAtFleet(size_t lane) {
  if (done_) {
    return;
  }
  if (recovery_on_ && lanes_[lane].zombie) {
    RecycleLane(lane);  // The flight moved on while this attempt was in flight.
    return;
  }
  if (config_.qos != nullptr) {
    // The on_admit stage hook: a throttled tenant's request waits out its
    // token-bucket delay at the front door, before the balancer sees it.
    iolsim::SimTime hold =
        config_.qos->OnAdmit(lanes_[lane].req.tenant, ctx_->clock().now());
    if (hold > 0) {
      ctx_->events().ScheduleAfter(hold, [this, lane] { AdmitToFleet(lane); });
      return;
    }
  }
  AdmitToFleet(lane);
}

void Experiment::AdmitToFleet(size_t lane) {
  if (done_) {
    return;
  }
  Lane& l = lanes_[lane];
  if (recovery_on_ && l.zombie) {
    RecycleLane(lane);  // Abandoned during the QoS front-door hold.
    return;
  }
  if (fleet_.size() == 1) {
    // Degenerate fleet (every classic experiment): there is nothing to
    // balance, skip the load snapshot and the balancer virtual call.
    l.server = 0;
  } else if (workload_->PinMember(l.conn_index, &l.server)) {
    // Geographically pinned client (the CDN hierarchy's per-edge client
    // populations): the client always talks to its edge — no balancing,
    // no hedge steering (recovery and CDN pinning are not composed).
    l.server %= fleet_.size();
  } else {
    // The balancer sees each member's full backlog: in service plus waiting
    // in its accept queue. (load_scratch_ is a member: one arrival per
    // event, and reusing it keeps the per-arrival hot path allocation-free.)
    for (size_t s = 0; s < fleet_.size(); ++s) {
      load_scratch_[s] =
          health_on_ && ejected_[s] != 0
              ? kEjected
              : in_service_per_[s] + static_cast<int>(accept_queues_[s].size());
    }
    l.server = fleet_.PickServer(load_scratch_);
    if (recovery_on_ && l.flight_owner != kNoLane) {
      // A hedged duplicate is pointless on the member the primary is
      // already waiting on; steer it to the next non-ejected member.
      size_t primary = lanes_[l.flight_owner].server;
      if (l.server == primary) {
        for (size_t i = 1; i < fleet_.size(); ++i) {
          size_t c = (l.server + i) % fleet_.size();
          if (health_on_ && ejected_[c] != 0) {
            continue;
          }
          l.server = c;
          break;
        }
      }
    }
  }
  if (fault_on_ && fleet_.server(l.server)->down()) {
    // A dead member answers nothing — not even a RST. The lane goes to
    // limbo (no continuation holds it) until the flight's timeout reclaims
    // it. Crash plans without recovery were rejected at Run start.
    l.limbo = true;
    ++blackholed_;
    return;
  }
  if (config_.max_concurrent > 0 && in_service_per_[l.server] >= config_.max_concurrent) {
    // At capacity: the connection waits in the accept queue (never dropped).
    accept_queues_[l.server].push_back(lane);
    ++admission_waits_;
    return;
  }
  ServeRequest(lane);
}

void Experiment::ServeRequest(size_t lane) {
  Lane& l = lanes_[lane];
  ++in_service_;
  ++in_service_per_[l.server];
  if (in_service_ > peak_in_service_) {
    peak_in_service_ = in_service_;
  }
  if (in_service_per_[l.server] > share_[l.server].peak_concurrent) {
    share_[l.server].peak_concurrent = in_service_per_[l.server];
  }
  l.record.admit = ctx_->clock().now();
  l.req.file = l.has_pinned_file ? l.pinned_file : next_file_();
  l.req.response_bytes = 0;
  l.req.cache_hit = false;
  if (fault_on_) {
    // Captured so a crash between now and pipeline completion is
    // detectable at OnServerDone (the response dies with the process).
    l.serve_epoch = fleet_.server(l.server)->crash_epoch();
  }
  // The serve runs as its tenant: the fair schedulers and the cache's
  // per-tenant accounting read the context's active tenant from here on
  // (a plain store; stays kDefaultTenant in single-tenant runs).
  ctx_->set_active_tenant(l.req.tenant);
  iolhttp::HttpServer* server = fleet_.server(l.server);
  if (!l.conn->connected()) {
    // Handshake CPU (SYN/PCB work) is a pipeline stage like any other; the
    // handshake round trip itself is charged with the response delays.
    iolhttp::RunCpuStage(
        ctx_, [&l] { l.conn->Connect(); },
        [this, server, lane] { server->StartRequest(&lanes_[lane].req); });
  } else {
    server->StartRequest(&l.req);
  }
}

void Experiment::OnServerDone(size_t lane) {
  if (done_) {
    return;
  }
  Lane& l = lanes_[lane];
  size_t bytes = l.req.response_bytes;
  if (!config_.persistent_connections) {
    l.conn->Close();
  }
  if (config_.enforce_cache_budget) {
    cache_->EnforceBudget(CacheBudget());
  }
  if (config_.cache_budget_bytes > 0) {
    cache_->EnforceBudget(config_.cache_budget_bytes);
  }
  --in_service_;
  --in_service_per_[l.server];
  iolhttp::HttpServer* srv = fleet_.server(l.server);
  if (!fault_on_ || !srv->down()) {
    DrainAcceptQueue(l.server);
  }
  if (fault_on_ &&
      (srv->down() || l.serve_epoch != srv->crash_epoch())) {
    // The member crashed after this serve began (or is still down): the
    // process died holding the connection, so the response is dropped on
    // the floor. The flight's timeout handles recovery.
    ++response_drops_;
    if (recovery_on_) {
      if (l.zombie) {
        RecycleLane(lane);  // Already abandoned; nothing else holds it.
      } else {
        l.limbo = true;  // Hand the lane to the flight's timeout.
      }
    }
    return;
  }

  // Response propagation, plus one handshake round trip for nonpersistent
  // connections. A pipelined connection delivers responses in request
  // order: an out-of-order completion (e.g. a sibling's cache hit passing
  // this lane's disk read) waits for the head of line.
  iolsim::SimTime respond_delay = config_.delay.one_way_delay;
  if (!config_.persistent_connections) {
    respond_delay += config_.delay.RoundTrip();
  }
  ConnState& cs = conn_state_[l.conn_index];
  if (l.seq == cs.next_deliver && cs.done_out_of_order.empty()) {
    // In-order completion with nothing parked (the steady-state warm path):
    // deliver directly, skipping the map insert+erase round trip.
    ++cs.next_deliver;
    ctx_->events().ScheduleAfter(
        respond_delay, [this, lane, bytes] { OnClientReceive(lane, bytes); });
    return;
  }
  cs.done_out_of_order[l.seq] = {lane, bytes};
  while (!cs.done_out_of_order.empty() &&
         cs.done_out_of_order.begin()->first == cs.next_deliver) {
    auto [head_lane, head_bytes] = cs.done_out_of_order.begin()->second;
    cs.done_out_of_order.erase(cs.done_out_of_order.begin());
    ++cs.next_deliver;
    ctx_->events().ScheduleAfter(respond_delay, [this, head_lane, head_bytes] {
      OnClientReceive(head_lane, head_bytes);
    });
  }
}

void Experiment::DrainAcceptQueue(size_t s) {
  while (!accept_queues_[s].empty() &&
         (config_.max_concurrent == 0 ||
          in_service_per_[s] < config_.max_concurrent)) {
    size_t waiting = accept_queues_[s].front();
    accept_queues_[s].pop_front();
    if (recovery_on_ && lanes_[waiting].zombie) {
      RecycleLane(waiting);  // Timed out while queued; serve the next waiter.
      continue;
    }
    ServeRequest(waiting);
  }
}

void Experiment::OnClientReceive(size_t lane, size_t bytes) {
  if (done_) {
    return;
  }
  Lane& l = lanes_[lane];
  if (recovery_on_) {
    if (l.zombie) {
      RecycleLane(lane);  // A losing attempt's response arrives: swallow it.
      return;
    }
    DeliverFlight(lane, bytes);
    return;
  }
  ++completed_;
  l.record.complete = ctx_->clock().now();
  l.record.bytes = bytes;
  l.record.server = l.server;
  l.record.tenant = l.req.tenant;
  l.record.cache_hit = l.req.cache_hit;
  l.record.counted = completed_ > config_.warmup_requests;
  telemetry_->Record(l.record);
  if (!l.record.counted) {
    if (completed_ == config_.warmup_requests) {
      count_start_ = ctx_->clock().now();
    }
  } else {
    ++counted_requests_;
    counted_bytes_ += bytes;
    share_[l.server].requests++;
    share_[l.server].bytes += bytes;
    if (counted_requests_ >= config_.max_requests) {
      done_ = true;
      return;
    }
  }
  if (workload_->closed_loop()) {
    IssueRequest(lane);
  } else {
    free_lanes_.push_back(lane);
  }
}

// --- Fault plane (src/fault) ------------------------------------------------

void Experiment::ArmFaults() {
  for (const iolfault::FaultEvent& e : config_.faults->events()) {
    switch (e.kind) {
      case iolfault::FaultKind::kMemberCrash: {
        size_t m = static_cast<size_t>(e.target) % fleet_.size();
        bool cold = e.cold_cache;
        ctx_->events().ScheduleAt(e.at, [this, m] { CrashMember(m); });
        ctx_->events().ScheduleAt(e.at + e.duration,
                                  [this, m, cold] { RestartMember(m, cold); });
        break;
      }
      case iolfault::FaultKind::kDiskFailSlow:
        ctx_->disk().AddSlowWindow(e.at, e.at + e.duration, e.slow_num,
                                   e.slow_den);
        break;
      case iolfault::FaultKind::kDiskFailStop:
        ctx_->disk().AddOutageWindow(e.at, e.at + e.duration);
        break;
      case iolfault::FaultKind::kLinkOutage:
        ctx_->link().AddOutageWindow(e.at, e.at + e.duration);
        break;
      case iolfault::FaultKind::kBackhaulFlap:
        // Not this layer's fault to arm: the engine has no proxy handle.
        // See iolproxy::ProxyServer::ArmBackhaulFaults.
        break;
    }
  }
}

void Experiment::CrashMember(size_t m) {
  if (done_) {
    return;
  }
  // In-flight serves keep consuming their reserved resources (the machine
  // is up; the process is gone), but their responses will fail the epoch
  // check at OnServerDone and be dropped. New arrivals black-hole.
  fleet_.server(m)->Crash();
}

void Experiment::RestartMember(size_t m, bool cold_cache) {
  if (done_) {
    return;
  }
  fleet_.server(m)->Restart();
  if (cold_cache && cache_ != nullptr && fleet_.size() > 0) {
    // The machine's unified cache survives a process crash, but the
    // member's share of it — its working set, mappings, checksum state —
    // does not. Evict 1/fleet of the cached bytes (all of them for a
    // single-member fleet) so the restarted member starts cold.
    uint64_t bytes = cache_->bytes();
    uint64_t keep = bytes - bytes / fleet_.size();
    cache_->EnforceBudget(keep);
  }
  // Serve connections that were accepted before the crash and waited out
  // the downtime in the accept queue (their clients may have given up:
  // zombie entries are recycled by the drain).
  DrainAcceptQueue(m);
}

void Experiment::RunHealthProbe() {
  if (done_) {
    return;
  }
  for (size_t s = 0; s < fleet_.size(); ++s) {
    bool up = !fault_on_ || !fleet_.server(s)->down();
    if (up) {
      probe_bad_[s] = 0;
      ++probe_good_[s];
      if (ejected_[s] != 0 &&
          probe_good_[s] >= config_.recovery.healthy_after) {
        ejected_[s] = 0;  // Re-admitted.
      }
    } else {
      probe_good_[s] = 0;
      ++probe_bad_[s];
      if (ejected_[s] == 0 &&
          probe_bad_[s] >= config_.recovery.unhealthy_after) {
        ejected_[s] = 1;
        ++health_ejections_;
      }
    }
  }
  ctx_->events().ScheduleAfter(config_.recovery.health_check_interval,
                               [this] { RunHealthProbe(); });
}

void Experiment::ArmFlightTimers(size_t lane, iolsim::SimTime extra_delay) {
  Lane& l = lanes_[lane];
  l.timeout_ev =
      ctx_->events().ScheduleAfter(extra_delay + config_.recovery.request_timeout,
                                   [this, lane] { OnRequestTimeout(lane); });
  l.hedge_ev =
      config_.recovery.hedge_delay > 0
          ? ctx_->events().ScheduleAfter(
                extra_delay + config_.recovery.hedge_delay,
                [this, lane] { FireHedge(lane); })
          : kNoEvent;
}

void Experiment::CancelFlightTimers(size_t lane) {
  Lane& l = lanes_[lane];
  if (l.timeout_ev != kNoEvent) {
    ctx_->events().Cancel(l.timeout_ev);
    l.timeout_ev = kNoEvent;
  }
  if (l.hedge_ev != kNoEvent) {
    ctx_->events().Cancel(l.hedge_ev);
    l.hedge_ev = kNoEvent;
  }
}

size_t Experiment::AcquireAttemptLane() {
  size_t lane;
  if (!free_lanes_.empty()) {
    lane = free_lanes_.back();
    free_lanes_.pop_back();
  } else {
    AddConnection();
    conn_state_.resize(conns_.size());
    lane = AddLane(conns_.size() - 1);
    UpdateSteadyMemory();
  }
  Lane& l = lanes_[lane];
  l.flight_owner = kNoLane;
  l.hedge_lane = kNoLane;
  l.timeout_ev = kNoEvent;
  l.hedge_ev = kNoEvent;
  l.zombie = false;
  l.limbo = false;
  l.attempts = 1;
  l.retries_used = 0;
  return lane;
}

void Experiment::RecycleLane(size_t lane) {
  Lane& l = lanes_[lane];
  l.zombie = false;
  l.limbo = false;
  l.flight_owner = kNoLane;
  l.hedge_lane = kNoLane;
  // Recovery mode runs one lane per connection, so everything outstanding
  // on this connection died with the attempt: fast-forward the delivery
  // cursor past any sequence number whose response was dropped, or the
  // lane's next use would park its response behind a hole forever.
  ConnState& cs = conn_state_[l.conn_index];
  cs.next_deliver = cs.next_issue;
  cs.done_out_of_order.clear();
  free_lanes_.push_back(lane);
}

void Experiment::AbandonAttempt(size_t lane) {
  Lane& l = lanes_[lane];
  l.zombie = true;
  if (l.limbo) {
    RecycleLane(lane);  // Nothing holds it; reclaim now.
  }
  // Otherwise exactly one pending continuation (arrival event, QoS hold,
  // accept-queue slot, pipeline completion, or delivery event) still
  // references the lane and will recycle it on sight of the zombie flag.
}

void Experiment::OnRequestTimeout(size_t lane) {
  if (done_) {
    return;
  }
  Lane& o = lanes_[lane];
  o.timeout_ev = kNoEvent;  // It just fired.
  if (o.hedge_ev != kNoEvent) {
    ctx_->events().Cancel(o.hedge_ev);
    o.hedge_ev = kNoEvent;
  }
  if (o.hedge_lane != kNoLane) {
    AbandonAttempt(o.hedge_lane);
    o.hedge_lane = kNoLane;
  }
  if (o.retries_used < config_.recovery.max_retries) {
    // Retry on a fresh lane and connection (the old connection is dead if
    // the member crashed, and busy if the member is merely slow), after a
    // capped exponential backoff. The flight migrates: the new lane owns
    // the record, the timers, and the closed-loop continuation.
    ++retries_total_;
    size_t r = AcquireAttemptLane();
    Lane& rn = lanes_[r];
    Lane& prev = lanes_[lane];  // Re-resolve: AcquireAttemptLane may grow lanes_.
    rn.record = prev.record;    // Original issue time: latency spans retries.
    rn.req.tenant = prev.req.tenant;  // The tenant tag survives the retry —
                                      // a retry storm still pays its own
                                      // way through the fair queue.
    rn.has_pinned_file = prev.has_pinned_file;
    rn.pinned_file = prev.pinned_file;
    rn.server = prev.server;
    rn.attempts = static_cast<uint8_t>(prev.attempts + 1);
    rn.retries_used = static_cast<uint8_t>(prev.retries_used + 1);
    rn.seq = conn_state_[rn.conn_index].next_issue++;
    AbandonAttempt(lane);
    iolsim::SimTime backoff = config_.recovery.retry_backoff;
    for (int k = 1; k < rn.retries_used; ++k) {
      backoff *= 2;
      if (backoff >= config_.recovery.retry_backoff_cap) {
        backoff = config_.recovery.retry_backoff_cap;
        break;
      }
    }
    if (backoff > config_.recovery.retry_backoff_cap) {
      backoff = config_.recovery.retry_backoff_cap;
    }
    // The attempt's own timeout clock starts when the client reissues
    // (after the backoff); the wire delay applies to the reissue too.
    ArmFlightTimers(r, backoff);
    ctx_->events().ScheduleAfter(backoff + config_.delay.one_way_delay,
                                 [this, r] { ArriveAtFleet(r); });
    return;
  }
  // Out of retries: the flight fails. Record the outcome — failed records
  // count toward the stop condition but carry no bytes and no latency
  // sample — and, closed loop, issue the client's next logical request on
  // a fresh lane (this one may still be stuck in a pipeline).
  ++completed_;
  RequestRecord rec = o.record;
  rec.complete = ctx_->clock().now();
  rec.bytes = 0;
  rec.server = o.server;
  rec.tenant = o.req.tenant;
  rec.outcome = config_.recovery.max_retries > 0 ? Outcome::kFailed
                                                 : Outcome::kTimedOut;
  rec.attempts = o.attempts;
  rec.cache_hit = false;
  rec.counted = completed_ > config_.warmup_requests;
  telemetry_->Record(rec);
  AbandonAttempt(lane);
  if (!rec.counted) {
    if (completed_ == config_.warmup_requests) {
      count_start_ = ctx_->clock().now();
    }
  } else {
    ++counted_requests_;
    ++failed_counted_;
    if (counted_requests_ >= config_.max_requests) {
      done_ = true;
      return;
    }
  }
  if (workload_->closed_loop()) {
    IssueRequest(AcquireAttemptLane());
  }
}

void Experiment::FireHedge(size_t lane) {
  if (done_) {
    return;
  }
  Lane& o = lanes_[lane];
  o.hedge_ev = kNoEvent;
  if (o.zombie || o.hedge_lane != kNoLane) {
    return;  // The flight moved on; a stale timer has nothing to hedge.
  }
  ++hedges_total_;
  size_t h = AcquireAttemptLane();
  Lane& hn = lanes_[h];
  Lane& on = lanes_[lane];  // Re-resolve after possible growth.
  hn.flight_owner = static_cast<uint32_t>(lane);
  hn.req.tenant = on.req.tenant;
  hn.has_pinned_file = on.has_pinned_file;
  hn.pinned_file = on.pinned_file;
  hn.seq = conn_state_[hn.conn_index].next_issue++;
  on.hedge_lane = static_cast<uint32_t>(h);
  ctx_->events().ScheduleAfter(config_.delay.one_way_delay,
                               [this, h] { ArriveAtFleet(h); });
}

void Experiment::DeliverFlight(size_t lane, size_t bytes) {
  Lane& x = lanes_[lane];
  size_t owner_idx = x.flight_owner != kNoLane ? x.flight_owner : lane;
  Lane& o = lanes_[owner_idx];
  CancelFlightTimers(owner_idx);
  if (owner_idx != lane) {
    // The hedge won: the primary attempt is abandoned wherever it is.
    AbandonAttempt(owner_idx);
  } else if (o.hedge_lane != kNoLane) {
    AbandonAttempt(o.hedge_lane);
  }
  ++completed_;
  RequestRecord rec = o.record;
  rec.complete = ctx_->clock().now();
  rec.bytes = bytes;
  rec.server = x.server;
  rec.admit = x.record.admit;  // The winning attempt's admission.
  rec.tenant = x.req.tenant;
  rec.cache_hit = x.req.cache_hit;
  rec.outcome = owner_idx != lane
                    ? Outcome::kHedgeWon
                    : (o.retries_used > 0 ? Outcome::kRetriedOk : Outcome::kOk);
  rec.attempts = o.attempts;
  rec.counted = completed_ > config_.warmup_requests;
  telemetry_->Record(rec);
  // This lane carries the client forward; sever any flight linkage.
  x.flight_owner = kNoLane;
  x.hedge_lane = kNoLane;
  if (!rec.counted) {
    if (completed_ == config_.warmup_requests) {
      count_start_ = ctx_->clock().now();
    }
  } else {
    ++counted_requests_;
    counted_bytes_ += bytes;
    share_[x.server].requests++;
    share_[x.server].bytes += bytes;
    if (counted_requests_ >= config_.max_requests) {
      done_ = true;
      return;
    }
  }
  if (workload_->closed_loop()) {
    IssueRequest(lane);
  } else {
    RecycleLane(lane);
  }
}

}  // namespace ioldrv
