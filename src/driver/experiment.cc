#include "src/driver/experiment.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/qos/policy.h"

namespace ioldrv {

uint64_t Experiment::CacheBudget() const {
  // The file cache may use whatever physical memory is left after the
  // kernel, server processes and socket send buffers. The IO-Lite window
  // reservation is excluded from "used": the cache's own data lives there,
  // so counting it would shrink the budget by the cache's own size.
  uint64_t non_window =
      ctx_->memory().used() - ctx_->memory().reservation("iolite_window");
  uint64_t total = ctx_->memory().total();
  return total > non_window ? total - non_window : 0;
}

size_t Experiment::AddLane(size_t conn_index) {
  lanes_.emplace_back();
  size_t lane = lanes_.size() - 1;
  Lane& l = lanes_[lane];
  l.conn = conns_[conn_index].get();
  l.conn_index = conn_index;
  l.req.conn = l.conn;
  l.req.on_done = [this, lane](iolhttp::RequestContext*) { OnServerDone(lane); };
  return lane;
}

void Experiment::AddConnection() {
  // Homogeneous-fleet assumption: member 0's socket data path stands for
  // all members (a connection does not know its server until arrival).
  conns_.push_back(std::make_unique<iolnet::TcpConnection>(
      net_, fleet_.server(0)->uses_iolite_sockets()));
}

void Experiment::UpdateSteadyMemory() {
  int pool = static_cast<int>(conns_.size());
  int effective_concurrent = pool;
  int fleet_cap = config_.max_concurrent > 0
                      ? config_.max_concurrent * static_cast<int>(fleet_.size())
                      : 0;
  if (fleet_cap > 0 && fleet_cap < effective_concurrent) {
    effective_concurrent = fleet_cap;
  }
  iolhttp::HttpServer* server = fleet_.server(0);
  if (config_.persistent_connections) {
    // Connections stay open; their own reservations (made by Connect)
    // cover the socket buffers. Server processes:
    ctx_->memory().Set("server_processes",
                       static_cast<uint64_t>(effective_concurrent) *
                           server->per_connection_memory());
  } else {
    uint64_t per_conn =
        server->uses_iolite_sockets()
            ? 2048
            : static_cast<uint64_t>(ctx_->cost().params().socket_send_buffer_bytes *
                                    ctx_->cost().params().send_buffer_utilization);
    ctx_->memory().Set("connections_steady",
                       static_cast<uint64_t>(pool) * per_conn +
                           static_cast<uint64_t>(effective_concurrent) *
                               server->per_connection_memory());
  }
}

ExperimentResult Experiment::Run(Workload* workload, RequestSource next_file,
                                 Telemetry* sink) {
  if (ran_) {
    // Lanes, counters and the population's memory reservations are
    // single-run state; silently reusing them would fold one run's tail
    // into the next run's measurements. Die loudly (release builds skip
    // asserts); build a fresh Experiment per run instead.
    std::fprintf(stderr, "Experiment: Run() called twice on the same instance\n");
    std::abort();
  }
  ran_ = true;
  workload_ = workload;
  workload_->Reset();
  next_file_ = std::move(next_file);
  telemetry_ = sink != nullptr ? sink : &own_telemetry_;
  // An external sink may already hold earlier runs' records (accumulating
  // sinks are legal); this run's summary starts where they end.
  size_t record_base = telemetry_->records().size();
  // Pre-size the record stream so steady-state completions never hit a
  // vector growth mid-run.
  telemetry_->Reserve(record_base + config_.max_requests + config_.warmup_requests);
  std::chrono::steady_clock::time_point wall_start = std::chrono::steady_clock::now();
  uint64_t events_base = ctx_->stats().events_dispatched;

  accept_queues_.resize(fleet_.size());
  in_service_per_.assign(fleet_.size(), 0);
  share_.assign(fleet_.size(), ServerShare{});
  load_scratch_.assign(fleet_.size(), 0);

  pipeline_depth_ =
      config_.persistent_connections && workload_->pipeline_depth() > 1
          ? workload_->pipeline_depth()
          : 1;

  int clients = workload_->initial_clients();
  for (int i = 0; i < clients; ++i) {
    AddConnection();
    if (config_.persistent_connections) {
      conns_[i]->Connect();  // One handshake for the whole run (setup time).
    }
  }
  conn_state_.resize(conns_.size());
  // Steady-state memory pinned by the client population.
  UpdateSteadyMemory();
  // A client's pipelined lanes share its connection.
  for (int i = 0; i < clients; ++i) {
    for (int d = 0; d < pipeline_depth_; ++d) {
      AddLane(i);
    }
  }

  if (workload_->closed_loop()) {
    // Kick off all clients at t=0.
    for (size_t lane = 0; lane < lanes_.size(); ++lane) {
      ctx_->events().ScheduleAt(0, [this, lane] { IssueRequest(lane); });
    }
  } else {
    // All lanes idle; workload arrivals claim them (pool grows on demand).
    for (size_t lane = lanes_.size(); lane-- > 0;) {
      free_lanes_.push_back(lane);
    }
    ScheduleNextArrival();
  }

  while (!done_ && ctx_->events().RunOne()) {
  }

  ExperimentResult result;
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  result.events_dispatched = ctx_->stats().events_dispatched - events_base;
  result.requests = counted_requests_;
  result.bytes = counted_bytes_;
  result.count_start = count_start_;
  result.seconds = iolsim::ToSeconds(ctx_->clock().now() - count_start_);
  if (result.seconds > 0) {
    result.megabits_per_sec =
        static_cast<double>(counted_bytes_) * 8.0 / 1e6 / result.seconds;
  }
  uint64_t lookups = ctx_->stats().cache_hits + ctx_->stats().cache_misses;
  if (lookups > 0) {
    result.cache_hit_rate =
        static_cast<double>(ctx_->stats().cache_hits) / static_cast<double>(lookups);
  }
  result.peak_concurrent = peak_in_service_;
  result.admission_waits = admission_waits_;
  result.latency = telemetry_->EndToEndLatency(record_base);
  result.cache_hit_fraction = telemetry_->CacheHitFraction(record_base);
  result.per_server = share_;

  // Per-tenant breakdown: filled for multi-tenant streams or whenever a
  // policy plane is attached; single-tenant pre-QoS runs leave it empty so
  // their JSON rows are unchanged. The allocation-free probe runs first:
  // summarizing unconditionally would make the engine's total allocation
  // count grow with run length (per-tenant sample vectors), which the
  // steady-state zero-allocation test pins.
  bool any_tagged = false;
  const std::vector<RequestRecord>& recs = telemetry_->records();
  for (size_t i = record_base; i < recs.size() && !any_tagged; ++i) {
    any_tagged = recs[i].tenant != iolsim::kDefaultTenant;
  }
  if (config_.qos != nullptr || any_tagged) {
    std::vector<TenantSummary> per_tenant = telemetry_->PerTenant(record_base);
    result.tenants.reserve(per_tenant.size());
    for (const TenantSummary& ts : per_tenant) {
      TenantBreakdown b;
      b.tenant = ts.tenant;
      b.requests = ts.requests;
      b.bytes = ts.bytes;
      b.latency = ts.latency;
      b.cache_hit_fraction = ts.cache_hit_fraction;
      if (config_.qos != nullptr) {
        if (ts.tenant < config_.qos->registry().size()) {
          b.name = config_.qos->registry().info(ts.tenant).name;
        }
        b.cache_hit_rate = config_.qos->cache_counters(ts.tenant).HitRate();
      }
      result.tenants.push_back(std::move(b));
    }
  }

  // Drain in-flight continuations so no event in the queue outlives the
  // engine; every callback early-returns behind done_. (The result was
  // already captured above, so the extra clock movement is invisible.)
  while (ctx_->events().RunOne()) {
  }

  for (std::unique_ptr<iolnet::TcpConnection>& c : conns_) {
    if (c->connected()) {
      c->Close();
    }
  }
  ctx_->memory().Set("server_processes", 0);
  ctx_->memory().Set("connections_steady", 0);
  next_file_ = nullptr;
  return result;
}

void Experiment::ScheduleNextArrival() {
  if (done_) {
    return;
  }
  iolsim::SimTime at = 0;
  if (!workload_->NextArrival(ctx_->clock().now(), &at)) {
    return;  // Arrival stream exhausted: the run drains and ends.
  }
  ctx_->events().ScheduleAt(at, [this] {
    if (done_) {
      return;
    }
    size_t lane;
    if (!free_lanes_.empty()) {
      lane = free_lanes_.back();
      free_lanes_.pop_back();
    } else {
      // Overload: the arrival stream outpaces completions; grow the pool
      // (and the steady-state memory the population pins with it).
      AddConnection();
      conn_state_.resize(conns_.size());
      lane = AddLane(conns_.size() - 1);
      UpdateSteadyMemory();
    }
    IssueRequest(lane);
    ScheduleNextArrival();
  });
}

void Experiment::IssueRequest(size_t lane) {
  if (done_) {
    return;
  }
  Lane& l = lanes_[lane];
  // Position in the connection's request stream (delivery is in-order).
  l.seq = conn_state_[l.conn_index].next_issue++;
  l.record = RequestRecord{};
  l.record.issue = ctx_->clock().now();
  // Tenant resolution precedes NextFile: a multi-tenant workload picks the
  // file from the resolved tenant's stream (see Workload::TenantOf).
  iolsim::TenantId hint = workload_->TenantOf(l.conn_index, l.seq);
  l.has_pinned_file = workload_->NextFile(&l.pinned_file);
  if (config_.qos != nullptr) {
    iolqos::ClassifyContext cc;
    cc.hint = hint;
    cc.file = l.has_pinned_file ? l.pinned_file : iolfs::kInvalidFile;
    cc.client = l.conn_index;
    l.req.tenant = config_.qos->Classify(cc);
  } else {
    l.req.tenant = hint;
  }
  // Request propagation to the fleet.
  ctx_->events().ScheduleAfter(config_.delay.one_way_delay,
                               [this, lane] { ArriveAtFleet(lane); });
}

void Experiment::ArriveAtFleet(size_t lane) {
  if (done_) {
    return;
  }
  if (config_.qos != nullptr) {
    // The on_admit stage hook: a throttled tenant's request waits out its
    // token-bucket delay at the front door, before the balancer sees it.
    iolsim::SimTime hold =
        config_.qos->OnAdmit(lanes_[lane].req.tenant, ctx_->clock().now());
    if (hold > 0) {
      ctx_->events().ScheduleAfter(hold, [this, lane] { AdmitToFleet(lane); });
      return;
    }
  }
  AdmitToFleet(lane);
}

void Experiment::AdmitToFleet(size_t lane) {
  if (done_) {
    return;
  }
  Lane& l = lanes_[lane];
  if (fleet_.size() == 1) {
    // Degenerate fleet (every classic experiment): there is nothing to
    // balance, skip the load snapshot and the balancer virtual call.
    l.server = 0;
  } else {
    // The balancer sees each member's full backlog: in service plus waiting
    // in its accept queue. (load_scratch_ is a member: one arrival per
    // event, and reusing it keeps the per-arrival hot path allocation-free.)
    for (size_t s = 0; s < fleet_.size(); ++s) {
      load_scratch_[s] = in_service_per_[s] + static_cast<int>(accept_queues_[s].size());
    }
    l.server = fleet_.PickServer(load_scratch_);
  }
  if (config_.max_concurrent > 0 && in_service_per_[l.server] >= config_.max_concurrent) {
    // At capacity: the connection waits in the accept queue (never dropped).
    accept_queues_[l.server].push_back(lane);
    ++admission_waits_;
    return;
  }
  ServeRequest(lane);
}

void Experiment::ServeRequest(size_t lane) {
  Lane& l = lanes_[lane];
  ++in_service_;
  ++in_service_per_[l.server];
  if (in_service_ > peak_in_service_) {
    peak_in_service_ = in_service_;
  }
  if (in_service_per_[l.server] > share_[l.server].peak_concurrent) {
    share_[l.server].peak_concurrent = in_service_per_[l.server];
  }
  l.record.admit = ctx_->clock().now();
  l.req.file = l.has_pinned_file ? l.pinned_file : next_file_();
  l.req.response_bytes = 0;
  l.req.cache_hit = false;
  // The serve runs as its tenant: the fair schedulers and the cache's
  // per-tenant accounting read the context's active tenant from here on
  // (a plain store; stays kDefaultTenant in single-tenant runs).
  ctx_->set_active_tenant(l.req.tenant);
  iolhttp::HttpServer* server = fleet_.server(l.server);
  if (!l.conn->connected()) {
    // Handshake CPU (SYN/PCB work) is a pipeline stage like any other; the
    // handshake round trip itself is charged with the response delays.
    iolhttp::RunCpuStage(
        ctx_, [&l] { l.conn->Connect(); },
        [this, server, lane] { server->StartRequest(&lanes_[lane].req); });
  } else {
    server->StartRequest(&l.req);
  }
}

void Experiment::OnServerDone(size_t lane) {
  if (done_) {
    return;
  }
  Lane& l = lanes_[lane];
  size_t bytes = l.req.response_bytes;
  if (!config_.persistent_connections) {
    l.conn->Close();
  }
  if (config_.enforce_cache_budget) {
    cache_->EnforceBudget(CacheBudget());
  }
  if (config_.cache_budget_bytes > 0) {
    cache_->EnforceBudget(config_.cache_budget_bytes);
  }
  --in_service_;
  --in_service_per_[l.server];
  if (!accept_queues_[l.server].empty()) {
    size_t waiting = accept_queues_[l.server].front();
    accept_queues_[l.server].pop_front();
    ServeRequest(waiting);
  }

  // Response propagation, plus one handshake round trip for nonpersistent
  // connections. A pipelined connection delivers responses in request
  // order: an out-of-order completion (e.g. a sibling's cache hit passing
  // this lane's disk read) waits for the head of line.
  iolsim::SimTime respond_delay = config_.delay.one_way_delay;
  if (!config_.persistent_connections) {
    respond_delay += config_.delay.RoundTrip();
  }
  ConnState& cs = conn_state_[l.conn_index];
  if (l.seq == cs.next_deliver && cs.done_out_of_order.empty()) {
    // In-order completion with nothing parked (the steady-state warm path):
    // deliver directly, skipping the map insert+erase round trip.
    ++cs.next_deliver;
    ctx_->events().ScheduleAfter(
        respond_delay, [this, lane, bytes] { OnClientReceive(lane, bytes); });
    return;
  }
  cs.done_out_of_order[l.seq] = {lane, bytes};
  while (!cs.done_out_of_order.empty() &&
         cs.done_out_of_order.begin()->first == cs.next_deliver) {
    auto [head_lane, head_bytes] = cs.done_out_of_order.begin()->second;
    cs.done_out_of_order.erase(cs.done_out_of_order.begin());
    ++cs.next_deliver;
    ctx_->events().ScheduleAfter(respond_delay, [this, head_lane, head_bytes] {
      OnClientReceive(head_lane, head_bytes);
    });
  }
}

void Experiment::OnClientReceive(size_t lane, size_t bytes) {
  if (done_) {
    return;
  }
  Lane& l = lanes_[lane];
  ++completed_;
  l.record.complete = ctx_->clock().now();
  l.record.bytes = bytes;
  l.record.server = l.server;
  l.record.tenant = l.req.tenant;
  l.record.cache_hit = l.req.cache_hit;
  l.record.counted = completed_ > config_.warmup_requests;
  telemetry_->Record(l.record);
  if (!l.record.counted) {
    if (completed_ == config_.warmup_requests) {
      count_start_ = ctx_->clock().now();
    }
  } else {
    ++counted_requests_;
    counted_bytes_ += bytes;
    share_[l.server].requests++;
    share_[l.server].bytes += bytes;
    if (counted_requests_ >= config_.max_requests) {
      done_ = true;
      return;
    }
  }
  if (workload_->closed_loop()) {
    IssueRequest(lane);
  } else {
    free_lanes_.push_back(lane);
  }
}

}  // namespace ioldrv
