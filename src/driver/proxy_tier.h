// ProxyTier: the two-tier composition of the experiment API.
//
// Wires a ProxyServer (src/proxy) in front of an origin Fleet and runs the
// standard Workload x Fleet x Telemetry engine against the proxy: clients
// talk to the proxy over the front link, proxy misses cross the configured
// backhaul to the fleet, and the returned ExperimentResult carries the
// per-tier fields (proxy_hit_rate, origin_hit_rate, backhaul_bytes,
// bytes_copied_backhaul, origin_latency) next to the usual throughput and
// latency summaries. The origin Fleet's balancer picks the member each
// backhaul fetch goes to, so balancing policies compose with the tier
// exactly as they do with a flat fleet.

#ifndef SRC_DRIVER_PROXY_TIER_H_
#define SRC_DRIVER_PROXY_TIER_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/driver/experiment.h"
#include "src/driver/fleet.h"
#include "src/proxy/proxy_server.h"

namespace ioldrv {

class ProxyTier {
 public:
  // `origins` is the fleet behind the proxy (its balancer routes backhaul
  // fetches); `pconfig` shapes the proxy tier, `config` the client
  // population. The System pieces must outlive the tier.
  ProxyTier(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net,
            iolfs::FileIoService* io, iolite::IoLiteRuntime* runtime, Fleet origins,
            iolproxy::ProxyConfig pconfig, ExperimentConfig config);

  // Runs `workload` against the proxy tier (one run per instance, like
  // Experiment). The result's proxy fields are filled from the run's
  // per-tier counters.
  ExperimentResult Run(Workload* workload, Experiment::RequestSource next_file,
                       Telemetry* sink = nullptr);

  iolproxy::ProxyServer& proxy() { return *proxy_; }
  const Fleet& origins() const { return origins_; }

 private:
  iolsim::SimContext* ctx_;
  Fleet origins_;
  std::unique_ptr<iolproxy::ProxyServer> proxy_;
  Experiment experiment_;
};

}  // namespace ioldrv

#endif  // SRC_DRIVER_PROXY_TIER_H_
