// ProcessTier: the driver that composes the shared-memory data plane into a
// runnable proxy + origin + CGI deployment, measures it, and *proves* its
// claims.
//
// One RunProcessTier call builds a plane in a shared region, runs the same
// worker roles in one of three modes — deterministic in-process pump, one
// thread per worker, or one fork()ed process per worker — plays a
// deterministic request mix against it, and verifies every response against
// an independent reference system (content is a pure function of file id, so
// the reference never touches the plane). Because the request sequence and
// the content are deterministic, the response byte stream — folded into
// `response_checksum` in submission order — must be identical across all
// three modes; that is the cross-mode byte-identity check.
//
// The second claim, "zero cross-process payload copies on the warm path",
// is asserted from *outside*: after the workers have exited, the driver
// re-attaches the region by name as a fresh mapping (when POSIX-shm backed)
// and reads kBytesCopiedCrossProcess through the ShmTable, the same way
// scripts/shm_inspect.py does.

#ifndef SRC_DRIVER_PROCESS_TIER_H_
#define SRC_DRIVER_PROCESS_TIER_H_

#include <cstdint>
#include <string>

#include "src/ipc/process_plane.h"
#include "src/proxy/plane_proxy.h"

namespace ioldrv {

struct ProcessTierConfig {
  iolipc::PlaneMode mode = iolipc::PlaneMode::kInProcess;

  // Region backing. A non-empty name requests POSIX shm ("<name>.<pid>" is
  // the actual segment, enabling out-of-process verification and
  // shm_inspect.py); empty, or shm-less environments, fall back to an
  // anonymous fork-shared mapping.
  std::string region_name = "iolite-plane";
  size_t region_bytes = 32u << 20;

  // Workload: `requests` total, at most `inflight` outstanding, file ids
  // drawn deterministically from the doc set; every `cgi_every`-th request
  // is dynamic (0 disables CGI traffic).
  int requests = 256;
  int inflight = 8;
  iolproxy::PlaneDocSet docs;
  int cgi_every = 8;
  uint64_t cgi_body_bytes = 1024;

  // Fleet shape.
  int proxy_workers = 2;
  int origin_workers = 1;
  int cgi_workers = 1;

  // Data-path variant: false = descriptor discipline (zero payload copies),
  // true = memcpy-per-response contrast path.
  bool copy_data_path = false;

  // Origin replica cache budget in bytes (0 = unlimited).
  uint64_t origin_cache_budget = 0;

  // Verify every response byte against the reference system. Off for pure
  // timing runs; the checksum is computed either way.
  bool verify = true;

  uint64_t fill_wait_us = 2'000'000;    // Proxy waiting on an origin fill.
  uint64_t client_wait_us = 5'000'000;  // Client waiting on a response.

  // --- Fault plane (src/fault) ---------------------------------------------
  // Poll the worker groups from the client loop (kProcesses only): abnormal
  // exits are respawned into the same slot — the replacement re-attaches to
  // the plane through the shared handles — and the dead worker's transient
  // pin, if any, is swept via the PinLedger.
  bool supervise = false;
  // Deterministic crash injection: SIGKILL proxy worker 0 once this many
  // requests have resolved (0 = never; kProcesses only).
  int kill_proxy_after = 0;
  // Deterministic crash injection at the worst instant: first-generation
  // proxy worker 0 _Exit(9)s on taking its Nth transient pin — ledger slot
  // recorded, map pin held — so the run proves the supervisor's sweep, not
  // just respawn (0 = never; kProcesses only; respawned workers come up
  // healthy, so the injection fires exactly once).
  int proxy_die_after_pins = 0;
  // Client-side recovery: re-submit a request up to this many times after
  // its future resolves with an error or times out.
  int client_retries = 0;

  iolipc::PlaneConfig plane;
};

struct ProcessTierResult {
  bool ok = false;  // Plane built and every worker joined cleanly.

  uint64_t requests = 0;  // Responses collected successfully.
  uint64_t errors = 0;    // Futures that resolved with an error.
  uint64_t bytes_served = 0;
  double wall_ms = 0;
  double requests_per_sec = 0;
  double mbits_per_sec = 0;

  // Plane counters (read back after quiesce; see counters_out_of_process).
  uint64_t bytes_copied_cross_process = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t origin_fills = 0;
  uint64_t cgi_requests = 0;
  uint64_t future_errors = 0;

  // True when the counters above were read through a *fresh* attach of the
  // region by name (possible only when POSIX-shm backed).
  bool counters_out_of_process = false;

  // True when every verified response matched the reference byte for byte
  // (true trivially when config.verify is off and no response mismatched a
  // length check).
  bool byte_identical = true;

  // Fold of all response bytes in submission order; equal across modes.
  uint64_t response_checksum = 0;

  // Abnormal exits seen anywhere: reaped by the supervisor mid-run plus
  // those discovered at final join. `ok` only requires the *final* join to
  // be clean, so a supervised run that absorbed deliberate kills still
  // reports ok.
  int abnormal_worker_exits = 0;
  uint64_t worker_respawns = 0;      // Workers relaunched by the supervisor.
  uint64_t pins_swept = 0;           // Stale pins reclaimed from dead workers.
  uint64_t client_retries_used = 0;  // Re-submissions the client performed.
  uint64_t leaked_pins = 0;          // Pins still held on doc keys after quiesce.
};

ProcessTierResult RunProcessTier(const ProcessTierConfig& config);

}  // namespace ioldrv

#endif  // SRC_DRIVER_PROCESS_TIER_H_
