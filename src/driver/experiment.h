// Experiment: the engine composing the three orthogonal experiment axes —
// Workload (arrival process) x Fleet (servers + balancer) x Telemetry
// (per-request records) — over the staged request pipeline.
//
// The engine owns the client population: it issues requests per the
// Workload, spreads them over the Fleet's members (queueing — never
// dropping — when ExperimentConfig::max_concurrent caps a member's
// concurrency), lets each member's staged pipeline acquire CPU/disk/link
// as stages run, delivers responses in per-connection issue order
// (HTTP/1.1 pipelining head-of-line blocking), and timestamps every
// request for the Telemetry sink. One Run per Experiment instance: a
// second Run would reuse stale lane/counter state and dies loudly instead.
//
// The old single-server, throughput-only entry point survives as
// iolhttp::LoadDriver, a thin wrapper over this engine.

#ifndef SRC_DRIVER_EXPERIMENT_H_
#define SRC_DRIVER_EXPERIMENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/driver/fleet.h"
#include "src/driver/telemetry.h"
#include "src/driver/workload.h"
#include "src/fault/fault_plan.h"
#include "src/fault/recovery.h"
#include "src/fs/file_cache.h"
#include "src/httpd/http_server.h"
#include "src/httpd/request_pipeline.h"
#include "src/net/tcp.h"
#include "src/simos/event_queue.h"
#include "src/simos/sim_context.h"

namespace iolqos {
class QosPolicy;
}  // namespace iolqos

namespace ioldrv {

// Knobs orthogonal to all three axes: how much to measure, the network
// between clients and fleet, and per-member admission policy.
struct ExperimentConfig {
  // Stop after this many counted (post-warmup) request completions. A
  // replayed log may end first; the run then counts what completed.
  uint64_t max_requests = 20000;
  // Completions ignored at the start (cold caches, cold mappings).
  uint64_t warmup_requests = 0;
  bool persistent_connections = false;
  iolnet::DelayRouter delay;
  // Cap on concurrently served connections per fleet member (Apache
  // process model); 0 = off. Excess arrivals wait in that member's FIFO
  // accept queue — they are never dropped.
  int max_concurrent = 0;
  // Enforce the file-cache byte budget from the memory model after each
  // request (trace experiments). Off for single-file tests.
  bool enforce_cache_budget = false;
  // OS threads executing the sharded engine (ShardedExperiment only; the
  // classic single-context Experiment ignores it). The lane topology —
  // one lane per fleet member plus the frontend — is fixed by the fleet,
  // so any shard_count produces byte-identical telemetry; this knob only
  // changes how many lanes run concurrently.
  int shard_count = 1;
  // Multi-tenant QoS policy plane (src/qos; classic Experiment only). When
  // set, the engine classifies every request at issue time, fires the
  // on_admit stage hook at the fleet front door (token-bucket delays are
  // honored before the balancer runs), establishes the owning tenant on
  // the SimContext for each serve, and fills ExperimentResult::tenants.
  // Null runs the exact pre-QoS code paths. Not owned.
  iolqos::QosPolicy* qos = nullptr;
  // Fixed file-cache byte budget enforced after each completion (0 = off;
  // independent of enforce_cache_budget's memory-model budget). The
  // adversarial cache-pressure scenarios pin the budget explicitly.
  uint64_t cache_budget_bytes = 0;
  // Deterministic fault plan (src/fault; classic Experiment only). The
  // engine arms member crash/restart flips on the event queue and device
  // degradation windows on the context's disk/link Resources before the
  // run starts; backhaul flaps are armed by the proxy's owner instead (the
  // engine has no proxy handle). Null — or an EMPTY plan — leaves every
  // code path untouched: the golden determinism tests pin byte-identity.
  // Not owned. A plan containing member crashes requires the recovery
  // plane below (a black-holed request would otherwise hang the run).
  const iolfault::FaultPlan* faults = nullptr;
  // Recovery policy: per-request timeout, capped-backoff retries, hedged
  // requests, health-check balancer ejection. Inert (and byte-identical to
  // the pre-fault engine) unless recovery.enabled(). Recovery mode
  // requires pipeline_depth == 1: an abandoned attempt's connection is
  // dead, which is unrepresentable mid-pipeline.
  iolfault::RecoveryConfig recovery;
};

// Per-member slice of the run (who served what, how concurrently).
struct ServerShare {
  uint64_t requests = 0;  // Counted completions served by this member.
  uint64_t bytes = 0;
  int peak_concurrent = 0;
};

// Per-tenant slice of the result (multi-tenant runs; see
// ExperimentConfig::qos). The two hit metrics answer different questions:
// cache_hit_fraction is the per-request flag over the counted window, while
// cache_hit_rate is this tenant's whole-run unified-cache lookup rate from
// the QoS policy's per-tenant counters — the aggregate cache_hit_rate below
// can no longer mask one tenant's hit-rate collapse behind another's scan.
struct TenantBreakdown {
  iolsim::TenantId tenant = iolsim::kDefaultTenant;
  std::string name;        // Registry name when a policy is attached.
  uint64_t requests = 0;   // Counted completions.
  uint64_t bytes = 0;
  LatencySummary latency;  // End-to-end, counted records only.
  double cache_hit_fraction = 0;
  double cache_hit_rate = 0;
};

// The structured result: throughput counters plus the latency distribution,
// overall and per fleet member.
struct ExperimentResult {
  uint64_t requests = 0;
  uint64_t bytes = 0;
  double seconds = 0;
  double megabits_per_sec = 0;
  // Machine-wide cache hit rate over the WHOLE run, warmup included —
  // deliberately the old DriverResult semantics (the trace figures' hit
  // columns report the machine's cache behavior, cold start and all).
  double cache_hit_rate = 0;
  // Fraction of counted requests whose body came from the cache — the
  // same measurement window as `latency`; use this when correlating hit
  // behavior with percentiles.
  double cache_hit_fraction = 0;
  // High-water mark of concurrently served requests, fleet-wide.
  int peak_concurrent = 0;
  // Arrivals that had to wait in an accept queue (max_concurrent).
  uint64_t admission_waits = 0;
  // End-to-end latency (issue to last response byte) of counted requests.
  LatencySummary latency;
  std::vector<ServerShare> per_server;
  // Per-tenant breakdown, ordered by tenant id. Empty for single-tenant
  // runs with no QoS policy attached (every pre-QoS bench), so existing
  // JSON rows are unchanged.
  std::vector<TenantBreakdown> tenants;

  // Proxy-tier fields (filled by ProxyTier; zero for single-tier runs, and
  // serialized on every JsonReporter row so BENCH_*.json schemas are
  // uniform across figures). Hit rates cover the whole run, like
  // cache_hit_rate above.
  double proxy_hit_rate = 0;
  double origin_hit_rate = 0;
  // Payload fetched over the backhaul, and the subset of it a copy-based
  // proxy memcpy'd into its private cache on arrival. A warm co-located
  // IO-Lite run reports 0 for both.
  uint64_t backhaul_bytes = 0;
  uint64_t bytes_copied_backhaul = 0;
  // Backhaul fetch latency (proxy miss to object resident at the proxy).
  LatencySummary origin_latency;
  // Instant the measurement window opened (the warmup-th completion; 0
  // when warmup_requests == 0). ProxyTier classifies backhaul fetches
  // against the same window result.latency uses.
  iolsim::SimTime count_start = 0;

  // Host-side performance of the run (not simulated quantities): wall-clock
  // time spent inside Run and events dispatched by the engine. JsonReporter
  // emits these on every bench row so BENCH_*.json files carry a wall-clock
  // trajectory; simulated results must never depend on them.
  double wall_ms = 0;
  uint64_t events_dispatched = 0;

  // Fault-plane accounting (src/fault), over the counted window. Fault-free
  // runs report availability 1, error_rate 0, goodput == megabits_per_sec,
  // and zeros elsewhere — JsonReporter emits the first four on every row so
  // BENCH_*.json schemas stay uniform. goodput counts delivered bytes only;
  // failed requests contribute requests (the denominator) but no bytes, so
  // goodput < megabits-at-the-wire whenever work is wasted on lost serves.
  double availability = 1.0;
  double error_rate = 0.0;
  uint64_t retries = 0;            // Retry attempts issued.
  uint64_t hedges = 0;             // Hedged duplicates issued.
  double goodput_mbps = 0;
  uint64_t failed_requests = 0;    // Counted kTimedOut/kFailed outcomes.
  uint64_t response_drops = 0;     // Responses lost to member crashes.
  uint64_t blackholed_arrivals = 0;  // Arrivals routed to a down member.
  uint64_t health_ejections = 0;   // Health-checker ejection transitions.

  // --- CDN hierarchy (src/cdn; filled by CdnTier, empty otherwise) --------
  // One entry per hierarchy level, index 0 = the edge tier. Mirrors the
  // SimStats::cdn[] counter block, summed over the run's window.
  struct CdnLevelResult {
    int proxies = 0;           // Proxies at this level.
    double hit_rate = 0;       // Level-local cache hit rate.
    uint64_t backhaul_bytes = 0;
    uint64_t stale_serves = 0;
    uint64_t invalidations_sent = 0;
    uint64_t invalidations_applied = 0;
    uint64_t revalidations = 0;
    uint64_t revalidation_bytes = 0;
    uint64_t fetch_races = 0;
    uint64_t shaper_holds = 0;
  };
  std::vector<CdnLevelResult> cdn_levels;
  // Per-edge client-population slice (requests pin to their edge via
  // Workload::PinMember; per_server above carries the same edge indices).
  struct EdgeBreakdown {
    uint64_t requests = 0;
    uint64_t bytes = 0;
    LatencySummary latency;
    double cache_hit_fraction = 0;
  };
  std::vector<EdgeBreakdown> edges;
  // Staleness ages of every stale serve in the hierarchy (the "ms" fields
  // summarize ages, not latencies). Zero-count when nothing was stale.
  LatencySummary staleness;
  uint64_t stale_serves = 0;
  uint64_t cdn_writes = 0;       // Origin writes the write plan applied.
  // Load that reached the origin fleet: fetches issued by the top proxy
  // level — the number the hierarchy exists to shrink.
  uint64_t origin_fleet_fetches = 0;
};

class Experiment {
 public:
  // Returns the file to request next; shared across clients, called in
  // service order. Ignored for arrivals whose Workload pins the file
  // (trace replay).
  using RequestSource = std::function<iolfs::FileId()>;

  Experiment(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net,
             iolfs::FileCache* cache, Fleet fleet, ExperimentConfig config)
      : ctx_(ctx), net_(net), cache_(cache), fleet_(std::move(fleet)),
        config_(config) {}

  // Single-server convenience.
  Experiment(iolsim::SimContext* ctx, iolnet::NetworkSubsystem* net,
             iolfs::FileCache* cache, iolhttp::HttpServer* server,
             ExperimentConfig config)
      : Experiment(ctx, net, cache, Fleet::Single(server), config) {}

  // Runs `workload` to completion. Per-request records go to `sink` when
  // given, else to the internal Telemetry (see telemetry()). Fatal on a
  // second call: the engine's lanes and counters are single-run state.
  ExperimentResult Run(Workload* workload, RequestSource next_file,
                       Telemetry* sink = nullptr);

  // The sink the last Run recorded into.
  const Telemetry& telemetry() const { return *telemetry_; }

  Fleet& fleet() { return fleet_; }

  // Whether the run has hit its completion target. Self-rescheduling
  // background event sources (the CDN write plan) consult this to stop
  // re-arming — Run drains the queue after done_, and an event that always
  // schedules a successor would keep the drain alive forever.
  bool finished() const { return done_; }

 private:
  // One request slot: a connection (shared by a client's pipelined lanes)
  // plus the in-flight request state. Lives in a deque so addresses stay
  // stable when the open-loop pool grows, with block-contiguous storage
  // (the per-completion hot path walks lane state five times per request).
  struct Lane {
    iolnet::TcpConnection* conn = nullptr;
    size_t conn_index = 0;
    uint64_t seq = 0;        // Issue order on this lane's connection.
    size_t server = 0;       // Fleet member chosen at arrival.
    bool has_pinned_file = false;
    iolfs::FileId pinned_file = iolfs::kInvalidFile;
    RequestRecord record;
    iolhttp::RequestContext req;

    // --- Recovery plane (src/fault; untouched unless recovery.enabled()).
    // A logical request is a "flight"; its state lives on the lane of the
    // current primary attempt (the owner). Retries MIGRATE the flight to a
    // fresh lane/connection; hedges spawn a parallel attempt lane pointing
    // back at the owner via flight_owner. Every non-limbo lane is held by
    // exactly one pending continuation (arrival event, QoS hold, accept
    // queue slot, pipeline on_done, or delivery event), which is what
    // recycles it once it goes zombie; limbo lanes are held by nothing and
    // are reclaimed by the flight's timeout.
    uint32_t flight_owner = kNoLane;  // Set on hedge attempts only.
    uint32_t hedge_lane = kNoLane;    // Owner: outstanding hedge attempt.
    iolsim::EventQueue::EventId timeout_ev = kNoEvent;  // Owner only.
    iolsim::EventQueue::EventId hedge_ev = kNoEvent;    // Owner only.
    uint32_t serve_epoch = 0;  // Member crash epoch at serve start.
    uint8_t attempts = 1;      // Issues of this flight (1 + retries).
    uint8_t retries_used = 0;
    bool zombie = false;  // Abandoned attempt: swallow its completion, recycle.
    bool limbo = false;   // No continuation holds this lane (black-holed).
  };

  // Per-connection pipelining state: responses are delivered to the client
  // in request-issue order even when the staged pipeline completes them
  // out of order.
  struct ConnState {
    uint64_t next_issue = 0;
    uint64_t next_deliver = 0;
    // Completed out-of-order responses waiting for their turn: seq ->
    // (lane, bytes).
    std::map<uint64_t, std::pair<size_t, size_t>> done_out_of_order;
  };

  static constexpr uint32_t kNoLane = UINT32_MAX;
  static constexpr iolsim::EventQueue::EventId kNoEvent = ~0ull;

  size_t AddLane(size_t conn_index);
  void AddConnection();
  // Recomputes the steady-state memory the client population pins, for the
  // current pool size (open-loop growth re-runs this).
  void UpdateSteadyMemory();
  // Client issues: the request propagates to the fleet (one-way delay).
  void IssueRequest(size_t lane);
  // Request reaches the fleet: the on_admit stage hook may delay it
  // (token-bucket throttling), then the balancer picks a member; admitted
  // now or queued behind that member's max_concurrent.
  void ArriveAtFleet(size_t lane);
  void AdmitToFleet(size_t lane);
  void ServeRequest(size_t lane);
  void OnServerDone(size_t lane);
  void OnClientReceive(size_t lane, size_t bytes);
  // Serves queued waiters while the member has capacity (the per-completion
  // pop, and the post-restart kick), skipping zombie entries.
  void DrainAcceptQueue(size_t s);
  void ScheduleNextArrival();
  uint64_t CacheBudget() const;

  // --- Fault plane (src/fault) ------------------------------------------
  void ArmFaults();
  void CrashMember(size_t m);
  void RestartMember(size_t m, bool cold_cache);
  void RunHealthProbe();
  // Flight lifecycle (recovery mode only).
  void ArmFlightTimers(size_t lane, iolsim::SimTime extra_delay);
  void CancelFlightTimers(size_t lane);
  void OnRequestTimeout(size_t lane);
  void FireHedge(size_t lane);
  void DeliverFlight(size_t lane, size_t bytes);
  size_t AcquireAttemptLane();
  void RecycleLane(size_t lane);
  // Marks an attempt abandoned; reclaims it immediately when nothing holds
  // it (limbo), else its pending continuation swallows and recycles it.
  void AbandonAttempt(size_t lane);

  iolsim::SimContext* ctx_;
  iolnet::NetworkSubsystem* net_;
  iolfs::FileCache* cache_;
  Fleet fleet_;
  ExperimentConfig config_;
  Workload* workload_ = nullptr;
  RequestSource next_file_;
  Telemetry own_telemetry_;
  // Points at own_telemetry_ until Run is handed an external sink, so
  // telemetry() is always safe to call.
  Telemetry* telemetry_ = &own_telemetry_;

  std::vector<std::unique_ptr<iolnet::TcpConnection>> conns_;
  std::vector<ConnState> conn_state_;
  std::deque<Lane> lanes_;
  std::vector<size_t> free_lanes_;  // Open loop: idle pool entries.

  // Per fleet member.
  std::vector<std::deque<size_t>> accept_queues_;
  std::vector<int> in_service_per_;
  std::vector<ServerShare> share_;
  std::vector<int> load_scratch_;  // Balancer input, reused per arrival.

  int pipeline_depth_ = 1;
  int in_service_ = 0;
  int peak_in_service_ = 0;
  uint64_t admission_waits_ = 0;
  uint64_t completed_ = 0;  // All completions, including warmup.
  uint64_t counted_requests_ = 0;
  uint64_t counted_bytes_ = 0;
  iolsim::SimTime count_start_ = 0;
  bool done_ = false;
  bool ran_ = false;

  // Fault plane state. fault_on_/recovery_on_ gate every new branch on the
  // hot paths; both false reproduces the pre-fault engine byte for byte.
  bool fault_on_ = false;     // A non-empty plan is attached.
  bool recovery_on_ = false;  // config_.recovery.enabled().
  bool health_on_ = false;    // recovery_on_ && health_checks.
  std::vector<uint8_t> ejected_;  // Health-checker verdict per member.
  std::vector<int> probe_bad_;    // Consecutive failed probes.
  std::vector<int> probe_good_;   // Consecutive good probes.
  uint64_t retries_total_ = 0;
  uint64_t hedges_total_ = 0;
  uint64_t failed_counted_ = 0;
  uint64_t response_drops_ = 0;
  uint64_t blackholed_ = 0;
  uint64_t health_ejections_ = 0;
};

}  // namespace ioldrv

#endif  // SRC_DRIVER_EXPERIMENT_H_
