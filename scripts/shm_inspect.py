#!/usr/bin/env python3
"""Out-of-process inspector for IO-Lite shared-memory data planes.

Maps a plane's region read-only, walks the ShmTable directory at payload
offset 0, decodes every structure it knows (queues, map, futures, counters)
with nothing but the fixed ABI offsets from src/ipc/*.h, and prints one JSON
document. This is the proof that the plane's state is genuinely discoverable
from outside the serving processes: no C++ involved, no cooperation from the
workers, works while they run or after they exit.

Usage:
    scripts/shm_inspect.py                 # list /dev/shm segments with a region header
    scripts/shm_inspect.py <name>          # dump plane in /dev/shm/<name> as JSON
    scripts/shm_inspect.py /path/to/file   # same, by explicit path

ABI mirrored here (keep in sync):
    ShmRegion::Header   src/ipc/shm_region.h   magic IOLS, payload @ +64
    ShmTable            src/ipc/shm_table.h    magic IOLT, 64-byte entries
    MpmcQueue           src/ipc/mpmc_queue.h   magic IOLQ
    ShmMap              src/ipc/shm_map.h      magic IOLM
    ShmFuturePool       src/ipc/shm_future.h   magic IOLF
    ShmCounters         src/ipc/shm_counters.h magic IOLC
"""

import json
import mmap
import os
import struct
import sys

REGION_MAGIC = 0x494F4C53  # "IOLS"
TABLE_MAGIC = 0x494F4C54   # "IOLT"
QUEUE_MAGIC = 0x494F4C51   # "IOLQ"
MAP_MAGIC = 0x494F4C4D     # "IOLM"
FUTURE_MAGIC = 0x494F4C46  # "IOLF"
COUNTERS_MAGIC = 0x494F4C43  # "IOLC"

HEADER_SPAN = 64  # Region header; payload starts here.

SHM_TYPE_NAMES = {0: "raw", 1: "queue", 2: "map", 3: "futures", 4: "counters", 5: "ring"}

# Index-aligned with PlaneCounter in src/ipc/shm_counters.h.
COUNTER_NAMES = [
    "requests_served", "cache_hits", "cache_misses", "bytes_served",
    "bytes_copied_cross_process", "bytes_filled_origin", "origin_fills",
    "cgi_requests", "future_errors", "queue_full_yields", "map_evictions",
    "worker_abnormal_exits", "worker_respawns", "pins_swept",
    # CDN consistency accounting (planes fronting a hierarchy publish these;
    # older planes stop at pins_swept and the count field keeps us honest).
    "stale_serves", "invalidations_sent", "revalidation_bytes",
]

FUTURE_STATE_NAMES = {0: "free", 1: "pending", 2: "ready", 3: "error", 4: "writing"}


def decode_region_header(buf):
    magic, _res, payload_size, bump, owner_pid = struct.unpack_from("<IIQQQ", buf, 0)
    if magic != REGION_MAGIC:
        return None
    return {
        "payload_size": payload_size,
        "bytes_used": bump,
        "owner_pid": owner_pid,
        "owner_alive": pid_alive(owner_pid),
    }


def pid_alive(pid):
    if pid == 0:
        return False
    try:
        os.kill(pid, 0)
        return True
    except ProcessLookupError:
        return False
    except PermissionError:
        return True


def decode_table(payload):
    magic, capacity, count, _res = struct.unpack_from("<IIII", payload, 0)
    if magic != TABLE_MAGIC:
        return None
    entries = []
    count = min(count, capacity)
    for i in range(count):
        off = 64 + i * 64
        name_raw = bytes(payload[off:off + 32])
        name = name_raw.split(b"\0", 1)[0].decode("ascii", "replace")
        offset, size, etype, state = struct.unpack_from("<QQII", payload, off + 32)
        if state != 2:  # kEntryReady
            continue
        entries.append({
            "name": name,
            "offset": offset,
            "size": size,
            "type": SHM_TYPE_NAMES.get(etype, etype),
        })
    return entries


def decode_queue(payload, off):
    magic, capacity = struct.unpack_from("<II", payload, off)
    if magic != QUEUE_MAGIC:
        return {"error": "bad queue magic"}
    (enq,) = struct.unpack_from("<Q", payload, off + 64)
    (deq,) = struct.unpack_from("<Q", payload, off + 128)
    (closed,) = struct.unpack_from("<I", payload, off + 192)
    return {
        "capacity": capacity,
        "enqueued": enq,
        "dequeued": deq,
        "occupancy": max(0, enq - deq),
        "closed": bool(closed),
    }


def decode_map(payload, off, max_entries):
    magic, capacity, size, tombstones, bytes_, clock_hand = struct.unpack_from(
        "<IIIIQQ", payload, off)
    if magic != MAP_MAGIC:
        return {"error": "bad map magic"}
    live = []
    for i in range(capacity):
        soff = off + 64 + i * 64
        state, pins, key, value_off, value_len = struct.unpack_from(
            "<IiQQQ", payload, soff)
        if state != 2:  # kFull
            continue
        if len(live) < max_entries:
            live.append({
                "key": key,
                "pins": pins,
                "payload_offset": value_off,
                "payload_length": value_len,
            })
    return {
        "capacity": capacity,
        "size": size,
        "tombstones": tombstones,
        "bytes": bytes_,
        "clock_hand": clock_hand,
        "entries": live,
    }


def decode_futures(payload, off):
    magic, capacity, allocated, _hint = struct.unpack_from("<IIII", payload, off)
    if magic != FUTURE_MAGIC:
        return {"error": "bad future pool magic"}
    states = {}
    for i in range(capacity):
        (state,) = struct.unpack_from("<I", payload, off + 64 + i * 128)
        name = FUTURE_STATE_NAMES.get(state, str(state))
        states[name] = states.get(name, 0) + 1
    return {"capacity": capacity, "allocated": allocated, "states": states}


def decode_counters(payload, off):
    magic, count = struct.unpack_from("<II", payload, off)
    if magic != COUNTERS_MAGIC:
        return {"error": "bad counters magic"}
    out = {}
    for i in range(count):
        (value,) = struct.unpack_from("<Q", payload, off + 64 + 8 * i)
        name = COUNTER_NAMES[i] if i < len(COUNTER_NAMES) else "counter_%d" % i
        out[name] = value
    return out


def inspect(path, max_map_entries=64):
    # One consistent snapshot of the mapping (counters and tickets keep
    # moving under a live plane; decoding a snapshot keeps the output
    # self-consistent and sidesteps torn multi-field reads).
    with open(path, "rb") as f:
        mapped = mmap.mmap(f.fileno(), 0, prot=mmap.PROT_READ)
        try:
            buf = mapped[:]
        finally:
            mapped.close()
    region = decode_region_header(buf)
    if region is None:
        return {"path": path, "error": "no IO-Lite region header"}
    payload = buf[HEADER_SPAN:]
    doc = {"path": path, "region": region}
    entries = decode_table(payload)
    if entries is None:
        doc["error"] = "no ShmTable at payload offset 0"
        return doc
    doc["table"] = entries
    structures = {}
    for e in entries:
        kind, off = e["type"], e["offset"]
        if kind == "queue":
            structures[e["name"]] = decode_queue(payload, off)
        elif kind == "map":
            structures[e["name"]] = decode_map(payload, off, max_map_entries)
        elif kind == "futures":
            structures[e["name"]] = decode_futures(payload, off)
        elif kind == "counters":
            structures[e["name"]] = decode_counters(payload, off)
    doc["structures"] = structures
    return doc


def list_regions():
    found = []
    try:
        names = sorted(os.listdir("/dev/shm"))
    except FileNotFoundError:
        return found
    for name in names:
        path = os.path.join("/dev/shm", name)
        try:
            with open(path, "rb") as f:
                head = f.read(64)
            if len(head) >= 32 and decode_region_header(head) is not None:
                found.append({"name": name, **decode_region_header(head)})
        except OSError:
            continue
    return found


def main(argv):
    if len(argv) < 2:
        print(json.dumps({"regions": list_regions()}, indent=2))
        return 0
    arg = argv[1]
    path = arg if os.path.sep in arg else os.path.join("/dev/shm", arg.lstrip("/"))
    doc = inspect(path)
    print(json.dumps(doc, indent=2))
    return 0 if "error" not in doc else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
