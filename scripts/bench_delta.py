#!/usr/bin/env python3
"""Report-only wall-clock comparison of two BENCH_*.json files.

Usage: scripts/bench_delta.py BASELINE.json CURRENT.json

Prints, per series, the events_per_sec delta of CURRENT relative to
BASELINE. Always exits 0: wall-clock numbers depend on the host, so this is
a trend report for humans (and CI logs), not a gate. Simulated values
(requests, latencies, counters) are protected separately by the determinism
tests — this script deliberately ignores them.
"""

import json
import sys


def rows_by_series(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for row in doc.get("rows", []):
        if "events_per_sec" in row:
            # Keyed by (series, x): perf rows are unique per point.
            out[(row["series"], row.get("x", 0))] = row
    return doc, out


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip())
        return 0
    base_doc, base = rows_by_series(sys.argv[1])
    cur_doc, cur = rows_by_series(sys.argv[2])
    if base_doc.get("smoke") != cur_doc.get("smoke"):
        print("bench_delta: smoke flags differ (%s vs %s) — deltas are meaningless"
              % (base_doc.get("smoke"), cur_doc.get("smoke")))
    print("%-24s %14s %14s %8s" % ("series", "base ev/s", "current ev/s", "delta"))
    for key in sorted(base.keys() | cur.keys(), key=str):
        b = base.get(key)
        c = cur.get(key)
        name = "%s@%g" % key
        if b is None or c is None:
            print("%-24s %14s %14s %8s" % (name,
                                           "-" if b is None else "%.3g" % b["events_per_sec"],
                                           "-" if c is None else "%.3g" % c["events_per_sec"],
                                           "n/a"))
            continue
        bv, cv = b["events_per_sec"], c["events_per_sec"]
        delta = (cv - bv) / bv * 100 if bv else float("nan")
        print("%-24s %14.4g %14.4g %+7.1f%%" % (name, bv, cv, delta))
    print("bench_delta: report-only (never fails the build)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
