#!/usr/bin/env python3
"""Wall-clock comparison of two BENCH_*.json files.

Usage: scripts/bench_delta.py [--fail-above PCT] BASELINE.json CURRENT.json

Prints, per series, the events_per_sec delta of CURRENT relative to
BASELINE. By default this always exits 0: wall-clock numbers depend on the
host, so it is a trend report for humans (and CI logs), not a gate.
Simulated values (requests, latencies, counters) are protected separately
by the determinism tests — this script deliberately ignores them.

With --fail-above PCT the script becomes a coarse regression tripwire: it
exits 1 if any series present in BOTH files slowed down by more than PCT
percent. The threshold should be generous (CI hosts are noisy); it exists
to catch order-of-magnitude engine regressions, not 5% drift. Series that
exist on only one side never trip the gate.
"""

import json
import sys


def rows_by_series(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for row in doc.get("rows", []):
        if "events_per_sec" in row:
            # Keyed by (series, x): perf rows are unique per point.
            out[(row["series"], row.get("x", 0))] = row
    return doc, out


def main():
    argv = sys.argv[1:]
    fail_above = None
    if "--fail-above" in argv:
        i = argv.index("--fail-above")
        try:
            fail_above = float(argv[i + 1])
        except (IndexError, ValueError):
            print("bench_delta: --fail-above needs a numeric percentage", file=sys.stderr)
            return 2
        del argv[i:i + 2]
    if len(argv) != 2:
        print(__doc__.strip())
        return 0
    base_doc, base = rows_by_series(argv[0])
    cur_doc, cur = rows_by_series(argv[1])
    if base_doc.get("smoke") != cur_doc.get("smoke"):
        print("bench_delta: smoke flags differ (%s vs %s) — deltas are meaningless"
              % (base_doc.get("smoke"), cur_doc.get("smoke")))
    print("%-24s %14s %14s %8s" % ("series", "base ev/s", "current ev/s", "delta"))
    tripped = []
    for key in sorted(base.keys() | cur.keys(), key=str):
        b = base.get(key)
        c = cur.get(key)
        name = "%s@%g" % key
        if b is None or c is None:
            print("%-24s %14s %14s %8s" % (name,
                                           "-" if b is None else "%.3g" % b["events_per_sec"],
                                           "-" if c is None else "%.3g" % c["events_per_sec"],
                                           "n/a"))
            continue
        bv, cv = b["events_per_sec"], c["events_per_sec"]
        delta = (cv - bv) / bv * 100 if bv else float("nan")
        print("%-24s %14.4g %14.4g %+7.1f%%" % (name, bv, cv, delta))
        if fail_above is not None and delta < -fail_above:
            tripped.append((name, delta))
    if fail_above is None:
        print("bench_delta: report-only (never fails the build)")
        return 0
    if tripped:
        for name, delta in tripped:
            print("bench_delta: FAIL %s regressed %.1f%% (threshold %.0f%%)"
                  % (name, -delta, fail_above), file=sys.stderr)
        return 1
    print("bench_delta: all shared series within %.0f%% of baseline" % fail_above)
    return 0


if __name__ == "__main__":
    sys.exit(main())
