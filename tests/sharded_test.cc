// The sharded engine's determinism contract: run-twice reproducibility and
// shard-count invariance. The lane topology is fixed by the fleet, so
// ExperimentConfig::shard_count (OS threads) must change nothing but
// wall-clock time — shards ∈ {1, 2, 4} on a fig03-shaped load have to
// produce byte-identical telemetry, counters, and per-member shares.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "src/driver/sharded_experiment.h"
#include "src/driver/workload.h"

namespace {

using ioldrv::ExperimentConfig;
using ioldrv::ExperimentResult;
using ioldrv::RequestRecord;
using ioldrv::ShardedExperiment;
using ioldrv::ShardedResult;
using ioldrv::ShardMember;

constexpr size_t kMembers = 4;
constexpr iolsim::SimTime kOneWay = 1'000'000;  // 1 ms — the lookahead.

ShardMember MakeMember(size_t) {
  iolbench::Bench b = iolbench::MakeBench(iolbench::ServerKind::kFlashLite);
  b.sys->fs().CreateFile("doc", 6000);
  return ShardMember{std::move(b.sys), std::move(b.server)};
}

ExperimentConfig Fig03ShapedConfig(int shards, bool persistent) {
  ExperimentConfig config;
  config.max_requests = 600;
  config.warmup_requests = 50;
  config.persistent_connections = persistent;
  config.delay.one_way_delay = kOneWay;
  config.shard_count = shards;
  return config;
}

struct Capture {
  ShardedResult sharded;
  std::vector<RequestRecord> records;
};

Capture RunClosedLoop(int shards, bool persistent, int clients = 24) {
  ShardedExperiment exp(kMembers, MakeMember, Fig03ShapedConfig(shards, persistent));
  iolfs::FileId doc = exp.member_system(0)->fs().Lookup("doc");
  ioldrv::ClosedLoop workload(clients);
  Capture cap;
  cap.sharded = exp.Run(&workload, [doc] { return doc; });
  cap.records = exp.telemetry().records();
  return cap;
}

Capture RunOpenLoop(int shards) {
  ShardedExperiment exp(kMembers, MakeMember, Fig03ShapedConfig(shards, false));
  iolfs::FileId doc = exp.member_system(0)->fs().Lookup("doc");
  ioldrv::OpenLoopPoisson workload(2000.0, 0x5eed, 8);
  Capture cap;
  cap.sharded = exp.Run(&workload, [doc] { return doc; });
  cap.records = exp.telemetry().records();
  return cap;
}

// Byte-identical telemetry: every field of every record.
void ExpectSameRecords(const std::vector<RequestRecord>& a,
                       const std::vector<RequestRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].issue, b[i].issue) << "record " << i;
    EXPECT_EQ(a[i].admit, b[i].admit) << "record " << i;
    EXPECT_EQ(a[i].complete, b[i].complete) << "record " << i;
    EXPECT_EQ(a[i].bytes, b[i].bytes) << "record " << i;
    EXPECT_EQ(a[i].server, b[i].server) << "record " << i;
    EXPECT_EQ(a[i].cache_hit, b[i].cache_hit) << "record " << i;
    EXPECT_EQ(a[i].counted, b[i].counted) << "record " << i;
  }
}

// Every simulated (non-wall-clock) field of the merged result.
void ExpectSameResult(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.megabits_per_sec, b.megabits_per_sec);
  EXPECT_EQ(a.cache_hit_rate, b.cache_hit_rate);
  EXPECT_EQ(a.cache_hit_fraction, b.cache_hit_fraction);
  EXPECT_EQ(a.peak_concurrent, b.peak_concurrent);
  EXPECT_EQ(a.admission_waits, b.admission_waits);
  EXPECT_EQ(a.count_start, b.count_start);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.latency.count, b.latency.count);
  EXPECT_EQ(a.latency.mean_ms, b.latency.mean_ms);
  EXPECT_EQ(a.latency.p50_ms, b.latency.p50_ms);
  EXPECT_EQ(a.latency.p99_ms, b.latency.p99_ms);
  EXPECT_EQ(a.latency.max_ms, b.latency.max_ms);
  ASSERT_EQ(a.per_server.size(), b.per_server.size());
  for (size_t m = 0; m < a.per_server.size(); ++m) {
    EXPECT_EQ(a.per_server[m].requests, b.per_server[m].requests) << "member " << m;
    EXPECT_EQ(a.per_server[m].bytes, b.per_server[m].bytes) << "member " << m;
    EXPECT_EQ(a.per_server[m].peak_concurrent, b.per_server[m].peak_concurrent)
        << "member " << m;
  }
}

TEST(ShardedExperiment, RunTwiceIsIdentical) {
  Capture first = RunClosedLoop(2, false);
  Capture second = RunClosedLoop(2, false);
  ExpectSameRecords(first.records, second.records);
  ExpectSameResult(first.sharded.result, second.sharded.result);
  EXPECT_EQ(first.sharded.lane_events, second.sharded.lane_events);
  EXPECT_EQ(first.sharded.shard.rounds, second.sharded.shard.rounds);
  EXPECT_EQ(first.sharded.shard.messages, second.sharded.shard.messages);
}

TEST(ShardedExperiment, ShardCountInvariance) {
  Capture base = RunClosedLoop(1, false);
  ASSERT_EQ(base.sharded.shard.threads, 1);
  EXPECT_EQ(base.sharded.result.requests, 600u);
  for (int shards : {2, 4}) {
    Capture other = RunClosedLoop(shards, false);
    ExpectSameRecords(base.records, other.records);
    ExpectSameResult(base.sharded.result, other.sharded.result);
    EXPECT_EQ(base.sharded.lane_events, other.sharded.lane_events);
    EXPECT_EQ(base.sharded.shard.rounds, other.sharded.shard.rounds);
    EXPECT_EQ(base.sharded.shard.messages, other.sharded.shard.messages);
  }
}

TEST(ShardedExperiment, ShardCountInvariancePersistentConnections) {
  Capture base = RunClosedLoop(1, true);
  for (int shards : {2, 4}) {
    Capture other = RunClosedLoop(shards, true);
    ExpectSameRecords(base.records, other.records);
    ExpectSameResult(base.sharded.result, other.sharded.result);
  }
}

TEST(ShardedExperiment, ShardCountInvarianceOpenLoop) {
  Capture base = RunOpenLoop(1);
  EXPECT_GT(base.sharded.result.requests, 0u);
  for (int shards : {2, 4}) {
    Capture other = RunOpenLoop(shards);
    ExpectSameRecords(base.records, other.records);
    ExpectSameResult(base.sharded.result, other.sharded.result);
  }
}

TEST(ShardedExperiment, LaneEventCountsSumToMergedTotal) {
  Capture cap = RunClosedLoop(4, false);
  ASSERT_EQ(cap.sharded.lane_events.size(), kMembers + 1);
  uint64_t sum = 0;
  for (uint64_t e : cap.sharded.lane_events) {
    EXPECT_GT(e, 0u);
    sum += e;
  }
  EXPECT_EQ(sum, cap.sharded.result.events_dispatched);
  // Every member served a share (client-affine round-robin, 24 clients).
  for (const auto& share : cap.sharded.result.per_server) {
    EXPECT_GT(share.requests, 0u);
  }
  // Cross-lane traffic really flowed: one request + one response per
  // completion, at minimum.
  EXPECT_GE(cap.sharded.shard.messages, 2 * cap.sharded.result.requests);
}

TEST(ShardedExperiment, ExcessThreadsClampToLaneCount) {
  // More threads than lanes must not deadlock the barriers (the runner
  // clamps), and the result is still the same.
  Capture base = RunClosedLoop(1, false, 8);
  Capture wide = RunClosedLoop(64, false, 8);
  EXPECT_EQ(wide.sharded.shard.threads, static_cast<int>(kMembers) + 1);
  ExpectSameRecords(base.records, wide.records);
  ExpectSameResult(base.sharded.result, wide.sharded.result);
}

}  // namespace
