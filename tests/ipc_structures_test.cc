// Tests for the shared-memory data-plane primitives (src/ipc v2): the
// named-structure directory, the MPMC descriptor queue, the shared cache
// map, pooled futures, counters, and the FileCache mirror — plus a
// threads-mode run of the whole plane.
//
// Everything here is single-process (std::thread at most): this file is the
// TSan surface of the plane. Fork-based multi-process tests live in
// ipc_plane_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "src/driver/process_tier.h"
#include "src/fs/file_cache.h"
#include "src/fs/replacement_policy.h"
#include "src/iolite/buffer_pool.h"
#include "src/ipc/mpmc_queue.h"
#include "src/ipc/process_plane.h"
#include "src/ipc/shm_cache_mirror.h"
#include "src/ipc/shm_counters.h"
#include "src/ipc/shm_future.h"
#include "src/ipc/shm_map.h"
#include "src/ipc/shm_region.h"
#include "src/ipc/shm_table.h"
#include "src/simos/sim_context.h"
#include "src/simos/vm.h"

namespace {

using iolipc::MpmcQueue;
using iolipc::ShmCounters;
using iolipc::ShmFuturePool;
using iolipc::ShmMap;
using iolipc::ShmRegion;
using iolipc::ShmTable;
using iolipc::SliceDesc;

std::unique_ptr<ShmRegion> AnonRegion(size_t bytes = 4u << 20) {
  return ShmRegion::Create(bytes);  // Anonymous: no /dev/shm dependency.
}

SliceDesc Desc(uint64_t offset, uint64_t length) {
  SliceDesc d{};
  d.offset = offset;
  d.length = length;
  return d;
}

// --- ShmTable ---------------------------------------------------------------

TEST(ShmTableTest, PublishFindAttach) {
  auto region = AnonRegion();
  ShmTable table = ShmTable::Create(region.get(), 8);
  ASSERT_TRUE(table.valid());
  EXPECT_EQ(table.entry_count(), 0u);

  EXPECT_TRUE(table.Publish("alpha", 4096, 64, iolipc::ShmType::kRaw));
  EXPECT_TRUE(table.Publish("beta", 8192, 128, iolipc::ShmType::kQueue));
  EXPECT_FALSE(table.Publish("alpha", 1, 1, iolipc::ShmType::kRaw)) << "duplicate name";

  const ShmTable::Entry* e = table.Find("beta");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->offset, 8192u);
  EXPECT_EQ(e->size, 128u);
  EXPECT_EQ(e->type, static_cast<uint32_t>(iolipc::ShmType::kQueue));
  EXPECT_EQ(table.Find("gamma"), nullptr);

  // A second handle (another process's view) sees the same directory.
  ShmTable attached = ShmTable::Attach(region.get());
  ASSERT_TRUE(attached.valid());
  EXPECT_EQ(attached.entry_count(), 2u);
  ASSERT_NE(attached.Find("alpha"), nullptr);
  EXPECT_EQ(attached.Find("alpha")->offset, 4096u);
}

TEST(ShmTableTest, CapacityIsEnforced) {
  auto region = AnonRegion();
  ShmTable table = ShmTable::Create(region.get(), 2);
  ASSERT_TRUE(table.valid());
  EXPECT_TRUE(table.Publish("a", 0, 1, iolipc::ShmType::kRaw));
  EXPECT_TRUE(table.Publish("b", 0, 1, iolipc::ShmType::kRaw));
  EXPECT_FALSE(table.Publish("c", 0, 1, iolipc::ShmType::kRaw));
}

// --- MpmcQueue --------------------------------------------------------------

TEST(MpmcQueueTest, FifoAndFullEmpty) {
  auto region = AnonRegion();
  ShmTable table = ShmTable::Create(region.get(), 4);
  MpmcQueue q = MpmcQueue::Create(region.get(), &table, "q", 4);
  ASSERT_TRUE(q.valid());

  SliceDesc out;
  EXPECT_FALSE(q.TryPop(&out)) << "fresh queue is empty";
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.TryPush(Desc(i, i * 10)));
  }
  EXPECT_FALSE(q.TryPush(Desc(99, 99))) << "full queue rejects";
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out.offset, i);
    EXPECT_EQ(out.length, i * 10);
  }
  EXPECT_FALSE(q.TryPop(&out));

  EXPECT_FALSE(q.closed());
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_TRUE(q.drained());
}

TEST(MpmcQueueTest, TypedMessagePun) {
  auto region = AnonRegion();
  ShmTable table = ShmTable::Create(region.get(), 4);
  MpmcQueue q = MpmcQueue::Create(region.get(), &table, "q", 8);
  iolipc::ClientRequestMsg in{7, 0xdeadbeefcafe, 1, 2, 3};
  ASSERT_TRUE(q.PushAs(in));
  iolipc::ClientRequestMsg out{};
  ASSERT_TRUE(q.PopAs(&out));
  EXPECT_EQ(out.file_id, 7u);
  EXPECT_EQ(out.future, 0xdeadbeefcafeu);
  EXPECT_EQ(out.kind, 1u);
  EXPECT_EQ(out.flags, 2u);
  EXPECT_EQ(out.reserved, 3u);
}

TEST(MpmcQueueTest, ThreadedMpmcDeliversEveryItemExactlyOnce) {
  auto region = AnonRegion();
  ShmTable table = ShmTable::Create(region.get(), 4);
  MpmcQueue q = MpmcQueue::Create(region.get(), &table, "q", 64);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr uint64_t kPerProducer = 5000;

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        // Unique id: producer in the high bits.
        while (!q.TryPush(Desc((static_cast<uint64_t>(p) << 32) | i, 1))) {
          std::this_thread::yield();
        }
      }
    });
  }
  std::atomic<uint64_t> popped{0};
  std::atomic<uint64_t> sum{0};
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      SliceDesc d;
      for (;;) {
        if (q.TryPop(&d)) {
          sum.fetch_add(d.offset, std::memory_order_relaxed);
          if (popped.fetch_add(1, std::memory_order_relaxed) + 1 ==
              kProducers * kPerProducer) {
            return;
          }
        } else if (popped.load(std::memory_order_relaxed) >= kProducers * kPerProducer) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  // Sum of all unique ids: per producer, p<<32 * kPerProducer + sum(0..n-1).
  uint64_t expect = 0;
  for (uint64_t p = 0; p < kProducers; ++p) {
    expect += (p << 32) * kPerProducer + kPerProducer * (kPerProducer - 1) / 2;
  }
  EXPECT_EQ(sum.load(), expect);
}

// --- ShmMap -----------------------------------------------------------------

TEST(ShmMapTest, InsertLookupEraseEvict) {
  auto region = AnonRegion();
  ShmTable table = ShmTable::Create(region.get(), 4);
  ShmMap map = ShmMap::Create(region.get(), &table, "m", 16);
  ASSERT_TRUE(map.valid());

  EXPECT_EQ(map.Insert(42, Desc(100, 1000)), ShmMap::InsertResult::kInserted);
  EXPECT_EQ(map.Insert(42, Desc(999, 9)), ShmMap::InsertResult::kExists)
      << "existing value wins";
  SliceDesc v;
  ASSERT_TRUE(map.Lookup(42, &v));
  EXPECT_EQ(v.offset, 100u);
  EXPECT_EQ(v.length, 1000u);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.bytes(), 1000u);
  EXPECT_FALSE(map.Lookup(43, &v));

  // Pins block erase and eviction.
  ASSERT_TRUE(map.LookupAndPin(42, &v));
  EXPECT_EQ(map.PinsOf(42), 1);
  EXPECT_FALSE(map.Erase(42)) << "pinned entries cannot be erased";
  uint64_t ekey = 0;
  SliceDesc eval;
  EXPECT_FALSE(map.EvictOne(&ekey, &eval)) << "everything pinned";
  ASSERT_TRUE(map.Unpin(42));
  EXPECT_EQ(map.PinsOf(42), 0);
  ASSERT_TRUE(map.EvictOne(&ekey, &eval));
  EXPECT_EQ(ekey, 42u);
  EXPECT_EQ(eval.offset, 100u);
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.bytes(), 0u);
  EXPECT_FALSE(map.Lookup(42, &v));

  // The tombstone is reusable.
  EXPECT_EQ(map.Insert(42, Desc(200, 5)), ShmMap::InsertResult::kInserted);
  ASSERT_TRUE(map.Lookup(42, &v));
  EXPECT_EQ(v.offset, 200u);
}

TEST(ShmMapTest, FillsToCapacityThenRejects) {
  auto region = AnonRegion();
  ShmTable table = ShmTable::Create(region.get(), 4);
  ShmMap map = ShmMap::Create(region.get(), &table, "m", 8);
  for (uint64_t k = 0; k < 8; ++k) {
    EXPECT_EQ(map.Insert(k, Desc(k, 1)), ShmMap::InsertResult::kInserted);
  }
  EXPECT_EQ(map.Insert(100, Desc(0, 1)), ShmMap::InsertResult::kFull);
  // Every key is still findable despite full-table probe chains.
  SliceDesc v;
  for (uint64_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(map.Lookup(k, &v)) << "key " << k;
    EXPECT_EQ(v.offset, k);
  }
}

TEST(ShmMapTest, ThreadedTortureKeepsAccountingConsistent) {
  auto region = AnonRegion();
  ShmTable table = ShmTable::Create(region.get(), 4);
  ShmMap map = ShmMap::Create(region.get(), &table, "m", 256);
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 4000;
  constexpr uint64_t kKeySpace = 64;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      uint64_t rng = 0x9e3779b97f4a7c15ull * (t + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        uint64_t key = rng % kKeySpace;
        switch (rng % 5) {
          case 0:
            map.Insert(key, Desc(key * 8, 8));
            break;
          case 1: {
            SliceDesc v;
            if (map.Lookup(key, &v)) {
              EXPECT_EQ(v.offset, key * 8);
            }
            break;
          }
          case 2: {
            SliceDesc v;
            if (map.LookupAndPin(key, &v)) {
              EXPECT_EQ(v.length, 8u);
              ASSERT_TRUE(map.Unpin(key));
            }
            break;
          }
          case 3:
            map.Erase(key);
            break;
          case 4:
            map.EvictOne(nullptr, nullptr);
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // Quiesced invariants: header accounting matches a slot scan, no pins
  // leaked, every surviving value intact.
  uint32_t live = 0;
  uint64_t bytes = 0;
  for (uint64_t key = 0; key < kKeySpace; ++key) {
    SliceDesc v;
    if (map.Lookup(key, &v)) {
      ++live;
      bytes += v.length;
      EXPECT_EQ(v.offset, key * 8);
      EXPECT_EQ(map.PinsOf(key), 0) << "leaked pin on key " << key;
    }
  }
  EXPECT_EQ(map.size(), live);
  EXPECT_EQ(map.bytes(), bytes);
}

// --- ShmFuturePool ----------------------------------------------------------

TEST(ShmFutureTest, CompleteAndWait) {
  auto region = AnonRegion();
  ShmTable table = ShmTable::Create(region.get(), 4);
  ShmFuturePool pool = ShmFuturePool::Create(region.get(), &table, "f", 4);
  ASSERT_TRUE(pool.valid());

  iolipc::FutureHandle h = pool.Acquire();
  ASSERT_NE(h, iolipc::kInvalidFuture);
  EXPECT_EQ(pool.allocated(), 1u);
  ASSERT_TRUE(pool.Complete(h, Desc(10, 20), Desc(30, 40)));
  ShmFuturePool::WaitResult r = pool.Wait(h, 1000, {});
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value[0].offset, 10u);
  EXPECT_EQ(r.value[1].length, 40u);
  pool.Release(h);
  EXPECT_EQ(pool.allocated(), 0u);

  // Stale handle: the released generation can no longer be completed.
  EXPECT_FALSE(pool.Complete(h, Desc(0, 0), Desc(0, 0)));
  EXPECT_FALSE(pool.Fail(h, 7));
}

TEST(ShmFutureTest, FailDeliversError) {
  auto region = AnonRegion();
  ShmTable table = ShmTable::Create(region.get(), 4);
  ShmFuturePool pool = ShmFuturePool::Create(region.get(), &table, "f", 4);
  iolipc::FutureHandle h = pool.Acquire();
  ASSERT_TRUE(pool.Fail(h, 42));
  ShmFuturePool::WaitResult r = pool.Wait(h, 1000, {});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, 42u);
  EXPECT_FALSE(pool.Complete(h, Desc(1, 1), Desc(1, 1))) << "already resolved";
  pool.Release(h);
}

TEST(ShmFutureTest, TimeoutFailsTheFutureAndLateFillerIsRejected) {
  auto region = AnonRegion();
  ShmTable table = ShmTable::Create(region.get(), 4);
  ShmFuturePool pool = ShmFuturePool::Create(region.get(), &table, "f", 4);
  iolipc::FutureHandle h = pool.Acquire();
  // Nobody fills: the waiter times out (error 2) rather than hanging.
  ShmFuturePool::WaitResult r = pool.Wait(h, 2000, {});
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.timed_out);
  // A filler arriving after the timeout must be told it lost.
  EXPECT_FALSE(pool.Complete(h, Desc(1, 1), Desc(1, 1)));
  pool.Release(h);
  EXPECT_EQ(pool.allocated(), 0u);
}

TEST(ShmFutureTest, ExhaustionAndThreadedHandoff) {
  auto region = AnonRegion();
  ShmTable table = ShmTable::Create(region.get(), 4);
  ShmFuturePool pool = ShmFuturePool::Create(region.get(), &table, "f", 2);
  iolipc::FutureHandle a = pool.Acquire();
  iolipc::FutureHandle b = pool.Acquire();
  ASSERT_NE(a, iolipc::kInvalidFuture);
  ASSERT_NE(b, iolipc::kInvalidFuture);
  EXPECT_EQ(pool.Acquire(), iolipc::kInvalidFuture) << "pool exhausted";

  // Real handoff: a filler thread completes while the owner waits.
  std::thread filler([&] { ASSERT_TRUE(pool.Complete(a, Desc(5, 6), Desc(7, 8))); });
  ShmFuturePool::WaitResult r =
      pool.Wait(a, 5'000'000, [] { std::this_thread::yield(); });
  filler.join();
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value[1].offset, 7u);
  ASSERT_TRUE(pool.Fail(b, 1));
  pool.Release(a);
  pool.Release(b);
  EXPECT_EQ(pool.CountInState(ShmFuturePool::kFree), 2u);
}

// --- ShmCounters ------------------------------------------------------------

TEST(ShmCountersTest, AddGetAndAttach) {
  auto region = AnonRegion();
  ShmTable table = ShmTable::Create(region.get(), 4);
  ShmCounters c = ShmCounters::Create(region.get(), &table, "c");
  ASSERT_TRUE(c.valid());
  c.Add(iolipc::kBytesServed, 100);
  c.Add(iolipc::kBytesServed, 23);
  c.Add(iolipc::kFutureErrors, 1);
  EXPECT_EQ(c.Get(iolipc::kBytesServed), 123u);
  EXPECT_EQ(c.Get(iolipc::kBytesCopiedCrossProcess), 0u);

  ShmCounters attached = ShmCounters::Attach(region.get(), table, "c");
  ASSERT_TRUE(attached.valid());
  EXPECT_EQ(attached.Get(iolipc::kBytesServed), 123u);
  EXPECT_EQ(attached.Get(iolipc::kFutureErrors), 1u);
  EXPECT_STREQ(iolipc::PlaneCounterName(iolipc::kBytesCopiedCrossProcess),
               "bytes_copied_cross_process");
}

// --- ShmCacheMirror ---------------------------------------------------------

TEST(ShmCacheMirrorTest, ProjectsCacheMembershipIntoTheMap) {
  auto region = AnonRegion(8u << 20);
  ShmTable table = ShmTable::Create(region.get(), 4);
  ShmMap map = ShmMap::Create(region.get(), &table, "m", 64);
  iolipc::ShmCacheMirror mirror(region.get(), &map);

  iolsim::SimContext ctx;
  iolite::BufferPool pool(&ctx, "t", iolsim::kKernelDomain, region.get());
  iolfs::FileCache cache(&ctx, std::make_unique<iolfs::PlainLruPolicy>());
  cache.set_mirror(&mirror);

  iolite::BufferRef buf = pool.AllocateDma(1, 4096);
  cache.Insert(7, 0, iolite::Aggregate::FromBuffer(buf));
  SliceDesc v;
  ASSERT_TRUE(map.Lookup(7, &v));
  EXPECT_EQ(v.length, 4096u);
  EXPECT_EQ(region->At(v.offset), buf->data()) << "mirror names the same bytes";

  // Erase follows InvalidateFile…
  cache.InvalidateFile(7);
  EXPECT_FALSE(map.Lookup(7, &v));
  EXPECT_EQ(map.size(), 0u);

  // …but a foreign pin defers it until the pin drops.
  iolite::BufferRef buf2 = pool.AllocateDma(2, 2048);
  cache.Insert(9, 0, iolite::Aggregate::FromBuffer(buf2));
  ASSERT_TRUE(map.LookupAndPin(9, &v));
  cache.InvalidateFile(9);
  EXPECT_TRUE(map.Lookup(9, &v)) << "pinned entry survives the erase";
  EXPECT_EQ(mirror.deferred_erases(), 1u);
  ASSERT_TRUE(map.Unpin(9));
  // Any later mutation drains the deferred erase.
  iolite::BufferRef buf3 = pool.AllocateDma(3, 1024);
  cache.Insert(11, 0, iolite::Aggregate::FromBuffer(buf3));
  EXPECT_FALSE(map.Lookup(9, &v));
  EXPECT_EQ(mirror.deferred_erases(), 0u);

  // Multi-slice and partial-offset entries are skipped, not published.
  uint64_t skipped = mirror.skipped();
  cache.Insert(13, 100, iolite::Aggregate::FromBuffer(pool.AllocateDma(4, 512)));
  EXPECT_GT(mirror.skipped(), skipped);
  EXPECT_FALSE(map.Lookup(13, &v));
}

// --- The plane, threads mode (the TSan-checkable full stack) ----------------

TEST(ProcessPlaneTest, ThreadsModeMatchesInProcessByteForByte) {
  ioldrv::ProcessTierConfig cfg;
  cfg.region_name.clear();  // Anonymous region: runs in any sandbox.
  cfg.requests = 120;
  cfg.inflight = 6;
  cfg.docs.doc_count = 12;
  cfg.docs.doc_bytes = 8 * 1024;
  cfg.cgi_every = 6;
  cfg.cgi_body_bytes = 512;
  cfg.proxy_workers = 2;
  cfg.origin_workers = 2;
  cfg.cgi_workers = 1;

  cfg.mode = iolipc::PlaneMode::kInProcess;
  ioldrv::ProcessTierResult sim = ioldrv::RunProcessTier(cfg);
  ASSERT_TRUE(sim.ok);
  EXPECT_EQ(sim.errors, 0u);
  EXPECT_TRUE(sim.byte_identical);
  EXPECT_EQ(sim.requests, 120u);

  cfg.mode = iolipc::PlaneMode::kThreads;
  ioldrv::ProcessTierResult thr = ioldrv::RunProcessTier(cfg);
  ASSERT_TRUE(thr.ok);
  EXPECT_EQ(thr.errors, 0u);
  EXPECT_TRUE(thr.byte_identical);
  EXPECT_EQ(thr.response_checksum, sim.response_checksum)
      << "same workers, same bytes, regardless of execution shape";
  EXPECT_EQ(thr.bytes_copied_cross_process, 0u);
  EXPECT_EQ(thr.bytes_served, sim.bytes_served);
}

TEST(ProcessPlaneTest, CopyModeCopiesEveryStaticBodyButStaysIdentical) {
  ioldrv::ProcessTierConfig cfg;
  cfg.region_name.clear();
  cfg.requests = 60;
  cfg.inflight = 4;
  cfg.docs.doc_count = 6;
  cfg.docs.doc_bytes = 4096;
  cfg.cgi_every = 0;
  cfg.mode = iolipc::PlaneMode::kThreads;

  ioldrv::ProcessTierResult zero = ioldrv::RunProcessTier(cfg);
  cfg.copy_data_path = true;
  ioldrv::ProcessTierResult copy = ioldrv::RunProcessTier(cfg);
  ASSERT_TRUE(zero.ok);
  ASSERT_TRUE(copy.ok);
  EXPECT_EQ(zero.bytes_copied_cross_process, 0u);
  EXPECT_EQ(copy.bytes_copied_cross_process, 60u * 4096u)
      << "copy mode pays one body copy per static response";
  EXPECT_EQ(copy.response_checksum, zero.response_checksum);
  EXPECT_TRUE(copy.byte_identical);
}

}  // namespace
