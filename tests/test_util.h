// Shared helpers for the IO-Lite test suite.

#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <string>

#include "src/iolite/aggregate.h"
#include "src/iolite/buffer_pool.h"
#include "src/system/system.h"

namespace ioltest {

// Allocates a sealed buffer holding `text` from `pool`.
inline iolite::BufferRef BufferFrom(iolite::BufferPool* pool, const std::string& text) {
  return pool->AllocateFrom(text.data(), text.size());
}

// An aggregate holding exactly `text`.
inline iolite::Aggregate AggFrom(iolite::BufferPool* pool, const std::string& text) {
  return iolite::Aggregate::FromBuffer(BufferFrom(pool, text));
}

// Reference string for the synthetic content of [offset, offset+len) of a
// simulated file.
inline std::string FileContent(iolfs::SimFileSystem& fs, iolfs::FileId file, uint64_t offset,
                               size_t len) {
  std::string out(len, '\0');
  for (size_t i = 0; i < len; ++i) {
    out[i] = static_cast<char>(fs.ContentByteAt(file, offset + i));
  }
  return out;
}

}  // namespace ioltest

#endif  // TESTS_TEST_UTIL_H_
